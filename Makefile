# Build/verify entry points. `make verify` is the tier-1 gate (see
# ROADMAP.md); `make bench` + `make benchdiff` guard the ingest hot path
# against regressions (scripts/bench_baseline.json holds the reference), and
# `make telemetry-overhead` checks that span tracing stays within its 5%
# budget on the same hot path.

GO ?= go
BENCH_COUNT ?= 5

.PHONY: build test vet race bench benchdiff telemetry-overhead verify verify-stream

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet test race

# verify-stream hammers the race-sensitive streaming paths (subscriptions,
# long-poll serving, rollups, alerts) repeatedly under the race detector.
verify-stream:
	$(GO) test ./internal/core/ ./internal/zmq/ ./internal/mercury/ \
		-race -count=3 \
		-run 'Subscribe|Watch|Stream|Series|Alert|Remote|Blocking|Flush|Fanout'

bench:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkPublishIngest$$|BenchmarkPublishIngestRPC$$|BenchmarkSelectSnapshot$$|BenchmarkSeriesQuery$$|BenchmarkSubscribeFanout$$' \
		-benchmem -count $(BENCH_COUNT)

benchdiff:
	scripts/benchdiff.sh

telemetry-overhead:
	scripts/benchdiff.sh --telemetry
