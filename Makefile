# Build/verify entry points. `make verify` is the tier-1 gate (see
# ROADMAP.md); `make bench` + `make benchdiff` guard the ingest hot path
# against regressions (scripts/bench_baseline.json holds the reference).

GO ?= go
BENCH_COUNT ?= 5

.PHONY: build test vet race bench benchdiff verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet test race

bench:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkPublishIngest$$|BenchmarkPublishIngestRPC$$|BenchmarkSelectSnapshot$$' \
		-benchmem -count $(BENCH_COUNT)

benchdiff:
	scripts/benchdiff.sh
