# Build/verify entry points. `make verify` is the tier-1 gate (see
# ROADMAP.md); `make bench` + `make benchdiff` guard the ingest hot path
# against regressions (scripts/bench_baseline.json holds the reference), and
# `make telemetry-overhead` checks that span tracing stays within its 5%
# budget on the same hot path. `make chaos` soaks the integration workload
# under seeded fault injection (internal/faults) and asserts zero loss and
# zero deadlock; `make lint` is the gofmt/vet formatting gate CI runs.

GO ?= go
GOFMT ?= gofmt
BENCH_COUNT ?= 5

.PHONY: build test vet race lint bench benchdiff telemetry-overhead verify verify-stream chaos load load-smoke cluster-smoke gateway-smoke fuzz-smoke scenario scenarios

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint fails when any tracked Go file is not gofmt-clean, then vets. The
# chaos build tag is vetted explicitly so tag-gated files stay checked.
lint:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet -tags chaos .

verify: build vet lint test race

# verify-stream hammers the race-sensitive streaming paths (subscriptions,
# long-poll serving, rollups, alerts) repeatedly under the race detector,
# plus the in-process fleet scenarios (kill/restart, fault timelines).
verify-stream:
	$(GO) test ./internal/core/ ./internal/zmq/ ./internal/mercury/ ./internal/scenario/ \
		-race -count=3 \
		-run 'Subscribe|Watch|Stream|Series|Alert|Remote|Blocking|Flush|Fanout|Scenario'

bench:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkPublishIngest$$|BenchmarkPublishIngestRPC$$|BenchmarkPublishBatch$$|BenchmarkSelectSnapshot$$|BenchmarkSeriesQuery$$|BenchmarkSubscribeFanout$$|BenchmarkQueryHot$$|BenchmarkQueryEncodeNoCache$$|BenchmarkQueryDelta$$|BenchmarkSnapshotRebuild$$|BenchmarkScatterGatherQuery$$' \
		-benchmem -count $(BENCH_COUNT)

benchdiff:
	scripts/benchdiff.sh

telemetry-overhead:
	scripts/benchdiff.sh --telemetry

# chaos runs the seeded fault-injection soak 3× under the race detector;
# the schedules are deterministic per seed, so a pass is reproducible.
chaos:
	$(GO) test -race -tags chaos -count=3 -timeout 10m -run 'TestChaos' .

# load is the full-scale wire-batching experiment: 100k logical publishers
# coalesced over 8 connections, gated on sustaining a million acknowledged
# publishes/sec with exact loss accounting (see DESIGN.md §4g). load-smoke
# is the same harness at CI scale — 1k publishers for 2s, no rate floor,
# still asserting zero loss.
load:
	$(GO) build -o bin/somabench ./cmd/somabench
	bin/somabench load -publishers 100000 -conns 8 -duration 8s \
		-batch-leaves 4096 -batch-bytes 262144 -query-interval 1s \
		-min-rate 1000000 -json

load-smoke:
	$(GO) build -o bin/somabench ./cmd/somabench
	bin/somabench load -publishers 1000 -conns 4 -duration 2s -json

# cluster-smoke is the sharded-fleet CI gate: the 3-instance somasim scenario
# (consistent-hash placement, two sever storms, zero-loss + ground-truth
# verdicts) followed by somabench against a 2-instance cluster with shard
# routing. The rate floor is deliberately conservative — shared CI runners
# (and single-core boxes) cannot show the multi-core scaling the full-size
# `make load` demonstrates — so the gate is exact loss accounting plus a
# sanity floor, not a scaling claim.
cluster-smoke:
	$(GO) build -o bin/somad ./cmd/somad
	$(GO) build -o bin/somasim ./cmd/somasim
	$(GO) build -o bin/somabench ./cmd/somabench
	bin/somasim run scenarios/cluster-rebalance.yaml
	bin/somabench load -peers 2 -publishers 1000 -conns 4 -duration 2s \
		-min-rate 200000 -json

# gateway-smoke boots somad + somagate, drives the JSON API and dashboard
# with curl, publishes via `somabench pub`, and holds a live WebSocket
# through one somad restart — asserting zero HTTP-availability loss, drops
# accounted in-stream, 429 under burst, and no leaked goroutines.
gateway-smoke:
	scripts/gateway_smoke.sh

# scenario runs one declarative scenario (make scenario S=kill-restart)
# against real somad child processes; scenarios runs the whole library and
# fails if any verdict comes back red (the CI scenario matrix runs one
# scenario per job via the same entry points). SCENARIO_FLAGS passes extra
# somasim flags, e.g. SCENARIO_FLAGS=-inproc or SCENARIO_FLAGS='-seed 7'.
scenario:
	@test -n "$(S)" || { echo "usage: make scenario S=<name>  (see scenarios/)" >&2; exit 2; }
	$(GO) build -o bin/somad ./cmd/somad
	$(GO) build -o bin/somasim ./cmd/somasim
	bin/somasim run $(SCENARIO_FLAGS) scenarios/$(S).yaml

scenarios:
	scripts/scenarios.sh

# fuzz-smoke runs each fuzz target briefly against its corpus plus fresh
# inputs: the binary batch decoder, the conduit JSON codec round-trip, and
# the WebSocket frame decoder (hostile wire input). One `go test -fuzz`
# invocation per target — the fuzzer accepts only a single match.
FUZZ_TIME ?= 20s
fuzz-smoke:
	$(GO) test ./internal/conduit/ -run '^$$' -fuzz 'FuzzDecodeBatch$$' -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/conduit/ -run '^$$' -fuzz 'FuzzJSONRoundTrip$$' -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/gateway/ -run '^$$' -fuzz 'FuzzWSFrame$$' -fuzztime $(FUZZ_TIME)
