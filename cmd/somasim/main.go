// Command somasim runs declarative SOMA scenarios: YAML fleet declarations,
// scripted fault timelines, and assertions judged against a live fleet
// (internal/scenario). It is the entry point behind make scenario / make
// scenarios and the CI scenario matrix.
//
// Usage:
//
//	somasim run scenarios/kill-restart.yaml            # somad child processes
//	somasim run -inproc scenarios/kill-restart.yaml    # in-process services
//	somasim run -seed 7 -somad bin/somad FILE          # pinned fault schedule
//	somasim validate scenarios/*.yaml                  # schema check only
//
// run prints the human timeline to stderr and exactly one machine-readable
// line to stdout — SCENARIO_VERDICT {json} — then exits 0 when every
// assertion passed, 1 when any failed, 2 on harness errors (unparseable
// scenario, fleet would not boot). validate never starts a fleet and exits
// 1 if any file is malformed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hpcobs/gosoma/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(runCmd(os.Args[2:]))
	case "validate":
		os.Exit(validateCmd(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "somasim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  somasim run [-inproc] [-somad PATH] [-seed N] [-settle D] FILE
  somasim validate FILE...
`)
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	inproc := fs.Bool("inproc", false, "run instances in-process instead of spawning somad")
	somad := fs.String("somad", "bin/somad", "somad binary for process mode")
	seed := fs.Int64("seed", 0, "override the scenario's fault seed (0 = use the file's)")
	settle := fs.Duration("settle", 10*time.Second, "post-timeline settle window")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "somasim run: exactly one scenario file required")
		return 2
	}
	path := fs.Arg(0)

	sc, err := scenario.ParseFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "somasim: %s: %v\n", path, err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := scenario.Options{
		SomadPath: *somad,
		Seed:      *seed,
		Settle:    *settle,
		Log:       os.Stderr,
	}
	if *inproc {
		opts.Mode = scenario.ModeInproc
	}
	v, err := scenario.Run(ctx, sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "somasim: %v\n", err)
		return 2
	}
	out, _ := json.Marshal(v)
	fmt.Printf("SCENARIO_VERDICT %s\n", out)
	if !v.Pass {
		return 1
	}
	return 0
}

func validateCmd(args []string) int {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "somasim validate: at least one scenario file required")
		return 2
	}
	code := 0
	for _, path := range fs.Args() {
		sc, err := scenario.ParseFile(path)
		if !scenario.WriteValidation(os.Stdout, path, sc, err) {
			code = 1
		}
	}
	return code
}
