// Command somatop is a live terminal view of a running SOMA service: it
// polls the service at an interval and renders the workflow summary, task
// throughput, per-node CPU utilization, per-instance service counters, and
// the service's self-telemetry (RPC latency percentiles, queue depths) —
// the operator's window into a monitored workflow.
//
// Transient query failures are warned about and retried on the next tick;
// somatop only exits on SIGINT/SIGTERM (or after one snapshot with -once).
//
// Usage:
//
//	somatop -addr tcp://127.0.0.1:9900 -interval 1s
//	somatop -addr ... -once                # single snapshot, no loop
//	somatop -addr ... -telemetry=false     # hide the telemetry panel
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
)

func main() {
	addr := flag.String("addr", "", "service address (tcp://host:port)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	showTel := flag.Bool("telemetry", true, "show the service self-telemetry panel")
	traceRows := flag.Int("traces", 5, "slowest kept traces to list (0 = hide the panel)")
	seriesPat := flag.String("series", "PROC/*/CPU Util", "rollup series key pattern for the sparkline panel (empty = off)")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "usage: somatop -addr tcp://host:port [-interval 2s] [-once] [-telemetry=false] [-series <pattern>]")
		os.Exit(2)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	// The client is (re)established lazily: somatop may start before the
	// service does, and a TCP endpoint does not survive a service restart,
	// so every failure drops the connection and the next tick redials.
	var client *core.Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()

	failures := 0
	for {
		var sb strings.Builder
		err := func() error {
			if client == nil {
				c, err := core.Connect(*addr, nil)
				if err != nil {
					return err
				}
				client = c
			}
			return refresh(&sb, *addr, client, core.Analysis{Q: client}, *showTel, *traceRows, *seriesPat)
		}()
		if err != nil {
			// Transient failures (service not up yet, restarting, network
			// blip): warn and retry on the next tick rather than dying.
			if client != nil {
				client.Close()
				client = nil
			}
			failures++
			fmt.Fprintf(os.Stderr, "somatop: refresh failed (%d in a row): %v — retrying in %s\n",
				failures, err, *interval)
			if *once {
				os.Exit(1)
			}
		} else {
			failures = 0
			if !*once {
				// Clear screen between refreshes.
				fmt.Print("\033[H\033[2J")
			}
			fmt.Print(sb.String())
			if *once {
				return
			}
		}
		select {
		case sig := <-sigc:
			fmt.Fprintf(os.Stderr, "somatop: %s, exiting\n", sig)
			return
		case <-time.After(*interval):
		}
	}
}

// refresh renders one full frame. An error means the service could not be
// reached at all this tick; partial analysis failures degrade to omitted
// panels inside core.RenderSummary.
func refresh(sb *strings.Builder, addr string, client *core.Client, analysis core.Analysis, showTel bool, traceRows int, seriesPat string) error {
	stats, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, "SOMA %s — %s\n\n", addr, time.Now().Format(time.TimeOnly))
	core.RenderSummary(sb, analysis, stats)
	renderHealthPanel(sb, client)
	renderSeriesPanel(sb, client, seriesPat)
	renderAlertsPanel(sb, client)
	if showTel {
		snap, err := client.Telemetry()
		if err != nil {
			return err
		}
		sb.WriteString("\n")
		core.RenderTelemetry(sb, snap)
	}
	renderTracesPanel(sb, client, traceRows)
	// Delta-poll footer: the analysis panels above poll through the client's
	// generation memo, so steady-state refreshes collapse to tiny frames —
	// show how much wire traffic that has saved so far.
	if ds := client.DeltaStats(); ds.Unchanged > 0 {
		fmt.Fprintf(sb, "\ndelta polls: %d unchanged, %s saved on the wire\n",
			ds.Unchanged, formatBytes(ds.BytesSaved))
	}
	return nil
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// renderHealthPanel shows the soma.health report: service uptime, shed
// calls, and the client's breaker/degradation state. Services without the
// health RPC (older builds) degrade to an omitted panel.
func renderHealthPanel(sb *strings.Builder, client *core.Client) {
	h, err := client.Health()
	if err != nil {
		return
	}
	sb.WriteString("\n")
	core.RenderHealth(sb, h)
}

// maxSparkRows bounds the sparkline panel on large allocations.
const maxSparkRows = 12

// renderSeriesPanel queries the hardware namespace's rollup series matching
// pattern and renders one sparkline per key. Services without rollup support
// (or with no matching series yet) degrade to an omitted panel.
func renderSeriesPanel(sb *strings.Builder, client *core.Client, pattern string) {
	if pattern == "" {
		return
	}
	keys, err := client.SeriesKeys(core.NSHardware, pattern)
	if err != nil || len(keys) == 0 {
		return
	}
	hidden := 0
	if len(keys) > maxSparkRows {
		hidden = len(keys) - maxSparkRows
		keys = keys[:maxSparkRows]
	}
	series := make([]core.Series, 0, len(keys))
	for _, key := range keys {
		se, err := client.Series(core.NSHardware, key, core.Level1s, 0)
		if err == nil {
			series = append(series, se)
		}
	}
	sb.WriteString("\n")
	core.RenderSeriesSparklines(sb, fmt.Sprintf("series (%s, 1s buckets):", pattern), series)
	if hidden > 0 {
		fmt.Fprintf(sb, "  ... and %d more\n", hidden)
	}
}

// renderTracesPanel lists the slowest traces the service's tail sampler
// kept — the "what is the p99 actually doing" panel. Drill into any row with
// `somactl trace <id>`. Services without the trace RPCs (older builds)
// degrade to an omitted panel.
func renderTracesPanel(sb *strings.Builder, client *core.Client, rows int) {
	if rows <= 0 {
		return
	}
	sums, err := client.Traces(rows, true)
	if err != nil || len(sums) == 0 {
		return
	}
	sb.WriteString("\n")
	core.RenderTraceList(sb, sums)
}

// renderAlertsPanel lists threshold-alert rules and standings. Services
// without alert support degrade to an omitted panel; an empty rule set is
// omitted too (unlike somactl alert list, which prints the placeholder).
func renderAlertsPanel(sb *strings.Builder, client *core.Client) {
	rules, states, err := client.Alerts()
	if err != nil || len(rules) == 0 {
		return
	}
	sb.WriteString("\n")
	core.RenderAlerts(sb, rules, states)
}
