// Command somatop is a live terminal view of a running SOMA service: it
// polls the service at an interval and renders the workflow summary, task
// throughput, per-node CPU utilization, and per-instance service counters —
// the operator's window into a monitored workflow.
//
// Usage:
//
//	somatop -addr tcp://127.0.0.1:9900 -interval 1s
//	somatop -addr ... -once                # single snapshot, no loop
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
)

func main() {
	addr := flag.String("addr", "", "service address (tcp://host:port)")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "usage: somatop -addr tcp://host:port [-interval 2s] [-once]")
		os.Exit(2)
	}

	client, err := core.Connect(*addr, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "somatop:", err)
		os.Exit(1)
	}
	defer client.Close()
	analysis := core.Analysis{Q: client}

	for {
		var sb strings.Builder
		render(&sb, *addr, client, analysis)
		if !*once {
			// Clear screen between refreshes.
			fmt.Print("\033[H\033[2J")
		}
		fmt.Print(sb.String())
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func render(sb *strings.Builder, addr string, client *core.Client, analysis core.Analysis) {
	fmt.Fprintf(sb, "SOMA %s — %s\n\n", addr, time.Now().Format(time.TimeOnly))

	if series, err := analysis.WorkflowSeries(); err == nil && len(series) > 0 {
		last := series[len(series)-1]
		fmt.Fprintf(sb, "workflow   pending=%d running=%d done=%d failed=%d canceled=%d (%d snapshots)\n",
			last.Pending, last.Running, last.Done, last.Failed, last.Canceled, len(series))
		if tp, err := analysis.Throughput(); err == nil && tp > 0 {
			fmt.Fprintf(sb, "throughput %.3f tasks/s\n", tp)
		}
		if qw, err := analysis.QueueWaitStats(); err == nil && qw.N > 0 {
			fmt.Fprintf(sb, "queue wait mean=%.1fs max=%.1fs (n=%d)\n", qw.Mean, qw.Max, qw.N)
		}
	} else {
		fmt.Fprintln(sb, "workflow   (no data)")
	}

	if hosts, err := analysis.Hosts(); err == nil && len(hosts) > 0 {
		fmt.Fprintf(sb, "\nhardware   %d node(s):\n", len(hosts))
		shown := hosts
		if len(shown) > 12 {
			shown = shown[:12]
		}
		for _, h := range shown {
			if series, err := analysis.CPUUtilSeries(h); err == nil && len(series) > 0 {
				last := series[len(series)-1]
				bar := int(last.Util / 100 * 30)
				fmt.Fprintf(sb, "  %-10s [%-30s] %5.1f%%\n",
					h, strings.Repeat("|", bar), last.Util)
			}
		}
		if len(hosts) > len(shown) {
			fmt.Fprintf(sb, "  ... and %d more\n", len(hosts)-len(shown))
		}
	}

	if stats, err := client.Stats(); err == nil {
		fmt.Fprintln(sb, "\nservice instances:")
		for _, ns := range core.Namespaces {
			if st, ok := stats[ns]; ok {
				fmt.Fprintf(sb, "  %-12s ranks=%-3d stripes=%-2d publishes=%-8d leaves=%-9d bytes_in=%d\n",
					ns, st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn)
			}
		}
	}
}
