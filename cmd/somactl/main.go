// Command somactl is the operator's client for a running SOMA service
// (cmd/somad or any embedded service): publish, query, stats and shutdown
// from the command line.
//
// Usage:
//
//	somactl -addr tcp://127.0.0.1:9900 stats
//	somactl -addr ... telemetry
//	somactl -addr ... query workflow RP/summary
//	somactl -addr ... publish application 'FOM/task.000001/rate/12.5' 1.82e9
//	somactl -addr ... watch -interval 2s hardware 'PROC/*/CPU Util'
//	somactl -addr ... alert set cpu-hot hardware 'PROC/*/CPU Util' '>' 90 10 critical
//	somactl -addr ... shutdown
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: somactl -addr <address> <command> [args]

commands:
  stats                           per-instance statistics
  telemetry [-spans N]            service self-telemetry (latency percentiles,
                                  gauges, counters, recent spans; N = span
                                  rows, default 20, 0 = all)
  query <namespace> [path]        print the merged subtree
  select <namespace> <pattern>    glob over leaf paths (* = segment, ** = tail)
  publish <namespace> <path> <v>  publish one float leaf at path
  watch [-interval 2s] <namespace|soma.alerts|all> [pattern]
                                  stream live updates (pushed; falls back to
                                  polling at -interval if the service has no
                                  update stream)
  alert set <name> <namespace> <pattern> <op> <threshold> <window_sec> [severity]
  alert rm <name>                 remove a threshold alert rule
  alert list                      print rules and current standings
  trace [-slow] [-n N]            list traces kept by the tail sampler
                                  (-slow orders by duration; N rows, default 20)
  trace <trace_id>                render one trace as a waterfall (id as
                                  printed by trace/telemetry, hex)
  profile -cpu <dur>              capture a CPU profile from the live service
  profile -kind <heap|goroutine|allocs|block|mutex>
                                  capture a snapshot profile; pprof bytes go
                                  to stdout: somactl profile -cpu 5s > cpu.pb.gz
  reset <namespace>               discard a namespace's stored data
  health                          service liveness + degradation report
                                  (uptime, shed calls, breaker state)
  shutdown                        ask the service to stop
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "", "service address (tcp://host:port)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if *addr == "" || len(args) == 0 {
		usage()
	}

	client, err := core.Connect(*addr, nil)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	switch args[0] {
	case "stats":
		stats, err := client.Stats()
		if err != nil {
			fatal(err)
		}
		for _, ns := range core.Namespaces {
			st, ok := stats[ns]
			if !ok {
				continue
			}
			fmt.Printf("%-12s ranks=%d stripes=%d publishes=%d leaves=%d bytes_in=%d last=%.3f\n",
				ns, st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn, st.LastTime)
		}
		// Shared-instance services report under "shared".
		if st, ok := stats["shared"]; ok {
			fmt.Printf("%-12s ranks=%d stripes=%d publishes=%d leaves=%d bytes_in=%d\n",
				"shared", st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn)
		}
	case "telemetry":
		spanRows := 20
		if len(args) == 3 && args[1] == "-spans" {
			spanRows, err = strconv.Atoi(args[2])
			if err != nil {
				fatal(fmt.Errorf("span count %q: %w", args[2], err))
			}
		} else if len(args) != 1 {
			usage()
		}
		snap, err := client.Telemetry()
		if err != nil {
			fatal(err)
		}
		core.RenderTelemetry(os.Stdout, snap)
		core.RenderSpans(os.Stdout, snap.Spans, spanRows)
	case "query":
		if len(args) < 2 {
			usage()
		}
		path := ""
		if len(args) >= 3 {
			path = args[2]
		}
		tree, err := client.Query(core.Namespace(args[1]), path)
		if err != nil {
			fatal(err)
		}
		if tree.IsEmpty() && tree.NumChildren() == 0 {
			fmt.Println("(empty)")
			return
		}
		fmt.Print(tree.Format())
	case "select":
		if len(args) != 3 {
			usage()
		}
		matches, err := client.Select(core.Namespace(args[1]), args[2])
		if err != nil {
			fatal(err)
		}
		if len(matches) == 0 {
			fmt.Println("(no matches)")
			return
		}
		for _, m := range matches {
			if m.HasValue {
				fmt.Printf("%s = %g\n", m.Path, m.Value)
			} else {
				fmt.Println(m.Path)
			}
		}
	case "reset":
		if len(args) != 2 {
			usage()
		}
		if err := client.Reset(core.Namespace(args[1])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "publish":
		if len(args) != 4 {
			usage()
		}
		v, err := strconv.ParseFloat(args[3], 64)
		if err != nil {
			fatal(fmt.Errorf("value %q: %w", args[3], err))
		}
		n := conduit.NewNode()
		n.SetFloat(args[2], v)
		if err := client.Publish(core.Namespace(args[1]), n); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		ival := fs.Duration("interval", 2*time.Second, "poll fallback interval")
		if err := fs.Parse(args[1:]); err != nil {
			usage()
		}
		rest := fs.Args()
		if len(rest) < 1 || len(rest) > 2 {
			usage()
		}
		ns := core.Namespace(rest[0])
		if rest[0] == "all" {
			ns = ""
		}
		pattern := ""
		if len(rest) == 2 {
			pattern = rest[1]
		}
		watch(client, ns, pattern, *ival)
	case "alert":
		if len(args) < 2 {
			usage()
		}
		switch args[1] {
		case "set":
			rest := args[2:]
			if len(rest) < 6 || len(rest) > 7 {
				usage()
			}
			threshold, err := strconv.ParseFloat(rest[4], 64)
			if err != nil {
				fatal(fmt.Errorf("threshold %q: %w", rest[4], err))
			}
			window, err := strconv.ParseFloat(rest[5], 64)
			if err != nil {
				fatal(fmt.Errorf("window %q: %w", rest[5], err))
			}
			rule := core.AlertRule{
				Name: rest[0], NS: core.Namespace(rest[1]), Pattern: rest[2],
				Op: rest[3], Threshold: threshold, WindowSec: window,
			}
			if len(rest) == 7 {
				rule.Severity = rest[6]
			}
			if err := client.SetAlert(rule); err != nil {
				fatal(err)
			}
			fmt.Println("ok")
		case "rm":
			if len(args) != 3 {
				usage()
			}
			if err := client.RemoveAlert(args[2]); err != nil {
				fatal(err)
			}
			fmt.Println("ok")
		case "list":
			rules, states, err := client.Alerts()
			if err != nil {
				fatal(err)
			}
			core.RenderAlerts(os.Stdout, rules, states)
		default:
			usage()
		}
	case "trace":
		// With a hex trace id: fetch and render that trace's waterfall.
		// Without: list what the tail sampler kept.
		if len(args) >= 2 && args[1] != "" && args[1][0] != '-' {
			id, err := strconv.ParseUint(args[1], 16, 64)
			if err != nil {
				fatal(fmt.Errorf("trace id %q: %w", args[1], err))
			}
			tr, err := client.Trace(id)
			if err != nil {
				fatal(err)
			}
			core.RenderTraceWaterfall(os.Stdout, tr, 0)
			return
		}
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		slow := fs.Bool("slow", false, "order by root duration (slowest first)")
		n := fs.Int("n", 20, "rows")
		if err := fs.Parse(args[1:]); err != nil {
			usage()
		}
		sums, err := client.Traces(*n, *slow)
		if err != nil {
			fatal(err)
		}
		core.RenderTraceList(os.Stdout, sums)
	case "profile":
		fs := flag.NewFlagSet("profile", flag.ExitOnError)
		cpu := fs.Duration("cpu", 0, "capture a CPU profile for this duration")
		kind := fs.String("kind", "", "snapshot profile kind (heap, goroutine, allocs, block, mutex)")
		if err := fs.Parse(args[1:]); err != nil {
			usage()
		}
		k, dur := *kind, time.Duration(0)
		if *cpu > 0 {
			k, dur = "cpu", *cpu
		}
		if k == "" {
			usage()
		}
		p, err := client.Profile(k, dur)
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(p.Data); err != nil {
			fatal(err)
		}
		if p.Kind == "cpu" {
			fmt.Fprintf(os.Stderr, "somactl: %s profile, %d bytes, sampled %s\n", p.Kind, len(p.Data), p.Duration.Round(time.Millisecond))
		} else {
			fmt.Fprintf(os.Stderr, "somactl: %s profile, %d bytes\n", p.Kind, len(p.Data))
		}
	case "health":
		h, herr := client.Health()
		core.RenderHealth(os.Stdout, h)
		if herr != nil || h.Status != "ok" {
			os.Exit(1)
		}
	case "shutdown":
		if err := client.Shutdown(); err != nil {
			fatal(err)
		}
		fmt.Println("shutdown requested")
	default:
		usage()
	}
}

// watch streams live updates for a namespace (or the soma.alerts stream, or
// every namespace with ns == ""). The push path subscribes over the
// service's update bus; if the service has no stream support, watch
// degrades to polling the merged tree every interval and printing the leaf
// paths whose values changed.
func watch(client *core.Client, ns core.Namespace, pattern string, interval time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	err := client.Watch(ctx, ns, pattern, func(u core.Update) error {
		printUpdate(u)
		return nil
	})
	if err == nil || ctx.Err() != nil {
		return
	}
	fmt.Fprintf(os.Stderr, "somactl: streaming unavailable (%v), polling every %s\n", err, interval)
	pollWatch(ctx, client, ns, pattern, interval)
}

func printUpdate(u core.Update) {
	if u.Alert {
		state, _ := u.Tree.StringVal("state")
		rule, _ := u.Tree.StringVal("rule")
		key, _ := u.Tree.StringVal("key")
		sev, _ := u.Tree.StringVal("severity")
		value, _ := u.Tree.Float("value")
		threshold, _ := u.Tree.Float("threshold")
		fmt.Printf("[%.3f] ALERT %-8s %s (%s) %s value=%.3f threshold=%g\n",
			u.Time, state, rule, sev, key, value, threshold)
		return
	}
	fmt.Printf("── %s t=%.3f dropped=%d\n", u.NS, u.Time, u.Dropped)
	fmt.Print(u.Tree.Format())
}

// pollWatch is the no-stream fallback: poll the namespace with a delta
// query every interval and print leaves whose values changed since the
// previous poll. Unchanged ticks cost a ~30-byte frame and skip the diff
// entirely; the glob pattern is evaluated locally against the returned tree.
func pollWatch(ctx context.Context, client *core.Client, ns core.Namespace, pattern string, interval time.Duration) {
	if ns == "" || ns == core.NSAlerts {
		fatal(fmt.Errorf("poll fallback needs a concrete namespace (not %q)", ns))
	}
	if pattern == "" {
		pattern = "**"
	}
	prev := map[string]float64{}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		tree, changed, err := client.QueryDelta(ns, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "somactl: poll failed: %v\n", err)
		} else if changed {
			for _, p := range tree.Select(pattern) {
				v, ok := tree.Float(p)
				if !ok {
					continue
				}
				if old, seen := prev[p]; !seen || old != v {
					fmt.Printf("%s = %g\n", p, v)
					prev[p] = v
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "somactl:", err)
	os.Exit(1)
}
