// Command somactl is the operator's client for a running SOMA service
// (cmd/somad or any embedded service): publish, query, stats and shutdown
// from the command line.
//
// Usage:
//
//	somactl -addr tcp://127.0.0.1:9900 stats
//	somactl -addr ... telemetry
//	somactl -addr ... query workflow RP/summary
//	somactl -addr ... publish application 'FOM/task.000001/rate/12.5' 1.82e9
//	somactl -addr ... shutdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: somactl -addr <address> <command> [args]

commands:
  stats                           per-instance statistics
  telemetry [-spans N]            service self-telemetry (latency percentiles,
                                  gauges, counters, recent spans; N = span
                                  rows, default 20, 0 = all)
  query <namespace> [path]        print the merged subtree
  select <namespace> <pattern>    glob over leaf paths (* = segment, ** = tail)
  publish <namespace> <path> <v>  publish one float leaf at path
  reset <namespace>               discard a namespace's stored data
  shutdown                        ask the service to stop
`)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "", "service address (tcp://host:port)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if *addr == "" || len(args) == 0 {
		usage()
	}

	client, err := core.Connect(*addr, nil)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	switch args[0] {
	case "stats":
		stats, err := client.Stats()
		if err != nil {
			fatal(err)
		}
		for _, ns := range core.Namespaces {
			st, ok := stats[ns]
			if !ok {
				continue
			}
			fmt.Printf("%-12s ranks=%d stripes=%d publishes=%d leaves=%d bytes_in=%d last=%.3f\n",
				ns, st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn, st.LastTime)
		}
		// Shared-instance services report under "shared".
		if st, ok := stats["shared"]; ok {
			fmt.Printf("%-12s ranks=%d stripes=%d publishes=%d leaves=%d bytes_in=%d\n",
				"shared", st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn)
		}
	case "telemetry":
		spanRows := 20
		if len(args) == 3 && args[1] == "-spans" {
			spanRows, err = strconv.Atoi(args[2])
			if err != nil {
				fatal(fmt.Errorf("span count %q: %w", args[2], err))
			}
		} else if len(args) != 1 {
			usage()
		}
		snap, err := client.Telemetry()
		if err != nil {
			fatal(err)
		}
		core.RenderTelemetry(os.Stdout, snap)
		core.RenderSpans(os.Stdout, snap.Spans, spanRows)
	case "query":
		if len(args) < 2 {
			usage()
		}
		path := ""
		if len(args) >= 3 {
			path = args[2]
		}
		tree, err := client.Query(core.Namespace(args[1]), path)
		if err != nil {
			fatal(err)
		}
		if tree.IsEmpty() && tree.NumChildren() == 0 {
			fmt.Println("(empty)")
			return
		}
		fmt.Print(tree.Format())
	case "select":
		if len(args) != 3 {
			usage()
		}
		matches, err := client.Select(core.Namespace(args[1]), args[2])
		if err != nil {
			fatal(err)
		}
		if len(matches) == 0 {
			fmt.Println("(no matches)")
			return
		}
		for _, m := range matches {
			if m.HasValue {
				fmt.Printf("%s = %g\n", m.Path, m.Value)
			} else {
				fmt.Println(m.Path)
			}
		}
	case "reset":
		if len(args) != 2 {
			usage()
		}
		if err := client.Reset(core.Namespace(args[1])); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "publish":
		if len(args) != 4 {
			usage()
		}
		v, err := strconv.ParseFloat(args[3], 64)
		if err != nil {
			fatal(fmt.Errorf("value %q: %w", args[3], err))
		}
		n := conduit.NewNode()
		n.SetFloat(args[2], v)
		if err := client.Publish(core.Namespace(args[1]), n); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "shutdown":
		if err := client.Shutdown(); err != nil {
			fatal(err)
		}
		fmt.Println("shutdown requested")
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "somactl:", err)
	os.Exit(1)
}
