// Command wfrun runs a small, real-time monitored workflow end to end on
// this machine: a SOMA service over real TCP, a pilot with a simulated
// Summit-shaped allocation executing millisecond-scale tasks on the wall
// clock, an RP monitor reading the live profile stream, and a hardware
// monitor sampling the machine's real /proc. It then prints the workflow
// summary, per-task execution times and the machine's CPU utilization as
// observed through SOMA — the zero-to-observability demo.
//
// Usage:
//
//	wfrun -tasks 8 -nodes 2 -task-ms 150 -interval 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
)

func main() {
	tasks := flag.Int("tasks", 8, "application tasks to run")
	nodes := flag.Int("nodes", 2, "pilot nodes")
	taskMS := flag.Int("task-ms", 150, "per-task duration in milliseconds")
	ranks := flag.Int("ranks", 4, "MPI ranks per task")
	interval := flag.Float64("interval", 0.2, "monitoring interval in seconds")
	flag.Parse()

	rt := des.NewRealRuntime()
	defer rt.Shutdown()

	// SOMA service over real TCP.
	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 1})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		log.Fatalf("wfrun: %v", err)
	}
	defer svc.Close()
	fmt.Printf("SOMA service listening at %s\n", addr)
	client, err := core.Connect(addr, nil)
	if err != nil {
		log.Fatalf("wfrun: %v", err)
	}
	defer client.Close()
	client.EnableAsync(256)

	// Pilot over a Summit-shaped allocation, wall-clock execution.
	batch := platform.NewBatchSystem(platform.NewCluster(*nodes, platform.Summit()))
	sess := pilot.NewSession(rt, batch)
	pl, err := sess.SubmitPilot(pilot.PilotDescription{
		Nodes: *nodes, BootstrapSec: 0.05, SchedOverheadSec: 0.002,
	})
	if err != nil {
		log.Fatalf("wfrun: %v", err)
	}
	defer sess.Close()

	// RP monitor on the live profile stream.
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: rt, Profiler: pl.Agent.Profiler(), Pub: client, IntervalSec: *interval,
	})
	if err != nil {
		log.Fatalf("wfrun: %v", err)
	}
	stopRP := rpm.Start()

	// Hardware monitor on this machine's real /proc.
	src, err := procfs.NewRealSource("", rt)
	if err != nil {
		log.Printf("wfrun: no /proc available (%v); hardware namespace disabled", err)
	} else {
		hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
			Runtime: rt, Source: procfs.NewSampler(src), Pub: client, IntervalSec: *interval,
		})
		if err != nil {
			log.Fatalf("wfrun: %v", err)
		}
		stopHW := hwm.Start()
		defer stopHW()
	}

	// Submit tasks that burn real wall time.
	tm := sess.NewTaskManager(pl)
	var tds []pilot.TaskDescription
	dur := float64(*taskMS) / 1000
	for i := 0; i < *tasks; i++ {
		tds = append(tds, pilot.TaskDescription{
			Name:     fmt.Sprintf("app-%03d", i),
			Ranks:    *ranks,
			Duration: func(pilot.ExecContext) float64 { return dur },
		})
	}
	start := time.Now()
	submitted, err := tm.Submit(tds)
	if err != nil {
		log.Fatalf("wfrun: %v", err)
	}
	tm.WaitAll()
	stopRP() // final collection
	fmt.Printf("workflow of %d tasks finished in %v\n\n", len(submitted), time.Since(start).Round(time.Millisecond))

	// Everything below is read back *through SOMA*, not from the runtime.
	analysis := core.Analysis{Q: client}
	series, err := analysis.WorkflowSeries()
	if err != nil {
		log.Fatalf("wfrun: workflow series: %v", err)
	}
	if len(series) > 0 {
		last := series[len(series)-1]
		fmt.Printf("SOMA workflow namespace: %d snapshots; final state: done=%d failed=%d running=%d\n",
			len(series), last.Done, last.Failed, last.Running)
	}
	execTimes, err := analysis.ExecTimes()
	if err != nil {
		log.Fatalf("wfrun: exec times: %v", err)
	}
	fmt.Printf("per-task execution times observed by SOMA (%d tasks):\n", len(execTimes))
	for _, task := range submitted {
		fmt.Printf("  %s  %6.1f ms\n", task.UID, execTimes[task.UID]*1000)
	}
	if qw, err := analysis.QueueWaitStats(); err == nil && qw.N > 0 {
		fmt.Printf("agent queue wait (AGENT_SCHEDULING): mean %.1f ms, max %.1f ms over %d tasks\n",
			qw.Mean*1000, qw.Max*1000, qw.N)
	}
	hosts, _ := analysis.Hosts()
	for _, h := range hosts {
		util, err := analysis.CPUUtilSeries(h)
		if err != nil || len(util) == 0 {
			continue
		}
		fmt.Printf("hardware namespace: host %s, %d samples, last CPU util %.1f%%\n",
			h, len(util), util[len(util)-1].Util)
	}
	stats, err := client.Stats()
	if err == nil {
		for _, ns := range []core.Namespace{core.NSWorkflow, core.NSHardware} {
			st := stats[ns]
			fmt.Printf("service instance %-9s: %d publishes, %d leaves\n",
				ns, st.Publishes, st.Leaves)
		}
	}
}
