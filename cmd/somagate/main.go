// Command somagate bridges a SOMA service to the web: JSON over HTTP for
// the query/series/alert/telemetry/trace RPCs, live soma.updates and
// soma.alerts streams over WebSocket, and an embedded dashboard at / — the
// observability surface for everyone who doesn't have a terminal on the
// cluster.
//
// Usage:
//
//	somagate -upstream tcp://127.0.0.1:9900 -listen :8080
//
// The concrete HTTP address is printed on stdout (same contract as somad's
// RPC address). The gateway tolerates upstream restarts: HTTP requests
// redial lazily, WebSocket subscriptions resubscribe with backoff.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hpcobs/gosoma/internal/gateway"
)

func main() {
	upstream := flag.String("upstream", "", "somad RPC address (tcp://host:port), required")
	listen := flag.String("listen", "127.0.0.1:0", "HTTP listen address (host:port)")
	rate := flag.Float64("rate", gateway.DefaultRatePerSec, "per-client request rate limit (req/s; negative = off)")
	burst := flag.Int("burst", gateway.DefaultBurst, "per-client burst allowance")
	ping := flag.Duration("ping", gateway.DefaultPingInterval, "WebSocket ping interval")
	flag.Parse()

	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "somagate: -upstream is required")
		os.Exit(2)
	}

	g, err := gateway.New(gateway.Config{
		Upstream:     *upstream,
		RatePerSec:   *rate,
		Burst:        *burst,
		PingInterval: *ping,
	})
	if err != nil {
		log.Fatalf("somagate: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("somagate: listen %s: %v", *listen, err)
	}
	srv := &http.Server{
		Handler: g.Handler(),
		// Write timeout stays off: WebSocket connections are long-lived
		// hijacked streams with their own per-frame deadlines.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	fmt.Printf("http://%s\n", ln.Addr()) // the published HTTP address
	log.Printf("somagate: serving %s -> %s", ln.Addr(), *upstream)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("somagate: %s, shutting down", sig)
	case err := <-done:
		log.Printf("somagate: server: %v", err)
	}
	srv.Close()
	g.Close()
}
