// Command somad runs a standalone SOMA service over TCP — the form the
// service takes when deployed as a long-running service task on dedicated
// nodes. Clients connect with core.Connect(addr) and use the four-namespace
// monitoring API (publish/query/stats/shutdown).
//
// Usage:
//
//	somad -listen tcp://0.0.0.0:9900 -ranks 4
//	somad -listen ... -metrics :9091   # also serve /metrics (Prometheus text)
//
// The concrete address is printed on stdout (the service "makes its RPC
// address publicly known within the workflow"); the process exits when a
// client sends the shutdown RPC or on SIGINT/SIGTERM.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "tcp://127.0.0.1:0", "address to listen on (tcp://host:port or inproc://name)")
	ranks := flag.Int("ranks", 1, "SOMA service ranks per namespace instance")
	shared := flag.Bool("shared", false, "use one shared instance instead of one per namespace")
	statsEvery := flag.Duration("stats-every", 0, "periodically log instance statistics (0 = off)")
	dump := flag.String("dump", "", "write a JSON snapshot of all namespaces to this file on shutdown (post-mortem analysis)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus-style text metrics at http://<addr>/metrics (e.g. :9091; empty = off)")
	hwmon := flag.Bool("hwmon", false, "sample the local /proc tree into the hardware namespace (live stream source)")
	hwmonEvery := flag.Duration("hwmon-interval", 30*time.Second, "local /proc sampling period (with -hwmon)")
	spanRing := flag.Int("span-ring", 0, "recent-span ring capacity (0 = default 256)")
	traceMax := flag.Int("trace-max", 0, "kept traces retained by the tail sampler (0 = default 128)")
	traceHead := flag.Int("trace-head", 0, "head-sample 1 in N unremarkable traces (0 = default 64, negative = off)")
	peers := flag.String("peers", "", "comma-separated peer addresses: join a sharded SOMA cluster with these instances")
	clusterID := flag.String("id", "", "stable cluster member id (with -peers; default: the listen address)")
	pingEvery := flag.Duration("ping", 0, "cluster liveness ping interval (0 = default 250ms)")
	flag.Parse()

	// Tracing knobs reconfigure the Default registry before the service
	// starts publishing spans into it; zero values keep the baked-in bounds.
	if *spanRing > 0 || *traceMax > 0 || *traceHead != 0 {
		opts := telemetry.Options{SpanRingCapacity: *spanRing}
		if *traceMax > 0 || *traceHead != 0 {
			opts.TraceStore = &telemetry.TraceStoreOptions{
				MaxTraces:       *traceMax,
				HeadSampleEvery: *traceHead,
			}
		}
		telemetry.Default().Configure(opts)
	}

	svc := core.NewService(core.ServiceConfig{
		RanksPerNamespace: *ranks,
		Shared:            *shared,
	})
	addr, err := svc.Listen(*listen)
	if err != nil {
		log.Fatalf("somad: %v", err)
	}
	fmt.Println(addr) // the published RPC address
	log.Printf("somad: serving %d rank(s) per namespace at %s", *ranks, addr)

	if *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		err := svc.JoinCluster(core.ClusterConfig{
			SelfID:       *clusterID,
			Peers:        peerList,
			PingInterval: *pingEvery,
		})
		if err != nil {
			log.Fatalf("somad: join cluster: %v", err)
		}
		log.Printf("somad: clustered with %d peer(s): %s", len(peerList), *peers)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			// Buffer the exposition so an encode failure can still become
			// a clean 500 instead of a torn 200.
			var buf bytes.Buffer
			if err := telemetry.Default().WriteText(&buf); err != nil {
				http.Error(w, "metrics encoding failed", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(buf.Bytes())
		})
		msrv := &http.Server{
			Addr:    *metricsAddr,
			Handler: mux,
			// Bound every phase of a scrape so a slowloris client can't
			// park a goroutine forever.
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
		}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("somad: metrics server: %v", err)
			}
		}()
		defer msrv.Close()
		log.Printf("somad: metrics at http://%s/metrics", *metricsAddr)
	}

	// -hwmon turns somad itself into a hardware-namespace stream source: the
	// local /proc tree is sampled on a wall-clock cadence and published
	// in-process, so subscribers (somactl watch, somatop sparklines) see live
	// node data without a separate monitor daemon.
	if *hwmon {
		rt := des.NewRealRuntime()
		defer rt.Shutdown()
		src, err := procfs.NewRealSource("", des.NewRealClock())
		if err != nil {
			log.Fatalf("somad: -hwmon: %v", err)
		}
		mon, err := core.NewHWMonitor(core.HWMonitorConfig{
			Runtime:     rt,
			Source:      procfs.NewSampler(src),
			Pub:         core.LocalPublisher{Service: svc},
			IntervalSec: hwmonEvery.Seconds(),
		})
		if err != nil {
			log.Fatalf("somad: -hwmon: %v", err)
		}
		stopMon := mon.Start()
		defer stopMon()
		log.Printf("somad: sampling local /proc every %s into the hardware namespace", *hwmonEvery)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	poll := time.NewTicker(200 * time.Millisecond)
	defer poll.Stop()
	shutdown := func(reason string) {
		log.Printf("somad: %s, shutting down", reason)
		if *dump != "" {
			snap, err := svc.Snapshot()
			if err == nil {
				err = snap.WriteFile(*dump)
			}
			if err != nil {
				log.Printf("somad: snapshot failed: %v", err)
			} else {
				log.Printf("somad: snapshot written to %s", *dump)
			}
		}
		svc.Close()
	}
	for {
		select {
		case sig := <-sigc:
			shutdown(sig.String())
			return
		case <-tick:
			for _, st := range svc.Stats() {
				log.Printf("somad: ns=%-12s publishes=%d leaves=%d bytes_in=%d",
					st.Namespace, st.Publishes, st.Leaves, st.BytesIn)
			}
		case <-poll.C:
			if svc.Stopped() {
				shutdown("shutdown RPC received")
				return
			}
		}
	}
}
