package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hpcobs/gosoma/internal/gateway"
)

// wsReport is the JSON summary `somabench ws` prints: what a live
// dashboard would have experienced over the probe window. The
// gateway-smoke CI job holds one of these across a somad restart and
// asserts messages kept arriving and every loss was accounted.
type wsReport struct {
	URL              string  `json:"url"`
	DurationSec      float64 `json:"duration_sec"`
	Messages         int64   `json:"messages"`
	Pings            int64   `json:"pings"`
	DroppedWS        int64   `json:"dropped_ws"`
	DroppedUpstream  int64   `json:"dropped_upstream"`
	LongestGapSec    float64 `json:"longest_gap_sec"`
	DisconnectClosed bool    `json:"disconnect_closed"`
}

// wsMessage mirrors the gateway's per-update JSON envelope (drop counters
// only; the tree is ignored).
type wsMessage struct {
	DroppedWS       int64 `json:"dropped_ws"`
	DroppedUpstream int64 `json:"dropped_upstream"`
}

// runWS implements `somabench ws -url ws://host:port/ws?ns=... -for 30s`:
// subscribe like a browser, answer pings, count messages and accounted
// drops, and report the longest silence (a gap longer than the upstream
// restart window would mean the gateway's resubscribe machinery failed).
func runWS(args []string) int {
	fs := flag.NewFlagSet("somabench ws", flag.ExitOnError)
	url := fs.String("url", "", "gateway WebSocket URL (ws://host:port/ws?ns=...), required")
	dur := fs.Duration("for", 30*time.Second, "how long to hold the subscription")
	minMsgs := fs.Int64("min-messages", 0, "exit nonzero unless at least this many messages arrived")
	fs.Parse(args)
	if *url == "" {
		fmt.Fprintln(os.Stderr, "somabench ws: -url is required")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	conn, err := gateway.Dial(ctx, *url)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "somabench ws: %v\n", err)
		return 1
	}
	defer conn.Close()

	rep := wsReport{URL: *url}
	start := time.Now()
	deadline := start.Add(*dur)
	lastMsg := start
	for time.Now().Before(deadline) {
		conn.SetReadDeadline(deadline.Add(time.Second))
		op, payload, err := conn.ReadMessage()
		if err != nil {
			// Read deadline past the probe window is the normal way out on
			// a quiet stream; anything earlier is a torn connection.
			rep.DisconnectClosed = time.Now().Before(deadline)
			break
		}
		switch op {
		case gateway.OpPing:
			rep.Pings++
			if err := conn.WriteMessage(gateway.OpPong, payload); err != nil {
				rep.DisconnectClosed = true
			}
		case gateway.OpClose:
			rep.DisconnectClosed = true
		case gateway.OpText:
			rep.Messages++
			if gap := time.Since(lastMsg).Seconds(); gap > rep.LongestGapSec {
				rep.LongestGapSec = gap
			}
			lastMsg = time.Now()
			var m wsMessage
			if json.Unmarshal(payload, &m) == nil {
				rep.DroppedWS = m.DroppedWS
				rep.DroppedUpstream = m.DroppedUpstream
			}
		}
		if rep.DisconnectClosed {
			break
		}
	}
	rep.DurationSec = time.Since(start).Seconds()

	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if rep.DisconnectClosed {
		fmt.Fprintln(os.Stderr, "somabench ws: connection torn before the probe window ended")
		return 1
	}
	if rep.Messages < *minMsgs {
		fmt.Fprintf(os.Stderr, "somabench ws: %d messages < required %d\n", rep.Messages, *minMsgs)
		return 1
	}
	return 0
}
