package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
)

// pubReport is the JSON summary `somabench pub` prints.
type pubReport struct {
	Addr      string  `json:"addr"`
	NS        string  `json:"ns"`
	Paths     int     `json:"paths"`
	Rounds    int     `json:"rounds"`
	Published int64   `json:"published"`
	Failed    int64   `json:"failed"`
	DurSec    float64 `json:"dur_sec"`
}

// runPub implements `somabench pub`: a steady publisher against an
// EXTERNAL somad (unlike `somabench load`, which boots its own in-process
// service). The gateway-smoke job uses it to put real traffic — trees,
// series points, query-cache invalidations — behind the HTTP surface it
// probes.
func runPub(args []string) int {
	fs := flag.NewFlagSet("somabench pub", flag.ExitOnError)
	addr := fs.String("addr", "", "somad RPC address (tcp://host:port), required")
	ns := fs.String("ns", "hardware", "namespace to publish into")
	paths := fs.Int("paths", 8, "distinct leaf paths per round")
	rounds := fs.Int("rounds", 20, "publish rounds")
	every := fs.Duration("every", 100*time.Millisecond, "delay between rounds")
	fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "somabench pub: -addr is required")
		return 2
	}
	cli, err := core.Connect(*addr, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "somabench pub: %v\n", err)
		return 1
	}
	defer cli.Close()

	rep := pubReport{Addr: *addr, NS: *ns, Paths: *paths, Rounds: *rounds}
	start := time.Now()
	for r := 0; r < *rounds; r++ {
		n := conduit.NewNode()
		for p := 0; p < *paths; p++ {
			// A wave per path: visibly moving sparklines, deterministic data.
			v := 50 + 40*math.Sin(float64(r)/3+float64(p))
			n.SetFloat(fmt.Sprintf("PROC/cn%02d/CPU Util", p), v)
		}
		if err := cli.Publish(core.Namespace(*ns), n); err != nil {
			rep.Failed++
		} else {
			rep.Published++
		}
		if r < *rounds-1 {
			time.Sleep(*every)
		}
	}
	rep.DurSec = time.Since(start).Seconds()

	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "somabench pub: %d/%d publishes failed\n", rep.Failed, rep.Failed+rep.Published)
		return 1
	}
	return 0
}
