// Command somabench regenerates every table and figure of the paper's
// evaluation from the simulated full-stack reproduction.
//
// Usage:
//
//	somabench -list
//	somabench all
//	somabench table1 fig4 fig11
//	somabench -max-nodes 128 fig11     # truncate the Scaling B sweep
//
// Each experiment runs the complete pipeline — pilot runtime, SOMA service
// over RPC, monitor daemons, workload models — in simulated time and prints
// the same rows/series the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/hpcobs/gosoma/internal/experiments"
)

type expEntry struct {
	id    string
	about string
	run   func(maxNodes int) (experiments.Report, error)
}

func registry() []expEntry {
	wrap := func(f func() (experiments.Report, error)) func(int) (experiments.Report, error) {
		return func(int) (experiments.Report, error) { return f() }
	}
	return []expEntry{
		{"table1", "OpenFOAM experiment summary",
			func(int) (experiments.Report, error) { return experiments.Table1(), nil }},
		{"table2", "DeepDriveMD mini-app experiment summary",
			func(int) (experiments.Report, error) { return experiments.Table2(), nil }},
		{"fig4", "OpenFOAM strong scaling", wrap(experiments.Fig4)},
		{"fig5", "TAU per-rank MPI times", wrap(experiments.Fig5)},
		{"fig6", "execution time vs node placement", wrap(experiments.Fig6)},
		{"fig7", "per-node CPU utilization timeline", wrap(experiments.Fig7)},
		{"fig8", "RP resource utilization timelines", wrap(experiments.Fig8)},
		{"fig9", "DDMD tuning: CPU utilization vs cores", wrap(experiments.Fig9)},
		{"fig10", "Scaling A: SOMA rank ratios", wrap(experiments.Fig10)},
		{"fig11", "Scaling B: monitoring overhead at 64-512 nodes",
			experiments.Fig11},
		{"adaptive", "between-phase SOMA analysis", wrap(experiments.AdaptiveReport)},
	}
}

func main() {
	// `somabench load` is its own experiment with its own flags: a live
	// publish-throughput run rather than a regenerated paper figure.
	if len(os.Args) > 1 && os.Args[1] == "load" {
		os.Exit(runLoad(os.Args[2:]))
	}
	// `somabench ws` probes a somagate WebSocket stream (gateway-smoke CI).
	if len(os.Args) > 1 && os.Args[1] == "ws" {
		os.Exit(runWS(os.Args[2:]))
	}
	// `somabench pub` publishes steady traffic at an external somad.
	if len(os.Args) > 1 && os.Args[1] == "pub" {
		os.Exit(runPub(os.Args[2:]))
	}
	list := flag.Bool("list", false, "list available experiments and exit")
	maxNodes := flag.Int("max-nodes", 0, "truncate the Scaling B sweep (0 = full 512)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: somabench [-list] [-max-nodes N] <experiment>... | load [-help] | all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	entries := registry()
	if *list {
		for _, e := range entries {
			fmt.Printf("%-9s %s\n", e.id, e.about)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range entries {
				want[e.id] = true
			}
			continue
		}
		want[strings.ToLower(a)] = true
	}
	known := map[string]bool{}
	for _, e := range entries {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "somabench: unknown experiment(s): %s (try -list)\n",
			strings.Join(unknown, ", "))
		os.Exit(2)
	}

	failed := false
	for _, e := range entries {
		if !want[e.id] {
			continue
		}
		start := time.Now()
		rep, err := e.run(*maxNodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "somabench: %s: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s regenerated in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
