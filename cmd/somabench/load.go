// somabench load — the wire-batching scale experiment: N logical publishers
// multiplexed over a small pool of coalescing connections into one SOMA
// service, measuring sustained publishes/sec and ack-latency tails.
//
// The shape mirrors the paper's Scaling experiments pushed to their limit:
// instead of one monitor daemon per node, every logical publisher is a
// single-leaf sample stream ("one sensor"), and the client-side coalescer
// packs thousands of them onto each connection. The server runs the
// decode-free batch ingest (rollups off, no subscribers), and a monitor
// goroutine issues periodic merged-tree queries so the run includes fold
// cost — steady-state numbers, not an append-only sprint.
//
// Loss accounting is exact: every publish is acknowledged (counted by
// Client.Published at send-acknowledgement), and the server's per-instance
// stats must account for the same number of records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// loadReport is the machine-readable result of one load run (-json).
type loadReport struct {
	Publishers      int     `json:"publishers"`
	Conns           int     `json:"conns"`
	Peers           int     `json:"peers"`
	DurationSec     float64 `json:"duration_sec"`
	Publishes       int64   `json:"publishes"`
	PublishesPerSec float64 `json:"publishes_per_sec"`
	P50Micros       float64 `json:"ack_p50_us"`
	P95Micros       float64 `json:"ack_p95_us"`
	P99Micros       float64 `json:"ack_p99_us"`
	BytesPerOp      float64 `json:"wire_bytes_per_op"`
	BatchFlushes    int64   `json:"batch_flushes"`
	LeavesPerFlush  float64 `json:"leaves_per_flush"`
	ServerPublishes int64   `json:"server_publishes"`
	Lost            int64   `json:"lost"`
}

func runLoad(argv []string) int {
	fs := flag.NewFlagSet("somabench load", flag.ExitOnError)
	publishers := fs.Int("publishers", 100000, "logical publishers (each owns one sample path)")
	conns := fs.Int("conns", 8, "client connections the publishers multiplex over")
	duration := fs.Duration("duration", 10*time.Second, "measured run length")
	batchLeaves := fs.Int("batch-leaves", 0, "coalescer leaf-count flush threshold (0 = default)")
	batchBytes := fs.Int("batch-bytes", 0, "coalescer byte-budget flush threshold (0 = default)")
	batchAge := fs.Duration("batch-age", 0, "coalescer age flush bound (0 = default)")
	batchTarget := fs.Duration("target-latency", 0, "adaptive coalescer: steer the age bound toward this ack-latency tail (0 = fixed batch-age)")
	peers := fs.Int("peers", 1, "in-process service instances joined into one sharded cluster (1 = single instance)")
	queryInterval := fs.Duration("query-interval", 250*time.Millisecond, "monitor query period (folds pending records)")
	rollups := fs.Bool("rollups", false, "enable server rollups (forces tree materialization on ingest)")
	addr := fs.String("addr", "tcp://127.0.0.1:0", "listen address for the in-process service")
	jsonOut := fs.Bool("json", false, "emit the report as one JSON object on stdout")
	minRate := fs.Float64("min-rate", 0, "fail (exit 1) below this many publishes/sec (0 = report only)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "somabench load: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "somabench load: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *publishers < 1 || *conns < 1 || *conns > *publishers {
		fmt.Fprintln(os.Stderr, "somabench load: need publishers >= conns >= 1")
		return 2
	}
	if *peers < 1 || *peers > 16 {
		fmt.Fprintln(os.Stderr, "somabench load: need 1 <= peers <= 16")
		return 2
	}

	// -peers N boots N instances and joins them into one sharded cluster;
	// the client side then routes each publisher's stream straight to its
	// shard owner and the monitor queries scatter-gather across the fleet.
	svcs := make([]*core.Service, *peers)
	addrs := make([]string, *peers)
	for i := range svcs {
		svcs[i] = core.NewService(core.ServiceConfig{
			// Bounded history: at load rates the ring is a sliding window, and
			// keeping it short keeps retained records (and GC scan) flat.
			MaxRecords:     4096,
			DisableRollups: !*rollups,
		})
		defer svcs[i].Close()
		listen := "tcp://127.0.0.1:0"
		if i == 0 {
			listen = *addr
		}
		laddr, err := svcs[i].Listen(listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "somabench load: listen %s: %v\n", listen, err)
			return 1
		}
		addrs[i] = laddr
	}
	laddr := addrs[0]
	if *peers > 1 {
		for i, s := range svcs {
			var others []string
			for j, a := range addrs {
				if j != i {
					others = append(others, a)
				}
			}
			err := s.JoinCluster(core.ClusterConfig{
				SelfID:       fmt.Sprintf("bench-%d", i),
				Peers:        others,
				PingInterval: 100 * time.Millisecond,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "somabench load: join cluster: %v\n", err)
				return 1
			}
		}
		if err := waitBenchCluster(svcs); err != nil {
			fmt.Fprintf(os.Stderr, "somabench load: %v\n", err)
			return 1
		}
	}

	// One single-leaf payload per logical publisher, pre-encoded up front
	// (PublishEncoded) so the run times the publish pipeline, not payload
	// construction — and so the publisher working set is flat byte slices,
	// not 100k pointer-rich trees for the GC to trace every cycle.
	// Publishers are laid out as 16 sensors per node the way per-node
	// monitors report: fan-out spread over two tree levels instead of one
	// flat 100k-child map keeps every child map small enough to stay
	// cache-resident during folds and grafts.
	payloads := make([]loadPayload, *publishers)
	for i := range payloads {
		path := fmt.Sprintf("LOAD/cn%05d/s%02d", i/16, i%16)
		n := conduit.NewNode()
		n.SetFloat(path, float64(i))
		payloads[i] = loadPayload{path: path, enc: n.EncodeBinary()}
	}

	batch := core.BatchConfig{
		MaxBytes:      *batchBytes,
		MaxLeaves:     *batchLeaves,
		MaxAge:        *batchAge,
		TargetLatency: *batchTarget,
	}
	clients := make([]loadConn, *conns)
	for i := range clients {
		if *peers > 1 {
			cc, err := core.ConnectCluster(laddr, nil, core.ClusterClientConfig{Batch: &batch})
			if err != nil {
				fmt.Fprintf(os.Stderr, "somabench load: connect cluster: %v\n", err)
				return 1
			}
			defer cc.Close()
			clients[i] = clusterConn{cc}
		} else {
			c, err := core.Connect(laddr, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "somabench load: connect: %v\n", err)
				return 1
			}
			defer c.Close()
			c.EnableBatch(batch)
			clients[i] = singleConn{c}
		}
	}

	// Partition the publishers across connections; each producer goroutine
	// round-robins its share so every logical publisher keeps publishing
	// for the whole run.
	var stop atomic.Bool
	var pubErr atomic.Value
	var wg sync.WaitGroup
	per := (*publishers + *conns - 1) / *conns
	start := time.Now()
	for ci := 0; ci < *conns; ci++ {
		lo := ci * per
		hi := lo + per
		if hi > *publishers {
			hi = *publishers
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(c loadConn, own []loadPayload) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				p := own[i%len(own)]
				if err := c.publishEncoded(core.NSHardware, p.path, p.enc); err != nil {
					pubErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(clients[ci], payloads[lo:hi])
	}

	// The monitor mix: periodic merged-tree queries fold the pending batch
	// records into the snapshot, exactly what a live analysis client does.
	quit := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		tick := time.NewTicker(*queryInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				// Scatter-gathers across the fleet when clustered.
				if _, err := svcs[0].Query(core.NSHardware, "LOAD"); err != nil {
					pubErr.CompareAndSwap(nil, err)
					return
				}
			case <-quit:
				return
			}
		}
	}()

	time.Sleep(*duration)
	// The sustained rate is acknowledged publishes over the measured
	// window, sampled at the stop instant; the drain below (Flush + final
	// counts) exists for exact loss accounting, not for the rate — folding
	// its tail into the denominator would charge queue-drain time against
	// steady-state throughput.
	elapsed := time.Since(start)
	var atStop int64
	for _, c := range clients {
		atStop += c.published()
	}
	stop.Store(true)
	wg.Wait()
	close(quit)
	<-monDone
	for _, c := range clients {
		if err := c.flush(); err != nil {
			pubErr.CompareAndSwap(nil, err)
		}
	}
	if err, _ := pubErr.Load().(error); err != nil {
		fmt.Fprintf(os.Stderr, "somabench load: %v\n", err)
		return 1
	}

	var published int64
	for _, c := range clients {
		published += c.published()
	}
	var serverPubs, bytesIn int64
	for _, svc := range svcs {
		for _, st := range svc.Stats() {
			if st.Namespace == core.NSHardware {
				serverPubs += st.Publishes
				bytesIn += st.BytesIn
			}
		}
	}

	reg := telemetry.Default()
	ack := reg.Histogram("core.client.publish.ack.latency")
	flushes := reg.Counter("core.client.batch.flushes").Value()
	leaves := reg.Counter("core.client.batch.leaves").Value()
	rep := loadReport{
		Publishers:      *publishers,
		Conns:           *conns,
		Peers:           *peers,
		DurationSec:     elapsed.Seconds(),
		Publishes:       published,
		PublishesPerSec: float64(atStop) / elapsed.Seconds(),
		P50Micros:       float64(ack.Quantile(0.50)) / float64(time.Microsecond),
		P95Micros:       float64(ack.Quantile(0.95)) / float64(time.Microsecond),
		P99Micros:       float64(ack.Quantile(0.99)) / float64(time.Microsecond),
		BatchFlushes:    flushes,
		ServerPublishes: serverPubs,
		Lost:            published - serverPubs,
	}
	if published > 0 {
		rep.BytesPerOp = float64(bytesIn) / float64(published)
	}
	if flushes > 0 {
		rep.LeavesPerFlush = float64(leaves) / float64(flushes)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "somabench load: %v\n", err)
			return 1
		}
	} else {
		fleet := ""
		if rep.Peers > 1 {
			fleet = fmt.Sprintf(" into %d clustered instances", rep.Peers)
		}
		fmt.Printf("somabench load: %d publishers over %d conns%s for %.1fs\n",
			rep.Publishers, rep.Conns, fleet, rep.DurationSec)
		fmt.Printf("  publishes        %d (%.0f/sec)\n", rep.Publishes, rep.PublishesPerSec)
		fmt.Printf("  ack latency      p50 %.0fus  p95 %.0fus  p99 %.0fus\n",
			rep.P50Micros, rep.P95Micros, rep.P99Micros)
		fmt.Printf("  wire bytes/op    %.1f\n", rep.BytesPerOp)
		fmt.Printf("  batch flushes    %d (%.0f leaves/flush)\n", rep.BatchFlushes, rep.LeavesPerFlush)
		fmt.Printf("  server records   %d (lost %d)\n", rep.ServerPublishes, rep.Lost)
	}

	if rep.Lost != 0 {
		fmt.Fprintf(os.Stderr, "somabench load: FAIL — %d acknowledged publishes missing server-side\n", rep.Lost)
		return 1
	}
	if *minRate > 0 && rep.PublishesPerSec < *minRate {
		fmt.Fprintf(os.Stderr, "somabench load: FAIL — %.0f publishes/sec below the %.0f/sec floor\n",
			rep.PublishesPerSec, *minRate)
		return 1
	}
	return 0
}

// loadPayload is one logical publisher's pre-encoded sample and its leaf
// path — the shard routing key in clustered runs.
type loadPayload struct {
	path string
	enc  []byte
}

// loadConn abstracts a producer goroutine's connection: a plain Client in
// single-instance runs, a shard-routing ClusterClient under -peers.
type loadConn interface {
	publishEncoded(ns core.Namespace, path string, enc []byte) error
	flush() error
	published() int64
}

type singleConn struct{ c *core.Client }

func (s singleConn) publishEncoded(ns core.Namespace, _ string, enc []byte) error {
	return s.c.PublishEncoded(ns, enc)
}
func (s singleConn) flush() error     { return s.c.Flush() }
func (s singleConn) published() int64 { return s.c.Published() }

type clusterConn struct{ c *core.ClusterClient }

func (s clusterConn) publishEncoded(ns core.Namespace, path string, enc []byte) error {
	return s.c.PublishEncoded(ns, path, enc)
}
func (s clusterConn) flush() error     { return s.c.Flush() }
func (s clusterConn) published() int64 { return s.c.Published() }

// waitBenchCluster blocks until every instance sees the whole fleet alive
// under one ring epoch.
func waitBenchCluster(svcs []*core.Service) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		epochs := map[uint64]bool{}
		ready := true
		for _, s := range svcs {
			e, members := s.ClusterRing()
			if len(members) != len(svcs) {
				ready = false
				break
			}
			epochs[e] = true
		}
		if ready && len(epochs) == 1 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster of %d never converged", len(svcs))
		}
		time.Sleep(25 * time.Millisecond)
	}
}
