package mercury

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/telemetry"
)

// The dial must be bounded by the policy's connect timeout: a non-routable
// address fails at Lookup within the budget instead of hanging in the
// kernel's SYN retransmission schedule. 100::1 is the RFC 6666 discard-only
// prefix: environments with an IPv6 route black-hole the SYN (exercising the
// timeout); environments without one fail immediately — bounded either way.
// (IPv4 TEST-NET addresses are unusable here: CI sandboxes often run a
// transparent proxy that accepts every IPv4 connect.)
func TestConnectTimeoutNonRoutable(t *testing.T) {
	start := time.Now()
	_, err := LookupPolicy("tcp://[100::1]:9", &CallPolicy{ConnectTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("lookup of a non-routable address succeeded")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("dial took %v, want ~300ms connect timeout", el)
	}
}

func TestBackoffCapAndJitter(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if c := b.Cap(i); c != w*time.Millisecond {
			t.Fatalf("Cap(%d) = %v, want %v", i, c, w*time.Millisecond)
		}
	}
	for i := 0; i < 200; i++ {
		if d := b.Delay(3); d < 0 || d > 80*time.Millisecond {
			t.Fatalf("Delay(3) = %v outside [0, 80ms]", d)
		}
	}
}

// dropRespInjector swallows the first N server-side response writes,
// simulating responses lost in flight after the handler has run.
type dropRespInjector struct{ remaining atomic.Int64 }

func (i *dropRespInjector) WrapConn(conn net.Conn, client bool) net.Conn {
	if client {
		return conn
	}
	return &dropRespConn{Conn: conn, i: i}
}

func (i *dropRespInjector) InprocCall(string) InjectedFault { return InjectedFault{} }

type dropRespConn struct {
	net.Conn
	i *dropRespInjector
}

func (c *dropRespConn) Write(b []byte) (int, error) {
	for {
		rem := c.i.remaining.Load()
		if rem <= 0 {
			return c.Conn.Write(b)
		}
		if c.i.remaining.CompareAndSwap(rem, rem-1) {
			return len(b), nil
		}
	}
}

func lostResponseService(t *testing.T, drops int64) (string, *atomic.Int64) {
	t.Helper()
	inj := &dropRespInjector{}
	inj.remaining.Store(drops)
	e := NewEngine(WithInjector(inj))
	var fired atomic.Int64
	e.Register("mutate", func(_ context.Context, _ []byte) ([]byte, error) {
		fired.Add(1)
		return []byte("done"), nil
	})
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return addr, &fired
}

// A request that reached the server but whose response was lost must NOT be
// retried when the RPC is not declared idempotent: the handler fires exactly
// once and the caller gets the transport error.
func TestRetryNeverRefiresNonIdempotent(t *testing.T) {
	addr, fired := lostResponseService(t, 1)
	ep, err := LookupPolicy(addr, &CallPolicy{
		AttemptTimeout: 150 * time.Millisecond,
		MaxRetries:     3,
		Backoff:        Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		// Idempotent nil: nothing may be re-sent once it was written.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	_, err = ep.Call(context.Background(), "mutate", []byte("x"))
	if err == nil {
		t.Fatal("call with a dropped response reported success")
	}
	if !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrAttemptTimeout", err)
	}
	// Give any (incorrect) in-flight retry a chance to land before counting.
	time.Sleep(50 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Fatalf("non-idempotent handler fired %d times, want exactly 1", n)
	}
}

// The same lost-response failure IS retried when the RPC is declared
// idempotent, and the retry succeeds.
func TestRetryRefiresIdempotent(t *testing.T) {
	addr, fired := lostResponseService(t, 1)
	ep, err := LookupPolicy(addr, &CallPolicy{
		AttemptTimeout: 150 * time.Millisecond,
		MaxRetries:     3,
		Backoff:        Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Idempotent:     IdempotentSet("mutate"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	out, err := ep.Call(context.Background(), "mutate", []byte("x"))
	if err != nil {
		t.Fatalf("idempotent retry never recovered: %v", err)
	}
	if string(out) != "done" {
		t.Fatalf("out = %q", out)
	}
	if n := fired.Load(); n != 2 {
		t.Fatalf("handler fired %d times, want 2 (original + one retry)", n)
	}
}

// Half-open must admit exactly one probe no matter how many callers race for
// it. Run with -race (make verify does).
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	p := &CallPolicy{FailureThreshold: 1, OpenFor: 30 * time.Millisecond}
	var b breaker
	b.failure(p)
	if err := b.allow(p); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	time.Sleep(40 * time.Millisecond)

	const callers = 64
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.allow(p); err == nil {
				admitted.Add(1)
			} else if errors.Is(err, ErrBreakerOpen) {
				rejected.Add(1)
			}
		}()
	}
	wg.Wait()
	if admitted.Load() != 1 || rejected.Load() != callers-1 {
		t.Fatalf("half-open admitted %d / rejected %d, want exactly 1 / %d",
			admitted.Load(), rejected.Load(), callers-1)
	}

	// Probe fails: straight back to open, still failing fast.
	b.failure(p)
	if err := b.allow(p); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker admitted a call: %v", err)
	}
	// Probe succeeds after the next window: breaker closes for everyone.
	time.Sleep(40 * time.Millisecond)
	if err := b.allow(p); err != nil {
		t.Fatalf("half-open rejected its single probe: %v", err)
	}
	b.success()
	for i := 0; i < 4; i++ {
		if err := b.allow(p); err != nil {
			t.Fatalf("closed breaker rejected a call: %v", err)
		}
	}
}

// End-to-end breaker: consecutive transport failures open it (fast-fail
// without touching the network), and a restarted service is readmitted via a
// half-open probe.
func TestBreakerEndToEnd(t *testing.T) {
	e := NewEngine()
	e.Register("ping", func(_ context.Context, in []byte) ([]byte, error) { return in, nil })
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := LookupPolicy(addr, &CallPolicy{
		ConnectTimeout:   time.Second,
		FailureThreshold: 2,
		OpenFor:          200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Call(context.Background(), "ping", []byte("a")); err != nil {
		t.Fatal(err)
	}

	e.Close()
	for i := 0; i < 2; i++ {
		if _, err := ep.Call(context.Background(), "ping", nil); err == nil {
			t.Fatalf("call %d to a closed service succeeded", i)
		}
	}
	if st := ep.BreakerState(); st != "open" {
		t.Fatalf("breaker state = %q after threshold failures, want open", st)
	}
	if _, err := ep.Call(context.Background(), "ping", nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker did not fast-fail: %v", err)
	}

	// Restart the service on the same address; after OpenFor the probe call
	// goes through and closes the breaker.
	e2 := NewEngine()
	e2.Register("ping", func(_ context.Context, in []byte) ([]byte, error) { return in, nil })
	if _, err := e2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer e2.Close()
	time.Sleep(250 * time.Millisecond)
	out, err := ep.Call(context.Background(), "ping", []byte("back"))
	if err != nil {
		t.Fatalf("probe call after restart: %v", err)
	}
	if string(out) != "back" {
		t.Fatalf("out = %q", out)
	}
	if st := ep.BreakerState(); st != "closed" {
		t.Fatalf("breaker state = %q after successful probe, want closed", st)
	}
}

// A frame carrying an already-expired deadline must be shed by the server
// before dispatch: the handler never fires and the caller gets
// statusExpired. Drives the wire directly so the client's own deadline check
// cannot mask the server-side path.
func TestServerShedsExpiredDeadline(t *testing.T) {
	e := NewEngine()
	var fired atomic.Int64
	e.Register("work", func(_ context.Context, _ []byte) ([]byte, error) {
		fired.Add(1)
		return nil, nil
	})
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(addr, "tcp://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	name := "work"
	expired := time.Now().Add(-time.Second).UnixNano()
	frame := appendRequestHeader(nil, uint32(reqHeaderLen+len(name)), 7, telemetry.TraceContext{}, expired, name)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var lenBuf [4]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatalf("read response length: %v", err)
	}
	body := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatalf("read response body: %v", err)
	}
	if id := binary.LittleEndian.Uint64(body[0:8]); id != 7 {
		t.Fatalf("response id = %d, want 7", id)
	}
	if status := body[8]; status != statusExpired {
		t.Fatalf("response status = %d, want statusExpired (%d)", status, statusExpired)
	}
	if fired.Load() != 0 {
		t.Fatal("expired call fired the handler")
	}
	if n := e.Stats.ShedExpired.Load(); n != 1 {
		t.Fatalf("Stats.ShedExpired = %d, want 1", n)
	}

	// A live deadline on the same connection dispatches normally.
	live := time.Now().Add(5 * time.Second).UnixNano()
	frame = appendRequestHeader(nil, uint32(reqHeaderLen+len(name)), 8, telemetry.TraceContext{}, live, name)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	body = make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatal(err)
	}
	if status := body[8]; status != statusOK {
		t.Fatalf("live-deadline status = %d, want statusOK", status)
	}
	if fired.Load() != 1 {
		t.Fatalf("handler fired %d times, want 1", fired.Load())
	}
}

// IsTransient draws the line degraded-mode layers (publish spill) depend
// on: transport failures buffer, definitive server verdicts drop.
func TestIsTransientClassification(t *testing.T) {
	transient := []error{
		ErrBreakerOpen, ErrAttemptTimeout, ErrClosed,
		net.ErrClosed, io.EOF, context.DeadlineExceeded,
	}
	for _, err := range transient {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false, want true", err)
		}
	}
	definitive := []error{
		nil, ErrRemoteFailed, ErrUnknownRPC, ErrFrameTooBig, ErrExpired,
		context.Canceled,
	}
	for _, err := range definitive {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true, want false", err)
		}
	}
}

// A caller whose context dies mid-call gets the context error back; the wait
// is bounded by the caller, not the server.
func TestCallDeadlineSurfaced(t *testing.T) {
	e := NewEngine()
	gate := make(chan struct{})
	e.Register("slow", func(ctx context.Context, _ []byte) ([]byte, error) {
		<-gate
		return nil, nil
	})
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defer close(gate)
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := ep.Call(ctx, "slow", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
