// Client-side resilience: per-endpoint call policies (timeouts, bounded
// retries with exponential backoff + full jitter, deadline propagation) and
// a per-endpoint circuit breaker with half-open probing.
//
// The paper's SOMA service lives alongside long-running workflows where
// transient failures — dropped connections, slow nodes, overloaded service
// instances — are the norm, and middleware resilience (not peak throughput)
// dominates usable performance on leadership platforms. The policy layer
// makes every degraded mode explicit and bounded:
//
//   - ConnectTimeout bounds the dial (no bare net.Dial hanging on a dead
//     node's SYN backlog);
//   - CallTimeout/AttemptTimeout bound the wait, and the attempt's deadline
//     travels in the frame header so the server can shed work whose caller
//     has already given up (see ErrExpired and the wire format in
//     mercury.go);
//   - MaxRetries + Backoff redeliver idempotent RPCs through connection
//     loss, with full jitter so a fleet of recovering clients does not
//     reconverge in lockstep;
//   - FailureThreshold/OpenFor trip a circuit breaker that fails fast while
//     an endpoint is down and re-probes it with exactly one call at a time.
//
// All breaker transitions and retry/fast-fail decisions are surfaced
// through the process-wide telemetry registry.
package mercury

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Policy-layer errors.
var (
	// ErrBreakerOpen is returned without touching the network while an
	// endpoint's circuit breaker is open (or a half-open probe is already in
	// flight).
	ErrBreakerOpen = errors.New("mercury: circuit breaker open")
	// ErrExpired reports that a call's deadline had already passed when the
	// server (or local dispatcher) would have run it; the work was shed, the
	// handler never fired.
	ErrExpired = errors.New("mercury: call deadline already expired")
	// ErrAttemptTimeout reports that one call attempt exceeded the policy's
	// AttemptTimeout while the overall call context was still live; the
	// connection is dropped (a black-holed peer is indistinguishable from a
	// dead one) and the call is retried when the policy allows.
	ErrAttemptTimeout = errors.New("mercury: call attempt timed out")
)

// DefaultConnectTimeout bounds dials when the policy does not set one. A
// bare connect to a dead node can otherwise hang for minutes in the kernel's
// retransmission schedule.
const DefaultConnectTimeout = 10 * time.Second

// Policy-layer telemetry (process-wide; per-endpoint state is readable via
// Endpoint.BreakerState).
var (
	telRetries       = telemetry.Default().Counter("mercury.client.retries")
	telBreakerOpened = telemetry.Default().Counter("mercury.breaker.opened")
	telBreakerFast   = telemetry.Default().Counter("mercury.breaker.fastfail")
	telBreakerProbes = telemetry.Default().Counter("mercury.breaker.halfopen_probes")
	telBreakerOpen   = telemetry.Default().Gauge("mercury.breaker.open")
	telShedExpired   = telemetry.Default().Counter("mercury.server.shed_expired")
)

// Backoff is an exponential backoff schedule with full jitter (AWS style):
// the attempt'th delay is drawn uniformly from [0, min(Max, Base<<attempt)].
// Full jitter decorrelates a fleet of clients recovering from the same
// outage — deterministic doubling would have every one of them redial the
// healing service at the same instants.
//
// The zero value is usable and means Base=100ms, Max=5s.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 100 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 5 * time.Second
	}
	return b.Max
}

// Cap returns the un-jittered ceiling for the attempt'th delay (attempt
// counts from 0).
func (b Backoff) Cap(attempt int) time.Duration {
	d := b.base()
	max := b.max()
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Delay returns the attempt'th backoff delay: a uniform draw from
// [0, Cap(attempt)].
func (b Backoff) Delay(attempt int) time.Duration {
	c := b.Cap(attempt)
	if c <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(c) + 1))
}

// Sleep blocks for Delay(attempt) or until ctx is done, returning ctx's
// error in the latter case.
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// CallPolicy configures an Endpoint's resilience behaviour. The zero value
// (and DefaultPolicy) preserves the engine's historical semantics — no
// default call deadline, no retries, no breaker — except that dials are
// always bounded by ConnectTimeout (DefaultConnectTimeout when unset).
//
// Retries only re-send a request after it may have reached the server when
// Idempotent reports the RPC safe to re-fire; connect-stage failures (the
// request was provably never written) are retried for every RPC.
type CallPolicy struct {
	// ConnectTimeout bounds each dial (0 = DefaultConnectTimeout).
	ConnectTimeout time.Duration
	// CallTimeout is the overall deadline applied when the caller's context
	// has none (0 = unbounded, the historical behaviour).
	CallTimeout time.Duration
	// AttemptTimeout bounds each individual attempt; when it fires while the
	// overall context is still live the connection is dropped and the call
	// becomes retryable (idempotent RPCs only). 0 = each attempt may use the
	// whole call budget.
	AttemptTimeout time.Duration
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// Backoff schedules the wait between attempts.
	Backoff Backoff
	// Idempotent reports whether an RPC may be re-sent after the original
	// request possibly reached the server. nil = nothing is.
	Idempotent func(rpc string) bool
	// FailureThreshold consecutive transport failures open the breaker;
	// OpenFor is how long it fails fast before admitting one half-open
	// probe. The breaker is disabled unless both are positive.
	FailureThreshold int
	OpenFor          time.Duration
}

// DefaultPolicy returns the policy endpoints start with: bounded connects,
// everything else off.
func DefaultPolicy() *CallPolicy {
	return &CallPolicy{ConnectTimeout: DefaultConnectTimeout}
}

func (p *CallPolicy) connectTimeout() time.Duration {
	if p == nil || p.ConnectTimeout <= 0 {
		return DefaultConnectTimeout
	}
	return p.ConnectTimeout
}

func (p *CallPolicy) idempotent(rpc string) bool {
	return p != nil && p.Idempotent != nil && p.Idempotent(rpc)
}

func (p *CallPolicy) breakerEnabled() bool {
	return p != nil && p.FailureThreshold > 0 && p.OpenFor > 0
}

// IdempotentSet is a convenience constructor for CallPolicy.Idempotent from
// a fixed list of RPC names.
func IdempotentSet(names ...string) func(string) bool {
	set := make(map[string]struct{}, len(names))
	for _, n := range names {
		set[n] = struct{}{}
	}
	return func(rpc string) bool {
		_, ok := set[rpc]
		return ok
	}
}

// IsTransient reports whether a Call error is a transport-level failure
// that may heal on its own — a dial failure, severed connection, attempt
// timeout, open breaker, or deadline blown waiting on a black-holed peer —
// as opposed to a definitive result from the server (handler error, unknown
// RPC, oversized frame) or the caller's own cancellation. Degraded-mode
// layers (e.g. the core client's publish spill) buffer on transient errors
// and drop on definitive ones.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrRemoteFailed),
		errors.Is(err, ErrUnknownRPC),
		errors.Is(err, ErrFrameTooBig),
		errors.Is(err, ErrExpired),
		errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Circuit breaker. One per endpoint; configuration lives in the (swappable)
// CallPolicy, so the state machine only holds state.

const (
	bkClosed = iota
	bkOpen
	bkHalfOpen
)

type breaker struct {
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// allow admits or fast-fails a call under policy p. After OpenFor, the
// first caller transitions the breaker to half-open and becomes its single
// probe; concurrent callers keep failing fast until the probe resolves.
func (b *breaker) allow(p *CallPolicy) error {
	if !p.breakerEnabled() {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return nil
	case bkOpen:
		if wait := p.OpenFor - time.Since(b.openedAt); wait > 0 {
			telBreakerFast.Inc()
			return fmt.Errorf("%w (half-open probe in %s)", ErrBreakerOpen, wait.Round(time.Millisecond))
		}
		b.state = bkHalfOpen
		b.probing = true
		telBreakerProbes.Inc()
		return nil
	default: // bkHalfOpen
		if b.probing {
			telBreakerFast.Inc()
			return fmt.Errorf("%w (half-open probe in flight)", ErrBreakerOpen)
		}
		b.probing = true
		telBreakerProbes.Inc()
		return nil
	}
}

// success records a server response (healthy transport): the breaker closes.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != bkClosed {
		telBreakerOpen.Dec()
	}
	b.state = bkClosed
	b.fails = 0
	b.probing = false
}

// failure records a transport-level failure, tripping the breaker at the
// policy's threshold (immediately when a half-open probe fails).
func (b *breaker) failure(p *CallPolicy) {
	if !p.breakerEnabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case bkClosed:
		if b.fails >= p.FailureThreshold {
			b.state = bkOpen
			b.openedAt = time.Now()
			telBreakerOpened.Inc()
			telBreakerOpen.Inc()
		}
	case bkHalfOpen:
		// The probe failed: re-open without touching the open gauge
		// (half-open still counted as open).
		b.state = bkOpen
		b.openedAt = time.Now()
		b.probing = false
		telBreakerOpened.Inc()
	case bkOpen:
		// A straggler attempt admitted before the trip; stay open.
	}
}

func (b *breaker) stateName(p *CallPolicy) string {
	if !p.breakerEnabled() {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
