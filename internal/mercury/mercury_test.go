package mercury

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"github.com/hpcobs/gosoma/internal/telemetry"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoEngine(t testing.TB) *Engine {
	t.Helper()
	e := NewEngine()
	e.Register("echo", func(_ context.Context, in []byte) ([]byte, error) {
		return in, nil
	})
	e.Register("fail", func(_ context.Context, _ []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	t.Cleanup(func() { e.Close() })
	return e
}

func TestInprocRoundTrip(t *testing.T) {
	e := echoEngine(t)
	addr, err := e.Listen("inproc://test-echo")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "inproc://test-echo" {
		t.Fatalf("addr = %q", addr)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	out, err := ep.Call(context.Background(), "echo", []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Fatalf("call = %q, %v", out, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	e := echoEngine(t)
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "tcp://127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("concrete addr = %q", addr)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	payload := bytes.Repeat([]byte("x"), 100_000)
	out, err := ep.Call(context.Background(), "echo", payload)
	if err != nil || !bytes.Equal(out, payload) {
		t.Fatalf("large call failed: %v (len %d)", err, len(out))
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	e := echoEngine(t)
	for _, scheme := range []string{"inproc://err-prop", "tcp://127.0.0.1:0"} {
		addr, err := e.Listen(scheme)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := Lookup(addr)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ep.Call(context.Background(), "fail", nil)
		if !errors.Is(err, ErrRemoteFailed) || !strings.Contains(err.Error(), "boom") {
			t.Errorf("%s: err = %v, want ErrRemoteFailed with boom", scheme, err)
		}
		_, err = ep.Call(context.Background(), "no-such-rpc", nil)
		if !errors.Is(err, ErrUnknownRPC) {
			t.Errorf("%s: err = %v, want ErrUnknownRPC", scheme, err)
		}
		ep.Close()
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	e := NewEngine()
	var inflight, peak atomic.Int32
	e.Register("slow", func(_ context.Context, in []byte) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inflight.Add(-1)
		return in, nil
	})
	defer e.Close()
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			out, err := ep.Call(context.Background(), "slow", msg)
			if err == nil && !bytes.Equal(out, msg) {
				err = fmt.Errorf("response mismatch: %q", out)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d; requests were serialized", peak.Load())
	}
}

func TestContextCancellation(t *testing.T) {
	e := NewEngine()
	block := make(chan struct{})
	e.Register("block", func(_ context.Context, _ []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer func() { close(block); e.Close() }()
	addr, _ := e.Listen("tcp://127.0.0.1:0")
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = ep.Call(ctx, "block", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestLookupFailures(t *testing.T) {
	if _, err := Lookup("bogus"); !errors.Is(err, ErrBadAddress) {
		t.Errorf("no scheme: %v", err)
	}
	if _, err := Lookup("carrier://x"); !errors.Is(err, ErrBadAddress) {
		t.Errorf("bad scheme: %v", err)
	}
	if _, err := Lookup("inproc://nobody-home"); err == nil {
		t.Error("lookup of unregistered inproc name succeeded")
	}
	if _, err := Lookup("tcp://127.0.0.1:1"); err == nil {
		t.Error("dial of closed port succeeded")
	}
}

func TestInprocNameCollision(t *testing.T) {
	a := NewEngine()
	defer a.Close()
	b := NewEngine()
	defer b.Close()
	if _, err := a.Listen("inproc://dup-name"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen("inproc://dup-name"); err == nil {
		t.Fatal("duplicate inproc name accepted")
	}
	// After a closes, the name becomes free again.
	a.Close()
	if _, err := b.Listen("inproc://dup-name"); err != nil {
		t.Fatalf("name not released after Close: %v", err)
	}
}

func TestEngineCloseFailsPendingCalls(t *testing.T) {
	e := NewEngine()
	started := make(chan struct{})
	release := make(chan struct{})
	e.Register("block", func(_ context.Context, _ []byte) ([]byte, error) {
		close(started)
		<-release
		return []byte("late"), nil
	})
	addr, _ := e.Listen("tcp://127.0.0.1:0")
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	callErr := make(chan error, 1)
	go func() {
		_, err := ep.Call(context.Background(), "block", nil)
		callErr <- err
	}()
	<-started
	ep.Close() // drop the client connection while a call is pending
	close(release)
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("pending call returned nil after connection close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed")
	}
	e.Close()
}

func TestListenAfterClose(t *testing.T) {
	e := NewEngine()
	e.Close()
	if _, err := e.Listen("inproc://after-close"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestStatsCounting(t *testing.T) {
	e := echoEngine(t)
	addr, _ := e.Listen("inproc://stats-count")
	client := NewEngine()
	defer client.Close()
	ep, err := client.Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ep.Call(context.Background(), "echo", []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	_, _ = ep.Call(context.Background(), "fail", nil)
	if got := e.Stats.CallsServed.Load(); got != 4 {
		t.Errorf("CallsServed = %d want 4", got)
	}
	if got := e.Stats.HandlerErrors.Load(); got != 1 {
		t.Errorf("HandlerErrors = %d want 1", got)
	}
	if got := client.Stats.CallsIssued.Load(); got != 4 {
		t.Errorf("CallsIssued = %d want 4", got)
	}
	if got := e.Stats.BytesIn.Load(); got != 12 {
		t.Errorf("BytesIn = %d want 12", got)
	}
}

func TestFrameTooBig(t *testing.T) {
	e := echoEngine(t)
	addr, _ := e.Listen("tcp://127.0.0.1:0")
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	huge := make([]byte, MaxFrame+1)
	if _, err := ep.Call(context.Background(), "echo", huge); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestAddrsReporting(t *testing.T) {
	e := echoEngine(t)
	a1, _ := e.Listen("inproc://addrs-1")
	a2, _ := e.Listen("tcp://127.0.0.1:0")
	addrs := e.Addrs()
	if len(addrs) != 2 || addrs[0] != a1 || addrs[1] != a2 {
		t.Fatalf("Addrs = %v", addrs)
	}
}

func BenchmarkMercuryTransports(b *testing.B) {
	payload := bytes.Repeat([]byte("m"), 1024)
	for _, tc := range []struct{ name, addr string }{
		{"inproc", "inproc://bench-inproc"},
		{"tcp", "tcp://127.0.0.1:0"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			e := NewEngine()
			e.Register("echo", func(_ context.Context, in []byte) ([]byte, error) { return in, nil })
			addr, err := e.Listen(tc.addr)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			ep, err := Lookup(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer ep.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ep.Call(context.Background(), "echo", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestNotifyDelivers(t *testing.T) {
	e := NewEngine()
	got := make(chan string, 10)
	e.Register("log", func(_ context.Context, in []byte) ([]byte, error) {
		got <- string(in)
		return nil, nil
	})
	defer e.Close()
	for _, scheme := range []string{"inproc://notify-t", "tcp://127.0.0.1:0"} {
		addr, err := e.Listen(scheme)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := Lookup(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := ep.Notify(context.Background(), "log", []byte("hello "+scheme)); err != nil {
			t.Fatal(err)
		}
		select {
		case msg := <-got:
			if msg != "hello "+scheme {
				t.Fatalf("got %q", msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: notification never arrived", scheme)
		}
		ep.Close()
	}
}

func TestNotifyDoesNotBreakCalls(t *testing.T) {
	e := echoEngine(t)
	addr, _ := e.Listen("tcp://127.0.0.1:0")
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	// Interleave notifications (whose responses carry id 0 and must be
	// dropped) with regular calls on the same connection.
	for i := 0; i < 20; i++ {
		if err := ep.Notify(context.Background(), "echo", []byte("n")); err != nil {
			t.Fatal(err)
		}
		out, err := ep.Call(context.Background(), "echo", []byte(fmt.Sprintf("c%d", i)))
		if err != nil || string(out) != fmt.Sprintf("c%d", i) {
			t.Fatalf("call %d: %q, %v", i, out, err)
		}
	}
}

func TestNotifyErrors(t *testing.T) {
	e := echoEngine(t)
	addr, _ := e.Listen("tcp://127.0.0.1:0")
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Notify(context.Background(), "echo", make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize notify = %v", err)
	}
	ep.Close()
	// After the connection is gone, Notify must fail rather than hang.
	time.Sleep(10 * time.Millisecond)
	if err := ep.Notify(context.Background(), "echo", []byte("x")); err == nil {
		t.Fatal("notify on closed endpoint succeeded")
	}
}

func BenchmarkNotifyVsCall(b *testing.B) {
	e := NewEngine()
	e.Register("sink", func(_ context.Context, in []byte) ([]byte, error) { return nil, nil })
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	payload := bytes.Repeat([]byte("p"), 512)
	b.Run("call", func(b *testing.B) {
		ep, _ := Lookup(addr)
		defer ep.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ep.Call(context.Background(), "sink", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("notify", func(b *testing.B) {
		ep, _ := Lookup(addr)
		defer ep.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ep.Notify(context.Background(), "sink", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestCallRejectedAfterEngineClose(t *testing.T) {
	server := echoEngine(t)
	for _, scheme := range []string{"inproc://close-reject", "tcp://127.0.0.1:0"} {
		addr, err := server.Listen(scheme)
		if err != nil {
			t.Fatal(err)
		}
		client := NewEngine()
		ep, err := client.Lookup(addr)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the endpoint works before Close.
		if _, err := ep.Call(context.Background(), "echo", []byte("ok")); err != nil {
			t.Fatalf("%s: pre-close call failed: %v", scheme, err)
		}
		if err := client.Close(); err != nil {
			t.Fatal(err)
		}
		// New calls must fail fast with ErrClosed — no racing the teardown.
		if _, err := ep.Call(context.Background(), "echo", []byte("late")); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: call after engine close = %v, want ErrClosed", scheme, err)
		}
		if err := ep.Notify(context.Background(), "echo", []byte("late")); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: notify after engine close = %v, want ErrClosed", scheme, err)
		}
		// A fresh Lookup on the closed engine is also rejected.
		if _, err := client.Lookup(addr); !errors.Is(err, ErrClosed) {
			t.Errorf("%s: lookup on closed engine = %v, want ErrClosed", scheme, err)
		}
	}
}

func TestInprocDispatchAfterTargetClose(t *testing.T) {
	server := NewEngine()
	server.Register("echo", func(_ context.Context, in []byte) ([]byte, error) { return in, nil })
	addr, err := server.Listen("inproc://target-close")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	server.Close()
	if _, err := ep.Call(context.Background(), "echo", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("call into closed inproc engine = %v, want ErrClosed", err)
	}
}

func TestTracePropagation(t *testing.T) {
	for _, scheme := range []string{"inproc://trace-prop", "tcp://127.0.0.1:0"} {
		e := NewEngine()
		seen := make(chan telemetry.TraceContext, 1)
		e.Register("trace", func(ctx context.Context, _ []byte) ([]byte, error) {
			seen <- telemetry.FromContext(ctx)
			return nil, nil
		})
		addr, err := e.Listen(scheme)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := Lookup(addr)
		if err != nil {
			t.Fatal(err)
		}
		ctx, sp := telemetry.StartSpan(context.Background(), "client.op")
		if _, err := ep.Call(ctx, "trace", nil); err != nil {
			t.Fatal(err)
		}
		sp.End()
		got := <-seen
		want := sp.Context()
		if got != want {
			t.Errorf("%s: handler saw trace %+v, caller sent %+v", scheme, got, want)
		}
		// An untraced call carries no trace context.
		if _, err := ep.Call(context.Background(), "trace", nil); err != nil {
			t.Fatal(err)
		}
		if got := <-seen; got.Valid() {
			t.Errorf("%s: untraced call delivered trace %+v", scheme, got)
		}
		ep.Close()
		e.Close()
	}
}

func TestLatencyHistogramsRecorded(t *testing.T) {
	e := echoEngine(t)
	addr, _ := e.Listen("inproc://hist-record")
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	srvBefore := serverHist("echo").Count()
	cliBefore := clientHist("echo").Count()
	for i := 0; i < 3; i++ {
		if _, err := ep.Call(context.Background(), "echo", []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if got := serverHist("echo").Count() - srvBefore; got != 3 {
		t.Errorf("server histogram grew by %d, want 3", got)
	}
	if got := clientHist("echo").Count() - cliBefore; got != 3 {
		t.Errorf("client histogram grew by %d, want 3", got)
	}
}

func TestBlockingHandlerCancelledOnClose(t *testing.T) {
	// A blocking (long-poll) handler parks on its context; engine Close must
	// cancel it and complete promptly instead of waiting out the poll.
	e := NewEngine()
	entered := make(chan struct{})
	e.RegisterBlocking("park", func(ctx context.Context, _ []byte) ([]byte, error) {
		close(entered)
		select {
		case <-ctx.Done():
			return []byte("cancelled"), nil
		case <-time.After(30 * time.Second):
			return nil, errors.New("poll timeout")
		}
	})
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	type result struct {
		out []byte
		err error
	}
	res := make(chan result, 1)
	go func() {
		out, err := ep.Call(context.Background(), "park", nil)
		res <- result{out, err}
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close waited on a parked blocking handler")
	}
	// The parked call either returned its cancellation response or lost the
	// connection — it must not still be hanging.
	select {
	case <-res:
	case <-time.After(5 * time.Second):
		t.Fatal("call still parked after Close")
	}
}

func TestBlockingHandlerNormalReturn(t *testing.T) {
	// Outside shutdown, a blocking handler behaves like any other.
	e := NewEngine()
	defer e.Close()
	e.RegisterBlocking("quick", func(_ context.Context, in []byte) ([]byte, error) {
		return in, nil
	})
	addr, err := e.Listen("inproc://blocking-normal")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	out, err := ep.Call(context.Background(), "quick", []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Fatalf("call = %q, %v", out, err)
	}
}

func TestCloseSeversIdleConnections(t *testing.T) {
	// Close must not wait for connected-but-idle clients to hang up.
	e := NewEngine()
	e.Register("echo", func(_ context.Context, in []byte) ([]byte, error) { return in, nil })
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close waited for an idle client connection")
	}
}
