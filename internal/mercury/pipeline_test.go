package mercury

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Many concurrent calls on ONE TCP endpoint, each with a unique payload:
// every response must come back to the caller that issued it. Run under
// -race this also exercises the writer goroutine's gathered writes.
func TestPipelinedResponsesMatchRequestIDs(t *testing.T) {
	e := NewEngine()
	e.Register("echo", func(_ context.Context, in []byte) ([]byte, error) {
		return in, nil
	})
	defer e.Close()
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	const workers = 16
	const callsEach = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				want := fmt.Sprintf("w%d-c%d", wkr, i)
				out, err := ep.Call(context.Background(), "echo", []byte(want))
				if err != nil {
					errCh <- fmt.Errorf("worker %d call %d: %w", wkr, i, err)
					return
				}
				if string(out) != want {
					errCh <- fmt.Errorf("worker %d call %d: response %q crossed wires (want %q)", wkr, i, out, want)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// A slow request must not block a fast one pipelined behind it on the same
// connection, and both responses must reach their own callers despite
// completing out of request order.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	e := NewEngine()
	release := make(chan struct{})
	e.Register("slow", func(ctx context.Context, in []byte) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte("slow-done"), nil
	})
	e.Register("fast", func(_ context.Context, in []byte) ([]byte, error) {
		return []byte("fast-done"), nil
	})
	defer e.Close()
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	slowRes := make(chan string, 1)
	go func() {
		out, err := ep.Call(context.Background(), "slow", nil)
		if err != nil {
			slowRes <- "error: " + err.Error()
			return
		}
		slowRes <- string(out)
	}()

	// The fast call completes while the slow one is still parked server-side
	// on the same connection.
	deadline := time.After(5 * time.Second)
	fastOK := false
	for !fastOK {
		select {
		case <-deadline:
			t.Fatal("fast call never completed while slow call in flight")
		default:
		}
		out, err := ep.Call(context.Background(), "fast", nil)
		if err != nil {
			t.Fatalf("fast call: %v", err)
		}
		if string(out) == "fast-done" {
			fastOK = true
		}
	}
	close(release)
	select {
	case got := <-slowRes:
		if got != "slow-done" {
			t.Fatalf("slow call returned %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow call never completed after release")
	}
}
