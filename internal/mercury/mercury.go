// Package mercury implements the RPC engine SOMA is built on, in the spirit
// of the Mochi/Mercury HPC microservice stack the paper uses. It provides:
//
//   - named RPC handlers registered on an Engine,
//   - two transports behind one address scheme: "tcp://host:port" for real
//     deployments (examples, cmd/somad) and "inproc://name" for simulated
//     experiments and tests,
//   - self-describing addresses that a service publishes so clients can
//     connect (the paper's "RPC addresses publicly known within the
//     workflow"),
//   - concurrent request multiplexing on a single connection, mirroring
//     Mercury's asynchronous operation model.
//
// The wire protocol is deliberately simple: every frame is length-prefixed,
// carries a request id for multiplexing, an 8-byte trace id / 8-byte span id
// pair for cross-process tracing (zero when the caller is untraced), and a
// status byte on responses so handler errors propagate to the caller.
//
// The engine records its own behaviour into the process-wide telemetry
// registry: per-handler server- and client-side latency histograms
// ("mercury.server.latency.<rpc>" / "mercury.client.latency.<rpc>"),
// in-flight gauges, and byte/call counters.
package mercury

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Handler processes one RPC. The input slice is only valid for the duration
// of the call — the transport recycles frame buffers, so handlers must copy
// any bytes they retain. The returned slice may be written to the wire after
// the handler returns (large responses are sent zero-copy), so it must stay
// immutable until the engine is done with it: return either a freshly built
// buffer or a long-lived frame that is never mutated in place (e.g. a
// snapshot cache entry that is replaced, not overwritten). Handlers that
// encode into pooled buffers should use RegisterOwned instead, so the buffer
// can be recycled once the frame is written.
type Handler func(ctx context.Context, input []byte) ([]byte, error)

// Response is an RPC reply whose backing buffer the handler wants back.
type Response struct {
	// Payload is the reply bytes; the transport treats it exactly like a
	// Handler's return value.
	Payload []byte
	// Release, when non-nil, is called exactly once after the transport has
	// finished with Payload — on TCP after the response frame is written, on
	// the inproc transport after the caller's copy is taken. Handlers use it
	// to return pooled encode buffers.
	Release func()
}

// OwnedHandler is a Handler flavour whose response travels with a release
// hook (see Response); install with RegisterOwned.
type OwnedHandler func(ctx context.Context, input []byte) (Response, error)

// framePool recycles request/response frame buffers on the TCP read/write
// loops. Buffers above maxPooledFrame are left to the GC so one jumbo frame
// does not pin memory.
var framePool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

const maxPooledFrame = 1 << 16

// zeroCopyMinFrame is the response size above which the TCP transport sends
// the handler's payload with a vector write instead of copying it into a
// pooled frame. Below it the copy is cheaper than the extra iovec setup.
const zeroCopyMinFrame = 2048

func getFrame(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putFrame(bp *[]byte) {
	if cap(*bp) <= maxPooledFrame {
		framePool.Put(bp)
	}
}

// Errors returned by the engine and endpoints.
var (
	ErrUnknownRPC   = errors.New("mercury: unknown rpc name")
	ErrClosed       = errors.New("mercury: engine closed")
	ErrBadAddress   = errors.New("mercury: bad address")
	ErrFrameTooBig  = errors.New("mercury: frame exceeds limit")
	ErrRemoteFailed = errors.New("mercury: remote handler failed")
)

// MaxFrame bounds a single RPC payload (16 MiB), matching the bulk-transfer
// threshold real Mercury deployments configure.
const MaxFrame = 16 << 20

// Stats counts engine activity; all fields are updated atomically and safe
// to read concurrently. The overhead experiments read these.
type Stats struct {
	CallsServed   atomic.Int64
	CallsIssued   atomic.Int64
	BytesIn       atomic.Int64
	BytesOut      atomic.Int64
	HandlerErrors atomic.Int64
	// ShedExpired counts calls whose propagated deadline had already passed
	// at dispatch time: the handler was skipped and the caller (long gone)
	// got ErrExpired. Load shedding for servers drowning in abandoned work.
	ShedExpired atomic.Int64
}

// Process-wide telemetry. Per-engine attribution stays in Stats; the
// registry aggregates across engines so one somad -metrics page (or the
// soma.telemetry RPC) covers the whole process.
var (
	telCallsServed   = telemetry.Default().Counter("mercury.calls_served")
	telCallsIssued   = telemetry.Default().Counter("mercury.calls_issued")
	telBytesIn       = telemetry.Default().Counter("mercury.bytes_in")
	telBytesOut      = telemetry.Default().Counter("mercury.bytes_out")
	telHandlerErrors = telemetry.Default().Counter("mercury.handler_errors")
	telServerInfl    = telemetry.Default().Gauge("mercury.server.inflight")
	telClientInfl    = telemetry.Default().Gauge("mercury.client.inflight")
	// telPipelineDepth tracks requests in flight on pipelined client
	// connections (registered in a session's pend map, response not yet
	// demuxed) — the wire-side queue depth the PR 6 multiplexing created.
	telPipelineDepth = telemetry.Default().Gauge("mercury.client.pipeline.depth")
)

// Per-RPC latency histograms, cached so the hot path never concatenates a
// metric name. The maps only ever grow by the number of distinct RPC names.
var (
	serverHists sync.Map // rpc name -> *telemetry.Histogram
	clientHists sync.Map
)

func serverHist(name string) *telemetry.Histogram {
	if h, ok := serverHists.Load(name); ok {
		return h.(*telemetry.Histogram)
	}
	h := telemetry.Default().Histogram("mercury.server.latency." + name)
	serverHists.Store(name, h)
	return h
}

func clientHist(name string) *telemetry.Histogram {
	if h, ok := clientHists.Load(name); ok {
		return h.(*telemetry.Histogram)
	}
	h := telemetry.Default().Histogram("mercury.client.latency." + name)
	clientHists.Store(name, h)
	return h
}

// registration is one installed handler plus its dispatch flavour.
type registration struct {
	h Handler
	// owned, when set instead of h, is an OwnedHandler whose response buffer
	// is recycled after the frame is written.
	owned OwnedHandler
	// blocking marks long-poll handlers (RegisterBlocking): they run with a
	// context cancelled at engine Close and stay out of the per-RPC server
	// latency histograms, which would otherwise be dominated by intentional
	// waiting.
	blocking bool
}

// InjectedFault is one fault decision for an in-process call (the inproc
// analogue of a connection-level fault; see internal/faults).
type InjectedFault struct {
	// Delay stalls the call before dispatch.
	Delay time.Duration
	// Drop black-holes the call: it blocks until the caller's context is
	// done and the handler never fires — the inproc equivalent of a request
	// frame lost on the wire.
	Drop bool
}

// Injector intercepts an engine's transports for deterministic fault
// injection (internal/faults implements it). WrapConn wraps every TCP
// connection the engine accepts (client=false) and every connection dialed
// by endpoints the engine owns (client=true); InprocCall is consulted by
// clients calling into the engine over the inproc transport.
type Injector interface {
	WrapConn(conn net.Conn, client bool) net.Conn
	InprocCall(rpc string) InjectedFault
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithInjector enables fault injection on the engine's transports — tests
// and the chaos soak run every workload through it; production engines never
// set one.
func WithInjector(in Injector) Option {
	return func(e *Engine) { e.injector = in }
}

// Engine hosts RPC handlers and manages transports. A process typically has
// one Engine per service or client role.
type Engine struct {
	mu        sync.RWMutex
	handlers  map[string]registration
	listeners []net.Listener
	addrs     []string
	endpoints []*Endpoint // endpoints created via e.Lookup, closed with the engine
	// conns tracks accepted server-side connections so Close can sever them;
	// otherwise shutdown would wait for every client to hang up first.
	conns   map[net.Conn]struct{}
	closed  bool
	closeCh chan struct{} // closed in Close; wakes blocking handlers
	wg      sync.WaitGroup

	// injector, when set, intercepts transports for fault injection.
	injector Injector

	// Stats is exported for observability of the observability system.
	Stats Stats
}

// NewEngine returns an engine with no handlers registered.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		handlers: map[string]registration{},
		conns:    map[net.Conn]struct{}{},
		closeCh:  make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Register installs a handler under name, replacing any previous handler.
func (e *Engine) Register(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = registration{h: h}
}

// RegisterOwned installs an OwnedHandler: its Response.Release hook fires
// once the transport has finished with the payload, so the handler can
// encode into a pooled buffer instead of allocating a fresh response per
// request.
func (e *Engine) RegisterOwned(name string, h OwnedHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = registration{owned: h}
}

// RegisterBlocking installs a handler that is expected to block — long-poll
// receives, streaming waits. Its context is cancelled when the engine closes
// (so shutdown never waits out a poll timeout), and its wall time is excluded
// from the server latency histograms (a long-poll's dwell is intentional
// waiting, not service latency). Counters and in-flight gauges still apply.
func (e *Engine) RegisterBlocking(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = registration{h: h, blocking: true}
}

// Deregister removes a handler.
func (e *Engine) Deregister(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.handlers, name)
}

func (e *Engine) handler(name string) (registration, bool, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return registration{}, false, ErrClosed
	}
	h, ok := e.handlers[name]
	return h, ok, nil
}

// cancelOnClose derives a context that is cancelled when the engine closes.
// The returned release must be called when the handler returns; it reclaims
// the watcher goroutine.
func (e *Engine) cancelOnClose(ctx context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		select {
		case <-e.closeCh:
			cancel()
		case <-done:
		case <-ctx.Done():
		}
	}()
	return ctx, func() {
		cancel()
		close(done)
	}
}

// dispatch runs the named handler locally; used by both transports. The
// handler's wall time lands in the per-RPC server latency histogram. A call
// whose context deadline has already passed is shed without dispatching —
// the caller gave up, running the handler would be pure waste (the TCP
// transport carries the caller's deadline in the frame header precisely so
// this check sees it).
//
// release is non-nil when the handler was installed with RegisterOwned; the
// transport must call it exactly once when it is done with out.
func (e *Engine) dispatch(ctx context.Context, name string, input []byte) (out []byte, release func(), err error) {
	reg, ok, err := e.handler(name)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (engine closed before dispatching %q)", err, name)
	}
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownRPC, name)
	}
	if !reg.blocking && ctx.Err() != nil {
		e.Stats.ShedExpired.Add(1)
		telShedExpired.Inc()
		return nil, nil, fmt.Errorf("%w (%q shed before dispatch)", ErrExpired, name)
	}
	e.Stats.CallsServed.Add(1)
	e.Stats.BytesIn.Add(int64(len(input)))
	telCallsServed.Inc()
	telBytesIn.Add(int64(len(input)))
	telServerInfl.Inc()
	tc := telemetry.FromContext(ctx)
	var start time.Time
	switch {
	case reg.blocking:
		var done func()
		ctx, done = e.cancelOnClose(ctx)
		out, err = reg.h(ctx, input)
		done()
	case reg.owned != nil:
		start = time.Now()
		var resp Response
		resp, err = reg.owned(ctx, input)
		serverHist(name).ObserveTrace(time.Since(start), tc.TraceID)
		out, release = resp.Payload, resp.Release
	default:
		start = time.Now()
		out, err = reg.h(ctx, input)
		serverHist(name).ObserveTrace(time.Since(start), tc.TraceID)
	}
	telServerInfl.Dec()
	if err != nil {
		if release != nil {
			release()
		}
		e.Stats.HandlerErrors.Add(1)
		telHandlerErrors.Inc()
		// Propagate the failure into the trace: handlers that errored
		// before starting (or without marking) their own spans would
		// otherwise leave the server-side trace portion looking healthy,
		// and the tail sampler keeps error traces unconditionally.
		if tc.Valid() && !reg.blocking {
			if sp := telemetry.LeafSpanAt(ctx, "mercury.server.error."+name, start); sp != nil {
				sp.Fail()
				sp.End()
			}
		}
		return nil, nil, err
	}
	e.Stats.BytesOut.Add(int64(len(out)))
	telBytesOut.Add(int64(len(out)))
	return out, release, nil
}

// Addrs returns every address the engine is currently reachable at.
func (e *Engine) Addrs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.addrs...)
}

// Listen makes the engine reachable at addr and returns the concrete
// address clients should use. For "tcp://host:0" the returned address has
// the real port filled in; for "inproc://name" it is the address itself.
func (e *Engine) Listen(addr string) (string, error) {
	scheme, rest, err := splitAddr(addr)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return "", ErrClosed
	}
	e.mu.Unlock()
	switch scheme {
	case "inproc":
		if err := registerInproc(rest, e); err != nil {
			return "", err
		}
		e.mu.Lock()
		e.addrs = append(e.addrs, addr)
		e.mu.Unlock()
		return addr, nil
	case "tcp":
		ln, err := net.Listen("tcp", rest)
		if err != nil {
			return "", err
		}
		concrete := "tcp://" + ln.Addr().String()
		e.mu.Lock()
		e.listeners = append(e.listeners, ln)
		e.addrs = append(e.addrs, concrete)
		e.mu.Unlock()
		e.wg.Add(1)
		go e.acceptLoop(ln)
		return concrete, nil
	default:
		return "", fmt.Errorf("%w: scheme %q", ErrBadAddress, scheme)
	}
}

// Close shuts the engine down: listeners stop, inproc registrations are
// removed, endpoints obtained via Lookup are closed, and in-flight server
// goroutines are awaited. New Calls on the engine's endpoints fail fast
// with ErrClosed instead of racing the connection teardown.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.closeCh) // wake blocking handlers before awaiting them
	lns := e.listeners
	addrs := e.addrs
	eps := e.endpoints
	conns := make([]net.Conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	e.listeners = nil
	e.addrs = nil
	e.endpoints = nil
	e.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	// Sever accepted connections: their serve loops are parked in reads that
	// only a close will interrupt, and shutdown must not wait for clients to
	// hang up on their own.
	for _, c := range conns {
		c.Close()
	}
	for _, a := range addrs {
		if scheme, rest, err := splitAddr(a); err == nil && scheme == "inproc" {
			deregisterInproc(rest, e)
		}
	}
	for _, ep := range eps {
		ep.Close()
	}
	e.wg.Wait()
	return nil
}

// isClosed reports whether Close has been called.
func (e *Engine) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// trackEndpoint records an endpoint created through e.Lookup so Close can
// tear it down; it fails when the engine is already closed.
func (e *Engine) trackEndpoint(ep *Endpoint) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.endpoints = append(e.endpoints, ep)
	return nil
}

func splitAddr(addr string) (scheme, rest string, err error) {
	i := strings.Index(addr, "://")
	if i < 0 {
		return "", "", fmt.Errorf("%w: %q", ErrBadAddress, addr)
	}
	scheme, rest = addr[:i], addr[i+3:]
	if rest == "" {
		return "", "", fmt.Errorf("%w: %q", ErrBadAddress, addr)
	}
	return scheme, rest, nil
}

// ---------------------------------------------------------------------------
// inproc transport: a process-wide registry of engines.

var inprocMu sync.RWMutex
var inprocRegistry = map[string]*Engine{}

func registerInproc(name string, e *Engine) error {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if _, exists := inprocRegistry[name]; exists {
		return fmt.Errorf("mercury: inproc name %q already in use", name)
	}
	inprocRegistry[name] = e
	return nil
}

func deregisterInproc(name string, e *Engine) {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if inprocRegistry[name] == e {
		delete(inprocRegistry, name)
	}
}

func lookupInproc(name string) (*Engine, bool) {
	inprocMu.RLock()
	defer inprocMu.RUnlock()
	e, ok := inprocRegistry[name]
	return e, ok
}

// ---------------------------------------------------------------------------
// Endpoint: the client side.

// Endpoint is a client handle to a remote (or in-process) engine. Endpoints
// are safe for concurrent use; calls on one TCP endpoint are multiplexed on
// a single connection (the current session). When the session's connection
// is lost the endpoint redials lazily on the next call, so one endpoint
// survives service restarts and transient network failures — the resilience
// behaviour (timeouts, retries, breaker) is governed by its CallPolicy.
type Endpoint struct {
	addr string

	// inproc
	local *Engine

	// tcp
	raw    string // host:port to (re)dial
	sessMu sync.Mutex
	sess   *tcpSession
	closed atomic.Bool

	policy atomic.Pointer[CallPolicy]
	brk    breaker

	owner *Engine // for stats attribution and client-side injection; may be nil
}

type rpcResponse struct {
	status  byte
	payload []byte
}

// sessionWriteQueue bounds the frames queued to a session's writer
// goroutine; a full queue blocks the enqueuing caller, which is the natural
// backpressure for pipelined senders.
const sessionWriteQueue = 256

// maxGatherFrames caps how many queued frames one vector write gathers.
const maxGatherFrames = 64

// tcpSession is one live connection with its multiplexing state. A session
// is immutable once dead; the endpoint replaces it wholesale on redial, so
// in-flight calls on the old session fail without racing new ones.
//
// All writes go through a dedicated writer goroutine: senders enqueue
// encoded frames and the writer drains the queue with gathered vector
// writes, so many pipelined requests share one syscall. Responses are
// matched back to callers by the request id in the frame header (the pend
// map), so out-of-order completion is fine.
type tcpSession struct {
	conn    net.Conn
	writeCh chan *[]byte
	// perFrame downgrades the writer to one Write call per frame: fault
	// injectors model "one Write = one frame", and a gathered write would
	// bundle many frames into a single fault decision.
	perFrame bool

	mu      sync.Mutex
	pend    map[uint64]chan rpcResponse
	nextID  uint64
	dead    bool
	deadCh  chan struct{} // closed by fail; unblocks queued writers
	lastErr error
}

func newTCPSession(conn net.Conn, perFrame bool) *tcpSession {
	s := &tcpSession{
		conn:     conn,
		writeCh:  make(chan *[]byte, sessionWriteQueue),
		perFrame: perFrame,
		pend:     map[uint64]chan rpcResponse{},
		deadCh:   make(chan struct{}),
	}
	go s.writeLoop()
	return s
}

// enqueueWrite hands one pooled frame to the writer goroutine. Ownership
// transfers: the writer recycles the buffer after the wire write (or on
// teardown). An error means the frame provably never entered the queue.
func (s *tcpSession) enqueueWrite(bp *[]byte) error {
	select {
	case s.writeCh <- bp:
		return nil
	case <-s.deadCh:
		putFrame(bp)
		s.mu.Lock()
		err := s.lastErr
		s.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
}

// writeLoop is the session's writer goroutine: it gathers queued frames and
// flushes them with a single vector write (or one Write per frame on
// injected connections). A write error fails the session — pending calls
// learn via their closed response channels and the policy layer retries.
func (s *tcpSession) writeLoop() {
	scratch := make([]*[]byte, 0, maxGatherFrames)
	vecBacking := make([][]byte, maxGatherFrames)
	for {
		select {
		case bp := <-s.writeCh:
			scratch = append(scratch[:0], bp)
		gather:
			for len(scratch) < maxGatherFrames {
				select {
				case next := <-s.writeCh:
					scratch = append(scratch, next)
				default:
					break gather
				}
			}
			var err error
			switch {
			case s.perFrame:
				for _, fb := range scratch {
					if _, err = s.conn.Write(*fb); err != nil {
						break
					}
				}
			case len(scratch) == 1:
				_, err = s.conn.Write(*scratch[0])
			default:
				// net.Buffers.WriteTo consumes the vector in place, so it is
				// rebuilt from the reusable backing array each round.
				vec := net.Buffers(vecBacking[:len(scratch)])
				for i, fb := range scratch {
					vec[i] = *fb
				}
				_, err = vec.WriteTo(s.conn)
			}
			for _, fb := range scratch {
				putFrame(fb)
			}
			if err != nil {
				s.fail(err)
			}
		case <-s.deadCh:
			// Drain whatever raced in and exit; callers of those frames see
			// the session failure through their response channels.
			for {
				select {
				case bp := <-s.writeCh:
					putFrame(bp)
				default:
					return
				}
			}
		}
	}
}

// register allocates a request id and its response channel; it fails when
// the session has already died.
func (s *tcpSession) register() (uint64, chan rpcResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		err := s.lastErr
		if err == nil {
			err = ErrClosed
		}
		return 0, nil, err
	}
	s.nextID++
	id := s.nextID
	ch := make(chan rpcResponse, 1)
	s.pend[id] = ch
	telPipelineDepth.Inc()
	return id, ch, nil
}

func (s *tcpSession) unregister(id uint64) {
	s.mu.Lock()
	if _, ok := s.pend[id]; ok {
		delete(s.pend, id)
		telPipelineDepth.Dec()
	}
	s.mu.Unlock()
}

// fail marks the session dead, closes its connection and fails every
// pending call. Idempotent.
func (s *tcpSession) fail(err error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	s.lastErr = err
	close(s.deadCh) // wakes queued writers and stops the writer goroutine
	telPipelineDepth.Add(-int64(len(s.pend)))
	for id, ch := range s.pend {
		close(ch)
		delete(s.pend, id)
	}
	s.mu.Unlock()
	s.conn.Close()
}

// Lookup resolves addr into an Endpoint. The optional client engine (may be
// nil) accumulates call statistics.
func (e *Engine) Lookup(addr string) (*Endpoint, error) {
	return lookup(addr, e, nil)
}

// LookupPolicy resolves addr with an explicit call policy (the policy also
// governs the initial dial's connect timeout).
func (e *Engine) LookupPolicy(addr string, p *CallPolicy) (*Endpoint, error) {
	return lookup(addr, e, p)
}

// Lookup resolves addr without a client engine.
func Lookup(addr string) (*Endpoint, error) { return lookup(addr, nil, nil) }

// LookupPolicy resolves addr without a client engine, with an explicit call
// policy.
func LookupPolicy(addr string, p *CallPolicy) (*Endpoint, error) {
	return lookup(addr, nil, p)
}

func lookup(addr string, owner *Engine, policy *CallPolicy) (*Endpoint, error) {
	scheme, rest, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	if policy == nil {
		policy = DefaultPolicy()
	}
	var ep *Endpoint
	switch scheme {
	case "inproc":
		target, ok := lookupInproc(rest)
		if !ok {
			return nil, fmt.Errorf("mercury: no inproc engine named %q", rest)
		}
		ep = &Endpoint{addr: addr, local: target, owner: owner}
		ep.policy.Store(policy)
	case "tcp":
		ep = &Endpoint{addr: addr, raw: rest, owner: owner}
		ep.policy.Store(policy)
		// Dial eagerly so an unreachable service fails at Lookup, not at the
		// first call — services publish their RPC addresses, and a bad one
		// should be reported where it was resolved.
		if _, err := ep.session(context.Background()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: scheme %q", ErrBadAddress, scheme)
	}
	if owner != nil {
		if err := owner.trackEndpoint(ep); err != nil {
			ep.Close()
			return nil, fmt.Errorf("%w (lookup %q on a closed engine)", err, addr)
		}
	}
	return ep, nil
}

// SetPolicy replaces the endpoint's call policy (applies to subsequent
// calls; a nil policy resets to DefaultPolicy).
func (ep *Endpoint) SetPolicy(p *CallPolicy) {
	if p == nil {
		p = DefaultPolicy()
	}
	ep.policy.Store(p)
}

// Policy returns the endpoint's current call policy.
func (ep *Endpoint) Policy() *CallPolicy { return ep.policy.Load() }

// BreakerState reports the endpoint's circuit-breaker state: "disabled",
// "closed", "open" or "half-open".
func (ep *Endpoint) BreakerState() string { return ep.brk.stateName(ep.policy.Load()) }

// session returns the current live session, dialing a new one (bounded by
// the policy's connect timeout and ctx) when none exists. The dial happens
// under sessMu so concurrent calls share one redial instead of racing.
func (ep *Endpoint) session(ctx context.Context) (*tcpSession, error) {
	ep.sessMu.Lock()
	defer ep.sessMu.Unlock()
	if ep.closed.Load() {
		return nil, ErrClosed
	}
	if s := ep.sess; s != nil {
		s.mu.Lock()
		dead := s.dead
		s.mu.Unlock()
		if !dead {
			return s, nil
		}
		ep.sess = nil
	}
	d := net.Dialer{Timeout: ep.policy.Load().connectTimeout()}
	conn, err := d.DialContext(ctx, "tcp", ep.raw)
	if err != nil {
		return nil, err
	}
	perFrame := false
	if ep.owner != nil && ep.owner.injector != nil {
		conn = ep.owner.injector.WrapConn(conn, true)
		perFrame = true
	}
	s := newTCPSession(conn, perFrame)
	ep.sess = s
	go ep.readLoop(s)
	return s, nil
}

// dropSession discards s as the endpoint's current session (if it still is)
// and fails it, severing the connection.
func (ep *Endpoint) dropSession(s *tcpSession, err error) {
	ep.sessMu.Lock()
	if ep.sess == s {
		ep.sess = nil
	}
	ep.sessMu.Unlock()
	s.fail(err)
}

// Addr returns the address this endpoint was looked up with.
func (ep *Endpoint) Addr() string { return ep.addr }

// Call invokes the named RPC and waits for the response. ctx cancellation
// abandons the wait (the response, if any, is discarded). When ctx carries a
// telemetry trace context, its trace/span ids travel in the frame header so
// the server-side handler span becomes a child of the caller's span; the
// attempt's deadline travels alongside them so the server can shed work
// whose caller already gave up. After the owning engine's Close, Call fails
// fast with ErrClosed.
//
// Resilience is governed by the endpoint's CallPolicy: a default call
// timeout when ctx carries no deadline, bounded per-attempt budgets,
// retries with backoff for idempotent RPCs (connect-stage failures retry
// for every RPC — the request provably never left), and a circuit breaker
// failing fast while the endpoint is down.
func (ep *Endpoint) Call(ctx context.Context, name string, input []byte) ([]byte, error) {
	if ep.owner != nil {
		if ep.owner.isClosed() {
			return nil, fmt.Errorf("%w (call %q rejected: owning engine closed)", ErrClosed, name)
		}
		ep.owner.Stats.CallsIssued.Add(1)
	}
	telCallsIssued.Inc()
	telClientInfl.Inc()
	start := time.Now()
	defer func() {
		clientHist(name).ObserveSince(start)
		telClientInfl.Dec()
	}()
	if ep.local != nil {
		if p := ep.policy.Load(); p != nil && p.CallTimeout > 0 {
			if _, has := ctx.Deadline(); !has {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, p.CallTimeout)
				defer cancel()
			}
		}
		if inj := ep.local.injector; inj != nil {
			if err := applyInprocFault(ctx, inj.InprocCall(name)); err != nil {
				return nil, err
			}
		}
		out, release, err := ep.local.dispatch(ctx, name, input)
		if err != nil {
			// Mirror the TCP path: handler failures surface as
			// ErrRemoteFailed; infrastructure errors keep their identity.
			if errors.Is(err, ErrUnknownRPC) || errors.Is(err, ErrClosed) || errors.Is(err, ErrExpired) {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrRemoteFailed, err)
		}
		if release != nil {
			// The handler wants its buffer back; hand the caller a copy —
			// the same ownership transfer the TCP transport's read performs.
			cp := make([]byte, len(out))
			copy(cp, out)
			release()
			out = cp
		}
		return out, nil
	}
	return ep.callTCP(ctx, name, input)
}

// applyInprocFault stalls or black-holes an in-process call per the
// engine's injector decision.
func applyInprocFault(ctx context.Context, f InjectedFault) error {
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if f.Drop {
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// Notify invokes the named RPC without waiting for its response — the
// fire-and-forget path for high-frequency publishes where the caller
// tolerates loss on failure (Mercury's one-way RPC). Errors are reported
// only when the request cannot be sent at all. Trace ids from ctx propagate
// in the frame header exactly as in Call.
func (ep *Endpoint) Notify(ctx context.Context, name string, input []byte) error {
	if ep.owner != nil {
		if ep.owner.isClosed() {
			return fmt.Errorf("%w (notify %q rejected: owning engine closed)", ErrClosed, name)
		}
		ep.owner.Stats.CallsIssued.Add(1)
	}
	telCallsIssued.Inc()
	if ep.local != nil {
		if inj := ep.local.injector; inj != nil {
			f := inj.InprocCall(name)
			if f.Drop {
				return nil // one-way: the loss is silent by contract
			}
			if err := applyInprocFault(ctx, f); err != nil {
				return nil
			}
		}
		// In-process: dispatch directly, discarding result and error.
		_, release, _ := ep.local.dispatch(ctx, name, input)
		if release != nil {
			release()
		}
		return nil
	}
	total := reqHeaderLen + len(name) + len(input)
	if total > MaxFrame {
		return ErrFrameTooBig
	}
	s, err := ep.session(ctx)
	if err != nil {
		return err
	}
	bp := getFrame(0)
	// Request id 0 is reserved for notifications: no pending entry exists,
	// so the response (still sent by the server) is dropped on arrival.
	frame := appendRequestHeader((*bp)[:0], uint32(total), 0, telemetry.FromContext(ctx), deadlineNanos(ctx), name)
	frame = append(frame, input...)
	*bp = frame
	if err := s.enqueueWrite(bp); err != nil {
		ep.dropSession(s, err)
		return err
	}
	return nil
}

// Close releases the endpoint; subsequent calls fail with ErrClosed (no
// redial).
func (ep *Endpoint) Close() error {
	ep.closed.Store(true)
	ep.sessMu.Lock()
	s := ep.sess
	ep.sess = nil
	ep.sessMu.Unlock()
	if s != nil {
		s.fail(ErrClosed)
	}
	return nil
}

// ---------------------------------------------------------------------------
// TCP framing.
//
//	request : u32 len | u64 id | u64 traceID | u64 spanID | u64 deadline | u16 nameLen | name | payload
//	response: u32 len | u64 id | u8 status | payload
//
// status: 0 ok, 1 handler error (payload = message), 2 unknown rpc,
// 3 expired (the deadline had passed; the handler was never dispatched).
//
// traceID/spanID are the caller's telemetry trace context (zero when the
// caller is untraced); the server rebuilds it into the handler's context so
// server-side spans join the caller's trace. deadline is the attempt's
// context deadline in Unix nanoseconds (0 = none): the server installs it
// on the handler's context and sheds the call outright when it has already
// passed — work whose caller gave up is answered with status 3 instead of
// being executed. Deadlines assume the clocks on both ends agree to within
// the RPC timeout, which holds for the single-machine and
// NTP-synchronized-cluster deployments this repo targets.

const (
	statusOK      = 0
	statusErr     = 1
	statusUnknown = 2
	statusExpired = 3
)

// reqHeaderLen is the request byte count after the u32 length prefix, before
// the name: id (8) + traceID (8) + spanID (8) + deadline (8) + nameLen (2).
const reqHeaderLen = 34

// deadlineNanos extracts ctx's deadline as Unix nanoseconds for the frame
// header (0 when ctx has none).
func deadlineNanos(ctx context.Context) int64 {
	if d, ok := ctx.Deadline(); ok {
		return d.UnixNano()
	}
	return 0
}

// appendRequestHeader appends the framed request header and name to dst.
// total is the frame length after the u32 prefix.
func appendRequestHeader(dst []byte, total uint32, id uint64, tc telemetry.TraceContext, deadline int64, name string) []byte {
	var hdr [4 + reqHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], total)
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	binary.LittleEndian.PutUint64(hdr[12:20], tc.TraceID)
	binary.LittleEndian.PutUint64(hdr[20:28], tc.SpanID)
	binary.LittleEndian.PutUint64(hdr[28:36], uint64(deadline))
	binary.LittleEndian.PutUint16(hdr[36:38], uint16(len(name)))
	dst = append(dst, hdr[:]...)
	return append(dst, name...)
}

// callTCP drives the retry/breaker state machine around attemptTCP.
func (ep *Endpoint) callTCP(ctx context.Context, name string, input []byte) ([]byte, error) {
	p := ep.policy.Load()
	if p.CallTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.CallTimeout)
			defer cancel()
		}
	}
	total := reqHeaderLen + len(name) + len(input)
	if total > MaxFrame {
		return nil, ErrFrameTooBig
	}
	idem := p.idempotent(name)
	for attempt := 0; ; attempt++ {
		if err := ep.brk.allow(p); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out, sent, err := ep.attemptTCP(ctx, p, name, input, total)
		switch {
		case err == nil:
			ep.brk.success()
			return out, nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// The caller's context ended: neither a server verdict nor
			// evidence the endpoint is down — no breaker movement, no retry.
			return nil, err
		case errors.Is(err, ErrRemoteFailed) || errors.Is(err, ErrUnknownRPC) || errors.Is(err, ErrExpired):
			// The server responded: the transport is healthy.
			ep.brk.success()
			return nil, err
		}
		// Transport-level failure (dial error, severed connection, attempt
		// timeout): count it and retry when the policy allows. A request
		// that may have reached the server is only re-sent for idempotent
		// RPCs.
		ep.brk.failure(p)
		if ctx.Err() != nil {
			return nil, err
		}
		if attempt >= p.MaxRetries || (sent && !idem) {
			return nil, err
		}
		telRetries.Inc()
		if serr := p.Backoff.Sleep(ctx, attempt); serr != nil {
			return nil, err
		}
	}
}

// attemptTCP performs one send/receive round. sent reports whether the
// request reached the write stage (and so may have fired server-side).
func (ep *Endpoint) attemptTCP(ctx context.Context, p *CallPolicy, name string, input []byte, total int) (out []byte, sent bool, err error) {
	s, err := ep.session(ctx)
	if err != nil {
		return nil, false, err
	}
	actx := ctx
	if p.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
	}
	id, respCh, err := s.register()
	if err != nil {
		// The session died between lookup and registration; provably unsent.
		ep.dropSession(s, err)
		return nil, false, err
	}
	defer s.unregister(id)

	bp := getFrame(0)
	frame := appendRequestHeader((*bp)[:0], uint32(total), id, telemetry.FromContext(ctx), deadlineNanos(actx), name)
	frame = append(frame, input...)
	*bp = frame
	if werr := s.enqueueWrite(bp); werr != nil {
		// The frame provably never entered the write queue: unsent, so even
		// non-idempotent RPCs may retry.
		ep.dropSession(s, werr)
		return nil, false, werr
	}
	sent = true

	select {
	case <-actx.Done():
		if ctx.Err() != nil {
			return nil, true, ctx.Err()
		}
		// The attempt budget expired while the call as a whole is still
		// live: the frame (or its response) is black-holed somewhere. Drop
		// the connection — a fresh attempt gets a fresh one.
		err := fmt.Errorf("%w (%q after %s)", ErrAttemptTimeout, name, p.AttemptTimeout)
		ep.dropSession(s, err)
		return nil, true, err
	case resp, ok := <-respCh:
		if !ok {
			// Session failed underneath us (connection severed).
			s.mu.Lock()
			ferr := s.lastErr
			s.mu.Unlock()
			if ferr == nil {
				ferr = ErrClosed
			}
			return nil, true, ferr
		}
		switch resp.status {
		case statusOK:
			return resp.payload, true, nil
		case statusUnknown:
			return nil, true, fmt.Errorf("%w: %q", ErrUnknownRPC, name)
		case statusExpired:
			return nil, true, fmt.Errorf("%w (%q shed by server)", ErrExpired, name)
		default:
			return nil, true, fmt.Errorf("%w: %s", ErrRemoteFailed, resp.payload)
		}
	}
}

// readLoop pumps responses for one session; when the connection dies it
// fails the session (and every call pending on it) and detaches it from
// the endpoint so the next call redials.
func (ep *Endpoint) readLoop(s *tcpSession) {
	br := bufio.NewReader(s.conn)
	var err error
	for {
		var lenBuf [4]byte
		if _, err = io.ReadFull(br, lenBuf[:]); err != nil {
			break
		}
		total := binary.LittleEndian.Uint32(lenBuf[:])
		if total < 9 || total > MaxFrame {
			err = ErrFrameTooBig
			break
		}
		body := make([]byte, total)
		if _, err = io.ReadFull(br, body); err != nil {
			break
		}
		id := binary.LittleEndian.Uint64(body[0:8])
		status := body[8]
		payload := body[9:]
		s.mu.Lock()
		ch := s.pend[id]
		s.mu.Unlock()
		if ch != nil {
			ch <- rpcResponse{status: status, payload: payload}
		}
	}
	ep.dropSession(s, err)
}

func (e *Engine) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.serveConn(conn)
	}
}

// srvResponse is one response frame queued to a connection's writer
// goroutine. frame is a pooled buffer holding the 13-byte header (and, for
// small responses, the payload copy); payload, when non-nil, is
// handler-owned bytes written after *frame without copying. release is the
// handler's buffer-return hook, fired once the frame has been written (or
// discarded on teardown).
type srvResponse struct {
	frame   *[]byte
	payload []byte
	release func()
}

// connWriter serializes response writes for one server connection: handlers
// enqueue frames and the writer goroutine gathers them into vector writes,
// so a burst of pipelined responses shares one syscall. Responses complete
// in handler-finish order, not request order — the client demuxes by id.
type connWriter struct {
	conn net.Conn
	// perFrame: one Write call per frame (fault-injected transports model
	// per-Write fault decisions; see writeLoop on the client side).
	perFrame bool
	ch       chan srvResponse
	done     chan struct{}
}

func newConnWriter(conn net.Conn, perFrame bool) *connWriter {
	w := &connWriter{
		conn:     conn,
		perFrame: perFrame,
		ch:       make(chan srvResponse, sessionWriteQueue),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *connWriter) loop() {
	defer close(w.done)
	pend := make([]srvResponse, 0, maxGatherFrames)
	vecBacking := make([][]byte, 0, 2*maxGatherFrames)
	failed := false
	for {
		resp, ok := <-w.ch
		if !ok {
			return
		}
		pend = append(pend[:0], resp)
	gather:
		for len(pend) < maxGatherFrames {
			select {
			case next, ok := <-w.ch:
				if !ok {
					break gather
				}
				pend = append(pend, next)
			default:
				break gather
			}
		}
		if !failed {
			var err error
			if w.perFrame {
				for _, r := range pend {
					if r.payload == nil {
						_, err = w.conn.Write(*r.frame)
					} else {
						// Header+payload must still reach the wire as ONE
						// Write: copy into a pooled frame rather than degrade
						// to two fault decisions.
						fb := getFrame(0)
						joined := append((*fb)[:0], *r.frame...)
						joined = append(joined, r.payload...)
						_, err = w.conn.Write(joined)
						*fb = joined
						putFrame(fb)
					}
					if err != nil {
						break
					}
				}
			} else {
				vec := net.Buffers(vecBacking[:0])
				for _, r := range pend {
					vec = append(vec, *r.frame)
					if r.payload != nil {
						vec = append(vec, r.payload)
					}
				}
				_, err = vec.WriteTo(w.conn)
			}
			if err != nil {
				// The write side is broken; close the conn so the read loop
				// exits too. Later frames are drained and discarded.
				failed = true
				w.conn.Close()
			}
		}
		for _, r := range pend {
			putFrame(r.frame)
			if r.release != nil {
				r.release()
			}
		}
	}
}

// send enqueues one response; blocks when the writer is saturated
// (backpressure on handler goroutines).
func (w *connWriter) send(r srvResponse) { w.ch <- r }

// close stops the writer after the queue drains; callers must guarantee no
// concurrent send (serveConn waits for all handlers first).
func (w *connWriter) close() {
	close(w.ch)
	<-w.done
}

func (e *Engine) serveConn(conn net.Conn) {
	defer e.wg.Done()
	if e.injector != nil {
		conn = e.injector.WrapConn(conn, false)
	}
	defer conn.Close()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.conns[conn] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	w := newConnWriter(conn, e.injector != nil)
	// Defer order (LIFO): wait for handlers to finish enqueueing, THEN close
	// the writer — it drains every queued response before exiting.
	defer w.close()
	var handlerWG sync.WaitGroup
	defer handlerWG.Wait()
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		total := binary.LittleEndian.Uint32(lenBuf[:])
		if total < reqHeaderLen || total > MaxFrame {
			return
		}
		bodyBP := getFrame(int(total))
		body := *bodyBP
		if _, err := io.ReadFull(br, body); err != nil {
			putFrame(bodyBP)
			return
		}
		id := binary.LittleEndian.Uint64(body[0:8])
		tc := telemetry.TraceContext{
			TraceID: binary.LittleEndian.Uint64(body[8:16]),
			SpanID:  binary.LittleEndian.Uint64(body[16:24]),
		}
		deadline := int64(binary.LittleEndian.Uint64(body[24:32]))
		nameLen := int(binary.LittleEndian.Uint16(body[32:34]))
		if reqHeaderLen+nameLen > len(body) {
			putFrame(bodyBP)
			return
		}
		name := string(body[reqHeaderLen : reqHeaderLen+nameLen])
		payload := body[reqHeaderLen+nameLen:]

		// Each request runs in its own goroutine so a slow handler does not
		// stall the connection — Mercury's progress model. The request body
		// goes back to the frame pool once the handler returns (handlers may
		// not retain their input, see Handler).
		handlerWG.Add(1)
		go func() {
			defer handlerWG.Done()
			ctx := context.Background()
			if tc.Valid() {
				// Remote marking: the first span a handler starts under this
				// context becomes the process-local root that closes this
				// process's portion of the cross-process trace (see
				// telemetry.TraceStore).
				ctx = telemetry.ContextWithRemote(ctx, tc)
			}
			// Install the caller's propagated deadline; dispatch sheds the
			// call (statusExpired) when it has already passed.
			if deadline != 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, time.Unix(0, deadline))
				defer cancel()
			}
			status := byte(statusOK)
			out, release, err := e.dispatch(ctx, name, payload)
			// bodyBP is NOT recycled yet: a handler may legally return (a
			// slice of) its input, so the request buffer must stay alive
			// until the response bytes have been copied or written.
			if err != nil {
				switch {
				case errors.Is(err, ErrUnknownRPC):
					status = statusUnknown
					out = nil
				case errors.Is(err, ErrExpired):
					status = statusExpired
					out = nil
				default:
					status = statusErr
					out = []byte(err.Error())
				}
			}
			var hdr [13]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(8+1+len(out)))
			binary.LittleEndian.PutUint64(hdr[4:12], id)
			hdr[12] = status
			if len(out) >= zeroCopyMinFrame {
				// Large responses go out as a header+payload pair: the
				// handler-owned bytes (typically a snapshot-cache frame)
				// reach the socket without being copied into a pooled frame
				// first. The writer gathers the pair into its vector write
				// (or re-joins them into one Write on injected transports)
				// and fires release afterwards.
				hb := getFrame(0)
				*hb = append((*hb)[:0], hdr[:]...)
				rel := release
				w.send(srvResponse{frame: hb, payload: out, release: func() {
					putFrame(bodyBP) // out may alias the request body
					if rel != nil {
						rel()
					}
				}})
			} else {
				respBP := getFrame(0)
				resp := append((*respBP)[:0], hdr[:]...)
				resp = append(resp, out...)
				*respBP = resp
				putFrame(bodyBP) // response copied; the request body is free
				w.send(srvResponse{frame: respBP, release: release})
			}
		}()
	}
}
