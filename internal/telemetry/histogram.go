package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i counts
// observations whose nanosecond duration has bit length i, i.e. durations in
// [2^(i-1), 2^i); bucket 0 holds zero/negative durations. 64 buckets cover
// every possible int64 duration, so no observation is ever out of range.
const histBuckets = 64

// Histogram is a fixed-bucket latency histogram: one atomic add per
// observation, no locks, no allocation. Percentiles are reconstructed from
// the bucket counts at read time with linear interpolation inside the
// bucket, which is plenty for p50/p95/p99 dashboards (buckets are a factor
// of two wide, so the reconstructed quantile is within 2x of the true one
// and usually much closer).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	idx := 0
	if ns > 0 {
		idx = bits.Len64(uint64(ns))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile reconstructs the q-th quantile (0 < q <= 1) from the bucket
// counts. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	// Copy the bucket counts first so the walk sees one consistent-enough
	// view; the total is re-derived from the copy rather than h.count so
	// rank never exceeds the copied mass.
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	max := h.maxNS.Load()
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			hi := int64(1) << i
			// Linear interpolation by rank position within the bucket,
			// clamped to the true max so reconstructed quantiles never
			// exceed an observed value.
			ns := lo + int64(float64(hi-lo)*float64(rank-cum)/float64(c))
			if ns > max {
				ns = max
			}
			return time.Duration(ns)
		}
		cum += c
	}
	return time.Duration(max)
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sumNS.Load()),
		Max:   time.Duration(h.maxNS.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
