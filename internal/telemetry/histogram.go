package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i counts
// observations whose nanosecond duration has bit length i, i.e. durations in
// [2^(i-1), 2^i); bucket 0 holds zero/negative durations. 64 buckets cover
// every possible int64 duration, so no observation is ever out of range.
const histBuckets = 64

// Histogram is a fixed-bucket latency histogram: one atomic add per
// observation, no locks, no allocation. Percentiles are reconstructed from
// the bucket counts at read time with linear interpolation inside the
// bucket, which is plenty for p50/p95/p99 dashboards (buckets are a factor
// of two wide, so the reconstructed quantile is within 2x of the true one
// and usually much closer).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	// exemplars[i] holds the TraceID of the most recent traced observation
	// that landed in bucket i — the link from a latency percentile back to
	// a kept trace (see TraceStore). One relaxed atomic store per traced
	// observation; untraced observations never touch it.
	exemplars [histBuckets]atomic.Uint64
}

// bucketIdx maps a nanosecond duration onto its log2 bucket.
func bucketIdx(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.buckets[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

// ObserveTrace is Observe plus an exemplar: when traceID is non-zero it is
// remembered as the duration bucket's most recent trace, so dashboards can
// jump from "the p99 bucket" to a concrete kept trace (soma.trace.get).
func (h *Histogram) ObserveTrace(d time.Duration, traceID uint64) {
	h.Observe(d)
	if traceID != 0 {
		h.exemplars[bucketIdx(int64(d))].Store(traceID)
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile reconstructs the q-th quantile (0 < q <= 1) from the bucket
// counts. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	// Copy the bucket counts first so the walk sees one consistent-enough
	// view; the total is re-derived from the copy rather than h.count so
	// rank never exceeds the copied mass.
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	max := h.maxNS.Load()
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			hi := int64(1) << i
			// Linear interpolation by rank position within the bucket,
			// clamped to the true max so reconstructed quantiles never
			// exceed an observed value.
			ns := lo + int64(float64(hi-lo)*float64(rank-cum)/float64(c))
			if ns > max {
				ns = max
			}
			return time.Duration(ns)
		}
		cum += c
	}
	return time.Duration(max)
}

// BucketExemplar links one occupied latency bucket to the most recent
// TraceID observed in it.
type BucketExemplar struct {
	// Ceil is the bucket's exclusive upper bound (2^i ns).
	Ceil    time.Duration
	TraceID uint64
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	// Exemplars lists, ascending by bucket, the most recent TraceID per
	// occupied bucket (only buckets that saw a traced observation appear).
	Exemplars []BucketExemplar
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sumNS.Load()),
		Max:   time.Duration(h.maxNS.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := 1; i < histBuckets; i++ {
		if id := h.exemplars[i].Load(); id != 0 {
			ceil := time.Duration(math.MaxInt64)
			if i < 63 {
				ceil = time.Duration(int64(1) << i)
			}
			snap.Exemplars = append(snap.Exemplars, BucketExemplar{Ceil: ceil, TraceID: id})
		}
	}
	return snap
}
