package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext is the 8-byte trace id / 8-byte span id pair that follows a
// request across component boundaries. mercury carries it in every frame
// header, so one publish can be followed client → wire → stripe append. A
// zero TraceID means "no active trace".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether tc identifies an active trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

type traceCtxKey struct{}

// ctxTrace is the context payload: the trace ids plus whether they arrived
// from another process (an RPC server rebuilding them from a frame header).
// The remote flag makes the first span started under such a context a
// *process-local root* — the span that closes this process's portion of a
// cross-process trace in the trace store (see TraceStore).
type ctxTrace struct {
	tc     TraceContext
	remote bool
}

// ContextWith returns ctx carrying tc.
func ContextWith(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, ctxTrace{tc: tc})
}

// ContextWithRemote returns ctx carrying tc received from another process
// (the mercury server loop uses this when a frame header carried trace ids).
// The first span started under the returned context is marked as this
// process's local root; contexts derived from that span (ChildSpan) clear
// the flag again.
func ContextWithRemote(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, ctxTrace{tc: tc, remote: true})
}

// FromContext extracts the active trace context, if any.
func FromContext(ctx context.Context) TraceContext {
	v, _ := ctx.Value(traceCtxKey{}).(ctxTrace)
	return v.tc
}

func fromContextFull(ctx context.Context) ctxTrace {
	v, _ := ctx.Value(traceCtxKey{}).(ctxTrace)
	return v
}

// idState seeds span/trace id generation; ids are splitmix64 outputs of an
// atomic counter, so they are unique within a process and well-mixed across
// processes started at different times.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a non-zero 8-byte id.
func NewID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Span is one timed operation within a trace. End records it into the
// registry's recent-span ring (and trace store, when configured). Spans are
// handed out by StartSpan, ChildSpan and LeafSpan; a nil *Span is a valid
// no-op (End does nothing), which is how untraced hot paths skip span
// overhead entirely. End releases the span back to an internal pool: a span
// must not be touched after End.
type Span struct {
	reg    *Registry
	name   string
	tc     TraceContext
	parent uint64
	start  time.Time
	count  int64
	err    bool
	// local marks a process-local root: the first span started under a
	// trace context that arrived from another process. Its End closes this
	// process's portion of the trace in the trace store.
	local bool
}

// spanPool recycles Span structs so the traced hot path allocates nothing
// per span (the ingest overhead budget is 5%; see make telemetry-overhead).
var spanPool = sync.Pool{New: func() interface{} { return new(Span) }}

// Context returns the span's trace context (for manual propagation).
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return s.tc
}

// Fail marks the span (and therefore its trace) as failed. The trace store
// always keeps error traces, so calling Fail before End guarantees the
// trace survives sampling. No-op on a nil span.
func (s *Span) Fail() {
	if s != nil {
		s.err = true
	}
}

// SetCount attaches a unit count to the span (batch ingest records how many
// coalesced publishes a stripe append covered). Rendered by the waterfall
// view; zero means "not set". No-op on a nil span.
func (s *Span) SetCount(n int64) {
	if s != nil {
		s.count = n
	}
}

// End completes the span and records it. End on a nil or already-ended span
// is a no-op.
func (s *Span) End() {
	if s == nil || s.reg == nil {
		return
	}
	s.EndAt(time.Now())
}

// EndAt is End with a caller-supplied end time, for hot paths that already
// read the clock (clock reads are not free — ~75ns on virtualized hosts, so
// sharing one read between a histogram observation and a span matters).
func (s *Span) EndAt(now time.Time) {
	if s == nil || s.reg == nil {
		return
	}
	reg := s.reg
	s.reg = nil
	snap := SpanSnapshot{
		TraceID: s.tc.TraceID,
		SpanID:  s.tc.SpanID,
		Parent:  s.parent,
		Name:    s.name,
		Start:   s.start,
		Dur:     now.Sub(s.start),
		Count:   s.count,
		Err:     s.err,
	}
	local := s.local
	spanPool.Put(s)
	reg.spans.Load().record(snap)
	if ts := reg.traces.Load(); ts != nil {
		ts.record(snap, local)
	}
}

// StartSpan begins a span named name on the registry. When ctx already
// carries a trace, the new span is a child of it; otherwise a fresh trace is
// started. The returned context carries the new span's trace context.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := fromContextFull(ctx)
	s := spanPool.Get().(*Span)
	s.reg, s.name, s.start = r, name, time.Now()
	s.count, s.err, s.local = 0, false, false
	if parent.tc.Valid() {
		s.tc = TraceContext{TraceID: parent.tc.TraceID, SpanID: NewID()}
		s.parent = parent.tc.SpanID
		s.local = parent.remote
	} else {
		s.tc = TraceContext{TraceID: NewID(), SpanID: NewID()}
		s.parent = 0
	}
	return ContextWith(ctx, s.tc), s
}

// ChildSpan begins a span only when ctx already carries a trace; otherwise
// it returns (ctx, nil) at the cost of a single context lookup. Hot paths
// use this so untraced operations pay nothing for tracing support.
func (r *Registry) ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := r.LeafSpan(ctx, name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWith(ctx, sp.tc), sp
}

// LeafSpan is ChildSpan without the derived context: for operations that
// start no spans of their own, it skips the context allocation entirely.
// Like ChildSpan it returns nil when ctx carries no active trace.
func (r *Registry) LeafSpan(ctx context.Context, name string) *Span {
	return r.LeafSpanAt(ctx, name, time.Now())
}

// LeafSpanAt is LeafSpan with a caller-supplied start time (see EndAt).
func (r *Registry) LeafSpanAt(ctx context.Context, name string, start time.Time) *Span {
	parent := fromContextFull(ctx)
	if !parent.tc.Valid() {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.reg, s.name, s.start = r, name, start
	s.count, s.err = 0, false
	s.tc = TraceContext{TraceID: parent.tc.TraceID, SpanID: NewID()}
	s.parent = parent.tc.SpanID
	s.local = parent.remote
	return s
}

// StartSpan begins a span on the Default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultRegistry.StartSpan(ctx, name)
}

// ChildSpan begins a child span on the Default registry when ctx is traced.
func ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultRegistry.ChildSpan(ctx, name)
}

// LeafSpan begins a context-free child span on the Default registry.
func LeafSpan(ctx context.Context, name string) *Span {
	return defaultRegistry.LeafSpan(ctx, name)
}

// LeafSpanAt begins a context-free child span with a supplied start time.
func LeafSpanAt(ctx context.Context, name string, start time.Time) *Span {
	return defaultRegistry.LeafSpanAt(ctx, name, start)
}

// SpanSnapshot is one completed span.
type SpanSnapshot struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64 // parent span id; 0 for root spans
	Name    string
	Start   time.Time
	Dur     time.Duration
	Count   int64 // optional unit count (batch entries); 0 = not set
	Err     bool  // the operation failed
}

// spanRingSize is the default recent-span ring capacity; Options /
// Registry.Configure resizes it (somad -span-ring). Completed spans
// overwrite the oldest entry, so tracing memory is constant regardless of
// traffic. The ring is sharded by span id (ids are splitmix-mixed, so the
// spread is uniform) to keep concurrent End calls off one mutex; a global
// sequence number preserves exact record order across shards.
const (
	spanRingSize = 256
	spanShards   = 4
)

type spanEntry struct {
	seq  uint64
	span SpanSnapshot
}

type spanShard struct {
	mu    sync.Mutex
	buf   []spanEntry
	next  int
	count int
}

type spanRing struct {
	seq    atomic.Uint64
	shards [spanShards]spanShard
}

// newSpanRing builds a ring holding ~capacity spans split across the shards
// (rounded up to a multiple of spanShards, minimum one per shard).
func newSpanRing(capacity int) *spanRing {
	per := (capacity + spanShards - 1) / spanShards
	if per < 1 {
		per = 1
	}
	sr := &spanRing{}
	for i := range sr.shards {
		sr.shards[i].buf = make([]spanEntry, per)
	}
	return sr
}

func (sr *spanRing) record(s SpanSnapshot) {
	seq := sr.seq.Add(1)
	sh := &sr.shards[s.SpanID%spanShards]
	sh.mu.Lock()
	sh.buf[sh.next] = spanEntry{seq: seq, span: s}
	sh.next = (sh.next + 1) % len(sh.buf)
	if sh.count < len(sh.buf) {
		sh.count++
	}
	sh.mu.Unlock()
}

// snapshot returns the retained spans in record order (oldest first).
func (sr *spanRing) snapshot() []SpanSnapshot {
	var entries []spanEntry
	for i := range sr.shards {
		sh := &sr.shards[i]
		sh.mu.Lock()
		n := len(sh.buf)
		start := (sh.next - sh.count + n) % n
		for j := 0; j < sh.count; j++ {
			entries = append(entries, sh.buf[(start+j)%n])
		}
		sh.mu.Unlock()
	}
	if len(entries) == 0 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]SpanSnapshot, len(entries))
	for i, e := range entries {
		out[i] = e.span
	}
	return out
}
