package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext is the 8-byte trace id / 8-byte span id pair that follows a
// request across component boundaries. mercury carries it in every frame
// header, so one publish can be followed client → wire → stripe append. A
// zero TraceID means "no active trace".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether tc identifies an active trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

type traceCtxKey struct{}

// ContextWith returns ctx carrying tc. Handlers receive such a context from
// the mercury server loop when the caller sent trace ids.
func ContextWith(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// FromContext extracts the active trace context, if any.
func FromContext(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// idState seeds span/trace id generation; ids are splitmix64 outputs of an
// atomic counter, so they are unique within a process and well-mixed across
// processes started at different times.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a non-zero 8-byte id.
func NewID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Span is one timed operation within a trace. End records it into the
// registry's recent-span ring. Spans are handed out by StartSpan, ChildSpan
// and LeafSpan; a nil *Span is a valid no-op (End does nothing), which is
// how untraced hot paths skip span overhead entirely. End releases the span
// back to an internal pool: a span must not be touched after End.
type Span struct {
	reg    *Registry
	name   string
	tc     TraceContext
	parent uint64
	start  time.Time
}

// spanPool recycles Span structs so the traced hot path allocates nothing
// per span (the ingest overhead budget is 5%; see make telemetry-overhead).
var spanPool = sync.Pool{New: func() interface{} { return new(Span) }}

// Context returns the span's trace context (for manual propagation).
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return s.tc
}

// End completes the span and records it. End on a nil or already-ended span
// is a no-op.
func (s *Span) End() {
	if s == nil || s.reg == nil {
		return
	}
	s.EndAt(time.Now())
}

// EndAt is End with a caller-supplied end time, for hot paths that already
// read the clock (clock reads are not free — ~75ns on virtualized hosts, so
// sharing one read between a histogram observation and a span matters).
func (s *Span) EndAt(now time.Time) {
	if s == nil || s.reg == nil {
		return
	}
	reg := s.reg
	s.reg = nil
	reg.spans.record(SpanSnapshot{
		TraceID: s.tc.TraceID,
		SpanID:  s.tc.SpanID,
		Parent:  s.parent,
		Name:    s.name,
		Start:   s.start,
		Dur:     now.Sub(s.start),
	})
	spanPool.Put(s)
}

// StartSpan begins a span named name on the registry. When ctx already
// carries a trace, the new span is a child of it; otherwise a fresh trace is
// started. The returned context carries the new span's trace context.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	s := spanPool.Get().(*Span)
	s.reg, s.name, s.start = r, name, time.Now()
	if parent.Valid() {
		s.tc = TraceContext{TraceID: parent.TraceID, SpanID: NewID()}
		s.parent = parent.SpanID
	} else {
		s.tc = TraceContext{TraceID: NewID(), SpanID: NewID()}
		s.parent = 0
	}
	return ContextWith(ctx, s.tc), s
}

// ChildSpan begins a span only when ctx already carries a trace; otherwise
// it returns (ctx, nil) at the cost of a single context lookup. Hot paths
// use this so untraced operations pay nothing for tracing support.
func (r *Registry) ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := r.LeafSpan(ctx, name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWith(ctx, sp.tc), sp
}

// LeafSpan is ChildSpan without the derived context: for operations that
// start no spans of their own, it skips the context allocation entirely.
// Like ChildSpan it returns nil when ctx carries no active trace.
func (r *Registry) LeafSpan(ctx context.Context, name string) *Span {
	return r.LeafSpanAt(ctx, name, time.Now())
}

// LeafSpanAt is LeafSpan with a caller-supplied start time (see EndAt).
func (r *Registry) LeafSpanAt(ctx context.Context, name string, start time.Time) *Span {
	parent := FromContext(ctx)
	if !parent.Valid() {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.reg, s.name, s.start = r, name, start
	s.tc = TraceContext{TraceID: parent.TraceID, SpanID: NewID()}
	s.parent = parent.SpanID
	return s
}

// StartSpan begins a span on the Default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultRegistry.StartSpan(ctx, name)
}

// ChildSpan begins a child span on the Default registry when ctx is traced.
func ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultRegistry.ChildSpan(ctx, name)
}

// LeafSpan begins a context-free child span on the Default registry.
func LeafSpan(ctx context.Context, name string) *Span {
	return defaultRegistry.LeafSpan(ctx, name)
}

// LeafSpanAt begins a context-free child span with a supplied start time.
func LeafSpanAt(ctx context.Context, name string, start time.Time) *Span {
	return defaultRegistry.LeafSpanAt(ctx, name, start)
}

// SpanSnapshot is one completed span.
type SpanSnapshot struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64 // parent span id; 0 for root spans
	Name    string
	Start   time.Time
	Dur     time.Duration
}

// spanRingSize bounds the recent-span ring; completed spans overwrite the
// oldest entry, so tracing memory is constant regardless of traffic. The
// ring is sharded by span id (ids are splitmix-mixed, so the spread is
// uniform) to keep concurrent End calls off one mutex; a global sequence
// number preserves exact record order across shards.
const (
	spanRingSize  = 256
	spanShards    = 4
	spanShardSize = spanRingSize / spanShards
)

type spanEntry struct {
	seq  uint64
	span SpanSnapshot
}

type spanShard struct {
	mu    sync.Mutex
	buf   [spanShardSize]spanEntry
	next  int
	count int
}

type spanRing struct {
	seq    atomic.Uint64
	shards [spanShards]spanShard
}

func (sr *spanRing) record(s SpanSnapshot) {
	seq := sr.seq.Add(1)
	sh := &sr.shards[s.SpanID%spanShards]
	sh.mu.Lock()
	sh.buf[sh.next] = spanEntry{seq: seq, span: s}
	sh.next = (sh.next + 1) % spanShardSize
	if sh.count < spanShardSize {
		sh.count++
	}
	sh.mu.Unlock()
}

// snapshot returns the retained spans in record order (oldest first).
func (sr *spanRing) snapshot() []SpanSnapshot {
	var entries []spanEntry
	for i := range sr.shards {
		sh := &sr.shards[i]
		sh.mu.Lock()
		start := (sh.next - sh.count + spanShardSize) % spanShardSize
		for j := 0; j < sh.count; j++ {
			entries = append(entries, sh.buf[(start+j)%spanShardSize])
		}
		sh.mu.Unlock()
	}
	if len(entries) == 0 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]SpanSnapshot, len(entries))
	for i, e := range entries {
		out[i] = e.span
	}
	return out
}
