// Package telemetry is gosoma's self-observation spine: a stdlib-only,
// allocation-conscious metrics and tracing core used by every layer of the
// stack (mercury RPC, the core service, zmq coordination, the pilot
// scheduler). The paper's position — observability must be built *into* the
// workflow stack with measurably low overhead (SOMA Tables 1–2) — applies to
// the observability system itself, so this package is designed for hot
// paths:
//
//   - Counter and Gauge are single atomic words;
//   - Histogram is a fixed array of atomic log2 buckets (no locks, no
//     allocation per observation) from which p50/p95/p99 are extracted at
//     read time;
//   - Span carries an 8-byte trace id / 8-byte span id pair through
//     context.Context and across mercury frame headers, and completed spans
//     land in a fixed-size ring (old spans are overwritten, never grow).
//
// A process-wide Default registry aggregates everything; the service exposes
// it via the soma.telemetry RPC (conduit-encoded, see internal/core) and
// optionally as Prometheus-style text exposition (somad -metrics).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic integer gauge (queue depths, in-flight calls, free
// cores). Unlike Counter it may go down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 gauge (utilization percentages, ratios).
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry names and owns a process's metrics. All accessors are
// get-or-create and safe for concurrent use; the returned metric pointers
// are stable, so hot paths should look a metric up once and keep the
// pointer.
type Registry struct {
	mu      sync.RWMutex
	counter map[string]*Counter
	gauge   map[string]*Gauge
	fgauge  map[string]*FloatGauge
	hist    map[string]*Histogram

	// spans is the recent-span ring (default capacity 256, resizable via
	// Configure); traces, when non-nil, is the tail-sampling trace store
	// fed by every Span.End. Both are swapped atomically so hot-path span
	// completion never takes the registry lock.
	spans  atomic.Pointer[spanRing]
	traces atomic.Pointer[TraceStore]
}

// NewRegistry returns an empty registry (default span ring, no trace
// store — Configure installs one).
func NewRegistry() *Registry {
	r := &Registry{
		counter: map[string]*Counter{},
		gauge:   map[string]*Gauge{},
		fgauge:  map[string]*FloatGauge{},
		hist:    map[string]*Histogram{},
	}
	r.spans.Store(newSpanRing(spanRingSize))
	return r
}

// Options reconfigures a registry's tracing machinery (Registry.Configure).
type Options struct {
	// SpanRingCapacity resizes the recent-span ring; the ring restarts
	// empty. <= 0 keeps the current capacity.
	SpanRingCapacity int
	// TraceStore, when non-nil, installs a trace store built from these
	// options, replacing any existing store (which restarts sampling
	// state). See TraceStoreOptions for the zero-value defaults.
	TraceStore *TraceStoreOptions
}

// Configure applies opts. Safe to call at any time; spans completing
// concurrently land in either the old or new ring/store.
func (r *Registry) Configure(opts Options) {
	if opts.SpanRingCapacity > 0 {
		r.spans.Store(newSpanRing(opts.SpanRingCapacity))
	}
	if opts.TraceStore != nil {
		r.traces.Store(newTraceStore(*opts.TraceStore, r))
	}
}

// Traces returns the registry's trace store, or nil when none is
// configured.
func (r *Registry) Traces() *TraceStore { return r.traces.Load() }

// defaultRegistry is the process-wide registry every layer records into.
// It ships with a default-bounded trace store, so any process that starts
// spans can answer soma.trace.* queries without configuration.
var defaultRegistry = NewRegistry()

func init() {
	defaultRegistry.Configure(Options{TraceStore: &TraceStoreOptions{}})
}

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counter[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counter[name]; c == nil {
		c = &Counter{}
		r.counter[name] = c
	}
	return c
}

// Gauge returns the named integer gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauge[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauge[name]; g == nil {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.RLock()
	g := r.fgauge[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.fgauge[name]; g == nil {
		g = &FloatGauge{}
		r.fgauge[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hist[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hist[name]; h == nil {
		h = &Histogram{}
		r.hist[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, safe to encode and ship.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	Spans      []SpanSnapshot
}

// Snapshot captures every metric and the recent-span ring. Metric reads are
// atomic but not mutually consistent — counters keep moving while the
// snapshot is taken, which is fine for monitoring.
func (r *Registry) Snapshot() *Snapshot {
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.RLock()
	for name, c := range r.counter {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauge {
		out.Gauges[name] = float64(g.Value())
	}
	for name, g := range r.fgauge {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.hist {
		out.Histograms[name] = h.Snapshot()
	}
	r.mu.RUnlock()
	out.Spans = r.spans.Load().snapshot()
	return out
}

// SortedNames returns m's keys in sorted order — stable iteration for
// rendering and exposition.
func SortedNames[M ~map[string]V, V any](m M) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
