package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter is not get-or-create stable")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	fg := r.FloatGauge("a.util")
	fg.Set(42.5)
	if got := fg.Value(); got != 42.5 {
		t.Fatalf("float gauge = %g, want 42.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations around 1µs, 10 slow around 1ms: p50 must land in
	// the fast band, p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d, want 100", snap.Count)
	}
	if snap.P50 < 512*time.Nanosecond || snap.P50 > 4*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs", snap.P50)
	}
	if snap.P99 < 512*time.Microsecond || snap.P99 > 4*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", snap.P99)
	}
	if snap.Max < time.Millisecond {
		t.Errorf("max = %v, want >= 1ms", snap.Max)
	}
	if mean := snap.Mean(); mean <= 0 {
		t.Errorf("mean = %v, want > 0", mean)
	}
}

func TestHistogramEmptyAndZero(t *testing.T) {
	h := &Histogram{}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	h.Observe(0)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("zero-duration quantile = %v, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSpanParentChild(t *testing.T) {
	r := NewRegistry()
	ctx, root := r.StartSpan(context.Background(), "client.publish")
	if !root.Context().Valid() {
		t.Fatal("root span has no trace context")
	}
	_, child := r.ChildSpan(ctx, "stripe.append")
	if child == nil {
		t.Fatal("ChildSpan returned nil under an active trace")
	}
	if child.Context().TraceID != root.Context().TraceID {
		t.Error("child span does not share the root's trace id")
	}
	child.End()
	root.End()

	spans := r.Snapshot().Spans
	if len(spans) != 2 {
		t.Fatalf("ring has %d spans, want 2", len(spans))
	}
	// Ring is oldest-first: the child ended first.
	if spans[0].Name != "stripe.append" || spans[1].Name != "client.publish" {
		t.Fatalf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].SpanID {
		t.Error("child's parent id does not match the root's span id")
	}
	if spans[1].Parent != 0 {
		t.Error("root span has a parent")
	}
}

func TestChildSpanNoopWithoutTrace(t *testing.T) {
	r := NewRegistry()
	ctx, sp := r.ChildSpan(context.Background(), "untraced")
	if sp != nil {
		t.Fatal("ChildSpan created a span without a parent trace")
	}
	sp.End() // must not panic on nil
	if FromContext(ctx).Valid() {
		t.Fatal("untraced context gained a trace id")
	}
	if got := len(r.Snapshot().Spans); got != 0 {
		t.Fatalf("ring has %d spans, want 0", got)
	}
}

func TestSpanRingOverwrite(t *testing.T) {
	r := NewRegistry()
	// Enough spans that every shard (ids spread uniformly) wraps its buffer.
	for i := 0; i < 10*spanRingSize; i++ {
		_, sp := r.StartSpan(context.Background(), "s")
		sp.End()
	}
	if got := len(r.Snapshot().Spans); got != spanRingSize {
		t.Fatalf("ring holds %d spans, want %d", got, spanRingSize)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("mercury.calls_served").Add(3)
	r.Gauge("zmq.queue.sched.depth").Set(5)
	r.Histogram("mercury.server.latency.soma.publish").Observe(2 * time.Microsecond)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gosoma_mercury_calls_served counter",
		"gosoma_mercury_calls_served 3",
		"gosoma_zmq_queue_sched_depth 5",
		"gosoma_mercury_server_latency_soma_publish_seconds{quantile=\"0.5\"}",
		"gosoma_mercury_server_latency_soma_publish_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
