package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// storeRegistry builds a registry with a trace store configured from opts.
func storeRegistry(opts TraceStoreOptions) *Registry {
	r := NewRegistry()
	r.Configure(Options{TraceStore: &opts})
	return r
}

// endAfter completes sp as if it had run for d.
func endAfter(sp *Span, d time.Duration) {
	sp.EndAt(sp.start.Add(d))
}

func TestTraceStoreKeepsErrorTraces(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{HeadSampleEvery: -1})
	ctx, root := r.StartSpan(context.Background(), "op")
	child := r.LeafSpan(ctx, "op.child")
	child.Fail()
	endAfter(child, time.Millisecond)
	endAfter(root, 2*time.Millisecond)

	ts := r.Traces()
	tr, ok := ts.Get(root.Context().TraceID)
	if !ok {
		t.Fatal("error trace was not kept")
	}
	if tr.Reason != KeepError || !tr.Err {
		t.Fatalf("reason = %q err = %v, want error/true", tr.Reason, tr.Err)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(tr.Spans))
	}
	if tr.Root != "op" {
		t.Fatalf("root = %q, want op", tr.Root)
	}
}

func TestTraceStoreDropsUnremarkable(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{HeadSampleEvery: -1})
	_, root := r.StartSpan(context.Background(), "op")
	id := root.Context().TraceID
	endAfter(root, time.Millisecond)
	if _, ok := r.Traces().Get(id); ok {
		t.Fatal("unremarkable trace kept with head sampling disabled")
	}
	if got := r.Counter("telemetry.traces.dropped").Value(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
}

func TestTraceStoreTailSampling(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{HeadSampleEvery: -1, TailMinSamples: 32})
	ts := r.Traces()
	// Warm up the root name's distribution with fast traces.
	for i := 0; i < 100; i++ {
		_, root := r.StartSpan(context.Background(), "op")
		endAfter(root, time.Millisecond)
	}
	if thr := ts.TailThreshold("op"); thr == 0 || thr > 10*time.Millisecond {
		t.Fatalf("tail threshold = %v, want warmed up around ~1-2ms", thr)
	}
	// A >p99 trace must be kept.
	_, slow := r.StartSpan(context.Background(), "op")
	slowID := slow.Context().TraceID
	endAfter(slow, 50*time.Millisecond)
	tr, ok := ts.Get(slowID)
	if !ok {
		t.Fatal(">p99 trace was not kept")
	}
	if tr.Reason != KeepTail {
		t.Fatalf("reason = %q, want tail", tr.Reason)
	}
	if tr.Dur != 50*time.Millisecond {
		t.Fatalf("kept dur = %v, want 50ms", tr.Dur)
	}
}

func TestTraceStoreHeadSampling(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{HeadSampleEvery: 4, TailMinSamples: 1 << 30})
	for i := 0; i < 40; i++ {
		_, root := r.StartSpan(context.Background(), "op")
		endAfter(root, time.Millisecond)
	}
	kept := len(r.Traces().List())
	if kept != 10 {
		t.Fatalf("head sampling kept %d of 40, want 10 (1 in 4)", kept)
	}
}

func TestTraceStoreLRUBounds(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{MaxTraces: 4, HeadSampleEvery: 1, TailMinSamples: 1 << 30})
	ts := r.Traces()
	var last uint64
	for i := 0; i < 20; i++ {
		_, root := r.StartSpan(context.Background(), "op")
		last = root.Context().TraceID
		endAfter(root, time.Millisecond)
	}
	if got := len(ts.List()); got != 4 {
		t.Fatalf("kept %d traces, want 4 (MaxTraces)", got)
	}
	if _, ok := ts.Get(last); !ok {
		t.Fatal("most recent trace was evicted instead of the oldest")
	}
	if got := r.Counter("telemetry.traces.evicted").Value(); got != 16 {
		t.Fatalf("evicted counter = %d, want 16", got)
	}
}

func TestTraceStoreByteBudget(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{MaxBytes: 512, HeadSampleEvery: 1, TailMinSamples: 1 << 30})
	for i := 0; i < 50; i++ {
		ctx, root := r.StartSpan(context.Background(), "a-root-span-with-a-long-name")
		for j := 0; j < 3; j++ {
			endAfter(r.LeafSpan(ctx, "child"), time.Microsecond)
		}
		endAfter(root, time.Millisecond)
	}
	if got := r.Gauge("telemetry.traces.kept_bytes").Value(); got > 512 {
		t.Fatalf("kept bytes = %d, exceeds 512 budget", got)
	}
	if got := len(r.Traces().List()); got < 1 {
		t.Fatalf("kept %d traces, want at least the newest", got)
	}
}

func TestTraceStoreRemoteLocalRoot(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{HeadSampleEvery: 1, TailMinSamples: 1 << 30})
	// A server receives trace ids over the wire: its handler span is a
	// process-local root and closes this process's trace portion.
	wire := TraceContext{TraceID: NewID(), SpanID: NewID()}
	ctx := ContextWithRemote(context.Background(), wire)
	hctx, handler := r.ChildSpan(ctx, "soma.publish.handler")
	endAfter(r.LeafSpan(hctx, "core.stripe.append"), 100*time.Microsecond)
	endAfter(handler, time.Millisecond)

	tr, ok := r.Traces().Get(wire.TraceID)
	if !ok {
		t.Fatal("server-side trace portion was not finalized by its local root")
	}
	if tr.Root != "soma.publish.handler" {
		t.Fatalf("local root = %q, want soma.publish.handler", tr.Root)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(tr.Spans))
	}
	// Children of the handler must not have re-finalized the trace.
	if got := r.Counter("telemetry.traces.pending.dropped").Value(); got != 0 {
		t.Fatalf("pending.dropped = %d, want 0", got)
	}
}

func TestTraceStorePendingBound(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{MaxPending: 8, HeadSampleEvery: -1})
	// Orphan child spans whose roots never end pile up in pending.
	for i := 0; i < 100; i++ {
		ctx := ContextWith(context.Background(), TraceContext{TraceID: NewID(), SpanID: NewID()})
		endAfter(r.LeafSpan(ctx, "orphan"), time.Microsecond)
	}
	// Eviction is shard-local, so the bound is approximate within one
	// entry per shard of slack.
	if got := r.Gauge("telemetry.traces.pending").Value(); got > 8+traceShards {
		t.Fatalf("pending = %d, exceeds MaxPending 8 (+ shard slack)", got)
	}
	if got := r.Counter("telemetry.traces.pending.dropped").Value(); got == 0 {
		t.Fatal("pending eviction never fired")
	}
}

func TestTraceStoreSpanCap(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{MaxSpansPerTrace: 4, HeadSampleEvery: 1, TailMinSamples: 1 << 30})
	ctx, root := r.StartSpan(context.Background(), "op")
	for i := 0; i < 10; i++ {
		endAfter(r.LeafSpan(ctx, "child"), time.Microsecond)
	}
	endAfter(root, time.Millisecond)
	tr, ok := r.Traces().Get(root.Context().TraceID)
	if !ok {
		t.Fatal("trace not kept")
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4 (cap)", len(tr.Spans))
	}
	if tr.DroppedSpans != 7 {
		t.Fatalf("dropped %d spans, want 7", tr.DroppedSpans)
	}
}

// TestTraceStoreConcurrent exercises span End, trace assembly, sampling and
// LRU eviction from many goroutines at once; run with -race.
func TestTraceStoreConcurrent(t *testing.T) {
	r := storeRegistry(TraceStoreOptions{
		MaxTraces: 8, MaxBytes: 8 << 10, MaxPending: 64,
		HeadSampleEvery: 2, TailMinSamples: 16,
	})
	ts := r.Traces()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ctx, root := r.StartSpan(context.Background(), "op")
				cctx, child := r.ChildSpan(ctx, "child")
				leaf := r.LeafSpan(cctx, "leaf")
				if i%7 == 0 {
					leaf.Fail()
				}
				leaf.End()
				child.End()
				root.End()
				if i%50 == 0 {
					for _, sum := range ts.List() {
						ts.Get(sum.TraceID)
					}
					ts.Slowest(4)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(ts.List()); got > 8 {
		t.Fatalf("kept %d traces, exceeds MaxTraces 8", got)
	}
	if got := r.Gauge("telemetry.traces.pending").Value(); got != 0 {
		t.Fatalf("pending = %d after all traces finished, want 0", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := &Histogram{}
	h.Observe(time.Microsecond) // untraced: no exemplar
	h.ObserveTrace(time.Millisecond, 0xabcd)
	snap := h.Snapshot()
	if len(snap.Exemplars) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(snap.Exemplars))
	}
	ex := snap.Exemplars[0]
	if ex.TraceID != 0xabcd {
		t.Fatalf("exemplar trace = %x, want abcd", ex.TraceID)
	}
	if ex.Ceil < time.Millisecond || ex.Ceil > 2*time.Millisecond {
		t.Fatalf("exemplar ceiling = %v, want (1ms, 2ms]", ex.Ceil)
	}
	// A later traced observation in the same bucket replaces the exemplar.
	h.ObserveTrace(1040*time.Microsecond, 0xef01)
	if got := h.Snapshot().Exemplars[0].TraceID; got != 0xef01 {
		t.Fatalf("exemplar trace = %x, want ef01 (most recent)", got)
	}
}

func TestSpanRingConfigurableCapacity(t *testing.T) {
	r := NewRegistry()
	r.Configure(Options{SpanRingCapacity: 64})
	for i := 0; i < 1000; i++ {
		_, sp := r.StartSpan(context.Background(), "s")
		sp.End()
	}
	if got := len(r.Snapshot().Spans); got != 64 {
		t.Fatalf("ring holds %d spans, want 64", got)
	}
}

func TestPromExemplarExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("core.publish.latency").ObserveTrace(time.Millisecond, 0x1234)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# EXEMPLAR gosoma_core_publish_latency_seconds{le="0.001048576"} trace_id="0000000000001234"`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, sb.String())
	}
}
