package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestWriteTextGolden pins the full exposition for a small registry —
// HELP, TYPE, samples, summary series — so format drift is a conscious
// choice, not an accident.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.query.cache_hits").Add(7)
	r.Gauge("gateway.ws.active").Set(3)
	h := r.Histogram("gateway.http.query.latency")
	// One observation makes every quantile the same value: 2^k-bucketed
	// quantiles report the bucket ceiling, so observe an exact power of two.
	h.Observe(1 << 30) // 2^30 ns ≈ 1.073741824s

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got := buf.String()

	want := "" +
		"# HELP gosoma_core_query_cache_hits SOMA query-path activity, including snapshot-cache effectiveness.\n" +
		"# TYPE gosoma_core_query_cache_hits counter\n" +
		"gosoma_core_query_cache_hits 7\n" +
		"# HELP gosoma_gateway_ws_active HTTP gateway WebSocket sessions and drop accounting.\n" +
		"# TYPE gosoma_gateway_ws_active gauge\n" +
		"gosoma_gateway_ws_active 3\n" +
		"# HELP gosoma_gateway_http_query_latency_seconds HTTP gateway request handling per route.\n" +
		"# TYPE gosoma_gateway_http_query_latency_seconds summary\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition mismatch:\n--- want prefix ---\n%s\n--- got ---\n%s", want, got)
	}
	for _, frag := range []string{
		`gosoma_gateway_http_query_latency_seconds{quantile="0.5"} `,
		`gosoma_gateway_http_query_latency_seconds{quantile="0.95"} `,
		`gosoma_gateway_http_query_latency_seconds{quantile="0.99"} `,
		"gosoma_gateway_http_query_latency_seconds_sum 1.073741824\n",
		"gosoma_gateway_http_query_latency_seconds_count 1\n",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, got)
		}
	}
}

// TestWriteTextHelpBeforeType asserts the ordering contract per family:
// every # TYPE line is immediately preceded by the family's # HELP line.
func TestWriteTextHelpBeforeType(t *testing.T) {
	r := NewRegistry()
	r.Counter("zmq.batches").Inc()
	r.Gauge("mercury.inflight").Set(1)
	r.Histogram("unmapped.subsystem.latency").Observe(time.Millisecond)

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		family := strings.Fields(line)[2]
		if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP "+family+" ") {
			t.Errorf("line %d: %q lacks a preceding HELP for %s", i, line, family)
		}
	}
	// Unmapped names still get a generic description rather than none.
	if !strings.Contains(buf.String(),
		"# HELP gosoma_unmapped_subsystem_latency_seconds gosoma metric (no subsystem description registered).\n") {
		t.Errorf("generic HELP fallback missing:\n%s", buf.String())
	}
}

// TestPromHelpLongestPrefix pins the longest-prefix-wins rule.
func TestPromHelpLongestPrefix(t *testing.T) {
	cases := map[string]string{
		"core.query.cache_hits":  "SOMA query-path activity, including snapshot-cache effectiveness.",
		"core.engine.calls":      "SOMA service/client internals.",
		"gateway.ws.dropped":     "HTTP gateway WebSocket sessions and drop accounting.",
		"gateway.other":          "HTTP/WebSocket gateway internals.",
		"telemetry.traces.kept":  "Tail-sampling trace store activity.",
		"entirely.unknown.thing": "gosoma metric (no subsystem description registered).",
	}
	for name, want := range cases {
		if got := promHelp(name); got != want {
			t.Errorf("promHelp(%q) = %q, want %q", name, got, want)
		}
	}
}
