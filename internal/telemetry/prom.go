package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus-style text exposition (the somad -metrics endpoint). The output
// follows the text format conventions: one metric family per block, counters
// and gauges as plain samples, histograms as summaries with quantile labels
// plus _sum (seconds) and _count series. Metric names are prefixed with
// "gosoma_" and sanitized to the allowed character set.

// promName sanitizes a dotted registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("gosoma_"))
	b.WriteString("gosoma_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// helpByPrefix maps dotted-name prefixes to HELP text. Longest matching
// prefix wins; registry names are grouped by subsystem, so a handful of
// prefixes covers every metric without per-metric bookkeeping.
var helpByPrefix = []struct{ prefix, help string }{
	{"core.publish", "SOMA publish-path activity on this process."},
	{"core.query", "SOMA query-path activity, including snapshot-cache effectiveness."},
	{"core.subscribe", "SOMA update-bus subscription activity."},
	{"core.alerts", "Threshold-alert evaluation on the service."},
	{"core.series", "Time-series rollup store activity."},
	{"core.spill", "Client-side disk spill while the service is unreachable."},
	{"core.", "SOMA service/client internals."},
	{"mercury.", "Mercury RPC engine activity (calls, retries, breakers)."},
	{"zmq.", "Wire transport activity (framing, batching, connections)."},
	{"pilot.", "Pilot runtime scheduling activity."},
	{"gateway.http", "HTTP gateway request handling per route."},
	{"gateway.query", "HTTP gateway query-response cache effectiveness."},
	{"gateway.ws", "HTTP gateway WebSocket sessions and drop accounting."},
	{"gateway.process", "HTTP gateway process-level self-observation."},
	{"gateway.", "HTTP/WebSocket gateway internals."},
	{"telemetry.traces", "Tail-sampling trace store activity."},
	{"telemetry.", "Telemetry subsystem internals."},
}

// promHelp derives HELP text for a registry name from its subsystem prefix.
func promHelp(name string) string {
	best := "gosoma metric (no subsystem description registered)."
	bestLen := -1
	for _, e := range helpByPrefix {
		if len(e.prefix) > bestLen && strings.HasPrefix(name, e.prefix) {
			best, bestLen = e.help, len(e.prefix)
		}
	}
	return best
}

// WriteText writes the registry's current state in Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	return snap.WriteText(w)
}

// WriteText writes the snapshot in Prometheus text exposition format.
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, name := range SortedNames(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, promHelp(name), pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range SortedNames(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			pn, promHelp(name), pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range SortedNames(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w,
			"# HELP %s %s\n# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.95\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
			pn, promHelp(name),
			pn,
			pn, h.P50.Seconds(),
			pn, h.P95.Seconds(),
			pn, h.P99.Seconds(),
			pn, h.Sum.Seconds(),
			pn, h.Count); err != nil {
			return err
		}
		// Exemplars link latency buckets to kept traces (soma.trace.get).
		// The classic text format has no exemplar syntax, so they ride in
		// comment lines (ignored by any conforming parser) in the shape
		// OpenMetrics uses: bucket ceiling plus a trace_id label.
		for _, ex := range h.Exemplars {
			if _, err := fmt.Fprintf(w, "# EXEMPLAR %s{le=\"%g\"} trace_id=\"%016x\"\n",
				pn, ex.Ceil.Seconds(), ex.TraceID); err != nil {
				return err
			}
		}
	}
	return nil
}
