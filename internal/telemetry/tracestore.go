package telemetry

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStore assembles completed spans into traces and decides, at each
// trace's end, whether the trace is worth keeping — tail-based sampling.
// PR 2's spans die individually in the recent-span ring; the store is what
// turns them into an answer to "why was this publish slow at the tail?".
//
// Assembly: every completed span is appended to a pending entry keyed by
// its TraceID. A trace finishes when its *root* ends — either a true root
// (Parent == 0, the span that started the trace in this process) or a
// process-local root (the first span started under a trace context that
// arrived over the wire; see ContextWithRemote). Each process therefore
// keeps its own portion of a cross-process trace, queryable by the shared
// TraceID.
//
// Sampling policy, applied when a trace finishes:
//
//  1. error traces (any span marked Fail) are always kept;
//  2. traces whose root latency reaches the rolling per-root-name p99 are
//     kept ("tail") — the threshold comes from a per-name log2 histogram of
//     every root observed, recomputed periodically, and only activates
//     after a warmup so early traces don't all look slow;
//  3. the rest are head-sampled: 1 of every HeadSampleEvery survives.
//
// Kept traces live in an LRU bounded by both a trace count and a byte
// budget; pending (in-assembly) entries are bounded separately, evicting
// the oldest when a hostile or span-leaking workload overflows them. All
// bounds make tracing memory constant regardless of traffic.
type TraceStore struct {
	opt TraceStoreOptions

	shards    [traceShards]traceShard
	pendCount atomic.Int64
	pendSeq   atomic.Uint64
	headN     atomic.Uint64

	gateMu sync.RWMutex
	gates  map[string]*tailGate

	keptMu    sync.Mutex
	kept      map[uint64]*list.Element // value: *Trace
	keptOrder *list.List               // front = most recently kept
	keptBytes int64

	// Counters land in the owning registry, so sampling behaviour is
	// visible through soma.telemetry and the Prometheus endpoint.
	cKeptErr     *Counter
	cKeptTail    *Counter
	cKeptHead    *Counter
	cDropped     *Counter
	cEvicted     *Counter
	cPendDropped *Counter
	gKept        *Gauge
	gKeptBytes   *Gauge
	gPending     *Gauge
}

// TraceStoreOptions bounds and tunes a TraceStore. The zero value selects
// the defaults noted on each field.
type TraceStoreOptions struct {
	// MaxTraces caps the kept-trace LRU (default 128).
	MaxTraces int
	// MaxBytes caps the approximate retained bytes of kept traces
	// (default 1 MiB). Whichever of MaxTraces/MaxBytes trips first evicts.
	MaxBytes int64
	// MaxSpansPerTrace caps spans retained per trace (default 256); spans
	// beyond it are counted in Trace.DroppedSpans instead of stored.
	MaxSpansPerTrace int
	// MaxPending caps traces under assembly (default 4096). When a new
	// trace arrives at the cap, the oldest pending entry in its shard is
	// abandoned — pending entries only leak when spans never reach a root.
	// Eviction is shard-local, so the cap is approximate within one entry
	// per shard.
	MaxPending int
	// HeadSampleEvery keeps 1 of every N traces that are neither errored
	// nor tail-slow (default 64). Negative disables head sampling.
	HeadSampleEvery int
	// TailMinSamples is how many completions a root name needs before its
	// rolling p99 threshold activates (default 64).
	TailMinSamples int
}

func (o *TraceStoreOptions) defaults() {
	if o.MaxTraces <= 0 {
		o.MaxTraces = 128
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 20
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 256
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	if o.HeadSampleEvery == 0 {
		o.HeadSampleEvery = 64
	}
	if o.TailMinSamples <= 0 {
		o.TailMinSamples = 64
	}
}

const (
	traceShards = 8
	// tailRecalcEvery is how often (in completions per root name) the
	// cached p99 threshold is recomputed; between recomputes the sampler
	// fast path is one atomic load and a compare.
	tailRecalcEvery = 64
	// maxTailGates bounds distinct per-root-name histograms; overflow
	// names share one gate so a hostile name cardinality can't grow memory.
	maxTailGates = 256
)

// Trace keep reasons.
const (
	KeepError = "error"
	KeepTail  = "tail"
	KeepHead  = "head"
)

// Trace is one kept trace: this process's spans for a TraceID, plus the
// root-derived summary fields.
type Trace struct {
	TraceID uint64
	Root    string // root span name
	Start   time.Time
	Dur     time.Duration // root span duration
	Err     bool
	Reason  string // KeepError, KeepTail or KeepHead
	Spans   []SpanSnapshot
	// DroppedSpans counts spans beyond MaxSpansPerTrace that were observed
	// but not retained.
	DroppedSpans int

	bytes int64
}

// TraceSummary is the list-view projection of a kept trace.
type TraceSummary struct {
	TraceID uint64
	Root    string
	Start   time.Time
	Dur     time.Duration
	Spans   int
	Err     bool
	Reason  string
}

type pendingTrace struct {
	seq     uint64
	spans   []SpanSnapshot
	bytes   int64
	err     bool
	hasRoot bool
	dropped int
}

type traceShard struct {
	mu      sync.Mutex
	pending map[uint64]*pendingTrace
}

// tailGate is one root name's rolling latency distribution plus its cached
// p99 threshold (0 = not yet warmed up).
type tailGate struct {
	hist      Histogram
	threshold atomic.Int64
}

// newTraceStore builds a store whose sampling counters land in reg.
func newTraceStore(opt TraceStoreOptions, reg *Registry) *TraceStore {
	opt.defaults()
	ts := &TraceStore{
		opt:          opt,
		gates:        map[string]*tailGate{},
		kept:         map[uint64]*list.Element{},
		keptOrder:    list.New(),
		cKeptErr:     reg.Counter("telemetry.traces.kept.error"),
		cKeptTail:    reg.Counter("telemetry.traces.kept.tail"),
		cKeptHead:    reg.Counter("telemetry.traces.kept.head"),
		cDropped:     reg.Counter("telemetry.traces.dropped"),
		cEvicted:     reg.Counter("telemetry.traces.evicted"),
		cPendDropped: reg.Counter("telemetry.traces.pending.dropped"),
		gKept:        reg.Gauge("telemetry.traces.kept"),
		gKeptBytes:   reg.Gauge("telemetry.traces.kept_bytes"),
		gPending:     reg.Gauge("telemetry.traces.pending"),
	}
	for i := range ts.shards {
		ts.shards[i].pending = map[uint64]*pendingTrace{}
	}
	return ts
}

// spanBytes approximates a retained span's memory cost for the byte budget.
func spanBytes(s SpanSnapshot) int64 {
	return int64(len(s.Name)) + 64
}

// record ingests one completed span; localRoot marks a process-local root
// (see ContextWithRemote). Called from Span.EndAt — this is the sampler's
// hot path, benchmarked by BenchmarkTraceTailSampler and covered by the
// ≤5% traced-ingest overhead gate.
func (ts *TraceStore) record(s SpanSnapshot, localRoot bool) {
	if s.TraceID == 0 {
		return
	}
	sh := &ts.shards[s.TraceID%traceShards]
	sh.mu.Lock()
	pt := sh.pending[s.TraceID]
	if pt == nil {
		if ts.pendCount.Load() >= int64(ts.opt.MaxPending) {
			ts.evictOldestPendingLocked(sh)
		}
		pt = &pendingTrace{seq: ts.pendSeq.Add(1)}
		sh.pending[s.TraceID] = pt
		ts.gPending.Set(ts.pendCount.Add(1))
	}
	if len(pt.spans) < ts.opt.MaxSpansPerTrace {
		pt.spans = append(pt.spans, s)
		pt.bytes += spanBytes(s)
	} else {
		pt.dropped++
	}
	if s.Err {
		pt.err = true
	}
	isRoot := s.Parent == 0
	if isRoot {
		pt.hasRoot = true
	}
	// A process-local root only closes the trace when no true root lives in
	// this process (single-process loopback traces wait for the real root).
	if !isRoot && !(localRoot && !pt.hasRoot) {
		sh.mu.Unlock()
		return
	}
	delete(sh.pending, s.TraceID)
	ts.gPending.Set(ts.pendCount.Add(-1))
	sh.mu.Unlock()
	ts.finish(s, pt)
}

// evictOldestPendingLocked abandons the oldest pending entry in sh (the
// caller holds sh.mu). Pending entries are shard-local, so "oldest" is per
// shard — an approximation that keeps eviction O(shard size).
func (ts *TraceStore) evictOldestPendingLocked(sh *traceShard) {
	var (
		oldID  uint64
		oldSeq uint64
		found  bool
	)
	for id, pt := range sh.pending {
		if !found || pt.seq < oldSeq {
			oldID, oldSeq, found = id, pt.seq, true
		}
	}
	if found {
		delete(sh.pending, oldID)
		ts.gPending.Set(ts.pendCount.Add(-1))
		ts.cPendDropped.Inc()
	}
}

// finish applies the sampling decision to a finished trace.
func (ts *TraceStore) finish(root SpanSnapshot, pt *pendingTrace) {
	reason, keep := ts.decide(root, pt)
	if !keep {
		ts.cDropped.Inc()
		return
	}
	switch reason {
	case KeepError:
		ts.cKeptErr.Inc()
	case KeepTail:
		ts.cKeptTail.Inc()
	default:
		ts.cKeptHead.Inc()
	}
	ts.keep(root, pt, reason)
}

func (ts *TraceStore) decide(root SpanSnapshot, pt *pendingTrace) (string, bool) {
	if pt.err || root.Err {
		return KeepError, true
	}
	g := ts.gate(root.Name)
	g.hist.Observe(root.Dur)
	n := g.hist.Count()
	if n >= uint64(ts.opt.TailMinSamples) {
		if g.threshold.Load() == 0 || n%tailRecalcEvery == 0 {
			g.threshold.Store(int64(g.hist.Quantile(0.99)) | 1) // |1: never store 0
		}
		if thr := g.threshold.Load(); int64(root.Dur) >= thr {
			return KeepTail, true
		}
	}
	if every := ts.opt.HeadSampleEvery; every > 0 && ts.headN.Add(1)%uint64(every) == 0 {
		return KeepHead, true
	}
	return "", false
}

func (ts *TraceStore) gate(name string) *tailGate {
	ts.gateMu.RLock()
	g := ts.gates[name]
	ts.gateMu.RUnlock()
	if g != nil {
		return g
	}
	ts.gateMu.Lock()
	defer ts.gateMu.Unlock()
	if g = ts.gates[name]; g != nil {
		return g
	}
	if len(ts.gates) >= maxTailGates {
		name = "\x00overflow"
		if g = ts.gates[name]; g != nil {
			return g
		}
	}
	g = &tailGate{}
	ts.gates[name] = g
	return g
}

// keep moves a finished trace into the kept LRU, merging with an existing
// entry for the same TraceID (a single-process TCP loopback finishes the
// server portion before the client root; the merge reunites them).
func (ts *TraceStore) keep(root SpanSnapshot, pt *pendingTrace, reason string) {
	ts.keptMu.Lock()
	if el, ok := ts.kept[root.TraceID]; ok {
		tr := el.Value.(*Trace)
		ts.keptBytes -= tr.bytes
		for _, s := range pt.spans {
			if len(tr.Spans) >= ts.opt.MaxSpansPerTrace {
				tr.DroppedSpans++
				continue
			}
			tr.Spans = append(tr.Spans, s)
			tr.bytes += spanBytes(s)
		}
		tr.DroppedSpans += pt.dropped
		tr.Err = tr.Err || pt.err || root.Err
		if root.Parent == 0 {
			// The true root arrived: its name/duration supersede the
			// local-root summary recorded earlier.
			tr.Root, tr.Start, tr.Dur, tr.Reason = root.Name, root.Start, root.Dur, reason
		}
		ts.keptBytes += tr.bytes
		ts.keptOrder.MoveToFront(el)
	} else {
		tr := &Trace{
			TraceID:      root.TraceID,
			Root:         root.Name,
			Start:        root.Start,
			Dur:          root.Dur,
			Err:          pt.err || root.Err,
			Reason:       reason,
			Spans:        pt.spans,
			DroppedSpans: pt.dropped,
			bytes:        pt.bytes,
		}
		ts.kept[root.TraceID] = ts.keptOrder.PushFront(tr)
		ts.keptBytes += tr.bytes
	}
	for ts.keptOrder.Len() > ts.opt.MaxTraces || (ts.keptBytes > ts.opt.MaxBytes && ts.keptOrder.Len() > 1) {
		back := ts.keptOrder.Back()
		if back == nil {
			break
		}
		tr := back.Value.(*Trace)
		ts.keptOrder.Remove(back)
		delete(ts.kept, tr.TraceID)
		ts.keptBytes -= tr.bytes
		ts.cEvicted.Inc()
	}
	ts.gKept.Set(int64(ts.keptOrder.Len()))
	ts.gKeptBytes.Set(ts.keptBytes)
	ts.keptMu.Unlock()
}

// List returns summaries of every kept trace, most recently kept first.
func (ts *TraceStore) List() []TraceSummary {
	ts.keptMu.Lock()
	out := make([]TraceSummary, 0, ts.keptOrder.Len())
	for el := ts.keptOrder.Front(); el != nil; el = el.Next() {
		tr := el.Value.(*Trace)
		out = append(out, TraceSummary{
			TraceID: tr.TraceID,
			Root:    tr.Root,
			Start:   tr.Start,
			Dur:     tr.Dur,
			Spans:   len(tr.Spans),
			Err:     tr.Err,
			Reason:  tr.Reason,
		})
	}
	ts.keptMu.Unlock()
	return out
}

// Slowest returns up to limit kept traces ordered by root duration,
// slowest first (the somatop traces panel).
func (ts *TraceStore) Slowest(limit int) []TraceSummary {
	out := ts.List()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Get returns a copy of the kept trace with the given id; ok is false when
// the trace was never kept or has been evicted. Spans are ordered by start
// time (completion order within equal starts).
func (ts *TraceStore) Get(id uint64) (Trace, bool) {
	ts.keptMu.Lock()
	el, ok := ts.kept[id]
	if !ok {
		ts.keptMu.Unlock()
		return Trace{}, false
	}
	tr := *el.Value.(*Trace)
	tr.Spans = append([]SpanSnapshot(nil), tr.Spans...)
	ts.keptMu.Unlock()
	sort.SliceStable(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start.Before(tr.Spans[j].Start) })
	return tr, true
}

// TailThreshold reports the active p99 keep-threshold for a root name
// (0 while the name is still warming up). Exposed for tests and somatop.
func (ts *TraceStore) TailThreshold(rootName string) time.Duration {
	ts.gateMu.RLock()
	g := ts.gates[rootName]
	ts.gateMu.RUnlock()
	if g == nil {
		return 0
	}
	return time.Duration(g.threshold.Load())
}
