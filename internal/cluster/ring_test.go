package cluster

import (
	"fmt"
	"testing"
)

func fleet(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("soma-%d", i), Addr: fmt.Sprintf("tcp://10.0.0.%d:4400", i+1)}
	}
	return ms
}

func loadKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// The load-harness shape: one leaf per (node, sensor) pair.
		keys[i] = ShardKey("hardware", fmt.Sprintf("LOAD/cn%05d/s%02d", i/16, i%16))
	}
	return keys
}

// Placement over 4 instances must stay within ±15% of even — the
// acceptance bound from the issue. In practice DefaultVnodes lands within
// a few percent; the test also checks a tighter advisory bound is not
// wildly violated by printing the observed spread on failure.
func TestRingBalance(t *testing.T) {
	members := fleet(4)
	r := NewRing(members, 0)
	keys := loadKeys(40000)

	counts := map[string]int{}
	for _, k := range keys {
		m, ok := r.Owner(k)
		if !ok {
			t.Fatal("Owner returned !ok on a populated ring")
		}
		counts[m.Addr]++
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
	even := float64(len(keys)) / float64(len(members))
	for addr, c := range counts {
		dev := (float64(c) - even) / even
		if dev > 0.15 || dev < -0.15 {
			t.Errorf("member %s owns %d keys (%.1f%% from even %v); bound is ±15%%", addr, c, dev*100, even)
		}
	}
}

// Consistent hashing's defining property: removing a member only moves the
// keys that member owned, and adding a member only moves keys onto the new
// member. No key shuffles between surviving members.
func TestRingMinimalMovement(t *testing.T) {
	members := fleet(4)
	keys := loadKeys(20000)
	full := NewRing(members, 0)

	owner := make(map[string]string, len(keys))
	for _, k := range keys {
		m, _ := full.Owner(k)
		owner[k] = m.Addr
	}

	t.Run("leave", func(t *testing.T) {
		removed := members[2]
		shrunk := NewRing(append(append([]Member(nil), members[:2]...), members[3]), 0)
		moved := 0
		for _, k := range keys {
			m, _ := shrunk.Owner(k)
			if owner[k] == removed.Addr {
				moved++
				continue // had to move somewhere
			}
			if m.Addr != owner[k] {
				t.Fatalf("key %q moved %s -> %s though its owner survived", k, owner[k], m.Addr)
			}
		}
		if moved == 0 {
			t.Fatal("removed member owned zero keys — balance test should have caught this")
		}
	})

	t.Run("join", func(t *testing.T) {
		joined := Member{ID: "soma-4", Addr: "tcp://10.0.0.5:4400"}
		grown := NewRing(append(append([]Member(nil), members...), joined), 0)
		onto := 0
		for _, k := range keys {
			m, _ := grown.Owner(k)
			if m.Addr == owner[k] {
				continue
			}
			if m.Addr != joined.Addr {
				t.Fatalf("key %q moved %s -> %s, not onto the joining member", k, owner[k], m.Addr)
			}
			onto++
		}
		// A 5th member should claim roughly 1/5th of the keyspace.
		frac := float64(onto) / float64(len(keys))
		if frac < 0.10 || frac > 0.30 {
			t.Errorf("joining member claimed %.1f%% of keys; expected ~20%%", frac*100)
		}
	})
}

// Ring construction must be order- and duplicate-insensitive: two peers
// that learned the same membership in different orders (or heard the same
// address from both the seed list and gossip) must agree on placement and
// epoch, since epoch equality gates handoff acceptance.
func TestRingDeterminism(t *testing.T) {
	members := fleet(4)
	a := NewRing(members, 0)
	shuffled := []Member{members[2], members[0], members[3], members[1], members[2]}
	b := NewRing(shuffled, 0)

	if a.Epoch() != b.Epoch() {
		t.Fatalf("epoch differs for same member set: %x vs %x", a.Epoch(), b.Epoch())
	}
	if a.Len() != b.Len() {
		t.Fatalf("member count differs: %d vs %d", a.Len(), b.Len())
	}
	for _, k := range loadKeys(2000) {
		ma, _ := a.Owner(k)
		mb, _ := b.Owner(k)
		if ma.Addr != mb.Addr {
			t.Fatalf("key %q placed differently: %s vs %s", k, ma.Addr, mb.Addr)
		}
	}
}

func TestRingEpochChangesWithMembership(t *testing.T) {
	members := fleet(3)
	seen := map[uint64]bool{}
	for i := 1; i <= len(members); i++ {
		e := NewRing(members[:i], 0).Epoch()
		if e == 0 {
			t.Fatal("epoch must be nonzero")
		}
		if seen[e] {
			t.Fatalf("duplicate epoch %x across different member sets", e)
		}
		seen[e] = true
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if _, ok := empty.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	solo := NewRing(fleet(1), 0)
	for _, k := range loadKeys(100) {
		if !solo.Owns(fleet(1)[0].Addr, k) {
			t.Fatal("single-member ring must own every key")
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(fleet(4), 0)
	keys := loadKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i&1023])
	}
}
