package cluster

import "testing"

func TestTrackerLifecycle(t *testing.T) {
	self := Member{ID: "self", Addr: "tcp://10.0.0.1:4400"}
	tr := NewTracker(self, 0, 3)

	if got := tr.Ring().Len(); got != 1 {
		t.Fatalf("fresh tracker ring has %d members, want 1 (self)", got)
	}
	e0 := tr.Ring().Epoch()

	peer := Member{Addr: "tcp://10.0.0.2:4400"}
	if !tr.Add(peer) {
		t.Fatal("Add(new peer) must change the ring")
	}
	if tr.Add(peer) {
		t.Fatal("Add(known peer) must be a no-op")
	}
	if tr.Add(self) {
		t.Fatal("Add(self) must be a no-op")
	}
	e1 := tr.Ring().Epoch()
	if e1 == e0 {
		t.Fatal("epoch must change when a peer joins")
	}
	if tr.Ring().Len() != 2 {
		t.Fatalf("ring has %d members, want 2", tr.Ring().Len())
	}

	// Two misses: still alive. Third: dead, ring shrinks back to self.
	if tr.ReportFailure(peer.Addr) || tr.ReportFailure(peer.Addr) {
		t.Fatal("peer must survive fewer than `misses` consecutive failures")
	}
	if !tr.ReportFailure(peer.Addr) {
		t.Fatal("third consecutive failure must mark the peer dead")
	}
	if tr.Ring().Len() != 1 {
		t.Fatalf("ring has %d members after death, want 1", tr.Ring().Len())
	}
	if tr.Ring().Epoch() != e0 {
		t.Fatal("epoch must return to the self-only fingerprint after the peer dies")
	}
	if tr.ReportFailure(peer.Addr) {
		t.Fatal("failures on an already-dead peer must not re-change the ring")
	}

	// Recovery: one success resurrects the peer and restores the old epoch.
	if !tr.ReportSuccess(peer.Addr, nil) {
		t.Fatal("success on a dead peer must revive it")
	}
	if tr.Ring().Epoch() != e1 {
		t.Fatal("epoch must be deterministic: same alive set, same epoch")
	}

	peers, alive := tr.Snapshot()
	if len(peers) != 1 || alive != 2 {
		t.Fatalf("snapshot: %d peers, %d alive; want 1 peer, 2 alive", len(peers), alive)
	}
	if peers[0].ID != peer.Addr {
		t.Fatalf("peer ID should default to its address, got %q", peers[0].ID)
	}
}

func TestTrackerGossipLearnsMembers(t *testing.T) {
	tr := NewTracker(Member{Addr: "tcp://10.0.0.1:1"}, 0, 0)
	tr.Add(Member{Addr: "tcp://10.0.0.2:1"})

	learned := []Member{
		{Addr: "tcp://10.0.0.1:1"},              // self: ignored
		{Addr: "tcp://10.0.0.2:1", ID: "beta"},  // known: label updated, no ring change alone
		{Addr: "tcp://10.0.0.3:1", ID: "gamma"}, // new
		{Addr: ""},                              // junk: ignored
	}
	if !tr.ReportSuccess("tcp://10.0.0.2:1", learned) {
		t.Fatal("gossip naming a new member must change the ring")
	}
	if tr.Ring().Len() != 3 {
		t.Fatalf("ring has %d members, want 3", tr.Ring().Len())
	}
	peers, _ := tr.Snapshot()
	byAddr := map[string]string{}
	for _, p := range peers {
		byAddr[p.Addr] = p.ID
	}
	if byAddr["tcp://10.0.0.2:1"] != "beta" || byAddr["tcp://10.0.0.3:1"] != "gamma" {
		t.Fatalf("gossiped labels not learned: %v", byAddr)
	}
}

func TestTrackerConcurrency(t *testing.T) {
	tr := NewTracker(Member{Addr: "tcp://10.0.0.1:1"}, 32, 2)
	addrs := []string{"tcp://10.0.0.2:1", "tcp://10.0.0.3:1", "tcp://10.0.0.4:1"}
	for _, a := range addrs {
		tr.Add(Member{Addr: a})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			tr.ReportFailure(addrs[i%len(addrs)])
			tr.ReportSuccess(addrs[(i+1)%len(addrs)], nil)
		}
	}()
	for i := 0; i < 2000; i++ {
		ring := tr.Ring()
		if ring.Len() < 1 {
			t.Error("ring lost self")
			break
		}
		ring.Owner("k")
		tr.Snapshot()
	}
	<-done
}
