package cluster

import (
	"sort"
	"sync"
	"time"
)

// DefaultPingMisses is how many consecutive failed pings mark a peer dead.
// Three misses rides out a single dropped frame or a slow GC pause without
// flapping the ring, while still detecting a severed peer within
// 3×PingInterval.
const DefaultPingMisses = 3

// PeerState is the tracker's view of one remote member.
type PeerState struct {
	Member
	Alive    bool
	Misses   int // consecutive ping failures; reset on success
	LastSeen time.Time
}

// Tracker folds ping outcomes into an alive set and keeps the consistent-
// hash ring over the alive members (always including self). It is the
// transport-free half of membership: internal/core drives it from the
// soma.peer.ping loop and reads the ring back for placement decisions.
//
// All methods are safe for concurrent use. Ring() returns an immutable
// snapshot, so readers on the publish hot path never contend with the
// pinger beyond a mutex-protected pointer load.
type Tracker struct {
	self   Member
	vnodes int
	misses int

	mu    sync.Mutex
	peers map[string]*PeerState // by Addr; excludes self
	ring  *Ring                 // over self + alive peers
}

// NewTracker starts a tracker for self. vnodes <= 0 means DefaultVnodes;
// misses <= 0 means DefaultPingMisses. The initial ring contains only self.
func NewTracker(self Member, vnodes, misses int) *Tracker {
	if self.ID == "" {
		self.ID = self.Addr
	}
	if misses <= 0 {
		misses = DefaultPingMisses
	}
	t := &Tracker{
		self:   self,
		vnodes: vnodes,
		misses: misses,
		peers:  map[string]*PeerState{},
	}
	t.ring = NewRing([]Member{self}, vnodes)
	return t
}

// Self returns the local member.
func (t *Tracker) Self() Member { return t.self }

// Add introduces a peer address (seed list or gossip). New peers start
// alive — a freshly seeded fleet should place across the full member set
// immediately rather than after the first ping round; a truly dead seed is
// demoted after `misses` failed pings. Adding self or a known address is a
// no-op. Returns true when the alive set (and therefore the ring) changed.
func (t *Tracker) Add(m Member) bool {
	if m.Addr == "" || m.Addr == t.self.Addr {
		return false
	}
	if m.ID == "" {
		m.ID = m.Addr
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[m.Addr]; ok {
		if m.ID != m.Addr && p.ID != m.ID {
			p.ID = m.ID // learned the peer's configured label via gossip
		}
		return false
	}
	t.peers[m.Addr] = &PeerState{Member: m, Alive: true}
	t.rebuildLocked()
	return true
}

// ReportSuccess records a successful ping (or an inbound ping — hearing
// from a peer proves it alive) and merges any members it gossiped back.
// Returns true when the alive set changed.
func (t *Tracker) ReportSuccess(addr string, learned []Member) bool {
	t.mu.Lock()
	changed := false
	if p, ok := t.peers[addr]; ok {
		p.Misses = 0
		p.LastSeen = time.Now()
		if !p.Alive {
			p.Alive = true
			changed = true
		}
	}
	for _, m := range learned {
		if m.Addr == "" || m.Addr == t.self.Addr {
			continue
		}
		if m.ID == "" {
			m.ID = m.Addr
		}
		if p, ok := t.peers[m.Addr]; ok {
			if m.ID != m.Addr && p.ID != m.ID {
				p.ID = m.ID
			}
			continue
		}
		t.peers[m.Addr] = &PeerState{Member: m, Alive: true}
		changed = true
	}
	if changed {
		t.rebuildLocked()
	}
	t.mu.Unlock()
	return changed
}

// ReportFailure records a failed ping. The peer is marked dead after
// `misses` consecutive failures. Returns true when the alive set changed.
func (t *Tracker) ReportFailure(addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[addr]
	if !ok {
		return false
	}
	p.Misses++
	if !p.Alive || p.Misses < t.misses {
		return false
	}
	p.Alive = false
	t.rebuildLocked()
	return true
}

// Ring returns the current ring over self + alive peers. The returned ring
// is immutable; hold it for the duration of one placement decision.
func (t *Tracker) Ring() *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ring
}

// Snapshot lists every known peer (alive or not), sorted by address, plus
// the count of alive members including self.
func (t *Tracker) Snapshot() (peers []PeerState, alive int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	alive = 1 // self
	peers = make([]PeerState, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, *p)
		if p.Alive {
			alive++
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Addr < peers[j].Addr })
	return peers, alive
}

func (t *Tracker) rebuildLocked() {
	ms := make([]Member, 0, len(t.peers)+1)
	ms = append(ms, t.self)
	for _, p := range t.peers {
		if p.Alive {
			ms = append(ms, p.Member)
		}
	}
	t.ring = NewRing(ms, t.vnodes)
}
