// Package cluster holds the pure placement math for a sharded multi-instance
// SOMA fleet: a consistent-hash ring with virtual nodes mapping shard keys
// (namespace + leaf path) onto member instances, and a membership tracker
// that folds ping successes/failures into an alive set and a deterministic
// ring epoch.
//
// The package is deliberately transport-free — mercury wiring (peer pings,
// handoff RPCs, scatter-gather) lives in internal/core. That keeps the
// placement properties (balance, minimal movement on join/leave) testable as
// plain math.
package cluster

import (
	"sort"
	"strconv"
)

// Member is one somad instance in the cluster. Addr is the canonical
// identity used for ring placement — it is the one piece of information
// every peer knows about every other peer before gossip converges (seed
// lists are address lists). ID is a human label for health panels and logs;
// it defaults to the address when not configured.
type Member struct {
	ID   string
	Addr string
}

// DefaultVnodes is the virtual-node count per member. 160 points per member
// keeps the load spread across 4 instances within a few percent of even
// (see ring_test.go), while the ring stays small enough that a full rebuild
// on membership change is microseconds.
const DefaultVnodes = 160

type point struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring over a member set. Build a new
// Ring on every membership change — lookups are lock-free by construction.
type Ring struct {
	members []Member // sorted by Addr
	points  []point  // sorted by hash
	epoch   uint64
}

// NewRing builds a ring over members with vnodes virtual nodes per member
// (DefaultVnodes when vnodes <= 0). The member slice is copied and sorted by
// Addr so that two peers holding the same member set build byte-identical
// rings — and therefore identical epochs — regardless of discovery order.
func NewRing(members []Member, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	ms := append([]Member(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Addr < ms[j].Addr })
	// Deduplicate by address: seed lists and gossip can both name a peer.
	dst := ms[:0]
	for _, m := range ms {
		if len(dst) > 0 && dst[len(dst)-1].Addr == m.Addr {
			continue
		}
		dst = append(dst, m)
	}
	ms = dst

	r := &Ring{members: ms, epoch: memberEpoch(ms)}
	r.points = make([]point, 0, len(ms)*vnodes)
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			h := mix(fnv64a(m.Addr + "#" + strconv.Itoa(v)))
			r.points = append(r.points, point{hash: h, member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Members returns the ring's member set, sorted by address. The slice is
// shared — callers must not mutate it.
func (r *Ring) Members() []Member { return r.members }

// Len reports the number of members on the ring.
func (r *Ring) Len() int { return len(r.members) }

// Epoch is a deterministic fingerprint of the member address set: any two
// peers that agree on which instances are alive compute the same epoch, and
// any membership change produces a different one. Handoff frames are stamped
// with the sender's epoch and rejected when it differs from the receiver's —
// diverged views retry after gossip converges.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Owner maps a shard key to its owning member. ok is false only for an
// empty ring.
func (r *Ring) Owner(key string) (m Member, ok bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	h := mix(fnv64a(key))
	// First point with hash >= h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member], true
}

// Owns reports whether addr owns key on this ring. An empty ring owns
// nothing; a single-member ring owns everything.
func (r *Ring) Owns(addr, key string) bool {
	m, ok := r.Owner(key)
	return ok && m.Addr == addr
}

// ShardKey builds the placement key for one published leaf: the namespace
// plus the leaf's full path. Placement at leaf granularity (rather than
// whole namespaces) is what spreads a single hot namespace — e.g. the load
// harness publishing 100k hardware sensors — across every instance. A
// multi-leaf publish routes by its first leaf and is stored whole at that
// owner; reads scatter to all live members, so placement never affects
// query correctness.
func ShardKey(ns, leafPath string) string {
	return ns + "\x00" + leafPath
}

// memberEpoch fingerprints the sorted member address set. Guaranteed
// nonzero so zero can mean "no ring yet" on the wire.
func memberEpoch(sorted []Member) uint64 {
	h := uint64(offset64)
	for _, m := range sorted {
		for i := 0; i < len(m.Addr); i++ {
			h ^= uint64(m.Addr[i])
			h *= prime64
		}
		h ^= 0
		h *= prime64
	}
	h = mix(h)
	if h == 0 {
		h = 1
	}
	return h
}

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

func fnv64a(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix is a 64-bit finalizer (splitmix64) layered over FNV-1a. FNV alone
// clusters badly for short, similar strings (vnode labels differ only in a
// trailing integer); the finalizer spreads those over the full 64-bit space,
// which is what the ±15% balance property relies on.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
