package des

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3.0, func() { order = append(order, 3) })
	e.At(1.0, func() { order = append(order, 1) })
	e.At(2.0, func() { order = append(order, 2) })
	end := e.Run()
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
	if end != 3.0 {
		t.Fatalf("end time = %v", end)
	}
	if e.Processed() != 3 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1.0, func() { order = append(order, "first") })
	e.At(1.0, func() { order = append(order, "second") })
	e.Run()
	if !reflect.DeepEqual(order, []string{"first", "second"}) {
		t.Fatalf("tie order = %v", order)
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.After(1.0, func() {
		times = append(times, e.Now())
		e.After(2.0, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if !reflect.DeepEqual(times, []float64{1.0, 3.0}) {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative delay event never ran")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.At(1, func() { ran = true })
	if !e.Cancel(tm) {
		t.Fatal("cancel of pending event failed")
	}
	if e.Cancel(tm) {
		t.Fatal("second cancel succeeded")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []float64
	for _, at := range []float64{1, 2, 5, 9} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	now := e.RunUntil(5)
	if !reflect.DeepEqual(ran, []float64{1, 2, 5}) {
		t.Fatalf("ran = %v", ran)
	}
	if now != 5 {
		t.Fatalf("now = %v want 5", now)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatal("remaining event lost")
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	if got := e.RunUntil(42); got != 42 {
		t.Fatalf("RunUntil on empty engine = %v", got)
	}
	if e.Now() != 42 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEveryPeriodic(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	stop := e.Every(10, func() bool {
		ticks = append(ticks, e.Now())
		return len(ticks) < 4
	})
	defer stop()
	e.Run()
	want := []float64{10, 20, 30, 40}
	if !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks = %v want %v", ticks, want)
	}
}

func TestEveryStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Every(1, func() bool {
		count++
		if count == 3 {
			stop()
		}
		return true
	})
	e.RunUntil(100)
	if count != 3 {
		t.Fatalf("count = %d want 3", count)
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func() bool { return true })
}

func TestEngineIsAClock(t *testing.T) {
	var _ Clock = NewEngine()
	var _ Clock = NewRealClock()
}

func TestRealClockAdvances(t *testing.T) {
	c := NewRealClock()
	t0 := c.Now()
	time.Sleep(5 * time.Millisecond)
	if c.Now()-t0 < 0.004 {
		t.Fatalf("real clock did not advance: %v -> %v", t0, c.Now())
	}
}

func TestRunRealtimeScalesAndCompletes(t *testing.T) {
	e := NewEngine()
	var ran []float64
	for _, at := range []float64{0.5, 1.0} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	start := time.Now()
	end := e.RunRealtime(0.01) // 1 sim-second = 10ms wall
	elapsed := time.Since(start)
	if end != 1.0 || len(ran) != 2 {
		t.Fatalf("end=%v ran=%v", end, ran)
	}
	if elapsed < 5*time.Millisecond {
		t.Fatalf("realtime run finished too fast: %v", elapsed)
	}
}

func TestRunRealtimeZeroScaleIsFast(t *testing.T) {
	e := NewEngine()
	e.At(1000, func() {})
	start := time.Now()
	e.RunRealtime(0)
	if time.Since(start) > time.Second {
		t.Fatal("scale 0 should run as fast as possible")
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var out []float64
		for i := 0; i < 1000; i++ {
			at := float64((i * 7919) % 501)
			e.At(at, func() { out = append(out, e.Now()) })
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("runs with identical schedules diverged")
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	if math.IsNaN(a[len(a)-1]) {
		t.Fatal("nan time")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 100; j++ {
			e.At(float64(j%17), func() {})
		}
		e.Run()
	}
}

func TestRealRuntimeAfterFuncAndCancel(t *testing.T) {
	rt := NewRealRuntime()
	fired := make(chan struct{}, 2)
	rt.AfterFunc(0.005, func() { fired <- struct{}{} })
	cancel := rt.AfterFunc(1.0, func() { fired <- struct{}{} })
	cancel()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("short callback never fired")
	}
	select {
	case <-fired:
		t.Fatal("cancelled callback fired")
	case <-time.After(20 * time.Millisecond):
	}
	rt.Shutdown()
	// After shutdown, new callbacks never run.
	ran := false
	rt.AfterFunc(0.001, func() { ran = true })
	time.Sleep(20 * time.Millisecond)
	if ran {
		t.Fatal("callback ran after shutdown")
	}
	if rt.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestRealRuntimeNegativeDelay(t *testing.T) {
	rt := NewRealRuntime()
	defer rt.Shutdown()
	done := make(chan struct{})
	rt.AfterFunc(-5, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("negative delay should fire immediately")
	}
}

func TestEveryRTRealMode(t *testing.T) {
	rt := NewRealRuntime()
	defer rt.Shutdown()
	ticks := make(chan struct{}, 100)
	stop := EveryRT(rt, 0.005, func() bool {
		ticks <- struct{}{}
		return true
	})
	for i := 0; i < 3; i++ {
		select {
		case <-ticks:
		case <-time.After(2 * time.Second):
			t.Fatalf("tick %d never arrived", i)
		}
	}
	stop()
	// Drain anything in flight, then ensure the cadence stopped.
	time.Sleep(30 * time.Millisecond)
	for len(ticks) > 0 {
		<-ticks
	}
	time.Sleep(30 * time.Millisecond)
	if len(ticks) != 0 {
		t.Fatal("ticks continued after stop")
	}
}
