// Package des implements the discrete-event simulation engine that drives
// every paper experiment in virtual time, plus the Clock abstraction that
// lets the same pilot/monitor/service component logic run in real time
// (examples, cmd/wfrun) or simulated time (cmd/somabench, benches).
//
// The engine is single-threaded by design: events execute in nondecreasing
// time order, ties broken by scheduling order, so experiment results are
// fully deterministic for a given seed.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// Clock provides the current time in seconds since an arbitrary epoch.
// Components take a Clock so they are agnostic to real vs simulated time.
type Clock interface {
	Now() float64
}

// RealClock is a Clock backed by the wall clock.
type RealClock struct{ start time.Time }

// NewRealClock returns a wall Clock whose epoch is now.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now returns seconds since the clock was created.
func (c *RealClock) Now() float64 { return time.Since(c.start).Seconds() }

// Event is a scheduled callback.
type event struct {
	at   float64
	seq  uint64
	fn   func()
	id   uint64
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. It implements Clock, so simulated
// components can be handed the engine itself as their time source.
//
// Engine methods are safe to call from event callbacks (the common case).
// They are also safe to call from other goroutines between Run invocations,
// but Run itself must not be invoked concurrently.
type Engine struct {
	mu     sync.Mutex
	pq     eventHeap
	now    float64
	seq    uint64
	nextID uint64
	events map[uint64]*event
	// processed counts executed events; handy for engine-level assertions.
	processed uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{events: map[uint64]*event{}}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Processed returns how many events have executed.
func (e *Engine) Processed() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.processed
}

// Pending returns how many events are scheduled and not yet executed.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.events)
}

// Timer identifies a scheduled event for cancellation.
type Timer uint64

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics — that is always a logic bug in the caller.
func (e *Engine) At(t float64, fn func()) Timer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %.9f before now %.9f", t, e.now))
	}
	e.seq++
	e.nextID++
	ev := &event{at: t, seq: e.seq, fn: fn, id: e.nextID}
	e.events[ev.id] = ev
	heap.Push(&e.pq, ev)
	return Timer(ev.id)
}

// After schedules fn to run d seconds from now. Negative delays clamp to 0.
func (e *Engine) After(d float64, fn func()) Timer {
	e.mu.Lock()
	now := e.now
	e.mu.Unlock()
	if d < 0 {
		d = 0
	}
	return e.At(now+d, fn)
}

// Cancel prevents a scheduled event from running. It reports whether the
// event was still pending.
func (e *Engine) Cancel(tm Timer) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	ev, ok := e.events[uint64(tm)]
	if !ok {
		return false
	}
	ev.dead = true
	delete(e.events, uint64(tm))
	return true
}

// step executes the earliest pending event. It returns false when no events
// remain or the earliest event is after limit.
func (e *Engine) step(limit float64) bool {
	e.mu.Lock()
	for {
		if len(e.pq) == 0 {
			e.mu.Unlock()
			return false
		}
		ev := e.pq[0]
		if ev.dead {
			heap.Pop(&e.pq)
			continue
		}
		if ev.at > limit {
			// Advance the clock to the limit so Now() after Run(until) == until.
			if limit > e.now && !math.IsInf(limit, 1) {
				e.now = limit
			}
			e.mu.Unlock()
			return false
		}
		heap.Pop(&e.pq)
		delete(e.events, ev.id)
		e.now = ev.at
		e.processed++
		fn := ev.fn
		e.mu.Unlock()
		fn()
		return true
	}
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() float64 {
	for e.step(math.Inf(1)) {
	}
	return e.Now()
}

// RunUntil executes events with time ≤ until, then sets the clock to until.
func (e *Engine) RunUntil(until float64) float64 {
	for e.step(until) {
	}
	e.mu.Lock()
	if until > e.now && !math.IsInf(until, 1) {
		e.now = until
	}
	now := e.now
	e.mu.Unlock()
	return now
}

// RunRealtime replays the event queue against the wall clock, sleeping
// between events, with simulated seconds scaled by scale (0.01 plays one
// simulated minute in 600ms). Used by demos that want to watch a simulated
// workflow unfold live. Returns the final simulated time.
func (e *Engine) RunRealtime(scale float64) float64 {
	if scale <= 0 {
		return e.Run()
	}
	for {
		e.mu.Lock()
		if len(e.pq) == 0 {
			e.mu.Unlock()
			return e.Now()
		}
		next := e.pq[0].at
		now := e.now
		e.mu.Unlock()
		if dt := next - now; dt > 0 {
			time.Sleep(time.Duration(dt * scale * float64(time.Second)))
		}
		if !e.step(math.Inf(1)) {
			return e.Now()
		}
	}
}

// Every schedules fn at now+period, then every period thereafter, until
// stop() is called or fn returns false. This is the shape of every
// monitoring daemon in the simulated experiments.
func (e *Engine) Every(period float64, fn func() bool) (stop func()) {
	if period <= 0 {
		panic("des: Every period must be positive")
	}
	var mu sync.Mutex
	stopped := false
	var tm Timer
	var tick func()
	tick = func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		if !fn() {
			return
		}
		mu.Lock()
		if !stopped {
			tm = e.After(period, tick)
		}
		mu.Unlock()
	}
	tm = e.After(period, tick)
	return func() {
		mu.Lock()
		stopped = true
		e.Cancel(tm)
		mu.Unlock()
	}
}
