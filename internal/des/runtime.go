package des

import (
	"sync"
	"time"
)

// Runtime is the time-and-callback abstraction the pilot runtime and the
// SOMA collector daemons are written against. The DES Engine implements it
// for simulated experiments; RealRuntime implements it for live runs. All
// callbacks scheduled through a Runtime may fire concurrently in real mode,
// so components guard their state with their own locks.
type Runtime interface {
	Clock
	// AfterFunc schedules fn to run d seconds from now and returns a cancel
	// function. Cancel is best-effort: fn may already be running.
	AfterFunc(d float64, fn func()) (cancel func())
}

// AfterFunc adapts Engine's After/Cancel pair to the Runtime interface.
func (e *Engine) AfterFunc(d float64, fn func()) (cancel func()) {
	tm := e.After(d, fn)
	return func() { e.Cancel(tm) }
}

// RealRuntime is a Runtime backed by the wall clock and time.AfterFunc. Its
// zero value is not usable; call NewRealRuntime.
type RealRuntime struct {
	clock *RealClock
	mu    sync.Mutex
	wg    sync.WaitGroup
	done  bool
}

// NewRealRuntime returns a wall-clock runtime whose epoch is now.
func NewRealRuntime() *RealRuntime {
	return &RealRuntime{clock: NewRealClock()}
}

// Now returns seconds since the runtime was created.
func (r *RealRuntime) Now() float64 { return r.clock.Now() }

// AfterFunc schedules fn on a timer goroutine.
func (r *RealRuntime) AfterFunc(d float64, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return func() {}
	}
	r.wg.Add(1)
	r.mu.Unlock()
	var once sync.Once
	timer := time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		defer once.Do(r.wg.Done)
		r.mu.Lock()
		stopped := r.done
		r.mu.Unlock()
		if !stopped {
			fn()
		}
	})
	return func() {
		if timer.Stop() {
			once.Do(r.wg.Done)
		}
	}
}

// Shutdown stops future callbacks and waits for in-flight ones.
func (r *RealRuntime) Shutdown() {
	r.mu.Lock()
	r.done = true
	r.mu.Unlock()
	r.wg.Wait()
}

// EveryRT schedules fn on rt at now+period and every period thereafter,
// until stop() is called or fn returns false. It is the Runtime-generic
// counterpart of Engine.Every, used by the monitoring daemons so the same
// collector code ticks in simulated and real time.
func EveryRT(rt Runtime, period float64, fn func() bool) (stop func()) {
	if period <= 0 {
		panic("des: EveryRT period must be positive")
	}
	var mu sync.Mutex
	stopped := false
	var cancel func()
	var tick func()
	tick = func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		if !fn() {
			return
		}
		mu.Lock()
		if !stopped {
			cancel = rt.AfterFunc(period, tick)
		}
		mu.Unlock()
	}
	// The first arm must hold mu too: with a short period in real mode the
	// timer can fire and re-arm (writing cancel under mu in tick) before
	// this assignment lands.
	mu.Lock()
	cancel = rt.AfterFunc(period, tick)
	mu.Unlock()
	return func() {
		mu.Lock()
		stopped = true
		if cancel != nil {
			cancel()
		}
		mu.Unlock()
	}
}
