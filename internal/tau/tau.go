// Package tau is a Go analog of the TAU performance system's role in the
// paper: sampling-based per-rank profiles of workflow tasks, attributed to
// the correct heterogeneous task via a hostname tag and a task identifier
// (the two additions the paper made to TAU's Conduit data model), and a
// SOMA plugin that publishes those profiles to the performance namespace.
//
// In the simulated experiments the profiles are generated from the workload
// model's per-rank function breakdown — what tau_exec sampling would have
// observed; the plugin path (profile → Conduit → publish) is identical to a
// real deployment.
package tau

import (
	"fmt"
	"sort"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// Profile is one rank's sampled function-time profile for one task.
type Profile struct {
	// TaskUID attributes the profile to a workflow task (the filename task
	// identifier the paper added).
	TaskUID string
	// Host is the compute node that ran the rank (the hostname tag).
	Host string
	// Rank is the MPI rank.
	Rank int
	// Seconds maps function name to inclusive seconds.
	Seconds map[string]float64
}

// Total returns the profile's total sampled seconds.
func (p *Profile) Total() float64 {
	t := 0.0
	for _, v := range p.Seconds {
		t += v
	}
	return t
}

// MPITime returns the seconds spent in MPI_* functions.
func (p *Profile) MPITime() float64 {
	t := 0.0
	for fn, v := range p.Seconds {
		if len(fn) >= 4 && fn[:4] == "MPI_" {
			t += v
		}
	}
	return t
}

// ToConduit renders the profile under the performance namespace layout:
//
//	TAU/<task uid>/<host>/rank_<n>/<function>: seconds
func (p *Profile) ToConduit() *conduit.Node {
	n := conduit.NewNode()
	base := fmt.Sprintf("TAU/%s/%s/rank_%05d", p.TaskUID, p.Host, p.Rank)
	fns := make([]string, 0, len(p.Seconds))
	for fn := range p.Seconds {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		n.SetFloat(base+"/"+fn, p.Seconds[fn])
	}
	return n
}

// FromConduit parses every profile found in a performance-namespace tree.
func FromConduit(root *conduit.Node) []Profile {
	tauNode, ok := root.Get("TAU")
	if !ok {
		return nil
	}
	var out []Profile
	for _, uid := range tauNode.ChildNames() {
		taskNode := tauNode.Child(uid)
		for _, host := range taskNode.ChildNames() {
			hostNode := taskNode.Child(host)
			for _, rankName := range hostNode.ChildNames() {
				var rank int
				if _, err := fmt.Sscanf(rankName, "rank_%d", &rank); err != nil {
					continue
				}
				rankNode := hostNode.Child(rankName)
				prof := Profile{TaskUID: uid, Host: host, Rank: rank,
					Seconds: map[string]float64{}}
				for _, fn := range rankNode.ChildNames() {
					if v, ok := rankNode.Float(fn); ok {
						prof.Seconds[fn] = v
					}
				}
				out = append(out, prof)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TaskUID != out[j].TaskUID {
			return out[i].TaskUID < out[j].TaskUID
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// FunctionTotals sums seconds per function across profiles — the aggregate
// view behind Fig. 5's load-balance analysis.
func FunctionTotals(profs []Profile) map[string]float64 {
	out := map[string]float64{}
	for _, p := range profs {
		for fn, v := range p.Seconds {
			out[fn] += v
		}
	}
	return out
}

// LoadImbalance returns, for one function, max/mean across ranks of one
// task (1.0 = perfectly balanced). Profiles from other tasks are ignored.
func LoadImbalance(profs []Profile, taskUID, fn string) float64 {
	var vals []float64
	for _, p := range profs {
		if p.TaskUID == taskUID {
			vals = append(vals, p.Seconds[fn])
		}
	}
	if len(vals) == 0 {
		return 0
	}
	maxV, sum := 0.0, 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean == 0 {
		return 0
	}
	return maxV / mean
}

// Plugin is the TAU→SOMA bridge: it converts profiles to Conduit nodes and
// hands them to a publish function (a SOMA client's Publish bound to the
// performance namespace). It mirrors the paper's TAU plugin, which "creates
// a separate client object and connects to the SOMA instances reserved for
// monitoring the performance namespace".
type Plugin struct {
	publish func(*conduit.Node) error
	// Published counts successful publishes (for tests and overhead
	// accounting).
	Published int
}

// NewPlugin wraps a publish function.
func NewPlugin(publish func(*conduit.Node) error) *Plugin {
	return &Plugin{publish: publish}
}

// Report publishes a batch of rank profiles as one Conduit tree.
func (pl *Plugin) Report(profs []Profile) error {
	if len(profs) == 0 {
		return nil
	}
	root := conduit.NewNode()
	for i := range profs {
		root.Merge(profs[i].ToConduit())
	}
	if err := pl.publish(root); err != nil {
		return err
	}
	pl.Published++
	return nil
}
