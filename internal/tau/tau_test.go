package tau

import (
	"fmt"
	"math"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
)

func sampleProfiles() []Profile {
	return []Profile{
		{TaskUID: "task.000000", Host: "cn0001", Rank: 0, Seconds: map[string]float64{
			"MPI_Recv": 40, "MPI_Waitall": 10, ".TAU application": 50}},
		{TaskUID: "task.000000", Host: "cn0001", Rank: 1, Seconds: map[string]float64{
			"MPI_Recv": 25, "MPI_Waitall": 25, ".TAU application": 50}},
		{TaskUID: "task.000001", Host: "cn0002", Rank: 0, Seconds: map[string]float64{
			"MPI_Recv": 5, ".TAU application": 95}},
	}
}

func TestProfileTotals(t *testing.T) {
	p := sampleProfiles()[0]
	if p.Total() != 100 {
		t.Fatalf("total = %v", p.Total())
	}
	if p.MPITime() != 50 {
		t.Fatalf("mpi = %v", p.MPITime())
	}
}

func TestConduitRoundTrip(t *testing.T) {
	profs := sampleProfiles()
	root := conduit.NewNode()
	for i := range profs {
		root.Merge(profs[i].ToConduit())
	}
	back := FromConduit(root)
	if len(back) != 3 {
		t.Fatalf("profiles = %d", len(back))
	}
	// Sorted by (uid, rank).
	if back[0].TaskUID != "task.000000" || back[0].Rank != 0 ||
		back[1].Rank != 1 || back[2].TaskUID != "task.000001" {
		t.Fatalf("order = %+v", back)
	}
	for i, p := range back {
		if p.Host == "" {
			t.Fatalf("profile %d lost host tag", i)
		}
		if math.Abs(p.Total()-profs[i].Total()) > 1e-9 {
			t.Fatalf("profile %d total %v vs %v", i, p.Total(), profs[i].Total())
		}
	}
}

func TestFromConduitIgnoresJunk(t *testing.T) {
	root := conduit.NewNode()
	root.SetFloat("TAU/task.0/cn0001/not_a_rank/MPI_Recv", 1)
	root.SetString("TAU/task.0/cn0001/rank_00000/weird", "string leaf ignored")
	root.SetFloat("TAU/task.0/cn0001/rank_00000/MPI_Recv", 2)
	root.SetFloat("OTHER/x", 3)
	profs := FromConduit(root)
	if len(profs) != 1 {
		t.Fatalf("profiles = %d", len(profs))
	}
	if profs[0].Seconds["MPI_Recv"] != 2 || len(profs[0].Seconds) != 1 {
		t.Fatalf("seconds = %v", profs[0].Seconds)
	}
	if FromConduit(conduit.NewNode()) != nil {
		t.Fatal("empty tree should give nil")
	}
}

func TestFunctionTotals(t *testing.T) {
	tot := FunctionTotals(sampleProfiles())
	if tot["MPI_Recv"] != 70 || tot[".TAU application"] != 195 {
		t.Fatalf("totals = %v", tot)
	}
}

func TestLoadImbalance(t *testing.T) {
	profs := sampleProfiles()
	// task.000000 MPI_Recv: ranks {40, 25} → max/mean = 40/32.5.
	got := LoadImbalance(profs, "task.000000", "MPI_Recv")
	want := 40.0 / 32.5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("imbalance = %v want %v", got, want)
	}
	if LoadImbalance(profs, "no.such.task", "MPI_Recv") != 0 {
		t.Fatal("unknown task should give 0")
	}
	if LoadImbalance(profs, "task.000000", "no_such_fn") != 0 {
		t.Fatal("zero-mean function should give 0")
	}
}

func TestPluginPublishes(t *testing.T) {
	var got *conduit.Node
	pl := NewPlugin(func(n *conduit.Node) error { got = n; return nil })
	if err := pl.Report(sampleProfiles()); err != nil {
		t.Fatal(err)
	}
	if pl.Published != 1 {
		t.Fatalf("published = %d", pl.Published)
	}
	if got == nil {
		t.Fatal("nothing published")
	}
	// The merged tree must contain both task uids with host tags.
	if !got.Has("TAU/task.000000/cn0001/rank_00000/MPI_Recv") ||
		!got.Has("TAU/task.000001/cn0002/rank_00000") {
		t.Fatalf("published tree malformed:\n%s", got.Format())
	}
	// Empty report is a no-op.
	if err := pl.Report(nil); err != nil || pl.Published != 1 {
		t.Fatal("empty report should not publish")
	}
}

func TestPluginPropagatesError(t *testing.T) {
	pl := NewPlugin(func(*conduit.Node) error { return fmt.Errorf("rpc down") })
	if err := pl.Report(sampleProfiles()); err == nil {
		t.Fatal("publish error swallowed")
	}
	if pl.Published != 0 {
		t.Fatal("failed publish counted")
	}
}
