package tau

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/des"
)

// PeriodicSampler publishes partial profiles while a task runs, the way the
// paper's TAU plugin does ("samples the running application ... and
// publishes the sampled performance profiles to the SOMA server" at the
// monitoring frequency), rather than once at completion. Each tick it
// scales the task's final per-rank breakdown by the fraction of the task's
// lifetime elapsed so far — what cumulative sampling would have observed.
type PeriodicSampler struct {
	rt       des.Runtime
	plugin   *Plugin
	interval float64

	mu      sync.Mutex
	active  map[string]func() // task uid -> stop
	reports int64
}

// NewPeriodicSampler creates a sampler publishing through plugin every
// intervalSec.
func NewPeriodicSampler(rt des.Runtime, plugin *Plugin, intervalSec float64) (*PeriodicSampler, error) {
	if rt == nil || plugin == nil || intervalSec <= 0 {
		return nil, fmt.Errorf("tau: PeriodicSampler requires runtime, plugin and positive interval")
	}
	return &PeriodicSampler{
		rt: rt, plugin: plugin, interval: intervalSec,
		active: map[string]func(){},
	}, nil
}

// Attach starts sampling a task. finalProfiles is the task's full-lifetime
// per-rank breakdown (from the workload model or real samples); startTime
// and duration bound the task's execution. Sampling stops automatically
// when the task's lifetime ends, or earlier via Detach.
func (ps *PeriodicSampler) Attach(taskUID string, finalProfiles []Profile, startTime, duration float64) error {
	if duration <= 0 || len(finalProfiles) == 0 {
		return fmt.Errorf("tau: nothing to sample for %s", taskUID)
	}
	ps.mu.Lock()
	if _, dup := ps.active[taskUID]; dup {
		ps.mu.Unlock()
		return fmt.Errorf("tau: %s already being sampled", taskUID)
	}
	ps.mu.Unlock()

	stop := des.EveryRT(ps.rt, ps.interval, func() bool {
		now := ps.rt.Now()
		frac := (now - startTime) / duration
		if frac <= 0 {
			return true
		}
		done := false
		if frac >= 1 {
			frac = 1
			done = true
		}
		partial := make([]Profile, len(finalProfiles))
		for i, p := range finalProfiles {
			scaled := Profile{TaskUID: p.TaskUID, Host: p.Host, Rank: p.Rank,
				Seconds: make(map[string]float64, len(p.Seconds))}
			for fn, v := range p.Seconds {
				scaled.Seconds[fn] = v * frac
			}
			partial[i] = scaled
		}
		if err := ps.plugin.Report(partial); err == nil {
			ps.mu.Lock()
			ps.reports++
			ps.mu.Unlock()
		}
		if done {
			ps.mu.Lock()
			delete(ps.active, taskUID)
			ps.mu.Unlock()
		}
		return !done
	})
	ps.mu.Lock()
	ps.active[taskUID] = stop
	ps.mu.Unlock()
	return nil
}

// Detach stops sampling a task early (failure/cancel paths).
func (ps *PeriodicSampler) Detach(taskUID string) {
	ps.mu.Lock()
	stop := ps.active[taskUID]
	delete(ps.active, taskUID)
	ps.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Interval returns the sampling cadence in seconds. The sampler is a stream
// source: each report's publish is fanned out to live performance-namespace
// subscribers at this cadence.
func (ps *PeriodicSampler) Interval() float64 { return ps.interval }

// Active returns how many tasks are currently being sampled.
func (ps *PeriodicSampler) Active() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.active)
}

// Reports returns how many partial-profile publications succeeded.
func (ps *PeriodicSampler) Reports() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.reports
}

// Close detaches every task.
func (ps *PeriodicSampler) Close() {
	ps.mu.Lock()
	stops := make([]func(), 0, len(ps.active))
	for uid, stop := range ps.active {
		stops = append(stops, stop)
		delete(ps.active, uid)
	}
	ps.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}
