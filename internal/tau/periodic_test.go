package tau

import (
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
)

func TestPeriodicSamplerPublishesGrowingProfiles(t *testing.T) {
	eng := des.NewEngine()
	store := conduit.NewNode()
	plugin := NewPlugin(func(n *conduit.Node) error {
		store.Merge(n)
		return nil
	})
	ps, err := NewPeriodicSampler(eng, plugin, 10)
	if err != nil {
		t.Fatal(err)
	}
	final := []Profile{{
		TaskUID: "task.000001", Host: "cn0001", Rank: 0,
		Seconds: map[string]float64{"MPI_Recv": 40, ".TAU application": 60},
	}}
	if err := ps.Attach("task.000001", final, 0, 100); err != nil {
		t.Fatal(err)
	}
	if ps.Active() != 1 {
		t.Fatalf("active = %d", ps.Active())
	}

	// Half way: cumulative sample should show half the final values.
	eng.RunUntil(50)
	if v, ok := store.Float("TAU/task.000001/cn0001/rank_00000/MPI_Recv"); !ok || v != 20 {
		t.Fatalf("mid-run MPI_Recv = %v, %v", v, ok)
	}
	// After the task ends, the final values stand and sampling stops.
	eng.RunUntil(200)
	if v, _ := store.Float("TAU/task.000001/cn0001/rank_00000/MPI_Recv"); v != 40 {
		t.Fatalf("final MPI_Recv = %v", v)
	}
	if ps.Active() != 0 {
		t.Fatalf("sampler still active: %d", ps.Active())
	}
	if ps.Reports() < 10 {
		t.Fatalf("reports = %d, want ~10 over the task lifetime", ps.Reports())
	}
	if eng.Pending() != 0 {
		t.Fatalf("sampler leaked %d scheduled events", eng.Pending())
	}
}

func TestPeriodicSamplerDetach(t *testing.T) {
	eng := des.NewEngine()
	plugin := NewPlugin(func(*conduit.Node) error { return nil })
	ps, _ := NewPeriodicSampler(eng, plugin, 10)
	final := sampleProfiles()[:1]
	if err := ps.Attach("task.000000", final, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := ps.Attach("task.000000", final, 0, 1000); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	eng.RunUntil(35)
	before := ps.Reports()
	ps.Detach("task.000000")
	eng.RunUntil(200)
	if ps.Reports() != before {
		t.Fatal("sampling continued after detach")
	}
	ps.Detach("task.000000") // idempotent
	// Re-attach after detach is allowed.
	if err := ps.Attach("task.000000", final, eng.Now(), 100); err != nil {
		t.Fatal(err)
	}
	ps.Close()
	if ps.Active() != 0 {
		t.Fatal("close left active samplers")
	}
}

func TestPeriodicSamplerValidation(t *testing.T) {
	eng := des.NewEngine()
	plugin := NewPlugin(func(*conduit.Node) error { return nil })
	if _, err := NewPeriodicSampler(nil, plugin, 10); err == nil {
		t.Fatal("nil runtime accepted")
	}
	if _, err := NewPeriodicSampler(eng, nil, 10); err == nil {
		t.Fatal("nil plugin accepted")
	}
	if _, err := NewPeriodicSampler(eng, plugin, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	ps, _ := NewPeriodicSampler(eng, plugin, 10)
	if err := ps.Attach("t", nil, 0, 100); err == nil {
		t.Fatal("empty profiles accepted")
	}
	if err := ps.Attach("t", sampleProfiles(), 0, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}
