package scenario

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
)

// ---------------------------------------------------------------------------
// Workload pumps: scripted publishers whose acknowledged publishes form the
// zero-loss / ground-truth ledger.

// ackRecord is one acknowledged publish: the service accepted path=val at
// scenario time at. Restart-aware assertions discard records acknowledged
// before the owning instance's latest restart (an in-memory service forgets
// on restart by design — what must never happen is losing a publish it
// acknowledged *since*).
type ackRecord struct {
	path string
	val  float64
	at   time.Duration
}

type workloadRT struct {
	spec   Workload
	r      *runner
	client *core.Client

	paused  atomic.Bool
	valBits atomic.Uint64 // constant-value mode; set_value retargets mid-run
	seqVal  bool

	attempted atomic.Int64
	acked     atomic.Int64

	mu     sync.Mutex
	issued map[string]float64 // shadow merge: every path → last value written
	acks   []ackRecord
}

func startWorkload(ctx context.Context, r *runner, spec Workload) (*workloadRT, error) {
	client, err := core.ConnectPolicy(r.instances[spec.Instance].h.addr(), r.faultEngine, simPolicy())
	if err != nil {
		return nil, err
	}
	w := &workloadRT{spec: spec, r: r, client: client, issued: map[string]float64{}}
	if spec.Value == "seq" {
		w.seqVal = true
	} else {
		v, _ := strconv.ParseFloat(spec.Value, 64)
		w.setValue(v)
	}
	r.wg.Add(1)
	go w.pump(ctx)
	return w, nil
}

func (w *workloadRT) setValue(v float64) { w.valBits.Store(math.Float64bits(v)) }

// pump issues publishes at the scripted rate, retrying each one until the
// service acknowledges it. Issuance stops at end of timeline (stopIssue);
// an in-flight retry may complete during the settle window.
func (w *workloadRT) pump(ctx context.Context) {
	defer w.r.wg.Done()
	interval := time.Duration(float64(time.Second) / w.spec.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()

	if w.spec.Start > 0 {
		select {
		case <-time.After(time.Until(w.r.start.Add(w.spec.Start))):
		case <-ctx.Done():
			return
		case <-w.r.stopIssue:
			return
		}
	}

	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-w.r.stopIssue:
			return
		case <-tick.C:
		}
		if w.paused.Load() {
			continue
		}
		path, val := w.sample(i)
		tree := conduit.NewNode()
		tree.SetFloat(path, val)
		w.mu.Lock()
		w.issued[path] = val
		w.mu.Unlock()
		w.attempted.Add(1)
		if !w.publishUntilAcked(ctx, tree, path, val) {
			return
		}
	}
}

// publishUntilAcked retries one publish until the service acknowledges it
// and records the ack in the ledger. Every scenario publish is safe to
// re-send (distinct leaf, or constant rotate value), so retrying cannot
// corrupt the ground truth. After the timeline ends (stopIssue) the retries
// continue against the healed fleet, bounded by the settle window.
func (w *workloadRT) publishUntilAcked(ctx context.Context, tree *conduit.Node, path string, val float64) bool {
	settling := false
	for {
		if err := w.client.Publish(w.spec.NS, tree); err == nil {
			at := w.r.since()
			w.acked.Add(1)
			w.mu.Lock()
			w.acks = append(w.acks, ackRecord{path: path, val: val, at: at})
			w.mu.Unlock()
			return true
		}
		if settling {
			// Observing stopIssue closed licensed reading settleCtx (it is
			// published before the close).
			sctx := w.r.settleCtx
			if sctx == nil {
				return false
			}
			select {
			case <-ctx.Done():
				return false
			case <-sctx.Done():
				return false
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		select {
		case <-ctx.Done():
			return false
		case <-w.r.stopIssue:
			settling = true
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// sample lays out publish i: its leaf path (layout + optional timestamp
// segment) and value.
func (w *workloadRT) sample(i int) (string, float64) {
	var path string
	base := w.spec.Prefix + "/" + w.spec.Name
	if w.spec.Layout == LayoutDistinct {
		path = fmt.Sprintf("%s/p%07d", base, i)
	} else {
		path = fmt.Sprintf("%s/l%03d", base, i%w.spec.Leaves)
	}
	switch w.spec.Timestamps {
	case TimestampsNow:
		path += "/" + formatStamp(wallSeconds())
	case TimestampsSkew:
		// Plausible timestamps an hour off the wall clock, alternating
		// direction — they fold into the rollup rings far outside the live
		// windows (the clock-skew regime).
		off := 3600.0
		if i%2 == 1 {
			off = -3600.0
		}
		t := wallSeconds() + off
		if t < 0 {
			t = 0
		}
		path += "/" + formatStamp(t)
	case TimestampsHostile:
		path += "/" + hostileStamp(i)
	}
	val := float64(i)
	if !w.seqVal {
		val = math.Float64frombits(w.valBits.Load())
	}
	return path, val
}

func wallSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

func formatStamp(t float64) string { return strconv.FormatFloat(t, 'f', 3, 64) }

// hostileStamp cycles the timestamp shapes the rollup hardening must keep
// out of the rings: unique over-limit values (> 1e15, so every sample mints
// a fresh series key and marches the store into its cap), negatives and
// overflow exponents (must stay in the key), and near-zero "ancient"
// times (must hit the ring's modulo normalization, not break it).
func hostileStamp(i int) string {
	switch i % 4 {
	case 0:
		return fmt.Sprintf("9%015d", i)
	case 1:
		return "-42.5"
	case 2:
		return "1e300"
	default:
		return "0.000001"
	}
}

// ledger snapshots the workload's shadow merge and ack log.
func (w *workloadRT) ledger() (issued map[string]float64, acks []ackRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	issued = make(map[string]float64, len(w.issued))
	for k, v := range w.issued {
		issued[k] = v
	}
	return issued, append([]ackRecord(nil), w.acks...)
}

// ---------------------------------------------------------------------------
// Subscriber groups: live update-bus subscriptions (fleet-start groups and
// mid-run thundering herds), consumed continuously, drop-accounted.

type subGroupRT struct {
	name    string
	client  *core.Client
	cancel  context.CancelFunc
	subs    []*core.Subscription
	wg      sync.WaitGroup
	updates atomic.Int64
}

// openSubGroup opens count subscriptions concurrently — a herd subscribes
// in one stampede, which is exactly the regime under test.
func (r *runner) openSubGroup(ctx context.Context, name, instance string, ns core.Namespace, pattern string, count int) (*subGroupRT, error) {
	client, err := core.ConnectPolicy(r.instances[instance].h.addr(), r.faultEngine, simPolicy())
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	sg := &subGroupRT{name: name, client: client, cancel: cancel}

	var (
		mu   sync.Mutex
		werr error
		wg   sync.WaitGroup
	)
	subs := make([]*core.Subscription, count)
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := client.Subscribe(ctx, ns, pattern)
			if err != nil {
				mu.Lock()
				if werr == nil {
					werr = err
				}
				mu.Unlock()
				return
			}
			subs[i] = sub
		}(i)
	}
	wg.Wait()
	if werr != nil {
		for _, sub := range subs {
			if sub != nil {
				sub.Close()
			}
		}
		cancel()
		client.Close()
		return nil, werr
	}
	for _, sub := range subs {
		sg.subs = append(sg.subs, sub)
		sg.wg.Add(1)
		go func(sub *core.Subscription) {
			defer sg.wg.Done()
			for range sub.C {
				sg.updates.Add(1)
			}
		}(sub)
	}
	return sg, nil
}

func (sg *subGroupRT) droppedTotal() int64 {
	var total int64
	for _, sub := range sg.subs {
		total += sub.Dropped()
	}
	return total
}

func (sg *subGroupRT) close() {
	sg.cancel()
	for _, sub := range sg.subs {
		sub.Close()
	}
	sg.wg.Wait()
	sg.client.Close()
}

// ---------------------------------------------------------------------------
// Bursts: best-effort adversity traffic (not part of the loss ledger).

func (r *runner) runBurst(ctx context.Context, ev Event) {
	b := ev.Burst
	client, err := core.ConnectPolicy(r.instances[b.Instance].h.addr(), r.faultEngine, simPolicy())
	if err != nil {
		r.eventErrf(ev.Line, "burst: %v", err)
		return
	}
	r.logf("burst: %d publishes x%d concurrent into %s ns=%s", b.Count, b.Concurrency, b.Instance, b.NS)
	per := b.Count / b.Concurrency
	if per == 0 {
		per = 1
	}
	r.burstWG.Add(1)
	go func() {
		defer r.burstWG.Done()
		defer client.Close()
		var wg sync.WaitGroup
		var acked atomic.Int64
		for g := 0; g < b.Concurrency; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					select {
					case <-ctx.Done():
						return
					case <-r.stopIssue:
						return
					default:
					}
					tree := conduit.NewNode()
					tree.SetFloat(fmt.Sprintf("%s/g%03d/b%06d", b.Prefix, g, i), float64(i))
					if client.Publish(b.NS, tree) == nil {
						acked.Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		r.evMu.Lock()
		r.burstAck += acked.Load()
		r.burstTry += int64(per * b.Concurrency)
		r.evMu.Unlock()
		r.logf("burst done: %d/%d acked", acked.Load(), per*b.Concurrency)
	}()
}

// ---------------------------------------------------------------------------
// Alert observer: polls soma.alert.list on every instance over the clean
// engine, recording when each rule is first seen firing and first seen
// resolved again — the observations alert_fired / alert_resolved judge.
// Polling the standing (rather than tailing the soma.alerts stream) keeps
// the measurement independent of the very drop/sever faults under test.

type alertObserver struct {
	r      *runner
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	fired    map[string]time.Duration
	resolved map[string]time.Duration
}

func startAlertObserver(r *runner) *alertObserver {
	ctx, cancel := context.WithCancel(context.Background())
	obs := &alertObserver{
		r:        r,
		cancel:   cancel,
		done:     make(chan struct{}),
		fired:    map[string]time.Duration{},
		resolved: map[string]time.Duration{},
	}
	go obs.poll(ctx)
	return obs
}

func (obs *alertObserver) poll(ctx context.Context) {
	defer close(obs.done)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, name := range obs.r.order {
			in := obs.r.instances[name]
			rules, states, err := in.util.Alerts()
			if err != nil {
				continue // instance down or mid-restart; keep polling
			}
			now := obs.r.since()
			firing := map[string]bool{}
			for _, st := range states {
				if st.Firing {
					firing[st.Rule] = true
				}
			}
			obs.mu.Lock()
			for _, rule := range rules {
				switch {
				case firing[rule.Name]:
					if _, ok := obs.fired[rule.Name]; !ok {
						obs.fired[rule.Name] = now
						obs.r.logf("observed: alert %s firing", rule.Name)
					}
				default:
					if _, wasFired := obs.fired[rule.Name]; wasFired {
						if _, ok := obs.resolved[rule.Name]; !ok {
							obs.resolved[rule.Name] = now
							obs.r.logf("observed: alert %s resolved", rule.Name)
						}
					}
				}
			}
			obs.mu.Unlock()
		}
	}
}

// firedAt / resolvedAt report the first observation of each transition.
func (obs *alertObserver) firedAt(rule string) (time.Duration, bool) {
	obs.mu.Lock()
	defer obs.mu.Unlock()
	t, ok := obs.fired[rule]
	return t, ok
}

func (obs *alertObserver) resolvedAt(rule string) (time.Duration, bool) {
	obs.mu.Lock()
	defer obs.mu.Unlock()
	t, ok := obs.resolved[rule]
	return t, ok
}

func (obs *alertObserver) stop() {
	obs.cancel()
	<-obs.done
}
