package scenario

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/mercury"

	"context"
)

// ---------------------------------------------------------------------------
// In-process instances: a real core.Service on a real TCP port, restartable
// on the same address — the fast, race-detector-friendly fleet.

type inprocHandle struct {
	cfg  core.ServiceConfig
	mu   sync.Mutex
	svc  *core.Service
	bind string // concrete tcp://host:port, stable across restarts
	up   bool
	// clcfg, when set, re-joins the instance into its cluster after every
	// (re)boot — a restarted member announces itself to the same peer set.
	clcfg *core.ClusterConfig
}

func startInproc(spec Instance, engineOpts []mercury.Option) (*inprocHandle, error) {
	h := &inprocHandle{cfg: core.ServiceConfig{
		RanksPerNamespace: spec.Ranks,
		EngineOptions:     engineOpts,
	}}
	h.svc = core.NewService(h.cfg)
	addr, err := h.svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		h.svc.Close()
		return nil, err
	}
	h.bind = addr
	h.up = true
	return h, nil
}

func (h *inprocHandle) addr() string { return h.bind }

// joinCluster joins the live service into a sharded cluster and remembers
// the config so restart() re-joins the fresh incarnation.
func (h *inprocHandle) joinCluster(cfg core.ClusterConfig) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.svc.JoinCluster(cfg); err != nil {
		return err
	}
	h.clcfg = &cfg
	return nil
}

func (h *inprocHandle) kill() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.up {
		return fmt.Errorf("instance already down")
	}
	h.up = false
	return h.svc.Close()
}

func (h *inprocHandle) restart() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.up {
		return fmt.Errorf("instance already up")
	}
	svc := core.NewService(h.cfg)
	// The freed port can linger briefly; retry the rebind for up to ~2s.
	var err error
	for i := 0; i < 20; i++ {
		if _, err = svc.Listen(h.bind); err == nil {
			if h.clcfg != nil {
				if jerr := svc.JoinCluster(*h.clcfg); jerr != nil {
					svc.Close()
					return fmt.Errorf("rejoin cluster: %w", jerr)
				}
			}
			h.svc = svc
			h.up = true
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	svc.Close()
	return fmt.Errorf("rebind %s: %w", h.bind, err)
}

func (h *inprocHandle) close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.up {
		return nil
	}
	h.up = false
	return h.svc.Close()
}

// reserveAddrs picks n distinct concrete tcp://127.0.0.1:port addresses by
// binding and immediately releasing ephemeral ports. A cluster-mode proc
// fleet needs every member's address before any member boots (each somad is
// told its peers on the command line); the tiny release-to-rebind window is
// acceptable for a test harness.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, "tcp://"+l.Addr().String())
		l.Close()
	}
	return addrs, nil
}

// ---------------------------------------------------------------------------
// Child-process instances: one somad per instance, killed with a real
// signal and restarted on the same port — the deployment-shaped fleet.

type procHandle struct {
	somad string
	ranks int
	extra []string // extra somad flags, stable across restarts (cluster -id/-peers)

	mu   sync.Mutex
	cmd  *exec.Cmd
	bind string // concrete tcp://127.0.0.1:port after first boot
	up   bool
}

// startProc spawns one somad. listen is "" for an ephemeral port; a cluster
// fleet passes pre-reserved concrete addresses (every member must know its
// peers at boot) plus the -id/-peers flags in extra.
func startProc(ctx context.Context, somad string, spec Instance, listen string, extra []string) (*procHandle, error) {
	h := &procHandle{somad: somad, ranks: spec.Ranks, extra: extra}
	if listen == "" {
		listen = "tcp://127.0.0.1:0"
	}
	addr, err := h.spawn(ctx, listen)
	if err != nil {
		return nil, err
	}
	h.bind = addr
	h.up = true
	return h, nil
}

// spawn starts somad at listen and returns the concrete address it printed.
func (h *procHandle) spawn(ctx context.Context, listen string) (string, error) {
	args := append([]string{"-listen", listen, "-ranks", strconv.Itoa(h.ranks)}, h.extra...)
	cmd := exec.Command(h.somad, args...)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("start %s: %w", h.somad, err)
	}
	// somad prints its concrete RPC address as the first stdout line; the
	// rest of the stream is drained so the child never blocks on a full
	// pipe.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			addrCh <- sc.Text()
		}
		for sc.Scan() {
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return "", fmt.Errorf("%s printed no address", h.somad)
		}
		h.cmd = cmd
		return addr, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return "", fmt.Errorf("%s did not print an address within 10s", h.somad)
	case <-ctx.Done():
		cmd.Process.Kill()
		cmd.Wait()
		return "", ctx.Err()
	}
}

func (h *procHandle) addr() string { return h.bind }

func (h *procHandle) kill() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.up {
		return fmt.Errorf("instance already down")
	}
	h.up = false
	h.cmd.Process.Kill()
	h.cmd.Wait()
	return nil
}

func (h *procHandle) restart() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.up {
		return fmt.Errorf("instance already up")
	}
	// Same port, so clients and subscribers redial back to the address the
	// fleet already knows.
	var err error
	for i := 0; i < 20; i++ {
		var addr string
		addr, err = h.spawn(context.Background(), h.bind)
		if err == nil {
			h.bind = addr
			h.up = true
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("respawn on %s: %w", h.bind, err)
}

func (h *procHandle) close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.up {
		return nil
	}
	h.up = false
	h.cmd.Process.Kill()
	h.cmd.Wait()
	return nil
}
