package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// minimal is a smallest-valid scenario the hostile tables mutate.
const minimal = `name: t
duration: 2s
fleet:
  instances:
    - name: alpha
  workloads:
    - name: w
      instance: alpha
      ns: workflow
      rate: 10
`

func TestScenarioParseMinimal(t *testing.T) {
	sc, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatalf("parse minimal: %v", err)
	}
	if sc.Name != "t" || sc.Duration != 2*time.Second || sc.Seed != 1 {
		t.Fatalf("unexpected scenario header: %+v", sc)
	}
	w := sc.Fleet.Workloads[0]
	if w.Prefix != "sim" || w.Layout != LayoutDistinct || w.Leaves != 16 || w.Value != "seq" || w.Timestamps != TimestampsNone {
		t.Fatalf("workload defaults not applied: %+v", w)
	}
}

// TestScenarioParseHostile feeds the parser and validator deliberately
// malformed documents; every one must be rejected with a message naming the
// problem (and usually the line), and none may panic.
func TestScenarioParseHostile(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty document", "", "empty document"},
		{"unknown top-level key", "name: t\nbogus: 1\nduration: 2s\nfleet:\n  instances:\n    - name: a\n", `unknown scenario key "bogus"`},
		{"unknown workload key", strings.Replace(minimal, "      rate: 10\n", "      rate: 10\n      surprise: 1\n", 1), `unknown workload key "surprise"`},
		{"tab indentation", "name: t\nduration: 2s\nfleet:\n\tinstances: x\n", "tab in indentation"},
		{"duplicate key", "name: t\nname: u\nduration: 2s\n", `duplicate key "name"`},
		{"flow syntax", "name: t\nduration: 2s\nfleet: {instances: []}\n", "flow syntax"},
		{"anchor", "name: &x t\nduration: 2s\n", "anchors/aliases"},
		{"block scalar", "name: |\n  t\nduration: 2s\n", "block scalars"},
		{"bare dash item", "name: t\nduration: 2s\nfleet:\n  instances:\n    -\n", "bare '-' list item"},
		{"missing space after colon", "name:t\nduration: 2s\n", "missing space after ':'"},
		{"unterminated quote", "name: \"t\nduration: 2s\n", "unterminated double-quoted string"},
		{"missing fleet", "name: t\nduration: 2s\n", `missing required section "fleet"`},
		{"empty fleet", "name: t\nduration: 2s\nfleet:\n  instances: []\n", "flow syntax"},
		{"no instances", "name: t\nduration: 2s\nfleet:\n  workloads:\n    - name: w\n      instance: a\n      ns: workflow\n      rate: 1\n", "empty fleet"},
		{"zero duration", "name: t\nfleet:\n  instances:\n    - name: a\n", "duration must be positive"},
		{"overflow duration", strings.Replace(minimal, "duration: 2s", "duration: 2562048h", 1), "bad duration"},
		{"duration past cap", strings.Replace(minimal, "duration: 2s", "duration: 20m", 1), "exceeds the 10m0s cap"},
		{"negative event at", minimal + "timeline:\n  - at: -1s\n    action: heal\n", "negative or missing at:"},
		{"event past duration", minimal + "timeline:\n  - at: 10s\n    action: heal\n", "past the scenario duration"},
		{"duplicate instance", "name: t\nduration: 2s\nfleet:\n  instances:\n    - name: a\n    - name: a\n", `duplicate instance name "a"`},
		{"kill undeclared instance", minimal + "timeline:\n  - at: 1s\n    action: kill\n    target: ghost\n", `references undeclared instance "ghost"`},
		{"pause undeclared workload", minimal + "timeline:\n  - at: 1s\n    action: pause\n    target: ghost\n", `references undeclared workload "ghost"`},
		{"workload on undeclared instance", strings.Replace(minimal, "instance: alpha", "instance: ghost", 1), `references undeclared instance "ghost"`},
		{"unknown namespace", strings.Replace(minimal, "ns: workflow", "ns: cosmic", 1), `unknown namespace "cosmic"`},
		{"unknown action", minimal + "timeline:\n  - at: 1s\n    action: explode\n", `unknown action "explode"`},
		{"fault with no kinds", minimal + "timeline:\n  - at: 1s\n    action: inject_fault\n", "no fault kind has a positive probability"},
		{"fault probability over one", minimal + "timeline:\n  - at: 1s\n    action: inject_fault\n    drop: 0.9\n    sever: 0.9\n", "probabilities sum to"},
		{"fault probability negative", minimal + "timeline:\n  - at: 1s\n    action: inject_fault\n    drop: -0.5\n", "probabilities must be in [0, 1]"},
		{"bad alert op", minimal + "timeline:\n  - at: 1s\n    action: alert_set\n    name: r\n    ns: workflow\n    pattern: \"a/**\"\n    op: \"!=\"\n", "op must be one of"},
		{"assert unknown type", minimal + "assertions:\n  - type: vibes\n", `unknown assertion type "vibes"`},
		{"assert undeclared rule", minimal + "assertions:\n  - type: alert_fired\n    rule: ghost\n", `references rule "ghost" that no alert_set event installs`},
		{"zero_loss on rotate workload", strings.Replace(minimal, "      rate: 10\n", "      rate: 10\n      layout: rotate\n", 1) + "assertions:\n  - type: zero_loss\n    workload: w\n", "requires a distinct-layout workload"},
		{"subscriber count zero", minimal + "  subscribers:\n    - name: s\n      instance: alpha\n      ns: workflow\n      count: 0\n", "count must be in [1, 10000]"},
		{"bad rate", strings.Replace(minimal, "rate: 10", "rate: 1000001", 1), "rate must be in"},
		{"non-numeric value", strings.Replace(minimal, "      rate: 10\n", "      rate: 10\n      value: banana\n", 1), `value must be "seq" or a number`},
		{"hostile timestamps typo", strings.Replace(minimal, "      rate: 10\n", "      rate: 10\n      timestamps: hostile!\n", 1), "unknown timestamps mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("parse accepted malformed input %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestScenarioValidateGolden pins the exact `somasim validate` rendering for
// one valid and one invalid fixture (run with -update-golden to rewrite).
func TestScenarioValidateGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range []string{"golden-valid.yaml", "golden-invalid.yaml"} {
		path := filepath.Join("testdata", name)
		sc, err := ParseFile(path)
		WriteValidation(&buf, path, sc, err)
	}
	goldenPath := filepath.Join("testdata", "validate.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("validate output diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestScenarioLibraryValid keeps every shipped scenario loadable — a library
// file that stops parsing should fail here, not in the CI matrix.
func TestScenarioLibraryValid(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".yaml" {
			continue
		}
		n++
		if _, err := ParseFile(filepath.Join(dir, e.Name())); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 6 {
		t.Errorf("scenario library has %d files, want at least 6", n)
	}
}
