package scenario

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/faults"
	"github.com/hpcobs/gosoma/internal/mercury"
)

// Mode selects how fleet instances are realized.
type Mode int

const (
	// ModeProc spawns one somad child process per instance — the full
	// cross-process deployment shape (make scenario, the CI matrix).
	ModeProc Mode = iota
	// ModeInproc runs instances as in-process core.Services listening on
	// real TCP ports — same wire, same client stack, no process spawn, so
	// scenarios run fast and under the race detector (go test, -inproc).
	ModeInproc
)

func (m Mode) String() string {
	if m == ModeInproc {
		return "inproc"
	}
	return "proc"
}

// Options configures one Run.
type Options struct {
	Mode Mode
	// SomadPath locates the somad binary for ModeProc (default "somad" on
	// PATH; make scenario passes bin/somad).
	SomadPath string
	// Seed overrides the scenario's seed when non-zero — the -seed flag.
	Seed int64
	// Log receives the human timeline log (nil = discard).
	Log io.Writer
	// Settle bounds the post-timeline grace period in which in-flight
	// retries may still complete and teardown must finish (default 10s).
	Settle time.Duration
}

// Verdict is the machine-readable outcome of one run, emitted by somasim as
// a single SCENARIO_VERDICT JSON line.
type Verdict struct {
	Scenario    string            `json:"scenario"`
	Mode        string            `json:"mode"`
	Seed        int64             `json:"seed"`
	Pass        bool              `json:"pass"`
	DurationSec float64           `json:"duration_sec"`
	Attempted   int64             `json:"publishes_attempted"`
	Acked       int64             `json:"publishes_acked"`
	BurstAcked  int64             `json:"burst_acked"`
	Updates     int64             `json:"subscriber_updates"`
	Dropped     int64             `json:"subscriber_drops"`
	Faults      faults.Counters   `json:"faults"`
	EventErrors []string          `json:"event_errors,omitempty"`
	Assertions  []AssertionResult `json:"assertions"`
}

// AssertionResult is one assertion's verdict.
type AssertionResult struct {
	Type   string `json:"type"`
	Target string `json:"target,omitempty"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// runner holds the live state of one scenario run.
type runner struct {
	sc    *Scenario
	opts  Options
	seed  int64
	log   io.Writer
	logMu sync.Mutex

	// tr is the one seeded fault transport: inject_fault events reconfigure
	// it, heal (and end-of-run auto-heal) disables it. In inproc mode it
	// also wraps the services' accepted connections, so faults hit both
	// directions of the wire exactly as in make chaos.
	tr *faults.Transport
	// faultEngine carries workload/subscriber/burst traffic through the
	// injector; cleanEngine carries the harness's own measurement traffic
	// (health probes, alert polling, ground-truth queries) so a verdict is
	// never an artifact of a faulted measurement.
	faultEngine *mercury.Engine
	cleanEngine *mercury.Engine

	instances map[string]*instanceRT
	order     []string // instance boot order (fleet file order)
	workloads map[string]*workloadRT
	subsMu    sync.Mutex
	subs      []*subGroupRT
	obs       *alertObserver

	start     time.Time
	stopIssue chan struct{} // closed at end of timeline: no new publishes
	settleCtx context.Context

	wg sync.WaitGroup // workload pumps

	evMu      sync.Mutex
	evErrs    []string
	burstWG   sync.WaitGroup
	burstAck  int64 // guarded by evMu
	burstTry  int64
	baseGoros int
}

// instanceRT is one fleet instance at runtime.
type instanceRT struct {
	spec Instance
	h    handle
	util *core.Client // clean-engine utility client (alert ops, queries)

	mu          sync.Mutex
	lastRestart time.Duration // scenario time the latest restart completed; 0 = never
}

func (in *instanceRT) restartedAt() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.lastRestart
}

// handle abstracts an instance's lifecycle across the two modes.
type handle interface {
	addr() string
	kill() error
	restart() error
	close() error
}

// simPolicy is the call policy every scenario client runs under: bounded
// attempts, retries over everything (scenario publishes are idempotent by
// construction — distinct leaves, or constant rotate values), and a breaker
// that fails fast through a kill window and re-probes its way back.
func simPolicy() *mercury.CallPolicy {
	return &mercury.CallPolicy{
		ConnectTimeout:   2 * time.Second,
		AttemptTimeout:   500 * time.Millisecond,
		MaxRetries:       4,
		Backoff:          mercury.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
		Idempotent:       func(string) bool { return true },
		FailureThreshold: 8,
		OpenFor:          100 * time.Millisecond,
	}
}

// Run executes sc and returns its verdict. The error return is reserved for
// harness failures (fleet would not boot, context cancelled); assertion
// failures are reported in the verdict, not the error.
func Run(ctx context.Context, sc *Scenario, opts Options) (*Verdict, error) {
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if opts.Settle <= 0 {
		opts.Settle = 10 * time.Second
	}
	if opts.SomadPath == "" {
		opts.SomadPath = "somad"
	}
	seed := sc.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}

	r := &runner{
		sc:        sc,
		opts:      opts,
		seed:      seed,
		log:       opts.Log,
		instances: map[string]*instanceRT{},
		workloads: map[string]*workloadRT{},
		stopIssue: make(chan struct{}),
		baseGoros: runtime.NumGoroutine(),
	}
	r.tr = faults.New(faults.Config{Seed: seed})
	r.tr.SetEnabled(false)
	r.faultEngine = mercury.NewEngine(mercury.WithInjector(r.tr))
	r.cleanEngine = mercury.NewEngine()

	v := &Verdict{Scenario: sc.Name, Mode: opts.Mode.String(), Seed: seed}
	runStart := time.Now()

	if err := r.boot(ctx); err != nil {
		r.teardown()
		return nil, fmt.Errorf("scenario %s: boot: %w", sc.Name, err)
	}

	if err := r.playTimeline(ctx); err != nil {
		r.teardown()
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	// End of timeline: heal whatever the script left injected, stop issuing
	// new publishes, and give in-flight retries a bounded settle window.
	// settleCtx is published before stopIssue closes — observing the close
	// is what licenses a pump to read it.
	r.tr.SetEnabled(false)
	r.logf("timeline done — faults healed, settling")
	settleCtx, settleCancel := context.WithTimeout(ctx, opts.Settle)
	defer settleCancel()
	r.settleCtx = settleCtx
	close(r.stopIssue)
	pumpDone := make(chan struct{})
	go func() { r.wg.Wait(); r.burstWG.Wait(); close(pumpDone) }()
	select {
	case <-pumpDone:
	case <-settleCtx.Done():
		r.eventErrf(0, "settle: workload pumps still running after %v", opts.Settle)
	}

	// Assertions against the settled fleet, then teardown, then the
	// goroutine-leak check (which needs everything closed first).
	var leak *Assertion
	for i := range sc.Asserts {
		a := &sc.Asserts[i]
		if a.Type == AssertNoLeak {
			leak = a
			continue
		}
		v.Assertions = append(v.Assertions, r.eval(a))
	}
	r.collectTotals(v)
	r.teardown()
	if leak != nil {
		v.Assertions = append(v.Assertions, r.evalNoLeak(leak))
	}

	v.Faults = r.tr.Stats()
	v.DurationSec = time.Since(runStart).Seconds()
	r.evMu.Lock()
	v.EventErrors = append([]string(nil), r.evErrs...)
	r.evMu.Unlock()
	v.Pass = len(v.EventErrors) == 0
	for _, a := range v.Assertions {
		if !a.Pass {
			v.Pass = false
		}
	}
	for _, a := range v.Assertions {
		status := "PASS"
		if !a.Pass {
			status = "FAIL"
		}
		r.logf("assert %-26s %s  %s", a.Type, status, a.Detail)
	}
	r.logf("verdict: pass=%v faults=%+v", v.Pass, v.Faults)
	return v, nil
}

// logf writes one timeline line; serialized because pumps, the observer,
// and the main loop all narrate into the same writer.
func (r *runner) logf(format string, args ...any) {
	var t float64
	if !r.start.IsZero() {
		t = time.Since(r.start).Seconds()
	}
	r.logMu.Lock()
	fmt.Fprintf(r.log, "t=%7.3fs  %s\n", t, fmt.Sprintf(format, args...))
	r.logMu.Unlock()
}

func (r *runner) since() time.Duration {
	return time.Since(r.start)
}

func (r *runner) eventErrf(line int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if line > 0 {
		msg = fmt.Sprintf("line %d: %s", line, msg)
	}
	r.evMu.Lock()
	r.evErrs = append(r.evErrs, msg)
	r.evMu.Unlock()
	r.logf("EVENT ERROR: %s", msg)
}

// boot starts instances, utility clients, the alert observer, subscriber
// groups, and workload pumps; the scenario clock starts when it returns.
func (r *runner) boot(ctx context.Context) error {
	clustered := r.sc.Fleet.Cluster
	// A proc-mode cluster member must know its peers on the command line, so
	// every address is reserved before anything boots. Inproc members join
	// after boot instead (addresses are known once Listen returns).
	var reserved []string
	if clustered && r.opts.Mode == ModeProc {
		var err error
		if reserved, err = reserveAddrs(len(r.sc.Fleet.Instances)); err != nil {
			return fmt.Errorf("reserve cluster ports: %w", err)
		}
	}
	for i, spec := range r.sc.Fleet.Instances {
		var (
			h   handle
			err error
		)
		if r.opts.Mode == ModeInproc {
			h, err = startInproc(spec, []mercury.Option{mercury.WithInjector(r.tr)})
		} else {
			listen := ""
			var extra []string
			if clustered {
				listen = reserved[i]
				extra = []string{"-id", spec.Name, "-peers", strings.Join(othersOf(reserved, i), ",")}
			}
			h, err = startProc(ctx, r.opts.SomadPath, spec, listen, extra)
		}
		if err != nil {
			return fmt.Errorf("instance %s: %w", spec.Name, err)
		}
		util, err := core.ConnectPolicy(h.addr(), r.cleanEngine, simPolicy())
		if err != nil {
			h.close()
			return fmt.Errorf("instance %s: utility client: %w", spec.Name, err)
		}
		r.instances[spec.Name] = &instanceRT{spec: spec, h: h, util: util}
		r.order = append(r.order, spec.Name)
		r.logf("boot: instance %s (%s, ranks=%d) at %s", spec.Name, r.opts.Mode, spec.Ranks, h.addr())
	}

	if clustered {
		if r.opts.Mode == ModeInproc {
			addrs := make([]string, len(r.order))
			for i, name := range r.order {
				addrs[i] = r.instances[name].h.addr()
			}
			for i, name := range r.order {
				ih := r.instances[name].h.(*inprocHandle)
				err := ih.joinCluster(core.ClusterConfig{
					SelfID:       name,
					Peers:        othersOf(addrs, i),
					PingInterval: 100 * time.Millisecond,
				})
				if err != nil {
					return fmt.Errorf("instance %s: join cluster: %w", name, err)
				}
			}
		}
		if err := r.waitClusterReady(ctx); err != nil {
			return err
		}
		r.logf("boot: cluster of %d converged", len(r.order))
	}

	// The scenario clock starts once the fleet is up: event at: offsets and
	// ack timestamps count from here. Set before any observer/pump goroutine
	// exists so they read it race-free.
	r.start = time.Now()
	r.obs = startAlertObserver(r)

	for _, g := range r.sc.Fleet.Subscribers {
		sg, err := r.openSubGroup(ctx, g.Name, g.Instance, g.NS, g.Pattern, g.Count)
		if err != nil {
			return fmt.Errorf("subscribers %s: %w", g.Name, err)
		}
		r.subsMu.Lock()
		r.subs = append(r.subs, sg)
		r.subsMu.Unlock()
		r.logf("boot: %d subscriber(s) %s on %s ns=%s", g.Count, g.Name, g.Instance, g.NS)
	}

	for i := range r.sc.Fleet.Workloads {
		w, err := startWorkload(ctx, r, r.sc.Fleet.Workloads[i])
		if err != nil {
			return fmt.Errorf("workload %s: %w", r.sc.Fleet.Workloads[i].Name, err)
		}
		r.workloads[w.spec.Name] = w
	}
	return nil
}

// playTimeline executes the sorted event script against the live fleet and
// then waits out the scenario duration.
func (r *runner) playTimeline(ctx context.Context) error {
	for _, ev := range r.sc.sortedTimeline() {
		if err := r.sleepUntil(ctx, ev.At); err != nil {
			return err
		}
		r.execute(ctx, ev)
	}
	return r.sleepUntil(ctx, r.sc.Duration)
}

func (r *runner) sleepUntil(ctx context.Context, at time.Duration) error {
	d := time.Until(r.start.Add(at))
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (r *runner) execute(ctx context.Context, ev Event) {
	switch ev.Action {
	case ActInjectFault:
		f := ev.Fault
		r.tr.Reconfigure(f.Config(r.seed))
		r.tr.SetEnabled(true)
		r.logf("inject_fault drop=%g sever=%g corrupt=%g blackhole=%g delay=%g budget=%d",
			f.Drop, f.Sever, f.Corrupt, f.Blackhole, f.Delay, f.Budget)
	case ActHeal:
		r.tr.SetEnabled(false)
		r.logf("heal — injection disabled (injected so far: %+v)", r.tr.Stats())
	case ActKill:
		in := r.instances[ev.Target]
		if err := in.h.kill(); err != nil {
			r.eventErrf(ev.Line, "kill %s: %v", ev.Target, err)
			return
		}
		r.logf("kill %s", ev.Target)
	case ActRestart:
		in := r.instances[ev.Target]
		if err := in.h.restart(); err != nil {
			r.eventErrf(ev.Line, "restart %s: %v", ev.Target, err)
			return
		}
		in.mu.Lock()
		in.lastRestart = r.since()
		in.mu.Unlock()
		r.logf("restart %s at %s", ev.Target, in.h.addr())
	case ActBurst:
		r.runBurst(ctx, ev)
	case ActHerd:
		h := ev.Herd
		sg, err := r.openSubGroup(ctx, fmt.Sprintf("herd@%v", ev.At), h.Instance, h.NS, h.Pattern, h.Count)
		if err != nil {
			r.eventErrf(ev.Line, "herd: %v", err)
			return
		}
		r.subsMu.Lock()
		r.subs = append(r.subs, sg)
		r.subsMu.Unlock()
		r.logf("herd: %d subscribers stampeded onto %s ns=%s", h.Count, h.Instance, h.NS)
	case ActAlertSet:
		in := r.eventInstance(ev.Target)
		if err := retryOp(ctx, 5, func() error { return in.util.SetAlert(*ev.Alert) }); err != nil {
			r.eventErrf(ev.Line, "alert_set %s: %v", ev.Alert.Name, err)
			return
		}
		r.logf("alert_set %s: %s %s %s %g window=%gs", ev.Alert.Name, ev.Alert.NS,
			ev.Alert.Pattern, ev.Alert.Op, ev.Alert.Threshold, ev.Alert.WindowSec)
	case ActAlertRm:
		in := r.eventInstance("")
		if err := retryOp(ctx, 5, func() error { return in.util.RemoveAlert(ev.Target) }); err != nil {
			r.eventErrf(ev.Line, "alert_rm %s: %v", ev.Target, err)
			return
		}
		r.logf("alert_rm %s", ev.Target)
	case ActPause:
		r.workloads[ev.Target].paused.Store(true)
		r.logf("pause %s", ev.Target)
	case ActResume:
		r.workloads[ev.Target].paused.Store(false)
		r.logf("resume %s", ev.Target)
	case ActSetValue:
		r.workloads[ev.Target].setValue(ev.Value)
		r.logf("set_value %s = %g", ev.Target, ev.Value)
	}
}

// othersOf returns every element of addrs except index i — instance i's
// cluster peer list.
func othersOf(addrs []string, i int) []string {
	out := make([]string, 0, len(addrs)-1)
	for j, a := range addrs {
		if j != i {
			out = append(out, a)
		}
	}
	return out
}

// waitClusterReady blocks until every instance's health report shows the
// whole fleet alive under one ring epoch — the scenario clock must not start
// while placement is still converging on the initial membership.
func (r *runner) waitClusterReady(ctx context.Context) error {
	want := len(r.order)
	deadline := time.Now().Add(15 * time.Second)
	for {
		epochs := map[uint64]bool{}
		ready := true
		for _, name := range r.order {
			rep, err := r.instances[name].util.Health()
			if err != nil || rep.ClusterAlive != want {
				ready = false
				break
			}
			epochs[rep.ClusterEpoch] = true
		}
		if ready && len(epochs) == 1 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster of %d never converged", want)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// eventInstance resolves an event's instance reference; "" means the first
// declared instance (single-instance scenarios never need to name it).
func (r *runner) eventInstance(name string) *instanceRT {
	if name == "" {
		return r.instances[r.order[0]]
	}
	return r.instances[name]
}

// retryOp retries a utility operation through transient fleet weather.
func retryOp(ctx context.Context, attempts int, op func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(50 * time.Millisecond):
		}
	}
	return err
}

func (r *runner) collectTotals(v *Verdict) {
	for _, w := range r.workloads {
		v.Attempted += w.attempted.Load()
		v.Acked += w.acked.Load()
	}
	r.subsMu.Lock()
	for _, sg := range r.subs {
		v.Updates += sg.updates.Load()
		v.Dropped += sg.droppedTotal()
	}
	r.subsMu.Unlock()
	r.evMu.Lock()
	v.BurstAcked = r.burstAck
	r.evMu.Unlock()
}

// teardown closes everything the run opened, in dependency order.
func (r *runner) teardown() {
	r.subsMu.Lock()
	subs := r.subs
	r.subs = nil
	r.subsMu.Unlock()
	for _, sg := range subs {
		sg.close()
	}
	if r.obs != nil {
		r.obs.stop()
	}
	for _, w := range r.workloads {
		w.client.Close()
	}
	for _, name := range r.order {
		in := r.instances[name]
		in.util.Close()
		in.h.close()
	}
	r.faultEngine.Close()
	r.cleanEngine.Close()
}
