package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// eval judges one assertion against the settled fleet. It runs after the
// settle window: faults are healed, pumps stopped, state quiescent.
func (r *runner) eval(a *Assertion) AssertionResult {
	switch a.Type {
	case AssertHealth:
		return r.evalHealth(a)
	case AssertZeroLoss:
		return r.evalLedger(a, false)
	case AssertGroundTruth:
		return r.evalLedger(a, true)
	case AssertFired, AssertResolved:
		return r.evalAlert(a)
	case AssertMaxDropped:
		return r.evalMaxDropped(a)
	case AssertP99Below:
		return r.evalP99Below(a)
	}
	return AssertionResult{Type: a.Type, Pass: false, Detail: "unknown assertion type"}
}

func (r *runner) evalHealth(a *Assertion) AssertionResult {
	res := AssertionResult{Type: a.Type, Target: a.Instance}
	in := r.instances[a.Instance]
	rep, err := in.util.Health()
	status := rep.Status
	if err != nil && status == "" {
		status = "unreachable"
	}
	res.Pass = status == a.Expect
	res.Detail = fmt.Sprintf("status=%s (want %s)", status, a.Expect)
	if err != nil && a.Expect != "unreachable" {
		res.Detail += fmt.Sprintf(": %v", err)
	}
	return res
}

// evalLedger checks the acknowledged-publish ledger against the service's
// merged state. zero_loss (full=false) demands every publish the service
// acknowledged since the instance's last restart is present with its exact
// value — an in-memory service legitimately forgets across a restart, so
// the ledger cutoff is the restart-completion time, but an ack issued after
// that is a durability promise for the rest of the run. ground truth
// (full=true) additionally demands the converse: every leaf the service
// reports under the workload's subtree must be one the workload issued,
// with the issued value (acked or not — a publish whose ack was eaten by a
// fault may still have landed, and that is not an error).
func (r *runner) evalLedger(a *Assertion, full bool) AssertionResult {
	res := AssertionResult{Type: a.Type, Target: a.Workload}
	var checked, missing, mismatched, foreign int
	var firstBad string

	for _, name := range r.workloadNames() {
		if a.Workload != "" && name != a.Workload {
			continue
		}
		w := r.workloads[name]
		if w.spec.Layout != LayoutDistinct {
			continue // validation restricts ledger assertions to distinct layouts
		}
		in := r.instances[w.spec.Instance]
		cutoff := in.restartedAt()
		issued, acks := w.ledger()
		root := w.spec.Prefix + "/" + w.spec.Name

		var tree *conduit.Node
		err := retryOp(context.Background(), 5, func() error {
			var qerr error
			tree, qerr = in.util.Query(w.spec.NS, root)
			return qerr
		})
		if err != nil {
			res.Detail = fmt.Sprintf("query %s/%s: %v", w.spec.NS, root, err)
			return res
		}

		for _, ack := range acks {
			if ack.at <= cutoff {
				continue // acknowledged by a pre-restart incarnation
			}
			checked++
			rel := strings.TrimPrefix(ack.path, root+"/")
			got, ok := tree.Float(rel)
			switch {
			case !ok:
				missing++
				if firstBad == "" {
					firstBad = ack.path
				}
			case got != ack.val:
				mismatched++
				if firstBad == "" {
					firstBad = fmt.Sprintf("%s=%g (want %g)", ack.path, got, ack.val)
				}
			}
		}

		if full {
			tree.Walk(func(p string, leaf *conduit.Node) bool {
				want, ok := issued[root+"/"+p]
				if !ok {
					foreign++
					if firstBad == "" {
						firstBad = "foreign leaf " + root + "/" + p
					}
					return true
				}
				if got, lok := leaf.Float(""); !lok || got != want {
					foreign++
					if firstBad == "" {
						firstBad = fmt.Sprintf("leaf %s/%s diverges from issued value %g", root, p, want)
					}
				}
				return true
			})
		}
	}

	res.Pass = missing == 0 && mismatched == 0 && foreign == 0 && checked > 0
	res.Detail = fmt.Sprintf("%d acked checked, %d missing, %d mismatched", checked, missing, mismatched)
	if full {
		res.Detail += fmt.Sprintf(", %d foreign", foreign)
	}
	if checked == 0 {
		res.Detail += " (no acked publishes to check)"
	}
	if firstBad != "" {
		res.Detail += "; first: " + firstBad
	}
	return res
}

func (r *runner) evalAlert(a *Assertion) AssertionResult {
	res := AssertionResult{Type: a.Type, Target: a.Rule}
	var (
		at   time.Duration
		seen bool
		verb string
	)
	if a.Type == AssertFired {
		at, seen = r.obs.firedAt(a.Rule)
		verb = "fired"
	} else {
		at, seen = r.obs.resolvedAt(a.Rule)
		verb = "resolved"
	}
	switch {
	case !seen:
		res.Detail = fmt.Sprintf("alert %s never observed %s", a.Rule, verb)
	case a.By > 0 && at > a.By:
		res.Detail = fmt.Sprintf("alert %s %s at t=%.3fs, after the %.3fs deadline", a.Rule, verb, at.Seconds(), a.By.Seconds())
	default:
		res.Pass = true
		res.Detail = fmt.Sprintf("alert %s %s at t=%.3fs", a.Rule, verb, at.Seconds())
	}
	return res
}

// evalP99Below reads a latency histogram from the instance's telemetry
// registry (soma.telemetry, so it works identically for in-proc and child-
// process fleets) and bounds its reconstructed p99. An empty histogram fails:
// a latency assertion over zero observations would vacuously pass exactly
// when the scenario failed to generate the load it meant to measure.
func (r *runner) evalP99Below(a *Assertion) AssertionResult {
	res := AssertionResult{Type: a.Type, Target: a.Metric}
	in := r.eventInstance(a.Instance)
	var snap *telemetry.Snapshot
	err := retryOp(context.Background(), 5, func() error {
		var terr error
		snap, terr = in.util.Telemetry()
		return terr
	})
	if err != nil {
		res.Detail = fmt.Sprintf("telemetry fetch: %v", err)
		return res
	}
	h, ok := snap.Histograms[a.Metric]
	if !ok || h.Count == 0 {
		res.Detail = fmt.Sprintf("histogram %s has no observations", a.Metric)
		return res
	}
	res.Pass = h.P99 <= a.Below
	res.Detail = fmt.Sprintf("p99=%v over %d observation(s) (bound %v)", h.P99, h.Count, a.Below)
	return res
}

func (r *runner) evalMaxDropped(a *Assertion) AssertionResult {
	res := AssertionResult{Type: a.Type}
	var total int64
	r.subsMu.Lock()
	for _, sg := range r.subs {
		total += sg.droppedTotal()
	}
	r.subsMu.Unlock()
	res.Pass = total <= a.Budget
	res.Detail = fmt.Sprintf("%d subscriber updates dropped (budget %d)", total, a.Budget)
	return res
}

// evalNoLeak runs after teardown: everything the scenario opened is closed,
// so the goroutine count must fall back to near its pre-run baseline.
// Polled because engine readers and subscription loops unwind asynchronously.
func (r *runner) evalNoLeak(a *Assertion) AssertionResult {
	res := AssertionResult{Type: a.Type}
	limit := r.baseGoros + int(a.Budget)
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	res.Pass = n <= limit
	res.Detail = fmt.Sprintf("%d goroutines after teardown (baseline %d, budget +%d)", n, r.baseGoros, a.Budget)
	return res
}

// workloadNames returns workload names in declaration order so assertion
// details are deterministic.
func (r *runner) workloadNames() []string {
	names := make([]string, 0, len(r.workloads))
	for _, w := range r.sc.Fleet.Workloads {
		if _, ok := r.workloads[w.Name]; ok {
			names = append(names, w.Name)
		}
	}
	return names
}
