// Package scenario implements the declarative scenario engine behind
// cmd/somasim: YAML fleet declarations, scripted fault timelines, and
// assertions checked against a live SOMA fleet. A scenario file declares a
// fleet (somad instances, publisher workloads, live subscribers), a timeline
// of events (fault injection via internal/faults, instance kill/restart,
// traffic bursts, alert churn), and assertions (health, zero-loss publish
// accounting, alert fired/resolved deadlines, query-vs-ground-truth
// equivalence, goroutine-leak and drop budgets) evaluated during and after
// the run. The engine drives either in-process core.Service instances
// (-inproc: fast, race-detector friendly) or real somad child processes,
// both over real TCP, through the existing client, CallPolicy, and faults
// layers. See DESIGN.md §4j.
package scenario

import (
	"fmt"
	"strings"
)

// The scenario format is a strict YAML subset parsed by the hand-rolled
// decoder below (zero dependencies, like the RFC 6455 codec in
// internal/gateway). Supported: block mappings and sequences by 2+ space
// indentation, scalar values (plain, single- or double-quoted), `#`
// comments, and an optional leading `---`. Deliberately unsupported, with
// explicit errors: tabs, flow syntax (`[a, b]` / `{a: b}`), anchors/aliases,
// multi-document streams, and block scalars (`|` / `>`). Unknown keys are
// rejected one layer up, in the schema decoder.

// yamlKind discriminates the three node shapes of the subset.
type yamlKind int

const (
	yScalar yamlKind = iota
	yMap
	yList
)

func (k yamlKind) String() string {
	switch k {
	case yScalar:
		return "scalar"
	case yMap:
		return "mapping"
	default:
		return "list"
	}
}

// yamlNode is one node of the untyped parse tree.
type yamlNode struct {
	line   int
	kind   yamlKind
	scalar string
	keys   []string // mapping keys in file order
	m      map[string]*yamlNode
	items  []*yamlNode
}

// srcLine is one significant source line: comments stripped, blanks and
// document markers skipped, indentation measured.
type srcLine struct {
	num    int
	indent int
	text   string
}

// parseYAML parses src into its untyped tree.
func parseYAML(src []byte) (*yamlNode, error) {
	lines, err := splitSource(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("line %d: top-level content must not be indented", lines[0].num)
	}
	root, next, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: content outside the document structure (bad indentation?)", lines[next].num)
	}
	return root, nil
}

// splitSource turns raw bytes into significant lines. Tabs in indentation
// are rejected outright — silent tab/space mixing is the classic YAML trap.
func splitSource(src []byte) ([]srcLine, error) {
	var out []srcLine
	for num, raw := range strings.Split(string(src), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (spaces only)", num+1)
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if text == "---" && len(out) == 0 {
			continue // optional document start marker
		}
		out = append(out, srcLine{num: num + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing `# ...` comment: a '#' outside quotes, at
// the start of the content or preceded by whitespace.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++ // skip the escaped byte
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

// parseBlock parses the block starting at lines[i], whose lines sit at
// exactly indent. It returns the node and the index of the first line it
// did not consume.
func parseBlock(lines []srcLine, i, indent int) (*yamlNode, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

func parseMap(lines []srcLine, i, indent int) (*yamlNode, int, error) {
	n := &yamlNode{line: lines[i].num, kind: yMap, m: map[string]*yamlNode{}}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, 0, fmt.Errorf("line %d: list item where a mapping key was expected", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := n.m[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		var child *yamlNode
		if rest != "" {
			sc, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, 0, err
			}
			child = sc
			i++
		} else {
			if i+1 >= len(lines) || lines[i+1].indent <= indent {
				return nil, 0, fmt.Errorf("line %d: key %q has no value", ln.num, key)
			}
			sub, next, err := parseBlock(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, 0, err
			}
			child = sub
			i = next
		}
		n.keys = append(n.keys, key)
		n.m[key] = child
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return n, i, nil
}

func parseList(lines []srcLine, i, indent int) (*yamlNode, int, error) {
	n := &yamlNode{line: lines[i].num, kind: yList}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			break // back to the enclosing mapping
		}
		if ln.text == "-" {
			return nil, 0, fmt.Errorf("line %d: bare '-' list item (write the item on the same line)", ln.num)
		}
		// The item content starts after the dash; its effective indentation
		// is the dash column plus the dash-and-spaces prefix, so follow-on
		// keys of a mapping item align under the first one.
		j := 1
		for j < len(ln.text) && ln.text[j] == ' ' {
			j++
		}
		rest := ln.text[j:]
		childIndent := indent + j
		if isMappingStart(rest) {
			// Re-thread the first key through parseMap by rewriting this
			// line as if it sat at the item's content indentation.
			rewritten := make([]srcLine, len(lines))
			copy(rewritten, lines)
			rewritten[i] = srcLine{num: ln.num, indent: childIndent, text: rest}
			item, next, err := parseMap(rewritten, i, childIndent)
			if err != nil {
				return nil, 0, err
			}
			n.items = append(n.items, item)
			i = next
			continue
		}
		sc, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, 0, err
		}
		n.items = append(n.items, sc)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, 0, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return n, i, nil
}

// isMappingStart reports whether a list item's content begins a mapping
// (`key: value` or `key:`) rather than a plain scalar.
func isMappingStart(s string) bool {
	if s == "" || s[0] == '"' || s[0] == '\'' {
		return false
	}
	c := strings.IndexByte(s, ':')
	if c <= 0 {
		return false
	}
	return c == len(s)-1 || s[c+1] == ' '
}

// splitKey splits `key: value` / `key:` and validates the key.
func splitKey(ln srcLine) (key, rest string, err error) {
	c := strings.IndexByte(ln.text, ':')
	if c <= 0 {
		return "", "", fmt.Errorf("line %d: expected `key: value`, got %q", ln.num, ln.text)
	}
	key = ln.text[:c]
	if strings.ContainsAny(key, " \"'") {
		return "", "", fmt.Errorf("line %d: malformed key %q", ln.num, key)
	}
	rest = ln.text[c+1:]
	if rest != "" {
		if rest[0] != ' ' {
			return "", "", fmt.Errorf("line %d: missing space after ':' in %q", ln.num, ln.text)
		}
		rest = strings.TrimLeft(rest, " ")
	}
	return key, rest, nil
}

// parseScalar parses one scalar value: plain, or single/double quoted.
func parseScalar(s string, num int) (*yamlNode, error) {
	switch s[0] {
	case '[', '{':
		return nil, fmt.Errorf("line %d: flow syntax (%q) is not supported; use block form", num, s)
	case '&', '*':
		return nil, fmt.Errorf("line %d: anchors/aliases (%q) are not supported", num, s)
	case '|', '>':
		return nil, fmt.Errorf("line %d: block scalars (%q) are not supported", num, s)
	case '"':
		v, rest, err := unquoteDouble(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", num, err)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("line %d: trailing content %q after quoted string", num, rest)
		}
		return &yamlNode{line: num, kind: yScalar, scalar: v}, nil
	case '\'':
		end := strings.IndexByte(s[1:], '\'')
		if end < 0 {
			return nil, fmt.Errorf("line %d: unterminated single-quoted string", num)
		}
		if strings.TrimSpace(s[end+2:]) != "" {
			return nil, fmt.Errorf("line %d: trailing content %q after quoted string", num, s[end+2:])
		}
		return &yamlNode{line: num, kind: yScalar, scalar: s[1 : end+1]}, nil
	}
	return &yamlNode{line: num, kind: yScalar, scalar: s}, nil
}

func unquoteDouble(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated double-quoted string")
}
