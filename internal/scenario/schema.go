package scenario

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/faults"
)

// ---------------------------------------------------------------------------
// Scenario schema. Every struct below maps one-to-one onto a block of the
// YAML file; the decoder is strict — unknown keys, wrong shapes, and
// dangling references are errors, never warnings, so `somasim validate`
// catches a typo'd scenario before a fleet ever boots.

// Scenario is one declarative run: a fleet, a timeline, and assertions.
type Scenario struct {
	Name        string
	Description string
	// Seed drives the fault-injection PRNG (and is echoed in the verdict);
	// the -seed flag overrides it. Same seed, same fault decision stream.
	Seed int64
	// Duration is the total run length; events must fit inside it.
	Duration time.Duration
	Fleet    Fleet
	Timeline []Event
	Asserts  []Assertion
}

// Fleet declares what to boot before the timeline starts.
type Fleet struct {
	// Cluster joins every instance into one sharded SOMA cluster
	// (consistent-hash placement, scatter-gather reads) before the scenario
	// clock starts. Requires at least two instances.
	Cluster     bool
	Instances   []Instance
	Workloads   []Workload
	Subscribers []SubscriberGroup
}

// Instance is one somad service (an in-proc core.Service or a real child
// process, per run mode).
type Instance struct {
	Name  string
	Ranks int // SOMA ranks per namespace instance (default 1)
	Line  int
}

// Workload layouts: how publish paths are laid out under the workload's
// prefix.
const (
	// LayoutDistinct publishes every sample to its own leaf
	// (<prefix>/<name>/p<seq>), value = seq — the layout zero-loss and
	// ground-truth assertions account against (nothing can hide behind
	// last-writer-wins).
	LayoutDistinct = "distinct"
	// LayoutRotate cycles over a fixed set of leaves
	// (<prefix>/<name>/l<seq mod leaves>) — the layout that feeds rollup
	// series and threshold alerts.
	LayoutRotate = "rotate"
)

// Timestamp modes: what timestamp segment, if any, a workload appends to
// each leaf path (the rollup engine folds a trailing numeric segment out as
// the sample time).
const (
	TimestampsNone = "none" // no segment; samples stamped with arrival time
	TimestampsNow  = "now"  // wall-clock seconds
	// TimestampsHostile cycles implausible values (negative, > 1e15, huge
	// exponents) that must stay in the series key rather than poison the
	// rollup rings — the PR 3 hardening, exercised at rate.
	TimestampsHostile = "hostile"
	// TimestampsSkew alternates wall clock ± 1h — plausible values that
	// land far outside the live rollup windows.
	TimestampsSkew = "skew"
)

// Workload is one scripted publisher: paths under Prefix/Name into NS on
// Instance, Rate publishes per second. Publishes that fail are retried
// until acknowledged (the scenario clock keeps running), so the zero-loss
// ledger records exactly what the service accepted.
type Workload struct {
	Name       string
	Instance   string
	NS         core.Namespace
	Prefix     string
	Rate       float64 // publishes per second
	Layout     string  // distinct | rotate
	Leaves     int     // rotate: number of leaf slots
	Value      string  // "seq" or a constant number (set_value retargets it)
	Timestamps string  // none | now | hostile | skew
	Start      time.Duration
	Line       int
}

// SubscriberGroup is Count live update-bus subscribers attached from fleet
// start — the "live WS subscribers" a kill/restart must not strand. Their
// server-side high-water drops feed the max_dropped budget.
type SubscriberGroup struct {
	Name     string
	Instance string
	NS       core.Namespace
	Pattern  string
	Count    int
	Line     int
}

// Timeline actions.
const (
	ActInjectFault = "inject_fault"
	ActHeal        = "heal"
	ActKill        = "kill"
	ActRestart     = "restart"
	ActBurst       = "burst"
	ActHerd        = "herd"
	ActAlertSet    = "alert_set"
	ActAlertRm     = "alert_rm"
	ActPause       = "pause"
	ActResume      = "resume"
	ActSetValue    = "set_value"
)

// Event is one timeline entry, executed at its offset from scenario start.
type Event struct {
	At     time.Duration
	Action string
	Target string // kill/restart: instance; pause/resume/set_value: workload; alert_rm: rule
	Line   int

	Fault *FaultParams    // inject_fault
	Burst *BurstParams    // burst
	Herd  *HerdParams     // herd
	Alert *core.AlertRule // alert_set
	Value float64         // set_value
}

// FaultParams scripts one inject_fault event: per-frame probabilities by
// kind, delay bounds, and an optional budget after which the transport goes
// quiet on its own (guaranteed heal without a heal event).
type FaultParams struct {
	Drop, Sever, Corrupt, Blackhole, Delay float64
	DelayMin, DelayMax                     time.Duration
	Budget                                 int64
}

// Config lowers the scripted parameters onto the faults layer.
func (f *FaultParams) Config(seed int64) faults.Config {
	return faults.Config{
		Seed:          seed,
		DropProb:      f.Drop,
		SeverProb:     f.Sever,
		CorruptProb:   f.Corrupt,
		BlackholeProb: f.Blackhole,
		DelayProb:     f.Delay,
		DelayMin:      f.DelayMin,
		DelayMax:      f.DelayMax,
		Budget:        f.Budget,
	}
}

// BurstParams scripts a best-effort publish burst (adversity traffic; not
// part of the zero-loss ledger).
type BurstParams struct {
	Instance    string
	NS          core.Namespace
	Prefix      string
	Count       int
	Concurrency int
}

// HerdParams scripts a thundering herd: Count subscriptions opened
// concurrently at one instant, held until scenario end.
type HerdParams struct {
	Instance string
	NS       core.Namespace
	Pattern  string
	Count    int
}

// Assertion types.
const (
	AssertHealth      = "health"
	AssertZeroLoss    = "zero_loss"
	AssertGroundTruth = "query_matches_ground_truth"
	AssertFired       = "alert_fired"
	AssertResolved    = "alert_resolved"
	AssertMaxDropped  = "max_dropped"
	AssertNoLeak      = "no_goroutine_leak"
	AssertP99Below    = "p99_below"
)

// Assertion is one verdict clause, evaluated at end of run (alert deadlines
// are judged against observations collected during it).
type Assertion struct {
	Type     string
	Instance string        // health / p99_below ("" = first instance)
	Expect   string        // health: ok | stopped | unreachable
	Workload string        // zero_loss / ground truth: restrict to one workload
	Rule     string        // alert_fired / alert_resolved
	By       time.Duration // alert deadline (scenario time; 0 = any time)
	Budget   int64         // max_dropped / no_goroutine_leak
	Metric   string        // p99_below: telemetry histogram name
	Below    time.Duration // p99_below: required p99 upper bound
	Line     int
}

// ---------------------------------------------------------------------------
// Strict decoding.

// Parse decodes and validates one scenario document.
func Parse(src []byte) (*Scenario, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	dc := &decoder{}
	sc := dc.scenario(root)
	if err := dc.err(); err != nil {
		return nil, err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ParseFile is Parse over a file.
func ParseFile(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(src)
}

// decoder accumulates structural errors so one validate pass reports every
// problem, not just the first.
type decoder struct{ errs []error }

func (dc *decoder) errf(line int, format string, args ...any) {
	dc.errs = append(dc.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (dc *decoder) err() error { return errors.Join(dc.errs...) }

// dict wraps a mapping node and tracks which keys the schema consumed.
type dict struct {
	n    *yamlNode
	used map[string]bool
}

func (dc *decoder) dict(n *yamlNode, what string) *dict {
	if n == nil {
		return nil
	}
	if n.kind != yMap {
		dc.errf(n.line, "%s must be a mapping, got a %s", what, n.kind)
		return nil
	}
	return &dict{n: n, used: map[string]bool{}}
}

// done flags every unconsumed key as unknown.
func (dc *decoder) done(d *dict, what string) {
	if d == nil {
		return
	}
	for _, k := range d.n.keys {
		if !d.used[k] {
			dc.errf(d.n.m[k].line, "unknown %s key %q", what, k)
		}
	}
}

func (d *dict) get(key string) *yamlNode {
	if d == nil {
		return nil
	}
	d.used[key] = true
	return d.n.m[key]
}

func (dc *decoder) str(d *dict, key, def string) string {
	n := d.get(key)
	if n == nil {
		return def
	}
	if n.kind != yScalar {
		dc.errf(n.line, "%q must be a scalar, got a %s", key, n.kind)
		return def
	}
	return n.scalar
}

func (dc *decoder) f64(d *dict, key string, def float64) float64 {
	n := d.get(key)
	if n == nil {
		return def
	}
	if n.kind != yScalar {
		dc.errf(n.line, "%q must be a number, got a %s", key, n.kind)
		return def
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		dc.errf(n.line, "%q: bad number %q", key, n.scalar)
		return def
	}
	return v
}

func (dc *decoder) i64(d *dict, key string, def int64) int64 {
	n := d.get(key)
	if n == nil {
		return def
	}
	if n.kind != yScalar {
		dc.errf(n.line, "%q must be an integer, got a %s", key, n.kind)
		return def
	}
	v, err := strconv.ParseInt(n.scalar, 10, 64)
	if err != nil {
		dc.errf(n.line, "%q: bad integer %q (%v)", key, n.scalar, unwrapNum(err))
		return def
	}
	return v
}

func (dc *decoder) boolean(d *dict, key string, def bool) bool {
	n := d.get(key)
	if n == nil {
		return def
	}
	if n.kind != yScalar {
		dc.errf(n.line, "%q must be a boolean, got a %s", key, n.kind)
		return def
	}
	v, err := strconv.ParseBool(n.scalar)
	if err != nil {
		dc.errf(n.line, "%q: bad boolean %q (want true or false)", key, n.scalar)
		return def
	}
	return v
}

func (dc *decoder) dur(d *dict, key string, def time.Duration) time.Duration {
	n := d.get(key)
	if n == nil {
		return def
	}
	if n.kind != yScalar {
		dc.errf(n.line, "%q must be a duration, got a %s", key, n.kind)
		return def
	}
	v, err := time.ParseDuration(n.scalar)
	if err != nil {
		dc.errf(n.line, "%q: bad duration %q (want e.g. 500ms, 3s)", key, n.scalar)
		return def
	}
	return v
}

func (dc *decoder) list(d *dict, key string) []*yamlNode {
	n := d.get(key)
	if n == nil {
		return nil
	}
	if n.kind != yList {
		dc.errf(n.line, "%q must be a list, got a %s", key, n.kind)
		return nil
	}
	return n.items
}

// unwrapNum strips the strconv wrapper for terser messages.
func unwrapNum(err error) string {
	var ne *strconv.NumError
	if errors.As(err, &ne) {
		return ne.Err.Error()
	}
	return err.Error()
}

func (dc *decoder) scenario(root *yamlNode) *Scenario {
	d := dc.dict(root, "scenario")
	if d == nil {
		return &Scenario{}
	}
	sc := &Scenario{
		Name:        dc.str(d, "name", ""),
		Description: dc.str(d, "description", ""),
		Seed:        dc.i64(d, "seed", 1),
		Duration:    dc.dur(d, "duration", 0),
	}
	if fn := d.get("fleet"); fn != nil {
		sc.Fleet = dc.fleet(fn)
	} else {
		dc.errf(root.line, "missing required section %q", "fleet")
	}
	for _, it := range dc.list(d, "timeline") {
		sc.Timeline = append(sc.Timeline, dc.event(it))
	}
	for _, it := range dc.list(d, "assertions") {
		sc.Asserts = append(sc.Asserts, dc.assertion(it))
	}
	dc.done(d, "scenario")
	return sc
}

func (dc *decoder) fleet(n *yamlNode) Fleet {
	d := dc.dict(n, "fleet")
	var f Fleet
	f.Cluster = dc.boolean(d, "cluster", false)
	for _, it := range dc.list(d, "instances") {
		id := dc.dict(it, "instance")
		if id == nil {
			continue
		}
		f.Instances = append(f.Instances, Instance{
			Name:  dc.str(id, "name", ""),
			Ranks: int(dc.i64(id, "ranks", 1)),
			Line:  it.line,
		})
		dc.done(id, "instance")
	}
	for _, it := range dc.list(d, "workloads") {
		wd := dc.dict(it, "workload")
		if wd == nil {
			continue
		}
		f.Workloads = append(f.Workloads, Workload{
			Name:       dc.str(wd, "name", ""),
			Instance:   dc.str(wd, "instance", ""),
			NS:         core.Namespace(dc.str(wd, "ns", "")),
			Prefix:     dc.str(wd, "prefix", "sim"),
			Rate:       dc.f64(wd, "rate", 0),
			Layout:     dc.str(wd, "layout", LayoutDistinct),
			Leaves:     int(dc.i64(wd, "leaves", 16)),
			Value:      dc.str(wd, "value", "seq"),
			Timestamps: dc.str(wd, "timestamps", TimestampsNone),
			Start:      dc.dur(wd, "start", 0),
			Line:       it.line,
		})
		dc.done(wd, "workload")
	}
	for _, it := range dc.list(d, "subscribers") {
		sd := dc.dict(it, "subscriber")
		if sd == nil {
			continue
		}
		f.Subscribers = append(f.Subscribers, SubscriberGroup{
			Name:     dc.str(sd, "name", ""),
			Instance: dc.str(sd, "instance", ""),
			NS:       core.Namespace(dc.str(sd, "ns", "")),
			Pattern:  dc.str(sd, "pattern", ""),
			Count:    int(dc.i64(sd, "count", 1)),
			Line:     it.line,
		})
		dc.done(sd, "subscriber")
	}
	dc.done(d, "fleet")
	return f
}

func (dc *decoder) event(n *yamlNode) Event {
	d := dc.dict(n, "event")
	if d == nil {
		return Event{Line: n.line}
	}
	ev := Event{
		At:     dc.dur(d, "at", -1),
		Action: dc.str(d, "action", ""),
		Line:   n.line,
	}
	switch ev.Action {
	case ActInjectFault:
		ev.Fault = &FaultParams{
			Drop:      dc.f64(d, "drop", 0),
			Sever:     dc.f64(d, "sever", 0),
			Corrupt:   dc.f64(d, "corrupt", 0),
			Blackhole: dc.f64(d, "blackhole", 0),
			Delay:     dc.f64(d, "delay", 0),
			DelayMin:  dc.dur(d, "delay_min", time.Millisecond),
			DelayMax:  dc.dur(d, "delay_max", 10*time.Millisecond),
			Budget:    dc.i64(d, "budget", 0),
		}
	case ActHeal:
		// no parameters
	case ActKill, ActRestart, ActPause, ActResume, ActAlertRm:
		ev.Target = dc.str(d, "target", "")
	case ActSetValue:
		ev.Target = dc.str(d, "target", "")
		ev.Value = dc.f64(d, "value", 0)
	case ActBurst:
		ev.Burst = &BurstParams{
			Instance:    dc.str(d, "instance", ""),
			NS:          core.Namespace(dc.str(d, "ns", "")),
			Prefix:      dc.str(d, "prefix", "burst"),
			Count:       int(dc.i64(d, "count", 0)),
			Concurrency: int(dc.i64(d, "concurrency", 4)),
		}
	case ActHerd:
		ev.Herd = &HerdParams{
			Instance: dc.str(d, "instance", ""),
			NS:       core.Namespace(dc.str(d, "ns", "")),
			Pattern:  dc.str(d, "pattern", ""),
			Count:    int(dc.i64(d, "count", 0)),
		}
	case ActAlertSet:
		ev.Alert = &core.AlertRule{
			Name:      dc.str(d, "name", ""),
			NS:        core.Namespace(dc.str(d, "ns", "")),
			Pattern:   dc.str(d, "pattern", ""),
			Op:        dc.str(d, "op", ""),
			Threshold: dc.f64(d, "threshold", 0),
			WindowSec: dc.dur(d, "window", time.Second).Seconds(),
			Severity:  dc.str(d, "severity", ""),
		}
	case "":
		dc.errf(n.line, "event missing %q", "action")
	default:
		dc.errf(n.line, "unknown action %q", ev.Action)
	}
	dc.done(d, fmt.Sprintf("%s event", ev.Action))
	return ev
}

func (dc *decoder) assertion(n *yamlNode) Assertion {
	d := dc.dict(n, "assertion")
	if d == nil {
		return Assertion{Line: n.line}
	}
	a := Assertion{Type: dc.str(d, "type", ""), Line: n.line}
	switch a.Type {
	case AssertHealth:
		a.Instance = dc.str(d, "instance", "")
		a.Expect = dc.str(d, "expect", "ok")
	case AssertZeroLoss, AssertGroundTruth:
		a.Workload = dc.str(d, "workload", "")
	case AssertFired, AssertResolved:
		a.Rule = dc.str(d, "rule", "")
		a.By = dc.dur(d, "by", 0)
	case AssertMaxDropped:
		a.Budget = dc.i64(d, "budget", 0)
	case AssertNoLeak:
		a.Budget = dc.i64(d, "budget", 24)
	case AssertP99Below:
		a.Instance = dc.str(d, "instance", "")
		a.Metric = dc.str(d, "metric", "")
		a.Below = dc.dur(d, "below", 0)
	case "":
		dc.errf(n.line, "assertion missing %q", "type")
	default:
		dc.errf(n.line, "unknown assertion type %q", a.Type)
	}
	dc.done(d, fmt.Sprintf("%s assertion", a.Type))
	return a
}

// ---------------------------------------------------------------------------
// Validation (cross-references, ranges).

// maxDuration caps a scenario so an overflowed or absurd duration cannot
// turn a CI job into a soak.
const maxDuration = 10 * time.Minute

func (sc *Scenario) validate() error {
	var errs []error
	ef := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	if sc.Name == "" {
		errs = append(errs, errors.New("scenario: missing name"))
	}
	if sc.Duration <= 0 {
		errs = append(errs, fmt.Errorf("scenario %q: duration must be positive, got %v", sc.Name, sc.Duration))
	} else if sc.Duration > maxDuration {
		errs = append(errs, fmt.Errorf("scenario %q: duration %v exceeds the %v cap", sc.Name, sc.Duration, maxDuration))
	}

	if len(sc.Fleet.Instances) == 0 {
		errs = append(errs, fmt.Errorf("scenario %q: empty fleet (declare at least one instance)", sc.Name))
	}
	if sc.Fleet.Cluster && len(sc.Fleet.Instances) < 2 {
		errs = append(errs, fmt.Errorf("scenario %q: cluster: true needs at least two instances", sc.Name))
	}
	instances := map[string]bool{}
	for _, in := range sc.Fleet.Instances {
		switch {
		case in.Name == "":
			ef(in.Line, "instance missing name")
		case instances[in.Name]:
			ef(in.Line, "duplicate instance name %q", in.Name)
		default:
			instances[in.Name] = true
		}
		if in.Ranks < 1 || in.Ranks > 64 {
			ef(in.Line, "instance %q: ranks must be in [1, 64], got %d", in.Name, in.Ranks)
		}
	}

	workloads := map[string]*Workload{}
	for i := range sc.Fleet.Workloads {
		w := &sc.Fleet.Workloads[i]
		switch {
		case w.Name == "":
			ef(w.Line, "workload missing name")
		case workloads[w.Name] != nil:
			ef(w.Line, "duplicate workload name %q", w.Name)
		default:
			workloads[w.Name] = w
		}
		if !instances[w.Instance] {
			ef(w.Line, "workload %q references undeclared instance %q", w.Name, w.Instance)
		}
		if !w.NS.Valid() {
			ef(w.Line, "workload %q: unknown namespace %q", w.Name, w.NS)
		}
		if w.Rate <= 0 || w.Rate > 100000 {
			ef(w.Line, "workload %q: rate must be in (0, 100000] publishes/sec, got %g", w.Name, w.Rate)
		}
		if w.Layout != LayoutDistinct && w.Layout != LayoutRotate {
			ef(w.Line, "workload %q: layout must be %q or %q, got %q", w.Name, LayoutDistinct, LayoutRotate, w.Layout)
		}
		if w.Leaves < 1 || w.Leaves > 65536 {
			ef(w.Line, "workload %q: leaves must be in [1, 65536], got %d", w.Name, w.Leaves)
		}
		if w.Value != "seq" {
			if _, err := strconv.ParseFloat(w.Value, 64); err != nil {
				ef(w.Line, "workload %q: value must be %q or a number, got %q", w.Name, "seq", w.Value)
			}
		}
		switch w.Timestamps {
		case TimestampsNone, TimestampsNow, TimestampsHostile, TimestampsSkew:
		default:
			ef(w.Line, "workload %q: unknown timestamps mode %q", w.Name, w.Timestamps)
		}
		if w.Start < 0 || w.Start > sc.Duration {
			ef(w.Line, "workload %q: start %v outside [0, %v]", w.Name, w.Start, sc.Duration)
		}
	}

	subs := map[string]bool{}
	for _, g := range sc.Fleet.Subscribers {
		switch {
		case g.Name == "":
			ef(g.Line, "subscriber group missing name")
		case subs[g.Name]:
			ef(g.Line, "duplicate subscriber group name %q", g.Name)
		default:
			subs[g.Name] = true
		}
		if !instances[g.Instance] {
			ef(g.Line, "subscriber group %q references undeclared instance %q", g.Name, g.Instance)
		}
		if !g.NS.Valid() && g.NS != core.NSAlerts && g.NS != "" {
			ef(g.Line, "subscriber group %q: unknown namespace %q", g.Name, g.NS)
		}
		if g.Count < 1 || g.Count > 10000 {
			ef(g.Line, "subscriber group %q: count must be in [1, 10000], got %d", g.Name, g.Count)
		}
	}

	rules := map[string]bool{}
	for i := range sc.Timeline {
		ev := &sc.Timeline[i]
		if ev.At < 0 {
			ef(ev.Line, "event %s: negative or missing at: offset", ev.Action)
		} else if ev.At > sc.Duration {
			ef(ev.Line, "event %s: at %v is past the scenario duration %v", ev.Action, ev.At, sc.Duration)
		}
		switch ev.Action {
		case ActKill, ActRestart:
			if !instances[ev.Target] {
				ef(ev.Line, "event %s references undeclared instance %q", ev.Action, ev.Target)
			}
		case ActPause, ActResume, ActSetValue:
			if workloads[ev.Target] == nil {
				ef(ev.Line, "event %s references undeclared workload %q", ev.Action, ev.Target)
			}
		case ActInjectFault:
			f := ev.Fault
			total := f.Drop + f.Sever + f.Corrupt + f.Blackhole + f.Delay
			for _, p := range []float64{f.Drop, f.Sever, f.Corrupt, f.Blackhole, f.Delay} {
				if p < 0 || p > 1 {
					ef(ev.Line, "inject_fault: probabilities must be in [0, 1]")
					break
				}
			}
			if total <= 0 {
				ef(ev.Line, "inject_fault: no fault kind has a positive probability")
			} else if total > 1 {
				ef(ev.Line, "inject_fault: probabilities sum to %.3g > 1", total)
			}
			if f.DelayMin < 0 || f.DelayMax < f.DelayMin {
				ef(ev.Line, "inject_fault: need 0 <= delay_min <= delay_max")
			}
			if f.Budget < 0 {
				ef(ev.Line, "inject_fault: negative budget")
			}
		case ActBurst:
			b := ev.Burst
			if !instances[b.Instance] {
				ef(ev.Line, "burst references undeclared instance %q", b.Instance)
			}
			if !b.NS.Valid() {
				ef(ev.Line, "burst: unknown namespace %q", b.NS)
			}
			if b.Count < 1 || b.Count > 1000000 {
				ef(ev.Line, "burst: count must be in [1, 1000000], got %d", b.Count)
			}
			if b.Concurrency < 1 || b.Concurrency > 256 {
				ef(ev.Line, "burst: concurrency must be in [1, 256], got %d", b.Concurrency)
			}
		case ActHerd:
			h := ev.Herd
			if !instances[h.Instance] {
				ef(ev.Line, "herd references undeclared instance %q", h.Instance)
			}
			if !h.NS.Valid() && h.NS != core.NSAlerts && h.NS != "" {
				ef(ev.Line, "herd: unknown namespace %q", h.NS)
			}
			if h.Count < 1 || h.Count > 10000 {
				ef(ev.Line, "herd: count must be in [1, 10000], got %d", h.Count)
			}
		case ActAlertSet:
			r := ev.Alert
			if r.Name == "" {
				ef(ev.Line, "alert_set missing rule name")
			}
			if !r.NS.Valid() {
				ef(ev.Line, "alert_set %q: unknown namespace %q", r.Name, r.NS)
			}
			if r.Pattern == "" {
				ef(ev.Line, "alert_set %q: missing pattern", r.Name)
			}
			switch r.Op {
			case ">", "<", ">=", "<=":
			default:
				ef(ev.Line, "alert_set %q: op must be one of > < >= <=, got %q", r.Name, r.Op)
			}
			rules[r.Name] = true
		case ActAlertRm:
			if ev.Target == "" {
				ef(ev.Line, "alert_rm missing target rule name")
			}
		}
	}

	for i := range sc.Asserts {
		a := &sc.Asserts[i]
		switch a.Type {
		case AssertHealth:
			if !instances[a.Instance] {
				ef(a.Line, "health assertion references undeclared instance %q", a.Instance)
			}
			switch a.Expect {
			case "ok", "stopped", "unreachable":
			default:
				ef(a.Line, "health assertion: expect must be ok, stopped or unreachable, got %q", a.Expect)
			}
		case AssertZeroLoss, AssertGroundTruth:
			if a.Workload != "" {
				w := workloads[a.Workload]
				if w == nil {
					ef(a.Line, "%s references undeclared workload %q", a.Type, a.Workload)
				} else if w.Layout != LayoutDistinct {
					ef(a.Line, "%s requires a %s-layout workload, %q is %s", a.Type, LayoutDistinct, a.Workload, w.Layout)
				}
			} else {
				distinct := 0
				for _, w := range sc.Fleet.Workloads {
					if w.Layout == LayoutDistinct {
						distinct++
					}
				}
				if distinct == 0 {
					ef(a.Line, "%s needs at least one %s-layout workload", a.Type, LayoutDistinct)
				}
			}
		case AssertFired, AssertResolved:
			if a.Rule == "" {
				ef(a.Line, "%s missing rule name", a.Type)
			} else if !rules[a.Rule] {
				ef(a.Line, "%s references rule %q that no alert_set event installs", a.Type, a.Rule)
			}
			if a.By < 0 || a.By > sc.Duration {
				ef(a.Line, "%s: by %v outside (0, %v]", a.Type, a.By, sc.Duration)
			}
		case AssertMaxDropped, AssertNoLeak:
			if a.Budget < 0 {
				ef(a.Line, "%s: negative budget", a.Type)
			}
		case AssertP99Below:
			if a.Metric == "" {
				ef(a.Line, "p99_below missing metric (a telemetry histogram name)")
			}
			if a.Below <= 0 {
				ef(a.Line, "p99_below: below must be a positive duration, got %v", a.Below)
			}
			if a.Instance != "" && !instances[a.Instance] {
				ef(a.Line, "p99_below references undeclared instance %q", a.Instance)
			}
		}
	}
	return errors.Join(errs...)
}

// sortedTimeline returns the events ordered by At (stable, so same-instant
// events keep file order).
func (sc *Scenario) sortedTimeline() []Event {
	evs := append([]Event(nil), sc.Timeline...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ---------------------------------------------------------------------------
// `somasim validate` output.

// WriteValidation renders the validate verdict for one file — the fleet
// shape on success, every collected error on failure. Returns whether the
// scenario is valid.
func WriteValidation(w io.Writer, path string, sc *Scenario, err error) bool {
	if err != nil {
		fmt.Fprintf(w, "somasim: INVALID %s\n", path)
		for _, line := range strings.Split(err.Error(), "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
		return false
	}
	fmt.Fprintf(w, "somasim: OK %s\n", path)
	fmt.Fprintf(w, "  scenario: %s — %s\n", sc.Name, sc.Description)
	subs := 0
	for _, g := range sc.Fleet.Subscribers {
		subs += g.Count
	}
	shape := ""
	if sc.Fleet.Cluster {
		shape = ", clustered"
	}
	fmt.Fprintf(w, "  fleet: %d instance(s)%s, %d workload(s), %d subscriber(s)\n",
		len(sc.Fleet.Instances), shape, len(sc.Fleet.Workloads), subs)
	fmt.Fprintf(w, "  timeline: %d event(s) over %v (seed %d)\n", len(sc.Timeline), sc.Duration, sc.Seed)
	fmt.Fprintf(w, "  assertions: %d\n", len(sc.Asserts))
	return true
}
