package scenario

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

func runFile(t *testing.T, path string) *Verdict {
	t.Helper()
	sc, err := ParseFile(path)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	v, err := Run(ctx, sc, Options{Mode: ModeInproc, Log: testLogWriter{t}, Settle: 15 * time.Second})
	if err != nil {
		t.Fatalf("run %s: %v", path, err)
	}
	return v
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func assertion(t *testing.T, v *Verdict, typ string) AssertionResult {
	t.Helper()
	for _, a := range v.Assertions {
		if a.Type == typ {
			return a
		}
	}
	t.Fatalf("verdict has no %s assertion: %+v", typ, v.Assertions)
	return AssertionResult{}
}

// TestScenarioKillRestartInproc is the end-to-end engine test: the shipped
// kill-restart scenario (live subscribers, alert fire -> resolve round-trip,
// instance kill and same-port restart) must come back green, with the
// zero-loss ledger checked against post-restart acknowledgements and the
// alert resolution observed before the kill wipes the rules.
func TestScenarioKillRestartInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet scenario")
	}
	v := runFile(t, filepath.Join("..", "..", "scenarios", "kill-restart.yaml"))
	if !v.Pass {
		t.Fatalf("kill-restart verdict failed: %+v", v)
	}
	if len(v.EventErrors) != 0 {
		t.Fatalf("event errors: %v", v.EventErrors)
	}
	zl := assertion(t, v, AssertZeroLoss)
	if !zl.Pass {
		t.Errorf("zero_loss failed: %s", zl.Detail)
	}
	res := assertion(t, v, AssertResolved)
	if !res.Pass {
		t.Errorf("alert_resolved failed: %s", res.Detail)
	}
	if v.Acked == 0 || v.Updates == 0 {
		t.Errorf("scenario moved no traffic: acked=%d updates=%d", v.Acked, v.Updates)
	}
}

// TestScenarioClusterRebalanceInproc runs the shipped 3-instance sharded
// fleet scenario: consistent-hash placement, two sever storms (the second
// mid-rebalance), then zero-loss and ground-truth checks over scattered
// reads from every instance.
func TestScenarioClusterRebalanceInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet scenario")
	}
	v := runFile(t, filepath.Join("..", "..", "scenarios", "cluster-rebalance.yaml"))
	if !v.Pass {
		t.Fatalf("cluster-rebalance verdict failed: %+v", v)
	}
	if len(v.EventErrors) != 0 {
		t.Fatalf("event errors: %v", v.EventErrors)
	}
	zl := assertion(t, v, AssertZeroLoss)
	if !zl.Pass {
		t.Errorf("zero_loss failed: %s", zl.Detail)
	}
	gt := assertion(t, v, AssertGroundTruth)
	if !gt.Pass {
		t.Errorf("query_matches_ground_truth failed: %s", gt.Detail)
	}
	if v.Acked == 0 {
		t.Errorf("scenario moved no traffic: acked=%d", v.Acked)
	}
	if v.Faults.Severs == 0 {
		t.Errorf("storm injected no severs (faults=%+v); the scenario proved nothing", v.Faults)
	}
}

// TestScenarioBrokenAssertGoesRed proves the harness can fail: a fixture
// asserting an alert that can never fire must produce pass=false with the
// alert_fired clause as the culprit, while its satisfiable zero_loss clause
// still passes. A scenario engine whose verdicts cannot go red proves
// nothing when they are green.
func TestScenarioBrokenAssertGoesRed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet scenario")
	}
	v := runFile(t, filepath.Join("testdata", "broken-assert.yaml"))
	if v.Pass {
		t.Fatalf("broken-assert verdict passed; the harness cannot fail")
	}
	fired := assertion(t, v, AssertFired)
	if fired.Pass {
		t.Errorf("alert_fired passed for a rule that can never fire: %s", fired.Detail)
	}
	zl := assertion(t, v, AssertZeroLoss)
	if !zl.Pass {
		t.Errorf("zero_loss should still pass in the broken fixture: %s", zl.Detail)
	}
}

// TestScenarioSeedDeterminism pins the reproducibility contract: two runs of
// the partition scenario with the same seed must inject the identical fault
// schedule (same decision stream, same budget spend).
func TestScenarioSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet scenario")
	}
	path := filepath.Join("..", "..", "scenarios", "partition.yaml")
	a := runFile(t, path)
	b := runFile(t, path)
	if a.Faults != b.Faults {
		t.Errorf("same seed produced different fault schedules: %+v vs %+v", a.Faults, b.Faults)
	}
	if !a.Pass || !b.Pass {
		t.Errorf("partition runs failed: %v / %v", a.Pass, b.Pass)
	}
}
