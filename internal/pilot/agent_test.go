package pilot

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/zmq"
)

func simAgent(t *testing.T, nodes int) (*des.Engine, *Agent) {
	t.Helper()
	eng := des.NewEngine()
	a, err := NewAgent(AgentConfig{
		Runtime: eng,
		Nodes:   summitNodes(nodes),
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	return eng, a
}

func fixedDur(d float64) DurationFunc {
	return func(ExecContext) float64 { return d }
}

func TestAgentConfigValidation(t *testing.T) {
	if _, err := NewAgent(AgentConfig{Nodes: summitNodes(1)}); err == nil {
		t.Fatal("missing runtime accepted")
	}
	if _, err := NewAgent(AgentConfig{Runtime: des.NewEngine()}); err == nil {
		t.Fatal("empty allocation accepted")
	}
}

func TestTaskLifecycleEventsMatchListing1(t *testing.T) {
	eng, a := simAgent(t, 1)
	task, err := a.Submit(TaskDescription{Name: "of", Ranks: 20, Duration: fixedDur(100)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if task.State() != StateDone {
		t.Fatalf("state = %s", task.State())
	}
	// State sequence must be the full pipeline.
	var states []State
	var events []string
	for _, e := range a.Profiler().EntityEvents(task.UID) {
		if e.Name == "state" {
			states = append(states, e.State)
		} else {
			events = append(events, e.Name)
		}
	}
	wantStates := []State{StateNew, StateTMGRScheduling, StateStagingInput,
		StateAgentScheduling, StateScheduled, StateExecuting,
		StateStagingOutput, StateDone}
	if len(states) != len(wantStates) {
		t.Fatalf("states = %v", states)
	}
	for i := range states {
		if states[i] != wantStates[i] {
			t.Fatalf("state[%d] = %s want %s", i, states[i], wantStates[i])
		}
	}
	// Execution events must be exactly Listing 1's, in order.
	if len(events) != len(ExecutingEvents) {
		t.Fatalf("events = %v", events)
	}
	for i := range events {
		if events[i] != ExecutingEvents[i] {
			t.Fatalf("event[%d] = %s want %s", i, events[i], ExecutingEvents[i])
		}
	}
	// Execution time ≈ model duration.
	if et := task.ExecTime(); et < 100 || et > 102 {
		t.Fatalf("exec time = %v want ~100", et)
	}
}

func TestResourcesReleasedAfterCompletion(t *testing.T) {
	eng, a := simAgent(t, 1)
	for i := 0; i < 3; i++ {
		if _, err := a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(10)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	_, running, done, failed := a.Counts()
	if running != 0 || done != 3 || failed != 0 {
		t.Fatalf("counts: running=%d done=%d failed=%d", running, done, failed)
	}
	if a.Scheduler().FreeCores() != 42 {
		t.Fatalf("free cores = %d", a.Scheduler().FreeCores())
	}
}

func TestSerializedWhenNodeFull(t *testing.T) {
	eng, a := simAgent(t, 1)
	// Two 42-core tasks on a 42-core node must run back to back.
	t1, _ := a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(50)})
	t2, _ := a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(50)})
	eng.Run()
	_, _, e1, d1 := t1.Times()
	_, _, e2, _ := t2.Times()
	if e2 < d1 {
		t.Fatalf("t2 started at %v before t1 finished at %v", e2, d1)
	}
	_ = e1
}

func TestBackfillAroundLargeTask(t *testing.T) {
	eng, a := simAgent(t, 1)
	// Occupy 30 cores, then queue a 42-core task (doesn't fit) and a
	// 10-core task (fits): the small one must backfill.
	blocker, _ := a.Submit(TaskDescription{Ranks: 30, Duration: fixedDur(100)})
	big, _ := a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(10)})
	small, _ := a.Submit(TaskDescription{Ranks: 10, Duration: fixedDur(10)})
	eng.Run()
	_, _, smallStart, _ := small.Times()
	_, _, bigStart, _ := big.Times()
	_, _, _, blockerDone := blocker.Times()
	if smallStart >= blockerDone {
		t.Fatalf("small task did not backfill: started %v, blocker done %v", smallStart, blockerDone)
	}
	if bigStart < blockerDone {
		t.Fatalf("big task started %v before blocker finished %v", bigStart, blockerDone)
	}
}

func TestServiceTasksScheduledFirst(t *testing.T) {
	eng := des.NewEngine()
	a, err := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Submit an app task BEFORE the service task; the service must still
	// execute first (paper: "the SOMA service task needs to be scheduled
	// before any application tasks").
	app, _ := a.Submit(TaskDescription{Name: "app", Ranks: 4, Duration: fixedDur(10)})
	svc, _ := a.Submit(TaskDescription{Name: "soma", Ranks: 4, Service: true})
	a.Start()
	eng.Run()

	_, _, appExec, _ := app.Times()
	_, _, svcExec, _ := svc.Times()
	if svcExec == 0 || appExec == 0 {
		t.Fatal("tasks never executed")
	}
	if svcExec > appExec {
		t.Fatalf("service started at %v after app at %v", svcExec, appExec)
	}
	if svc.State() != StateExecuting {
		t.Fatalf("service state = %s, should still be running", svc.State())
	}
	if got := len(a.ServiceTasks()); got != 1 {
		t.Fatalf("service tasks = %d", got)
	}
	// Shutdown control command cancels services and frees their resources.
	a.StopServices()
	if svc.State() != StateCanceled {
		t.Fatalf("service state after stop = %s", svc.State())
	}
	if a.Scheduler().FreeCores() != 84 {
		t.Fatalf("free cores after stop = %d", a.Scheduler().FreeCores())
	}
}

func TestBootstrapDelaysScheduling(t *testing.T) {
	eng := des.NewEngine()
	a, _ := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(1), BootstrapSec: 30})
	a.Start()
	task, _ := a.Submit(TaskDescription{Ranks: 1, Duration: fixedDur(1)})
	eng.Run()
	_, sched, _, _ := task.Times()
	if sched < 30 {
		t.Fatalf("task scheduled at %v, before bootstrap completed at 30", sched)
	}
	// Timeline shows the bootstrap band across all cores.
	occ := a.Timeline().Occupancy(30, 1)
	if occ[0][ResBootstrap] < 0.99 {
		t.Fatalf("bootstrap occupancy = %v", occ[0][ResBootstrap])
	}
}

func TestTaskFailureViaFunc(t *testing.T) {
	eng, a := simAgent(t, 1)
	boom := errors.New("segfault")
	bad, _ := a.Submit(TaskDescription{
		Ranks:    1,
		Duration: fixedDur(5),
		Func:     func(ExecContext) error { return boom },
	})
	good, _ := a.Submit(TaskDescription{
		Ranks:    1,
		Duration: fixedDur(5),
		Func:     func(ExecContext) error { return nil },
	})
	eng.Run()
	if bad.State() != StateFailed || !errors.Is(bad.Err(), boom) {
		t.Fatalf("bad = %s err %v", bad.State(), bad.Err())
	}
	if good.State() != StateDone || good.Err() != nil {
		t.Fatalf("good = %s err %v", good.State(), good.Err())
	}
	_, _, done, failed := a.Counts()
	if done != 1 || failed != 1 {
		t.Fatalf("done=%d failed=%d", done, failed)
	}
	if a.Scheduler().FreeCores() != 42 {
		t.Fatal("failed task leaked resources")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, a := simAgent(t, 1)
	if _, err := a.Submit(TaskDescription{Ranks: -1}); err == nil {
		t.Fatal("negative ranks accepted")
	}
	if _, err := a.Submit(TaskDescription{Ranks: 1, CPUActivity: 2}); err == nil {
		t.Fatal("activity > 1 accepted")
	}
	if _, err := a.Submit(TaskDescription{Ranks: 43}); err == nil {
		t.Fatal("task larger than allocation accepted")
	}
}

func TestStopCancelsQueued(t *testing.T) {
	eng, a := simAgent(t, 1)
	running, _ := a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(100)})
	queued, _ := a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(100)})
	eng.RunUntil(50) // running has started, queued still waiting
	a.Stop()
	if queued.State() != StateCanceled {
		t.Fatalf("queued state = %s", queued.State())
	}
	if _, err := a.Submit(TaskDescription{Ranks: 1}); err == nil {
		t.Fatal("submission after Stop accepted")
	}
	eng.Run()
	if running.State() != StateDone {
		t.Fatalf("running task should finish normally, got %s", running.State())
	}
}

func TestQuiescentCallback(t *testing.T) {
	eng, a := simAgent(t, 1)
	fired := 0
	a.OnQuiescent(func() { fired++ })
	a.Submit(TaskDescription{Ranks: 4, Duration: fixedDur(10)})
	eng.Run()
	if fired == 0 {
		t.Fatal("quiescent callback never fired")
	}
}

func TestBusNotifications(t *testing.T) {
	eng := des.NewEngine()
	bus := zmq.NewPubSub()
	a, _ := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(1), Bus: bus})
	ch, cancel := bus.Subscribe("task.")
	defer cancel()
	a.Start()
	task, _ := a.Submit(TaskDescription{Ranks: 1, Duration: fixedDur(1)})
	eng.Run()
	var last string
	count := 0
	for {
		select {
		case m := <-ch:
			if m.Topic == "task."+task.UID {
				last = m.Payload.(string)
				count++
			}
			continue
		default:
		}
		break
	}
	if count < 4 || last != string(StateDone) {
		t.Fatalf("notifications = %d, last = %q", count, last)
	}
}

func TestActivityDeclaredOnNodes(t *testing.T) {
	eng := des.NewEngine()
	nodes := summitNodes(1)
	a, _ := NewAgent(AgentConfig{Runtime: eng, Nodes: nodes})
	a.Start()
	task, _ := a.Submit(TaskDescription{Ranks: 4, CPUActivity: 0.2, Duration: fixedDur(50)})
	eng.RunUntil(30) // task is running
	if got := nodes[0].ActivityOf(task.UID); got != 0.2 {
		t.Fatalf("activity = %v", got)
	}
	eng.Run()
	if got := nodes[0].ActivityOf(task.UID); got != platform.DefaultActivity {
		t.Fatal("activity should clear after completion")
	}
}

func TestSlowdownStretchesTasks(t *testing.T) {
	eng := des.NewEngine()
	a, _ := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(1), Slowdown: 1.05})
	a.Start()
	task, _ := a.Submit(TaskDescription{Ranks: 1, Duration: fixedDur(100)})
	eng.Run()
	if et := task.ExecTime(); et < 104.5 || et > 106 {
		t.Fatalf("exec time = %v want ~105", et)
	}
}

func TestUtilizationTimelineForWorkflow(t *testing.T) {
	eng, a := simAgent(t, 2)
	for i := 0; i < 4; i++ {
		a.Submit(TaskDescription{Ranks: 42, Duration: fixedDur(60)})
	}
	end := eng.Run()
	tl := a.Timeline()
	// 4 × 42-core × 60 s tasks on 84 cores: two waves, high utilization
	// between bootstrap and drain.
	u := tl.Utilization(end)
	if u < 0.5 {
		t.Fatalf("overall run utilization = %v, want > 0.5", u)
	}
	occ := tl.Occupancy(end, 10)
	sawRun, sawSched := false, false
	for _, b := range occ {
		if b[ResRun] > 0.5 {
			sawRun = true
		}
		if b[ResSchedule] > 0 {
			sawSched = true
		}
	}
	if !sawRun || !sawSched {
		t.Fatalf("occupancy missing run/schedule bands: %v", occ)
	}
}

func TestRealRuntimeEndToEnd(t *testing.T) {
	rt := des.NewRealRuntime()
	defer rt.Shutdown()
	a, err := NewAgent(AgentConfig{
		Runtime:          rt,
		Nodes:            summitNodes(1),
		BootstrapSec:     0.01,
		SchedOverheadSec: 0.001,
		LaunchDelaySec:   0.001,
		RankSpawnSec:     0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	var tasks []*Task
	for i := 0; i < 5; i++ {
		task, err := a.Submit(TaskDescription{
			Name:     fmt.Sprintf("real-%d", i),
			Ranks:    8,
			Duration: fixedDur(0.02),
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	deadline := time.After(10 * time.Second)
	for _, task := range tasks {
		select {
		case <-task.Done():
		case <-deadline:
			t.Fatal("timeout waiting for real-mode tasks")
		}
		if task.State() != StateDone {
			t.Fatalf("task %s state = %s", task.UID, task.State())
		}
	}
	if a.Scheduler().FreeCores() != 42 {
		t.Fatalf("free cores = %d", a.Scheduler().FreeCores())
	}
}

func TestSessionAndTaskManager(t *testing.T) {
	eng := des.NewEngine()
	cluster := platform.NewCluster(5, platform.Summit())
	batch := platform.NewBatchSystem(cluster)
	sess := NewSession(eng, batch)

	p, err := sess.SubmitPilot(PilotDescription{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if batch.FreeNodes() != 1 {
		t.Fatalf("free nodes = %d", batch.FreeNodes())
	}
	tm := sess.NewTaskManager(p)
	tasks, err := tm.Submit([]TaskDescription{
		{Name: "a", Ranks: 20, Duration: fixedDur(30)},
		{Name: "b", Ranks: 41, Duration: fixedDur(30)},
	})
	if err != nil || len(tasks) != 2 {
		t.Fatalf("submit: %v, %d tasks", err, len(tasks))
	}
	eng.Run()
	for _, task := range tm.Tasks() {
		if task.State() != StateDone {
			t.Fatalf("%s = %s", task.UID, task.State())
		}
	}
	if got, ok := tm.Get(tasks[0].UID); !ok || got != tasks[0] {
		t.Fatal("Get by uid failed")
	}
	p.Cancel()
	if batch.FreeNodes() != 5 {
		t.Fatalf("free nodes after cancel = %d", batch.FreeNodes())
	}
	p.Cancel() // idempotent
	tm.Close()
	if _, err := tm.Submit([]TaskDescription{{Ranks: 1}}); err == nil {
		t.Fatal("submit after close accepted")
	}
	sess.Close()
	if _, err := sess.SubmitPilot(PilotDescription{Nodes: 1}); err == nil {
		t.Fatal("pilot after session close accepted")
	}
}

func TestSubmitPilotFailsWhenClusterFull(t *testing.T) {
	eng := des.NewEngine()
	batch := platform.NewBatchSystem(platform.NewCluster(2, platform.Summit()))
	sess := NewSession(eng, batch)
	if _, err := sess.SubmitPilot(PilotDescription{Nodes: 3}); err == nil {
		t.Fatal("oversized pilot accepted")
	}
	// The failed pilot must not leak nodes.
	if batch.FreeNodes() != 2 {
		t.Fatalf("free nodes = %d", batch.FreeNodes())
	}
}

func TestTaskManagerValidationRejectsBatch(t *testing.T) {
	eng := des.NewEngine()
	batch := platform.NewBatchSystem(platform.NewCluster(2, platform.Summit()))
	sess := NewSession(eng, batch)
	p, _ := sess.SubmitPilot(PilotDescription{Nodes: 1})
	tm := sess.NewTaskManager(p)
	_, err := tm.Submit([]TaskDescription{
		{Name: "ok", Ranks: 1},
		{Name: "bad", Ranks: -2},
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if len(tm.Tasks()) != 0 {
		t.Fatal("partial batch staged despite validation failure")
	}
}

func TestStagingDelaysAndHoldsResources(t *testing.T) {
	eng, a := simAgent(t, 1)
	task, err := a.Submit(TaskDescription{
		Ranks:            42,
		Duration:         fixedDur(100),
		InputStagingSec:  30,
		OutputStagingSec: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	// During input staging the task holds no resources.
	eng.RunUntil(25)
	if task.State() != StateStagingInput {
		t.Fatalf("state at t=25 = %s", task.State())
	}
	if a.Scheduler().FreeCores() != 42 {
		t.Fatal("staging task claimed resources early")
	}
	// After staging + bootstrap it runs.
	eng.RunUntil(90)
	if task.State() != StateExecuting {
		t.Fatalf("state at t=90 = %s", task.State())
	}
	// During output staging, resources are still held (RP semantics).
	eng.RunUntil(135)
	if task.State() != StateStagingOutput {
		t.Fatalf("state at t=135 = %s", task.State())
	}
	if a.Scheduler().FreeCores() != 0 {
		t.Fatal("resources released before output staging finished")
	}
	eng.Run()
	if task.State() != StateDone {
		t.Fatalf("final state = %s", task.State())
	}
	if a.Scheduler().FreeCores() != 42 {
		t.Fatal("resources leaked")
	}
	// The profile shows dwell in both staging states.
	d := a.Profiler().StateDurations(task.UID, eng.Now())
	if d[StateStagingInput] < 29.9 || d[StateStagingInput] > 30.1 {
		t.Fatalf("input staging dwell = %v", d[StateStagingInput])
	}
	if d[StateStagingOutput] < 14.9 || d[StateStagingOutput] > 15.1 {
		t.Fatalf("output staging dwell = %v", d[StateStagingOutput])
	}
}

func TestStopDuringInputStagingCancels(t *testing.T) {
	eng, a := simAgent(t, 1)
	task, _ := a.Submit(TaskDescription{
		Ranks: 1, Duration: fixedDur(10), InputStagingSec: 50,
	})
	canceled := false
	task.Description.OnComplete = nil // set below via fresh submit instead
	task2, _ := a.Submit(TaskDescription{
		Ranks: 1, Duration: fixedDur(10), InputStagingSec: 50,
		OnComplete: func(tk *Task) { canceled = tk.State() == StateCanceled },
	})
	eng.RunUntil(25)
	a.Stop()
	eng.Run()
	if task.State() != StateCanceled || task2.State() != StateCanceled {
		t.Fatalf("states = %s, %s", task.State(), task2.State())
	}
	if !canceled {
		t.Fatal("OnComplete not fired for staging-canceled task")
	}
}

func TestNegativeStagingRejected(t *testing.T) {
	_, a := simAgent(t, 1)
	if _, err := a.Submit(TaskDescription{Ranks: 1, InputStagingSec: -1}); err == nil {
		t.Fatal("negative input staging accepted")
	}
	if _, err := a.Submit(TaskDescription{Ranks: 1, OutputStagingSec: -1}); err == nil {
		t.Fatal("negative output staging accepted")
	}
}
