package pilot

import (
	"strings"
	"testing"
)

func TestValidTransitions(t *testing.T) {
	legal := [][2]State{
		{StateNew, StateTMGRScheduling},
		{StateTMGRScheduling, StateStagingInput},
		{StateStagingInput, StateAgentScheduling},
		{StateAgentScheduling, StateScheduled},
		{StateScheduled, StateExecuting},
		{StateExecuting, StateStagingOutput},
		{StateStagingOutput, StateDone},
		{StateExecuting, StateFailed},
		{StateNew, StateCanceled},
		{StateAgentScheduling, StateFailed},
	}
	for _, c := range legal {
		if !ValidTransition(c[0], c[1]) {
			t.Errorf("%s -> %s should be legal", c[0], c[1])
		}
	}
	illegal := [][2]State{
		{StateNew, StateExecuting},                  // skipping states
		{StateTMGRScheduling, StateAgentScheduling}, // skipping input staging
		{StateExecuting, StateDone},                 // skipping output staging
		{StateExecuting, StateNew},                  // backwards
		{StateDone, StateFailed},                    // out of a final state
		{StateDone, StateCanceled},                  // out of a final state
		{StateCanceled, StateExecuting},             // out of a final state
		{StateNew, State("BOGUS")},                  // unknown
		{State("BOGUS"), StateTMGRScheduling},       // unknown
	}
	for _, c := range illegal {
		if ValidTransition(c[0], c[1]) {
			t.Errorf("%s -> %s should be illegal", c[0], c[1])
		}
	}
}

func TestFinalStates(t *testing.T) {
	for _, s := range []State{StateDone, StateFailed, StateCanceled, PilotDone, PilotFailed, PilotCanceled} {
		if !s.Final() {
			t.Errorf("%s should be final", s)
		}
	}
	for _, s := range []State{StateNew, StateExecuting, PilotActive} {
		if s.Final() {
			t.Errorf("%s should not be final", s)
		}
	}
}

func TestExecutingEventsOrder(t *testing.T) {
	want := []string{"launch_start", "exec_start", "rank_start", "rank_stop", "exec_stop", "launch_stop"}
	if len(ExecutingEvents) != len(want) {
		t.Fatalf("events = %v", ExecutingEvents)
	}
	for i, e := range ExecutingEvents {
		if e != want[i] {
			t.Errorf("event[%d] = %q want %q", i, e, want[i])
		}
	}
}

func TestErrInvalidTransitionMessage(t *testing.T) {
	err := &ErrInvalidTransition{UID: "task.000001", From: StateDone, Next: StateExecuting}
	msg := err.Error()
	for _, frag := range []string{"task.000001", "DONE", "EXECUTING"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error message missing %q: %s", frag, msg)
		}
	}
}

func TestProfilerSinceAndDump(t *testing.T) {
	p := NewProfiler()
	p.RecordState(1.0, "task.000000", StateNew)
	p.RecordEvent(2.0, "task.000000", EvLaunchStart)
	evs, cur := p.Since(0)
	if len(evs) != 2 || cur != 2 {
		t.Fatalf("since(0) = %d events, cursor %d", len(evs), cur)
	}
	evs, cur = p.Since(cur)
	if len(evs) != 0 || cur != 2 {
		t.Fatalf("since(2) = %d events", len(evs))
	}
	p.RecordState(3.0, "task.000001", StateNew)
	evs, cur = p.Since(cur)
	if len(evs) != 1 || evs[0].UID != "task.000001" {
		t.Fatalf("incremental read got %v", evs)
	}
	if cur != 3 || p.Len() != 3 {
		t.Fatalf("cursor %d len %d", cur, p.Len())
	}
	evs, _ = p.Since(-5)
	if len(evs) != 3 {
		t.Fatal("negative cursor should read from start")
	}
	dump := p.Dump()
	if !strings.Contains(dump, "launch_start") || !strings.Contains(dump, "state,NEW") {
		t.Fatalf("dump = %q", dump)
	}
}

func TestProfilerEntityEventsAndDurations(t *testing.T) {
	p := NewProfiler()
	p.RecordState(0, "task.0", StateNew)
	p.RecordState(2, "task.0", StateTMGRScheduling)
	p.RecordState(5, "task.0", StateAgentScheduling)
	p.RecordState(5, "other", StateNew)
	p.RecordState(9, "task.0", StateScheduled)
	p.RecordState(10, "task.0", StateExecuting)
	p.RecordState(25, "task.0", StateDone)

	if got := len(p.EntityEvents("task.0")); got != 6 {
		t.Fatalf("entity events = %d", got)
	}
	d := p.StateDurations("task.0", 100)
	if d[StateNew] != 2 || d[StateTMGRScheduling] != 3 || d[StateAgentScheduling] != 4 ||
		d[StateScheduled] != 1 || d[StateExecuting] != 15 {
		t.Fatalf("durations = %v", d)
	}
	if _, ok := d[StateDone]; ok {
		t.Fatal("final state should not accrue duration")
	}
	// Non-final tail accrues up to endTime.
	d2 := p.StateDurations("other", 50)
	if d2[StateNew] != 45 {
		t.Fatalf("open-ended NEW duration = %v", d2[StateNew])
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1698435412.606003, UID: "task.000000", Name: "launch_start"}
	if !strings.Contains(e.String(), "task.000000,launch_start") {
		t.Fatalf("event string = %q", e.String())
	}
	s := Event{Time: 1, UID: "t", Name: "state", State: StateDone}
	if !strings.Contains(s.String(), "state,DONE") {
		t.Fatalf("state string = %q", s.String())
	}
}
