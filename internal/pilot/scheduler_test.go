package pilot

import (
	"testing"

	"github.com/hpcobs/gosoma/internal/platform"
)

func summitNodes(n int) []*platform.Node {
	c := platform.NewCluster(n, platform.Summit())
	return c.Nodes
}

func TestPlacePackedSingleNode(t *testing.T) {
	s := NewScheduler(summitNodes(4))
	td := &TaskDescription{Ranks: 20}
	p, ok := s.TryPlace(td, "t0")
	if !ok {
		t.Fatal("placement failed")
	}
	if p.NodesSpanned() != 1 || p.TotalCores() != 20 {
		t.Fatalf("placement = %d nodes, %d cores", p.NodesSpanned(), p.TotalCores())
	}
	if p.Slices[0].NodeName != "cn0000" {
		t.Fatalf("packed should use first node, got %s", p.Slices[0].NodeName)
	}
	if p.Contention != 0 {
		t.Fatalf("contention on empty node = %v", p.Contention)
	}
}

func TestPlaceMultiNode(t *testing.T) {
	s := NewScheduler(summitNodes(4))
	// 164 ranks at 42/node → 4 nodes (Table 1's largest config).
	p, ok := s.TryPlace(&TaskDescription{Ranks: 164}, "big")
	if !ok {
		t.Fatal("placement failed")
	}
	if p.NodesSpanned() != 4 || p.TotalCores() != 164 {
		t.Fatalf("spanned %d nodes, %d cores", p.NodesSpanned(), p.TotalCores())
	}
	if got := len(p.NodeNames()); got != 4 {
		t.Fatalf("node names = %d", got)
	}
}

func TestPlaceInsufficientResourcesClaimsNothing(t *testing.T) {
	nodes := summitNodes(2)
	s := NewScheduler(nodes)
	if _, ok := s.TryPlace(&TaskDescription{Ranks: 85}, "huge"); ok {
		t.Fatal("85 ranks should not fit on 84 cores")
	}
	for _, n := range nodes {
		if n.FreeCores() != 42 {
			t.Fatalf("failed placement leaked cores on %s", n.Name)
		}
	}
}

func TestPlaceGPUs(t *testing.T) {
	s := NewScheduler(summitNodes(2))
	// DDMD sim task: 1 rank, 3 cores, 1 GPU; 12 of them need both nodes'
	// GPUs (6 per node).
	for i := 0; i < 12; i++ {
		td := &TaskDescription{Ranks: 1, CoresPerRank: 3, GPUsPerRank: 1}
		p, ok := s.TryPlace(td, uidN(i))
		if !ok {
			t.Fatalf("sim task %d failed to place", i)
		}
		if p.TotalGPUs() != 1 {
			t.Fatalf("task %d gpus = %d", i, p.TotalGPUs())
		}
	}
	// 13th task: cores remain but GPUs are exhausted.
	if _, ok := s.TryPlace(&TaskDescription{Ranks: 1, GPUsPerRank: 1}, "t13"); ok {
		t.Fatal("GPU oversubscription accepted")
	}
	if s.FreeGPUs() != 0 {
		t.Fatalf("free gpus = %d", s.FreeGPUs())
	}
	// CPU-only task still fits.
	if _, ok := s.TryPlace(&TaskDescription{Ranks: 1}, "cpu"); !ok {
		t.Fatal("CPU-only task should fit")
	}
}

func uidN(i int) string { return "task." + string(rune('a'+i)) }

func TestGPURequiresCoresOnSameNode(t *testing.T) {
	nodes := summitNodes(2)
	s := NewScheduler(nodes)
	// Fill node 0's cores completely but leave its GPUs free.
	nodes[0].AllocCores("filler", 42)
	p, ok := s.TryPlace(&TaskDescription{Ranks: 1, GPUsPerRank: 1}, "t")
	if !ok {
		t.Fatal("placement failed")
	}
	if p.Slices[0].NodeID != 1 {
		t.Fatal("rank should land where both core and GPU are free")
	}
}

func TestSpreadPlacement(t *testing.T) {
	nodes := summitNodes(5)
	s := NewScheduler(nodes)
	td := &TaskDescription{Ranks: 20, Spread: true}
	p, ok := s.TryPlace(td, "spread")
	if !ok {
		t.Fatal("placement failed")
	}
	if p.NodesSpanned() != 5 {
		t.Fatalf("spread placement spanned %d nodes, want 5", p.NodesSpanned())
	}
	// Each node should hold 4 cores (20/5).
	for _, sl := range p.Slices {
		if len(sl.Cores) != 4 {
			t.Fatalf("uneven spread: %v cores on %s", len(sl.Cores), sl.NodeName)
		}
	}
}

func TestContentionMeasured(t *testing.T) {
	nodes := summitNodes(1)
	nodes[0].AllocCores("other", 21) // half busy
	s := NewScheduler(nodes)
	p, ok := s.TryPlace(&TaskDescription{Ranks: 10}, "t")
	if !ok {
		t.Fatal("placement failed")
	}
	if p.Contention != 0.5 {
		t.Fatalf("contention = %v want 0.5", p.Contention)
	}
}

func TestReleaseFreesEverything(t *testing.T) {
	s := NewScheduler(summitNodes(2))
	td := &TaskDescription{Ranks: 60, GPUsPerRank: 0}
	p, ok := s.TryPlace(td, "t")
	if !ok {
		t.Fatal("place failed")
	}
	if s.FreeCores() != 84-60 {
		t.Fatalf("free = %d", s.FreeCores())
	}
	s.Release("t", p)
	if s.FreeCores() != 84 {
		t.Fatalf("after release free = %d", s.FreeCores())
	}
}

func TestGlobalCoreIDs(t *testing.T) {
	s := NewScheduler(summitNodes(3))
	p, _ := s.TryPlace(&TaskDescription{Ranks: 50}, "t") // 42 on node0, 8 on node1
	ids := s.GlobalCoreIDs(p)
	if len(ids) != 50 {
		t.Fatalf("ids = %d", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= 3*42 {
			t.Fatalf("global id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("duplicate global id %d", id)
		}
		seen[id] = true
	}
	// Node 1's cores must start at offset 42.
	if !seen[42] {
		t.Fatal("expected core 42 (node 1, core 0) in use")
	}
}

func TestDefaultsAppliedToDegenerateDescriptions(t *testing.T) {
	s := NewScheduler(summitNodes(1))
	p, ok := s.TryPlace(&TaskDescription{}, "zero") // 1 rank, 1 core
	if !ok || p.TotalCores() != 1 {
		t.Fatalf("zero-value description: %v cores, ok=%v", p.TotalCores(), ok)
	}
	p2, ok := s.TryPlace(&TaskDescription{Ranks: 2, GPUsPerRank: -1}, "neg")
	if !ok || p2.TotalGPUs() != 0 {
		t.Fatalf("negative gpus: %v", p2.TotalGPUs())
	}
}

func TestTimelineOccupancy(t *testing.T) {
	tl := NewTimeline(10)
	tl.AddRange([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0, 10, ResBootstrap, "agent")
	tl.AddRange([]int{0, 1, 2, 3, 4}, 10, 20, ResRun, "t0")
	occ := tl.Occupancy(20, 2)
	if len(occ) != 2 {
		t.Fatalf("buckets = %d", len(occ))
	}
	if occ[0][ResBootstrap] != 1.0 {
		t.Fatalf("bucket0 bootstrap = %v", occ[0][ResBootstrap])
	}
	if occ[1][ResRun] != 0.5 || occ[1][ResIdle] != 0.5 {
		t.Fatalf("bucket1 = %v", occ[1])
	}
	if u := tl.Utilization(20); u != 0.25 {
		t.Fatalf("utilization = %v want 0.25", u)
	}
}

func TestTimelineDegenerate(t *testing.T) {
	tl := NewTimeline(4)
	tl.Add(Segment{Core: 0, From: 5, To: 5, State: ResRun}) // zero-length ignored
	tl.Add(Segment{Core: 0, From: 5, To: 3, State: ResRun}) // negative ignored
	if len(tl.Segments()) != 0 {
		t.Fatal("degenerate segments stored")
	}
	if tl.Occupancy(0, 5) != nil || tl.Occupancy(10, 0) != nil {
		t.Fatal("degenerate occupancy should be nil")
	}
	if tl.Utilization(0) != 0 {
		t.Fatal("zero-end utilization should be 0")
	}
	if tl.Cores() != 4 {
		t.Fatal("cores accessor")
	}
	if ResRun.String() != "run" || ResourceState(9).String() != "unknown" {
		t.Fatal("state names")
	}
}

func TestTimelineSegmentsSorted(t *testing.T) {
	tl := NewTimeline(3)
	tl.Add(Segment{Core: 2, From: 0, To: 1, State: ResRun})
	tl.Add(Segment{Core: 0, From: 5, To: 6, State: ResRun})
	tl.Add(Segment{Core: 0, From: 1, To: 2, State: ResSchedule})
	segs := tl.Segments()
	if segs[0].Core != 0 || segs[0].From != 1 || segs[2].Core != 2 {
		t.Fatalf("segments not sorted: %+v", segs)
	}
}
