package pilot

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is one timestamped profile record — a state transition or an
// execution event for an entity (task, pilot, agent). RP writes these to
// per-component profile files; here they accumulate in a Profiler that the
// SOMA RP monitor polls.
type Event struct {
	Time float64
	// UID identifies the entity, e.g. "task.000012" or "pilot.0000".
	UID string
	// Name is the event name ("launch_start", ...) or "state" for a state
	// transition.
	Name string
	// State is the new state for "state" events; otherwise empty.
	State State
}

// String renders the event as one profile line.
func (e Event) String() string {
	if e.Name == "state" {
		return fmt.Sprintf("%.7f,%s,state,%s", e.Time, e.UID, e.State)
	}
	return fmt.Sprintf("%.7f,%s,%s,", e.Time, e.UID, e.Name)
}

// Profiler accumulates events in arrival order. It is safe for concurrent
// use. A monitor reads incrementally with Since; analyses read snapshots
// with Events.
type Profiler struct {
	mu     sync.RWMutex
	events []Event
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// Record appends an event.
func (p *Profiler) Record(ev Event) {
	p.mu.Lock()
	p.events = append(p.events, ev)
	p.mu.Unlock()
}

// RecordState appends a state-transition event.
func (p *Profiler) RecordState(t float64, uid string, s State) {
	p.Record(Event{Time: t, UID: uid, Name: "state", State: s})
}

// RecordEvent appends a named execution event.
func (p *Profiler) RecordEvent(t float64, uid, name string) {
	p.Record(Event{Time: t, UID: uid, Name: name})
}

// Len returns the number of recorded events.
func (p *Profiler) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.events)
}

// Events returns a snapshot of all events.
func (p *Profiler) Events() []Event {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Event(nil), p.events...)
}

// Since returns the events recorded at index >= cursor and the new cursor,
// allowing a monitor to poll incrementally without re-reading history.
func (p *Profiler) Since(cursor int) ([]Event, int) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(p.events) {
		return nil, len(p.events)
	}
	out := append([]Event(nil), p.events[cursor:]...)
	return out, len(p.events)
}

// EntityEvents returns the events of one entity in time order.
func (p *Profiler) EntityEvents(uid string) []Event {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []Event
	for _, e := range p.events {
		if e.UID == uid {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders all events as profile-file lines, sorted by time (stable).
func (p *Profiler) Dump() string {
	evs := p.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	var sb strings.Builder
	for _, e := range evs {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// StateDurations computes, for one entity, the time spent in each state
// (from a state's entry to the next state's entry). The final state has
// duration up to endTime when it is not terminal-at-zero.
func (p *Profiler) StateDurations(uid string, endTime float64) map[State]float64 {
	evs := p.EntityEvents(uid)
	out := map[State]float64{}
	var cur State
	var curStart float64
	have := false
	for _, e := range evs {
		if e.Name != "state" {
			continue
		}
		if have {
			out[cur] += e.Time - curStart
		}
		cur, curStart, have = e.State, e.Time, true
	}
	if have && !cur.Final() && endTime > curStart {
		out[cur] += endTime - curStart
	}
	return out
}
