package pilot

import (
	"sort"
	"sync"
)

// ResourceState classifies what a core is doing at an instant — the color
// coding of the paper's Fig. 8: light blue = RP bootstrap, purple = task
// scheduling, green = task running, white = unused.
type ResourceState uint8

// Core states in the utilization timeline.
const (
	ResIdle ResourceState = iota
	ResBootstrap
	ResSchedule
	ResRun
)

var resNames = [...]string{"idle", "bootstrap", "schedule", "run"}

// String returns the state name.
func (r ResourceState) String() string {
	if int(r) < len(resNames) {
		return resNames[r]
	}
	return "unknown"
}

// Segment is one core's activity over a time interval.
type Segment struct {
	Core     int // global core index across the allocation
	From, To float64
	State    ResourceState
	Owner    string // task uid for schedule/run segments
}

// Timeline records per-core activity segments for the whole pilot — the
// data behind Fig. 8. The Agent appends segments as tasks are scheduled,
// launched and completed. Safe for concurrent use.
type Timeline struct {
	mu       sync.Mutex
	segments []Segment
	cores    int
}

// NewTimeline creates a timeline for an allocation with the given total
// usable core count.
func NewTimeline(totalCores int) *Timeline {
	return &Timeline{cores: totalCores}
}

// Cores returns the tracked core count.
func (tl *Timeline) Cores() int { return tl.cores }

// Add appends one segment. Zero-length or negative segments are ignored.
func (tl *Timeline) Add(seg Segment) {
	if seg.To <= seg.From {
		return
	}
	tl.mu.Lock()
	tl.segments = append(tl.segments, seg)
	tl.mu.Unlock()
}

// AddRange appends one segment per core index in ids.
func (tl *Timeline) AddRange(ids []int, from, to float64, st ResourceState, owner string) {
	for _, c := range ids {
		tl.Add(Segment{Core: c, From: from, To: to, State: st, Owner: owner})
	}
}

// Segments returns a snapshot sorted by (core, from).
func (tl *Timeline) Segments() []Segment {
	tl.mu.Lock()
	out := append([]Segment(nil), tl.segments...)
	tl.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Core != out[j].Core {
			return out[i].Core < out[j].Core
		}
		return out[i].From < out[j].From
	})
	return out
}

// Occupancy aggregates the timeline into buckets time slices covering
// [0, end]: for each slice, the fraction of core-time in each state.
// Core-time not covered by any segment counts as idle. This is the series
// the Fig. 8 reproduction prints.
func (tl *Timeline) Occupancy(end float64, buckets int) []map[ResourceState]float64 {
	if buckets < 1 || end <= 0 || tl.cores == 0 {
		return nil
	}
	width := end / float64(buckets)
	out := make([]map[ResourceState]float64, buckets)
	busy := make([]map[ResourceState]float64, buckets)
	for i := range out {
		out[i] = map[ResourceState]float64{}
		busy[i] = map[ResourceState]float64{}
	}
	for _, seg := range tl.Segments() {
		for b := 0; b < buckets; b++ {
			lo, hi := width*float64(b), width*float64(b+1)
			overlap := min(seg.To, hi) - max(seg.From, lo)
			if overlap > 0 {
				busy[b][seg.State] += overlap
			}
		}
	}
	capacity := width * float64(tl.cores)
	for b := 0; b < buckets; b++ {
		total := 0.0
		for st, v := range busy[b] {
			frac := v / capacity
			out[b][st] = frac
			total += frac
		}
		idle := 1 - total
		if idle < 0 {
			idle = 0
		}
		out[b][ResIdle] += idle
	}
	return out
}

// Utilization returns the overall fraction of core-time spent running tasks
// over [0, end] — the "measure of RP scheduling optimization" in Fig. 8.
func (tl *Timeline) Utilization(end float64) float64 {
	if end <= 0 || tl.cores == 0 {
		return 0
	}
	run := 0.0
	for _, seg := range tl.Segments() {
		if seg.State != ResRun {
			continue
		}
		overlap := min(seg.To, end) - seg.From
		if overlap > 0 {
			run += overlap
		}
	}
	return run / (end * float64(tl.cores))
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
