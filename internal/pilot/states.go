// Package pilot implements the pilot-paradigm workflow runtime the paper
// integrates SOMA with — a Go analog of RADICAL-Pilot (RP). It provides the
// two RP abstractions:
//
//   - Pilot: a placeholder job holding an allocation of compute nodes,
//     acquired through the platform's batch system and bootstrapped into an
//     Agent on those nodes.
//   - Task: a unit of work (an executable with ranks/cores/GPUs, or a Go
//     function) that the Agent schedules onto the pilot's resources without
//     touching the machine's batch queue.
//
// Components mirror RP's architecture (paper Fig. 1): a client-side
// PilotManager and TaskManager, and an Agent with Scheduler and Executor,
// coordinated over internal/zmq queues. Every component is a state machine
// whose timestamped transitions are recorded in a Profiler — the profile
// stream the SOMA RP-monitor client consumes (paper Listing 1).
//
// The Agent runs against a des.Runtime, so identical code drives both the
// simulated experiments (virtual time) and the live examples (wall time).
package pilot

import "fmt"

// State is a lifecycle state of a task or pilot.
type State string

// Task states, matching RP's task state model: a task proceeds through NEW,
// SCHEDULED, EXECUTING and DONE/FAILED (paper §2.3.2), with the
// client/agent split made explicit.
const (
	// StateNew: the task exists in the TaskManager.
	StateNew State = "NEW"
	// StateTMGRScheduling: queued in the client-side scheduler.
	StateTMGRScheduling State = "TMGR_SCHEDULING"
	// StateStagingInput: input files are being staged to the resource
	// ("after staging files when required", paper §2.1). Zero dwell when
	// the task declares no input staging.
	StateStagingInput State = "AGENT_STAGING_INPUT"
	// StateAgentScheduling: queued in the agent scheduler, waiting for
	// resources.
	StateAgentScheduling State = "AGENT_SCHEDULING"
	// StateScheduled: resources assigned, queued to an executor.
	StateScheduled State = "SCHEDULED"
	// StateExecuting: launched on the assigned resources.
	StateExecuting State = "EXECUTING"
	// StateStagingOutput: output files are being staged back; resources are
	// still held. Zero dwell when the task declares no output staging.
	StateStagingOutput State = "AGENT_STAGING_OUTPUT"
	// StateDone: completed successfully.
	StateDone State = "DONE"
	// StateFailed: completed with an error.
	StateFailed State = "FAILED"
	// StateCanceled: stopped by the runtime (service tasks at shutdown).
	StateCanceled State = "CANCELED"
)

// Pilot states.
const (
	PilotNew      State = "PMGR_LAUNCHING"
	PilotActive   State = "PMGR_ACTIVE"
	PilotDone     State = "PMGR_DONE"
	PilotFailed   State = "PMGR_FAILED"
	PilotCanceled State = "PMGR_CANCELED"
)

// Final reports whether s is a terminal task state.
func (s State) Final() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled ||
		s == PilotDone || s == PilotFailed || s == PilotCanceled
}

// taskOrder gives the legal forward ordering of task states.
var taskOrder = map[State]int{
	StateNew:             0,
	StateTMGRScheduling:  1,
	StateStagingInput:    2,
	StateAgentScheduling: 3,
	StateScheduled:       4,
	StateExecuting:       5,
	StateStagingOutput:   6,
	StateDone:            7,
	StateFailed:          7,
	StateCanceled:        7,
}

// ValidTransition reports whether a task may move from to next. Any state
// may jump to FAILED or CANCELED; otherwise transitions move strictly
// forward through the pipeline.
func ValidTransition(from, next State) bool {
	if next == StateFailed || next == StateCanceled {
		return !from.Final()
	}
	fo, ok1 := taskOrder[from]
	no, ok2 := taskOrder[next]
	if !ok1 || !ok2 {
		return false
	}
	return no == fo+1
}

// Events recorded inside the EXECUTING state, exactly the event names of the
// paper's Listing 1.
const (
	EvLaunchStart = "launch_start"
	EvExecStart   = "exec_start"
	EvRankStart   = "rank_start"
	EvRankStop    = "rank_stop"
	EvExecStop    = "exec_stop"
	EvLaunchStop  = "launch_stop"
)

// ExecutingEvents lists the Listing 1 events in order.
var ExecutingEvents = []string{
	EvLaunchStart, EvExecStart, EvRankStart, EvRankStop, EvExecStop, EvLaunchStop,
}

// ErrInvalidTransition is returned when a component attempts an illegal
// state change.
type ErrInvalidTransition struct {
	UID        string
	From, Next State
}

func (e *ErrInvalidTransition) Error() string {
	return fmt.Sprintf("pilot: invalid transition %s -> %s for %s", e.From, e.Next, e.UID)
}
