package pilot

import (
	"sort"

	"github.com/hpcobs/gosoma/internal/platform"
)

// Scheduler is the Agent's resource scheduler: it maps task rank
// requirements onto specific cores and GPUs of the pilot's allocation,
// RP-style — a task is scheduled "as soon as there are enough free
// resources" (paper §4.2). Each rank's cores and GPUs live on one node;
// ranks of the same task may span nodes.
//
// Two placement modes reproduce the paper's Fig. 6 comparison:
//   - packed (default): first-fit in node order, filling a node before
//     moving on;
//   - spread: ranks round-robin across the nodes with the most free cores.
//
// TryPlace/Release are not safe for concurrent use with each other; the
// Agent serializes all scheduling under its own lock.
type Scheduler struct {
	nodes []*platform.Node
	// nodeIdx maps node ID to its index within the allocation, for global
	// core numbering in the utilization timeline.
	nodeIdx map[int]int
	perNode int
}

// NewScheduler builds a scheduler over the pilot's nodes.
func NewScheduler(nodes []*platform.Node) *Scheduler {
	s := &Scheduler{nodes: nodes, nodeIdx: map[int]int{}}
	for i, n := range nodes {
		s.nodeIdx[n.ID] = i
		if n.Spec.UsableCores() > s.perNode {
			s.perNode = n.Spec.UsableCores()
		}
	}
	return s
}

// Nodes returns the allocation's nodes.
func (s *Scheduler) Nodes() []*platform.Node { return s.nodes }

// TotalCores returns the usable cores across the allocation.
func (s *Scheduler) TotalCores() int {
	t := 0
	for _, n := range s.nodes {
		t += n.Spec.UsableCores()
	}
	return t
}

// TryPlace attempts to place the task; it returns ok == false (claiming
// nothing) when the allocation lacks free resources. On success the
// returned placement names every core and GPU claimed under the task UID.
func (s *Scheduler) TryPlace(td *TaskDescription, uid string) (Placement, bool) {
	ranks := td.Ranks
	if ranks < 1 {
		ranks = 1
	}
	cpr := td.CoresPerRank
	if cpr < 1 {
		cpr = 1
	}
	gpr := td.GPUsPerRank
	if gpr < 0 {
		gpr = 0
	}

	var order []*platform.Node
	switch {
	case td.PinNode != "":
		for _, n := range s.nodes {
			if n.Name == td.PinNode {
				order = append(order, n)
				break
			}
		}
		if len(order) == 0 {
			return Placement{}, false
		}
	case td.Spread:
		order = make([]*platform.Node, len(s.nodes))
		copy(order, s.nodes)
	default:
		// Packed placement iterates the shared slice read-only; no copy on
		// the hot path.
		order = s.nodes
	}
	byFreeDesc := func() {
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].FreeCores() > order[j].FreeCores()
		})
	}
	if td.Spread {
		byFreeDesc()
	}

	type claim struct {
		cores []int
		gpus  []int
	}
	claims := map[*platform.Node]*claim{}
	rollback := func() {
		for n := range claims {
			n.Release(uid)
		}
	}

	// rankFits checks availability before claiming so a partial claim never
	// needs per-rank rollback (Release is per-owner, so undoing one rank
	// would also undo the task's earlier ranks on that node).
	rankFits := func(n *platform.Node) bool {
		return n.Fits(cpr, gpr)
	}

	placeRank := func(n *platform.Node) bool {
		cores, ok := n.AllocCores(uid, cpr)
		if !ok {
			return false
		}
		gpus, ok := n.AllocGPUs(uid, gpr)
		if !ok {
			// Cannot happen after rankFits under the Agent's lock, but stay
			// safe: undoing a partial rank claim is handled by full rollback
			// in the caller.
			return false
		}
		c := claims[n]
		if c == nil {
			c = &claim{}
			claims[n] = c
		}
		c.cores = append(c.cores, cores...)
		c.gpus = append(c.gpus, gpus...)
		return true
	}

	for placed := 0; placed < ranks; {
		progressed := false
		for _, n := range order {
			if placed >= ranks {
				break
			}
			if td.Spread {
				// One rank per node pass, then re-rank nodes by free cores.
				if rankFits(n) && placeRank(n) {
					placed++
					progressed = true
					break
				}
				continue
			}
			// Packed: fill this node with ranks before moving on.
			for placed < ranks && rankFits(n) {
				if !placeRank(n) {
					rollback()
					return Placement{}, false
				}
				placed++
				progressed = true
			}
		}
		if !progressed {
			rollback()
			return Placement{}, false
		}
		if td.Spread {
			byFreeDesc()
		}
	}

	var p Placement
	ownCores := 0
	density := 0.0
	for _, n := range s.nodes {
		c := claims[n]
		if c == nil {
			continue
		}
		p.Slices = append(p.Slices, NodeSlice{
			NodeID:   n.ID,
			NodeName: n.Name,
			Cores:    c.cores,
			GPUs:     c.gpus,
		})
		ownCores += len(c.cores)
		if u := n.Spec.UsableCores(); u > 0 {
			density += float64(len(c.cores)) / float64(u)
		}
	}
	if len(p.Slices) > 0 {
		p.OwnDensity = density / float64(len(p.Slices))
	}
	// Contention is the allocation-wide busy fraction from *other* tasks at
	// launch: co-running work contends for the shared interconnect and
	// filesystem, which is why the paper's late-scheduled tasks ("when
	// resources are less utilized") ran faster regardless of where their
	// ranks landed.
	total := s.TotalCores()
	if total > 0 {
		busyOthers := 0
		for _, n := range s.nodes {
			busyOthers += n.BusyCores()
		}
		busyOthers -= ownCores
		if busyOthers < 0 {
			busyOthers = 0
		}
		p.Contention = float64(busyOthers) / float64(total)
	}
	return p, true
}

// Release frees every resource the placement claimed.
func (s *Scheduler) Release(uid string, p Placement) {
	for _, sl := range p.Slices {
		for _, n := range s.nodes {
			if n.ID == sl.NodeID {
				n.Release(uid)
				break
			}
		}
	}
}

// GlobalCoreIDs maps a placement's cores to allocation-wide core indices
// for the utilization timeline.
func (s *Scheduler) GlobalCoreIDs(p Placement) []int {
	var out []int
	for _, sl := range p.Slices {
		base := s.nodeIdx[sl.NodeID] * s.perNode
		for _, c := range sl.Cores {
			out = append(out, base+c)
		}
	}
	return out
}

// FreeCores reports the total free cores across the allocation.
func (s *Scheduler) FreeCores() int {
	t := 0
	for _, n := range s.nodes {
		t += n.FreeCores()
	}
	return t
}

// FreeGPUs reports the total free GPUs across the allocation.
func (s *Scheduler) FreeGPUs() int {
	t := 0
	for _, n := range s.nodes {
		t += n.FreeGPUs()
	}
	return t
}
