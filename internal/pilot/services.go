package pilot

import (
	"fmt"
	"sync"
)

// ServiceInfo is what a running service task advertises to the workflow:
// its RPC address and lifecycle state. The paper requires exactly this —
// "service tasks communicate their state to RP for the consumers of those
// services to know where, when, and whether they are available" (§2.3.1).
type ServiceInfo struct {
	// UID is the service task's UID.
	UID string
	// Name is the service task's descriptive name ("soma.service").
	Name string
	// Address is the published RPC endpoint ("tcp://..." or "inproc://...").
	Address string
	// State mirrors the task state (EXECUTING while available).
	State State
}

// Available reports whether consumers can use the service now.
func (si ServiceInfo) Available() bool { return si.State == StateExecuting && si.Address != "" }

// ServiceRegistry is the agent-side directory of service endpoints. Service
// tasks publish their address once they are up; application tasks and
// monitor clients look services up by name and can wait for availability.
// It is exposed by the Agent and safe for concurrent use.
type ServiceRegistry struct {
	mu       sync.Mutex
	byName   map[string]ServiceInfo
	waiters  map[string][]chan ServiceInfo
	notifyFn func(ServiceInfo) // optional bus hook
}

// NewServiceRegistry returns an empty registry.
func NewServiceRegistry() *ServiceRegistry {
	return &ServiceRegistry{
		byName:  map[string]ServiceInfo{},
		waiters: map[string][]chan ServiceInfo{},
	}
}

// Advertise publishes (or updates) a service's info. Waiters blocked on the
// name are released once the service is available.
func (r *ServiceRegistry) Advertise(info ServiceInfo) {
	r.mu.Lock()
	r.byName[info.Name] = info
	var release []chan ServiceInfo
	if info.Available() {
		release = r.waiters[info.Name]
		delete(r.waiters, info.Name)
	}
	fn := r.notifyFn
	r.mu.Unlock()
	for _, ch := range release {
		ch <- info
	}
	if fn != nil {
		fn(info)
	}
}

// Withdraw marks a service unavailable (shutdown path).
func (r *ServiceRegistry) Withdraw(name string, state State) {
	r.mu.Lock()
	info, ok := r.byName[name]
	if ok {
		info.State = state
		r.byName[name] = info
	}
	fn := r.notifyFn
	r.mu.Unlock()
	if ok && fn != nil {
		fn(info)
	}
}

// Lookup returns the current info for name.
func (r *ServiceRegistry) Lookup(name string) (ServiceInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	info, ok := r.byName[name]
	return info, ok
}

// List returns every advertised service.
func (r *ServiceRegistry) List() []ServiceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ServiceInfo, 0, len(r.byName))
	for _, info := range r.byName {
		out = append(out, info)
	}
	return out
}

// WaitCh returns a channel that receives the service info once the named
// service is available. If it already is, the channel is immediately
// ready. Intended for real-time mode; simulated code should use Lookup
// after the service task's state transition.
func (r *ServiceRegistry) WaitCh(name string) <-chan ServiceInfo {
	ch := make(chan ServiceInfo, 1)
	r.mu.Lock()
	if info, ok := r.byName[name]; ok && info.Available() {
		r.mu.Unlock()
		ch <- info
		return ch
	}
	r.waiters[name] = append(r.waiters[name], ch)
	r.mu.Unlock()
	return ch
}

// --- Agent integration -----------------------------------------------------

// Services returns the agent's service registry.
func (a *Agent) Services() *ServiceRegistry {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.registry == nil {
		a.registry = NewServiceRegistry()
		bus := a.cfg.Bus
		if bus != nil {
			a.registry.notifyFn = func(info ServiceInfo) {
				_ = bus.Publish("service."+info.Name, info)
			}
		}
	}
	return a.registry
}

// AdvertiseService records a running service task's RPC address in the
// registry. It fails when the UID does not name a running service task —
// only live services may advertise.
func (a *Agent) AdvertiseService(uid, address string) error {
	a.mu.Lock()
	t, ok := a.services[uid]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("pilot: %s is not a running service task", uid)
	}
	a.Services().Advertise(ServiceInfo{
		UID: uid, Name: t.Description.Name, Address: address, State: t.State(),
	})
	return nil
}
