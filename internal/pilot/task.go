package pilot

import (
	"fmt"
	"sync"
)

// NodeSlice is the portion of one node assigned to a task: specific core
// and GPU indices.
type NodeSlice struct {
	NodeID   int
	NodeName string
	Cores    []int
	GPUs     []int
}

// Placement records where a task's ranks landed and how contended the
// allocation was at launch, feeding the workload models.
type Placement struct {
	Slices []NodeSlice
	// Contention is the fraction of the allocation's cores busy with other
	// tasks at allocation time, in [0,1].
	Contention float64
	// OwnDensity is the task's average cores-per-spanned-node divided by
	// the node core count, in [0,1] — 1 means the task fills every node it
	// touches.
	OwnDensity float64
}

// NodesSpanned returns how many distinct nodes hold at least one core or
// GPU of the task.
func (p Placement) NodesSpanned() int { return len(p.Slices) }

// TotalCores returns the cores assigned across all slices.
func (p Placement) TotalCores() int {
	t := 0
	for _, s := range p.Slices {
		t += len(s.Cores)
	}
	return t
}

// TotalGPUs returns the GPUs assigned across all slices.
func (p Placement) TotalGPUs() int {
	t := 0
	for _, s := range p.Slices {
		t += len(s.GPUs)
	}
	return t
}

// NodeNames returns the spanned node names in slice order.
func (p Placement) NodeNames() []string {
	out := make([]string, len(p.Slices))
	for i, s := range p.Slices {
		out[i] = s.NodeName
	}
	return out
}

// ExecContext is what the executor hands a task's duration model or
// function: where it runs and when it started.
type ExecContext struct {
	Task      *Task
	Placement Placement
	StartTime float64
}

// DurationFunc models a task's wall time given its actual placement
// (simulated mode). The workload package supplies these.
type DurationFunc func(ctx ExecContext) float64

// FuncTask is a Go function executed in-process (real mode) — RP's RAPTOR
// "function task" flavour.
type FuncTask func(ctx ExecContext) error

// TaskDescription is what a user submits — RP's TaskDescription.
type TaskDescription struct {
	// UID is assigned by the TaskManager when empty ("task.000042").
	UID string
	// Name is a free-form label (used by EnTK for stage/pipeline tags).
	Name string
	// Ranks is the number of MPI ranks (processes). Default 1.
	Ranks int
	// CoresPerRank is the physical cores per rank. Default 1.
	CoresPerRank int
	// GPUsPerRank is the GPUs per rank. Default 0.
	GPUsPerRank int
	// Duration models execution time in simulated runs. When nil and Func
	// is nil, the task completes immediately.
	Duration DurationFunc
	// Func is an in-process function task (RAPTOR flavour), used by
	// real-time runs. When both Duration and Func are set, Duration decides
	// the simulated wall time and Func is invoked at completion.
	Func FuncTask
	// InputStagingSec and OutputStagingSec model file staging before
	// scheduling and after execution (AGENT_STAGING_INPUT/OUTPUT states).
	// Resources are held during output staging, as in RP.
	InputStagingSec  float64
	OutputStagingSec float64
	// Service marks a long-running service task: scheduled before any
	// application task, runs until the pilot shuts it down (paper §2.3.1).
	Service bool
	// CPUActivity is the busy fraction of the task's allocated cores for
	// the hardware monitor, in (0,1]. Zero means "CPU-bound" (0.95).
	CPUActivity float64
	// Spread requests ranks be spread across nodes rather than packed.
	Spread bool
	// PinNode restricts placement to the named node ("" = any). Used for
	// per-node monitor tasks and for pinning the SOMA service to its
	// dedicated nodes.
	PinNode string
	// Tags carries arbitrary metadata into the workflow namespace.
	Tags map[string]string
	// OnComplete, when set, is invoked once the task reaches a final state
	// (DONE, FAILED, or CANCELED). It runs on the runtime's event path, so
	// it must not block; resubmitting follow-up work is the intended use
	// (EnTK chains stages this way).
	OnComplete func(t *Task)
}

// cores and gpus return the total resource needs.
func (td *TaskDescription) cores() int {
	r, c := td.Ranks, td.CoresPerRank
	if r < 1 {
		r = 1
	}
	if c < 1 {
		c = 1
	}
	return r * c
}

func (td *TaskDescription) gpus() int {
	r := td.Ranks
	if r < 1 {
		r = 1
	}
	if td.GPUsPerRank < 0 {
		return 0
	}
	return r * td.GPUsPerRank
}

// Validate checks a description for obvious misconfiguration.
func (td *TaskDescription) Validate() error {
	if td.Ranks < 0 || td.CoresPerRank < 0 || td.GPUsPerRank < 0 {
		return fmt.Errorf("pilot: negative resource request in task %q", td.Name)
	}
	if td.CPUActivity < 0 || td.CPUActivity > 1 {
		return fmt.Errorf("pilot: CPUActivity %v out of [0,1] in task %q", td.CPUActivity, td.Name)
	}
	if td.InputStagingSec < 0 || td.OutputStagingSec < 0 {
		return fmt.Errorf("pilot: negative staging time in task %q", td.Name)
	}
	return nil
}

// Task is a submitted task with live state. All fields are guarded by mu;
// use the accessor methods.
type Task struct {
	Description TaskDescription
	UID         string

	mu        sync.Mutex
	state     State
	placement Placement
	err       error
	// times of interest, filled in as the task progresses
	submitT, schedT, execT, doneT float64
	done                          chan struct{}
}

func newTask(td TaskDescription, uid string, now float64) *Task {
	return &Task{
		Description: td,
		UID:         uid,
		state:       StateNew,
		submitT:     now,
		done:        make(chan struct{}),
	}
}

// State returns the task's current state.
func (t *Task) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Placement returns where the task ran (zero value before scheduling).
func (t *Task) Placement() Placement {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.placement
}

// Err returns the task's failure cause, if any.
func (t *Task) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Times returns (submit, scheduled, exec-start, done) timestamps; zero when
// not yet reached.
func (t *Task) Times() (submit, sched, exec, done float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.submitT, t.schedT, t.execT, t.doneT
}

// ExecTime returns the task's executing duration (done - exec start), or 0.
func (t *Task) ExecTime() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.doneT > t.execT && t.execT > 0 {
		return t.doneT - t.execT
	}
	return 0
}

// Done returns a channel closed when the task reaches a final state.
func (t *Task) Done() <-chan struct{} { return t.done }

// setState transitions the task, returning an error on illegal moves.
func (t *Task) setState(s State, now float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !ValidTransition(t.state, s) {
		return &ErrInvalidTransition{UID: t.UID, From: t.state, Next: s}
	}
	t.state = s
	switch s {
	case StateScheduled:
		t.schedT = now
	case StateExecuting:
		t.execT = now
	case StateDone, StateFailed, StateCanceled:
		t.doneT = now
		close(t.done)
	}
	return nil
}
