package pilot

import (
	"fmt"
	"sort"
	"strings"
)

// GanttOptions controls Timeline.Gantt rendering.
type GanttOptions struct {
	// Width is the number of character columns for the time axis (default 80).
	Width int
	// MaxRows caps the number of core rows rendered; cores are sampled
	// evenly when the allocation has more (default 40).
	MaxRows int
	// End is the time the axis spans; 0 means the last segment's end.
	End float64
}

// ganttGlyphs maps each resource state to its rendering character —
// mirroring Fig. 8's colour coding (light blue/purple/green/white).
var ganttGlyphs = map[ResourceState]byte{
	ResIdle:      '.',
	ResBootstrap: 'b',
	ResSchedule:  's',
	ResRun:       '#',
}

// Gantt renders the timeline as one text row per core, with time on the
// horizontal axis — the per-core view of Fig. 8. Later segments overwrite
// earlier ones within a cell; scheduling marks win over runs in the same
// cell so the purple band stays visible.
func (tl *Timeline) Gantt(opt GanttOptions) string {
	if opt.Width <= 0 {
		opt.Width = 80
	}
	if opt.MaxRows <= 0 {
		opt.MaxRows = 40
	}
	segs := tl.Segments()
	end := opt.End
	if end == 0 {
		for _, s := range segs {
			if s.To > end {
				end = s.To
			}
		}
	}
	if end <= 0 || tl.cores == 0 {
		return "(empty timeline)\n"
	}

	// Choose which cores to render.
	rows := tl.cores
	step := 1
	if rows > opt.MaxRows {
		step = (rows + opt.MaxRows - 1) / opt.MaxRows
	}
	selected := map[int]int{} // core -> row index
	var coreIDs []int
	for c := 0; c < tl.cores; c += step {
		selected[c] = len(coreIDs)
		coreIDs = append(coreIDs, c)
	}

	grid := make([][]byte, len(coreIDs))
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", opt.Width))
	}
	colOf := func(t float64) int {
		c := int(t / end * float64(opt.Width))
		if c < 0 {
			c = 0
		}
		if c >= opt.Width {
			c = opt.Width - 1
		}
		return c
	}
	// Paint run/bootstrap first, then scheduling marks on top.
	sort.SliceStable(segs, func(i, j int) bool {
		return segs[i].State != ResSchedule && segs[j].State == ResSchedule
	})
	for _, s := range segs {
		row, ok := selected[s.Core]
		if !ok {
			continue
		}
		from, to := colOf(s.From), colOf(s.To)
		g := ganttGlyphs[s.State]
		for c := from; c <= to; c++ {
			grid[row][c] = g
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "cores (every %d of %d) × time 0..%.0fs   b=bootstrap s=schedule #=run .=idle\n",
		step, tl.cores, end)
	for i, core := range coreIDs {
		fmt.Fprintf(&sb, "core %4d |%s|\n", core, grid[i])
	}
	return sb.String()
}
