package pilot

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/zmq"
)

// Session is the client-side entry point, mirroring RP's Session: it owns
// the PilotManager and TaskManagers, a shared profile stream, and the
// notification bus (RP's ZeroMQ coordination layer).
type Session struct {
	UID      string
	Runtime  des.Runtime
	Batch    *platform.BatchSystem
	Profiler *Profiler
	Bus      *zmq.PubSub

	mu       sync.Mutex
	pilotSeq int
	closed   bool
	pilots   []*Pilot
}

// NewSession creates a session against a batch system.
func NewSession(rt des.Runtime, batch *platform.BatchSystem) *Session {
	return &Session{
		UID:      "session.0000",
		Runtime:  rt,
		Batch:    batch,
		Profiler: NewProfiler(),
		Bus:      zmq.NewPubSub(),
	}
}

// PilotDescription is what a user requests from the PilotManager.
type PilotDescription struct {
	// Nodes is the whole-node count of the pilot job.
	Nodes int
	// Agent tuning knobs; zero values take AgentConfig defaults.
	BootstrapSec     float64
	SchedOverheadSec float64
	Slowdown         float64
	Seed             uint64
}

// Pilot is a granted pilot job with a live Agent on its allocation.
type Pilot struct {
	UID        string
	Allocation *platform.Allocation
	Agent      *Agent

	session *Session
	mu      sync.Mutex
	final   State
}

// SubmitPilot queues a pilot job with the batch system (paper Fig. 1 step 1)
// and bootstraps the Agent on the granted nodes (step 2). The PilotManager
// role of RP is folded into the session, as it performs exactly this one
// duty here.
func (s *Session) SubmitPilot(pd PilotDescription) (*Pilot, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("pilot: session closed")
	}
	uid := fmt.Sprintf("pilot.%04d", s.pilotSeq)
	s.pilotSeq++
	s.mu.Unlock()

	now := s.Runtime.Now()
	s.Profiler.RecordState(now, uid, PilotNew)
	_ = s.Bus.Publish(uid, string(PilotNew))

	alloc, err := s.Batch.Submit(pd.Nodes)
	if err != nil {
		s.Profiler.RecordState(now, uid, PilotFailed)
		return nil, err
	}
	agent, err := NewAgent(AgentConfig{
		Runtime:          s.Runtime,
		Nodes:            alloc.Nodes,
		Profiler:         s.Profiler,
		Bus:              s.Bus,
		BootstrapSec:     pd.BootstrapSec,
		SchedOverheadSec: pd.SchedOverheadSec,
		Slowdown:         pd.Slowdown,
		Seed:             pd.Seed,
	})
	if err != nil {
		s.Batch.Cancel(alloc)
		return nil, err
	}
	p := &Pilot{UID: uid, Allocation: alloc, Agent: agent, session: s}
	agent.Start()
	s.Profiler.RecordState(s.Runtime.Now(), uid, PilotActive)
	_ = s.Bus.Publish(uid, string(PilotActive))
	s.mu.Lock()
	s.pilots = append(s.pilots, p)
	s.mu.Unlock()
	return p, nil
}

// Cancel stops the pilot's agent and returns its nodes to the batch system.
func (p *Pilot) Cancel() {
	p.mu.Lock()
	if p.final != "" {
		p.mu.Unlock()
		return
	}
	p.final = PilotDone
	p.mu.Unlock()
	p.Agent.Stop()
	p.session.Batch.Cancel(p.Allocation)
	now := p.session.Runtime.Now()
	p.session.Profiler.RecordState(now, p.UID, PilotDone)
	_ = p.session.Bus.Publish(p.UID, string(PilotDone))
}

// Close cancels every pilot of the session.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	pilots := append([]*Pilot(nil), s.pilots...)
	s.mu.Unlock()
	for _, p := range pilots {
		p.Cancel()
	}
	s.Bus.Close()
}

// TaskManager is the client-side task front end: descriptions are pushed
// into a zmq queue (RP's tmgr→agent staging queue) and drained into the
// pilot's agent by a deferred event, so submission order is preserved and a
// burst of submissions is one queue drain.
type TaskManager struct {
	UID     string
	session *Session
	pilot   *Pilot
	queue   *zmq.Queue

	mu     sync.Mutex
	tasks  []*Task
	byUID  map[string]*Task
	tmSeq  int
	closed bool
}

// NewTaskManager creates a manager bound to one pilot.
func (s *Session) NewTaskManager(p *Pilot) *TaskManager {
	s.mu.Lock()
	uid := fmt.Sprintf("tmgr.%04d", s.pilotSeq)
	s.mu.Unlock()
	return &TaskManager{
		UID:     uid,
		session: s,
		pilot:   p,
		queue:   zmq.NewQueue("tmgr_staging_queue"),
		byUID:   map[string]*Task{},
	}
}

// Submit stages descriptions through the tmgr queue into the agent and
// returns the created tasks in order. A validation failure rejects the
// whole batch before anything is staged. Actual scheduling happens as the
// runtime processes events: drive the DES engine in simulated mode, or
// WaitAll in real mode.
func (tm *TaskManager) Submit(tds []TaskDescription) ([]*Task, error) {
	tm.mu.Lock()
	if tm.closed {
		tm.mu.Unlock()
		return nil, fmt.Errorf("pilot: task manager closed")
	}
	tm.mu.Unlock()
	for i := range tds {
		if err := tds[i].Validate(); err != nil {
			return nil, err
		}
	}
	for i := range tds {
		if err := tm.queue.Push(tds[i]); err != nil {
			return nil, err
		}
	}
	// Drain the staging queue into the agent, preserving order.
	var out []*Task
	for {
		v, ok := tm.queue.TryPull()
		if !ok {
			break
		}
		t, err := tm.pilot.Agent.Submit(v.(TaskDescription))
		if err != nil {
			return out, err
		}
		tm.mu.Lock()
		tm.tasks = append(tm.tasks, t)
		tm.byUID[t.UID] = t
		tm.mu.Unlock()
		out = append(out, t)
	}
	return out, nil
}

// Tasks returns every task submitted through this manager.
func (tm *TaskManager) Tasks() []*Task {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return append([]*Task(nil), tm.tasks...)
}

// Get returns the task with the given UID.
func (tm *TaskManager) Get(uid string) (*Task, bool) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	t, ok := tm.byUID[uid]
	return t, ok
}

// WaitAll blocks until every submitted task reaches a final state (real
// mode only; simulated runs drive the engine instead).
func (tm *TaskManager) WaitAll() {
	for _, t := range tm.Tasks() {
		<-t.Done()
	}
}

// Close shuts the staging queue.
func (tm *TaskManager) Close() {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if !tm.closed {
		tm.closed = true
		tm.queue.Close()
	}
}
