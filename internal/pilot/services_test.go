package pilot

import (
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/zmq"
)

func TestServiceRegistryAdvertiseLookup(t *testing.T) {
	r := NewServiceRegistry()
	if _, ok := r.Lookup("soma.service"); ok {
		t.Fatal("empty registry returned a service")
	}
	r.Advertise(ServiceInfo{
		UID: "task.000000", Name: "soma.service",
		Address: "tcp://10.0.0.1:9900", State: StateExecuting,
	})
	info, ok := r.Lookup("soma.service")
	if !ok || !info.Available() || info.Address != "tcp://10.0.0.1:9900" {
		t.Fatalf("lookup = %+v, %v", info, ok)
	}
	if got := len(r.List()); got != 1 {
		t.Fatalf("list = %d", got)
	}
	r.Withdraw("soma.service", StateCanceled)
	info, ok = r.Lookup("soma.service")
	if !ok || info.Available() {
		t.Fatalf("withdrawn service still available: %+v", info)
	}
}

func TestServiceRegistryWaitCh(t *testing.T) {
	r := NewServiceRegistry()
	ch := r.WaitCh("soma.service")
	select {
	case <-ch:
		t.Fatal("wait released before advertisement")
	default:
	}
	// Advertising a non-available state must not release waiters.
	r.Advertise(ServiceInfo{Name: "soma.service", State: StateScheduled})
	select {
	case <-ch:
		t.Fatal("wait released by non-available advertisement")
	default:
	}
	r.Advertise(ServiceInfo{Name: "soma.service", Address: "inproc://x", State: StateExecuting})
	select {
	case info := <-ch:
		if info.Address != "inproc://x" {
			t.Fatalf("info = %+v", info)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never released")
	}
	// Already-available service releases immediately.
	ch2 := r.WaitCh("soma.service")
	select {
	case <-ch2:
	case <-time.After(time.Second):
		t.Fatal("immediate wait did not release")
	}
}

func TestAgentAdvertiseService(t *testing.T) {
	eng := des.NewEngine()
	bus := zmq.NewPubSub()
	a, err := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(1), Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	notify, cancel := bus.Subscribe("service.")
	defer cancel()
	a.Start()
	svc, _ := a.Submit(TaskDescription{Name: "soma.service", Ranks: 4, Service: true})
	app, _ := a.Submit(TaskDescription{Name: "app", Ranks: 1, Duration: fixedDur(5)})
	eng.RunUntil(25) // service is executing

	// Advertising an app task or unknown uid fails.
	if err := a.AdvertiseService(app.UID, "tcp://x"); err == nil {
		t.Fatal("app task advertised as service")
	}
	if err := a.AdvertiseService("task.999999", "tcp://x"); err == nil {
		t.Fatal("unknown uid advertised")
	}
	if err := a.AdvertiseService(svc.UID, "inproc://soma-here"); err != nil {
		t.Fatal(err)
	}
	info, ok := a.Services().Lookup("soma.service")
	if !ok || !info.Available() || info.UID != svc.UID {
		t.Fatalf("registry info = %+v, %v", info, ok)
	}
	// The bus carries the advertisement.
	select {
	case m := <-notify:
		if m.Topic != "service.soma.service" {
			t.Fatalf("topic = %q", m.Topic)
		}
	default:
		t.Fatal("no bus notification for advertisement")
	}
	// StopServices withdraws the registration.
	a.StopServices()
	info, _ = a.Services().Lookup("soma.service")
	if info.Available() {
		t.Fatal("service still available after StopServices")
	}
	if info.State != StateCanceled {
		t.Fatalf("state = %s", info.State)
	}
	eng.Run()
}

func TestGanttRendering(t *testing.T) {
	tl := NewTimeline(8)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tl.AddRange(all, 0, 10, ResBootstrap, "agent")
	tl.AddRange([]int{0, 1}, 10, 12, ResSchedule, "t0")
	tl.AddRange([]int{0, 1}, 12, 80, ResRun, "t0")
	out := tl.Gantt(GanttOptions{Width: 40, MaxRows: 10, End: 100})
	lines := len(out) - len([]byte(out))
	_ = lines
	for _, want := range []string{"core    0", "b", "#", "s", "=run"} {
		if !containsStr(out, want) {
			t.Fatalf("gantt missing %q:\n%s", want, out)
		}
	}
	// Idle tail must be dots on every row.
	if !containsStr(out, "....") {
		t.Fatalf("no idle cells rendered:\n%s", out)
	}
	// Degenerate cases.
	if out := NewTimeline(0).Gantt(GanttOptions{}); !containsStr(out, "empty") {
		t.Fatalf("empty timeline = %q", out)
	}
}

func TestGanttSamplesLargeAllocations(t *testing.T) {
	tl := NewTimeline(420)
	tl.AddRange([]int{0}, 0, 10, ResRun, "t")
	out := tl.Gantt(GanttOptions{Width: 20, MaxRows: 10, End: 10})
	rows := 0
	for _, line := range splitLines(out) {
		if containsStr(line, "core ") {
			rows++
		}
	}
	if rows == 0 || rows > 10 {
		t.Fatalf("rendered %d rows, want 1..10", rows)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
