package pilot

import (
	"testing"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/platform"
)

func heartbeatFixture(t *testing.T) (*des.Engine, *Session, *Pilot) {
	t.Helper()
	eng := des.NewEngine()
	batch := platform.NewBatchSystem(platform.NewCluster(1, platform.Summit()))
	sess := NewSession(eng, batch)
	p, err := sess.SubmitPilot(PilotDescription{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sess, p
}

func TestHeartbeatsKeepPilotAlive(t *testing.T) {
	eng, sess, p := heartbeatFixture(t)
	p.Agent.StartHeartbeats(5)
	dead := false
	w := sess.WatchPilot(p, 15, 5, func() { dead = true })
	defer w.Stop()

	// Heartbeats flow on the bus; the pilot stays alive.
	ch, cancel := sess.Bus.Subscribe("pilot.heartbeat")
	defer cancel()
	eng.RunUntil(100)
	if dead || w.Fired() {
		t.Fatal("watcher declared a healthy pilot dead")
	}
	if p.Agent.LastHeartbeat() < 90 {
		t.Fatalf("last heartbeat = %v, want recent", p.Agent.LastHeartbeat())
	}
	beats := 0
	for {
		select {
		case <-ch:
			beats++
			continue
		default:
		}
		break
	}
	if beats < 15 {
		t.Fatalf("beats = %d, want ~20 over 100 s at 5 s period", beats)
	}
}

func TestWatcherDetectsDeadAgent(t *testing.T) {
	eng, sess, p := heartbeatFixture(t)
	p.Agent.StartHeartbeats(5)
	dead := false
	w := sess.WatchPilot(p, 15, 5, func() { dead = true })
	defer w.Stop()

	// Kill the agent at t=50: heartbeats stop, the watcher fires within
	// one timeout + check period.
	eng.At(50, func() { p.Agent.Stop() })
	eng.RunUntil(200)
	if !dead || !w.Fired() {
		t.Fatal("watcher never detected the dead agent")
	}
	// The session profile records the failure.
	sawFailed := false
	for _, ev := range sess.Profiler.EntityEvents(p.UID) {
		if ev.Name == "state" && ev.State == PilotFailed {
			sawFailed = true
		}
	}
	if !sawFailed {
		t.Fatal("pilot failure not recorded in the session profile")
	}
}

func TestWatcherFiresOnce(t *testing.T) {
	eng, sess, p := heartbeatFixture(t)
	p.Agent.StartHeartbeats(5)
	fires := 0
	sess.WatchPilot(p, 10, 5, func() { fires++ })
	eng.At(30, func() { p.Agent.Stop() })
	eng.RunUntil(500)
	if fires != 1 {
		t.Fatalf("onDead fired %d times", fires)
	}
}

func TestStartHeartbeatsIdempotent(t *testing.T) {
	eng, _, p := heartbeatFixture(t)
	s1 := p.Agent.StartHeartbeats(5)
	s2 := p.Agent.StartHeartbeats(5)
	eng.RunUntil(20)
	s1()
	s2() // same underlying ticker; double stop must be safe
	before := p.Agent.LastHeartbeat()
	eng.RunUntil(100)
	if p.Agent.LastHeartbeat() != before {
		t.Fatal("heartbeats continued after stop")
	}
}
