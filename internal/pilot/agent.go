package pilot

import (
	"fmt"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/telemetry"
	"github.com/hpcobs/gosoma/internal/zmq"
)

// Scheduler self-telemetry. Placement latency is wall-clock time spent in
// TryPlace (the real cost of the placement search, independent of the
// simulated clock); the gauges track the allocation and queue the way the
// paper's Fig. 8 resource bands do.
var (
	telPlaceLatency  = telemetry.Default().Histogram("pilot.sched.place.latency")
	telSchedQueued   = telemetry.Default().Gauge("pilot.sched.queue.depth")
	telSchedRunning  = telemetry.Default().Gauge("pilot.sched.running")
	telSchedFreeCore = telemetry.Default().Gauge("pilot.sched.free_cores")
	telSchedFreeGPU  = telemetry.Default().Gauge("pilot.sched.free_gpus")
	telSchedCoreUtil = telemetry.Default().FloatGauge("pilot.sched.core_util")
)

// AgentConfig configures an Agent. Zero values select sensible defaults.
type AgentConfig struct {
	// Runtime supplies time and deferred execution (DES engine or wall
	// clock). Required.
	Runtime des.Runtime
	// Nodes is the pilot's allocation. Required.
	Nodes []*platform.Node
	// Profiler receives every state transition and execution event. A new
	// one is created when nil.
	Profiler *Profiler
	// Bus receives state notifications on topics "task.*" and "pilot.*".
	// Optional.
	Bus *zmq.PubSub

	// BootstrapSec is how long the agent takes to bootstrap after Start —
	// the light-blue band of Fig. 8. Default 20 s (simulated).
	BootstrapSec float64
	// SchedOverheadSec is the per-task scheduling cost — the purple band of
	// Fig. 8. Default 1 s.
	SchedOverheadSec float64
	// LaunchDelaySec separates launch_start from exec_start. Default 0.35 s
	// (matching Listing 1's gaps).
	LaunchDelaySec float64
	// RankSpawnSec separates exec_start from rank_start (and rank_stop from
	// exec_stop). Default 0.01 s.
	RankSpawnSec float64
	// Slowdown multiplies every task duration — the monitoring-overhead
	// hook used by the Scaling B experiment. Values < 1 are treated as 1.
	Slowdown float64
	// Seed drives the agent's reproducible noise (task failure draws).
	Seed uint64
}

func (c *AgentConfig) defaults() {
	if c.BootstrapSec == 0 {
		c.BootstrapSec = 20
	}
	if c.SchedOverheadSec == 0 {
		c.SchedOverheadSec = 1.0
	}
	if c.LaunchDelaySec == 0 {
		c.LaunchDelaySec = 0.35
	}
	if c.RankSpawnSec == 0 {
		c.RankSpawnSec = 0.01
	}
	if c.Slowdown < 1 {
		c.Slowdown = 1
	}
	if c.Profiler == nil {
		c.Profiler = NewProfiler()
	}
}

// Agent is the node-side pilot component: it bootstraps on the allocation,
// launches service tasks first (paper §2.3.1), then schedules and executes
// application tasks as resources free up. All methods are safe for
// concurrent use.
type Agent struct {
	cfg   AgentConfig
	sched *Scheduler
	rng   *stats.RNG

	mu        sync.Mutex
	ready     bool
	stopped   bool
	uidSeq    int
	queue     []*Task // waiting application tasks, FIFO
	svcQueue  []*Task // waiting service tasks
	running   map[string]*Task
	services  map[string]*Task // running service tasks
	doneCount int
	failCount int
	timeline  *Timeline
	registry  *ServiceRegistry
	hbStop    func()
	lastBeat  float64
	// onQuiescent fires (outside the lock) whenever the agent finds itself
	// with no queued or running application tasks.
	onQuiescent []func()
}

// NewAgent builds an agent over the allocation. Call Start to bootstrap.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("pilot: AgentConfig.Runtime is required")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("pilot: AgentConfig.Nodes is empty")
	}
	cfg.defaults()
	sched := NewScheduler(cfg.Nodes)
	return &Agent{
		cfg:      cfg,
		sched:    sched,
		rng:      stats.NewRNG(cfg.Seed),
		running:  map[string]*Task{},
		services: map[string]*Task{},
		timeline: NewTimeline(sched.TotalCores()),
	}, nil
}

// Profiler returns the agent's profile stream.
func (a *Agent) Profiler() *Profiler { return a.cfg.Profiler }

// Timeline returns the agent's resource utilization timeline.
func (a *Agent) Timeline() *Timeline { return a.timeline }

// Scheduler exposes the resource scheduler (read-only use).
func (a *Agent) Scheduler() *Scheduler { return a.sched }

// OnQuiescent registers fn to run whenever the agent drains its application
// workload (no queued or running non-service tasks).
func (a *Agent) OnQuiescent(fn func()) {
	a.mu.Lock()
	a.onQuiescent = append(a.onQuiescent, fn)
	a.mu.Unlock()
}

// Counts returns (queued, running, done, failed) application task counts.
func (a *Agent) Counts() (queued, running, done, failed int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue), len(a.running), a.doneCount, a.failCount
}

// Start begins the bootstrap. After BootstrapSec the agent becomes ready
// and starts scheduling (services first).
func (a *Agent) Start() {
	now := a.cfg.Runtime.Now()
	a.cfg.Profiler.RecordState(now, "agent.0000", PilotNew)
	a.publish("pilot.agent", string(PilotNew))
	// The whole allocation shows as bootstrap until the agent is up.
	all := make([]int, a.timeline.Cores())
	for i := range all {
		all[i] = i
	}
	a.timeline.AddRange(all, now, now+a.cfg.BootstrapSec, ResBootstrap, "agent")
	a.cfg.Runtime.AfterFunc(a.cfg.BootstrapSec, func() {
		a.mu.Lock()
		a.ready = true
		a.mu.Unlock()
		a.cfg.Profiler.RecordState(a.cfg.Runtime.Now(), "agent.0000", PilotActive)
		a.publish("pilot.agent", string(PilotActive))
		a.trySchedule()
	})
}

// Submit enqueues a task description, assigning a UID when absent. Service
// tasks are queued ahead of application tasks.
func (a *Agent) Submit(td TaskDescription) (*Task, error) {
	if err := td.Validate(); err != nil {
		return nil, err
	}
	if td.cores() > a.sched.TotalCores() {
		return nil, fmt.Errorf("pilot: task %q needs %d cores, allocation has %d",
			td.Name, td.cores(), a.sched.TotalCores())
	}
	if td.PinNode != "" {
		// A pinned task that exceeds its node's total capacity would block
		// the queue forever; reject it up front.
		var pinned *platform.Node
		for _, n := range a.sched.Nodes() {
			if n.Name == td.PinNode {
				pinned = n
				break
			}
		}
		if pinned == nil {
			return nil, fmt.Errorf("pilot: task %q pinned to unknown node %q", td.Name, td.PinNode)
		}
		if td.cores() > pinned.Spec.UsableCores() || td.gpus() > pinned.Spec.GPUs {
			return nil, fmt.Errorf("pilot: task %q (%d cores, %d gpus) exceeds node %s capacity",
				td.Name, td.cores(), td.gpus(), td.PinNode)
		}
	}
	now := a.cfg.Runtime.Now()
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return nil, fmt.Errorf("pilot: agent is stopped")
	}
	uid := td.UID
	if uid == "" {
		uid = fmt.Sprintf("task.%06d", a.uidSeq)
		a.uidSeq++
	}
	t := newTask(td, uid, now)
	a.mu.Unlock()

	a.cfg.Profiler.RecordState(now, uid, StateNew)
	a.recordTransition(t, StateTMGRScheduling, now)
	a.recordTransition(t, StateStagingInput, now)
	a.publish("task."+uid, string(StateStagingInput))

	// enqueue moves the staged task into the scheduler queue. It runs after
	// the input-staging delay (immediately for tasks without staging).
	enqueue := func() {
		a.mu.Lock()
		if a.stopped {
			a.mu.Unlock()
			a.recordTransition(t, StateCanceled, a.cfg.Runtime.Now())
			a.publish("task."+t.UID, string(StateCanceled))
			if t.Description.OnComplete != nil {
				t.Description.OnComplete(t)
			}
			return
		}
		if td.Service {
			a.svcQueue = append(a.svcQueue, t)
		} else {
			a.queue = append(a.queue, t)
		}
		a.mu.Unlock()
		a.recordTransition(t, StateAgentScheduling, a.cfg.Runtime.Now())
		a.publish("task."+t.UID, string(StateAgentScheduling))
		a.trySchedule()
	}
	// Defer via the runtime even for zero staging, so a burst of
	// submissions is handled in one pass (and so sim-mode submission never
	// recurses into execution).
	a.cfg.Runtime.AfterFunc(td.InputStagingSec, enqueue)
	return t, nil
}

// recordTransition applies and records a task state change; transitions are
// validated, and a violation is a programming error worth a panic in this
// runtime's single-writer design.
func (a *Agent) recordTransition(t *Task, s State, now float64) {
	if err := t.setState(s, now); err != nil {
		panic(err)
	}
	a.cfg.Profiler.RecordState(now, t.UID, s)
}

func (a *Agent) publish(topic, payload string) {
	if a.cfg.Bus != nil {
		_ = a.cfg.Bus.Publish(topic, payload)
	}
}

// tryPlace wraps Scheduler.TryPlace with a wall-clock latency observation.
func (a *Agent) tryPlace(td *TaskDescription, uid string) (Placement, bool) {
	start := time.Now()
	p, ok := a.sched.TryPlace(td, uid)
	telPlaceLatency.ObserveSince(start)
	return p, ok
}

// updateSchedGauges refreshes the scheduler telemetry gauges; queued/running
// come from the caller (read under a.mu), free resources from the scheduler.
func (a *Agent) updateSchedGauges(queued, running int) {
	telSchedQueued.Set(int64(queued))
	telSchedRunning.Set(int64(running))
	free := a.sched.FreeCores()
	total := a.sched.TotalCores()
	telSchedFreeCore.Set(int64(free))
	telSchedFreeGPU.Set(int64(a.sched.FreeGPUs()))
	if total > 0 {
		telSchedCoreUtil.Set(float64(total-free) / float64(total))
	}
}

// trySchedule places as many queued tasks as resources allow. Service
// tasks always go first; application tasks wait until every submitted
// service task is running (the paper's bootstrap ordering).
func (a *Agent) trySchedule() {
	for {
		a.mu.Lock()
		if !a.ready || a.stopped {
			a.mu.Unlock()
			return
		}
		if len(a.svcQueue) == 0 && len(a.queue) == 0 {
			quiet := len(a.running) == 0
			running := len(a.running)
			fns := append([]func(){}, a.onQuiescent...)
			a.mu.Unlock()
			a.updateSchedGauges(0, running)
			if quiet {
				for _, fn := range fns {
					fn()
				}
			}
			return
		}
		// Services strictly first; application tasks are placed first-fit
		// over a bounded backfill window (RP's continuous scheduler
		// backfills smaller tasks around a large head-of-line task; the
		// window keeps large-scale scheduling passes cheap).
		const backfillWindow = 64
		var t *Task
		var p Placement
		if len(a.svcQueue) > 0 {
			cand := a.svcQueue[0]
			if pl, ok := a.tryPlace(&cand.Description, cand.UID); ok {
				t, p = cand, pl
				a.svcQueue = a.svcQueue[1:]
			}
		} else {
			limit := len(a.queue)
			if limit > backfillWindow {
				limit = backfillWindow
			}
			// Queues are dominated by tasks of identical shape; once one
			// shape fails to place, skip its clones for this pass.
			type shape struct {
				ranks, cpr, gpr int
				spread          bool
				pin             string
			}
			failed := map[shape]bool{}
			for i := 0; i < limit; i++ {
				cand := a.queue[i]
				d := &cand.Description
				sh := shape{d.Ranks, d.CoresPerRank, d.GPUsPerRank, d.Spread, d.PinNode}
				if failed[sh] {
					continue
				}
				if pl, ok := a.tryPlace(d, cand.UID); ok {
					t, p = cand, pl
					a.queue = append(a.queue[:i], a.queue[i+1:]...)
					break
				}
				failed[sh] = true
			}
		}
		queued := len(a.svcQueue) + len(a.queue)
		if t == nil {
			running := len(a.running)
			a.mu.Unlock()
			a.updateSchedGauges(queued, running)
			return // nothing fits until resources free up
		}
		a.running[t.UID] = t
		running := len(a.running)
		a.mu.Unlock()
		a.updateSchedGauges(queued, running)
		a.launch(t, p)
	}
}

// launch walks the task through SCHEDULED → EXECUTING and schedules its
// Listing 1 events and completion.
func (a *Agent) launch(t *Task, p Placement) {
	now := a.cfg.Runtime.Now()
	t.mu.Lock()
	t.placement = p
	t.mu.Unlock()
	a.recordTransition(t, StateScheduled, now)
	a.publish("task."+t.UID, string(StateScheduled))

	coreIDs := a.sched.GlobalCoreIDs(p)
	schedEnd := now + a.cfg.SchedOverheadSec
	a.timeline.AddRange(coreIDs, now, schedEnd, ResSchedule, t.UID)

	// Declare CPU activity for the hardware monitor.
	activity := t.Description.CPUActivity
	if activity == 0 {
		activity = platform.DefaultActivity
	}
	for _, sl := range p.Slices {
		for _, n := range a.sched.Nodes() {
			if n.ID == sl.NodeID {
				n.SetActivity(t.UID, activity)
			}
		}
	}

	a.cfg.Runtime.AfterFunc(a.cfg.SchedOverheadSec, func() { a.execute(t, p, coreIDs) })
}

// execute emits the EXECUTING-state events and runs the task body.
func (a *Agent) execute(t *Task, p Placement, coreIDs []int) {
	rt := a.cfg.Runtime
	start := rt.Now()
	a.recordTransition(t, StateExecuting, start)
	a.publish("task."+t.UID, string(StateExecuting))
	prof := a.cfg.Profiler
	prof.RecordEvent(start, t.UID, EvLaunchStart)

	execStart := start + a.cfg.LaunchDelaySec
	rankStart := execStart + a.cfg.RankSpawnSec
	rt.AfterFunc(a.cfg.LaunchDelaySec, func() {
		prof.RecordEvent(rt.Now(), t.UID, EvExecStart)
	})
	rt.AfterFunc(rankStart-start, func() {
		prof.RecordEvent(rt.Now(), t.UID, EvRankStart)
	})

	if t.Description.Service {
		// Service tasks run until StopServices. They leave the running set
		// (which tracks application work for quiescence) and join the
		// service registry.
		a.mu.Lock()
		a.services[t.UID] = t
		delete(a.running, t.UID)
		a.mu.Unlock()
		a.trySchedule()
		return
	}

	dur := 0.0
	if t.Description.Duration != nil {
		dur = t.Description.Duration(ExecContext{Task: t, Placement: p, StartTime: rankStart})
		if dur < 0 {
			dur = 0
		}
	}
	dur *= a.cfg.Slowdown

	rankStop := rankStart + dur
	execStop := rankStop + a.cfg.RankSpawnSec
	launchStop := execStop + a.cfg.LaunchDelaySec/5

	rt.AfterFunc(launchStop-start, func() {
		end := rt.Now()
		failed := false
		if t.Description.Func != nil {
			if err := t.Description.Func(ExecContext{Task: t, Placement: p, StartTime: rankStart}); err != nil {
				failed = true
				t.mu.Lock()
				t.err = err
				t.mu.Unlock()
			}
		}
		prof.RecordEvent(end-(launchStop-rankStop), t.UID, EvRankStop)
		prof.RecordEvent(end-(launchStop-execStop), t.UID, EvExecStop)
		prof.RecordEvent(end, t.UID, EvLaunchStop)
		a.timeline.AddRange(coreIDs, start, end, ResRun, t.UID)
		// Output staging: resources stay held until the data is out.
		a.recordTransition(t, StateStagingOutput, end)
		a.publish("task."+t.UID, string(StateStagingOutput))
		rt.AfterFunc(t.Description.OutputStagingSec, func() {
			a.complete(t, p, failed)
		})
	})
}

// complete finalizes a task, frees its resources and reschedules.
func (a *Agent) complete(t *Task, p Placement, failed bool) {
	now := a.cfg.Runtime.Now()
	final := StateDone
	if failed {
		final = StateFailed
	}
	a.recordTransition(t, final, now)
	a.publish("task."+t.UID, string(final))
	a.sched.Release(t.UID, p)
	a.mu.Lock()
	delete(a.running, t.UID)
	if failed {
		a.failCount++
	} else {
		a.doneCount++
	}
	a.mu.Unlock()
	if t.Description.OnComplete != nil {
		t.Description.OnComplete(t)
	}
	a.trySchedule()
}

// ServiceTasks returns the currently running service tasks.
func (a *Agent) ServiceTasks() []*Task {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Task, 0, len(a.services))
	for _, t := range a.services {
		out = append(out, t)
	}
	return out
}

// StopServices cancels every running service task — the control command RP
// sends "once the workflow is completed" (paper §2.3.1).
func (a *Agent) StopServices() {
	a.mu.Lock()
	svcs := make([]*Task, 0, len(a.services))
	for uid, t := range a.services {
		svcs = append(svcs, t)
		delete(a.services, uid)
	}
	reg := a.registry
	a.mu.Unlock()
	now := a.cfg.Runtime.Now()
	if reg != nil {
		for _, t := range svcs {
			reg.Withdraw(t.Description.Name, StateCanceled)
		}
	}
	for _, t := range svcs {
		prof := a.cfg.Profiler
		prof.RecordEvent(now, t.UID, EvRankStop)
		prof.RecordEvent(now, t.UID, EvExecStop)
		prof.RecordEvent(now, t.UID, EvLaunchStop)
		a.recordTransition(t, StateCanceled, now)
		a.publish("task."+t.UID, string(StateCanceled))
		p := t.Placement()
		a.sched.Release(t.UID, p)
		coreIDs := a.sched.GlobalCoreIDs(p)
		_, _, execT, _ := t.Times()
		if execT > 0 {
			a.timeline.AddRange(coreIDs, execT, now, ResRun, t.UID)
		}
		if t.Description.OnComplete != nil {
			t.Description.OnComplete(t)
		}
	}
}

// Stop halts the agent: services are stopped, queued tasks are canceled,
// and further submissions are rejected. Running application tasks complete
// normally.
func (a *Agent) Stop() {
	a.StopServices()
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	queued := a.queue
	a.queue = nil
	a.svcQueue = nil
	hbStop := a.hbStop
	a.mu.Unlock()
	if hbStop != nil {
		hbStop()
	}
	now := a.cfg.Runtime.Now()
	for _, t := range queued {
		a.recordTransition(t, StateCanceled, now)
		a.publish("task."+t.UID, string(StateCanceled))
		if t.Description.OnComplete != nil {
			t.Description.OnComplete(t)
		}
	}
	a.cfg.Profiler.RecordState(now, "agent.0000", PilotDone)
	a.publish("pilot.agent", string(PilotDone))
}
