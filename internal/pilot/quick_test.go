package pilot

import (
	"testing"
	"testing/quick"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/stats"
)

// Property: for any random workload of valid tasks, every task reaches a
// final state, no resources leak, the profile stream is consistent (each
// task has exactly one terminal state event), and the timeline never books
// more core-time than exists.
func TestQuickAgentInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		eng := des.NewEngine()
		nodes := summitNodes(1 + rng.Intn(4))
		a, err := NewAgent(AgentConfig{Runtime: eng, Nodes: nodes, Seed: seed})
		if err != nil {
			return false
		}
		a.Start()
		total := nodes[0].Spec.UsableCores() * len(nodes)

		nTasks := 1 + rng.Intn(30)
		var tasks []*Task
		for i := 0; i < nTasks; i++ {
			ranks := 1 + rng.Intn(total)
			dur := 1 + rng.Float64()*200
			td := TaskDescription{
				Ranks:    ranks,
				Spread:   rng.Intn(2) == 0,
				Duration: func(ExecContext) float64 { return dur },
			}
			if rng.Intn(10) == 0 {
				td.GPUsPerRank = 1
				// GPU tasks must fit: cap ranks at the GPU count.
				if g := len(nodes) * nodes[0].Spec.GPUs; td.Ranks > g {
					td.Ranks = g
				}
			}
			task, err := a.Submit(td)
			if err != nil {
				return false
			}
			tasks = append(tasks, task)
		}
		end := eng.Run()

		for _, task := range tasks {
			if task.State() != StateDone {
				return false
			}
		}
		if a.Scheduler().FreeCores() != total {
			return false
		}
		if a.Scheduler().FreeGPUs() != len(nodes)*nodes[0].Spec.GPUs {
			return false
		}
		// Exactly one terminal state per task in the profile stream.
		terminal := map[string]int{}
		for _, ev := range a.Profiler().Events() {
			if ev.Name == "state" && ev.State.Final() {
				terminal[ev.UID]++
			}
		}
		for _, task := range tasks {
			if terminal[task.UID] != 1 {
				return false
			}
		}
		// Timeline accounting stays within physical capacity.
		if u := a.Timeline().Utilization(end); u < 0 || u > 1.0001 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scheduler never double-books a core across any interleaving
// of placements and releases.
func TestQuickSchedulerNoDoubleBooking(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := NewScheduler(summitNodes(3))
		type live struct {
			uid string
			p   Placement
		}
		var placed []live
		owned := map[int]string{} // global core id -> uid
		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 || len(placed) == 0 {
				uid := string(rune('a'+op%26)) + string(rune('0'+op/26))
				td := &TaskDescription{Ranks: 1 + rng.Intn(60), Spread: rng.Intn(2) == 0}
				p, ok := s.TryPlace(td, uid)
				if !ok {
					continue
				}
				for _, id := range s.GlobalCoreIDs(p) {
					if prev, taken := owned[id]; taken {
						t.Logf("core %d owned by %s and %s", id, prev, uid)
						return false
					}
					owned[id] = uid
				}
				placed = append(placed, live{uid: uid, p: p})
			} else {
				i := rng.Intn(len(placed))
				l := placed[i]
				s.Release(l.uid, l.p)
				for _, id := range s.GlobalCoreIDs(l.p) {
					delete(owned, id)
				}
				placed = append(placed[:i], placed[i+1:]...)
			}
		}
		// Conservation.
		return s.FreeCores() == 3*42-len(owned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
