package pilot_test

import (
	"fmt"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
)

// A pilot job end to end in simulated time: acquire nodes, bootstrap the
// agent, run a task, inspect the profile.
func ExampleSession() {
	eng := des.NewEngine()
	cluster := platform.NewCluster(2, platform.Summit())
	sess := pilot.NewSession(eng, platform.NewBatchSystem(cluster))

	pl, _ := sess.SubmitPilot(pilot.PilotDescription{Nodes: 2})
	tm := sess.NewTaskManager(pl)
	tasks, _ := tm.Submit([]pilot.TaskDescription{{
		Name:  "solver",
		Ranks: 41,
		Duration: func(pilot.ExecContext) float64 {
			return 120 // simulated seconds
		},
	}})

	eng.Run() // drive the simulation to completion
	task := tasks[0]
	fmt.Println(task.State(), "on", task.Placement().NodesSpanned(), "node(s)")
	fmt.Printf("ran for %.0f simulated seconds\n", task.ExecTime())
	// Output:
	// DONE on 1 node(s)
	// ran for 120 simulated seconds
}

// The same runtime drives wall-clock execution: swap the DES engine for a
// RealRuntime and the identical component code runs live.
func ExampleAgent_realTime() {
	rt := des.NewRealRuntime()
	defer rt.Shutdown()
	cluster := platform.NewCluster(1, platform.Summit())
	agent, _ := pilot.NewAgent(pilot.AgentConfig{
		Runtime:      rt,
		Nodes:        cluster.Nodes,
		BootstrapSec: 0.005,
	})
	agent.Start()

	task, _ := agent.Submit(pilot.TaskDescription{
		Ranks:    4,
		Duration: func(pilot.ExecContext) float64 { return 0.01 },
	})
	<-task.Done()
	fmt.Println(task.State())
	// Output: DONE
}
