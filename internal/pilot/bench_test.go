package pilot

import (
	"fmt"
	"testing"

	"github.com/hpcobs/gosoma/internal/des"
)

// BenchmarkSchedulerPolicies ablates packed vs spread placement: the same
// 80-task heterogeneous workload on 10 nodes, reporting the makespan under
// each policy (DESIGN.md §6).
func BenchmarkSchedulerPolicies(b *testing.B) {
	run := func(spread bool) float64 {
		eng := des.NewEngine()
		a, err := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(10)})
		if err != nil {
			b.Fatal(err)
		}
		a.Start()
		for i := 0; i < 80; i++ {
			ranks := []int{20, 41, 82, 164}[i%4]
			if _, err := a.Submit(TaskDescription{
				Ranks: ranks, Spread: spread,
				Duration: func(ExecContext) float64 { return 100 },
			}); err != nil {
				b.Fatal(err)
			}
		}
		return eng.Run()
	}
	for _, tc := range []struct {
		name   string
		spread bool
	}{{"packed", false}, {"spread", true}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				last = run(tc.spread)
			}
			b.ReportMetric(last, "makespan_s")
		})
	}
}

// BenchmarkAgentThroughput measures task-processing throughput of the agent
// loop itself: many tiny single-core tasks through the full state machine.
func BenchmarkAgentThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := des.NewEngine()
		a, err := NewAgent(AgentConfig{Runtime: eng, Nodes: summitNodes(4)})
		if err != nil {
			b.Fatal(err)
		}
		a.Start()
		const tasks = 500
		for j := 0; j < tasks; j++ {
			if _, err := a.Submit(TaskDescription{
				Ranks:    1,
				Duration: func(ExecContext) float64 { return 1 },
			}); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
		_, _, done, failed := a.Counts()
		if done != tasks || failed != 0 {
			b.Fatalf("done=%d failed=%d", done, failed)
		}
	}
}

// BenchmarkTryPlace measures the scheduler's placement cost at a Scaling
// B-like node count.
func BenchmarkTryPlace(b *testing.B) {
	s := NewScheduler(summitNodes(512))
	td := &TaskDescription{Ranks: 1, CoresPerRank: 3, GPUsPerRank: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uid := fmt.Sprintf("t%d", i)
		p, ok := s.TryPlace(td, uid)
		if !ok {
			b.Fatal("placement failed")
		}
		s.Release(uid, p)
	}
}
