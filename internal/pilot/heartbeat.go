package pilot

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/des"
)

// Heartbeats: RP's client and agent exchange liveness signals so either
// side can detect the other's death (an agent lost to a node failure, a
// client lost to a login-node eviction). The Agent emits heartbeats on the
// session bus; a PilotWatcher on the client side declares the pilot dead
// when they stop arriving.

// heartbeatTopic is the bus topic heartbeats are published on, suffixed by
// the agent id.
const heartbeatTopic = "pilot.heartbeat"

// StartHeartbeats makes the agent publish a heartbeat every period seconds
// until the agent stops. It returns a stop function (also invoked by
// Agent.Stop).
func (a *Agent) StartHeartbeats(period float64) (stop func()) {
	if period <= 0 {
		period = 5
	}
	a.mu.Lock()
	if a.hbStop != nil {
		prev := a.hbStop
		a.mu.Unlock()
		return prev
	}
	a.mu.Unlock()

	var once sync.Once
	var cancel func()
	tick := func() bool {
		a.mu.Lock()
		stopped := a.stopped
		a.mu.Unlock()
		if stopped {
			return false
		}
		now := a.cfg.Runtime.Now()
		a.mu.Lock()
		a.lastBeat = now
		a.mu.Unlock()
		a.publish(heartbeatTopic, fmt.Sprintf("%.7f", now))
		return true
	}
	tick() // first beat immediately
	cancel = des.EveryRT(a.cfg.Runtime, period, tick)
	stopFn := func() { once.Do(cancel) }
	a.mu.Lock()
	a.hbStop = stopFn
	a.mu.Unlock()
	return stopFn
}

// LastHeartbeat returns the time of the most recent heartbeat (0 before the
// first).
func (a *Agent) LastHeartbeat() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastBeat
}

// PilotWatcher detects a dead agent: when no heartbeat lands within
// timeout, onDead fires once and the watcher stops.
type PilotWatcher struct {
	mu    sync.Mutex
	fired bool
	stop  func()
}

// WatchPilot polls the pilot's agent heartbeat every checkPeriod seconds
// and calls onDead once if the last beat is older than timeout. Returns the
// watcher; Stop cancels it.
func (s *Session) WatchPilot(p *Pilot, timeout, checkPeriod float64, onDead func()) *PilotWatcher {
	if checkPeriod <= 0 {
		checkPeriod = timeout / 3
	}
	if checkPeriod <= 0 {
		checkPeriod = 1
	}
	w := &PilotWatcher{}
	w.stop = des.EveryRT(s.Runtime, checkPeriod, func() bool {
		last := p.Agent.LastHeartbeat()
		if last == 0 {
			return true // not started yet
		}
		if s.Runtime.Now()-last <= timeout {
			return true
		}
		w.mu.Lock()
		already := w.fired
		w.fired = true
		w.mu.Unlock()
		if !already {
			s.Profiler.RecordState(s.Runtime.Now(), p.UID, PilotFailed)
			_ = s.Bus.Publish(p.UID, string(PilotFailed))
			if onDead != nil {
				onDead()
			}
		}
		return false
	})
	return w
}

// Fired reports whether the watcher declared the pilot dead.
func (w *PilotWatcher) Fired() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Stop cancels the watcher.
func (w *PilotWatcher) Stop() { w.stop() }
