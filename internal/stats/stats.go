// Package stats provides the summary statistics the SOMA analysis layer and
// the experiment harness report: means, deviations, percentiles, boxplot
// summaries (Figs. 6, 10, 11 are box/violin plots), histograms, and a small
// deterministic RNG wrapper for reproducible noise.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the five-number summary plus mean and count — the data
// behind one box in a boxplot figure.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Q1:     Percentile(xs, 25),
		Median: Median(xs),
		Q3:     Percentile(xs, 75),
		Max:    Max(xs),
	}
}

// String renders the summary in one compact row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// Histogram bins xs into n equal-width buckets spanning [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram computes an n-bucket histogram of xs.
func NewHistogram(xs []float64, n int) Histogram {
	h := Histogram{Counts: make([]int, n)}
	if len(xs) == 0 || n == 0 {
		return h
	}
	h.Lo, h.Hi = Min(xs), Max(xs)
	span := h.Hi - h.Lo
	for _, x := range xs {
		i := 0
		if span > 0 {
			i = int((x - h.Lo) / span * float64(n))
			if i >= n {
				i = n - 1
			}
		}
		h.Counts[i]++
	}
	return h
}

// Bar renders the histogram as ASCII rows for terminal reports.
func (h Histogram) Bar(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	span := h.Hi - h.Lo
	for i, c := range h.Counts {
		lo := h.Lo + span*float64(i)/float64(len(h.Counts))
		hi := h.Lo + span*float64(i+1)/float64(len(h.Counts))
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&sb, "[%10.2f,%10.2f) %-*s %d\n", lo, hi, width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Deterministic noise. A tiny SplitMix64/xorshift generator so experiments
// are reproducible without importing math/rand state management everywhere.

// RNG is a small deterministic generator.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. A zero seed is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(mu + sigma*N(0,1)) — the task-duration noise model
// used throughout the workload package.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Jitter returns base scaled by a lognormal factor with the given coefficient
// of variation: Jitter(base, 0.05) varies base by about ±5%.
func (r *RNG) Jitter(base, cv float64) float64 {
	if cv <= 0 {
		return base
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	return base * r.LogNormal(-sigma*sigma/2, sigma)
}
