package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 40 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Variance(xs) != 4 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Sum(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty aggregate should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty min/max should be ±Inf")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
		{-5, 15}, {120, 50}, {10, 17},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated (Percentile sorts a copy).
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	s := Summarize(xs)
	if s.N != 9 || s.Mean != 5 || s.Median != 5 || s.Min != 1 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 3 || s.Q3 != 7 || s.IQR() != 4 {
		t.Fatalf("quartiles = %v %v", s.Q1, s.Q3)
	}
	str := s.String()
	if !strings.Contains(str, "n=9") || !strings.Contains(str, "med=5.00") {
		t.Fatalf("String = %q", str)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %v", h.Counts)
	}
	if h.Counts[4] != 2 { // 8 and 9 (max goes into last bucket)
		t.Fatalf("last bucket = %d: %v", h.Counts[4], h.Counts)
	}
	bar := h.Bar(20)
	if !strings.Contains(bar, "#") {
		t.Fatal("Bar output missing bars")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{3, 3, 3}, 4)
	if h.Counts[0] != 3 {
		t.Fatalf("constant input should land in bucket 0: %v", h.Counts)
	}
	h = NewHistogram(nil, 3)
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatal("empty input should give empty histogram")
		}
	}
	_ = NewHistogram([]float64{1}, 0) // must not panic
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed should be remapped")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) never produced all values: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	n := 50_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	if m := Mean(xs); !almost(m, 0, 0.02) {
		t.Errorf("norm mean = %v", m)
	}
	if s := StdDev(xs); !almost(s, 1, 0.02) {
		t.Errorf("norm std = %v", s)
	}
}

func TestJitterMeanPreserving(t *testing.T) {
	r := NewRNG(13)
	n := 50_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Jitter(100, 0.05)
	}
	if m := Mean(xs); !almost(m, 100, 0.5) {
		t.Errorf("jitter mean = %v, want ~100", m)
	}
	if s := StdDev(xs); !almost(s, 5, 0.5) {
		t.Errorf("jitter std = %v, want ~5", s)
	}
	if r.Jitter(50, 0) != 50 {
		t.Error("cv=0 should return base exactly")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(uint64(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize is consistent: min ≤ q1 ≤ med ≤ q3 ≤ max and mean in range.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(uint64(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
