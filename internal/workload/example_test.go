package workload_test

import (
	"fmt"

	"github.com/hpcobs/gosoma/internal/workload"
)

// The calibrated strong-scaling curve behind Fig. 4: steep gains to two
// nodes, little beyond.
func ExampleOpenFOAM_MeanExecTime() {
	m := workload.DefaultOpenFOAM()
	for _, ranks := range []int{20, 41, 82, 164} {
		nodes := workload.MinNodesFor(ranks, 42)
		fmt.Printf("%3d ranks on %d node(s): %5.1f s\n",
			ranks, nodes, m.MeanExecTime(ranks, nodes))
	}
	// Output:
	//  20 ranks on 1 node(s): 333.5 s
	//  41 ranks on 1 node(s): 185.9 s
	//  82 ranks on 2 node(s): 124.7 s
	// 164 ranks on 4 node(s): 112.7 s
}

// GPU-bound DDMD stages barely react to CPU cores — the Fig. 9 mechanism.
func ExampleDDMD_SimTime() {
	m := workload.DefaultDDMD()
	fmt.Printf("1 core: %.0f s, 7 cores: %.0f s\n", m.SimTime(1, nil), m.SimTime(7, nil))
	fmt.Printf("sim stage CPU activity: %.0f%%\n",
		m.CPUActivity(workload.StageSimulation)*100)
	// Output:
	// 1 core: 300 s, 7 cores: 270 s
	// sim stage CPU activity: 20%
}

// The Fig. 11 overhead model: monitoring every 10 s costs ~1.4% at 64 nodes
// and grows with scale; 60 s monitoring is near-free.
func ExampleOverhead_SlowdownFactor() {
	o := workload.DefaultOverhead()
	for _, nodes := range []int{64, 512} {
		f := o.SlowdownFactor(nodes, 10, 1)
		fmt.Printf("%d nodes @10s: +%.1f%%\n", nodes, (f-1)*100)
	}
	fmt.Printf("64 nodes @60s: +%.2f%%\n", (o.SlowdownFactor(64, 60, 1)-1)*100)
	// Output:
	// 64 nodes @10s: +1.4%
	// 512 nodes @10s: +4.0%
	// 64 nodes @60s: +0.23%
}
