// Package workload provides the synthetic application models that stand in
// for the paper's two workloads — the ExaAM OpenFOAM (AdditiveFOAM) melt-pool
// ensemble and the DeepDriveMD mini-app — plus the monitoring-overhead model
// used by the Scaling B experiment.
//
// The models are calibrated to reproduce the *shapes* the paper reports, not
// Summit's absolute seconds:
//
//   - OpenFOAM strong scaling (Fig. 4): execution time falls steeply from 20
//     to 82 ranks and flattens beyond two nodes (164 ranks).
//   - Placement sensitivity (Fig. 6): spreading a small task over more nodes
//     helps, because co-located busy cores contend; the gain is smaller at 41
//     ranks where cross-node communication starts to bite.
//   - Per-rank MPI breakdown (Fig. 5): MPI_Recv and MPI_Waitall dominate.
//   - DDMD stage times (Fig. 9): simulation and training are GPU-bound, so
//     CPU cores per task barely move the needle and node CPU utilization
//     stays low; parallel training splits the work at an MPI_Reduce cost.
//   - Monitoring overhead (Fig. 11): frequent (10 s) publishing costs a few
//     percent, growing with node count; 60 s publishing is near-free.
package workload

import (
	"math"

	"github.com/hpcobs/gosoma/internal/stats"
)

// ---------------------------------------------------------------------------
// OpenFOAM ensemble task model.

// OpenFOAM models one AdditiveFOAM melt-pool simulation task executed with a
// configurable number of MPI ranks.
type OpenFOAM struct {
	// SerialSec is the non-parallelizable fraction (I/O, setup).
	SerialSec float64
	// WorkRankSec is the total parallel work in rank-seconds.
	WorkRankSec float64
	// CommBase scales communication time, which grows as ranks^CommExp.
	CommBase float64
	// CommExp is the communication growth exponent.
	CommExp float64
	// CrossNodeFactor is the extra communication cost per additional node
	// the ranks span (network hops instead of shared memory).
	CrossNodeFactor float64
	// ContentionFactor scales the slowdown caused by other co-running
	// tasks' busy cores (shared interconnect/filesystem contention).
	ContentionFactor float64
	// MemFactor scales intra-node memory-bandwidth contention among the
	// task's own ranks: packing many ranks onto one node shares that node's
	// memory bandwidth, so spreading the same ranks across more nodes runs
	// faster (the Fig. 6 effect). The effect saturates at MemSatDensity.
	MemFactor float64
	// MemSatDensity is the own-rank density beyond which memory-bandwidth
	// contention no longer grows (the node is already bandwidth-bound).
	MemSatDensity float64
	// CV is the lognormal coefficient of variation applied to the total.
	CV float64
}

// DefaultOpenFOAM returns the calibrated model used by the experiments.
func DefaultOpenFOAM() OpenFOAM {
	return OpenFOAM{
		SerialSec:        25,
		WorkRankSec:      6000,
		CommBase:         0.9,
		CommExp:          0.75,
		CrossNodeFactor:  0.08,
		ContentionFactor: 0.15,
		MemFactor:        0.10,
		MemSatDensity:    0.5,
		CV:               0.06,
	}
}

// Placement describes where a task's ranks landed, as the scheduler decided.
type Placement struct {
	// NodesSpanned is how many distinct nodes hold at least one rank.
	NodesSpanned int
	// Contention is the fraction of the allocation's cores busy with
	// *other* tasks at launch, in [0,1] (shared-resource contention).
	Contention float64
	// OwnDensity is the task's average ranks-per-node divided by the cores
	// per node, in [0,1] — how tightly the task's own ranks are packed.
	// Zero is treated as fully packed for backward compatibility only when
	// NodesSpanned covers the ranks exactly; callers should set it.
	OwnDensity float64
}

// ExecTime returns the wall time of one task instance with the given rank
// count and placement. rng supplies reproducible run-to-run noise; a nil rng
// returns the deterministic mean.
func (m OpenFOAM) ExecTime(ranks int, p Placement, rng *stats.RNG) float64 {
	if ranks < 1 {
		ranks = 1
	}
	nodes := p.NodesSpanned
	if nodes < 1 {
		nodes = 1
	}
	compute := m.SerialSec + m.WorkRankSec/float64(ranks)
	comm := m.CommBase * math.Pow(float64(ranks), m.CommExp) *
		(1 + m.CrossNodeFactor*float64(nodes-1))
	memPenalty := 1.0
	if m.MemSatDensity > 0 {
		density := clamp01(p.OwnDensity)
		if density > m.MemSatDensity {
			density = m.MemSatDensity
		}
		memPenalty = 1 + m.MemFactor*density/m.MemSatDensity
	}
	t := (compute + comm) * memPenalty *
		(1 + m.ContentionFactor*clamp01(p.Contention))
	if rng != nil {
		t = rng.Jitter(t, m.CV)
	}
	return t
}

// MeanExecTime is ExecTime without noise or contention — the headline
// strong-scaling curve of Fig. 4.
func (m OpenFOAM) MeanExecTime(ranks, nodesSpanned int) float64 {
	return m.ExecTime(ranks, Placement{NodesSpanned: nodesSpanned}, nil)
}

// MinNodesFor returns how many nodes a task with the given ranks needs when
// packed (coresPerNode usable cores per node).
func MinNodesFor(ranks, coresPerNode int) int {
	if coresPerNode <= 0 {
		return 1
	}
	n := (ranks + coresPerNode - 1) / coresPerNode
	if n < 1 {
		n = 1
	}
	return n
}

// RankProfile is the TAU view of one rank: seconds spent per function.
type RankProfile struct {
	Rank  int
	Times map[string]float64
}

// Functions profiled for the OpenFOAM tasks, matching Fig. 5's categories.
var OpenFOAMFunctions = []string{
	"MPI_Recv", "MPI_Waitall", "MPI_Allreduce", "MPI_Isend", ".TAU application",
}

// RankBreakdown splits a task's execution time into per-rank, per-function
// times the TAU plugin publishes. Rank 0 coordinates and therefore spends
// more time in MPI_Recv; the others skew toward MPI_Waitall. The paper's
// Fig. 5 observation — "a large portion of time for each rank is spent in
// MPI_Recv() and MPI_Waitall()" — holds for every rank.
func (m OpenFOAM) RankBreakdown(ranks int, execTime float64, rng *stats.RNG) []RankProfile {
	out := make([]RankProfile, ranks)
	for r := 0; r < ranks; r++ {
		recv, wait := 0.26, 0.22
		if r == 0 {
			recv, wait = 0.38, 0.12
		}
		jig := func(f float64) float64 {
			if rng == nil {
				return f
			}
			return rng.Jitter(f, 0.10)
		}
		recv, wait = jig(recv), jig(wait)
		allre := jig(0.06)
		isend := jig(0.04)
		mpi := recv + wait + allre + isend
		if mpi > 0.9 {
			scale := 0.9 / mpi
			recv, wait, allre, isend = recv*scale, wait*scale, allre*scale, isend*scale
			mpi = 0.9
		}
		out[r] = RankProfile{
			Rank: r,
			Times: map[string]float64{
				"MPI_Recv":         recv * execTime,
				"MPI_Waitall":      wait * execTime,
				"MPI_Allreduce":    allre * execTime,
				"MPI_Isend":        isend * execTime,
				".TAU application": (1 - mpi) * execTime,
			},
		}
	}
	return out
}

// CPUActivity is the busy fraction of an OpenFOAM rank's core (MPI busy-wait
// keeps cores hot).
func (m OpenFOAM) CPUActivity() float64 { return 0.95 }

// ---------------------------------------------------------------------------
// DeepDriveMD mini-app model.

// DDMDStage names one of the four ordered stages of a DDMD phase.
type DDMDStage int

// The four stages, in execution order (paper §3.2).
const (
	StageSimulation DDMDStage = iota
	StageTraining
	StageSelection
	StageAgent
)

var ddmdStageNames = [...]string{"simulation", "training", "selection", "agent"}

// String returns the stage name.
func (s DDMDStage) String() string {
	if int(s) < len(ddmdStageNames) {
		return ddmdStageNames[s]
	}
	return "unknown"
}

// DDMD models one DeepDriveMD mini-app phase. The baseline workflow runs 12
// simulation tasks and 1 task each for training, selection, and agent; the
// sim/train/agent stages use CPU cores plus one GPU per task, selection is
// CPU-only.
type DDMD struct {
	// SimGPUSec is the GPU-resident part of one simulation task.
	SimGPUSec float64
	// SimCPUSec is the CPU part, which shrinks weakly with more cores.
	SimCPUSec float64
	// SimCPUExp is the core-scaling exponent of the CPU part (≪1: the
	// paper found "the effect of using fewer CPU cores per task was
	// minimal").
	SimCPUExp float64
	// TrainGPUSec is serial training time on one GPU.
	TrainGPUSec float64
	// TrainReduceSec is the MPI_Reduce cost per doubling when training is
	// parallelized over several tasks (the paper "added additional
	// MPI_Reduce calls").
	TrainReduceSec float64
	// SelectSec is the CPU-only model-selection stage.
	SelectSec float64
	// AgentGPUSec is the inference stage.
	AgentGPUSec float64
	// CV is the lognormal noise on every stage duration.
	CV float64

	// SimTasks is the number of simulation tasks per phase (baseline 12).
	SimTasks int
	// GPUsPerTask for sim/train/agent (baseline 1).
	GPUsPerTask int
}

// DefaultDDMD returns the calibrated mini-app model.
func DefaultDDMD() DDMD {
	return DDMD{
		SimGPUSec:      240,
		SimCPUSec:      60,
		SimCPUExp:      0.35,
		TrainGPUSec:    180,
		TrainReduceSec: 8,
		SelectSec:      45,
		AgentGPUSec:    90,
		CV:             0.05,
		SimTasks:       12,
		GPUsPerTask:    1,
	}
}

// SimTime returns the duration of one simulation task given its CPU cores.
func (m DDMD) SimTime(cores int, rng *stats.RNG) float64 {
	if cores < 1 {
		cores = 1
	}
	t := m.SimGPUSec + m.SimCPUSec/math.Pow(float64(cores), m.SimCPUExp)
	return jitter(t, m.CV, rng)
}

// TrainTime returns the duration of the training stage when split across
// numTasks parallel training tasks (each on its own GPU), including the
// MPI_Reduce synchronization cost.
func (m DDMD) TrainTime(numTasks, cores int, rng *stats.RNG) float64 {
	if numTasks < 1 {
		numTasks = 1
	}
	if cores < 1 {
		cores = 1
	}
	t := m.TrainGPUSec/float64(numTasks) +
		m.TrainReduceSec*math.Log2(float64(numTasks)) +
		10/math.Pow(float64(cores), m.SimCPUExp)
	return jitter(t, m.CV, rng)
}

// SelectTime returns the duration of the CPU-only selection stage.
func (m DDMD) SelectTime(rng *stats.RNG) float64 { return jitter(m.SelectSec, m.CV, rng) }

// AgentTime returns the duration of the inference stage.
func (m DDMD) AgentTime(rng *stats.RNG) float64 { return jitter(m.AgentGPUSec, m.CV, rng) }

// StageTime dispatches on stage for the given per-task configuration.
func (m DDMD) StageTime(stage DDMDStage, coresPerTask, trainTasks int, rng *stats.RNG) float64 {
	switch stage {
	case StageSimulation:
		return m.SimTime(coresPerTask, rng)
	case StageTraining:
		return m.TrainTime(trainTasks, coresPerTask, rng)
	case StageSelection:
		return m.SelectTime(rng)
	default:
		return m.AgentTime(rng)
	}
}

// CPUActivity returns the busy fraction of a task's allocated cores during a
// stage. GPU-bound stages leave allocated cores mostly idle — the mechanism
// behind Fig. 9's persistently low CPU utilization.
func (m DDMD) CPUActivity(stage DDMDStage) float64 {
	switch stage {
	case StageSimulation:
		return 0.20
	case StageTraining:
		return 0.30
	case StageSelection:
		return 0.90
	default:
		return 0.25
	}
}

// TaskCount returns how many tasks a stage launches given the configured
// number of training tasks.
func (m DDMD) TaskCount(stage DDMDStage, trainTasks int) int {
	switch stage {
	case StageSimulation:
		return m.SimTasks
	case StageTraining:
		if trainTasks < 1 {
			return 1
		}
		return trainTasks
	default:
		return 1
	}
}

// UsesGPU reports whether the stage's tasks claim a GPU.
func (m DDMD) UsesGPU(stage DDMDStage) bool { return stage != StageSelection }

// ---------------------------------------------------------------------------
// Monitoring overhead model.

// Overhead models the application slowdown caused by SOMA monitoring
// activity — the quantity the paper's Fig. 11 measures. The dominant cost is
// the per-node publish rate (network interrupts, service contention on
// shared fabric), which grows with the square root of the monitored node
// count for a fixed SOMA-rank:pipeline ratio.
type Overhead struct {
	// PctAtRef is the overhead percentage at RefNodes nodes publishing
	// every RefInterval seconds.
	PctAtRef float64
	// RefNodes and RefInterval define the calibration point.
	RefNodes    int
	RefInterval float64
}

// DefaultOverhead calibrates against the paper's 64-node, 10 s
// frequent-exclusive measurement (+1.4 %).
func DefaultOverhead() Overhead {
	return Overhead{PctAtRef: 1.4, RefNodes: 64, RefInterval: 10}
}

// SlowdownFactor returns the multiplicative task slowdown (≥ 1) for the
// given monitored node count, publish interval in seconds, and
// pipelines-per-SOMA-rank ratio. The ratio term is weak: the paper's
// Scaling A found "the ratio of SOMA ranks to pipelines does not have much
// effect".
func (o Overhead) SlowdownFactor(nodes int, intervalSec float64, pipelinesPerRank float64) float64 {
	if nodes < 1 || intervalSec <= 0 {
		return 1
	}
	pct := o.PctAtRef *
		math.Sqrt(float64(nodes)/float64(o.RefNodes)) *
		(o.RefInterval / intervalSec)
	if pipelinesPerRank > 1 {
		pct *= 1 + 0.03*math.Log2(pipelinesPerRank)
	}
	return 1 + pct/100
}

// SharedPlacementFactor models the cost of opportunistic (shared-mode)
// scheduling at scale: "RADICAL-Pilot is non-deterministic in scheduling and
// may make an inefficient placement during runtime that delays one or more
// pipelines" (paper §4.3). A minority of pipelines draw a placement delay
// whose magnitude grows linearly with the monitored node count; the rest
// are unaffected. This produces Fig. 11's shared-mode signature: higher
// outliers at every scale, and a mean that crosses the exclusive baseline
// around 512 nodes.
func (o Overhead) SharedPlacementFactor(nodes int, rng *stats.RNG) float64 {
	if nodes < 1 || rng == nil {
		return 1
	}
	const hitProb = 0.15
	if rng.Float64() >= hitProb {
		return 1
	}
	// Mean penalty across all pipelines ≈ nodes/250 percent; the few hit
	// pipelines absorb it all, which is what creates the high outliers.
	pct := float64(nodes) / 250.0 / hitProb
	return 1 + pct/100*(0.5+rng.Float64()) // dispersed around the mean
}

// ---------------------------------------------------------------------------

func jitter(t, cv float64, rng *stats.RNG) float64 {
	if rng == nil {
		return t
	}
	return rng.Jitter(t, cv)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
