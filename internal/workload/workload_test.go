package workload

import (
	"math"
	"testing"

	"github.com/hpcobs/gosoma/internal/stats"
)

// TestOpenFOAMStrongScalingShape pins the Fig. 4 shape: execution time drops
// steeply from 20 to 82 ranks, then shows only limited benefit at 164 ranks
// ("limited benefit to scaling the OpenFOAM tasks beyond two nodes").
func TestOpenFOAMStrongScalingShape(t *testing.T) {
	m := DefaultOpenFOAM()
	cores := 42
	times := map[int]float64{}
	for _, r := range []int{20, 41, 82, 164} {
		times[r] = m.MeanExecTime(r, MinNodesFor(r, cores))
	}
	if !(times[20] > times[41] && times[41] > times[82] && times[82] > times[164]) {
		t.Fatalf("scaling not monotone: %v", times)
	}
	gain2082 := times[20] / times[82]
	gain82164 := times[82] / times[164]
	if gain2082 < 2 {
		t.Errorf("20→82 speedup = %.2f, want substantial (>2x)", gain2082)
	}
	if gain82164 > 1.25 {
		t.Errorf("82→164 speedup = %.2f, want limited (<1.25x)", gain82164)
	}
}

func TestOpenFOAMContentionSlowsDown(t *testing.T) {
	m := DefaultOpenFOAM()
	free := m.ExecTime(20, Placement{NodesSpanned: 1, Contention: 0}, nil)
	busy := m.ExecTime(20, Placement{NodesSpanned: 1, Contention: 0.8}, nil)
	if busy <= free {
		t.Fatalf("contention did not slow task: %v vs %v", busy, free)
	}
	ratio := busy / free
	if ratio < 1.1 || ratio > 1.3 {
		t.Errorf("contention ratio = %.3f, want ~1.2", ratio)
	}
}

// TestOpenFOAMSpreadTradeoff pins the Fig. 6 mechanism: packing a task's
// ranks onto one node contends for that node's memory bandwidth, so
// spreading wins despite the cross-node communication penalty; at 41 ranks
// the relative gain is smaller because communication grows with rank count.
func TestOpenFOAMSpreadTradeoff(t *testing.T) {
	m := DefaultOpenFOAM()
	const coresPerNode = 42.0
	gain := func(ranks int) float64 {
		packed := m.ExecTime(ranks, Placement{
			NodesSpanned: 1, OwnDensity: float64(ranks) / coresPerNode}, nil)
		spread := m.ExecTime(ranks, Placement{
			NodesSpanned: 5, OwnDensity: float64(ranks) / (5 * coresPerNode)}, nil)
		return packed / spread
	}
	g20, g41 := gain(20), gain(41)
	if g20 <= 1.02 {
		t.Fatalf("spreading 20 ranks should help: gain %.3f", g20)
	}
	if g41 >= g20 {
		t.Errorf("41-rank gain (%.3f) should be below 20-rank gain (%.3f)", g41, g20)
	}
}

// TestOpenFOAMMemoryDensityEffect pins the saturating intra-node bandwidth
// model directly.
func TestOpenFOAMMemoryDensityEffect(t *testing.T) {
	m := DefaultOpenFOAM()
	lo := m.ExecTime(20, Placement{NodesSpanned: 1, OwnDensity: 0.1}, nil)
	hi := m.ExecTime(20, Placement{NodesSpanned: 1, OwnDensity: 0.48}, nil)
	sat := m.ExecTime(20, Placement{NodesSpanned: 1, OwnDensity: 0.95}, nil)
	if hi <= lo {
		t.Fatalf("denser packing should be slower: %v vs %v", hi, lo)
	}
	if sat != m.ExecTime(20, Placement{NodesSpanned: 1, OwnDensity: 0.5}, nil) {
		t.Fatalf("density effect should saturate at MemSatDensity")
	}
	ratio := sat / lo
	if ratio < 1.05 || ratio > 1.15 {
		t.Errorf("max memory penalty = %.3f, want ~1.08", ratio)
	}
}

func TestOpenFOAMNoiseReproducible(t *testing.T) {
	m := DefaultOpenFOAM()
	p := Placement{NodesSpanned: 1}
	a := m.ExecTime(20, p, stats.NewRNG(5))
	b := m.ExecTime(20, p, stats.NewRNG(5))
	if a != b {
		t.Fatal("same seed should give same time")
	}
	mean := m.MeanExecTime(20, 1)
	if math.Abs(a-mean)/mean > 0.5 {
		t.Fatalf("noisy sample %v too far from mean %v", a, mean)
	}
}

func TestOpenFOAMDegenerateInputs(t *testing.T) {
	m := DefaultOpenFOAM()
	if m.ExecTime(0, Placement{}, nil) <= 0 {
		t.Fatal("zero ranks should clamp, not blow up")
	}
	if m.ExecTime(20, Placement{NodesSpanned: 0, Contention: -3}, nil) <= 0 {
		t.Fatal("degenerate placement should clamp")
	}
	over := m.ExecTime(20, Placement{NodesSpanned: 1, Contention: 9}, nil)
	capped := m.ExecTime(20, Placement{NodesSpanned: 1, Contention: 1}, nil)
	if over != capped {
		t.Fatal("contention should clamp to 1")
	}
}

func TestMinNodesFor(t *testing.T) {
	cases := []struct{ ranks, cores, want int }{
		{20, 42, 1}, {41, 42, 1}, {42, 42, 1}, {43, 42, 2},
		{82, 42, 2}, {164, 42, 4}, {1, 42, 1}, {5, 0, 1},
	}
	for _, c := range cases {
		if got := MinNodesFor(c.ranks, c.cores); got != c.want {
			t.Errorf("MinNodesFor(%d,%d) = %d want %d", c.ranks, c.cores, got, c.want)
		}
	}
}

// TestRankBreakdownShape pins Fig. 5: every rank spends a large portion of
// time in MPI_Recv and MPI_Waitall, and the per-rank totals sum to the task
// execution time.
func TestRankBreakdownShape(t *testing.T) {
	m := DefaultOpenFOAM()
	const exec = 300.0
	profs := m.RankBreakdown(20, exec, stats.NewRNG(3))
	if len(profs) != 20 {
		t.Fatalf("profiles = %d", len(profs))
	}
	for _, p := range profs {
		total := 0.0
		for _, v := range p.Times {
			if v < 0 {
				t.Fatalf("rank %d negative time", p.Rank)
			}
			total += v
		}
		if math.Abs(total-exec) > 1e-6 {
			t.Fatalf("rank %d total %.4f != exec %.4f", p.Rank, total, exec)
		}
		mpiShare := (p.Times["MPI_Recv"] + p.Times["MPI_Waitall"]) / exec
		if mpiShare < 0.3 || mpiShare > 0.7 {
			t.Errorf("rank %d Recv+Waitall share = %.2f, want dominant", p.Rank, mpiShare)
		}
	}
	// Rank 0 coordinates: more Recv than the others on average.
	others := 0.0
	for _, p := range profs[1:] {
		others += p.Times["MPI_Recv"]
	}
	others /= float64(len(profs) - 1)
	if profs[0].Times["MPI_Recv"] <= others {
		t.Errorf("rank 0 Recv %.2f should exceed others' mean %.2f",
			profs[0].Times["MPI_Recv"], others)
	}
}

func TestDDMDStageTimes(t *testing.T) {
	m := DefaultDDMD()
	// Core scaling of the simulation must be weak (paper: "the effect of
	// using fewer CPU cores per task was minimal").
	t1 := m.SimTime(1, nil)
	t7 := m.SimTime(7, nil)
	if t7 >= t1 {
		t.Fatalf("more cores should not slow sim: %v vs %v", t7, t1)
	}
	if rel := (t1 - t7) / t1; rel > 0.15 {
		t.Errorf("core effect = %.1f%%, want minimal (<15%%)", rel*100)
	}
	// Parallel training helps but has a reduce cost.
	tr1 := m.TrainTime(1, 7, nil)
	tr4 := m.TrainTime(4, 7, nil)
	if tr4 >= tr1 {
		t.Fatalf("parallel training should help: %v vs %v", tr4, tr1)
	}
	if tr4 < tr1/4 {
		t.Fatalf("parallel training ignores MPI_Reduce cost: %v vs %v/4", tr4, tr1)
	}
	if m.SelectTime(nil) <= 0 || m.AgentTime(nil) <= 0 {
		t.Fatal("stage times must be positive")
	}
}

func TestDDMDStageDispatch(t *testing.T) {
	m := DefaultDDMD()
	if m.StageTime(StageSimulation, 3, 1, nil) != m.SimTime(3, nil) {
		t.Error("sim dispatch")
	}
	if m.StageTime(StageTraining, 7, 4, nil) != m.TrainTime(4, 7, nil) {
		t.Error("train dispatch")
	}
	if m.StageTime(StageSelection, 1, 1, nil) != m.SelectTime(nil) {
		t.Error("select dispatch")
	}
	if m.StageTime(StageAgent, 1, 1, nil) != m.AgentTime(nil) {
		t.Error("agent dispatch")
	}
}

func TestDDMDStageMeta(t *testing.T) {
	m := DefaultDDMD()
	if m.TaskCount(StageSimulation, 1) != 12 {
		t.Error("baseline sim tasks != 12")
	}
	if m.TaskCount(StageTraining, 4) != 4 || m.TaskCount(StageTraining, 0) != 1 {
		t.Error("train task count")
	}
	if m.TaskCount(StageSelection, 9) != 1 || m.TaskCount(StageAgent, 9) != 1 {
		t.Error("select/agent are single tasks")
	}
	if !m.UsesGPU(StageSimulation) || !m.UsesGPU(StageTraining) || !m.UsesGPU(StageAgent) {
		t.Error("sim/train/agent use GPUs")
	}
	if m.UsesGPU(StageSelection) {
		t.Error("selection is CPU-only")
	}
	for s, want := range map[DDMDStage]string{
		StageSimulation: "simulation", StageTraining: "training",
		StageSelection: "selection", StageAgent: "agent", DDMDStage(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("stage %d name %q", s, s.String())
		}
	}
}

// TestDDMDActivityLow pins Fig. 9's mechanism: GPU-bound stages keep CPU
// activity low regardless of allocated cores.
func TestDDMDActivityLow(t *testing.T) {
	m := DefaultDDMD()
	if a := m.CPUActivity(StageSimulation); a > 0.4 {
		t.Errorf("sim activity = %v, want low", a)
	}
	if a := m.CPUActivity(StageTraining); a > 0.4 {
		t.Errorf("train activity = %v, want low", a)
	}
	if a := m.CPUActivity(StageSelection); a < 0.7 {
		t.Errorf("selection activity = %v, want high (CPU-only)", a)
	}
	if a := DefaultOpenFOAM().CPUActivity(); a < 0.9 {
		t.Errorf("openfoam activity = %v, want ~busy-wait", a)
	}
}

// TestOverheadMatchesFig11 pins the Scaling B overhead shape: ~1.4% at 64
// nodes with 10 s publishing, growing to ~4-5% at 512 nodes; 60 s publishing
// is well under 1%.
func TestOverheadMatchesFig11(t *testing.T) {
	o := DefaultOverhead()
	pct := func(nodes int, interval float64) float64 {
		return (o.SlowdownFactor(nodes, interval, 1) - 1) * 100
	}
	if p := pct(64, 10); math.Abs(p-1.4) > 0.2 {
		t.Errorf("64-node frequent overhead = %.2f%%, want ~1.4%%", p)
	}
	p512 := pct(512, 10)
	if p512 < 3.0 || p512 > 5.5 {
		t.Errorf("512-node frequent overhead = %.2f%%, want 3-5.5%%", p512)
	}
	for _, nodes := range []int{64, 128, 256, 512} {
		if p := pct(nodes, 60); p > 1.0 {
			t.Errorf("%d-node 60s overhead = %.2f%%, want <1%%", nodes, p)
		}
	}
	// Monotone in node count, inverse in interval.
	if pct(128, 10) <= pct(64, 10) || pct(256, 10) <= pct(128, 10) {
		t.Error("overhead should grow with node count")
	}
	if pct(64, 10) <= pct(64, 60) {
		t.Error("overhead should grow with frequency")
	}
}

func TestOverheadRatioWeak(t *testing.T) {
	o := DefaultOverhead()
	base := o.SlowdownFactor(64, 60, 1)
	at8 := o.SlowdownFactor(64, 60, 8)
	if at8 < base {
		t.Fatal("higher pipeline:rank ratio should not reduce overhead")
	}
	// Paper Scaling A: "the ratio of SOMA ranks to pipelines does not have
	// much effect" — 8:1 must change overhead by well under a percent.
	if (at8-base)*100 > 0.5 {
		t.Errorf("ratio effect = %.3f%%, want weak", (at8-base)*100)
	}
}

func TestOverheadDegenerate(t *testing.T) {
	o := DefaultOverhead()
	if o.SlowdownFactor(0, 10, 1) != 1 || o.SlowdownFactor(64, 0, 1) != 1 {
		t.Fatal("degenerate inputs should give factor 1")
	}
	if f := o.SlowdownFactor(64, 10, 0.5); f != o.SlowdownFactor(64, 10, 1) {
		t.Fatal("sub-1 ratio should behave like 1")
	}
}
