package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// JSON-over-HTTP handlers. Each RPC keeps its shape but swaps the binary
// conduit/mercury framing for JSON: trees render through conduit's
// MarshalJSON, durations become float seconds, trace ids become the same
// hex strings somactl prints. Errors come back as {"error": "..."} with
// 400 for a bad request, 404 for a missing resource, and 502 when the
// upstream call failed (the gateway is a bridge; upstream failure is not
// the gateway's 500).

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (g *Gateway) fail(w http.ResponseWriter, status int, err error) {
	g.httpErrors.Inc()
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseNS validates the ?ns= parameter. allowAll admits the empty
// namespace (subscriptions: "" means every namespace).
func parseNS(r *http.Request, allowAll bool) (core.Namespace, error) {
	ns := core.Namespace(r.URL.Query().Get("ns"))
	if ns == "" && allowAll {
		return ns, nil
	}
	if ns == core.NSAlerts && allowAll {
		return ns, nil
	}
	if !ns.Valid() {
		return ns, fmt.Errorf("unknown namespace %q", ns)
	}
	return ns, nil
}

// handleQuery serves GET /api/query?ns=<ns>&path=<dotted.path>.
//
// The fast path: the upstream call is QueryDelta, so an unchanged
// namespace answers with a ~30-byte "unchanged" frame from the service's
// generation-keyed snapshot cache, and the gateway then reuses the JSON
// body it marshaled last time — a repeat query re-encodes nothing on
// either side.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	ns, err := parseNS(r, false)
	if err != nil {
		g.fail(w, http.StatusBadRequest, err)
		return
	}
	path := r.URL.Query().Get("path")
	key := string(ns) + "\x00" + path
	tree, changed, err := g.client.QueryDelta(ns, path)
	if err != nil {
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	if !changed {
		if body, ok := g.cachedQuery(key); ok {
			g.cacheHits.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Soma-Cache", "hit")
			w.Write(body)
			return
		}
	}
	g.cacheMisses.Inc()
	body, err := json.Marshal(struct {
		NS   core.Namespace `json:"ns"`
		Path string         `json:"path"`
		Data *conduit.Node  `json:"data"`
	}{ns, path, tree})
	if err != nil {
		g.fail(w, http.StatusInternalServerError, err)
		return
	}
	g.storeQuery(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Soma-Cache", "miss")
	w.Write(body)
}

type seriesPointJSON struct {
	Time  float64 `json:"time"`
	Value float64 `json:"value"`
}

type seriesBucketJSON struct {
	Start float64 `json:"start"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int64   `json:"count"`
}

// handleSeries serves either a key listing
// (GET /api/series?ns=<ns>&pattern=<glob>) or one series
// (GET /api/series?ns=<ns>&key=<key>&level=raw|1s|10s&after=<t>).
func (g *Gateway) handleSeries(w http.ResponseWriter, r *http.Request) {
	ns, err := parseNS(r, false)
	if err != nil {
		g.fail(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	if pattern := q.Get("pattern"); pattern != "" || q.Get("key") == "" {
		keys, err := g.client.SeriesKeys(ns, pattern)
		if err != nil {
			g.fail(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			NS   core.Namespace `json:"ns"`
			Keys []string       `json:"keys"`
		}{ns, keys})
		return
	}
	key := q.Get("key")
	level := core.SeriesLevel(q.Get("level"))
	if level == "" {
		level = core.Level1s
	}
	switch level {
	case core.LevelRaw, core.Level1s, core.Level10s:
	default:
		g.fail(w, http.StatusBadRequest, fmt.Errorf("unknown level %q", level))
		return
	}
	after := 0.0
	if s := q.Get("after"); s != "" {
		after, err = strconv.ParseFloat(s, 64)
		if err != nil {
			g.fail(w, http.StatusBadRequest, fmt.Errorf("bad after %q", s))
			return
		}
	}
	se, err := g.client.Series(ns, key, level, after)
	if err != nil {
		if errors.Is(err, core.ErrNoSeries) {
			g.fail(w, http.StatusNotFound, err)
			return
		}
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	points := make([]seriesPointJSON, len(se.Points))
	for i, p := range se.Points {
		points[i] = seriesPointJSON{p.Time, p.Value}
	}
	buckets := make([]seriesBucketJSON, len(se.Bucket))
	for i, b := range se.Bucket {
		buckets[i] = seriesBucketJSON{b.Start, b.Min, b.Max, b.Mean, b.Count}
	}
	writeJSON(w, http.StatusOK, struct {
		NS      core.Namespace     `json:"ns"`
		Key     string             `json:"key"`
		Level   core.SeriesLevel   `json:"level"`
		Points  []seriesPointJSON  `json:"points"`
		Buckets []seriesBucketJSON `json:"buckets"`
	}{ns, se.Key, se.Level, points, buckets})
}

type alertRuleJSON struct {
	Name      string         `json:"name"`
	NS        core.Namespace `json:"ns"`
	Pattern   string         `json:"pattern"`
	Op        string         `json:"op"`
	Threshold float64        `json:"threshold"`
	WindowSec float64        `json:"window_sec"`
	Severity  string         `json:"severity"`
}

type alertStateJSON struct {
	Rule     string         `json:"rule"`
	NS       core.Namespace `json:"ns"`
	Key      string         `json:"key"`
	Severity string         `json:"severity"`
	Firing   bool           `json:"firing"`
	Value    float64        `json:"value"`
	Since    float64        `json:"since"`
}

// handleAlerts serves GET /api/alerts: every rule plus the current firing
// state per matched series key.
func (g *Gateway) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	rules, states, err := g.client.Alerts()
	if err != nil {
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	rj := make([]alertRuleJSON, len(rules))
	for i, r := range rules {
		rj[i] = alertRuleJSON{r.Name, r.NS, r.Pattern, r.Op, r.Threshold, r.WindowSec, r.Severity}
	}
	sj := make([]alertStateJSON, len(states))
	for i, s := range states {
		sj[i] = alertStateJSON{s.Rule, s.NS, s.Key, s.Severity, s.Firing, s.Value, s.Since}
	}
	writeJSON(w, http.StatusOK, struct {
		Rules  []alertRuleJSON  `json:"rules"`
		States []alertStateJSON `json:"states"`
	}{rj, sj})
}

type histogramJSON struct {
	Count     uint64         `json:"count"`
	SumSec    float64        `json:"sum_sec"`
	P50Sec    float64        `json:"p50_sec"`
	P95Sec    float64        `json:"p95_sec"`
	P99Sec    float64        `json:"p99_sec"`
	MaxSec    float64        `json:"max_sec"`
	Exemplars []exemplarJSON `json:"exemplars,omitempty"`
}

type exemplarJSON struct {
	CeilSec float64 `json:"ceil_sec"`
	TraceID string  `json:"trace_id"`
}

func telemetryJSON(snap *telemetry.Snapshot) interface{} {
	hists := make(map[string]histogramJSON, len(snap.Histograms))
	for name, h := range snap.Histograms {
		hj := histogramJSON{
			Count:  h.Count,
			SumSec: h.Sum.Seconds(),
			P50Sec: h.P50.Seconds(),
			P95Sec: h.P95.Seconds(),
			P99Sec: h.P99.Seconds(),
			MaxSec: h.Max.Seconds(),
		}
		for _, ex := range h.Exemplars {
			hj.Exemplars = append(hj.Exemplars, exemplarJSON{
				CeilSec: ex.Ceil.Seconds(),
				TraceID: fmt.Sprintf("%016x", ex.TraceID),
			})
		}
		hists[name] = hj
	}
	return struct {
		Counters   map[string]int64         `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]histogramJSON `json:"histograms"`
	}{snap.Counters, snap.Gauges, hists}
}

// handleTelemetry serves GET /api/telemetry — the upstream service's
// registry by default, the gateway's own with ?self=1.
func (g *Gateway) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("self") == "1" {
		writeJSON(w, http.StatusOK, telemetryJSON(g.reg.Snapshot()))
		return
	}
	snap, err := g.client.Telemetry()
	if err != nil {
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, telemetryJSON(snap))
}

type statsJSON struct {
	NS        core.Namespace `json:"ns"`
	Ranks     int            `json:"ranks"`
	Stripes   int            `json:"stripes"`
	Publishes int64          `json:"publishes"`
	Leaves    int64          `json:"leaves"`
	BytesIn   int64          `json:"bytes_in"`
	LastTime  float64        `json:"last_time"`
}

// handleStats serves GET /api/stats — per-namespace instance statistics.
func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats, err := g.client.Stats()
	if err != nil {
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	out := make([]statsJSON, 0, len(stats))
	for _, ns := range core.Namespaces {
		st, ok := stats[ns]
		if !ok {
			continue
		}
		out = append(out, statsJSON{st.Namespace, st.Ranks, st.Stripes,
			st.Publishes, st.Leaves, st.BytesIn, st.LastTime})
	}
	writeJSON(w, http.StatusOK, struct {
		Namespaces []statsJSON `json:"namespaces"`
	}{out})
}

type healthJSON struct {
	Status      string       `json:"status"`
	UptimeSec   float64      `json:"uptime_sec"`
	Publishes   int64        `json:"publishes"`
	CallsServed int64        `json:"calls_served"`
	ShedExpired int64        `json:"shed_expired"`
	Err         string       `json:"err,omitempty"`
	Breaker     string       `json:"breaker"`
	Degraded    bool         `json:"degraded"`
	WSActive    int64        `json:"ws_active"`
	Cluster     *clusterJSON `json:"cluster,omitempty"`
}

// clusterJSON is the upstream's sharded-cluster membership as it reports it
// (present only when the instance has joined a cluster).
type clusterJSON struct {
	Self  string            `json:"self"`
	Epoch string            `json:"epoch"` // ring epoch, hex
	Alive int               `json:"alive"` // live members including self
	Peers []clusterPeerJSON `json:"peers"`
}

type clusterPeerJSON struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Alive  bool   `json:"alive"`
	Misses int    `json:"misses"`
}

// handleHealth serves GET /api/health. It always answers 200: the report's
// status field says "unreachable" when somad is down, and the gateway
// being able to say so is itself the health signal — this is the route the
// smoke test polls through an upstream restart.
func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rep, _ := g.client.Health() // report is populated even on error
	h := healthJSON{
		Status:      rep.Status,
		UptimeSec:   rep.UptimeSec,
		Publishes:   rep.Publishes,
		CallsServed: rep.CallsServed,
		ShedExpired: rep.ShedExpired,
		Err:         rep.Err,
		Breaker:     rep.Breaker,
		Degraded:    rep.Degraded,
		WSActive:    g.wsActive.Value(),
	}
	if rep.ClusterSelf != "" {
		cl := &clusterJSON{
			Self:  rep.ClusterSelf,
			Epoch: strconv.FormatUint(rep.ClusterEpoch, 16),
			Alive: rep.ClusterAlive,
			Peers: []clusterPeerJSON{},
		}
		for _, p := range rep.ClusterPeers {
			cl.Peers = append(cl.Peers, clusterPeerJSON{ID: p.ID, Addr: p.Addr, Alive: p.Alive, Misses: p.Misses})
		}
		h.Cluster = cl
	}
	writeJSON(w, http.StatusOK, h)
}

type traceSummaryJSON struct {
	TraceID string  `json:"trace_id"`
	Root    string  `json:"root"`
	Start   string  `json:"start"`
	DurSec  float64 `json:"dur_sec"`
	Spans   int     `json:"spans"`
	Err     bool    `json:"err"`
	Reason  string  `json:"reason"`
}

type spanJSON struct {
	SpanID string  `json:"span_id"`
	Parent string  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Start  string  `json:"start"`
	DurSec float64 `json:"dur_sec"`
	Count  int64   `json:"count,omitempty"`
	Err    bool    `json:"err,omitempty"`
}

// handleTraces serves GET /api/traces?limit=<n>&sort=slowest|recent.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 20
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			g.fail(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", s))
			return
		}
		limit = n
	}
	slowest := q.Get("sort") == "slowest"
	traces, err := g.client.Traces(limit, slowest)
	if err != nil {
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	out := make([]traceSummaryJSON, len(traces))
	for i, t := range traces {
		out[i] = traceSummaryJSON{
			TraceID: fmt.Sprintf("%016x", t.TraceID),
			Root:    t.Root,
			Start:   t.Start.UTC().Format(time.RFC3339Nano),
			DurSec:  t.Dur.Seconds(),
			Spans:   t.Spans,
			Err:     t.Err,
			Reason:  t.Reason,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []traceSummaryJSON `json:"traces"`
	}{out})
}

// handleTrace serves GET /api/traces/{id} with the full span tree.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 16, 64)
	if err != nil {
		g.fail(w, http.StatusBadRequest, fmt.Errorf("bad trace id %q", r.PathValue("id")))
		return
	}
	tr, err := g.client.Trace(id)
	if err != nil {
		if errors.Is(err, core.ErrTraceNotFound) {
			g.fail(w, http.StatusNotFound, err)
			return
		}
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	spans := make([]spanJSON, len(tr.Spans))
	for i, sp := range tr.Spans {
		sj := spanJSON{
			SpanID: fmt.Sprintf("%016x", sp.SpanID),
			Name:   sp.Name,
			Start:  sp.Start.UTC().Format(time.RFC3339Nano),
			DurSec: sp.Dur.Seconds(),
			Count:  sp.Count,
			Err:    sp.Err,
		}
		if sp.Parent != 0 {
			sj.Parent = fmt.Sprintf("%016x", sp.Parent)
		}
		spans[i] = sj
	}
	writeJSON(w, http.StatusOK, struct {
		TraceID      string     `json:"trace_id"`
		Root         string     `json:"root"`
		Start        string     `json:"start"`
		DurSec       float64    `json:"dur_sec"`
		Err          bool       `json:"err"`
		Reason       string     `json:"reason"`
		DroppedSpans int        `json:"dropped_spans,omitempty"`
		Spans        []spanJSON `json:"spans"`
	}{
		fmt.Sprintf("%016x", tr.TraceID), tr.Root,
		tr.Start.UTC().Format(time.RFC3339Nano), tr.Dur.Seconds(),
		tr.Err, tr.Reason, tr.DroppedSpans, spans,
	})
}
