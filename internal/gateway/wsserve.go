package gateway

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
)

// wsUpdateJSON is one pushed update on the wire. The three drop counters
// make loss first-class in the stream itself: dropped_upstream is the
// subscription's server-side high-water loss, dropped_ws is what this
// socket shed because the browser read too slowly, dropped is their sum —
// a dashboard can render "N updates lost" without a side channel.
type wsUpdateJSON struct {
	NS              core.Namespace `json:"ns"`
	Time            float64        `json:"time"`
	Alert           bool           `json:"alert,omitempty"`
	Data            *conduit.Node  `json:"data"`
	DroppedUpstream int64          `json:"dropped_upstream"`
	DroppedWS       int64          `json:"dropped_ws"`
	Dropped         int64          `json:"dropped"`
}

// handleWS upgrades GET /ws?ns=<ns|soma.alerts|empty>&pattern=<glob> and
// bridges one upstream subscription onto the socket. Each socket gets its
// own core.Subscription, so it rides the machinery PR 5 built: a
// server-side lease with high-water drop accounting, and redial +
// resubscribe through the shared Backoff when somad restarts.
func (g *Gateway) handleWS(w http.ResponseWriter, r *http.Request) {
	ns, err := parseNS(r, true)
	if err != nil {
		g.fail(w, http.StatusBadRequest, err)
		return
	}
	pattern := r.URL.Query().Get("pattern")
	// Subscribe before upgrading: a service without an update bus should
	// fail as a plain HTTP error the client can read, not a torn socket.
	sub, err := g.client.Subscribe(g.ctx, ns, pattern)
	if err != nil {
		g.fail(w, http.StatusBadGateway, err)
		return
	}
	conn, err := Accept(w, r)
	if err != nil {
		sub.Close()
		return
	}
	g.wsAccepted.Inc()
	g.wsActive.Inc()
	g.wg.Add(1)
	go g.serveWS(conn, sub)
}

// serveWS runs one socket: a pump goroutine marshals updates into a
// bounded queue (dropping, never blocking, when the reader is slow), a
// reader goroutine enforces the liveness lease and answers pings, and the
// writer loop below drains the queue and pings on an interval. The session
// ends when the client goes away, the lease expires, or the gateway
// closes; the upstream subscription is torn down with it.
func (g *Gateway) serveWS(conn *Conn, sub *core.Subscription) {
	defer g.wg.Done()
	defer g.wsActive.Dec()

	send := make(chan []byte, g.sendBuffer)
	var droppedWS atomic.Int64

	// Pump: upstream updates → bounded queue. The non-blocking send is the
	// drop-don't-block rule at the gateway tier: one stalled browser sheds
	// its own updates instead of stalling the subscription (and with it the
	// upstream long-poll lease).
	go func() {
		for u := range sub.C {
			dws := droppedWS.Load()
			msg, err := json.Marshal(wsUpdateJSON{
				NS:              u.NS,
				Time:            u.Time,
				Alert:           u.Alert,
				Data:            u.Tree,
				DroppedUpstream: u.Dropped,
				DroppedWS:       dws,
				Dropped:         u.Dropped + dws,
			})
			if err != nil {
				continue
			}
			select {
			case send <- msg:
			default:
				droppedWS.Add(1)
				g.wsDropped.Inc()
			}
		}
	}()

	// Reader: the socket's lease. Every received frame renews the read
	// deadline; a client that answers neither data nor pings for
	// PingInterval+PongTimeout expires and is reaped.
	readerGone := make(chan struct{})
	go func() {
		defer close(readerGone)
		for {
			conn.SetReadDeadline(time.Now().Add(g.pingInterval + g.pongTimeout))
			op, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch op {
			case OpPing:
				conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				if conn.WriteMessage(OpPong, payload) != nil {
					return
				}
			case OpClose:
				return
			}
			// Pongs and client data frames need no reply; reading them
			// already renewed the lease.
		}
	}()

	ping := time.NewTicker(g.pingInterval)
	defer ping.Stop()
	defer conn.Close()
	defer sub.Close()
	for {
		select {
		case msg := <-send:
			conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := conn.WriteMessage(OpText, msg); err != nil {
				return
			}
			g.wsMessages.Inc()
		case <-ping.C:
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if err := conn.WriteMessage(OpPing, nil); err != nil {
				return
			}
		case <-readerGone:
			return
		case <-g.ctx.Done():
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			conn.WriteClose(CloseGoingAway, "gateway shutting down")
			return
		}
	}
}
