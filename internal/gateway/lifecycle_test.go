package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func gauge(name string) int64 { return telemetry.Default().Gauge(name).Value() }

// TestWSSlowReaderDrops pins the gateway tier of drop-don't-block: a
// client that stops reading fills its bounded queue and sheds updates
// (counted, surfaced in-stream) without stalling the subscription pump.
func TestWSSlowReaderDrops(t *testing.T) {
	tg := newTestGateway(t, Config{SendBuffer: 2, PingInterval: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	conn, err := Dial(ctx, "ws"+strings.TrimPrefix(tg.srv.URL, "http")+"/ws?ns=workflow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	dropped0 := counter("gateway.ws.dropped")
	// Don't read. Big payloads fill the kernel's socket buffers, the
	// writer blocks, the 2-slot queue fills, and the pump must drop.
	blob := strings.Repeat("x", 64<<10)
	for i := 0; i < 256; i++ {
		n := conduit.NewNode()
		n.SetString("big/blob", blob)
		n.SetInt("big/seq", int64(i))
		if err := tg.svc.Publish(core.NSWorkflow, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "per-socket drops", func() bool {
		return counter("gateway.ws.dropped")-dropped0 > 0
	})

	// The accounting must surface in the stream itself: drain now and find
	// a message carrying a nonzero dropped_ws.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	sawDrop := false
	for !sawDrop {
		op, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("drain: %v (no message carried dropped_ws > 0)", err)
		}
		if op != OpText {
			continue
		}
		var u struct {
			DroppedWS int64 `json:"dropped_ws"`
			Dropped   int64 `json:"dropped"`
		}
		if err := json.Unmarshal(payload, &u); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if u.DroppedWS > 0 {
			if u.Dropped < u.DroppedWS {
				t.Fatalf("dropped (%d) < dropped_ws (%d)", u.Dropped, u.DroppedWS)
			}
			sawDrop = true
		}
	}
}

// TestWSLeaseExpiry pins the liveness lease: a client that answers
// neither data nor pings is reaped after PingInterval+PongTimeout rather
// than holding a socket and subscription forever.
func TestWSLeaseExpiry(t *testing.T) {
	tg := newTestGateway(t, Config{
		PingInterval: 200 * time.Millisecond,
		PongTimeout:  200 * time.Millisecond,
	})
	active0 := gauge("gateway.ws.active")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := Dial(ctx, "ws"+strings.TrimPrefix(tg.srv.URL, "http")+"/ws?ns=workflow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitFor(t, 5*time.Second, "socket accepted", func() bool {
		return gauge("gateway.ws.active") == active0+1
	})

	// Play dead: never read, never pong. The server's reader deadline
	// (ping + pong grace) must expire and tear the session down.
	waitFor(t, 5*time.Second, "lease expiry reap", func() bool {
		return gauge("gateway.ws.active") == active0
	})
}

// TestWSGoroutineLeakOnDisconnect opens sockets, kills them abruptly
// (no closing handshake), and asserts both the active gauge and the
// process goroutine count return to baseline — the reader, writer, and
// pump of every session must all unwind.
func TestWSGoroutineLeakOnDisconnect(t *testing.T) {
	tg := newTestGateway(t, Config{PingInterval: 100 * time.Millisecond, PongTimeout: 100 * time.Millisecond})
	runtime.GC()
	baseline := runtime.NumGoroutine()
	active0 := gauge("gateway.ws.active")

	const sockets = 8
	conns := make([]*Conn, 0, sockets)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < sockets; i++ {
		conn, err := Dial(ctx, "ws"+strings.TrimPrefix(tg.srv.URL, "http")+"/ws?ns=workflow")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
	}
	waitFor(t, 5*time.Second, "sockets active", func() bool {
		return gauge("gateway.ws.active") == active0+sockets
	})
	for _, c := range conns {
		c.Close() // abrupt: straight TCP close, no close frame
	}
	waitFor(t, 10*time.Second, "sessions unwound", func() bool {
		return gauge("gateway.ws.active") == active0
	})
	waitFor(t, 10*time.Second, "goroutines back to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestWSSurvivesUpstreamRestart is the gateway half of the smoke test: a
// live WebSocket must keep delivering after somad dies and is reborn on
// the same address (the subscription redials + resubscribes through the
// shared Backoff), HTTP availability must not blink (/api/health answers
// throughout), and nothing may leak.
func TestWSSurvivesUpstreamRestart(t *testing.T) {
	tg := newTestGateway(t, Config{PingInterval: 500 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, err := Dial(ctx, "ws"+strings.TrimPrefix(tg.srv.URL, "http")+"/ws?ns=workflow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	readUpdate := func(wantSeq int64) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(15 * time.Second))
		for {
			op, payload, err := conn.ReadMessage()
			if err != nil {
				t.Fatalf("waiting for seq %d: %v", wantSeq, err)
			}
			switch op {
			case OpPing:
				conn.WriteMessage(OpPong, payload)
				continue
			case OpText:
				var u struct {
					Data struct {
						Seq int64 `json:"seq"`
					} `json:"data"`
				}
				if json.Unmarshal(payload, &u) == nil && u.Data.Seq >= wantSeq {
					return
				}
			}
		}
	}

	tg.publish(t, core.NSWorkflow, "seq", 1)
	readUpdate(1)

	runtime.GC()
	baseline := runtime.NumGoroutine()

	// Kill somad and restart it on the same address.
	tg.svc.Close()
	svc2 := core.NewService(core.ServiceConfig{})
	if _, err := svc2.Listen(tg.addr); err != nil {
		t.Fatalf("rebind %s: %v", tg.addr, err)
	}
	defer svc2.Close()

	// HTTP availability through the outage window: health always answers.
	if code, _ := tg.get(t, "/api/health"); code != http.StatusOK {
		t.Fatalf("health during restart: %d", code)
	}

	// Keep publishing on the new service until the resubscribed socket
	// hears one (updates published before the resubscribe lands are lost
	// by design — loss, not blockage).
	got := make(chan struct{})
	go func() {
		defer close(got)
		readUpdate(2)
	}()
	deadline := time.Now().Add(15 * time.Second)
	for seq := int64(2); ; seq++ {
		n := conduit.NewNode()
		n.SetInt("seq", seq)
		svc2.Publish(core.NSWorkflow, n, 0)
		select {
		case <-got:
		case <-time.After(100 * time.Millisecond):
			if time.Now().Before(deadline) {
				continue
			}
			t.Fatal("no update after upstream restart — resubscribe failed")
		}
		break
	}

	// The query path also recovered (lazy redial on the next call).
	waitFor(t, 10*time.Second, "query path recovery", func() bool {
		code, _ := tg.get(t, "/api/query?ns=workflow")
		return code == http.StatusOK
	})

	// No goroutine pile-up from the redial/resubscribe machinery. The
	// slack absorbs the restarted service's own connection handlers (same
	// process); a per-retry leak across the ~10-attempt outage window
	// would still clear it.
	waitFor(t, 10*time.Second, "goroutines stable after restart", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+8
	})
}
