package gateway

import (
	"embed"
	"io/fs"
	"net/http"
)

// The dashboard is a static, dependency-free page compiled into the binary
// — somagate is one file to copy onto a login node, and the dashboard it
// serves is the one it was built with.
//
//go:embed static
var staticFS embed.FS

// dashboard serves the embedded live dashboard at /.
func (g *Gateway) dashboard() http.Handler {
	sub, err := fs.Sub(staticFS, "static")
	if err != nil {
		// Unreachable unless the embed directive is broken at build time.
		panic(err)
	}
	return http.FileServerFS(sub)
}
