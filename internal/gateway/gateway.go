package gateway

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Config parameterizes a Gateway. The zero value plus an Upstream address
// is a working configuration.
type Config struct {
	// Upstream is the somad RPC address (tcp://host:port). Ignored when
	// Client is set.
	Upstream string

	// Client is a pre-connected upstream client (tests); when nil the
	// gateway dials Upstream with its own CallPolicy.
	Client *core.Client

	// RatePerSec / Burst shape the per-client token bucket. RatePerSec ≤ 0
	// with Burst 0 selects the defaults; RatePerSec < 0 disables limiting.
	RatePerSec float64
	Burst      int

	// PingInterval is how often the gateway pings each WebSocket;
	// PongTimeout is the extra grace beyond it before the socket's
	// read-lease expires and the connection is reaped.
	PingInterval time.Duration
	PongTimeout  time.Duration

	// SendBuffer is the per-socket outbound queue depth; when it is full
	// further updates are dropped (never blocking the fan-out) and counted.
	SendBuffer int

	// Registry receives the gateway's own metrics (default
	// telemetry.Default(), so somagate is observable through the same
	// pipeline it fronts).
	Registry *telemetry.Registry
}

// Defaults for the knobs above.
const (
	DefaultRatePerSec   = 50.0
	DefaultBurst        = 100
	DefaultPingInterval = 15 * time.Second
	DefaultPongTimeout  = 10 * time.Second
	DefaultSendBuffer   = 64
)

// maxQueryCache bounds the JSON body cache (same wholesale-drop idiom as
// the client's delta memo).
const maxQueryCache = 256

// Gateway bridges one upstream SOMA service to JSON-over-HTTP and
// WebSocket push. Create with New, mount Handler on an http.Server, Close
// to tear down every live socket.
type Gateway struct {
	client  *core.Client
	ownsCli bool
	reg     *telemetry.Registry
	mux     *http.ServeMux
	limiter *rateLimiter

	pingInterval time.Duration
	pongTimeout  time.Duration
	sendBuffer   int

	// WS sessions derive from ctx, not from the upgrade request's context:
	// after Hijack the request context is dead weight, and Close must be
	// able to end every session.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// qcache holds the marshaled JSON body of the last query response per
	// (ns, path). Paired with the client's delta memo it makes repeat
	// queries for an unchanged namespace cost one ~30-byte "unchanged" RPC
	// frame and zero re-encoding on either side.
	qmu    sync.Mutex
	qcache map[string][]byte

	// Metrics. Per-route counters/histograms are created lazily in route().
	rateLimited *telemetry.Counter
	httpErrors  *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	wsActive    *telemetry.Gauge
	wsAccepted  *telemetry.Counter
	wsDropped   *telemetry.Counter
	wsMessages  *telemetry.Counter
}

// Policy is the CallPolicy the gateway uses upstream: bounded retries over
// the idempotent RPC set, short attempts under an overall deadline, and a
// breaker so a dead somad fails browser requests fast instead of stacking
// 10-second timeouts.
func Policy() *mercury.CallPolicy {
	return &mercury.CallPolicy{
		ConnectTimeout:   5 * time.Second,
		CallTimeout:      10 * time.Second,
		AttemptTimeout:   3 * time.Second,
		MaxRetries:       2,
		Backoff:          mercury.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second},
		Idempotent:       mercury.IdempotentSet(core.IdempotentRPCs()...),
		FailureThreshold: 5,
		OpenFor:          2 * time.Second,
	}
}

// New connects to the upstream service and builds the route table.
func New(cfg Config) (*Gateway, error) {
	cli := cfg.Client
	owns := false
	if cli == nil {
		if cfg.Upstream == "" {
			return nil, fmt.Errorf("gateway: no upstream address")
		}
		var err error
		cli, err = core.ConnectPolicy(cfg.Upstream, nil, Policy())
		if err != nil {
			return nil, fmt.Errorf("gateway: connect %s: %w", cfg.Upstream, err)
		}
		owns = true
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	rate, burst := cfg.RatePerSec, cfg.Burst
	if rate == 0 {
		rate = DefaultRatePerSec
	}
	if burst == 0 {
		burst = DefaultBurst
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		client:       cli,
		ownsCli:      owns,
		reg:          reg,
		mux:          http.NewServeMux(),
		limiter:      newRateLimiter(rate, burst),
		pingInterval: cfg.PingInterval,
		pongTimeout:  cfg.PongTimeout,
		sendBuffer:   cfg.SendBuffer,
		ctx:          ctx,
		cancel:       cancel,
		qcache:       map[string][]byte{},
		rateLimited:  reg.Counter("gateway.http.rate_limited"),
		httpErrors:   reg.Counter("gateway.http.errors"),
		cacheHits:    reg.Counter("gateway.query.cache_hits"),
		cacheMisses:  reg.Counter("gateway.query.cache_misses"),
		wsActive:     reg.Gauge("gateway.ws.active"),
		wsAccepted:   reg.Counter("gateway.ws.accepted"),
		wsDropped:    reg.Counter("gateway.ws.dropped"),
		wsMessages:   reg.Counter("gateway.ws.messages"),
	}
	if g.pingInterval <= 0 {
		g.pingInterval = DefaultPingInterval
	}
	if g.pongTimeout <= 0 {
		g.pongTimeout = DefaultPongTimeout
	}
	if g.sendBuffer <= 0 {
		g.sendBuffer = DefaultSendBuffer
	}
	g.routes()
	return g, nil
}

// routes builds the mux. /api/health and /metrics are exempt from rate
// limiting: they are exactly what dashboards and probes poll hardest when
// something is wrong, and throttling your own liveness checks manufactures
// outages.
func (g *Gateway) routes() {
	g.mux.HandleFunc("GET /api/query", g.route("query", true, g.handleQuery))
	g.mux.HandleFunc("GET /api/series", g.route("series", true, g.handleSeries))
	g.mux.HandleFunc("GET /api/alerts", g.route("alerts", true, g.handleAlerts))
	g.mux.HandleFunc("GET /api/telemetry", g.route("telemetry", true, g.handleTelemetry))
	g.mux.HandleFunc("GET /api/stats", g.route("stats", true, g.handleStats))
	g.mux.HandleFunc("GET /api/health", g.route("health", false, g.handleHealth))
	g.mux.HandleFunc("GET /api/traces", g.route("traces", true, g.handleTraces))
	g.mux.HandleFunc("GET /api/traces/{id}", g.route("trace", true, g.handleTrace))
	g.mux.HandleFunc("GET /ws", g.route("ws", true, g.handleWS))
	g.mux.HandleFunc("GET /metrics", g.route("metrics", false, g.handleMetrics))
	g.mux.Handle("GET /", g.dashboard())
}

// Handler is the gateway's HTTP surface, ready to mount on a server.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Close ends every WebSocket session, waits for them to drain, and (when
// the gateway dialed it) closes the upstream client.
func (g *Gateway) Close() error {
	g.cancel()
	g.wg.Wait()
	if g.ownsCli {
		return g.client.Close()
	}
	return nil
}

// route wraps a handler with the shared per-route plumbing: the token
// bucket (when limited), a request counter, and a latency histogram whose
// observations carry the request span's trace id so slow routes surface as
// exemplars in /metrics.
func (g *Gateway) route(label string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	requests := g.reg.Counter("gateway.http." + label + ".requests")
	latency := g.reg.Histogram("gateway.http." + label + ".latency")
	return func(w http.ResponseWriter, r *http.Request) {
		if limited && !g.limiter.allow(r.RemoteAddr, time.Now()) {
			g.rateLimited.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		requests.Inc()
		ctx, span := telemetry.StartSpan(r.Context(), "gateway."+label)
		traceID := span.Context().TraceID // read before End recycles the span
		start := time.Now()
		h(w, r.WithContext(ctx))
		span.End()
		latency.ObserveTrace(time.Since(start), traceID)
	}
}

// handleMetrics exposes the gateway's own registry in Prometheus text
// form. The goroutine gauge is refreshed on every scrape — the smoke test
// uses it as its leak detector.
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	g.reg.Gauge("gateway.process.goroutines").Set(int64(runtime.NumGoroutine()))
	var buf writeBuffer
	if err := g.reg.WriteText(&buf); err != nil {
		g.httpErrors.Inc()
		http.Error(w, "metrics encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf)
}

// writeBuffer is the minimal io.Writer for buffering WriteText before any
// status is committed.
type writeBuffer []byte

func (b *writeBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// cachedQuery returns the memoized JSON body for a query key.
func (g *Gateway) cachedQuery(key string) ([]byte, bool) {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	b, ok := g.qcache[key]
	return b, ok
}

// storeQuery memoizes a marshaled query body, dropping the table wholesale
// at the bound.
func (g *Gateway) storeQuery(key string, body []byte) {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	if len(g.qcache) >= maxQueryCache {
		g.qcache = map[string][]byte{}
	}
	g.qcache[key] = body
}
