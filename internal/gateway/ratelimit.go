package gateway

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client host gets Burst
// tokens refilled at Rate tokens/second. It protects the gateway's upstream
// (one somad serves many browsers) rather than metering bandwidth, so the
// key is the remote host, not host:port — a reloading browser churns source
// ports but is still one client.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-host table; beyond it the whole table is
// dropped (the same wholesale-reset idiom as the client's delta memo) —
// a momentary free pass beats an unbounded map under address churn.
const maxBuckets = 4096

func newRateLimiter(ratePerSec float64, burst int) *rateLimiter {
	if ratePerSec <= 0 {
		return nil // disabled
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    ratePerSec,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token for the client behind remoteAddr, reporting
// whether the request may proceed. A nil limiter allows everything.
func (rl *rateLimiter) allow(remoteAddr string, now time.Time) bool {
	if rl == nil {
		return true
	}
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[host]
	if b == nil {
		if len(rl.buckets) >= maxBuckets {
			rl.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[host] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
