// Package gateway bridges a SOMA service's mercury RPC surface to
// web-native protocols: JSON over HTTP for the query/series/alert/telemetry
// RPCs and RFC 6455 WebSocket push for the soma.updates / soma.alerts
// subscription streams, plus a small embedded live dashboard. somatop is a
// terminal for one operator; the gateway is the same observability for
// anyone with a browser.
//
// This file is the hand-rolled, stdlib-only WebSocket layer: the server
// handshake (Hijack + Sec-WebSocket-Accept), a client dial (for the smoke
// probe and tests), and the frame codec. The codec is deliberately split so
// the pure parser (DecodeFrame) can be fuzzed with hostile inputs, in the
// spirit of conduit's FuzzDecodeBatch: it must never panic, never
// over-read, and reject every frame the RFC rejects (reserved bits,
// non-minimal lengths, oversized or fragmented control frames, the wrong
// masking for the connection's role).
package gateway

import (
	"bufio"
	"context"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// WebSocket opcodes (RFC 6455 §5.2).
const (
	OpContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	OpClose        = 0x8
	OpPing         = 0x9
	OpPong         = 0xA
)

// Close status codes the gateway uses (RFC 6455 §7.4.1).
const (
	CloseNormal        = 1000
	CloseGoingAway     = 1001
	CloseProtocolError = 1002
	CloseTooLarge      = 1009
)

// DefaultMaxPayload bounds a single frame's payload. Client→gateway frames
// are tiny (control frames and the occasional text command), but the bound
// is what keeps a hostile 2^63-byte length header from turning into an
// allocation.
const DefaultMaxPayload = 1 << 20

// wsGUID is the protocol-mandated accept-key suffix (RFC 6455 §1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Frame is one decoded WebSocket frame.
type Frame struct {
	Fin     bool
	Opcode  byte
	Masked  bool
	Payload []byte
}

// Frame-codec errors. ErrFrameShort means the buffer ends mid-frame (a
// streaming reader should read more); everything else is a hard protocol
// violation that fails the connection.
var (
	ErrFrameShort   = errors.New("ws: truncated frame")
	ErrFrameInvalid = errors.New("ws: protocol violation")
)

func frameErr(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrFrameInvalid, fmt.Sprintf(format, args...))
}

// DecodeFrame parses exactly one frame from the front of buf and returns it
// with the number of bytes consumed. requireMask enforces the role rule: a
// server requires every client frame masked, a client requires every server
// frame unmasked — both directions are hard errors, not warnings, because a
// role-confused peer is indistinguishable from an injection attempt.
// maxPayload (≤0 means DefaultMaxPayload) bounds the declared payload
// length before any allocation happens. The returned payload is a fresh,
// unmasked copy; buf is never aliased or modified.
func DecodeFrame(buf []byte, requireMask bool, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(buf) < 2 {
		return Frame{}, 0, ErrFrameShort
	}
	b0, b1 := buf[0], buf[1]
	f := Frame{Fin: b0&0x80 != 0, Opcode: b0 & 0x0F, Masked: b1&0x80 != 0}
	if b0&0x70 != 0 {
		return Frame{}, 0, frameErr("reserved bits set (0x%02x)", b0&0x70)
	}
	switch f.Opcode {
	case OpContinuation, OpText, OpBinary, OpClose, OpPing, OpPong:
	default:
		return Frame{}, 0, frameErr("unknown opcode 0x%x", f.Opcode)
	}
	length := uint64(b1 & 0x7F)
	n := 2
	switch length {
	case 126:
		if len(buf) < n+2 {
			return Frame{}, 0, ErrFrameShort
		}
		length = uint64(binary.BigEndian.Uint16(buf[n:]))
		n += 2
		if length < 126 {
			return Frame{}, 0, frameErr("non-minimal 16-bit length %d", length)
		}
	case 127:
		if len(buf) < n+8 {
			return Frame{}, 0, ErrFrameShort
		}
		length = binary.BigEndian.Uint64(buf[n:])
		n += 8
		if length&(1<<63) != 0 {
			return Frame{}, 0, frameErr("64-bit length high bit set")
		}
		if length < 1<<16 {
			return Frame{}, 0, frameErr("non-minimal 64-bit length %d", length)
		}
	}
	if f.Opcode >= OpClose {
		// Control frames ride inside fragmented messages, so they must be
		// whole (FIN) and small enough to never themselves fragment.
		if !f.Fin {
			return Frame{}, 0, frameErr("fragmented control frame")
		}
		if length > 125 {
			return Frame{}, 0, frameErr("control frame payload %d > 125", length)
		}
	}
	if length > uint64(maxPayload) {
		return Frame{}, 0, frameErr("payload %d exceeds limit %d", length, maxPayload)
	}
	if f.Masked != requireMask {
		if requireMask {
			return Frame{}, 0, frameErr("unmasked client frame")
		}
		return Frame{}, 0, frameErr("masked server frame")
	}
	var key [4]byte
	if f.Masked {
		if len(buf) < n+4 {
			return Frame{}, 0, ErrFrameShort
		}
		copy(key[:], buf[n:])
		n += 4
	}
	if uint64(len(buf)-n) < length {
		return Frame{}, 0, ErrFrameShort
	}
	f.Payload = make([]byte, length)
	copy(f.Payload, buf[n:n+int(length)])
	if f.Masked {
		maskBytes(f.Payload, key, 0)
	}
	n += int(length)
	return f, n, nil
}

// AppendFrame encodes f onto dst. When mask is true (client role) the
// payload is masked with a random key; f.Payload itself is never modified.
func AppendFrame(dst []byte, f Frame, mask bool) []byte {
	b0 := f.Opcode & 0x0F
	if f.Fin {
		b0 |= 0x80
	}
	dst = append(dst, b0)
	maskBit := byte(0)
	if mask {
		maskBit = 0x80
	}
	n := len(f.Payload)
	switch {
	case n <= 125:
		dst = append(dst, maskBit|byte(n))
	case n <= 0xFFFF:
		dst = append(dst, maskBit|126, byte(n>>8), byte(n))
	default:
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		dst = append(dst, maskBit|127)
		dst = append(dst, ext[:]...)
	}
	if !mask {
		return append(dst, f.Payload...)
	}
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], rand.Uint32())
	dst = append(dst, key[:]...)
	start := len(dst)
	dst = append(dst, f.Payload...)
	maskBytes(dst[start:], key, 0)
	return dst
}

// maskBytes XORs b with the repeating 4-byte key, starting at key offset
// pos, and returns the next offset.
func maskBytes(b []byte, key [4]byte, pos int) int {
	for i := range b {
		b[i] ^= key[pos&3]
		pos++
	}
	return pos
}

// computeAccept derives the Sec-WebSocket-Accept token for a handshake key.
func computeAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether a comma-separated header value contains
// token (case-insensitive) — Connection headers legally carry lists.
func headerHasToken(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Conn is one WebSocket connection after the handshake. Reads and writes
// are independently safe for one reader plus concurrent writers (writes are
// serialized by an internal mutex); the gateway runs one reader and one
// writer goroutine per socket.
type Conn struct {
	raw        net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	client     bool // this side is the client: mask writes, require unmasked reads
	maxPayload int

	wmu  sync.Mutex
	wbuf []byte
}

// Accept upgrades an HTTP request to a WebSocket (server role): it
// validates the RFC 6455 handshake headers, hijacks the connection, and
// writes the 101 response. On failure the HTTP error has already been
// written and the returned error says why.
func Accept(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	fail := func(code int, why string) (*Conn, error) {
		http.Error(w, why, code)
		return nil, fmt.Errorf("ws: handshake: %s", why)
	}
	if r.Method != http.MethodGet {
		return fail(http.StatusMethodNotAllowed, "websocket handshake requires GET")
	}
	if !headerHasToken(r.Header.Get("Connection"), "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return fail(http.StatusBadRequest, "not a websocket upgrade")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		return fail(http.StatusBadRequest, "unsupported websocket version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		return fail(http.StatusBadRequest, "missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		return fail(http.StatusInternalServerError, "connection cannot be hijacked")
	}
	raw, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + computeAccept(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		raw.Close()
		return nil, fmt.Errorf("ws: write handshake: %w", err)
	}
	if err := brw.Flush(); err != nil {
		raw.Close()
		return nil, fmt.Errorf("ws: flush handshake: %w", err)
	}
	return &Conn{raw: raw, br: brw.Reader, bw: brw.Writer, maxPayload: DefaultMaxPayload}, nil
}

// Dial opens a client WebSocket to a ws:// URL (the smoke probe and tests;
// the gateway itself only serves). The context bounds the dial and
// handshake.
func Dial(ctx context.Context, rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", rawURL, err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("ws: dial %s: only ws:// is supported", rawURL)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("ws: dial %s: %w", rawURL, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		raw.SetDeadline(dl)
	}
	var keyBytes [16]byte // math/rand: the nonce guards proxies, not secrets
	binary.BigEndian.PutUint64(keyBytes[:8], rand.Uint64())
	binary.BigEndian.PutUint64(keyBytes[8:], rand.Uint64())
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := raw.Write([]byte(req)); err != nil {
		raw.Close()
		return nil, fmt.Errorf("ws: handshake write: %w", err)
	}
	br := bufio.NewReader(raw)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("ws: handshake read: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		raw.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != computeAccept(key) {
		raw.Close()
		return nil, fmt.Errorf("ws: handshake accept mismatch")
	}
	raw.SetDeadline(time.Time{})
	return &Conn{
		raw: raw, br: br, bw: bufio.NewWriter(raw),
		client: true, maxPayload: DefaultMaxPayload,
	}, nil
}

// SetReadDeadline bounds the next frame read — the socket's liveness lease.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline bounds subsequent frame writes.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// Close tears the underlying connection down without a closing handshake.
func (c *Conn) Close() error { return c.raw.Close() }

// ReadFrame reads and validates the next frame, assembling fragmented data
// messages is the caller's concern (see ReadMessage). It buffers the frame
// header first so hostile lengths are rejected before any payload
// allocation.
func (c *Conn) ReadFrame() (Frame, error) {
	var hdr [14]byte // max header: 2 + 8 (ext len) + 4 (mask key)
	if _, err := io.ReadFull(c.br, hdr[:2]); err != nil {
		return Frame{}, err
	}
	n := 2
	switch hdr[1] & 0x7F {
	case 126:
		n += 2
	case 127:
		n += 8
	}
	if hdr[1]&0x80 != 0 {
		n += 4
	}
	if _, err := io.ReadFull(c.br, hdr[2:n]); err != nil {
		return Frame{}, errShortRead(err)
	}
	// Parse the header alone first (zero-length payload view): every
	// structural rule is checked before the payload is read or allocated.
	f, consumed, err := DecodeFrame(hdr[:n], !c.client, c.maxPayload)
	if err == nil {
		return f, nil // zero-payload frame, fully decoded
	}
	if !errors.Is(err, ErrFrameShort) {
		return Frame{}, err
	}
	// Header valid but payload pending: recompute the declared length and
	// stream it in.
	length := int(hdr[1] & 0x7F)
	off := 2
	switch length {
	case 126:
		length = int(binary.BigEndian.Uint16(hdr[2:]))
		off += 2
	case 127:
		length = int(binary.BigEndian.Uint64(hdr[2:]))
		off += 8
	}
	_ = consumed
	f = Frame{Fin: hdr[0]&0x80 != 0, Opcode: hdr[0] & 0x0F, Masked: hdr[1]&0x80 != 0}
	var key [4]byte
	if f.Masked {
		copy(key[:], hdr[off:off+4])
	}
	f.Payload = make([]byte, length)
	if _, err := io.ReadFull(c.br, f.Payload); err != nil {
		return Frame{}, errShortRead(err)
	}
	if f.Masked {
		maskBytes(f.Payload, key, 0)
	}
	return f, nil
}

// errShortRead maps a mid-frame EOF onto ErrUnexpectedEOF so callers can
// tell a clean close (EOF between frames) from a torn one.
func errShortRead(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadMessage reads the next complete message: control frames (ping, pong,
// close) are returned immediately as single frames; fragmented data
// messages are assembled up to the payload limit.
func (c *Conn) ReadMessage() (opcode byte, payload []byte, err error) {
	var (
		assembling bool
		op         byte
		buf        []byte
	)
	for {
		f, err := c.ReadFrame()
		if err != nil {
			return 0, nil, err
		}
		switch {
		case f.Opcode >= OpClose:
			return f.Opcode, f.Payload, nil
		case f.Opcode == OpContinuation:
			if !assembling {
				return 0, nil, frameErr("continuation without a started message")
			}
			if len(buf)+len(f.Payload) > c.maxPayload {
				return 0, nil, frameErr("fragmented message exceeds limit %d", c.maxPayload)
			}
			buf = append(buf, f.Payload...)
			if f.Fin {
				return op, buf, nil
			}
		default: // text or binary
			if assembling {
				return 0, nil, frameErr("new data frame inside a fragmented message")
			}
			if f.Fin {
				return f.Opcode, f.Payload, nil
			}
			assembling, op, buf = true, f.Opcode, append([]byte(nil), f.Payload...)
		}
	}
}

// WriteMessage writes one unfragmented message frame.
func (c *Conn) WriteMessage(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], Frame{Fin: true, Opcode: opcode, Payload: payload}, c.client)
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// WriteClose sends a closing handshake frame with a status code and reason.
func (c *Conn) WriteClose(code uint16, reason string) error {
	if len(reason) > 123 {
		reason = reason[:123]
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload, code)
	copy(payload[2:], reason)
	return c.WriteMessage(OpClose, payload)
}
