/* SOMA live dashboard. No frameworks: fetch for the JSON API, one
 * WebSocket per stream (updates + alerts), inline SVG sparklines. */
"use strict";

const $ = (id) => document.getElementById(id);

/* ---------- theme toggle (data-theme beats prefers-color-scheme) ------ */
$("theme").addEventListener("click", () => {
  const root = document.documentElement;
  const dark = matchMedia("(prefers-color-scheme: dark)").matches;
  const cur = root.dataset.theme || (dark ? "dark" : "light");
  root.dataset.theme = cur === "dark" ? "light" : "dark";
});

/* ---------- formatting ------------------------------------------------ */
function compact(n) {
  if (n === null || n === undefined || Number.isNaN(n)) return "—";
  const abs = Math.abs(n);
  if (abs >= 1e9) return (n / 1e9).toFixed(1) + "B";
  if (abs >= 1e6) return (n / 1e6).toFixed(1) + "M";
  if (abs >= 1e4) return (n / 1e3).toFixed(1) + "k";
  if (Number.isInteger(n)) return String(n);
  return abs >= 100 ? n.toFixed(0) : n.toFixed(2);
}
function clock(t) {
  return new Date(t).toTimeString().slice(0, 8);
}

/* ---------- health + stats tiles -------------------------------------- */
const STATUS_ICON = { ok: "✓", stopped: "⏸", unreachable: "✕", unknown: "…" };
let lastPublishes = null, lastPublishTime = null;

async function pollHealth() {
  try {
    const h = await (await fetch("/api/health")).json();
    const st = STATUS_ICON[h.status] ? h.status : "unknown";
    const el = $("health-status");
    el.dataset.status = st;
    el.textContent = STATUS_ICON[st] + " " + st;
    $("health-sub").textContent =
      "breaker " + (h.breaker || "?") + (h.degraded ? " · spilling" : "");
    $("stat-calls").textContent = compact(h.calls_served);
    $("stat-uptime").textContent = h.uptime_sec
      ? "up " + compact(h.uptime_sec) + "s" : "";
    $("stat-ws").textContent = compact(h.ws_active);
  } catch {
    const el = $("health-status");
    el.dataset.status = "unknown";
    el.textContent = "… gateway unreachable";
  }
}

async function pollStats() {
  try {
    const s = await (await fetch("/api/stats")).json();
    let pubs = 0;
    for (const ns of s.namespaces) pubs += ns.publishes;
    $("stat-publishes").textContent = compact(pubs);
    const now = Date.now();
    if (lastPublishes !== null && now > lastPublishTime) {
      const rate = (pubs - lastPublishes) / ((now - lastPublishTime) / 1000);
      $("stat-publishes-rate").textContent = compact(rate) + "/s";
    }
    lastPublishes = pubs; lastPublishTime = now;
  } catch { /* next poll retries */ }
}

/* ---------- sparklines ------------------------------------------------ */
const MAX_SPARKS = 6;
const sparkEls = new Map(); // key -> {root, poly, value}

function sparkTile(key) {
  const root = document.createElement("article");
  root.className = "spark";
  root.innerHTML =
    '<span class="spark-key"></span>' +
    '<div class="spark-row"><span class="spark-value">—</span>' +
    '<svg viewBox="0 0 120 36" preserveAspectRatio="none" role="img">' +
    '<line class="base" x1="0" y1="35" x2="120" y2="35"></line>' +
    '<polyline points=""></polyline></svg></div>';
  root.querySelector(".spark-key").textContent = key;
  root.querySelector("svg").setAttribute("aria-label", "sparkline for " + key);
  $("sparklines").appendChild(root);
  return {
    root,
    poly: root.querySelector("polyline"),
    value: root.querySelector(".spark-value"),
  };
}

function drawSpark(el, values) {
  if (!values.length) return;
  const lo = Math.min(...values), hi = Math.max(...values);
  const span = hi - lo || 1;
  const step = values.length > 1 ? 120 / (values.length - 1) : 0;
  el.poly.setAttribute("points", values.map((v, i) =>
    (i * step).toFixed(1) + "," + (33 - ((v - lo) / span) * 30).toFixed(1)
  ).join(" "));
  el.value.textContent = compact(values[values.length - 1]);
}

function seriesNamespaces() {
  const ns = $("ns").value;
  return ns && ns !== "soma.alerts"
    ? [ns] : ["workflow", "hardware", "performance", "application"];
}

async function pollSeries() {
  const spaces = seriesNamespaces();
  const found = [];
  for (const ns of spaces) {
    try {
      const r = await (await fetch("/api/series?ns=" + ns)).json();
      for (const key of r.keys) {
        found.push([ns, key]);
        if (found.length >= MAX_SPARKS) break;
      }
    } catch { /* namespace may be empty */ }
    if (found.length >= MAX_SPARKS) break;
  }
  if (found.length) $("series-empty")?.remove();
  for (const [ns, key] of found) {
    const id = ns + "/" + key;
    let el = sparkEls.get(id);
    if (!el) { el = sparkTile(id); sparkEls.set(id, el); }
    try {
      const s = await (await fetch(
        "/api/series?ns=" + ns + "&key=" + encodeURIComponent(key) + "&level=1s"
      )).json();
      drawSpark(el, s.buckets.slice(-40).map((b) => b.mean));
    } catch { /* keep the last drawing */ }
  }
}

/* ---------- feeds ----------------------------------------------------- */
function feedItem(list, cls, t, ns, msg, drops) {
  const li = document.createElement("li");
  if (cls) li.className = cls;
  li.innerHTML = '<span class="t"></span><span class="ns"></span>' +
    '<span class="msg"></span><span class="drop"></span>';
  li.querySelector(".t").textContent = t;
  li.querySelector(".ns").textContent = ns;
  li.querySelector(".msg").textContent = msg;
  if (drops > 0) li.querySelector(".drop").textContent = "▲ " + drops + " lost";
  list.querySelector(".empty")?.remove();
  list.prepend(li);
  while (list.children.length > 50) list.lastChild.remove();
}

function leafSummary(data) {
  if (data === null || typeof data !== "object") return String(data);
  const keys = Object.keys(data);
  const head = keys.slice(0, 3).map((k) => {
    const v = data[k];
    return k + "=" + (typeof v === "object" ? "…" : compact(Number(v)));
  });
  return head.join("  ") + (keys.length > 3 ? "  +" + (keys.length - 3) : "");
}

/* ---------- websockets ------------------------------------------------ */
let updatesWS = null;

function wsURL(params) {
  const proto = location.protocol === "https:" ? "wss://" : "ws://";
  return proto + location.host + "/ws" + params;
}

function connect(params, onMsg, onState) {
  let ws = null, retry = 250, closed = false;
  function dial() {
    if (closed) return;
    ws = new WebSocket(wsURL(params));
    ws.onopen = () => { retry = 250; onState?.(true); };
    ws.onmessage = (ev) => {
      try { onMsg(JSON.parse(ev.data)); } catch { /* skip bad frame */ }
    };
    ws.onclose = () => {
      onState?.(false);
      if (!closed) setTimeout(dial, retry = Math.min(retry * 2, 5000));
    };
  }
  dial();
  return { close() { closed = true; ws?.close(); } };
}

let wsDroppedTotal = 0, lastDropped = 0;

function connectUpdates() {
  updatesWS?.close();
  const ns = $("ns").value;
  const params = ns ? "?ns=" + encodeURIComponent(ns) : "";
  $("updates-sub").textContent = "over WebSocket · " + (ns || "all namespaces");
  lastDropped = 0;
  updatesWS = connect(params, (u) => {
    if (u.dropped > lastDropped) {
      wsDroppedTotal += u.dropped - lastDropped;
      $("stat-dropped").textContent = wsDroppedTotal + " updates dropped here";
    }
    const delta = u.dropped - lastDropped;
    lastDropped = u.dropped;
    feedItem($("updates"), u.alert ? "firing" : "",
      clock(Date.now()), u.ns, leafSummary(u.data), delta);
  }, (up) => {
    const pill = $("link");
    pill.dataset.state = up ? "live" : "down";
    pill.textContent = up ? "● live" : "● reconnecting";
  });
}

connect("?ns=soma.alerts", (u) => {
  const firing = !!u.alert;
  feedItem($("alerts"), firing ? "firing" : "cleared", clock(Date.now()),
    u.ns, (firing ? "⚠ firing  " : "✓ cleared  ") + leafSummary(u.data), 0);
});

$("ns").addEventListener("change", () => {
  for (const el of sparkEls.values()) el.root.remove();
  sparkEls.clear();
  connectUpdates();
  pollSeries();
});

/* ---------- go -------------------------------------------------------- */
connectUpdates();
pollHealth(); pollStats(); pollSeries();
setInterval(pollHealth, 2000);
setInterval(pollStats, 2000);
setInterval(pollSeries, 3000);
