package gateway

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFrameRoundTrip: AppendFrame → DecodeFrame is the identity for both
// roles across the length-encoding breakpoints.
func TestFrameRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 125, 126, 127, 65535, 65536, 70000}
	for _, masked := range []bool{false, true} {
		for _, size := range sizes {
			payload := bytes.Repeat([]byte{0xAB}, size)
			f := Frame{Fin: true, Opcode: OpText, Payload: payload}
			buf := AppendFrame(nil, f, masked)
			got, n, err := DecodeFrame(buf, masked, 0)
			if err != nil {
				t.Fatalf("masked=%v size=%d: %v", masked, size, err)
			}
			if n != len(buf) {
				t.Fatalf("masked=%v size=%d: consumed %d of %d", masked, size, n, len(buf))
			}
			if !got.Fin || got.Opcode != OpText || !bytes.Equal(got.Payload, payload) {
				t.Fatalf("masked=%v size=%d: frame mangled", masked, size)
			}
			// A partial buffer is "short", never a protocol error.
			for cut := 1; cut < len(buf) && cut < 20; cut++ {
				if _, _, err := DecodeFrame(buf[:len(buf)-cut], masked, 0); !errors.Is(err, ErrFrameShort) {
					t.Fatalf("masked=%v size=%d cut=%d: want ErrFrameShort, got %v", masked, size, cut, err)
				}
			}
		}
	}
}

// TestFrameViolations is the hostile-input table: every RFC 6455 rule the
// decoder enforces, one crafted frame each.
func TestFrameViolations(t *testing.T) {
	mask := []byte{1, 2, 3, 4}
	cases := []struct {
		name        string
		buf         []byte
		requireMask bool
		want        string
	}{
		{"rsv1 set", []byte{0xC1, 0x80, 1, 2, 3, 4}, true, "reserved"},
		{"rsv3 set", []byte{0x91, 0x80, 1, 2, 3, 4}, true, "reserved"},
		{"unknown opcode 3", []byte{0x83, 0x80, 1, 2, 3, 4}, true, "opcode"},
		{"unknown opcode 15", []byte{0x8F, 0x80, 1, 2, 3, 4}, true, "opcode"},
		{"unmasked client frame", []byte{0x81, 0x00}, true, "unmasked"},
		{"masked server frame", append([]byte{0x81, 0x80}, mask...), false, "masked"},
		{"fragmented ping", append([]byte{0x09, 0x80}, mask...), true, "fragmented control"},
		{"oversized close", func() []byte {
			b := []byte{0x88, 0x80 | 126, 0x00, 126}
			return append(b, mask...)
		}(), true, "control frame payload"},
		{"non-minimal 16-bit length", append([]byte{0x81, 0x80 | 126, 0x00, 0x7D}, mask...), true, "non-minimal"},
		{"non-minimal 64-bit length", append([]byte{0x81, 0x80 | 127, 0, 0, 0, 0, 0, 0, 0, 5}, mask...), true, "non-minimal"},
		{"64-bit length high bit", append([]byte{0x81, 0x80 | 127, 0x80, 0, 0, 0, 0, 0, 0, 0}, mask...), true, "high bit"},
		{"payload over limit", func() []byte {
			b := []byte{0x81, 0x80 | 127}
			var ext [8]byte
			binary.BigEndian.PutUint64(ext[:], uint64(DefaultMaxPayload)+1)
			return append(append(b, ext[:]...), mask...)
		}(), true, "exceeds limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeFrame(tc.buf, tc.requireMask, 0)
			if !errors.Is(err, ErrFrameInvalid) {
				t.Fatalf("want ErrFrameInvalid, got %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestHandshake drives Accept/Dial against each other through a real HTTP
// server and pushes one message each way, control frames included.
func TestHandshake(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Accept(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			op, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			switch op {
			case OpText:
				if err := conn.WriteMessage(OpText, append([]byte("echo:"), payload...)); err != nil {
					return
				}
			case OpPing:
				if err := conn.WriteMessage(OpPong, payload); err != nil {
					return
				}
			case OpClose:
				return
			}
		}
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, "ws"+strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := conn.WriteMessage(OpText, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := conn.ReadMessage()
	if err != nil || op != OpText || string(payload) != "echo:hello" {
		t.Fatalf("echo: op=%d payload=%q err=%v", op, payload, err)
	}
	if err := conn.WriteMessage(OpPing, []byte("lease")); err != nil {
		t.Fatal(err)
	}
	op, payload, err = conn.ReadMessage()
	if err != nil || op != OpPong || string(payload) != "lease" {
		t.Fatalf("pong: op=%d payload=%q err=%v", op, payload, err)
	}
}

// TestHandshakeRejects pins the handshake's failure modes as plain HTTP
// errors (no hijack, no torn socket).
func TestHandshakeRejects(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Accept(w, r)
	}))
	defer srv.Close()

	get := func(mod func(*http.Request)) int {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		req.Header.Set("Connection", "Upgrade")
		req.Header.Set("Upgrade", "websocket")
		req.Header.Set("Sec-WebSocket-Version", "13")
		req.Header.Set("Sec-WebSocket-Key", "AAAAAAAAAAAAAAAAAAAAAA==")
		mod(req)
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(func(r *http.Request) { r.Method = http.MethodPost }); code != http.StatusMethodNotAllowed {
		t.Errorf("POST upgrade: got %d", code)
	}
	if code := get(func(r *http.Request) { r.Header.Del("Upgrade") }); code != http.StatusBadRequest {
		t.Errorf("missing Upgrade: got %d", code)
	}
	if code := get(func(r *http.Request) { r.Header.Set("Sec-WebSocket-Version", "8") }); code != http.StatusBadRequest {
		t.Errorf("old version: got %d", code)
	}
	if code := get(func(r *http.Request) { r.Header.Del("Sec-WebSocket-Key") }); code != http.StatusBadRequest {
		t.Errorf("missing key: got %d", code)
	}
}

// FuzzWSFrame feeds arbitrary bytes to the frame decoder under both role
// rules. It must never panic or over-consume, and any accepted frame must
// survive encode → decode unchanged (the same fixpoint property
// FuzzDecodeBatch pins for the batch codec).
func FuzzWSFrame(f *testing.F) {
	// Valid seeds, both roles, across the length breakpoints.
	for _, masked := range []bool{false, true} {
		f.Add(AppendFrame(nil, Frame{Fin: true, Opcode: OpText, Payload: []byte("hi")}, masked))
		f.Add(AppendFrame(nil, Frame{Fin: false, Opcode: OpBinary, Payload: bytes.Repeat([]byte{7}, 126)}, masked))
		f.Add(AppendFrame(nil, Frame{Fin: true, Opcode: OpPing, Payload: bytes.Repeat([]byte{1}, 125)}, masked))
		f.Add(AppendFrame(nil, Frame{Fin: true, Opcode: OpClose, Payload: []byte{0x03, 0xE8}}, masked))
		f.Add(AppendFrame(nil, Frame{Fin: true, Opcode: OpText, Payload: bytes.Repeat([]byte{2}, 65536)}, masked))
	}
	// Hostile seeds: the violation table's shapes.
	f.Add([]byte{0xC1, 0x80, 1, 2, 3, 4})
	f.Add([]byte{0x81, 0x80 | 127, 0x80, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0x81, 0x80 | 126, 0x00, 0x7D, 1, 2, 3, 4})
	f.Add([]byte{0x09, 0x80, 1, 2, 3, 4})
	f.Add([]byte{0x88, 0x80 | 126, 0x00, 126, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, requireMask := range []bool{false, true} {
			frame, n, err := DecodeFrame(data, requireMask, 0)
			if err != nil {
				if !errors.Is(err, ErrFrameShort) && !errors.Is(err, ErrFrameInvalid) {
					t.Fatalf("unexpected error class: %v", err)
				}
				continue
			}
			if n < 2 || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			// Fixpoint: re-encode in the accepted role, decode, compare.
			re := AppendFrame(nil, frame, requireMask)
			back, m, err := DecodeFrame(re, requireMask, 0)
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if m != len(re) {
				t.Fatalf("re-decode consumed %d of %d", m, len(re))
			}
			if back.Fin != frame.Fin || back.Opcode != frame.Opcode || !bytes.Equal(back.Payload, frame.Payload) {
				t.Fatalf("round-trip mangled frame: %+v vs %+v", frame, back)
			}
		}
	})
}
