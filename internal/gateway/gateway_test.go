package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// testGateway boots a real somad service over TCP plus a gateway in front
// of it, served by httptest (a real HTTP server, so Hijack works).
type testGateway struct {
	svc  *core.Service
	addr string // upstream RPC address
	gw   *Gateway
	srv  *httptest.Server
}

func newTestGateway(t *testing.T, cfg Config) *testGateway {
	t.Helper()
	svc := core.NewService(core.ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Upstream = addr
	gw, err := New(cfg)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	tg := &testGateway{svc: svc, addr: addr, gw: gw, srv: srv}
	t.Cleanup(func() {
		srv.Close()
		gw.Close()
		svc.Close()
	})
	return tg
}

func (tg *testGateway) publish(t *testing.T, ns core.Namespace, path string, v float64) {
	t.Helper()
	n := conduit.NewNode()
	n.SetFloat(path, v)
	if err := tg.svc.Publish(ns, n, 0); err != nil {
		t.Fatal(err)
	}
}

func (tg *testGateway) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(tg.srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, body
}

func (tg *testGateway) getJSON(t *testing.T, path string, out interface{}) {
	t.Helper()
	code, body := tg.get(t, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, code, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
	}
}

// counter reads a process-global counter (tests assert deltas, never
// absolutes — the registry is shared).
func counter(name string) int64 { return telemetry.Default().Counter(name).Value() }

// TestQueryCacheHit is the tentpole's fast-path acceptance: a repeat query
// for an unchanged namespace is served from the memoized JSON body (no
// re-marshal) on top of the client's delta memo (no re-encode upstream).
func TestQueryCacheHit(t *testing.T) {
	tg := newTestGateway(t, Config{})
	tg.publish(t, core.NSWorkflow, "RP/pilot/cores", 42)

	hits0, miss0 := counter("gateway.query.cache_hits"), counter("gateway.query.cache_misses")
	var q struct {
		NS   string `json:"ns"`
		Path string `json:"path"`
		Data struct {
			RP struct {
				Pilot struct {
					Cores float64 `json:"cores"`
				} `json:"pilot"`
			} `json:"RP"`
		} `json:"data"`
	}
	tg.getJSON(t, "/api/query?ns=workflow", &q)
	if q.NS != "workflow" || q.Data.RP.Pilot.Cores != 42 {
		t.Fatalf("first query wrong: %+v", q)
	}

	// Unchanged repeat: must be a cache hit with an identical body.
	code, body1 := tg.get(t, "/api/query?ns=workflow")
	if code != http.StatusOK {
		t.Fatalf("repeat query: %d", code)
	}
	if got := counter("gateway.query.cache_hits") - hits0; got < 1 {
		t.Fatalf("cache hits delta = %d, want >= 1", got)
	}
	resp, err := http.Get(tg.srv.URL + "/api/query?ns=workflow")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Soma-Cache") != "hit" {
		t.Fatalf("repeat query not marked as cache hit (%q)", resp.Header.Get("X-Soma-Cache"))
	}
	if string(body1) != string(body2) {
		t.Fatalf("cache served different bodies:\n%s\n%s", body1, body2)
	}

	// A publish invalidates: the next query is a miss with the new value.
	tg.publish(t, core.NSWorkflow, "RP/pilot/cores", 43)
	tg.getJSON(t, "/api/query?ns=workflow", &q)
	if q.Data.RP.Pilot.Cores != 43 {
		t.Fatalf("post-publish query = %g, want 43", q.Data.RP.Pilot.Cores)
	}
	if miss := counter("gateway.query.cache_misses") - miss0; miss < 2 {
		t.Fatalf("cache miss delta = %d, want >= 2 (first + post-publish)", miss)
	}

	if code, body := tg.get(t, "/api/query?ns=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad ns: %d %s", code, body)
	}
}

// TestDashboardDrive walks the HTTP surface exactly as the embedded
// dashboard's app.js does: static assets first, then the poll loop's API
// calls, checking shape (not just status) at each step.
func TestDashboardDrive(t *testing.T) {
	tg := newTestGateway(t, Config{})
	// Series keys need timestamped numeric leaves (key/<time> pattern).
	for i := 0; i < 5; i++ {
		tg.publish(t, core.NSHardware, fmt.Sprintf("PROC/cn01/%d.5/CPU Util", i), float64(20+i))
	}

	// The page and its assets.
	code, body := tg.get(t, "/")
	if code != http.StatusOK || !strings.Contains(string(body), "SOMA") {
		t.Fatalf("dashboard index: %d", code)
	}
	if code, _ := tg.get(t, "/app.js"); code != http.StatusOK {
		t.Fatalf("app.js: %d", code)
	}
	if code, _ := tg.get(t, "/style.css"); code != http.StatusOK {
		t.Fatalf("style.css: %d", code)
	}

	// The poll loop: health, stats, series keys, one series, alerts, traces.
	var h struct {
		Status  string `json:"status"`
		Breaker string `json:"breaker"`
	}
	tg.getJSON(t, "/api/health", &h)
	if h.Status != "ok" {
		t.Fatalf("health status %q", h.Status)
	}
	var st struct {
		Namespaces []struct {
			NS        string `json:"ns"`
			Publishes int64  `json:"publishes"`
		} `json:"namespaces"`
	}
	tg.getJSON(t, "/api/stats", &st)
	found := false
	for _, ns := range st.Namespaces {
		if ns.NS == "hardware" && ns.Publishes >= 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats missing hardware publishes: %+v", st)
	}
	var keys struct {
		Keys []string `json:"keys"`
	}
	tg.getJSON(t, "/api/series?ns=hardware", &keys)
	if len(keys.Keys) == 0 {
		t.Fatal("no series keys")
	}
	var series struct {
		Key     string `json:"key"`
		Buckets []struct {
			Mean  float64 `json:"mean"`
			Count int64   `json:"count"`
		} `json:"buckets"`
	}
	tg.getJSON(t, "/api/series?ns=hardware&key=PROC%2Fcn01%2FCPU+Util&level=1s", &series)
	if len(series.Buckets) == 0 {
		t.Fatalf("series has no buckets: %+v", series)
	}
	var alerts struct {
		Rules  []json.RawMessage `json:"rules"`
		States []json.RawMessage `json:"states"`
	}
	tg.getJSON(t, "/api/alerts", &alerts)
	var traces struct {
		Traces []json.RawMessage `json:"traces"`
	}
	tg.getJSON(t, "/api/traces?sort=slowest", &traces)
	var tel struct {
		Counters map[string]int64 `json:"counters"`
	}
	tg.getJSON(t, "/api/telemetry?self=1", &tel)
	if _, ok := tel.Counters["gateway.http.query.requests"]; !ok && len(tel.Counters) == 0 {
		t.Fatalf("self telemetry empty: %+v", tel)
	}

	// Prometheus view of the gateway itself.
	code, body = tg.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"gosoma_gateway_http_health_requests",
		"gosoma_gateway_process_goroutines",
		"# HELP",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	if code, _ := tg.get(t, "/api/traces/zzzz"); code != http.StatusBadRequest {
		t.Fatal("bad trace id accepted")
	}
	if code, _ := tg.get(t, "/api/traces/0123456789abcdef"); code != http.StatusNotFound {
		t.Fatal("missing trace not 404")
	}
}

// TestRateLimit429 pins the token bucket: a burst beyond the allowance
// gets 429 with Retry-After, while /api/health stays exempt (the gateway
// must never throttle its own liveness signal).
func TestRateLimit429(t *testing.T) {
	tg := newTestGateway(t, Config{RatePerSec: 1, Burst: 3})
	limited0 := counter("gateway.http.rate_limited")
	var got429 bool
	for i := 0; i < 10; i++ {
		resp, err := http.Get(tg.srv.URL + "/api/stats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if !got429 {
		t.Fatal("no 429 under burst")
	}
	if counter("gateway.http.rate_limited")-limited0 < 1 {
		t.Fatal("rate_limited counter did not move")
	}
	// Health stays reachable regardless of the exhausted bucket.
	for i := 0; i < 5; i++ {
		if code, _ := tg.get(t, "/api/health"); code != http.StatusOK {
			t.Fatalf("health throttled: %d", code)
		}
	}
}

// TestWSLiveUpdates subscribes over a real WebSocket and receives a
// published update with the drop accounting fields present.
func TestWSLiveUpdates(t *testing.T) {
	tg := newTestGateway(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := Dial(ctx, "ws"+strings.TrimPrefix(tg.srv.URL, "http")+"/ws?ns=workflow")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	tg.publish(t, core.NSWorkflow, "RP/tasks/running", 7)

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		op, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if op == OpPing {
			conn.WriteMessage(OpPong, payload)
			continue
		}
		if op != OpText {
			continue
		}
		var u struct {
			NS   string `json:"ns"`
			Data struct {
				RP struct {
					Tasks struct {
						Running float64 `json:"running"`
					} `json:"tasks"`
				} `json:"RP"`
			} `json:"data"`
			DroppedWS       *int64 `json:"dropped_ws"`
			DroppedUpstream *int64 `json:"dropped_upstream"`
			Dropped         *int64 `json:"dropped"`
		}
		if err := json.Unmarshal(payload, &u); err != nil {
			t.Fatalf("bad update JSON: %v\n%s", err, payload)
		}
		if u.NS != "workflow" || u.Data.RP.Tasks.Running != 7 {
			t.Fatalf("unexpected update: %s", payload)
		}
		if u.DroppedWS == nil || u.DroppedUpstream == nil || u.Dropped == nil {
			t.Fatalf("drop accounting fields missing: %s", payload)
		}
		return
	}
}

// TestWSAlertsStream verifies the soma.alerts stream end to end: a rule
// whose threshold the published series crosses produces a firing
// transition on the alert WebSocket.
func TestWSAlertsStream(t *testing.T) {
	tg := newTestGateway(t, Config{})
	cli, err := core.Connect(tg.addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.SetAlert(core.AlertRule{
		Name: "hot", NS: core.NSHardware, Pattern: "PROC/**",
		Op: ">", Threshold: 90, WindowSec: 1, Severity: "critical",
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	conn, err := Dial(ctx, "ws"+strings.TrimPrefix(tg.srv.URL, "http")+"/ws?ns=soma.alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Publish above-threshold samples until the evaluator fires (rollup
	// buckets need the window to fill).
	deadline := time.Now().Add(10 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; time.Now().Before(deadline); i++ {
			select {
			case <-ctx.Done():
				return
			default:
			}
			n := conduit.NewNode()
			n.SetFloat(fmt.Sprintf("PROC/cn01/%d.25/CPU Util", i), 99)
			tg.svc.Publish(core.NSHardware, n, 0)
			time.Sleep(50 * time.Millisecond)
		}
	}()
	defer func() { cancel(); <-done }()

	conn.SetReadDeadline(deadline.Add(time.Second))
	for {
		op, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("no alert transition arrived: %v", err)
		}
		if op == OpPing {
			conn.WriteMessage(OpPong, payload)
			continue
		}
		if op != OpText {
			continue
		}
		var u struct {
			NS    string `json:"ns"`
			Alert bool   `json:"alert"`
		}
		if err := json.Unmarshal(payload, &u); err != nil {
			t.Fatalf("bad alert JSON: %v\n%s", err, payload)
		}
		if !u.Alert {
			t.Fatalf("alert stream message without alert flag: %s", payload)
		}
		return
	}
}

// TestHealthClusterBlock: when the upstream joins a sharded cluster, the
// gateway's /api/health must surface the membership block — self, ring
// epoch, alive count and per-peer liveness — and omit it otherwise.
func TestHealthClusterBlock(t *testing.T) {
	tg := newTestGateway(t, Config{})

	var plain struct {
		Cluster *struct{} `json:"cluster"`
	}
	tg.getJSON(t, "/api/health", &plain)
	if plain.Cluster != nil {
		t.Fatalf("unclustered upstream reported a cluster block")
	}

	peer := core.NewService(core.ServiceConfig{})
	paddr, err := peer.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	join := func(s *core.Service, id string, peers []string) {
		t.Helper()
		err := s.JoinCluster(core.ClusterConfig{
			SelfID:       id,
			Peers:        peers,
			PingInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	join(tg.svc, "gw-upstream", []string{paddr})
	join(peer, "gw-peer", []string{tg.addr})

	var h struct {
		Cluster *struct {
			Self  string `json:"self"`
			Epoch string `json:"epoch"`
			Alive int    `json:"alive"`
			Peers []struct {
				ID    string `json:"id"`
				Alive bool   `json:"alive"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	// Peers start alive from the seed list but their configured labels only
	// arrive with the first gossip exchange — poll for both.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tg.getJSON(t, "/api/health", &h)
		if h.Cluster != nil && h.Cluster.Alive == 2 &&
			len(h.Cluster.Peers) == 1 && h.Cluster.Peers[0].ID == "gw-peer" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster block never settled on 2 alive with gossiped ids: %+v", h.Cluster)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if h.Cluster.Self != tg.addr {
		t.Errorf("cluster self = %q, want upstream addr %q", h.Cluster.Self, tg.addr)
	}
	if h.Cluster.Epoch == "" || h.Cluster.Epoch == "0" {
		t.Errorf("cluster epoch = %q, want a nonzero ring epoch", h.Cluster.Epoch)
	}
	if len(h.Cluster.Peers) != 1 || h.Cluster.Peers[0].ID != "gw-peer" || !h.Cluster.Peers[0].Alive {
		t.Errorf("cluster peers = %+v, want one alive gw-peer", h.Cluster.Peers)
	}
}
