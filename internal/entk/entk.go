// Package entk is a Go analog of RADICAL-EnTK (Ensemble Toolkit), the
// higher-level abstraction over RADICAL-Pilot the paper uses for the
// DeepDriveMD mini-app experiments (§3.2, Fig. 3):
//
//   - a Task is a pilot task description;
//   - a Stage is a set of tasks that may run concurrently;
//   - a Pipeline is an ordered sequence of stages — a stage starts only
//     after every task of the previous stage finished;
//   - an AppManager runs m pipelines concurrently on one pilot, and can
//     schedule n phases in a row by appending phase stages to each pipeline.
//
// Stage completion hooks (PostExec) are the integration point for the
// paper's "adaptive" experiment: SOMA analysis runs between phases and
// adjusts the next phase's task configuration.
package entk

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/pilot"
)

// Stage is one step of a pipeline: tasks submitted together, completing as
// a barrier.
type Stage struct {
	Name  string
	Tasks []pilot.TaskDescription
	// PostExec runs after every task of the stage reached a final state
	// and before the next stage is submitted. It may mutate the pipeline's
	// later stages (adaptive workflows).
	PostExec func(s *Stage, results []*pilot.Task)

	results []*pilot.Task
}

// Results returns the stage's completed tasks (valid after the stage ran).
func (s *Stage) Results() []*pilot.Task { return s.results }

// Pipeline is an ordered list of stages.
type Pipeline struct {
	Name   string
	Stages []*Stage

	mu        sync.Mutex
	current   int
	done      bool
	failed    bool
	suspended bool
	resumeFn  func()
}

// Suspend stops the pipeline from advancing past its current stage: tasks
// already submitted run to completion, but the next stage is not submitted
// until Resume. Mirrors EnTK's pipeline suspend/resume API.
func (p *Pipeline) Suspend() {
	p.mu.Lock()
	p.suspended = true
	p.mu.Unlock()
}

// Resume lets a suspended pipeline continue. If a stage barrier was reached
// while suspended, the next stage is submitted immediately.
func (p *Pipeline) Resume() {
	p.mu.Lock()
	p.suspended = false
	fn := p.resumeFn
	p.resumeFn = nil
	p.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Suspended reports whether the pipeline is currently suspended.
func (p *Pipeline) Suspended() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.suspended
}

// AddStage appends a stage.
func (p *Pipeline) AddStage(s *Stage) { p.Stages = append(p.Stages, s) }

// Done reports whether the pipeline has finished all stages.
func (p *Pipeline) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// Failed reports whether any task of the pipeline failed.
func (p *Pipeline) Failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// CurrentStage returns the index of the stage being executed.
func (p *Pipeline) CurrentStage() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.current
}

// AppManager executes pipelines on a pilot, mirroring EnTK's AppManager.
type AppManager struct {
	session *pilot.Session
	pilot   *pilot.Pilot
	tmgr    *pilot.TaskManager

	mu        sync.Mutex
	active    int
	pipelines []*Pipeline
	onDone    []func()
	started   bool
}

// NewAppManager binds a manager to a session and pilot.
func NewAppManager(sess *pilot.Session, pl *pilot.Pilot) *AppManager {
	return &AppManager{
		session: sess,
		pilot:   pl,
		tmgr:    sess.NewTaskManager(pl),
	}
}

// TaskManager exposes the underlying task manager (for monitors).
func (am *AppManager) TaskManager() *pilot.TaskManager { return am.tmgr }

// OnAllDone registers fn to run once every pipeline completes.
func (am *AppManager) OnAllDone(fn func()) {
	am.mu.Lock()
	am.onDone = append(am.onDone, fn)
	am.mu.Unlock()
}

// Run starts every pipeline concurrently. It returns immediately; drive the
// runtime (DES engine) or use Wait (real mode) for completion. Run can only
// be called once per manager.
func (am *AppManager) Run(pipelines []*Pipeline) error {
	am.mu.Lock()
	if am.started {
		am.mu.Unlock()
		return fmt.Errorf("entk: AppManager.Run called twice")
	}
	am.started = true
	am.pipelines = pipelines
	am.active = len(pipelines)
	am.mu.Unlock()
	if len(pipelines) == 0 {
		am.finish()
		return nil
	}
	for _, p := range pipelines {
		if len(p.Stages) == 0 {
			am.pipelineDone(p)
			continue
		}
		if err := am.submitStage(p, 0); err != nil {
			return err
		}
	}
	return nil
}

// Pipelines returns the pipelines passed to Run.
func (am *AppManager) Pipelines() []*Pipeline {
	am.mu.Lock()
	defer am.mu.Unlock()
	return append([]*Pipeline(nil), am.pipelines...)
}

// AllDone reports whether every pipeline finished.
func (am *AppManager) AllDone() bool {
	am.mu.Lock()
	defer am.mu.Unlock()
	return am.started && am.active == 0
}

func (am *AppManager) finish() {
	am.mu.Lock()
	fns := append([]func(){}, am.onDone...)
	am.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

func (am *AppManager) pipelineDone(p *Pipeline) {
	p.mu.Lock()
	p.done = true
	p.mu.Unlock()
	am.mu.Lock()
	am.active--
	last := am.active == 0
	am.mu.Unlock()
	if last {
		am.finish()
	}
}

// submitStage submits every task of stage idx with a completion barrier
// that advances the pipeline.
func (am *AppManager) submitStage(p *Pipeline, idx int) error {
	stage := p.Stages[idx]
	p.mu.Lock()
	p.current = idx
	p.mu.Unlock()

	if len(stage.Tasks) == 0 {
		am.advance(p, idx)
		return nil
	}

	var (
		mu      sync.Mutex
		pending = len(stage.Tasks)
	)
	tds := make([]pilot.TaskDescription, len(stage.Tasks))
	copy(tds, stage.Tasks)
	for i := range tds {
		userCB := tds[i].OnComplete
		if tds[i].Name == "" {
			tds[i].Name = fmt.Sprintf("%s:%s:t%03d", p.Name, stage.Name, i)
		}
		tds[i].OnComplete = func(t *pilot.Task) {
			if userCB != nil {
				userCB(t)
			}
			if t.State() == pilot.StateFailed {
				p.mu.Lock()
				p.failed = true
				p.mu.Unlock()
			}
			mu.Lock()
			stage.results = append(stage.results, t)
			pending--
			last := pending == 0
			mu.Unlock()
			if last {
				// Advance via a zero-delay event to avoid re-entering the
				// agent from its own completion path.
				am.session.Runtime.AfterFunc(0, func() { am.advance(p, idx) })
			}
		}
	}
	_, err := am.tmgr.Submit(tds)
	return err
}

// advance runs the stage hook and submits the next stage (or completes the
// pipeline). A suspended pipeline parks here until Resume.
func (am *AppManager) advance(p *Pipeline, idx int) {
	stage := p.Stages[idx]
	if stage.PostExec != nil {
		stage.PostExec(stage, stage.results)
	}
	p.mu.Lock()
	if p.suspended {
		p.resumeFn = func() { am.advance(p, idx) }
		// Skip re-running PostExec on resume by clearing it now; results
		// are already recorded.
		stage.PostExec = nil
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	if idx+1 < len(p.Stages) {
		if err := am.submitStage(p, idx+1); err != nil {
			p.mu.Lock()
			p.failed = true
			p.mu.Unlock()
			am.pipelineDone(p)
		}
		return
	}
	am.pipelineDone(p)
}

// Wait blocks until every pipeline completes (real mode only).
func (am *AppManager) Wait() {
	done := make(chan struct{})
	am.OnAllDone(func() { close(done) })
	if am.AllDone() {
		return
	}
	<-done
}
