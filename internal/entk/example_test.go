package entk_test

import (
	"fmt"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/entk"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
)

// A DDMD-shaped pipeline: four ordered stages, the simulation stage fanning
// out to concurrent tasks, all on one pilot.
func ExampleAppManager() {
	eng := des.NewEngine()
	sess := pilot.NewSession(eng, platform.NewBatchSystem(platform.NewCluster(2, platform.Summit())))
	pl, _ := sess.SubmitPilot(pilot.PilotDescription{Nodes: 2})

	dur := func(d float64) pilot.DurationFunc {
		return func(pilot.ExecContext) float64 { return d }
	}
	pipe := &entk.Pipeline{Name: "ddmd"}
	sim := &entk.Stage{Name: "simulation"}
	for i := 0; i < 12; i++ {
		sim.Tasks = append(sim.Tasks, pilot.TaskDescription{
			Ranks: 1, CoresPerRank: 3, GPUsPerRank: 1, Duration: dur(300),
		})
	}
	pipe.AddStage(sim)
	pipe.AddStage(&entk.Stage{Name: "training", Tasks: []pilot.TaskDescription{
		{Ranks: 1, CoresPerRank: 7, GPUsPerRank: 1, Duration: dur(180)},
	}})
	pipe.AddStage(&entk.Stage{Name: "selection", Tasks: []pilot.TaskDescription{
		{Ranks: 1, Duration: dur(45)},
	}})
	pipe.AddStage(&entk.Stage{Name: "agent", Tasks: []pilot.TaskDescription{
		{Ranks: 1, GPUsPerRank: 1, Duration: dur(90)},
	}})

	am := entk.NewAppManager(sess, pl)
	_ = am.Run([]*entk.Pipeline{pipe})
	makespan := eng.Run()

	// 12 GPUs needed, 12 available across 2 nodes: one simulation wave.
	fmt.Println("done:", pipe.Done(), "failed:", pipe.Failed())
	fmt.Println("stages:", len(pipe.Stages), "makespan under 700s:", makespan < 700)
	// Output:
	// done: true failed: false
	// stages: 4 makespan under 700s: true
}
