package entk

import (
	"fmt"
	"testing"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
)

func fixture(t *testing.T, nodes int) (*des.Engine, *pilot.Session, *AppManager) {
	t.Helper()
	eng := des.NewEngine()
	batch := platform.NewBatchSystem(platform.NewCluster(nodes, platform.Summit()))
	sess := pilot.NewSession(eng, batch)
	p, err := sess.SubmitPilot(pilot.PilotDescription{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return eng, sess, NewAppManager(sess, p)
}

func dur(d float64) pilot.DurationFunc {
	return func(pilot.ExecContext) float64 { return d }
}

func TestStagesRunSequentially(t *testing.T) {
	eng, _, am := fixture(t, 2)
	p := &Pipeline{Name: "p0"}
	p.AddStage(&Stage{Name: "s0", Tasks: []pilot.TaskDescription{
		{Ranks: 4, Duration: dur(10)},
		{Ranks: 4, Duration: dur(20)},
	}})
	p.AddStage(&Stage{Name: "s1", Tasks: []pilot.TaskDescription{
		{Ranks: 4, Duration: dur(5)},
	}})
	if err := am.Run([]*Pipeline{p}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !p.Done() || p.Failed() {
		t.Fatalf("done=%v failed=%v", p.Done(), p.Failed())
	}
	// Stage barrier: s1's task must start after BOTH s0 tasks finished.
	s0 := p.Stages[0].Results()
	s1 := p.Stages[1].Results()
	if len(s0) != 2 || len(s1) != 1 {
		t.Fatalf("results: %d, %d", len(s0), len(s1))
	}
	var s0End float64
	for _, task := range s0 {
		_, _, _, done := task.Times()
		if done > s0End {
			s0End = done
		}
	}
	_, _, s1Start, _ := s1[0].Times()
	if s1Start < s0End {
		t.Fatalf("stage 1 started %v before stage 0 ended %v", s1Start, s0End)
	}
	if !am.AllDone() {
		t.Fatal("manager should be done")
	}
}

func TestConcurrentPipelines(t *testing.T) {
	eng, _, am := fixture(t, 4)
	var pipes []*Pipeline
	for i := 0; i < 4; i++ {
		p := &Pipeline{Name: fmt.Sprintf("p%d", i)}
		p.AddStage(&Stage{Name: "s", Tasks: []pilot.TaskDescription{
			{Ranks: 8, Duration: dur(30)},
		}})
		pipes = append(pipes, p)
	}
	if err := am.Run(pipes); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// All pipelines fit concurrently: every task should start at the same
	// time (right after bootstrap) — makespan ≈ one task, not four.
	var starts []float64
	for _, p := range pipes {
		if !p.Done() {
			t.Fatalf("pipeline %s not done", p.Name)
		}
		_, _, s, _ := p.Stages[0].Results()[0].Times()
		starts = append(starts, s)
	}
	for _, s := range starts[1:] {
		if s != starts[0] {
			t.Fatalf("pipelines serialized: starts %v", starts)
		}
	}
}

func TestPostExecAdaptsNextStage(t *testing.T) {
	eng, _, am := fixture(t, 2)
	p := &Pipeline{Name: "adaptive"}
	p.AddStage(&Stage{
		Name:  "phase1",
		Tasks: []pilot.TaskDescription{{Ranks: 2, Duration: dur(10)}},
		PostExec: func(_ *Stage, results []*pilot.Task) {
			// Between-phase analysis doubles the next phase's ranks.
			p.Stages[1].Tasks[0].Ranks = 4
		},
	})
	p.AddStage(&Stage{Name: "phase2", Tasks: []pilot.TaskDescription{
		{Ranks: 2, Duration: dur(10)},
	}})
	am.Run([]*Pipeline{p})
	eng.Run()
	got := p.Stages[1].Results()[0].Placement().TotalCores()
	if got != 4 {
		t.Fatalf("adapted stage ran with %d cores, want 4", got)
	}
}

func TestFailurePropagates(t *testing.T) {
	eng, _, am := fixture(t, 1)
	p := &Pipeline{Name: "f"}
	p.AddStage(&Stage{Name: "s0", Tasks: []pilot.TaskDescription{
		{Ranks: 1, Duration: dur(1),
			Func: func(pilot.ExecContext) error { return fmt.Errorf("boom") }},
	}})
	ranSecond := false
	p.AddStage(&Stage{Name: "s1", Tasks: []pilot.TaskDescription{
		{Ranks: 1, Duration: dur(1),
			Func: func(pilot.ExecContext) error { ranSecond = true; return nil }},
	}})
	am.Run([]*Pipeline{p})
	eng.Run()
	if !p.Failed() {
		t.Fatal("pipeline should be marked failed")
	}
	// EnTK continues the pipeline after failures (fail-soft), like the
	// paper's non-deterministic pipelines: subsequent stages still run.
	if !ranSecond {
		t.Fatal("later stage should still run")
	}
	if !p.Done() {
		t.Fatal("pipeline should still complete")
	}
}

func TestEmptyStagesAndPipelines(t *testing.T) {
	eng, _, am := fixture(t, 1)
	p := &Pipeline{Name: "empty"}
	p.AddStage(&Stage{Name: "nothing"})
	p.AddStage(&Stage{Name: "one", Tasks: []pilot.TaskDescription{{Ranks: 1, Duration: dur(1)}}})
	empty := &Pipeline{Name: "no-stages"}
	am.Run([]*Pipeline{p, empty})
	eng.Run()
	if !p.Done() || !empty.Done() || !am.AllDone() {
		t.Fatal("empty constructs should complete trivially")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	eng, _, am := fixture(t, 1)
	if err := am.Run(nil); err != nil {
		t.Fatal(err)
	}
	if err := am.Run(nil); err == nil {
		t.Fatal("second Run accepted")
	}
	eng.Run()
}

func TestRunNoPipelinesFiresDone(t *testing.T) {
	_, _, am := fixture(t, 1)
	fired := false
	am.OnAllDone(func() { fired = true })
	am.Run(nil)
	if !fired || !am.AllDone() {
		t.Fatal("empty Run should complete immediately")
	}
}

func TestPhaseComposition(t *testing.T) {
	// n phases of a 4-stage workflow = 4n stages on one pipeline — the
	// paper's "n phases in a row, within m concurrent pipelines".
	eng, _, am := fixture(t, 2)
	p := &Pipeline{Name: "ddmd"}
	const phases = 3
	for ph := 0; ph < phases; ph++ {
		for _, st := range []string{"sim", "train", "select", "agent"} {
			p.AddStage(&Stage{
				Name:  fmt.Sprintf("phase%d:%s", ph, st),
				Tasks: []pilot.TaskDescription{{Ranks: 2, Duration: dur(5)}},
			})
		}
	}
	am.Run([]*Pipeline{p})
	eng.Run()
	if !p.Done() {
		t.Fatal("not done")
	}
	if got := p.CurrentStage(); got != 4*phases-1 {
		t.Fatalf("current stage = %d", got)
	}
	// Stages must not overlap in time.
	var prevEnd float64
	for _, s := range p.Stages {
		_, _, start, end := s.Results()[0].Times()
		if start < prevEnd {
			t.Fatalf("stage %s overlapped previous (start %v < prev end %v)", s.Name, start, prevEnd)
		}
		prevEnd = end
	}
}

func TestRealModeWait(t *testing.T) {
	rt := des.NewRealRuntime()
	defer rt.Shutdown()
	batch := platform.NewBatchSystem(platform.NewCluster(1, platform.Summit()))
	sess := pilot.NewSession(rt, batch)
	p, err := sess.SubmitPilot(pilot.PilotDescription{Nodes: 1, BootstrapSec: 0.005, SchedOverheadSec: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	am := NewAppManager(sess, p)
	pipe := &Pipeline{Name: "real"}
	pipe.AddStage(&Stage{Name: "s", Tasks: []pilot.TaskDescription{
		{Ranks: 2, Duration: dur(0.01)},
		{Ranks: 2, Duration: dur(0.01)},
	}})
	if err := am.Run([]*Pipeline{pipe}); err != nil {
		t.Fatal(err)
	}
	am.Wait()
	if !pipe.Done() || pipe.Failed() {
		t.Fatalf("done=%v failed=%v", pipe.Done(), pipe.Failed())
	}
}

func TestSuspendResume(t *testing.T) {
	eng, _, am := fixture(t, 1)
	p := &Pipeline{Name: "susp"}
	p.AddStage(&Stage{Name: "s0", Tasks: []pilot.TaskDescription{{Ranks: 1, Duration: dur(10)}}})
	p.AddStage(&Stage{Name: "s1", Tasks: []pilot.TaskDescription{{Ranks: 1, Duration: dur(10)}}})
	// Suspend at the first stage barrier.
	p.Stages[0].PostExec = func(*Stage, []*pilot.Task) { p.Suspend() }
	if err := am.Run([]*Pipeline{p}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if p.Done() {
		t.Fatal("suspended pipeline should not complete")
	}
	if !p.Suspended() {
		t.Fatal("pipeline should report suspended")
	}
	if len(p.Stages[1].Results()) != 0 {
		t.Fatal("stage 1 ran while suspended")
	}
	p.Resume()
	eng.Run()
	if !p.Done() || p.Suspended() {
		t.Fatalf("pipeline after resume: done=%v suspended=%v", p.Done(), p.Suspended())
	}
	if len(p.Stages[1].Results()) != 1 {
		t.Fatal("stage 1 did not run after resume")
	}
}

func TestResumeWithoutSuspendIsNoop(t *testing.T) {
	eng, _, am := fixture(t, 1)
	p := &Pipeline{Name: "plain"}
	p.AddStage(&Stage{Name: "s0", Tasks: []pilot.TaskDescription{{Ranks: 1, Duration: dur(5)}}})
	am.Run([]*Pipeline{p})
	p.Resume() // nothing pending
	eng.Run()
	if !p.Done() {
		t.Fatal("pipeline should complete normally")
	}
}
