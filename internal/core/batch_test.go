package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// Publishes coalesced into batches must land on the server in publish order,
// including across flush boundaries: with MaxLeaves=4 a run of 50 publishes
// spans many batch frames, and the merged history must still be monotonic.
func TestBatchOrderingAcrossFlushBoundaries(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 4, MaxAge: time.Hour}) // only count flushes

	const total = 50
	for i := 0; i < total; i++ {
		n := conduit.NewNode()
		n.SetInt("order/seq", int64(i))
		if err := c.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := c.Published(); got != total {
		t.Fatalf("Published() = %d, want %d", got, total)
	}

	// Last writer wins in the merged tree.
	tree, err := svc.Query(NSWorkflow, "order")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Int("seq"); !ok || v != total-1 {
		t.Fatalf("merged seq = %d (%v), want %d", v, ok, total-1)
	}
	// And the raw history preserves publish order across every flush boundary.
	hist, err := svc.History(NSWorkflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != total {
		t.Fatalf("history has %d records, want %d", len(hist), total)
	}
	for i, rec := range hist {
		if v, ok := rec.Int("order/seq"); !ok || v != int64(i) {
			t.Fatalf("history[%d] seq = %d (%v), want %d", i, v, ok, i)
		}
	}
}

// One batch frame may interleave several namespaces; the server's run
// grouping must route every entry to its own instance.
func TestBatchMixedNamespaces(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 512, MaxAge: time.Hour})

	namespaces := []Namespace{NSHardware, NSWorkflow, NSHardware, NSApplication, NSWorkflow}
	for i, ns := range namespaces {
		n := conduit.NewNode()
		n.SetInt(fmt.Sprintf("mixed/e%d", i), int64(i*10))
		if err := c.Publish(ns, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i, ns := range namespaces {
		tree, err := svc.Query(ns, "mixed")
		if err != nil {
			t.Fatalf("query %s: %v", ns, err)
		}
		if v, ok := tree.Int(fmt.Sprintf("e%d", i)); !ok || v != int64(i*10) {
			t.Fatalf("%s mixed/e%d = %d (%v), want %d", ns, i, v, ok, i*10)
		}
	}
	// All five entries ride batch frames, each acknowledged exactly once.
	if got := c.Published(); got != int64(len(namespaces)) {
		t.Fatalf("Published() = %d, want %d", got, len(namespaces))
	}
}

// A batch containing an unknown namespace must be rejected atomically:
// nothing lands, nothing is counted as published.
func TestBatchUnknownNamespaceRejectedAtomically(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 512, MaxAge: time.Hour})

	good := conduit.NewNode()
	good.SetInt("atomic/ok", 1)
	if err := c.Publish(NSWorkflow, good); err != nil {
		t.Fatal(err)
	}
	bad := conduit.NewNode()
	bad.SetInt("atomic/bad", 2)
	if err := c.Publish(Namespace("bogus"), bad); err != nil {
		t.Fatal(err) // coalesced: the rejection surfaces at flush
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush of a batch with a bogus namespace reported success")
	}
	if hist, err := svc.History(NSWorkflow, 0); err != nil || len(hist) != 0 {
		t.Fatalf("atomically-rejected batch leaked %d records into the service (err=%v)", len(hist), err)
	}
	if got := c.Published(); got != 0 {
		t.Fatalf("Published() = %d after a rejected batch, want 0", got)
	}
}

// Published must count at send-acknowledgement, exactly once per leaf, when
// async submission feeds the coalescer.
func TestPublishedCountsAtAckWithAsyncAndBatch(t *testing.T) {
	_, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableAsync(256)
	c.EnableBatch(BatchConfig{MaxLeaves: 16, MaxAge: time.Millisecond})

	const total = 100
	for i := 0; i < total; i++ {
		n := conduit.NewNode()
		n.SetInt("ack/count", int64(i))
		if err := c.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := c.Published(); got != total {
		t.Fatalf("Published() = %d after flush, want exactly %d", got, total)
	}
}

// Against a server that predates soma.publish.batch the client must latch
// the per-entry fallback after the first flush — data still lands, every
// publish is acknowledged and counted once.
func TestBatchFallbackAgainstOldServer(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	svc.Engine().Deregister(RPCPublishBatch) // simulate a pre-batch server
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 8, MaxAge: time.Hour})

	const total = 20
	for i := 0; i < total; i++ {
		n := conduit.NewNode()
		n.SetInt("fallback/seq", int64(i))
		if err := c.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !c.noBatch.Load() {
		t.Fatal("client did not latch the no-batch fallback against an old server")
	}
	if got := c.Published(); got != total {
		t.Fatalf("Published() = %d, want %d", got, total)
	}
	hist, err := svc.History(NSWorkflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != total {
		t.Fatalf("old server received %d publishes, want %d", len(hist), total)
	}
	for i, rec := range hist {
		if v, ok := rec.Int("fallback/seq"); !ok || v != int64(i) {
			t.Fatalf("history[%d] seq = %d (%v), want %d", i, v, ok, i)
		}
	}
	// Latched: later publishes bypass the coalescer entirely.
	n := conduit.NewNode()
	n.SetInt("fallback/late", 1)
	if err := c.Publish(NSWorkflow, n); err != nil {
		t.Fatal(err)
	}
	if got := c.Published(); got != total+1 {
		t.Fatalf("Published() = %d after latched publish, want %d", got, total+1)
	}
}

// A batching + spilling client must ride out a service restart with zero
// loss: entries buffered during the outage redeliver (in batch frames) in
// order once the service is back, and Published converges on the exact
// publish count.
func TestSpillDrainsThroughBatchRedelivery(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 8, MaxAge: time.Millisecond})
	c.EnableSpill(256)

	pub := func(i int) {
		n := conduit.NewNode()
		n.SetInt("restart/seq", int64(i))
		if err := c.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	const before, during = 10, 30
	for i := 0; i < before; i++ {
		pub(i)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush before outage: %v", err)
	}

	svc.Close()
	for i := before; i < before+during; i++ {
		pub(i)
	}
	// Outage publishes flush into transient failures and spill per entry.
	deadline := time.Now().Add(10 * time.Second)
	for c.Spill().Buffered < during {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d outage publishes spilled", c.Spill().Buffered, during)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Degraded() {
		t.Fatal("client not degraded during outage")
	}

	svc2 := NewService(ServiceConfig{})
	if _, err := svc2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer svc2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.DrainSpill(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := c.Spill()
	if st.Redelivered != during || st.Dropped != 0 {
		t.Fatalf("spill stats after drain = %+v, want %d redelivered / 0 dropped", st, during)
	}
	if got := c.Published(); got != before+during {
		t.Fatalf("Published() = %d, want %d (zero loss, exactly-once counting)", got, before+during)
	}
	// The restarted service received every outage publish, in order.
	hist, err := svc2.History(NSWorkflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != during {
		t.Fatalf("restarted service has %d records, want %d", len(hist), during)
	}
	for i, rec := range hist {
		if v, ok := rec.Int("restart/seq"); !ok || v != int64(before+i) {
			t.Fatalf("history[%d] seq = %d (%v), want %d", i, v, ok, before+i)
		}
	}
}

// With rollups disabled and no subscribers the server takes the decode-free
// ingest path: batch entries are validated and stored as wire bytes, folded
// straight into snapshots, and only decoded lazily for History. Results must
// be indistinguishable from the materializing path.
func TestBatchRawIngestPath(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{DisableRollups: true})
	if svc.treesNeeded() {
		t.Fatal("rollups disabled with no subscribers should select the raw ingest path")
	}
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 512, MaxAge: time.Hour})

	// Overlapping paths across publishes exercise the wire-merge fold: the
	// second write must overwrite the scalar, and sibling leaves must
	// accumulate, exactly as tree Merge would.
	const total = 40
	for i := 0; i < total; i++ {
		n := conduit.NewNode()
		n.SetInt("raw/seq", int64(i))
		n.SetFloat(fmt.Sprintf("raw/load/cn%02d", i%8), float64(i))
		n.SetString("raw/state", "ok")
		n.SetIntArray("raw/hist", []int64{int64(i), int64(i + 1)})
		if err := c.Publish(NSHardware, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := c.Published(); got != total {
		t.Fatalf("Published() = %d, want %d", got, total)
	}

	// Query folds the raw records into the snapshot without materializing.
	tree, err := svc.Query(NSHardware, "raw")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Int("seq"); !ok || v != total-1 {
		t.Fatalf("merged seq = %d (%v), want %d", v, ok, total-1)
	}
	for h := 0; h < 8; h++ {
		want := float64(total - 8 + h)
		if v, ok := tree.Float(fmt.Sprintf("load/cn%02d", (total-8+h)%8)); !ok || v != want {
			t.Fatalf("load/cn%02d = %v (%v), want %v", (total-8+h)%8, v, ok, want)
		}
	}
	if s, ok := tree.StringVal("state"); !ok || s != "ok" {
		t.Fatalf("state = %q (%v), want ok", s, ok)
	}

	// History decodes the stored wire bytes lazily, preserving order.
	hist, err := svc.History(NSHardware, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != total {
		t.Fatalf("history has %d records, want %d", len(hist), total)
	}
	for i, rec := range hist {
		if v, ok := rec.Int("raw/seq"); !ok || v != int64(i) {
			t.Fatalf("history[%d] seq = %d (%v), want %d", i, v, ok, i)
		}
		if ia, ok := rec.IntArray("raw/hist"); !ok || len(ia) != 2 || ia[0] != int64(i) {
			t.Fatalf("history[%d] hist = %v (%v)", i, ia, ok)
		}
	}

	// Stats accounting runs on the raw path too.
	for _, st := range svc.Stats() {
		if st.Namespace != NSHardware {
			continue
		}
		if st.Publishes != total {
			t.Fatalf("stats publishes = %d, want %d", st.Publishes, total)
		}
		if st.BytesIn == 0 {
			t.Fatal("stats bytes_in = 0 on the raw path")
		}
	}
}

// The raw ingest path must reject a batch atomically on validation failure:
// an unknown namespace or a structurally corrupt entry anywhere in the frame
// means no entry lands.
func TestBatchRawIngestRejectsAtomically(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{DisableRollups: true})

	good := conduit.NewNode()
	good.SetInt("atomic/ok", 1)

	// Unknown namespace after a valid entry.
	frame := conduit.AppendBatchHeader(nil)
	frame = conduit.AppendBatchEntry(frame, string(NSWorkflow), good)
	frame = conduit.AppendBatchEntry(frame, "bogus", good)
	if err := svc.publishBatchFrame(context.Background(), frame); err == nil {
		t.Fatal("batch with unknown namespace accepted on the raw path")
	}

	// Structurally corrupt tree bytes after a valid entry: flip the root kind
	// byte of the second entry's tree to an unknown kind.
	frame = conduit.AppendBatchHeader(nil)
	frame = conduit.AppendBatchEntry(frame, string(NSWorkflow), good)
	mark := len(frame)
	frame = conduit.AppendBatchEntry(frame, string(NSWorkflow), good)
	// Entry layout: uvarint nsLen, ns, u32 treeLen, 4-byte tree magic, kind.
	kindOff := mark + 1 + len(NSWorkflow) + 4 + 4
	frame[kindOff] = 0xEE
	if err := svc.publishBatchFrame(context.Background(), frame); err == nil {
		t.Fatal("batch with corrupt tree bytes accepted on the raw path")
	}

	if hist, err := svc.History(NSWorkflow, 0); err != nil || len(hist) != 0 {
		t.Fatalf("rejected raw batch leaked %d records (err=%v)", len(hist), err)
	}
}

// newAdaptiveCoalescer builds a bare coalescer in TargetLatency mode with
// the adaptive bound seeded at start — enough state to drive adaptAge
// directly, no wire required.
func newAdaptiveCoalescer(target, start time.Duration) *coalescer {
	co := &coalescer{cfg: BatchConfig{TargetLatency: target}}
	co.ageNs.Store(int64(start))
	return co
}

// Acks running far over target must shrink the age bound (ship sooner,
// carry less queue dwell) until it pins at the lower clamp — and never
// below it.
func TestAdaptiveAgeShrinksUnderSlowAcks(t *testing.T) {
	co := newAdaptiveCoalescer(time.Millisecond, time.Millisecond)
	prev := co.ageBound()
	co.adaptAge(10 * time.Millisecond)
	if got := co.ageBound(); got >= prev {
		t.Fatalf("age bound %v did not shrink from %v under 10x-over-target acks", got, prev)
	}
	for i := 0; i < 50; i++ {
		co.adaptAge(10 * time.Millisecond)
	}
	if got := co.ageBound(); got != minAdaptiveAge {
		t.Fatalf("age bound settled at %v, want the %v clamp under sustained slow acks", got, minAdaptiveAge)
	}
}

// Acks running far under target must stretch the bound (amortize more per
// round trip) until it pins at the upper clamp — and never above it.
func TestAdaptiveAgeStretchesUnderFastAcks(t *testing.T) {
	co := newAdaptiveCoalescer(time.Millisecond, 200*time.Microsecond)
	// Warm the tail estimate below target first so the steer direction is
	// unambiguous from the first assertion on.
	co.adaptAge(50 * time.Microsecond)
	prev := co.ageBound()
	co.adaptAge(50 * time.Microsecond)
	if got := co.ageBound(); got <= prev {
		t.Fatalf("age bound %v did not stretch from %v under fast acks", got, prev)
	}
	for i := 0; i < 50; i++ {
		co.adaptAge(50 * time.Microsecond)
	}
	if got := co.ageBound(); got != maxAdaptiveAge {
		t.Fatalf("age bound settled at %v, want the %v clamp under sustained fast acks", got, maxAdaptiveAge)
	}
}

// A single outlier ack may move the bound by at most a factor of two per
// flush in either direction — the steer is damped, not a slam.
func TestAdaptiveAgeStepBounded(t *testing.T) {
	co := newAdaptiveCoalescer(time.Millisecond, time.Millisecond)
	co.adaptAge(time.Second) // monstrous outlier
	if got := co.ageBound(); got < 500*time.Microsecond {
		t.Fatalf("one outlier moved the bound to %v; steps must stay within [1/2, 2]x", got)
	}
	co = newAdaptiveCoalescer(time.Millisecond, time.Millisecond)
	co.ackTailNs = float64(time.Millisecond) // settled at target...
	co.adaptAge(time.Nanosecond)             // ...then one absurdly fast ack
	if got := co.ageBound(); got > 2*time.Millisecond {
		t.Fatalf("one fast outlier stretched the bound to %v; steps must stay within [1/2, 2]x", got)
	}
}

// Without TargetLatency the bound is the fixed MaxAge — the adaptive path
// must stay fully inert.
func TestAdaptiveAgeDisabledKeepsFixedMaxAge(t *testing.T) {
	co := &coalescer{cfg: BatchConfig{MaxAge: 7 * time.Millisecond}}
	if got := co.ageBound(); got != 7*time.Millisecond {
		t.Fatalf("ageBound() = %v, want the fixed MaxAge 7ms", got)
	}
}

// End-to-end: a TargetLatency client over a real wire must deliver
// everything exactly as a fixed-age client would, with the effective bound
// live inside its clamp the whole time.
func TestAdaptiveBatchEndToEnd(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{MaxLeaves: 8, TargetLatency: 500 * time.Microsecond})

	const total = 200
	for i := 0; i < total; i++ {
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("adapt/p%03d", i), float64(i))
		if err := c.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := c.Published(); got != total {
		t.Fatalf("Published() = %d, want %d", got, total)
	}
	tree, err := svc.Query(NSWorkflow, "adapt")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if v, ok := tree.Float(fmt.Sprintf("p%03d", i)); !ok || v != float64(i) {
			t.Fatalf("leaf p%03d = %v (%v) after adaptive batching", i, v, ok)
		}
	}
	co := c.coal.Load()
	if b := co.ageBound(); b < minAdaptiveAge || b > maxAdaptiveAge {
		t.Fatalf("effective age bound %v escaped the [%v, %v] clamp", b, minAdaptiveAge, maxAdaptiveAge)
	}
}
