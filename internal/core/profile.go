package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// soma.profile — on-demand, bounded profiling of a live service. Instead of
// leaving net/http/pprof open on every somad, profiles are captured through
// the same authenticated RPC plane as everything else, with hard caps so a
// stray request cannot turn a production aggregator into a benchmark:
//
//   - one capture at a time (Service.profileBusy; concurrent requests fail
//     fast instead of queueing behind a 30s CPU profile),
//   - CPU capture duration clamped to [10ms, maxProfileDuration] and to the
//     caller's propagated frame-header deadline,
//   - result size capped well under mercury.MaxFrame.
//
// Wire format:
//
//	req  {kind("cpu"|"heap"|"goroutine"|"allocs"|"block"|"mutex"), duration_ns?}
//	resp {kind, duration_ns, size, data}
//
// The profile bytes travel in the "data" string leaf — conduit strings are
// length-prefixed and binary-safe, so the gzipped protobuf rides unmodified.
const RPCProfile = "soma.profile"

const (
	// maxProfileDuration caps a CPU capture regardless of what the request
	// asks for.
	maxProfileDuration = 30 * time.Second
	minProfileDuration = 10 * time.Millisecond
	// maxProfileBytes rejects absurdly large profiles instead of shipping
	// them; ordinary captures are a few hundred KiB gzipped.
	maxProfileBytes = 8 << 20
	// profileDeadlineMargin is reserved out of the caller's deadline for
	// encoding and writing the response after the capture finishes.
	profileDeadlineMargin = 250 * time.Millisecond
)

// ErrProfileBusy reports that another profile capture is already running.
var ErrProfileBusy = errors.New("soma: a profile capture is already in progress")

// Profile is a captured pprof profile as returned by Client.Profile.
type Profile struct {
	Kind     string
	Duration time.Duration // actual capture window (CPU only)
	Data     []byte        // pprof protobuf, gzip-compressed
}

// handleProfile serves soma.profile. It is registered with RegisterBlocking:
// a CPU capture sits in the handler for its whole sampling window, which
// would stall a non-blocking dispatch loop. Blocking dispatch skips the
// engine's expired-deadline shed, so the handler re-checks ctx.Err() itself.
func (s *Service) handleProfile(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	kind, _ := req.StringVal("kind")
	dur := 2 * time.Second
	if v, ok := req.Int("duration_ns"); ok && v > 0 {
		dur = time.Duration(v)
	}

	if !s.profileBusy.CompareAndSwap(false, true) {
		return nil, ErrProfileBusy
	}
	defer s.profileBusy.Store(false)

	var buf bytes.Buffer
	actual := time.Duration(0)
	switch kind {
	case "cpu":
		if dur > maxProfileDuration {
			dur = maxProfileDuration
		}
		if dl, ok := ctx.Deadline(); ok {
			if budget := time.Until(dl) - profileDeadlineMargin; budget < dur {
				dur = budget
			}
		}
		if dur < minProfileDuration {
			return nil, fmt.Errorf("soma: profile deadline too tight (have %v, need ≥%v)", dur, minProfileDuration)
		}
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return nil, err
		}
		start := time.Now()
		select {
		case <-time.After(dur):
		case <-ctx.Done():
		}
		pprof.StopCPUProfile()
		actual = time.Since(start)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	case "heap", "allocs", "goroutine", "block", "mutex", "threadcreate":
		if kind == "heap" {
			// Fold in anything sitting in per-P caches so the numbers match
			// what an operator expects from a point-in-time heap profile.
			runtime.GC()
		}
		p := pprof.Lookup(kind)
		if p == nil {
			return nil, fmt.Errorf("soma: unknown profile kind %q", kind)
		}
		if err := p.WriteTo(&buf, 0); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("soma: unknown profile kind %q (want cpu, heap, allocs, goroutine, block, mutex or threadcreate)", kind)
	}
	if buf.Len() > maxProfileBytes {
		return nil, fmt.Errorf("soma: profile is %d bytes, exceeds the %d cap", buf.Len(), maxProfileBytes)
	}

	resp := conduit.NewNode()
	resp.SetString("kind", kind)
	resp.SetInt("duration_ns", int64(actual))
	resp.SetInt("size", int64(buf.Len()))
	resp.SetString("data", buf.String())
	return resp.EncodeBinary(), nil
}

// Profile captures a profile from the service. For kind "cpu" the service
// samples for roughly dur (clamped server-side); snapshot kinds ("heap",
// "goroutine", "allocs", "block", "mutex", "threadcreate") ignore dur. The
// returned bytes are a standard gzipped pprof protobuf, ready for `go tool
// pprof`.
//
// soma.profile must never be in a CallPolicy's idempotent set (see
// IdempotentRPCs): a retry after an ambiguous failure would double-start a
// capture or trip the busy gate.
func (c *Client) Profile(kind string, dur time.Duration) (Profile, error) {
	req := conduit.NewNode()
	req.SetString("kind", kind)
	if dur > 0 {
		req.SetInt("duration_ns", int64(dur))
	}
	// Give the wire call room for the full capture window plus transfer.
	timeout := dur + 10*time.Second
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	out, err := c.ep.Call(ctx, RPCProfile, req.EncodeBinary())
	if err != nil {
		return Profile{}, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	p.Kind, _ = resp.StringVal("kind")
	if v, ok := resp.Int("duration_ns"); ok {
		p.Duration = time.Duration(v)
	}
	data, _ := resp.StringVal("data")
	p.Data = []byte(data)
	if len(p.Data) == 0 {
		return Profile{}, errors.New("soma: service returned an empty profile")
	}
	return p, nil
}
