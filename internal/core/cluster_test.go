package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/cluster"
	"github.com/hpcobs/gosoma/internal/conduit"
)

// startFleet boots n clustered in-proc services: each listens, then joins
// with the others as seeds and fast liveness so tests converge quickly.
func startFleet(t testing.TB, n int) ([]*Service, []string) {
	t.Helper()
	svcs := make([]*Service, n)
	addrs := make([]string, n)
	for i := range svcs {
		svcs[i] = NewService(ServiceConfig{})
		addr, err := svcs[i].Listen(fmt.Sprintf("inproc://cluster-%s-%d", t.Name(), i))
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	for i, s := range svcs {
		peers := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		err := s.JoinCluster(ClusterConfig{
			SelfID:       fmt.Sprintf("soma-%d", i),
			Peers:        peers,
			PingInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, s := range svcs {
			s.Close()
		}
	})
	waitFleetEpoch(t, svcs, n)
	return svcs, addrs
}

// waitFleetEpoch blocks until every service's ring agrees: `alive` members
// and one shared epoch.
func waitFleetEpoch(t testing.TB, svcs []*Service, alive int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		epochs := map[uint64]bool{}
		ok := true
		for _, s := range svcs {
			e, members := s.ClusterRing()
			if len(members) != alive {
				ok = false
				break
			}
			epochs[e] = true
		}
		if ok && len(epochs) == 1 {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range svcs {
				e, members := s.ClusterRing()
				t.Logf("svc %d: epoch=%x members=%d", i, e, len(members))
			}
			t.Fatal("fleet rings never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// publishFleet spreads count distinct leaves across the fleet via plain
// single-instance clients in round-robin — server-side placement forwards
// each to its owner. Returns the ground-truth leaf values.
func publishFleet(t testing.TB, addrs []string, count int) map[string]float64 {
	t.Helper()
	truth := map[string]float64{}
	clients := make([]*Client, len(addrs))
	for i, a := range addrs {
		c, err := Connect(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	for i := 0; i < count; i++ {
		path := fmt.Sprintf("FLEET/cn%03d/metric", i)
		n := conduit.NewNode()
		n.SetFloat(path, float64(i))
		if err := clients[i%len(clients)].Publish(NSHardware, n); err != nil {
			t.Fatal(err)
		}
		truth[path] = float64(i)
	}
	return truth
}

func checkTruth(t testing.TB, tree *conduit.Node, truth map[string]float64) {
	t.Helper()
	for path, want := range truth {
		got, ok := tree.Float(path)
		if !ok {
			t.Fatalf("leaf %s missing from merged query", path)
		}
		if got != want {
			t.Fatalf("leaf %s = %v, want %v", path, got, want)
		}
	}
}

// TestClusterScatterQuery is the core correctness invariant: no matter which
// instance ingested a leaf and which instance a client asks, soma.query
// answers the union of every shard.
func TestClusterScatterQuery(t *testing.T) {
	_, addrs := startFleet(t, 3)
	truth := publishFleet(t, addrs, 60)

	for _, addr := range addrs {
		c, err := Connect(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := c.Query(NSHardware, "")
		if err != nil {
			t.Fatal(err)
		}
		checkTruth(t, tree, truth)
		c.Close()
	}
}

// TestClusterPlacementSpread checks writes actually shard: with leaf-level
// consistent hashing, 60 distinct leaves published through one instance must
// land (via forwarding) on every instance, not pile up at the entry point.
func TestClusterPlacementSpread(t *testing.T) {
	svcs, addrs := startFleet(t, 3)
	c, err := Connect(addrs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 60; i++ {
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("SPREAD/cn%03d/metric", i), float64(i))
		if err := c.Publish(NSHardware, n); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range svcs {
		in, err := s.instanceFor(NSHardware)
		if err != nil {
			t.Fatal(err)
		}
		if got := in.snapshotTree().NumLeaves(); got == 0 {
			t.Errorf("instance %d holds zero leaves — placement is not spreading writes", i)
		} else {
			t.Logf("instance %d holds %d leaves", i, got)
		}
	}
}

// TestClusterRebalanceHandoff: leaves ingested before the fleet converges
// (owner unreachable → local-ingest fallback) are copied to their owners by
// the epoch-stamped rebalance, and remain query-visible throughout.
func TestClusterRebalanceHandoff(t *testing.T) {
	// Boot one solo service and fill it while it is the whole cluster.
	a := NewService(ServiceConfig{})
	addrA, err := a.Listen(fmt.Sprintf("inproc://handoff-%s-a", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	truth := map[string]float64{}
	ca, err := Connect(addrA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	for i := 0; i < 40; i++ {
		path := fmt.Sprintf("HANDOFF/cn%03d/metric", i)
		n := conduit.NewNode()
		n.SetFloat(path, float64(i))
		if err := ca.Publish(NSHardware, n); err != nil {
			t.Fatal(err)
		}
		truth[path] = float64(i)
	}

	// Second instance joins; A learns of it via the inbound ping.
	b := NewService(ServiceConfig{})
	addrB, err := b.Listen(fmt.Sprintf("inproc://handoff-%s-b", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.JoinCluster(ClusterConfig{Peers: nil, PingInterval: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := b.JoinCluster(ClusterConfig{Peers: []string{addrA}, PingInterval: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	waitFleetEpoch(t, []*Service{a, b}, 2)

	// Rebalance must copy B's share of the keys over: wait until B's local
	// store holds every leaf the two-member ring assigns to it.
	_, members := a.ClusterRing()
	ring := cluster.NewRing(members, 0)
	wantOnB := 0
	for path := range truth {
		if ring.Owns(addrB, cluster.ShardKey(string(NSHardware), path)) {
			wantOnB++
		}
	}
	if wantOnB == 0 {
		t.Fatal("ring assigned zero keys to the joining member; balance test should have caught this")
	}
	inB, err := b.instanceFor(NSHardware)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		gotOnB := 0
		tree := inB.snapshotTree()
		for path := range truth {
			if ring.Owns(addrB, cluster.ShardKey(string(NSHardware), path)) {
				if _, ok := tree.Float(path); ok {
					gotOnB++
				}
			}
		}
		if gotOnB == wantOnB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff incomplete: B holds %d of its %d owned leaves", gotOnB, wantOnB)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the scattered read still answers the full truth from either side.
	tree, err := ca.Query(NSHardware, "")
	if err != nil {
		t.Fatal(err)
	}
	checkTruth(t, tree, truth)
}

// TestClusterClientRouting drives the shard-routing client: Publish routes
// by ring, Query unions per-member shards, Published sums acks.
func TestClusterClientRouting(t *testing.T) {
	_, addrs := startFleet(t, 3)
	cc, err := ConnectCluster(addrs[0], nil, ClusterClientConfig{RefreshInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	if got := cc.Ring().Len(); got != 3 {
		t.Fatalf("cluster client ring has %d members, want 3", got)
	}

	truth := map[string]float64{}
	for i := 0; i < 60; i++ {
		path := fmt.Sprintf("ROUTE/cn%03d/metric", i)
		n := conduit.NewNode()
		n.SetFloat(path, float64(i))
		if err := cc.Publish(NSHardware, n); err != nil {
			t.Fatal(err)
		}
		truth[path] = float64(i)
	}
	if err := cc.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := cc.Published(); got != 60 {
		t.Fatalf("Published() = %d, want 60", got)
	}
	tree, err := cc.Query(NSHardware, "")
	if err != nil {
		t.Fatal(err)
	}
	checkTruth(t, tree, truth)

	// Unchanged repeat polls ride the per-shard delta memos.
	if _, err := cc.Query(NSHardware, ""); err != nil {
		t.Fatal(err)
	}
	var unchanged int64
	for _, cl := range cc.snapshotClients() {
		unchanged += cl.DeltaStats().Unchanged
	}
	if unchanged == 0 {
		t.Error("repeat cluster query produced zero unchanged delta answers; per-shard memos are not engaging")
	}
}

// TestClusterClientAgainstSoloServer: a routing client pointed at an
// unclustered service degrades to a cluster of one.
func TestClusterClientAgainstSoloServer(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen(fmt.Sprintf("inproc://solo-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cc, err := ConnectCluster(addr, nil, ClusterClientConfig{RefreshInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if got := cc.Ring().Len(); got != 1 {
		t.Fatalf("solo ring has %d members, want 1", got)
	}
	n := conduit.NewNode()
	n.SetFloat("SOLO/cn000/metric", 1)
	if err := cc.Publish(NSHardware, n); err != nil {
		t.Fatal(err)
	}
	tree, err := cc.Query(NSHardware, "")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Float("SOLO/cn000/metric"); !ok || v != 1 {
		t.Fatalf("solo query = (%v, %v), want (1, true)", v, ok)
	}
}

// TestClusterScatterSeriesAndAlerts: the rollup/alert read surface also
// answers fleet-wide.
func TestClusterScatterSeriesAndAlerts(t *testing.T) {
	_, addrs := startFleet(t, 2)
	c0, err := Connect(addrs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()

	if err := c0.SetAlert(AlertRule{
		NS: NSHardware, Name: "hot", Pattern: "SER/*/temp",
		Op: ">", Threshold: 50, WindowSec: 60, Severity: "warn",
	}); err != nil {
		t.Fatal(err)
	}
	// Distinct keys; placement spreads them across both instances.
	for i := 0; i < 16; i++ {
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("SER/cn%03d/temp", i), 90)
		if err := c0.Publish(NSHardware, n); err != nil {
			t.Fatal(err)
		}
	}

	keys, err := c0.SeriesKeys(NSHardware, "SER/*/temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 16 {
		t.Fatalf("scattered SeriesKeys returned %d keys, want 16: %v", len(keys), keys)
	}
	for _, key := range keys {
		se, err := c0.Series(NSHardware, key, Level1s, 0)
		if err != nil {
			t.Fatalf("scattered Series(%s): %v", key, err)
		}
		if len(se.Bucket) == 0 {
			t.Fatalf("scattered Series(%s) returned no buckets", key)
		}
	}

	// The alert rule lives on instance 0's engine but its standings must be
	// visible fleet-wide... the rule only fires for series instance 0 holds;
	// the union still lists the rule itself from any entry point.
	c1, err := Connect(addrs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	rules, _, err := c1.Alerts()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if r.Name == "hot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alert rule installed on instance 0 not visible via instance 1's scattered alert.list: %+v", rules)
	}
}

// BenchmarkScatterGatherQuery measures a fleet-wide soma.query against a
// 2-instance in-proc cluster — the benchdiff gate for the read fan-out path.
func BenchmarkScatterGatherQuery(b *testing.B) {
	_, addrs := startFleet(b, 2)
	truth := publishFleet(b, addrs, 128)
	c, err := Connect(addrs[0], nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	tree, err := c.Query(NSHardware, "")
	if err != nil {
		b.Fatal(err)
	}
	checkTruth(b, tree, truth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(NSHardware, ""); err != nil {
			b.Fatal(err)
		}
	}
}
