package core

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/tau"
)

// Querier is the inbound half of the SOMA API the analysis layer needs.
// *Client implements it over RPC; LocalQuerier implements it in-process.
type Querier interface {
	Query(ns Namespace, path string) (*conduit.Node, error)
}

// LocalQuerier queries a service directly.
type LocalQuerier struct{ Service *Service }

// Query delegates to the service.
func (lq LocalQuerier) Query(ns Namespace, path string) (*conduit.Node, error) {
	return lq.Service.Query(ns, path)
}

// Analysis computes the online metrics the paper derives from SOMA data:
// workflow state statistics and throughput, per-task execution times,
// per-node CPU utilization series, task-start markers, and TAU load-balance
// views. All methods read through a Querier, so they run identically
// against a remote service (RPC) or a local one.
type Analysis struct{ Q Querier }

// WorkflowSnapshot is one published summary of workflow state.
type WorkflowSnapshot struct {
	Time                                     float64
	Pending, Running, Done, Failed, Canceled int
}

// WorkflowSeries returns the published workflow summaries in time order.
func (a Analysis) WorkflowSeries() ([]WorkflowSnapshot, error) {
	root, err := a.Q.Query(NSWorkflow, "RP/summary")
	if err != nil {
		return nil, err
	}
	var out []WorkflowSnapshot
	for _, tsName := range root.ChildNames() {
		t, err := strconv.ParseFloat(tsName, 64)
		if err != nil {
			continue
		}
		sub := root.Child(tsName)
		snap := WorkflowSnapshot{Time: t}
		if v, ok := sub.Int("pending"); ok {
			snap.Pending = int(v)
		}
		if v, ok := sub.Int("running"); ok {
			snap.Running = int(v)
		}
		if v, ok := sub.Int("done"); ok {
			snap.Done = int(v)
		}
		if v, ok := sub.Int("failed"); ok {
			snap.Failed = int(v)
		}
		if v, ok := sub.Int("canceled"); ok {
			snap.Canceled = int(v)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// TimedEvent is one Listing 1 event of one task.
type TimedEvent struct {
	Time float64
	Name string
}

// TaskEvents returns a task's execution events in time order.
func (a Analysis) TaskEvents(uid string) ([]TimedEvent, error) {
	root, err := a.Q.Query(NSWorkflow, "RP/"+uid)
	if err != nil {
		return nil, err
	}
	var out []TimedEvent
	for _, tsName := range root.ChildNames() {
		if tsName == "states" {
			continue
		}
		t, err := strconv.ParseFloat(tsName, 64)
		if err != nil {
			continue
		}
		if name, ok := root.StringVal(tsName); ok {
			out = append(out, TimedEvent{Time: t, Name: name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// TaskUIDs lists every task that has published workflow data.
func (a Analysis) TaskUIDs() ([]string, error) {
	root, err := a.Q.Query(NSWorkflow, "RP")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range root.ChildNames() {
		if len(name) >= 5 && name[:5] == "task." {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// ExecTime returns a task's rank_start→rank_stop duration from its events.
func (a Analysis) ExecTime(uid string) (float64, error) {
	evs, err := a.TaskEvents(uid)
	if err != nil {
		return 0, err
	}
	var start, stop float64
	var haveStart, haveStop bool
	for _, e := range evs {
		switch e.Name {
		case pilot.EvRankStart:
			start, haveStart = e.Time, true
		case pilot.EvRankStop:
			stop, haveStop = e.Time, true
		}
	}
	if !haveStart || !haveStop {
		return 0, fmt.Errorf("soma: task %s has no complete rank interval", uid)
	}
	return stop - start, nil
}

// ExecTimes returns rank_start→rank_stop durations for every complete task.
func (a Analysis) ExecTimes() (map[string]float64, error) {
	uids, err := a.TaskUIDs()
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, uid := range uids {
		if et, err := a.ExecTime(uid); err == nil {
			out[uid] = et
		}
	}
	return out, nil
}

// TaskStart marks a task's execution start — the orange dots of Fig. 7.
type TaskStart struct {
	UID  string
	Time float64
}

// TaskStarts returns every task's exec_start moment, in time order.
func (a Analysis) TaskStarts() ([]TaskStart, error) {
	uids, err := a.TaskUIDs()
	if err != nil {
		return nil, err
	}
	var out []TaskStart
	for _, uid := range uids {
		evs, err := a.TaskEvents(uid)
		if err != nil {
			continue
		}
		for _, e := range evs {
			if e.Name == pilot.EvExecStart {
				out = append(out, TaskStart{UID: uid, Time: e.Time})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// Throughput returns completed tasks per second between the first and last
// workflow summary ("current and average task throughput").
func (a Analysis) Throughput() (float64, error) {
	series, err := a.WorkflowSeries()
	if err != nil {
		return 0, err
	}
	if len(series) < 2 {
		return 0, nil
	}
	first, last := series[0], series[len(series)-1]
	dt := last.Time - first.Time
	if dt <= 0 {
		return 0, nil
	}
	return float64(last.Done-first.Done) / dt, nil
}

// UtilPoint is one CPU utilization observation of one host.
type UtilPoint struct {
	Time float64
	Util float64 // percent
}

// Hosts lists every node that has published hardware data.
func (a Analysis) Hosts() ([]string, error) {
	root, err := a.Q.Query(NSHardware, "PROC")
	if err != nil {
		return nil, err
	}
	hosts := root.ChildNames()
	sort.Strings(hosts)
	return hosts, nil
}

// CPUUtilSeries returns one host's utilization observations in time order —
// one colored line of Fig. 7.
func (a Analysis) CPUUtilSeries(host string) ([]UtilPoint, error) {
	root, err := a.Q.Query(NSHardware, "PROC/"+host)
	if err != nil {
		return nil, err
	}
	var out []UtilPoint
	for _, tsName := range root.ChildNames() {
		t, err := strconv.ParseFloat(tsName, 64)
		if err != nil {
			continue
		}
		if util, ok := root.Float(tsName + "/CPU Util"); ok {
			out = append(out, UtilPoint{Time: t, Util: util})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// UtilImbalance quantifies Fig. 7's "imbalance in the utilization on each
// node": the standard deviation of per-host mean utilization over the given
// time window (0 window = all samples). Zero means perfectly balanced.
func (a Analysis) UtilImbalance(from, to float64) (float64, error) {
	hosts, err := a.Hosts()
	if err != nil {
		return 0, err
	}
	var perHost []float64
	for _, h := range hosts {
		series, err := a.CPUUtilSeries(h)
		if err != nil {
			continue
		}
		var vals []float64
		for _, p := range series {
			if (from == 0 && to == 0) || (p.Time >= from && p.Time <= to) {
				vals = append(vals, p.Util)
			}
		}
		if len(vals) > 0 {
			perHost = append(perHost, stats.Mean(vals))
		}
	}
	if len(perHost) == 0 {
		return 0, fmt.Errorf("soma: no utilization samples in window [%g, %g]", from, to)
	}
	return stats.StdDev(perHost), nil
}

// MeanClusterUtil averages the latest utilization across all hosts.
func (a Analysis) MeanClusterUtil() (float64, error) {
	hosts, err := a.Hosts()
	if err != nil {
		return 0, err
	}
	var vals []float64
	for _, h := range hosts {
		series, err := a.CPUUtilSeries(h)
		if err != nil || len(series) == 0 {
			continue
		}
		vals = append(vals, series[len(series)-1].Util)
	}
	return stats.Mean(vals), nil
}

// StateDurations returns one task's published per-state dwell times — how
// long it spent NEW, queued in the agent scheduler, EXECUTING, and so on.
func (a Analysis) StateDurations(uid string) (map[pilot.State]float64, error) {
	root, err := a.Q.Query(NSWorkflow, "RP/"+uid+"/state_durations")
	if err != nil {
		return nil, err
	}
	out := map[pilot.State]float64{}
	for _, name := range root.ChildNames() {
		if v, ok := root.Float(name); ok {
			out[pilot.State(name)] = v
		}
	}
	return out, nil
}

// QueueWaitStats summarizes how long tasks waited in the agent scheduler
// (the AGENT_SCHEDULING state) across the workflow — the paper's "status of
// the pending tasks" signal for adaptive decisions.
func (a Analysis) QueueWaitStats() (stats.Summary, error) {
	uids, err := a.TaskUIDs()
	if err != nil {
		return stats.Summary{}, err
	}
	var waits []float64
	for _, uid := range uids {
		d, err := a.StateDurations(uid)
		if err != nil {
			continue
		}
		if w, ok := d[pilot.StateAgentScheduling]; ok {
			waits = append(waits, w)
		}
	}
	return stats.Summarize(waits), nil
}

// TAUProfiles returns every profile published to the performance namespace.
func (a Analysis) TAUProfiles() ([]tau.Profile, error) {
	root, err := a.Q.Query(NSPerformance, "")
	if err != nil {
		return nil, err
	}
	return tau.FromConduit(root), nil
}

// ---------------------------------------------------------------------------
// Advisor: turning observations into configuration suggestions — "such
// information can then be employed to calculate better resource allocation
// and task configuration" (abstract).

// Advisor derives task-configuration advice from analysis results.
type Advisor struct {
	// MarginalGain is the minimum speedup per doubling that justifies a
	// larger configuration (default 1.25 — below this, scaling further is
	// "limited benefit").
	MarginalGain float64
	// LowUtil is the CPU utilization (percent) under which cores are
	// considered reclaimable (default 35).
	LowUtil float64
}

// NewAdvisor returns an advisor with the default thresholds.
func NewAdvisor() Advisor { return Advisor{MarginalGain: 1.25, LowUtil: 35} }

// SuggestRanks picks the task size after which scaling stops paying:
// the largest configuration whose speedup over the previous one is at
// least MarginalGain. meanTimes maps rank count to mean execution time.
func (ad Advisor) SuggestRanks(meanTimes map[int]float64) int {
	if len(meanTimes) == 0 {
		return 0
	}
	ranks := make([]int, 0, len(meanTimes))
	for r := range meanTimes {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	best := ranks[0]
	for i := 1; i < len(ranks); i++ {
		prev, cur := meanTimes[ranks[i-1]], meanTimes[ranks[i]]
		if cur <= 0 {
			break
		}
		if prev/cur >= ad.MarginalGain {
			best = ranks[i]
		} else {
			break
		}
	}
	return best
}

// SuggestTrainTasks recommends how many parallel training tasks the next
// DDMD phase should use, given the observed mean CPU utilization and the
// free GPUs SOMA saw during the current phase: low utilization plus idle
// GPUs means the GPU-bound training stage can fan out.
func (ad Advisor) SuggestTrainTasks(current int, meanUtilPct float64, freeGPUs int) int {
	if current < 1 {
		current = 1
	}
	if meanUtilPct >= ad.LowUtil || freeGPUs <= 0 {
		return current
	}
	next := current * 2
	if next > current+freeGPUs {
		next = current + freeGPUs
	}
	return next
}

// SuggestCoresPerTask shrinks a task's core allocation when observed
// utilization shows the cores are idle (Fig. 9's conclusion: fewer CPU
// cores per GPU-bound task frees resources at minimal cost).
func (ad Advisor) SuggestCoresPerTask(current int, meanUtilPct float64) int {
	if current <= 1 {
		return current
	}
	if meanUtilPct < ad.LowUtil {
		next := current / 2
		if next < 1 {
			next = 1
		}
		return next
	}
	return current
}
