// Package core implements SOMA — Service-based Observability, Monitoring,
// and Analysis — the paper's primary contribution, adapted for heterogeneous
// HPC workflows:
//
//   - a Service whose resources are partitioned into independent instances,
//     one per logical namespace (workflow, hardware, performance,
//     application), each with its own storage and lock;
//   - a Client stub that translates the SOMA monitoring API into RPCs over
//     internal/mercury (or local calls through the in-process transport),
//     with optional buffered asynchronous publishing;
//   - collector daemons: the RP monitor (one per workflow, reading the
//     pilot's profile stream and publishing workflow-state statistics) and
//     the hardware monitor (one per compute node, publishing /proc data);
//   - online analysis over the collected data: workflow state statistics,
//     task throughput, per-node CPU utilization series, TAU load-balance
//     views, and an advisor that turns those metrics into task-configuration
//     suggestions (the paper's adaptive-experiment loop).
package core

import "fmt"

// Namespace identifies one of SOMA's logical data namespaces (paper §2.3.2).
type Namespace string

// The four namespaces of the paper's data model.
const (
	// NSWorkflow holds RP task/pilot state snapshots and statistics
	// (Listing 1); new in the paper.
	NSWorkflow Namespace = "workflow"
	// NSHardware holds /proc-derived node metrics (Listing 2); new in the
	// paper.
	NSHardware Namespace = "hardware"
	// NSPerformance holds TAU profiles.
	NSPerformance Namespace = "performance"
	// NSApplication holds application-reported figures of merit.
	NSApplication Namespace = "application"
)

// NSAlerts is the reserved stream name for threshold-alert transitions. It
// is not a storage namespace — nothing can be published into it (Valid stays
// false) — but Client.Subscribe accepts it to follow firing/resolved events
// from every namespace's alert rules.
const NSAlerts Namespace = "soma.alerts"

// Namespaces lists all four in the paper's order.
var Namespaces = []Namespace{NSWorkflow, NSHardware, NSPerformance, NSApplication}

// Valid reports whether ns is one of the four namespaces.
func (ns Namespace) Valid() bool {
	switch ns {
	case NSWorkflow, NSHardware, NSPerformance, NSApplication:
		return true
	}
	return false
}

// ErrUnknownNamespace reports a request against an undefined namespace.
type ErrUnknownNamespace struct{ NS Namespace }

func (e *ErrUnknownNamespace) Error() string {
	return fmt.Sprintf("soma: unknown namespace %q", string(e.NS))
}
