package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/mercury"
)

func newTestService(t *testing.T, cfg ServiceConfig) (*Service, string) {
	t.Helper()
	svc := NewService(cfg)
	addr, err := svc.Listen(fmt.Sprintf("inproc://svc-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, addr
}

func TestNamespaceValidity(t *testing.T) {
	for _, ns := range Namespaces {
		if !ns.Valid() {
			t.Errorf("%s should be valid", ns)
		}
	}
	if Namespace("bogus").Valid() {
		t.Error("bogus namespace valid")
	}
	err := &ErrUnknownNamespace{NS: "bogus"}
	if err.Error() == "" {
		t.Error("empty error text")
	}
}

func TestServiceDirectPublishQuery(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{})
	n := conduit.NewNode()
	n.SetString("RP/task.000000/1.0000000", "launch_start")
	if err := svc.Publish(NSWorkflow, n, 100); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Query(NSWorkflow, "RP/task.000000")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.StringVal("1.0000000"); v != "launch_start" {
		t.Fatalf("query = %s", got.Format())
	}
	// Unknown path gives an empty tree, not an error.
	empty, err := svc.Query(NSWorkflow, "no/such/path")
	if err != nil || empty.NumLeaves() != 0 {
		t.Fatalf("missing path: %v, %d leaves", err, empty.NumLeaves())
	}
	// Unknown namespace errors.
	if err := svc.Publish("bogus", n, 0); err == nil {
		t.Fatal("bogus namespace accepted")
	}
	var unk *ErrUnknownNamespace
	if _, err := svc.Query("bogus", ""); !errors.As(err, &unk) {
		t.Fatalf("err = %v", err)
	}
}

func TestServiceMergesAcrossPublishes(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{})
	for i := 0; i < 5; i++ {
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("PROC/cn0001/%d.0/CPU Util", i), float64(i*10))
		svc.Publish(NSHardware, n, 0)
	}
	got, _ := svc.Query(NSHardware, "PROC/cn0001")
	if got.NumChildren() != 5 {
		t.Fatalf("merged timestamps = %d", got.NumChildren())
	}
}

func TestNamespaceIsolation(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{})
	n := conduit.NewNode()
	n.SetInt("x", 1)
	svc.Publish(NSWorkflow, n, 0)
	got, _ := svc.Query(NSHardware, "")
	if got.NumLeaves() != 0 {
		t.Fatal("data leaked across namespaces")
	}
	stats := svc.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats rows = %d", len(stats))
	}
	for _, st := range stats {
		want := int64(0)
		if st.Namespace == NSWorkflow {
			want = 1
		}
		if st.Publishes != want {
			t.Errorf("%s publishes = %d want %d", st.Namespace, st.Publishes, want)
		}
	}
}

func TestSharedInstanceMode(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{Shared: true, RanksPerNamespace: 2})
	n := conduit.NewNode()
	n.SetInt("wf", 1)
	svc.Publish(NSWorkflow, n, 0)
	// In shared mode, all namespaces see the same storage.
	got, _ := svc.Query(NSHardware, "")
	if !got.Has("wf") {
		t.Fatal("shared instance should expose data through any namespace")
	}
	stats := svc.Stats()
	if len(stats) != 1 || stats[0].Ranks != 8 {
		t.Fatalf("shared stats = %+v", stats)
	}
}

func TestHistoryRingBuffer(t *testing.T) {
	clock := des.NewEngine() // virtual clock pinned at 0 unless advanced
	svc := NewService(ServiceConfig{MaxRecords: 4, Clock: clock})
	for i := 0; i < 6; i++ {
		clock.RunUntil(float64(i + 1))
		n := conduit.NewNode()
		n.SetInt("seq", int64(i))
		svc.Publish(NSWorkflow, n, 0)
	}
	all, err := svc.History(NSWorkflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(all))
	}
	if v, _ := all[0].Int("seq"); v != 2 {
		t.Fatalf("oldest retained = %d want 2", v)
	}
	recent, _ := svc.History(NSWorkflow, 5)
	if len(recent) != 1 {
		t.Fatalf("recent = %d", len(recent))
	}
	if _, err := svc.History("bogus", 0); err == nil {
		t.Fatal("bogus namespace accepted")
	}
}

func TestServiceStoppedRejects(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{})
	svc.Close()
	if err := svc.Publish(NSWorkflow, conduit.NewNode(), 0); !errors.Is(err, ErrServiceStopped) {
		t.Fatalf("publish after close = %v", err)
	}
	if _, err := svc.Query(NSWorkflow, ""); !errors.Is(err, ErrServiceStopped) {
		t.Fatalf("query after close = %v", err)
	}
}

func TestClientPublishQueryInproc(t *testing.T) {
	_, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := conduit.NewNode()
	n.SetString("RP/task.000001/2.5", "exec_start")
	if err := c.Publish(NSWorkflow, n); err != nil {
		t.Fatal(err)
	}
	if c.Published() != 1 {
		t.Fatalf("published = %d", c.Published())
	}
	got, err := c.Query(NSWorkflow, "RP/task.000001")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.StringVal("2.5"); v != "exec_start" {
		t.Fatalf("round trip = %s", got.Format())
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[NSWorkflow].Publishes != 1 || stats[NSWorkflow].Leaves != 1 {
		t.Fatalf("stats = %+v", stats[NSWorkflow])
	}
	if stats[NSWorkflow].BytesIn == 0 {
		t.Fatal("RPC publish should account wire bytes")
	}
}

func TestClientOverTCP(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := conduit.NewNode()
	n.SetFloat("PROC/cnX/1.0/CPU Util", 55.5)
	if err := c.Publish(NSHardware, n); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(NSHardware, "PROC/cnX/1.0")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Float("CPU Util"); v != 55.5 {
		t.Fatalf("tcp round trip = %v", v)
	}
}

func TestClientUnknownNamespaceSurfacesError(t *testing.T) {
	_, addr := newTestService(t, ServiceConfig{})
	c, _ := Connect(addr, nil)
	defer c.Close()
	if err := c.Publish("bogus", conduit.NewNode()); err == nil {
		t.Fatal("bogus namespace accepted over RPC")
	}
}

func TestClientShutdownRPC(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, _ := Connect(addr, nil)
	defer c.Close()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !svc.Stopped() {
		t.Fatal("service not stopped")
	}
	if err := c.Publish(NSWorkflow, conduit.NewNode()); err == nil {
		t.Fatal("publish after shutdown accepted")
	}
}

func TestClientAsyncPublish(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableAsync(128)
	c.EnableAsync(128) // idempotent
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := conduit.NewNode()
			n.SetInt(fmt.Sprintf("k%d", i), int64(i))
			if err := c.Publish(NSApplication, n); err != nil {
				t.Errorf("async publish %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.Close() // flushes the queue
	got, err := svc.Query(NSApplication, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != 50 {
		t.Fatalf("leaves after flush = %d want 50", got.NumLeaves())
	}
}

func TestClientFlush(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Flush() // no-op in sync mode
	c.EnableAsync(128)
	for i := 0; i < 32; i++ {
		n := conduit.NewNode()
		n.SetInt(fmt.Sprintf("k%d", i), int64(i))
		if err := c.Publish(NSApplication, n); err != nil {
			t.Fatalf("async publish %d: %v", i, err)
		}
	}
	// Flush must make every earlier publish visible without closing.
	c.Flush()
	got, err := svc.Query(NSApplication, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != 32 {
		t.Fatalf("leaves after Flush = %d want 32", got.NumLeaves())
	}
	// The client keeps working after a flush.
	if err := c.Publish(NSApplication, conduit.NewNode()); err != nil {
		t.Fatal(err)
	}
}

func TestClientAsyncErrorsSurface(t *testing.T) {
	_, addr := newTestService(t, ServiceConfig{})
	c, _ := Connect(addr, nil)
	c.EnableAsync(8)
	if err := c.Publish("bogus", conduit.NewNode()); err != nil {
		t.Fatalf("async enqueue should succeed: %v", err)
	}
	err := <-c.Errs
	if err == nil {
		t.Fatal("expected async error")
	}
	c.Close()
}

func TestConnectFailures(t *testing.T) {
	if _, err := Connect("inproc://nobody", nil); err == nil {
		t.Fatal("connect to missing service succeeded")
	}
	if _, err := Connect("junk", mercury.NewEngine()); err == nil {
		t.Fatal("junk address accepted")
	}
}

func TestConcurrentPublishersAndQueriers(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Connect(addr, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				n := conduit.NewNode()
				n.SetInt(fmt.Sprintf("w%d/i%d", w, i), int64(i))
				if err := c.Publish(NSWorkflow, n); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Query(NSWorkflow, fmt.Sprintf("w%d", w)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, _ := svc.Query(NSWorkflow, "")
	if got.NumLeaves() != 160 {
		t.Fatalf("leaves = %d want 160", got.NumLeaves())
	}
}

func BenchmarkPublishModes(b *testing.B) {
	mk := func() *conduit.Node {
		n := conduit.NewNode()
		n.SetFloat("PROC/cn0001/123.456/CPU Util", 42)
		n.SetIntArray("PROC/cn0001/123.456/stat/cpu", []int64{1, 2, 3, 4, 5, 6, 7})
		return n
	}
	b.Run("sync", func(b *testing.B) {
		svc := NewService(ServiceConfig{})
		addr, _ := svc.Listen("inproc://bench-sync")
		defer svc.Close()
		c, _ := Connect(addr, nil)
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Publish(NSHardware, mk()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("async", func(b *testing.B) {
		svc := NewService(ServiceConfig{})
		addr, _ := svc.Listen("inproc://bench-async")
		defer svc.Close()
		c, _ := Connect(addr, nil)
		c.EnableAsync(4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				if err := c.Publish(NSHardware, mk()); err == nil {
					break
				}
			}
		}
		b.StopTimer()
		c.Close()
	})
	b.Run("local", func(b *testing.B) {
		svc := NewService(ServiceConfig{})
		defer svc.Close()
		lp := LocalPublisher{Service: svc}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := lp.Publish(NSHardware, mk()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkInstanceSplit(b *testing.B) {
	run := func(b *testing.B, shared bool) {
		svc := NewService(ServiceConfig{Shared: shared})
		defer svc.Close()
		lp := LocalPublisher{Service: svc}
		nss := []Namespace{NSWorkflow, NSHardware, NSPerformance, NSApplication}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				n := conduit.NewNode()
				n.SetInt("k", int64(i))
				if err := lp.Publish(nss[i%4], n); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	}
	b.Run("per-namespace", func(b *testing.B) { run(b, false) })
	b.Run("shared", func(b *testing.B) { run(b, true) })
}

func TestResetNamespace(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := conduit.NewNode()
	n.SetInt("keep/me", 1)
	if err := c.Publish(NSWorkflow, n); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(NSHardware, n); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(NSWorkflow); err != nil {
		t.Fatal(err)
	}
	got, _ := svc.Query(NSWorkflow, "")
	if got.NumLeaves() != 0 {
		t.Fatal("workflow namespace not cleared")
	}
	hist, _ := svc.History(NSWorkflow, 0)
	if len(hist) != 0 {
		t.Fatal("history not cleared")
	}
	// Other namespaces untouched; counters survive.
	hw, _ := svc.Query(NSHardware, "")
	if hw.NumLeaves() != 1 {
		t.Fatal("reset leaked into other namespace")
	}
	for _, st := range svc.Stats() {
		if st.Namespace == NSWorkflow && st.Publishes != 1 {
			t.Fatalf("publish counter reset: %+v", st)
		}
	}
	// Publishing after reset works.
	if err := c.Publish(NSWorkflow, n); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset("bogus"); err == nil {
		t.Fatal("bogus namespace reset accepted")
	}
	svc.Close()
	if err := svc.ResetNamespace(NSWorkflow); err == nil {
		t.Fatal("reset after close accepted")
	}
}

func TestFireAndForgetPublish(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableFireAndForget()
	for i := 0; i < 20; i++ {
		n := conduit.NewNode()
		n.SetInt(fmt.Sprintf("k%d", i), int64(i))
		if err := c.Publish(NSApplication, n); err != nil {
			t.Fatal(err)
		}
	}
	// One-way publishes carry no acknowledgment and handlers run
	// concurrently, so poll until they all land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Query(NSApplication, "")
		if err != nil {
			t.Fatal(err)
		}
		if got.NumLeaves() == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaves = %d want 20", got.NumLeaves())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Published() != 20 {
		t.Fatalf("published = %d", c.Published())
	}
}

func TestSelectRPC(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := conduit.NewNode()
	n.SetFloat("PROC/cn0001/10.0/CPU Util", 25)
	n.SetFloat("PROC/cn0002/10.0/CPU Util", 75)
	n.SetString("PROC/cn0001/10.0/tag", "x")
	if err := c.Publish(NSHardware, n); err != nil {
		t.Fatal(err)
	}
	matches, err := c.Select(NSHardware, "PROC/*/*/CPU Util")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	sum := 0.0
	for _, m := range matches {
		if !m.HasValue {
			t.Fatalf("numeric match missing value: %+v", m)
		}
		sum += m.Value
	}
	if sum != 100 {
		t.Fatalf("values sum = %v", sum)
	}
	// Non-numeric matches come back without values.
	matches, err = c.Select(NSHardware, "PROC/cn0001/10.0/tag")
	if err != nil || len(matches) != 1 || matches[0].HasValue {
		t.Fatalf("string match = %v, %v", matches, err)
	}
	// No matches → empty, no error.
	matches, err = c.Select(NSHardware, "nope/**")
	if err != nil || len(matches) != 0 {
		t.Fatalf("no-match = %v, %v", matches, err)
	}
	if _, err := c.Select("bogus", "x"); err == nil {
		t.Fatal("bogus namespace accepted")
	}
	// Direct service API agrees.
	paths, values, err := svc.Select(NSHardware, "PROC/*/*/CPU Util")
	if err != nil || len(paths) != 2 || len(values) != 2 {
		t.Fatalf("service select = %v, %v, %v", paths, values, err)
	}
	svc.Close()
	if _, _, err := svc.Select(NSHardware, "x"); err == nil {
		t.Fatal("select after close accepted")
	}
}

// Regression: Close immediately after EnableAsync must not deadlock even
// when the worker goroutine has not started yet (it must capture the
// channel value, not re-read the field Close nils out).
func TestAsyncCloseImmediatelyNoDeadlock(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	_ = svc
	for i := 0; i < 200; i++ {
		c, err := Connect(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.EnableAsync(8)
		done := make(chan struct{})
		go func() {
			c.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Close deadlocked")
		}
	}
}

// TestConcurrentPublishQueryReset interleaves publishers, queriers, and
// periodic namespace resets on ONE namespace — the snapshot-generation logic
// has to stay coherent while publishes race a reset (run under -race). The
// invariants checked: no error/deadlock/panic during the storm, and a fresh
// publish after quiescing is immediately visible through Query.
func TestConcurrentPublishQueryReset(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{RanksPerNamespace: 4})

	const (
		publishers = 4
		rounds     = 200
	)
	var pubWG, resetWG sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			host := fmt.Sprintf("cn%04d", p)
			for i := 0; i < rounds; i++ {
				n := conduit.NewNode()
				n.SetFloat(fmt.Sprintf("PROC/%s/%d.0/CPU Util", host, i), float64(i))
				if err := svc.Publish(NSHardware, n, 64); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					sub, err := svc.Query(NSHardware, "PROC/"+host)
					if err != nil {
						t.Error(err)
						return
					}
					// The subtree is a shared immutable snapshot; walking it
					// must be safe while publishes and resets race on.
					sub.NumLeaves()
				}
			}
		}(p)
	}

	resetWG.Add(1)
	go func() {
		defer resetWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.ResetNamespace(NSHardware); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	pubWG.Wait()
	close(stop)
	resetWG.Wait()

	// Post-quiesce: a fresh publish must be immediately visible (the snapshot
	// generation catches up past all the resets).
	final := conduit.NewNode()
	final.SetFloat("PROC/final/1.0/CPU Util", 42)
	if err := svc.Publish(NSHardware, final, 64); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Query(NSHardware, "PROC/final/1.0")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Float("CPU Util"); !ok || v != 42 {
		t.Fatalf("post-reset publish not visible: %s", got.Format())
	}
	for _, st := range svc.Stats() {
		if st.Namespace == NSHardware && st.Publishes == 0 {
			t.Fatal("publish counters lost")
		}
	}
}
