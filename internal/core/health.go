package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// soma.health: the degraded-mode observability RPC. Workflow observability
// must itself stay observable while degraded — operators need one call that
// answers "is the service up, is my client riding out an outage, and is any
// buffered data at risk". The service side reports liveness and
// load-shedding; the client stub folds in its local resilience state (the
// endpoint's circuit breaker and the publish spill buffer), which is
// meaningful precisely when the service half is unreachable.

// RPCHealth is the service liveness/degradation RPC.
const RPCHealth = "soma.health"

// HealthReport combines the service's self-reported health with the
// reporting client's local resilience state.
type HealthReport struct {
	// Service side; zero/empty when Status is "unreachable".
	Status      string  // "ok", "stopped" or "unreachable"
	UptimeSec   float64 // seconds since the service was constructed
	Publishes   int64   // total publishes ingested across instances
	CallsServed int64   // RPCs served by the engine
	ShedExpired int64   // calls shed because the caller's deadline had passed
	Err         string  // transport error when unreachable

	// Client side; always populated.
	Breaker  string // endpoint circuit-breaker state (see mercury.BreakerState)
	Degraded bool   // publishes currently buffered in the spill
	Spill    SpillStats

	// Cluster side; zero/empty unless the service joined a cluster
	// (Service.JoinCluster).
	ClusterSelf  string // this instance's address on the ring
	ClusterEpoch uint64 // current ring epoch
	ClusterAlive int    // live members including self
	ClusterPeers []ClusterPeerHealth
}

// ClusterPeerHealth is one peer's liveness as seen by the reporting instance.
type ClusterPeerHealth struct {
	ID     string
	Addr   string
	Alive  bool
	Misses int // consecutive failed pings
}

// handleHealth serves the service half of the report.
func (s *Service) handleHealth(_ context.Context, _ []byte) ([]byte, error) {
	resp := conduit.NewNode()
	status := "ok"
	if s.Stopped() {
		status = "stopped"
	}
	resp.SetString("status", status)
	resp.SetFloat("uptime_sec", time.Since(s.started).Seconds())
	var pubs int64
	for _, st := range s.Stats() {
		pubs += st.Publishes
	}
	resp.SetInt("publishes", pubs)
	resp.SetInt("calls_served", s.engine.Stats.CallsServed.Load())
	resp.SetInt("shed_expired", s.engine.Stats.ShedExpired.Load())
	if cl := s.cl.Load(); cl != nil {
		resp.SetString("cluster/self", cl.self.Addr)
		resp.SetInt("cluster/epoch", int64(cl.tracker.Ring().Epoch()))
		peers, alive := cl.tracker.Snapshot()
		resp.SetInt("cluster/alive", int64(alive))
		for i, p := range peers {
			base := fmt.Sprintf("cluster/peers/%03d", i)
			resp.SetString(base+"/id", p.ID)
			resp.SetString(base+"/addr", p.Addr)
			resp.SetBool(base+"/alive", p.Alive)
			resp.SetInt(base+"/misses", int64(p.Misses))
		}
	}
	return resp.EncodeBinary(), nil
}

// LocalHealth returns the client-side half of the report — breaker state and
// spill statistics — without touching the network. This is what remains
// observable while the service is down.
func (c *Client) LocalHealth() HealthReport {
	return HealthReport{
		Breaker:  c.ep.BreakerState(),
		Degraded: c.Degraded(),
		Spill:    c.Spill(),
	}
}

// Health queries soma.health and merges the client's local state. When the
// service cannot be reached the report still carries the local half, with
// Status "unreachable" and the transport error — callers (somactl health,
// somatop) render the degraded view instead of failing.
func (c *Client) Health() (HealthReport, error) {
	h := c.LocalHealth()
	out, err := c.ep.Call(context.Background(), RPCHealth, conduit.NewNode().EncodeBinary())
	if err != nil {
		h.Status = "unreachable"
		h.Err = err.Error()
		return h, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		h.Status = "unreachable"
		h.Err = err.Error()
		return h, err
	}
	h.Status, _ = resp.StringVal("status")
	h.UptimeSec, _ = resp.Float("uptime_sec")
	h.Publishes, _ = resp.Int("publishes")
	h.CallsServed, _ = resp.Int("calls_served")
	h.ShedExpired, _ = resp.Int("shed_expired")
	if cn, ok := resp.Get("cluster"); ok {
		h.ClusterSelf, _ = cn.StringVal("self")
		if v, ok := cn.Int("epoch"); ok {
			h.ClusterEpoch = uint64(v)
		}
		if v, ok := cn.Int("alive"); ok {
			h.ClusterAlive = int(v)
		}
		if pn, ok := cn.Get("peers"); ok {
			for _, name := range pn.ChildNames() {
				sub := pn.Child(name)
				p := ClusterPeerHealth{}
				p.ID, _ = sub.StringVal("id")
				p.Addr, _ = sub.StringVal("addr")
				p.Alive, _ = sub.Bool("alive")
				if v, ok := sub.Int("misses"); ok {
					p.Misses = int(v)
				}
				h.ClusterPeers = append(h.ClusterPeers, p)
			}
		}
	}
	return h, nil
}

// RenderHealth prints one health panel (somactl health, somatop).
func RenderHealth(w io.Writer, h HealthReport) {
	fmt.Fprintf(w, "health: %s", h.Status)
	if h.Status == "ok" || h.Status == "stopped" {
		fmt.Fprintf(w, "  uptime=%s publishes=%d calls=%d shed_expired=%d",
			(time.Duration(h.UptimeSec * float64(time.Second))).Round(time.Second),
			h.Publishes, h.CallsServed, h.ShedExpired)
	}
	fmt.Fprintln(w)
	if h.Err != "" {
		fmt.Fprintf(w, "  error: %s\n", h.Err)
	}
	fmt.Fprintf(w, "  client: breaker=%s", h.Breaker)
	if h.Spill.Enabled {
		mode := "normal"
		if h.Degraded {
			mode = "DEGRADED (buffering)"
		}
		fmt.Fprintf(w, " mode=%s spill=%d/%d redelivered=%d dropped=%d",
			mode, h.Spill.Buffered, h.Spill.Capacity, h.Spill.Redelivered, h.Spill.Dropped)
	}
	fmt.Fprintln(w)
	if h.ClusterSelf != "" {
		fmt.Fprintf(w, "  cluster: self=%s epoch=%x alive=%d/%d\n",
			h.ClusterSelf, h.ClusterEpoch, h.ClusterAlive, len(h.ClusterPeers)+1)
		for _, p := range h.ClusterPeers {
			state := "alive"
			if !p.Alive {
				state = "DEAD"
			}
			fmt.Fprintf(w, "    peer %s (%s): %s misses=%d\n", p.ID, p.Addr, state, p.Misses)
		}
	}
}
