package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
)

// AppReporter is the application-namespace instrumentation API (paper
// §2.3.2): an application self-reports its scientific rate-of-progress or
// figure of merit — "a molecular dynamics code might want to capture the
// atom-timesteps per second". Each report is stamped with the task identity
// and timestamp so heterogeneous tasks stay attributable, mirroring the
// TAU-plugin additions.
//
// Layout in the application namespace:
//
//	FOM/<task uid>/<metric>/<timestamp>: value
type AppReporter struct {
	pub     Publisher
	clock   des.Clock
	taskUID string

	mu    sync.Mutex
	count int64
}

// NewAppReporter binds a reporter to a task identity. pub is typically a
// *Client connected to the SOMA service; clock stamps reports.
func NewAppReporter(pub Publisher, clock des.Clock, taskUID string) (*AppReporter, error) {
	if pub == nil || clock == nil || taskUID == "" {
		return nil, fmt.Errorf("soma: AppReporter requires pub, clock and taskUID")
	}
	return &AppReporter{pub: pub, clock: clock, taskUID: taskUID}, nil
}

// Report publishes one figure-of-merit observation.
func (r *AppReporter) Report(metric string, value float64) error {
	if metric == "" {
		return fmt.Errorf("soma: empty metric name")
	}
	n := conduit.NewNode()
	n.SetFloat(fmt.Sprintf("FOM/%s/%s/%.7f", r.taskUID, metric, r.clock.Now()), value)
	if err := r.pub.Publish(NSApplication, n); err != nil {
		return err
	}
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
	return nil
}

// ReportMany publishes several metrics under one timestamp.
func (r *AppReporter) ReportMany(metrics map[string]float64) error {
	if len(metrics) == 0 {
		return nil
	}
	ts := r.clock.Now()
	n := conduit.NewNode()
	for metric, value := range metrics {
		if metric == "" {
			return fmt.Errorf("soma: empty metric name")
		}
		n.SetFloat(fmt.Sprintf("FOM/%s/%s/%.7f", r.taskUID, metric, ts), value)
	}
	if err := r.pub.Publish(NSApplication, n); err != nil {
		return err
	}
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
	return nil
}

// Reported returns how many publishes succeeded.
func (r *AppReporter) Reported() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// FOMPoint is one figure-of-merit observation.
type FOMPoint struct {
	Time  float64
	Value float64
}

// FOMSeries returns one task's observations of one metric in time order —
// the application-namespace analysis counterpart.
func (a Analysis) FOMSeries(taskUID, metric string) ([]FOMPoint, error) {
	root, err := a.Q.Query(NSApplication, "FOM/"+taskUID+"/"+metric)
	if err != nil {
		return nil, err
	}
	var out []FOMPoint
	for _, tsName := range root.ChildNames() {
		t, err := strconv.ParseFloat(tsName, 64)
		if err != nil {
			continue
		}
		if v, ok := root.Float(tsName); ok {
			out = append(out, FOMPoint{Time: t, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// FOMTasks lists the task UIDs that have reported figures of merit.
func (a Analysis) FOMTasks() ([]string, error) {
	root, err := a.Q.Query(NSApplication, "FOM")
	if err != nil {
		return nil, err
	}
	uids := root.ChildNames()
	sort.Strings(uids)
	return uids, nil
}

// FOMRate returns the mean rate of change of a metric (units per second)
// over the task's reported series — the "scientific rate-of-progress".
func (a Analysis) FOMRate(taskUID, metric string) (float64, error) {
	series, err := a.FOMSeries(taskUID, metric)
	if err != nil {
		return 0, err
	}
	if len(series) < 2 {
		return 0, fmt.Errorf("soma: need at least two observations of %s/%s", taskUID, metric)
	}
	first, last := series[0], series[len(series)-1]
	dt := last.Time - first.Time
	if dt <= 0 {
		return 0, fmt.Errorf("soma: zero time span for %s/%s", taskUID, metric)
	}
	return (last.Value - first.Value) / dt, nil
}
