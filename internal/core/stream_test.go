package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// fakeClock is a settable des.Clock for deterministic rollup timestamps.
type fakeClock struct {
	mu sync.Mutex
	t  float64
}

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) set(t float64) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Series unit tests.

func TestSplitSeriesPath(t *testing.T) {
	cases := []struct {
		path    string
		wantKey string
		wantT   float64
	}{
		{"PROC/cn01/123.500000/CPU Util", "PROC/cn01/CPU Util", 123.5},
		{"RP/summary/42.0000000/running", "RP/summary/running", 42},
		{"FOM/task.000001/rate/12.5", "FOM/task.000001/rate", 12.5},
		// No numeric segment: arrival time is used and the key is untouched.
		{"PROC/cn01/CPU Util", "PROC/cn01/CPU Util", 99},
		// Innermost (rightmost) numeric segment wins.
		{"A/1.5/B/2.5/C", "A/1.5/B/C", 2.5},
		// Timestamp at the very start or end of the path.
		{"3.25/load", "load", 3.25},
		{"load/3.25", "load", 3.25},
		// A path that is only a timestamp yields no key.
		{"7.5", "", 7.5},
		// Implausible timestamps stay in the key: negative or absurdly large
		// numeric segments must not reach the bucket rings (they used to
		// panic the publish path via negative / overflowed slot indexes).
		{"metrics/-5/foo", "metrics/-5/foo", 99},
		{"a/1e30/b", "a/1e30/b", 99},
		{"A/-5/B/2.5/C", "A/-5/B/C", 2.5},
	}
	for _, tc := range cases {
		key, ts := splitSeriesPath(tc.path, 99)
		if key != tc.wantKey || ts != tc.wantT {
			t.Errorf("splitSeriesPath(%q) = (%q, %g), want (%q, %g)",
				tc.path, key, ts, tc.wantKey, tc.wantT)
		}
	}
}

func TestMatchSeriesKey(t *testing.T) {
	cases := []struct {
		pattern, key string
		want         bool
	}{
		{"PROC/*/CPU Util", "PROC/cn01/CPU Util", true},
		{"PROC/*/CPU Util", "PROC/cn01/RAM Used", false},
		{"PROC/**", "PROC/cn01/CPU Util", true},
		{"**", "anything/at/all", true},
		{"PROC/*", "PROC/cn01/CPU Util", false}, // '*' is exactly one segment
		{"*/cn01/*", "PROC/cn01/CPU Util", true},
		{"PROC/cn01/CPU Util", "PROC/cn01/CPU Util", true},
		{"**/CPU Util", "PROC/cn01/CPU Util", true},
	}
	for _, tc := range cases {
		if got := matchSeriesKey(tc.pattern, tc.key); got != tc.want {
			t.Errorf("matchSeriesKey(%q, %q) = %v, want %v", tc.pattern, tc.key, got, tc.want)
		}
	}
}

func TestBucketRingDownsample(t *testing.T) {
	br := newBucketRing(1, 8)
	// Four samples in window [2,3), two in [3,4).
	for _, p := range []SeriesPoint{{2.1, 10}, {2.4, 30}, {2.6, 20}, {2.9, 40}, {3.2, 5}, {3.8, 15}} {
		br.add(p.Time, p.Value)
	}
	got := br.collect(0)
	if len(got) != 2 {
		t.Fatalf("buckets = %d, want 2", len(got))
	}
	b := got[0]
	if b.Start != 2 || b.Min != 10 || b.Max != 40 || b.Mean != 25 || b.Count != 4 {
		t.Fatalf("bucket[0] = %+v", b)
	}
	b = got[1]
	if b.Start != 3 || b.Min != 5 || b.Max != 15 || b.Mean != 10 || b.Count != 2 {
		t.Fatalf("bucket[1] = %+v", b)
	}
	// A much newer sample evicts the wrapped slot; the late sample for the
	// evicted window is dropped silently.
	br.add(2+8, 99) // same slot as window [2,3)
	br.add(2.5, 77) // late: its window is gone
	got = br.collect(0)
	for _, b := range got {
		if b.Start == 2 {
			t.Fatalf("evicted window still present: %+v", b)
		}
		if b.Start == 10 && (b.Count != 1 || b.Min != 99) {
			t.Fatalf("evicting sample mis-bucketed: %+v", b)
		}
	}
}

func TestBucketRingHostileTimestamps(t *testing.T) {
	// Defense in depth below the path parsing: samples with timestamps that
	// cannot be real (negative, beyond maxSeriesTime, NaN, ±Inf) are dropped
	// instead of indexing out of the ring.
	br := newBucketRing(1, 8)
	for _, bad := range []float64{-5, -0.001, 1e30, math.MaxFloat64, math.NaN(), math.Inf(1), math.Inf(-1)} {
		br.add(bad, 1)
	}
	if got := br.collect(0); len(got) != 0 {
		t.Fatalf("hostile timestamps created buckets: %+v", got)
	}
	br.add(2.5, 7)
	got := br.collect(0)
	if len(got) != 1 || got[0].Start != 2 {
		t.Fatalf("sane sample after hostile ones: %+v", got)
	}
}

func TestPublishHostileTimestampPathNoPanic(t *testing.T) {
	// Regression: a client publish with a leaf path like "metrics/-5/foo"
	// used to produce a negative slot index and panic the whole service
	// (mercury dispatch has no recover). The segment now stays in the key
	// and the sample is stamped with the arrival time.
	clk := &fakeClock{}
	clk.set(42)
	svc, _ := newTestService(t, ServiceConfig{Clock: clk})
	for _, path := range []string{"metrics/-5/foo", "metrics/1e30/foo", "metrics/-0.5"} {
		n := conduit.NewNode()
		n.SetFloat(path, 1)
		if err := svc.Publish(NSHardware, n, 0); err != nil {
			t.Fatalf("publish %q: %v", path, err)
		}
	}
	se, err := svc.QuerySeries(NSHardware, "metrics/-5/foo", LevelRaw, 0)
	if err != nil {
		t.Fatalf("hostile-path series not arrival-stamped: %v", err)
	}
	if len(se.Points) != 1 || se.Points[0].Time != 42 {
		t.Fatalf("points = %+v, want one sample at arrival time 42", se.Points)
	}
}

func TestSeriesStoreRampRollup(t *testing.T) {
	// Synthetic ramp: v = 10*t sampled every 0.25 s for 20 s. The 1 s bucket
	// for [k, k+1) must hold min=10k, max=10(k+0.75), mean=10(k+0.375).
	st := newSeriesStore(0)
	for i := 0; i < 80; i++ {
		ts := float64(i) * 0.25
		st.observe([]byte("PROC/cn01/CPU Util"), ts, 10*ts)
	}
	_, buckets, ok := st.query("PROC/cn01/CPU Util", Level1s, 0)
	if !ok || len(buckets) != 20 {
		t.Fatalf("1s buckets = %d (ok=%v), want 20", len(buckets), ok)
	}
	for k, b := range buckets {
		fk := float64(k)
		if b.Start != fk || b.Count != 4 {
			t.Fatalf("bucket %d = %+v", k, b)
		}
		if math.Abs(b.Min-10*fk) > 1e-9 || math.Abs(b.Max-10*(fk+0.75)) > 1e-9 ||
			math.Abs(b.Mean-10*(fk+0.375)) > 1e-9 {
			t.Fatalf("bucket %d min/max/mean = %g/%g/%g", k, b.Min, b.Max, b.Mean)
		}
	}
	// 10 s level: two buckets of 40 samples each.
	_, b10, ok := st.query("PROC/cn01/CPU Util", Level10s, 0)
	if !ok || len(b10) != 2 || b10[0].Count != 40 || b10[1].Count != 40 {
		t.Fatalf("10s buckets = %+v", b10)
	}
	if b10[1].Start != 10 || b10[1].Min != 100 || math.Abs(b10[1].Max-197.5) > 1e-9 {
		t.Fatalf("10s bucket[1] = %+v", b10[1])
	}
	// Raw level honours 'after'.
	pts, _, ok := st.query("PROC/cn01/CPU Util", LevelRaw, 19)
	if !ok || len(pts) != 4 || pts[0].Time != 19 {
		t.Fatalf("raw after=19: %d points (ok=%v)", len(pts), ok)
	}
	// window() aggregates 1 s buckets.
	agg, ok := st.window("PROC/cn01/CPU Util", 18, 20)
	if !ok || agg.Count != 8 || agg.Min != 180 {
		t.Fatalf("window = %+v (ok=%v)", agg, ok)
	}
	// Unknown key.
	if _, _, ok := st.query("nope", Level1s, 0); ok {
		t.Fatal("unknown key returned data")
	}
}

func TestSeriesStoreCapAndReset(t *testing.T) {
	st := newSeriesStore(3)
	for i := 0; i < 6; i++ {
		st.observe([]byte(fmt.Sprintf("k%d", i)), 1, 1)
	}
	if got := st.keysMatching(""); len(got) != 3 {
		t.Fatalf("series beyond cap created: %v", got)
	}
	st.reset()
	if got := st.keysMatching(""); len(got) != 0 {
		t.Fatalf("reset left series: %v", got)
	}
	// After reset the cap budget is available again.
	st.observe([]byte("fresh"), 1, 1)
	if got := st.keysMatching(""); len(got) != 1 {
		t.Fatalf("post-reset observe: %v", got)
	}
}

// ---------------------------------------------------------------------------
// Series over RPC.

// publishRamp publishes v = 10*t every 0.25 s of service time for secs
// seconds, with the timestamp embedded in the leaf path the way the paper's
// hardware layout does.
func publishRamp(t *testing.T, svc *Service, clk *fakeClock, secs int) {
	t.Helper()
	for i := 0; i < secs*4; i++ {
		ts := float64(i) * 0.25
		clk.set(ts)
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("PROC/cn01/%.6f/CPU Util", ts), 10*ts)
		if err := svc.Publish(NSHardware, n, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSeriesRPCDownsampledRamp(t *testing.T) {
	clk := &fakeClock{}
	svc, addr := newTestService(t, ServiceConfig{Clock: clk})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	publishRamp(t, svc, clk, 10)

	keys, err := client.SeriesKeys(NSHardware, "PROC/*/CPU Util")
	if err != nil || len(keys) != 1 || keys[0] != "PROC/cn01/CPU Util" {
		t.Fatalf("keys = %v, %v", keys, err)
	}
	se, err := client.Series(NSHardware, keys[0], Level1s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if se.Key != keys[0] || se.Level != Level1s || len(se.Bucket) != 10 {
		t.Fatalf("series = key %q level %q, %d buckets", se.Key, se.Level, len(se.Bucket))
	}
	for k, b := range se.Bucket {
		fk := float64(k)
		if b.Count != 4 || math.Abs(b.Min-10*fk) > 1e-9 ||
			math.Abs(b.Max-10*(fk+0.75)) > 1e-9 || math.Abs(b.Mean-10*(fk+0.375)) > 1e-9 {
			t.Fatalf("bucket %d = %+v", k, b)
		}
	}
	// Raw level round-trips points.
	raw, err := client.Series(NSHardware, keys[0], LevelRaw, 9)
	if err != nil || len(raw.Points) != 4 {
		t.Fatalf("raw = %d points, %v", len(raw.Points), err)
	}
	// Unknown key and bad level surface as errors.
	if _, err := client.Series(NSHardware, "no/such", Level1s, 0); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := client.Series(NSHardware, keys[0], "5m", 0); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestSeriesDisabled(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{DisableRollups: true})
	if _, err := svc.QuerySeries(NSHardware, "k", Level1s, 0); err == nil {
		t.Fatal("rollups disabled but query succeeded")
	}
	// Publishing still works without rollups.
	n := conduit.NewNode()
	n.SetFloat("PROC/cn01/1.0/CPU Util", 50)
	if err := svc.Publish(NSHardware, n, 0); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Alerts.

func TestAlertRuleValidate(t *testing.T) {
	bad := []AlertRule{
		{NS: NSHardware, Pattern: "*", Op: ">"},                  // no name
		{Name: "r", NS: "bogus", Pattern: "*", Op: ">"},          // bad ns
		{Name: "r", NS: NSHardware, Op: ">"},                     // no pattern
		{Name: "r", NS: NSHardware, Pattern: "*", Op: "between"}, // bad op
		{Name: "r", NS: NSAlerts, Pattern: "*", Op: ">"},         // reserved ns
	}
	for i, r := range bad {
		if err := r.validate(); err == nil {
			t.Errorf("rule %d validated: %+v", i, r)
		}
	}
	ok := AlertRule{Name: "r", NS: NSHardware, Pattern: "*", Op: "<"}
	if err := ok.validate(); err != nil {
		t.Fatal(err)
	}
	if ok.WindowSec != 1 || ok.Severity != DefaultAlertSeverity {
		t.Fatalf("defaults not applied: %+v", ok)
	}
}

func TestAlertFiringResolvedTransitions(t *testing.T) {
	clk := &fakeClock{}
	svc, addr := newTestService(t, ServiceConfig{Clock: clk})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rule := AlertRule{
		Name: "cpu-hot", NS: NSHardware, Pattern: "PROC/*/CPU Util",
		Op: ">", Threshold: 80, WindowSec: 2, Severity: "critical",
	}
	if err := client.SetAlert(rule); err != nil {
		t.Fatal(err)
	}

	// Follow the reserved alerts stream locally.
	ch, cancel, err := svc.SubscribeLocal(NSAlerts)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	publish := func(ts, v float64) {
		clk.set(ts)
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("PROC/cn01/%.6f/CPU Util", ts), v)
		if err := svc.Publish(NSHardware, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	nextTransition := func() Update {
		t.Helper()
		select {
		case m := <-ch:
			u, err := DecodeUpdate(m)
			if err != nil {
				t.Fatal(err)
			}
			return u
		case <-time.After(2 * time.Second):
			t.Fatal("no alert transition pushed")
		}
		return Update{}
	}

	// Healthy first sight: standing recorded, no transition published.
	publish(1, 50)
	rules, states, err := client.Alerts()
	if err != nil || len(rules) != 1 || len(states) != 1 {
		t.Fatalf("rules=%d states=%d err=%v", len(rules), len(states), err)
	}
	if states[0].Firing || states[0].Key != "PROC/cn01/CPU Util" {
		t.Fatalf("initial standing = %+v", states[0])
	}

	// Window mean crosses the threshold across windows → firing.
	publish(2, 95)
	publish(3, 97)
	u := nextTransition()
	if !u.Alert || u.NS != NSHardware {
		t.Fatalf("transition update = %+v", u)
	}
	if state, _ := u.Tree.StringVal("state"); state != "firing" {
		t.Fatalf("state = %q, want firing", state)
	}
	if sev, _ := u.Tree.StringVal("severity"); sev != "critical" {
		t.Fatalf("severity = %q", sev)
	}
	_, states, _ = client.Alerts()
	if len(states) != 1 || !states[0].Firing {
		t.Fatalf("standing after fire = %+v", states)
	}

	// Mean recedes in later windows → resolved.
	publish(6, 10)
	publish(7, 12)
	u = nextTransition()
	if state, _ := u.Tree.StringVal("state"); state != "resolved" {
		t.Fatalf("state = %q, want resolved", state)
	}
	_, states, _ = client.Alerts()
	if len(states) != 1 || states[0].Firing {
		t.Fatalf("standing after resolve = %+v", states)
	}

	// Rule removal clears standing; removing twice errors.
	if err := client.RemoveAlert("cpu-hot"); err != nil {
		t.Fatal(err)
	}
	rules, states, _ = client.Alerts()
	if len(rules) != 0 || len(states) != 0 {
		t.Fatalf("after remove: rules=%d states=%d", len(rules), len(states))
	}
	if err := client.RemoveAlert("cpu-hot"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestResetClearsAlertStandings(t *testing.T) {
	// Regression: instance.reset() cleared the rollup store but left the
	// alert engine's standings, so an alert firing at reset time stayed
	// firing forever (evaluate only revisits keys touched by new publishes).
	clk := &fakeClock{}
	svc, _ := newTestService(t, ServiceConfig{Clock: clk})
	rule := AlertRule{
		Name: "cpu-hot", NS: NSHardware, Pattern: "PROC/*/CPU Util",
		Op: ">", Threshold: 80, WindowSec: 2,
	}
	if err := svc.SetAlert(rule); err != nil {
		t.Fatal(err)
	}
	publish := func(ts, v float64) {
		clk.set(ts)
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("PROC/cn01/%.6f/CPU Util", ts), v)
		if err := svc.Publish(NSHardware, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	publish(1, 95)
	publish(2, 97)
	_, states := svc.Alerts()
	if len(states) != 1 || !states[0].Firing {
		t.Fatalf("standing before reset = %+v", states)
	}
	if err := svc.ResetNamespace(NSHardware); err != nil {
		t.Fatal(err)
	}
	rules, states := svc.Alerts()
	if len(rules) != 1 {
		t.Fatalf("reset removed the rule itself: %+v", rules)
	}
	if len(states) != 0 {
		t.Fatalf("standings survived reset: %+v", states)
	}
	// The rule still works against fresh post-reset data.
	publish(10, 95)
	publish(11, 97)
	_, states = svc.Alerts()
	if len(states) != 1 || !states[0].Firing {
		t.Fatalf("standing after reset + refire = %+v", states)
	}
}

// ---------------------------------------------------------------------------
// Subscriptions.

func TestTopicPrefixDelimited(t *testing.T) {
	// The bus matches subscriptions by raw string prefix, so per-namespace
	// topics must end in a delimiter: without it a namespace would also
	// receive any future namespace whose name it prefixes.
	p, err := topicPrefix(NSHardware)
	if err != nil {
		t.Fatal(err)
	}
	if p != "ns/hardware/" {
		t.Fatalf("topicPrefix(hardware) = %q, want trailing delimiter", p)
	}
	if strings.HasPrefix("ns/hardware2/", p) {
		t.Fatalf("prefix %q cross-matches a prefixed namespace's topic", p)
	}
	for ns, want := range map[Namespace]string{"": "ns/", NSAlerts: "alerts/"} {
		if got, err := topicPrefix(ns); err != nil || got != want {
			t.Fatalf("topicPrefix(%q) = %q, %v; want %q", ns, got, err, want)
		}
	}
}

func TestSubscribePushE2ETCP(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	sub, err := client.Subscribe(ctx, NSHardware, "")
	if err != nil {
		t.Fatal(err)
	}

	// The publish must arrive pushed — well under any polling interval.
	n := conduit.NewNode()
	n.SetFloat("PROC/cn01/1.000000/CPU Util", 42)
	if err := svc.Publish(NSHardware, n, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	select {
	case u := <-sub.C:
		if u.NS != NSHardware || u.Alert {
			t.Fatalf("update = %+v", u)
		}
		if v, ok := u.Tree.Float("PROC/cn01/1.000000/CPU Util"); !ok || v != 42 {
			t.Fatalf("tree = %s", u.Tree.Format())
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("update took %s — not push delivery", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pushed update")
	}

	// A publish to a different namespace is not delivered.
	other := conduit.NewNode()
	other.SetString("RP/task.000000/1.0", "launch")
	svc.Publish(NSWorkflow, other, 0)
	select {
	case u := <-sub.C:
		t.Fatalf("unsubscribed namespace delivered: %+v", u)
	case <-time.After(300 * time.Millisecond):
	}

	sub.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("channel open after Close")
	}
}

func TestSubscribePatternFilter(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sub, err := client.Subscribe(context.Background(), NSHardware, "PROC/*/CPU Util")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	miss := conduit.NewNode()
	miss.SetFloat("PROC/cn01/RAM Used", 1)
	svc.Publish(NSHardware, miss, 0)
	hit := conduit.NewNode()
	hit.SetFloat("PROC/cn02/CPU Util", 88)
	svc.Publish(NSHardware, hit, 0)

	select {
	case u := <-sub.C:
		if _, ok := u.Tree.Float("PROC/cn02/CPU Util"); !ok {
			t.Fatalf("filtered update leaked: %s", u.Tree.Format())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("matching update not delivered")
	}
	select {
	case u := <-sub.C:
		t.Fatalf("non-matching update delivered: %s", u.Tree.Format())
	case <-time.After(200 * time.Millisecond):
	}
}

func TestSubscribeAllNamespaces(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sub, err := client.Subscribe(context.Background(), "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for _, ns := range []Namespace{NSWorkflow, NSHardware} {
		n := conduit.NewNode()
		n.SetFloat("x/1.0", 1)
		svc.Publish(ns, n, 0)
	}
	seen := map[Namespace]bool{}
	for len(seen) < 2 {
		select {
		case u := <-sub.C:
			seen[u.NS] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("saw %v, want both namespaces", seen)
		}
	}
}

func TestSubscribeUnknownNamespace(t *testing.T) {
	_, addr := newTestService(t, ServiceConfig{})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Subscribe(context.Background(), "bogus", ""); err == nil {
		t.Fatal("bogus namespace subscription accepted")
	}
}

func TestWatchStopsOnCallbackError(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	stop := errors.New("enough")
	done := make(chan error, 1)
	go func() {
		done <- client.Watch(context.Background(), NSHardware, "", func(Update) error {
			return stop
		})
	}()
	n := conduit.NewNode()
	n.SetFloat("PROC/cn01/1.0/CPU Util", 1)
	// Publish until the watcher is subscribed and has seen one update.
	for {
		svc.Publish(NSHardware, n, 0)
		select {
		case err := <-done:
			if !errors.Is(err, stop) {
				t.Fatalf("watch = %v", err)
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestSubscribeResubscribesAfterRestart(t *testing.T) {
	// The service dies and comes back at the same address; the subscription
	// redials and keeps delivering without the caller doing anything.
	const addr = "inproc://svc-restart"
	svc1 := NewService(ServiceConfig{})
	if _, err := svc1.Listen(addr); err != nil {
		t.Fatal(err)
	}
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sub, err := client.Subscribe(context.Background(), NSHardware, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	n := conduit.NewNode()
	n.SetFloat("PROC/cn01/1.0/CPU Util", 1)
	svc1.Publish(NSHardware, n, 0)
	select {
	case <-sub.C:
	case <-time.After(5 * time.Second):
		t.Fatal("no update before restart")
	}

	svc1.Close()
	svc2 := NewService(ServiceConfig{})
	if _, err := svc2.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc2.Close() })

	// Publish until the resubscribe lands and an update flows again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := conduit.NewNode()
		m.SetFloat("PROC/cn01/2.0/CPU Util", 2)
		svc2.Publish(NSHardware, m, 0)
		select {
		case u, ok := <-sub.C:
			if !ok {
				t.Fatal("subscription channel closed across restart")
			}
			if v, ok := u.Tree.Float("PROC/cn01/2.0/CPU Util"); ok && v == 2 {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no update after service restart")
		}
	}
}

// ---------------------------------------------------------------------------
// Flush error propagation (regression: a drained queue must not swallow
// failures of the publishes it drained).

func TestFlushReportsQueuedPublishFailure(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableAsync(16)

	// A healthy queued publish flushes clean.
	n := conduit.NewNode()
	n.SetFloat("PROC/cn01/1.0/CPU Util", 1)
	if err := client.Publish(NSHardware, n); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatalf("flush of healthy publish = %v", err)
	}

	// Stop the service underneath queued publishes: Flush must surface the
	// failure instead of draining silently.
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !svc.Stopped() {
		t.Fatal("service not stopped")
	}
	m := conduit.NewNode()
	m.SetFloat("PROC/cn01/2.0/CPU Util", 2)
	if err := client.Publish(NSHardware, m); err != nil {
		t.Fatal(err) // enqueue succeeds; the failure is async
	}
	if err := client.Flush(); err == nil {
		t.Fatal("flush swallowed a queued publish failure")
	}
	// The error was consumed: a later flush with nothing queued is clean.
	if err := client.Flush(); err != nil {
		t.Fatalf("second flush = %v", err)
	}
}
