package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/cluster"
	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
)

// ClusterClient is the shard-routing client stub for a multi-instance SOMA
// fleet. It bootstraps the hash ring from one seed instance's soma.ring,
// keeps the ring fresh in the background (cached by epoch — refresh is a
// tiny frame unless membership actually changed), and routes every publish
// directly to the instance that owns its shard key: no proxy hop, one
// pipelined connection (with its own batch coalescer) per peer.
//
// Reads fan out client-side: Query polls every member's ".local" variant —
// each per-member Client keeps its own delta-query generation memo, so an
// unchanged shard costs a ~30-byte frame — and merges the shards into one
// tree. Routing is an optimization, not a correctness requirement: if the
// client's ring lags the fleet's (a member just died or joined), a publish
// sent to the wrong instance is forwarded server-side, and scattered reads
// find data wherever it landed.
type ClusterClient struct {
	engine *mercury.Engine
	cfg    ClusterClientConfig
	seed   string

	mu      sync.Mutex
	ring    *cluster.Ring
	vnodes  int
	clients map[string]*Client // per member address, lazily connected
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// ClusterClientConfig tunes a ClusterClient; the zero value works.
type ClusterClientConfig struct {
	// Policy is the mercury call policy for every per-member connection;
	// nil keeps the default.
	Policy *mercury.CallPolicy
	// Batch, when non-nil, enables the publish coalescer on every
	// per-member connection — the per-peer pipelined batching mode.
	Batch *BatchConfig
	// RefreshInterval is the background ring refresh cadence; 0 = 500ms,
	// negative disables the refresher (tests drive RefreshRing directly).
	RefreshInterval time.Duration
}

// ConnectCluster bootstraps a shard-routing client from one seed instance.
// The seed answers soma.ring with the fleet's membership; an unclustered
// seed (epoch 0) — or one predating the RPC — degrades to a cluster of one,
// so ConnectCluster works against any service.
func ConnectCluster(seed string, engine *mercury.Engine, cfg ClusterClientConfig) (*ClusterClient, error) {
	c := &ClusterClient{
		engine:  engine,
		cfg:     cfg,
		seed:    seed,
		vnodes:  cluster.DefaultVnodes,
		clients: map[string]*Client{},
		stop:    make(chan struct{}),
	}
	c.ring = cluster.NewRing([]cluster.Member{{Addr: seed}}, c.vnodes)
	// Bootstrap must reach the seed — a routing client with no fleet view
	// would silently behave as a single-instance client.
	if _, err := c.client(seed); err != nil {
		return nil, err
	}
	if err := c.RefreshRing(); err != nil {
		return nil, fmt.Errorf("soma: cluster bootstrap via %s: %w", seed, err)
	}
	interval := cfg.RefreshInterval
	if interval == 0 {
		interval = 500 * time.Millisecond
	}
	if interval > 0 {
		c.wg.Add(1)
		go c.refreshLoop(interval)
	}
	return c, nil
}

// Ring returns the cached ring (current epoch and members).
func (c *ClusterClient) Ring() *cluster.Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// client returns (connecting on first use) the per-member client for addr.
func (c *ClusterClient) client(addr string) (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientLocked(addr)
}

func (c *ClusterClient) clientLocked(addr string) (*Client, error) {
	if c.closed {
		return nil, errors.New("soma: cluster client closed")
	}
	if cl := c.clients[addr]; cl != nil {
		return cl, nil
	}
	cl, err := ConnectPolicy(addr, c.engine, c.cfg.Policy)
	if err != nil {
		return nil, err
	}
	cl.localRPCs = true
	if c.cfg.Batch != nil {
		cl.EnableBatch(*c.cfg.Batch)
	}
	c.clients[addr] = cl
	return cl, nil
}

func (c *ClusterClient) refreshLoop(interval time.Duration) {
	defer c.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		// Refresh failures are tolerated: the cached ring keeps routing, and
		// server-side forwarding corrects any stale placements meanwhile.
		_ = c.RefreshRing()
	}
}

// RefreshRing re-fetches the membership view and swaps the cached ring when
// the epoch moved. Members are tried in ring order, the seed as fallback —
// any one live instance can answer for the fleet.
func (c *ClusterClient) RefreshRing() error {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	addrs := make([]string, 0, ring.Len()+1)
	for _, m := range ring.Members() {
		addrs = append(addrs, m.Addr)
	}
	if len(addrs) == 0 || (len(addrs) > 0 && addrs[0] != c.seed && !containsAddr(addrs, c.seed)) {
		addrs = append(addrs, c.seed)
	}
	var lastErr error
	for _, addr := range addrs {
		cl, err := c.client(addr)
		if err != nil {
			lastErr = err
			continue
		}
		out, err := cl.ep.Call(context.Background(), RPCRing, okFrame)
		if err != nil {
			if errors.Is(err, mercury.ErrUnknownRPC) {
				// Pre-cluster server: permanently a cluster of one.
				return nil
			}
			lastErr = err
			continue
		}
		resp, err := conduit.DecodeBinary(out)
		if err != nil {
			lastErr = err
			continue
		}
		c.applyRingFrame(addr, resp)
		return nil
	}
	return lastErr
}

func containsAddr(addrs []string, addr string) bool {
	for _, a := range addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// applyRingFrame folds one soma.ring response into the cached ring. Epoch 0
// means the answering instance is not clustered: it alone is the fleet.
func (c *ClusterClient) applyRingFrame(from string, resp *conduit.Node) {
	epoch, _ := resp.Int("epoch")
	members := decodeRingMembers(resp)
	if epoch == 0 || len(members) == 0 {
		members = []cluster.Member{{Addr: from}}
	}
	if v, ok := resp.Int("vnodes"); ok && v > 0 {
		c.vnodes = int(v)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	next := cluster.NewRing(members, c.vnodes)
	if next.Epoch() != c.ring.Epoch() {
		c.ring = next
	}
}

// ownerClient resolves the member that owns (ns, leafPath) on the cached
// ring and returns its connection.
func (c *ClusterClient) ownerClient(ns Namespace, leafPath string) (*Client, error) {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	owner, ok := ring.Owner(cluster.ShardKey(string(ns), leafPath))
	if !ok {
		return c.client(c.seed)
	}
	return c.client(owner.Addr)
}

// Publish routes a tree to the instance owning its first leaf's shard key.
// Multi-leaf trees route as a unit, exactly like server-side placement.
func (c *ClusterClient) Publish(ns Namespace, n *conduit.Node) error {
	cl, err := c.ownerClient(ns, firstLeafPath(n))
	if err != nil {
		return err
	}
	return cl.Publish(ns, n)
}

// PublishEncoded routes a pre-encoded tree by leafPath — the caller names
// the routing key so the frame never has to be decoded client-side, keeping
// the cached-payload fast path (see Client.PublishEncoded) decode-free.
func (c *ClusterClient) PublishEncoded(ns Namespace, leafPath string, enc []byte) error {
	cl, err := c.ownerClient(ns, leafPath)
	if err != nil {
		return err
	}
	return cl.PublishEncoded(ns, enc)
}

// Query fetches the union of (ns, path) across every fleet member, polling
// each member's single-shard RPC so per-member delta memos absorb unchanged
// shards. Any member failure fails the query — a silently partial union
// would be indistinguishable from missing data.
func (c *ClusterClient) Query(ns Namespace, path string) (*conduit.Node, error) {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	merged := conduit.NewNode()
	for _, m := range ring.Members() {
		cl, err := c.client(m.Addr)
		if err != nil {
			return nil, fmt.Errorf("soma: cluster member %s: %w", m.Addr, err)
		}
		tree, err := cl.Query(ns, path)
		if err != nil {
			return nil, fmt.Errorf("soma: cluster member %s: %w", m.Addr, err)
		}
		merged.Merge(tree)
	}
	return merged, nil
}

// Flush drains every member connection's async queue and batch coalescer,
// returning the first error.
func (c *ClusterClient) Flush() error {
	var first error
	for _, cl := range c.snapshotClients() {
		if err := cl.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Published sums acknowledged publishes across every member connection.
func (c *ClusterClient) Published() int64 {
	var total int64
	for _, cl := range c.snapshotClients() {
		total += cl.Published()
	}
	return total
}

func (c *ClusterClient) snapshotClients() []*Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Client, 0, len(c.clients))
	for _, cl := range c.clients {
		out = append(out, cl)
	}
	return out
}

// Close stops the ring refresher and closes every member connection.
func (c *ClusterClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	clients := make([]*Client, 0, len(c.clients))
	for _, cl := range c.clients {
		clients = append(clients, cl)
	}
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	var first error
	for _, cl := range clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
