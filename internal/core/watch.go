package core

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
)

// Watcher delivers newly published trees of one namespace to a consumer —
// the integration point the paper envisions for downstream analysis
// frameworks ("a consumer of the performance metrics in order to improve
// online decision-making", §5). It polls the service's publish history with
// a monotone cursor, so consumers see every record exactly once, in order,
// without the service pushing.
type Watcher struct {
	svc *Service
	ns  Namespace
	rt  des.Runtime

	mu       sync.Mutex
	after    float64
	consumed int64
	stop     func()
	running  bool
}

// NewWatcher creates a watcher over one namespace of a local service.
func NewWatcher(svc *Service, ns Namespace, rt des.Runtime) (*Watcher, error) {
	if svc == nil || rt == nil {
		return nil, fmt.Errorf("soma: Watcher requires a service and runtime")
	}
	if !ns.Valid() {
		return nil, &ErrUnknownNamespace{NS: ns}
	}
	return &Watcher{svc: svc, ns: ns, rt: rt}, nil
}

// Poll returns every record published since the previous Poll (or since the
// watcher was created), oldest first, and advances the cursor.
func (w *Watcher) Poll() ([]*conduit.Node, error) {
	w.mu.Lock()
	after := w.after
	w.mu.Unlock()
	records, times, err := w.svc.historyWithTimes(w.ns, after)
	if err != nil {
		return nil, err
	}
	if len(records) > 0 {
		w.mu.Lock()
		w.after = times[len(times)-1]
		w.consumed += int64(len(records))
		w.mu.Unlock()
	}
	return records, nil
}

// Consumed returns how many records this watcher has delivered.
func (w *Watcher) Consumed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.consumed
}

// Run polls every intervalSec and hands each new record to fn, until the
// returned stop function is called. fn runs on the runtime's event path.
func (w *Watcher) Run(intervalSec float64, fn func(*conduit.Node)) (stop func(), err error) {
	if intervalSec <= 0 || fn == nil {
		return nil, fmt.Errorf("soma: Watcher.Run requires a positive interval and fn")
	}
	w.mu.Lock()
	if w.running {
		w.mu.Unlock()
		return nil, fmt.Errorf("soma: watcher already running")
	}
	w.running = true
	w.mu.Unlock()
	inner := des.EveryRT(w.rt, intervalSec, func() bool {
		records, err := w.Poll()
		if err != nil {
			return false
		}
		for _, rec := range records {
			fn(rec)
		}
		return true
	})
	return func() {
		inner()
		w.mu.Lock()
		w.running = false
		w.mu.Unlock()
	}, nil
}

// DeltaPoller drives a repeat query over a DeltaQuerier: every tick it polls
// (ns, path) and hands the merged tree to the consumer only when the
// namespace actually changed. It is the RPC-polling analogue of Watcher for
// remote consumers — between changes each tick costs a ~30-byte delta frame
// instead of the full tree, which is what collapses steady-state poll
// traffic at high fan-in.
type DeltaPoller struct {
	q    DeltaQuerier
	ns   Namespace
	path string
	rt   des.Runtime

	mu      sync.Mutex
	ticks   int64
	updates int64
	running bool
}

// NewDeltaPoller creates a poller over one (namespace, path) of a delta-
// capable querier (*Client or LocalDeltaQuerier).
func NewDeltaPoller(q DeltaQuerier, ns Namespace, path string, rt des.Runtime) (*DeltaPoller, error) {
	if q == nil || rt == nil {
		return nil, fmt.Errorf("soma: DeltaPoller requires a querier and runtime")
	}
	if !ns.Valid() {
		return nil, &ErrUnknownNamespace{NS: ns}
	}
	return &DeltaPoller{q: q, ns: ns, path: path, rt: rt}, nil
}

// Ticks returns how many polls ran and how many delivered a changed tree.
func (p *DeltaPoller) Ticks() (ticks, updates int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ticks, p.updates
}

// Run polls every intervalSec and hands the merged tree to fn whenever it
// changed, until the returned stop function is called. The tree is a shared
// read-only snapshot; fn must not modify it. Poll errors end the loop (the
// querier's policy owns retries).
func (p *DeltaPoller) Run(intervalSec float64, fn func(*conduit.Node)) (stop func(), err error) {
	if intervalSec <= 0 || fn == nil {
		return nil, fmt.Errorf("soma: DeltaPoller.Run requires a positive interval and fn")
	}
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return nil, fmt.Errorf("soma: delta poller already running")
	}
	p.running = true
	p.mu.Unlock()
	inner := des.EveryRT(p.rt, intervalSec, func() bool {
		tree, changed, err := p.q.QueryDelta(p.ns, p.path)
		if err != nil {
			return false
		}
		p.mu.Lock()
		p.ticks++
		if changed {
			p.updates++
		}
		p.mu.Unlock()
		if changed {
			fn(tree)
		}
		return true
	})
	return func() {
		inner()
		p.mu.Lock()
		p.running = false
		p.mu.Unlock()
	}, nil
}

// historyWithTimes is the service-internal form of History that also
// returns each record's ingest timestamp, for cursor advancement. Unlike
// History it still answers on a stopped service, so watchers can drain the
// tail after shutdown.
func (s *Service) historyWithTimes(ns Namespace, after float64) ([]*conduit.Node, []float64, error) {
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, nil, err
	}
	nodes, times := in.historySince(after)
	return nodes, times, nil
}
