package core

import (
	"fmt"
	"strconv"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Conduit encoding of a telemetry snapshot — the soma.telemetry RPC payload.
// The service eats its own data model here too: the snapshot is an ordinary
// Conduit tree, so any SOMA client (somatop, somactl, analyses) can consume
// it with the tools it already has.
//
//	counters/<name>                      int
//	gauges/<name>                        float
//	hist/<name>/{count,sum_ns,max_ns,p50_ns,p95_ns,p99_ns}
//	spans/NNNNNN/{trace,span,parent,name,start_ns,dur_ns}
//
// Span/trace ids are hex strings: they are full-range uint64s, which the
// integer leaf type (int64) cannot carry.

// EncodeTelemetry converts a registry snapshot into a Conduit tree.
func EncodeTelemetry(snap *telemetry.Snapshot) *conduit.Node {
	n := conduit.NewNode()
	for name, v := range snap.Counters {
		n.SetInt("counters/"+name, v)
	}
	for name, v := range snap.Gauges {
		n.SetFloat("gauges/"+name, v)
	}
	for name, h := range snap.Histograms {
		base := "hist/" + name
		n.SetInt(base+"/count", int64(h.Count))
		n.SetInt(base+"/sum_ns", int64(h.Sum))
		n.SetInt(base+"/max_ns", int64(h.Max))
		n.SetInt(base+"/p50_ns", int64(h.P50))
		n.SetInt(base+"/p95_ns", int64(h.P95))
		n.SetInt(base+"/p99_ns", int64(h.P99))
	}
	for i, sp := range snap.Spans {
		base := fmt.Sprintf("spans/%06d", i)
		n.SetString(base+"/trace", strconv.FormatUint(sp.TraceID, 16))
		n.SetString(base+"/span", strconv.FormatUint(sp.SpanID, 16))
		if sp.Parent != 0 {
			n.SetString(base+"/parent", strconv.FormatUint(sp.Parent, 16))
		}
		n.SetString(base+"/name", sp.Name)
		n.SetInt(base+"/start_ns", sp.Start.UnixNano())
		n.SetInt(base+"/dur_ns", int64(sp.Dur))
	}
	return n
}

// DecodeTelemetry reconstructs a snapshot from its Conduit encoding.
// Unknown or malformed entries are skipped — the decoder tolerates snapshots
// from newer services.
func DecodeTelemetry(n *conduit.Node) *telemetry.Snapshot {
	snap := &telemetry.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]telemetry.HistogramSnapshot{},
	}
	if sub, ok := n.Get("counters"); ok {
		for _, name := range sub.ChildNames() {
			if v, ok := sub.Int(name); ok {
				snap.Counters[name] = v
			}
		}
	}
	if sub, ok := n.Get("gauges"); ok {
		for _, name := range sub.ChildNames() {
			if v, ok := sub.Float(name); ok {
				snap.Gauges[name] = v
			}
		}
	}
	if sub, ok := n.Get("hist"); ok {
		for _, name := range sub.ChildNames() {
			h := sub.Child(name)
			var hs telemetry.HistogramSnapshot
			if v, ok := h.Int("count"); ok {
				hs.Count = uint64(v)
			}
			if v, ok := h.Int("sum_ns"); ok {
				hs.Sum = time.Duration(v)
			}
			if v, ok := h.Int("max_ns"); ok {
				hs.Max = time.Duration(v)
			}
			if v, ok := h.Int("p50_ns"); ok {
				hs.P50 = time.Duration(v)
			}
			if v, ok := h.Int("p95_ns"); ok {
				hs.P95 = time.Duration(v)
			}
			if v, ok := h.Int("p99_ns"); ok {
				hs.P99 = time.Duration(v)
			}
			snap.Histograms[name] = hs
		}
	}
	if sub, ok := n.Get("spans"); ok {
		for _, key := range sub.ChildNames() {
			e := sub.Child(key)
			var sp telemetry.SpanSnapshot
			if s, ok := e.StringVal("trace"); ok {
				sp.TraceID, _ = strconv.ParseUint(s, 16, 64)
			}
			if s, ok := e.StringVal("span"); ok {
				sp.SpanID, _ = strconv.ParseUint(s, 16, 64)
			}
			if s, ok := e.StringVal("parent"); ok {
				sp.Parent, _ = strconv.ParseUint(s, 16, 64)
			}
			sp.Name, _ = e.StringVal("name")
			if v, ok := e.Int("start_ns"); ok {
				sp.Start = time.Unix(0, v)
			}
			if v, ok := e.Int("dur_ns"); ok {
				sp.Dur = time.Duration(v)
			}
			if sp.TraceID != 0 {
				snap.Spans = append(snap.Spans, sp)
			}
		}
	}
	return snap
}
