package core

import (
	"fmt"
	"strconv"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Conduit encoding of a telemetry snapshot — the soma.telemetry RPC payload.
// The service eats its own data model here too: the snapshot is an ordinary
// Conduit tree, so any SOMA client (somatop, somactl, analyses) can consume
// it with the tools it already has.
//
//	counters/<name>                      int
//	gauges/<name>                        float
//	hist/<name>/{count,sum_ns,max_ns,p50_ns,p95_ns,p99_ns}
//	hist/<name>/exemplars/NNN/{le_ns,trace}
//	spans/NNNNNN/{trace,span,parent,name,start_ns,dur_ns,count,err}
//
// Span/trace ids are hex strings: they are full-range uint64s, which the
// integer leaf type (int64) cannot carry.

// EncodeTelemetry converts a registry snapshot into a Conduit tree.
func EncodeTelemetry(snap *telemetry.Snapshot) *conduit.Node {
	n := conduit.NewNode()
	for name, v := range snap.Counters {
		n.SetInt("counters/"+name, v)
	}
	for name, v := range snap.Gauges {
		n.SetFloat("gauges/"+name, v)
	}
	for name, h := range snap.Histograms {
		base := "hist/" + name
		n.SetInt(base+"/count", int64(h.Count))
		n.SetInt(base+"/sum_ns", int64(h.Sum))
		n.SetInt(base+"/max_ns", int64(h.Max))
		n.SetInt(base+"/p50_ns", int64(h.P50))
		n.SetInt(base+"/p95_ns", int64(h.P95))
		n.SetInt(base+"/p99_ns", int64(h.P99))
		// Exemplars link each populated latency bucket to the last trace that
		// landed in it — the jumping-off point into soma.trace.get.
		for i, ex := range h.Exemplars {
			eb := fmt.Sprintf("%s/exemplars/%03d", base, i)
			n.SetInt(eb+"/le_ns", int64(ex.Ceil))
			n.SetString(eb+"/trace", strconv.FormatUint(ex.TraceID, 16))
		}
	}
	for i, sp := range snap.Spans {
		encodeSpan(n, fmt.Sprintf("spans/%06d", i), sp)
	}
	return n
}

// DecodeTelemetry reconstructs a snapshot from its Conduit encoding.
// Unknown or malformed entries are skipped — the decoder tolerates snapshots
// from newer services.
func DecodeTelemetry(n *conduit.Node) *telemetry.Snapshot {
	snap := &telemetry.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]telemetry.HistogramSnapshot{},
	}
	if sub, ok := n.Get("counters"); ok {
		for _, name := range sub.ChildNames() {
			if v, ok := sub.Int(name); ok {
				snap.Counters[name] = v
			}
		}
	}
	if sub, ok := n.Get("gauges"); ok {
		for _, name := range sub.ChildNames() {
			if v, ok := sub.Float(name); ok {
				snap.Gauges[name] = v
			}
		}
	}
	if sub, ok := n.Get("hist"); ok {
		for _, name := range sub.ChildNames() {
			h := sub.Child(name)
			var hs telemetry.HistogramSnapshot
			if v, ok := h.Int("count"); ok {
				hs.Count = uint64(v)
			}
			if v, ok := h.Int("sum_ns"); ok {
				hs.Sum = time.Duration(v)
			}
			if v, ok := h.Int("max_ns"); ok {
				hs.Max = time.Duration(v)
			}
			if v, ok := h.Int("p50_ns"); ok {
				hs.P50 = time.Duration(v)
			}
			if v, ok := h.Int("p95_ns"); ok {
				hs.P95 = time.Duration(v)
			}
			if v, ok := h.Int("p99_ns"); ok {
				hs.P99 = time.Duration(v)
			}
			if exs, ok := h.Get("exemplars"); ok {
				for _, ek := range exs.ChildNames() {
					e := exs.Child(ek)
					var ex telemetry.BucketExemplar
					if v, ok := e.Int("le_ns"); ok {
						ex.Ceil = time.Duration(v)
					}
					if s, ok := e.StringVal("trace"); ok {
						ex.TraceID, _ = strconv.ParseUint(s, 16, 64)
					}
					if ex.TraceID != 0 {
						hs.Exemplars = append(hs.Exemplars, ex)
					}
				}
			}
			snap.Histograms[name] = hs
		}
	}
	if sub, ok := n.Get("spans"); ok {
		for _, key := range sub.ChildNames() {
			if sp := decodeSpan(sub.Child(key)); sp.TraceID != 0 {
				snap.Spans = append(snap.Spans, sp)
			}
		}
	}
	return snap
}
