package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
)

// simulatedWorkflow runs a small pilot workload under DES with an RP
// monitor and per-node hardware monitors attached, returning the engine,
// agent and service for assertions.
func simulatedWorkflow(t *testing.T, nodes, tasks int, interval float64) (*des.Engine, *pilot.Agent, *Service) {
	t.Helper()
	eng := des.NewEngine()
	cluster := platform.NewCluster(nodes, platform.Summit())
	agent, err := pilot.NewAgent(pilot.AgentConfig{Runtime: eng, Nodes: cluster.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceConfig{Clock: eng})
	addr, err := svc.Listen(fmt.Sprintf("inproc://wf-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}

	rpm, err := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client, IntervalSec: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopRP := rpm.Start()

	var stopHW []func()
	for i, node := range cluster.Nodes {
		src := procfs.NewSyntheticSource(node, eng, uint64(i+1))
		hwm, err := NewHWMonitor(HWMonitorConfig{
			Runtime: eng, Source: procfs.NewSampler(src), Pub: client, IntervalSec: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		stopHW = append(stopHW, hwm.Start())
	}

	agent.Start()
	for i := 0; i < tasks; i++ {
		_, err := agent.Submit(pilot.TaskDescription{
			Ranks:    21,
			Duration: func(pilot.ExecContext) float64 { return 120 },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	agent.OnQuiescent(func() {
		stopRP()
		for _, s := range stopHW {
			s()
		}
	})
	eng.Run()
	return eng, agent, svc
}

func TestRPMonitorPublishesListing1Layout(t *testing.T) {
	_, agent, svc := simulatedWorkflow(t, 1, 2, 30)
	q := LocalQuerier{Service: svc}
	root, err := q.Query(NSWorkflow, "RP/task.000000")
	if err != nil {
		t.Fatal(err)
	}
	// Every Listing 1 event must appear as <timestamp>: "<event>".
	found := map[string]bool{}
	for _, tsName := range root.ChildNames() {
		if tsName == "states" {
			continue
		}
		if v, ok := root.StringVal(tsName); ok {
			found[v] = true
		}
	}
	for _, ev := range pilot.ExecutingEvents {
		if !found[ev] {
			t.Errorf("workflow namespace missing event %q (have %v)", ev, found)
		}
	}
	// State history must be there too.
	states, ok := root.Get("states")
	if !ok || states.NumChildren() < 5 {
		t.Fatalf("states subtree missing or short")
	}
	_ = agent
}

func TestRPMonitorSummaryConvergesToDone(t *testing.T) {
	_, _, svc := simulatedWorkflow(t, 1, 3, 30)
	a := Analysis{Q: LocalQuerier{Service: svc}}
	series, err := a.WorkflowSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 2 {
		t.Fatalf("summary series too short: %d", len(series))
	}
	last := series[len(series)-1]
	if last.Done != 3 || last.Running != 0 || last.Pending != 0 {
		t.Fatalf("final summary = %+v", last)
	}
	// Early snapshots should have seen work in flight.
	sawActivity := false
	for _, s := range series[:len(series)-1] {
		if s.Running > 0 || s.Pending > 0 {
			sawActivity = true
		}
	}
	if !sawActivity {
		t.Fatal("monitor never observed in-flight work")
	}
}

func TestHWMonitorPublishesPerNodeSeries(t *testing.T) {
	_, _, svc := simulatedWorkflow(t, 2, 2, 30)
	a := Analysis{Q: LocalQuerier{Service: svc}}
	hosts, err := a.Hosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	for _, h := range hosts {
		series, err := a.CPUUtilSeries(h)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) < 3 {
			t.Fatalf("host %s series = %d points", h, len(series))
		}
		for i := 1; i < len(series); i++ {
			if series[i].Time <= series[i-1].Time {
				t.Fatalf("series not time-ordered at %d", i)
			}
		}
	}
}

func TestCPUUtilSpikesWhenTaskStarts(t *testing.T) {
	// Fig. 7's headline observation: "as a rank starts, there is a
	// corresponding spike in CPU utilization."
	_, _, svc := simulatedWorkflow(t, 1, 1, 10)
	a := Analysis{Q: LocalQuerier{Service: svc}}
	starts, err := a.TaskStarts()
	if err != nil || len(starts) != 1 {
		t.Fatalf("starts = %v, %v", starts, err)
	}
	series, err := a.CPUUtilSeries("cn0000")
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	haveBefore := false
	for _, p := range series {
		// Cores are claimed ~1 s before exec_start (scheduling overhead), so
		// "before" must predate the whole scheduling window.
		if p.Time < starts[0].Time-5 {
			before, haveBefore = p.Util, true
		}
		if p.Time > starts[0].Time+10 && after == 0 {
			after = p.Util
		}
	}
	if !haveBefore {
		t.Skip("no sample before task start at this interval")
	}
	if after < before+10 {
		t.Fatalf("no spike: before=%.1f after=%.1f", before, after)
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	eng := des.NewEngine()
	if _, err := NewRPMonitor(RPMonitorConfig{Runtime: eng}); err == nil {
		t.Fatal("incomplete RP monitor config accepted")
	}
	if _, err := NewHWMonitor(HWMonitorConfig{Runtime: eng}); err == nil {
		t.Fatal("incomplete HW monitor config accepted")
	}
}

type failingPub struct{ err error }

func (f failingPub) Publish(Namespace, *conduit.Node) error { return f.err }

func TestMonitorsCountPublishFailures(t *testing.T) {
	eng := des.NewEngine()
	prof := pilot.NewProfiler()
	rpm, _ := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: prof,
		Pub: failingPub{err: errors.New("down")}, IntervalSec: 10,
	})
	stop := rpm.Start()
	eng.RunUntil(35)
	stop()
	ticks, errs := rpm.Ticks()
	if ticks < 3 || errs != ticks {
		t.Fatalf("ticks=%d errs=%d", ticks, errs)
	}

	node := platform.NewNode(0, platform.Summit())
	hwm, _ := NewHWMonitor(HWMonitorConfig{
		Runtime: eng, Source: procfs.NewSyntheticSource(node, eng, 1),
		Pub: failingPub{err: errors.New("down")}, IntervalSec: 10,
	})
	stopHW := hwm.Start()
	eng.RunUntil(70)
	stopHW()
	hticks, herrs := hwm.Ticks()
	if hticks < 3 || herrs != hticks {
		t.Fatalf("hw ticks=%d errs=%d", hticks, herrs)
	}
}

func TestRPMonitorIncrementalCursor(t *testing.T) {
	eng := des.NewEngine()
	prof := pilot.NewProfiler()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	rpm, _ := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: prof, Pub: LocalPublisher{Service: svc}, IntervalSec: 60,
	})
	prof.RecordState(0, "task.000000", pilot.StateNew)
	rpm.Collect()
	prof.RecordEvent(1, "task.000000", pilot.EvLaunchStart)
	rpm.Collect()
	// The event stream must not be re-published: exactly one state leaf and
	// one event leaf for the task.
	got, _ := svc.Query(NSWorkflow, "RP/task.000000")
	leaves := got.NumLeaves()
	if leaves != 2 {
		t.Fatalf("leaves = %d want 2 (no duplication)", leaves)
	}
	ticks, errs := rpm.Ticks()
	if ticks != 2 || errs != 0 {
		t.Fatalf("ticks=%d errs=%d", ticks, errs)
	}
}

func TestLocalPublisherRoundTrip(t *testing.T) {
	svc := NewService(ServiceConfig{})
	defer svc.Close()
	lp := LocalPublisher{Service: svc}
	n := conduit.NewNode()
	n.SetInt("fom/atoms_per_sec", 12345)
	if err := lp.Publish(NSApplication, n); err != nil {
		t.Fatal(err)
	}
	got, _ := svc.Query(NSApplication, "fom")
	if v, _ := got.Int("atoms_per_sec"); v != 12345 {
		t.Fatal("application namespace round trip failed")
	}
}

// TestRPMonitorStateDurations: the monitor calculates time spent in each
// state (paper §3.1) and publishes it for analysis.
func TestRPMonitorStateDurations(t *testing.T) {
	eng := des.NewEngine()
	prof := pilot.NewProfiler()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	rpm, _ := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: prof, Pub: LocalPublisher{Service: svc}, IntervalSec: 60,
	})
	prof.RecordState(0, "task.000000", pilot.StateNew)
	prof.RecordState(2, "task.000000", pilot.StateTMGRScheduling)
	prof.RecordState(2, "task.000000", pilot.StateAgentScheduling)
	prof.RecordState(9, "task.000000", pilot.StateScheduled)
	prof.RecordState(10, "task.000000", pilot.StateExecuting)
	rpm.Collect()
	prof.RecordState(110, "task.000000", pilot.StateDone)
	rpm.Collect()

	a := Analysis{Q: LocalQuerier{Service: svc}}
	d, err := a.StateDurations("task.000000")
	if err != nil {
		t.Fatal(err)
	}
	if d[pilot.StateNew] != 2 || d[pilot.StateAgentScheduling] != 7 ||
		d[pilot.StateScheduled] != 1 || d[pilot.StateExecuting] != 100 {
		t.Fatalf("durations = %v", d)
	}
	qw, err := a.QueueWaitStats()
	if err != nil || qw.N != 1 || qw.Mean != 7 {
		t.Fatalf("queue wait = %+v, %v", qw, err)
	}
}

// TestQueueWaitVisibleInWorkflow: tasks that queue behind a full node show
// their wait in the published AGENT_SCHEDULING duration.
func TestQueueWaitVisibleInWorkflow(t *testing.T) {
	_, _, svc := simulatedWorkflow(t, 1, 3, 30) // 3×21-rank tasks on 42 cores: one waits
	a := Analysis{Q: LocalQuerier{Service: svc}}
	qw, err := a.QueueWaitStats()
	if err != nil {
		t.Fatal(err)
	}
	if qw.N != 3 {
		t.Fatalf("queue wait samples = %d", qw.N)
	}
	// Two tasks start immediately (wait ≈ bootstrap), the third waits for a
	// full task duration (~120 s) more.
	if qw.Max < 100 {
		t.Fatalf("max queue wait = %.1f, want the straggler's wait", qw.Max)
	}
	if qw.Min > 30 {
		t.Fatalf("min queue wait = %.1f, want a first-wave task", qw.Min)
	}
}
