package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// soma.trace.* — the query side of the trace pipeline. The telemetry
// package's TraceStore assembles completed spans into tail-sampled traces;
// these RPCs expose them, conduit-encoded like soma.telemetry, so somactl
// and somatop can answer "why was this publish slow?" against a live
// service.
//
// Wire formats (all ids are hex strings — full-range uint64s don't fit the
// int64 leaf type):
//
//	soma.trace.list  req  {limit?, sort?("dur"|"recent")}
//	                 resp traces/NNN/{trace,root,start_ns,dur_ns,spans,err,reason}
//	soma.trace.get   req  {trace}
//	                 resp found, trace/{trace,root,start_ns,dur_ns,err,reason,dropped_spans},
//	                      spans/NNNNNN/{trace,span,parent,name,start_ns,dur_ns,count,err}
const (
	RPCTraceList = "soma.trace.list"
	RPCTraceGet  = "soma.trace.get"
)

// ErrTraceNotFound reports that a queried trace id was never kept by the
// service's tail sampler, or has since been evicted from the bounded store.
var ErrTraceNotFound = errors.New("soma: trace not found (not kept by the sampler, or evicted)")

// traceListLimit bounds how many summaries one soma.trace.list response
// carries when the request does not say.
const traceListLimit = 64

// IdempotentRPCs lists the service RPCs that are safe to retry after a
// request may have reached the server — the read-only surface. Use it with
// mercury.IdempotentSet when building a CallPolicy with retries.
//
// soma.profile is deliberately absent: a retried profile capture would
// double-start (or burn the one-at-a-time gate on) a multi-second CPU
// profile. soma.publish/soma.publish.batch mutate state; soma.alert.set/rm,
// soma.reset and soma.shutdown are likewise excluded.
func IdempotentRPCs() []string {
	return []string{
		RPCQuery, RPCQueryDelta, RPCSelect, RPCStats, RPCHealth,
		RPCTelemetry, RPCSeries, RPCAlertList, RPCTraceList, RPCTraceGet,
		RPCRing, RPCQueryLocal, RPCQueryDeltaLocal, RPCSeriesLocal,
		RPCAlertListLocal,
	}
}

func encodeTraceSummaries(sums []telemetry.TraceSummary) *conduit.Node {
	n := conduit.NewNode()
	for i, s := range sums {
		base := fmt.Sprintf("traces/%03d", i)
		n.SetString(base+"/trace", strconv.FormatUint(s.TraceID, 16))
		n.SetString(base+"/root", s.Root)
		n.SetInt(base+"/start_ns", s.Start.UnixNano())
		n.SetInt(base+"/dur_ns", int64(s.Dur))
		n.SetInt(base+"/spans", int64(s.Spans))
		n.SetBool(base+"/err", s.Err)
		n.SetString(base+"/reason", s.Reason)
	}
	return n
}

func decodeTraceSummaries(n *conduit.Node) []telemetry.TraceSummary {
	sub, ok := n.Get("traces")
	if !ok {
		return nil
	}
	var out []telemetry.TraceSummary
	for _, key := range sub.ChildNames() {
		e := sub.Child(key)
		var s telemetry.TraceSummary
		if hex, ok := e.StringVal("trace"); ok {
			s.TraceID, _ = strconv.ParseUint(hex, 16, 64)
		}
		if s.TraceID == 0 {
			continue
		}
		s.Root, _ = e.StringVal("root")
		if v, ok := e.Int("start_ns"); ok {
			s.Start = time.Unix(0, v)
		}
		if v, ok := e.Int("dur_ns"); ok {
			s.Dur = time.Duration(v)
		}
		if v, ok := e.Int("spans"); ok {
			s.Spans = int(v)
		}
		s.Err, _ = e.Bool("err")
		s.Reason, _ = e.StringVal("reason")
		out = append(out, s)
	}
	return out
}

func encodeSpan(n *conduit.Node, base string, sp telemetry.SpanSnapshot) {
	n.SetString(base+"/trace", strconv.FormatUint(sp.TraceID, 16))
	n.SetString(base+"/span", strconv.FormatUint(sp.SpanID, 16))
	if sp.Parent != 0 {
		n.SetString(base+"/parent", strconv.FormatUint(sp.Parent, 16))
	}
	n.SetString(base+"/name", sp.Name)
	n.SetInt(base+"/start_ns", sp.Start.UnixNano())
	n.SetInt(base+"/dur_ns", int64(sp.Dur))
	if sp.Count != 0 {
		n.SetInt(base+"/count", sp.Count)
	}
	if sp.Err {
		n.SetBool(base+"/err", true)
	}
}

func decodeSpan(e *conduit.Node) telemetry.SpanSnapshot {
	var sp telemetry.SpanSnapshot
	if s, ok := e.StringVal("trace"); ok {
		sp.TraceID, _ = strconv.ParseUint(s, 16, 64)
	}
	if s, ok := e.StringVal("span"); ok {
		sp.SpanID, _ = strconv.ParseUint(s, 16, 64)
	}
	if s, ok := e.StringVal("parent"); ok {
		sp.Parent, _ = strconv.ParseUint(s, 16, 64)
	}
	sp.Name, _ = e.StringVal("name")
	if v, ok := e.Int("start_ns"); ok {
		sp.Start = time.Unix(0, v)
	}
	if v, ok := e.Int("dur_ns"); ok {
		sp.Dur = time.Duration(v)
	}
	sp.Count, _ = e.Int("count")
	sp.Err, _ = e.Bool("err")
	return sp
}

func encodeTrace(tr telemetry.Trace) *conduit.Node {
	n := conduit.NewNode()
	n.SetBool("found", true)
	n.SetString("trace/trace", strconv.FormatUint(tr.TraceID, 16))
	n.SetString("trace/root", tr.Root)
	n.SetInt("trace/start_ns", tr.Start.UnixNano())
	n.SetInt("trace/dur_ns", int64(tr.Dur))
	n.SetBool("trace/err", tr.Err)
	n.SetString("trace/reason", tr.Reason)
	n.SetInt("trace/dropped_spans", int64(tr.DroppedSpans))
	for i, sp := range tr.Spans {
		encodeSpan(n, fmt.Sprintf("spans/%06d", i), sp)
	}
	return n
}

func decodeTrace(n *conduit.Node) (telemetry.Trace, bool) {
	if found, _ := n.Bool("found"); !found {
		return telemetry.Trace{}, false
	}
	var tr telemetry.Trace
	if sub, ok := n.Get("trace"); ok {
		if hex, ok := sub.StringVal("trace"); ok {
			tr.TraceID, _ = strconv.ParseUint(hex, 16, 64)
		}
		tr.Root, _ = sub.StringVal("root")
		if v, ok := sub.Int("start_ns"); ok {
			tr.Start = time.Unix(0, v)
		}
		if v, ok := sub.Int("dur_ns"); ok {
			tr.Dur = time.Duration(v)
		}
		tr.Err, _ = sub.Bool("err")
		tr.Reason, _ = sub.StringVal("reason")
		if v, ok := sub.Int("dropped_spans"); ok {
			tr.DroppedSpans = int(v)
		}
	}
	if sub, ok := n.Get("spans"); ok {
		for _, key := range sub.ChildNames() {
			sp := decodeSpan(sub.Child(key))
			if sp.TraceID != 0 {
				tr.Spans = append(tr.Spans, sp)
			}
		}
	}
	return tr, tr.TraceID != 0
}

// handleTraceList serves soma.trace.list from the process trace store.
func (s *Service) handleTraceList(ctx context.Context, payload []byte) (mercury.Response, error) {
	// Honor the caller's propagated deadline: a trace listing for a caller
	// that already gave up is pure waste (dispatch sheds pre-expired calls;
	// this covers expiry during queueing too).
	if err := ctx.Err(); err != nil {
		return mercury.Response{}, err
	}
	limit, sortBy := traceListLimit, "recent"
	if req, err := conduit.DecodeBinary(payload); err == nil {
		if v, ok := req.Int("limit"); ok && v > 0 {
			limit = int(v)
		}
		if v, ok := req.StringVal("sort"); ok && v != "" {
			sortBy = v
		}
	}
	ts := telemetry.Default().Traces()
	if ts == nil {
		return ownedFrame(conduit.NewNode())
	}
	var sums []telemetry.TraceSummary
	if sortBy == "dur" {
		sums = ts.Slowest(limit)
	} else {
		sums = ts.List()
		if len(sums) > limit {
			sums = sums[:limit]
		}
	}
	return ownedFrame(encodeTraceSummaries(sums))
}

// handleTraceGet serves soma.trace.get.
func (s *Service) handleTraceGet(ctx context.Context, payload []byte) (mercury.Response, error) {
	if err := ctx.Err(); err != nil {
		return mercury.Response{}, err
	}
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return mercury.Response{}, err
	}
	hex, _ := req.StringVal("trace")
	id, err := strconv.ParseUint(hex, 16, 64)
	if err != nil || id == 0 {
		return mercury.Response{}, fmt.Errorf("soma: bad trace id %q", hex)
	}
	ts := telemetry.Default().Traces()
	if ts == nil {
		return ownedFrame(conduit.NewNode())
	}
	tr, ok := ts.Get(id)
	if !ok {
		return ownedFrame(conduit.NewNode())
	}
	return ownedFrame(encodeTrace(tr))
}

// Traces fetches kept-trace summaries from the service; slowest orders by
// root duration (the tail view), otherwise most recently kept first.
func (c *Client) Traces(limit int, slowest bool) ([]telemetry.TraceSummary, error) {
	req := conduit.NewNode()
	if limit > 0 {
		req.SetInt("limit", int64(limit))
	}
	if slowest {
		req.SetString("sort", "dur")
	}
	out, err := c.ep.Call(context.Background(), RPCTraceList, req.EncodeBinary())
	if err != nil {
		return nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, err
	}
	sums := decodeTraceSummaries(resp)
	sort.SliceStable(sums, func(i, j int) bool {
		if slowest {
			return sums[i].Dur > sums[j].Dur
		}
		return false // server order is already most-recent-first
	})
	return sums, nil
}

// Trace fetches one kept trace by id; ErrTraceNotFound when the sampler
// never kept it (or the bounded store evicted it).
func (c *Client) Trace(id uint64) (telemetry.Trace, error) {
	req := conduit.NewNode()
	req.SetString("trace", strconv.FormatUint(id, 16))
	out, err := c.ep.Call(context.Background(), RPCTraceGet, req.EncodeBinary())
	if err != nil {
		return telemetry.Trace{}, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return telemetry.Trace{}, err
	}
	tr, ok := decodeTrace(resp)
	if !ok {
		return telemetry.Trace{}, fmt.Errorf("%w: %016x", ErrTraceNotFound, id)
	}
	return tr, nil
}
