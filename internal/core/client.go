package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Client is the SOMA client stub (paper §2.2.1): it exposes the monitoring
// API and translates calls into RPCs. It runs inside the instrumented
// component's address space (monitor daemons, the TAU plugin, application
// tasks) and needs no resources of its own.
//
// Published trees are handed over to the service; callers must not mutate a
// tree after publishing it.
type Client struct {
	ep *mercury.Endpoint
	// addr, engine and policy remember how the endpoint was resolved so
	// subscriptions can redial after a connection loss (see subscribe.go).
	addr   string
	engine *mercury.Engine
	policy *mercury.CallPolicy

	// spill is the graceful-degradation buffer (nil until EnableSpill); see
	// spill.go.
	spill atomic.Pointer[spillState]

	// coal is the publish coalescer (nil until EnableBatch); see batch.go.
	coal atomic.Pointer[coalescer]
	// noBatch latches when the service reports soma.publish.batch as
	// unknown (an older server); publishes then bypass the coalescer and go
	// per-entry, mirroring the noDelta latch below.
	noBatch atomic.Bool

	mu    sync.Mutex
	async chan publishReq
	wg    sync.WaitGroup
	// Errs receives asynchronous publish failures; nil unless async mode
	// was enabled.
	Errs chan error
	// fireAndForget switches publishes to one-way notifications; atomic so
	// the publish hot path never takes c.mu for it.
	fireAndForget atomic.Bool

	// published counts successful publishes.
	published atomic.Int64

	// encSeen memoizes frames PublishEncoded has already validated, keyed
	// by first-byte pointer → frame length. A cached-payload publisher
	// re-sends the same immutable slices millions of times; validating
	// each slice once instead of per call takes ValidateBinary off the
	// hot path. Sound because the PublishEncoded contract forbids mutating
	// enc after the call. Bounded: reset wholesale past encSeenMax entries.
	encMu   sync.Mutex
	encSeen map[*byte]int

	// delta is the per-endpoint generation memo behind QueryDelta: the last
	// full response per (ns, path) with the (epoch, gen) stamp the service
	// sent alongside it. When a later poll's stamp still matches, the service
	// answers with a tiny "unchanged" frame and the memoized tree is reused.
	deltaMu sync.Mutex
	delta   map[string]*deltaMemo
	// noDelta latches when the service reports soma.query.delta as unknown
	// (an older server); all later QueryDelta calls fall back to plain
	// queries without re-probing.
	noDelta atomic.Bool
	// localRPCs switches reads to the ".local" single-shard RPC variants.
	// ClusterClient sets it on its per-member clients so each shard poll is
	// answered from that instance alone (with its own delta memo) instead of
	// being scattered server-side across the whole fleet. Set before use,
	// never flipped afterwards.
	localRPCs bool
	// Delta accounting for DeltaStats: polls answered "unchanged" and the
	// wire bytes those answers saved versus re-sending the memoized frame.
	deltaUnchanged  atomic.Int64
	deltaBytesSaved atomic.Int64
}

// deltaMemo is one (ns, path) entry of the client's generation memo.
type deltaMemo struct {
	epoch, gen int64
	tree       *conduit.Node
	frameLen   int // encoded size of the full response, for bytes-saved accounting
}

// maxDeltaMemos bounds the generation memo; queries for paths beyond the cap
// still work, they just never get the tiny-frame fast path.
const maxDeltaMemos = 256

type publishReq struct {
	ns   Namespace
	node *conduit.Node
	// flushed marks a Flush sentinel: the worker answers on it instead of
	// publishing, proving every earlier enqueued publish has been sent, and
	// reports the first error among them (buffered so the worker never
	// blocks on an abandoned Flush).
	flushed chan error
}

// Connect resolves the service address ("inproc://..." or "tcp://...") into
// a client. The optional engine (may be nil) accounts client-side RPC stats.
func Connect(addr string, engine *mercury.Engine) (*Client, error) {
	return ConnectPolicy(addr, engine, nil)
}

// ConnectPolicy is Connect with an explicit mercury call policy (timeouts,
// retries, circuit breaker); nil keeps the default. The policy survives
// reconnects — subscription redials and spill redelivery resolve new
// endpoints under the same policy.
func ConnectPolicy(addr string, engine *mercury.Engine, p *mercury.CallPolicy) (*Client, error) {
	var (
		ep  *mercury.Endpoint
		err error
	)
	if engine != nil {
		ep, err = engine.LookupPolicy(addr, p)
	} else {
		ep, err = mercury.LookupPolicy(addr, p)
	}
	if err != nil {
		return nil, fmt.Errorf("soma: connect %s: %w", addr, err)
	}
	return &Client{ep: ep, addr: addr, engine: engine, policy: p}, nil
}

// EnableAsync switches Publish to buffered asynchronous mode: publishes are
// queued (up to depth) and sent by a background goroutine, so the
// instrumented code never blocks on the service — the low-overhead
// transport mode for real-time deployments. Errors surface on c.Errs.
func (c *Client) EnableAsync(depth int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.async != nil {
		return
	}
	if depth < 1 {
		depth = 64
	}
	c.async = make(chan publishReq, depth)
	c.Errs = make(chan error, depth)
	// The worker must capture the channel VALUE: Close nils the field, and
	// a field read in the range expression could observe nil (range over a
	// nil channel blocks forever, deadlocking Close's wg.Wait).
	ch := c.async
	errs := c.Errs
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// pendErr is the first publish failure since the last Flush; a
		// Flush sentinel collects and clears it, so callers learn when
		// queued publishes died (e.g. the service stopped underneath them)
		// even if nothing reads c.Errs.
		var pendErr error
		for req := range ch {
			if req.flushed != nil {
				req.flushed <- pendErr
				pendErr = nil
				continue
			}
			if err := c.publishSync(req.ns, req.node); err != nil {
				if pendErr == nil {
					pendErr = err
				}
				select {
				case errs <- err:
				default:
				}
			}
		}
	}()
}

// Publish sends a tree to the namespace's service instance. In async mode
// it enqueues (dropping with an error on a full queue) and returns
// immediately.
func (c *Client) Publish(ns Namespace, n *conduit.Node) error {
	c.mu.Lock()
	async := c.async
	c.mu.Unlock()
	if async != nil {
		select {
		case async <- publishReq{ns: ns, node: n}:
			return nil
		default:
			return fmt.Errorf("soma: async publish queue full")
		}
	}
	return c.publishSync(ns, n)
}

// Flush blocks until every publish enqueued before the call has been sent
// — draining the async queue and then the batch coalescer — and returns the
// first error those publishes hit (e.g. ErrServiceStopped when the service
// shut down while they were queued) — a silent drain would let a monitor's
// final batch vanish unnoticed. A no-op in synchronous unbatched mode.
// Callers that queried data right after a final async publish would
// otherwise race the background sender — e.g. a monitor's shutdown
// collection followed by analysis over the same client.
func (c *Client) Flush() error {
	c.mu.Lock()
	async := c.async
	c.mu.Unlock()
	var asyncErr error
	if async != nil {
		done := make(chan error, 1)
		async <- publishReq{flushed: done}
		asyncErr = <-done
	}
	// Drain the coalescer second: the async worker feeds it, so every
	// publish enqueued before this call is now in the batch buffer (or
	// already on the wire) and the synchronous flush covers it.
	var batchErr error
	if co := c.coal.Load(); co != nil {
		batchErr = co.flushNow()
	}
	if asyncErr != nil {
		return asyncErr
	}
	return batchErr
}

// EnableFireAndForget switches Publish to one-way notifications: the client
// never waits for the service's acknowledgment, trading delivery
// confirmation for the lowest possible publish latency — the mode for
// per-iteration application instrumentation on hot paths. Composable with
// EnableAsync (the background goroutine then sends notifications).
func (c *Client) EnableFireAndForget() {
	c.fireAndForget.Store(true)
}

// publishSync sends one publish: through the coalescer when batching is
// enabled (and the server speaks the batch RPC), otherwise directly.
func (c *Client) publishSync(ns Namespace, n *conduit.Node) error {
	if co := c.coal.Load(); co != nil && !c.noBatch.Load() {
		return co.append(ns, n, nil)
	}
	return c.publishDirect(ns, n)
}

// PublishEncoded sends a pre-encoded tree (Node.EncodeBinary output). A
// high-rate publisher whose tree shape is fixed encodes once and republishes
// the cached bytes, skipping the per-publish encode walk — and, because
// cached frames are flat byte slices, keeping the publisher's working set
// free of pointer-rich trees the garbage collector would have to trace.
// The frame is validated up front; the coalescer retains enc by reference
// until the batch is acknowledged, so the caller must not mutate it.
// Without batching enabled (or against a server predating the batch RPC)
// the frame is decoded and follows the ordinary per-entry path.
func (c *Client) PublishEncoded(ns Namespace, enc []byte) error {
	if err := c.validateEncoded(enc); err != nil {
		return err
	}
	if co := c.coal.Load(); co != nil && !c.noBatch.Load() {
		return co.append(ns, nil, enc)
	}
	n, err := conduit.DecodeBinary(enc)
	if err != nil {
		return err
	}
	return c.publishDirect(ns, n)
}

// encSeenMax bounds the validated-frame memo; past it the memo is dropped
// wholesale (entries also pin their frames, so the bound caps retained
// payload bytes too).
const encSeenMax = 1 << 17

// validateEncoded checks a PublishEncoded frame, consulting the memo of
// slices this client has already validated so repeat sends of a cached
// payload skip the wire-format walk.
func (c *Client) validateEncoded(enc []byte) error {
	if len(enc) == 0 {
		return conduit.ValidateBinary(enc)
	}
	k := &enc[0]
	c.encMu.Lock()
	n, ok := c.encSeen[k]
	c.encMu.Unlock()
	if ok && n == len(enc) {
		return nil
	}
	if err := conduit.ValidateBinary(enc); err != nil {
		return err
	}
	c.encMu.Lock()
	if c.encSeen == nil || len(c.encSeen) >= encSeenMax {
		c.encSeen = make(map[*byte]int)
	}
	c.encSeen[k] = len(enc)
	c.encMu.Unlock()
	return nil
}

// publishDirect sends one per-entry publish, degrading into the spill
// buffer (when enabled) on transient transport failures — and routing
// behind any entries already buffered, so redelivery preserves publish
// order.
func (c *Client) publishDirect(ns Namespace, n *conduit.Node) error {
	if sp := c.spill.Load(); sp != nil && sp.pending() > 0 {
		if sp.add(ns, n) {
			return nil
		}
	}
	err := c.sendPublish(ns, n)
	if err == nil {
		return nil
	}
	if sp := c.spill.Load(); sp != nil && mercury.IsTransient(err) {
		if sp.add(ns, n) {
			return nil
		}
	}
	return err
}

// reportAsyncError offers err on Errs without blocking (async mode only).
func (c *Client) reportAsyncError(err error) {
	c.mu.Lock()
	errs := c.Errs
	c.mu.Unlock()
	if errs == nil {
		return
	}
	select {
	case errs <- err:
	default:
	}
}

// sendPublish performs the wire publish with no degradation handling.
func (c *Client) sendPublish(ns Namespace, n *conduit.Node) error {
	// Every publish is the root of a trace: the span's ids travel in the
	// mercury frame header, so the service-side handler and stripe append
	// record child spans of this one (client → wire → stripe append).
	ctx, sp := telemetry.StartSpan(context.Background(), "soma.client.publish")
	// Zero-copy envelope: the published tree is grafted under "data" by
	// reference rather than deep-merged — callers handed it over at Publish
	// and may not mutate it, so encoding can read it in place. The wire
	// buffer is pooled; both transports finish with it before returning.
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.Attach("data", n)
	buf := conduit.GetEncodeBuffer()
	*buf = req.AppendBinary(*buf)
	var err error
	if c.fireAndForget.Load() {
		err = c.ep.Notify(ctx, RPCPublish, *buf)
	} else {
		_, err = c.ep.Call(ctx, RPCPublish, *buf)
	}
	conduit.PutEncodeBuffer(buf)
	if err != nil {
		// A failed publish is an error trace: the tail sampler always keeps
		// those, so the failure is inspectable via soma.trace.get afterwards.
		sp.Fail()
	}
	sp.End()
	if err == nil {
		c.published.Add(1)
	}
	return err
}

// Published returns the number of acknowledged publishes. Leaves are
// counted at send-acknowledgement, not at enqueue: an async or batched
// publish only counts once the service's ack (or the one-way send, in
// fire-and-forget mode) confirms it left, and a spilled entry counts
// exactly once, at successful redelivery. After Flush (and DrainSpill, when
// spill is enabled) the count equals the publishes the service accepted.
func (c *Client) Published() int64 {
	return c.published.Load()
}

// Query fetches the merged subtree at path within ns. The returned tree is
// shared and read-only: repeated queries against an unchanged namespace are
// answered by a tiny delta frame and return the same memoized tree, so
// callers must not modify it. Mutating callers should clone first.
func (c *Client) Query(ns Namespace, path string) (*conduit.Node, error) {
	tree, _, err := c.QueryDelta(ns, path)
	return tree, err
}

// QueryDelta is Query with change detection: the poll carries the memoized
// (epoch, gen) stamp via soma.query.delta, and changed reports whether the
// namespace moved since the previous call for the same (ns, path). When
// changed is false the returned tree is the memoized previous result and the
// poll cost a ~30-byte frame instead of the full tree. Against servers
// predating the delta RPC it degrades to a plain query (changed always
// true).
func (c *Client) QueryDelta(ns Namespace, path string) (tree *conduit.Node, changed bool, err error) {
	if c.noDelta.Load() {
		tree, err = c.queryPlain(ns, path)
		return tree, true, err
	}
	key := string(ns) + "\x00" + path
	c.deltaMu.Lock()
	memo := c.delta[key]
	c.deltaMu.Unlock()
	ctx, sp := telemetry.StartSpan(context.Background(), "soma.client.query")
	defer func() {
		if err != nil {
			sp.Fail()
		}
		sp.End()
	}()
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.SetString("path", path)
	if memo != nil {
		req.SetInt("epoch", memo.epoch)
		req.SetInt("gen", memo.gen)
	}
	buf := conduit.GetEncodeBuffer()
	*buf = req.AppendBinary(*buf)
	out, err := c.ep.Call(ctx, c.queryDeltaRPC(), *buf)
	conduit.PutEncodeBuffer(buf)
	if err != nil {
		if errors.Is(err, mercury.ErrUnknownRPC) {
			c.noDelta.Store(true)
			tree, err = c.queryPlain(ns, path)
			return tree, true, err
		}
		return nil, false, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, false, err
	}
	epoch, _ := resp.Int("epoch")
	gen, _ := resp.Int("gen")
	if unch, _ := resp.Bool("unchanged"); unch {
		// The stamp the service matched is the one this call sent, so the
		// memo pointer read above is exactly the state the service holds.
		if memo != nil && memo.epoch == epoch && memo.gen == gen {
			c.deltaUnchanged.Add(1)
			if saved := memo.frameLen - len(out); saved > 0 {
				c.deltaBytesSaved.Add(int64(saved))
			}
			return memo.tree, false, nil
		}
		// Defensive: an "unchanged" for a stamp this client no longer holds;
		// resync with a plain query rather than trust it.
		tree, err = c.queryPlain(ns, path)
		return tree, true, err
	}
	data, ok := resp.Get("data")
	if !ok {
		data = conduit.NewNode()
	}
	if epoch != 0 {
		c.deltaMu.Lock()
		if c.delta == nil {
			c.delta = make(map[string]*deltaMemo, 4)
		}
		if _, exists := c.delta[key]; exists || len(c.delta) < maxDeltaMemos {
			c.delta[key] = &deltaMemo{epoch: epoch, gen: gen, tree: data, frameLen: len(out)}
		}
		c.deltaMu.Unlock()
	}
	return data, true, nil
}

// DeltaStatsSnapshot summarizes the client's delta-query savings.
type DeltaStatsSnapshot struct {
	// Unchanged counts polls the service answered with the tiny
	// "unchanged" frame.
	Unchanged int64
	// BytesSaved totals the wire bytes avoided by those answers versus
	// re-sending the memoized full frames.
	BytesSaved int64
}

// DeltaStats reports how much poll traffic delta queries have collapsed.
func (c *Client) DeltaStats() DeltaStatsSnapshot {
	return DeltaStatsSnapshot{
		Unchanged:  c.deltaUnchanged.Load(),
		BytesSaved: c.deltaBytesSaved.Load(),
	}
}

func (c *Client) queryRPC() string {
	if c.localRPCs {
		return RPCQueryLocal
	}
	return RPCQuery
}

func (c *Client) queryDeltaRPC() string {
	if c.localRPCs {
		return RPCQueryDeltaLocal
	}
	return RPCQueryDelta
}

// queryPlain is the pre-delta wire query: always fetches the full tree.
func (c *Client) queryPlain(ns Namespace, path string) (tree *conduit.Node, err error) {
	ctx, sp := telemetry.StartSpan(context.Background(), "soma.client.query")
	defer func() {
		if err != nil {
			sp.Fail()
		}
		sp.End()
	}()
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.SetString("path", path)
	buf := conduit.GetEncodeBuffer()
	*buf = req.AppendBinary(*buf)
	out, err := c.ep.Call(ctx, c.queryRPC(), *buf)
	conduit.PutEncodeBuffer(buf)
	if err != nil {
		return nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, err
	}
	data, ok := resp.Get("data")
	if !ok {
		return conduit.NewNode(), nil
	}
	return data, nil
}

// Stats fetches per-instance service statistics.
func (c *Client) Stats() (map[Namespace]InstanceStats, error) {
	out, err := c.ep.Call(context.Background(), RPCStats, conduit.NewNode().EncodeBinary())
	if err != nil {
		return nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, err
	}
	stats := map[Namespace]InstanceStats{}
	for _, nsName := range resp.ChildNames() {
		sub := resp.Child(nsName)
		st := InstanceStats{Namespace: Namespace(nsName)}
		if v, ok := sub.Int("ranks"); ok {
			st.Ranks = int(v)
		}
		if v, ok := sub.Int("stripes"); ok {
			st.Stripes = int(v)
		}
		st.Publishes, _ = sub.Int("publishes")
		st.Leaves, _ = sub.Int("leaves")
		st.BytesIn, _ = sub.Int("bytes_in")
		st.LastTime, _ = sub.Float("last_time")
		stats[st.Namespace] = st
	}
	return stats, nil
}

// Telemetry fetches the service process's full telemetry registry snapshot
// (RPC latency histograms, queue gauges, counters, recent spans) via the
// soma.telemetry RPC.
func (c *Client) Telemetry() (*telemetry.Snapshot, error) {
	out, err := c.ep.Call(context.Background(), RPCTelemetry, conduit.NewNode().EncodeBinary())
	if err != nil {
		return nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, err
	}
	return DecodeTelemetry(resp), nil
}

// SelectMatch is one result of a pattern select.
type SelectMatch struct {
	Path string
	// Value holds the leaf's numeric value; HasValue is false for
	// non-numeric leaves.
	Value    float64
	HasValue bool
}

// Select returns the leaf paths (and numeric values) matching a glob
// pattern in a namespace, evaluated service-side.
func (c *Client) Select(ns Namespace, pattern string) ([]SelectMatch, error) {
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.SetString("pattern", pattern)
	out, err := c.ep.Call(context.Background(), RPCSelect, req.EncodeBinary())
	if err != nil {
		return nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, err
	}
	matches, ok := resp.Get("matches")
	if !ok {
		return nil, nil
	}
	var result []SelectMatch
	for _, name := range matches.ChildNames() {
		sub := matches.Child(name)
		m := SelectMatch{}
		m.Path, _ = sub.StringVal("path")
		m.Value, m.HasValue = sub.Float("value")
		result = append(result, m)
	}
	return result, nil
}

// Reset asks the service to discard a namespace's stored data (after a
// snapshot, at phase boundaries).
func (c *Client) Reset(ns Namespace) error {
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	_, err := c.ep.Call(context.Background(), RPCReset, req.EncodeBinary())
	return err
}

// Shutdown asks the service to stop accepting data.
func (c *Client) Shutdown() error {
	_, err := c.ep.Call(context.Background(), RPCShutdown, conduit.NewNode().EncodeBinary())
	return err
}

// Close flushes the async queue (if any), stops spill redelivery, and
// releases the endpoint. Buffered spill entries are NOT delivered — call
// DrainSpill first when they must not be lost.
func (c *Client) Close() error {
	c.mu.Lock()
	async := c.async
	c.async = nil
	c.mu.Unlock()
	if async != nil {
		close(async)
		c.wg.Wait()
	}
	// Stop the coalescer (final flush) before tearing the endpoint down so
	// buffered entries get their delivery attempt.
	if co := c.coal.Load(); co != nil {
		co.shutdown()
	}
	if sp := c.spill.Load(); sp != nil {
		sp.shutdown()
	}
	return c.ep.Close()
}
