package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Publish spill: graceful degradation for the client stub. When the service
// is unreachable (severed connection, open breaker, attempt timeout) a
// spill-enabled client absorbs publishes into a bounded in-memory buffer and
// a background loop redelivers them — oldest first, on the shared
// backoff schedule — once the service heals. Monitoring data keeps flowing
// through restarts and network blips instead of erroring back into the
// instrumented component, which has no better recourse than dropping it.
//
// Only transient transport failures spill (mercury.IsTransient); definitive
// server verdicts (handler error, unknown RPC, stopped service) drop the
// entry and surface on Errs as usual — redelivering those would loop forever.
// When the buffer is full the OLDEST entry is dropped (counted): under
// merge's last-writer-wins semantics newer monitoring data supersedes older.

var (
	telSpillDepth       = telemetry.Default().Gauge("core.client.spill.depth")
	telSpillTotal       = telemetry.Default().Counter("core.client.spill.buffered_total")
	telSpillRedelivered = telemetry.Default().Counter("core.client.spill.redelivered")
	telSpillDropped     = telemetry.Default().Counter("core.client.spill.dropped")
)

// DefaultSpillCapacity bounds the spill buffer when EnableSpill is given no
// explicit capacity.
const DefaultSpillCapacity = 1024

// SpillStats is a point-in-time view of a client's spill buffer.
type SpillStats struct {
	Enabled     bool
	Buffered    int // entries currently awaiting redelivery
	Capacity    int
	Spilled     int64 // entries that ever entered the buffer
	Redelivered int64
	Dropped     int64 // overflow evictions + definitive redelivery failures
}

type spillEntry struct {
	ns   Namespace
	node *conduit.Node
}

type spillState struct {
	c   *Client
	max int

	mu   sync.Mutex
	cond *sync.Cond
	buf  []spillEntry
	// headSeq counts every head removal (pop or overflow eviction) ever
	// performed, so a redelivery that peeked a group can tell how many of
	// those entries an overlapping eviction already removed (see popGroup).
	headSeq uint64

	closed bool
	stop   chan struct{}
	done   chan struct{}

	spilled, redelivered, dropped int64
}

// EnableSpill switches the client into graceful-degradation mode: publishes
// that fail with a transient transport error are buffered (up to capacity
// entries; <1 = DefaultSpillCapacity) and redelivered in order by a
// background loop once the service is reachable again. Call DrainSpill
// before Close to guarantee buffered entries were delivered.
func (c *Client) EnableSpill(capacity int) {
	if capacity < 1 {
		capacity = DefaultSpillCapacity
	}
	sp := &spillState{
		c:    c,
		max:  capacity,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	sp.cond = sync.NewCond(&sp.mu)
	if !c.spill.CompareAndSwap(nil, sp) {
		return // already enabled
	}
	go sp.redeliverLoop()
}

// Spill returns the spill buffer's current statistics (zero value when spill
// was never enabled).
func (c *Client) Spill() SpillStats {
	sp := c.spill.Load()
	if sp == nil {
		return SpillStats{}
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SpillStats{
		Enabled:     true,
		Buffered:    len(sp.buf),
		Capacity:    sp.max,
		Spilled:     sp.spilled,
		Redelivered: sp.redelivered,
		Dropped:     sp.dropped,
	}
}

// Degraded reports whether the client is currently operating in degraded
// mode (publishes buffered locally awaiting redelivery).
func (c *Client) Degraded() bool {
	sp := c.spill.Load()
	if sp == nil {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.buf) > 0
}

// DrainSpill blocks until every buffered publish has been redelivered (or
// dropped), or ctx expires — in which case it reports how many entries were
// still stranded. Call it before Close when buffered data must not be lost.
func (c *Client) DrainSpill(ctx context.Context) error {
	sp := c.spill.Load()
	if sp == nil {
		return nil
	}
	stopWatch := context.AfterFunc(ctx, func() {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	})
	defer stopWatch()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for len(sp.buf) > 0 && !sp.closed {
		if ctx.Err() != nil {
			return fmt.Errorf("soma: spill drain: %d entries still buffered: %w", len(sp.buf), ctx.Err())
		}
		sp.cond.Wait()
	}
	return nil
}

// add buffers one publish, evicting the oldest entry when full. Reports
// false when the spill has been shut down (the caller surfaces the original
// error instead).
func (sp *spillState) add(ns Namespace, n *conduit.Node) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return false
	}
	if len(sp.buf) >= sp.max {
		copy(sp.buf, sp.buf[1:])
		sp.buf = sp.buf[:len(sp.buf)-1]
		sp.headSeq++
		sp.dropped++
		telSpillDropped.Inc()
		telSpillDepth.Dec()
	}
	sp.buf = append(sp.buf, spillEntry{ns: ns, node: n})
	sp.spilled++
	telSpillTotal.Inc()
	telSpillDepth.Inc()
	sp.cond.Broadcast()
	return true
}

// pending reports the current buffer depth (ordering check on the publish
// path: while entries wait, new publishes must queue behind them).
func (sp *spillState) pending() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.buf)
}

// pop removes the head entry after a redelivery attempt resolved it.
func (sp *spillState) pop(redelivered bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.buf) == 0 {
		return
	}
	copy(sp.buf, sp.buf[1:])
	sp.buf = sp.buf[:len(sp.buf)-1]
	sp.headSeq++
	if redelivered {
		sp.redelivered++
		telSpillRedelivered.Inc()
	} else {
		sp.dropped++
		telSpillDropped.Inc()
	}
	telSpillDepth.Dec()
	sp.cond.Broadcast()
}

// peekGroup copies up to max head entries for a batched redelivery attempt,
// with the head sequence at peek time (popGroup's reference point).
func (sp *spillState) peekGroup(max int) ([]spillEntry, uint64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	n := len(sp.buf)
	if n > max {
		n = max
	}
	group := make([]spillEntry, n)
	copy(group, sp.buf[:n])
	return group, sp.headSeq
}

// popGroup removes the first n of the entries peeked at baseSeq after their
// batched redelivery succeeded. Entries an overflow eviction removed while
// the batch was in flight are skipped — they are gone from the buffer
// already (and were double-counted as dropped; delivery still happened
// exactly once, the stats are the only casualty of that race).
func (sp *spillState) popGroup(baseSeq uint64, n int) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	skip := int(sp.headSeq - baseSeq)
	if skip >= n {
		return
	}
	n -= skip
	if n > len(sp.buf) {
		n = len(sp.buf)
	}
	copy(sp.buf, sp.buf[n:])
	sp.buf = sp.buf[:len(sp.buf)-n]
	sp.headSeq += uint64(n)
	sp.redelivered += int64(n)
	telSpillRedelivered.Add(int64(n))
	telSpillDepth.Add(int64(-n))
	sp.cond.Broadcast()
}

// shutdown stops the redelivery loop. Entries still buffered stay counted in
// Buffered (callers wanting zero loss drain first).
func (sp *spillState) shutdown() {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return
	}
	sp.closed = true
	sp.cond.Broadcast()
	sp.mu.Unlock()
	close(sp.stop)
	<-sp.done
}

// redeliverLoop retries buffered entries on the shared backoff schedule.
// When the client has a working batch coalescer, groups of head entries are
// re-encoded into one batch frame and redelivered in a single round-trip —
// spill-drain-through-the-coalescer-encoding; otherwise (or to isolate a
// poisoned entry after a definitive batch failure) it falls back to head-
// at-a-time delivery: success or a definitive verdict pops the head (the
// latter also surfaces on Errs); transient failures back off and try again.
func (sp *spillState) redeliverLoop() {
	defer close(sp.done)
	bo := mercury.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	attempt := 0
	for {
		sp.mu.Lock()
		for len(sp.buf) == 0 && !sp.closed {
			sp.cond.Wait()
		}
		if sp.closed {
			sp.mu.Unlock()
			return
		}
		depth := len(sp.buf)
		sp.mu.Unlock()

		if co := sp.c.coal.Load(); co != nil && !sp.c.noBatch.Load() && depth > 1 {
			group, base := sp.peekGroup(co.cfg.MaxLeaves)
			frame := conduit.AppendBatchHeader(nil)
			for _, e := range group {
				frame = conduit.AppendBatchEntry(frame, string(e.ns), e.node)
			}
			// sendBatchWire, not sendBatch: a redelivery failure must leave
			// the entries where they are, never re-spill them.
			err := sp.c.sendBatchWire(frame, len(group))
			if err == nil {
				sp.popGroup(base, len(group))
				attempt = 0
				continue
			}
			if mercury.IsTransient(err) {
				t := time.NewTimer(bo.Delay(attempt))
				attempt++
				select {
				case <-sp.stop:
					t.Stop()
					return
				case <-t.C:
				}
				continue
			}
			// Definitive batch rejection (e.g. one poisoned entry failing
			// the whole frame, or an old server): fall through to the
			// per-entry path below to make progress entry by entry.
		}

		sp.mu.Lock()
		if len(sp.buf) == 0 {
			sp.mu.Unlock()
			continue
		}
		e := sp.buf[0]
		sp.mu.Unlock()

		err := sp.c.sendPublish(e.ns, e.node)
		switch {
		case err == nil:
			sp.pop(true)
			attempt = 0
		case !mercury.IsTransient(err):
			sp.pop(false)
			sp.c.reportAsyncError(fmt.Errorf("soma: spill redelivery dropped: %w", err))
			attempt = 0
		default:
			t := time.NewTimer(bo.Delay(attempt))
			attempt++
			select {
			case <-sp.stop:
				t.Stop()
				return
			case <-t.C:
			}
		}
	}
}
