package core

import (
	"math"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/tau"
	"github.com/hpcobs/gosoma/internal/workload"
)

func analysisFixture(t *testing.T) (Analysis, *Service) {
	t.Helper()
	svc := NewService(ServiceConfig{})
	t.Cleanup(func() { svc.Close() })
	return Analysis{Q: LocalQuerier{Service: svc}}, svc
}

func TestExecTimeFromEvents(t *testing.T) {
	a, svc := analysisFixture(t)
	n := conduit.NewNode()
	n.SetString("RP/task.000007/100.0000000", "launch_start")
	n.SetString("RP/task.000007/100.3500000", "exec_start")
	n.SetString("RP/task.000007/100.3600000", "rank_start")
	n.SetString("RP/task.000007/250.3600000", "rank_stop")
	n.SetString("RP/task.000007/250.3700000", "exec_stop")
	n.SetString("RP/task.000007/250.4400000", "launch_stop")
	svc.Publish(NSWorkflow, n, 0)

	uids, err := a.TaskUIDs()
	if err != nil || len(uids) != 1 || uids[0] != "task.000007" {
		t.Fatalf("uids = %v, %v", uids, err)
	}
	et, err := a.ExecTime("task.000007")
	if err != nil || math.Abs(et-150) > 1e-6 {
		t.Fatalf("exec time = %v, %v", et, err)
	}
	all, err := a.ExecTimes()
	if err != nil || len(all) != 1 {
		t.Fatalf("exec times = %v", all)
	}
	evs, _ := a.TaskEvents("task.000007")
	if len(evs) != 6 || evs[0].Name != "launch_start" || evs[5].Name != "launch_stop" {
		t.Fatalf("events = %v", evs)
	}
	if _, err := a.ExecTime("task.missing"); err == nil {
		t.Fatal("missing task should error")
	}
}

func TestThroughput(t *testing.T) {
	a, svc := analysisFixture(t)
	n := conduit.NewNode()
	n.SetInt("RP/summary/0.0000000/done", 0)
	n.SetInt("RP/summary/100.0000000/done", 20)
	svc.Publish(NSWorkflow, n, 0)
	tp, err := a.Throughput()
	if err != nil || math.Abs(tp-0.2) > 1e-9 {
		t.Fatalf("throughput = %v, %v", tp, err)
	}
	// Single snapshot → zero.
	a2, svc2 := analysisFixture(t)
	m := conduit.NewNode()
	m.SetInt("RP/summary/5.0/done", 3)
	svc2.Publish(NSWorkflow, m, 0)
	if tp, _ := a2.Throughput(); tp != 0 {
		t.Fatalf("single-point throughput = %v", tp)
	}
}

func TestMeanClusterUtil(t *testing.T) {
	a, svc := analysisFixture(t)
	n := conduit.NewNode()
	n.SetFloat("PROC/cn0001/10.0/CPU Util", 20)
	n.SetFloat("PROC/cn0001/20.0/CPU Util", 40) // latest for cn0001
	n.SetFloat("PROC/cn0002/20.0/CPU Util", 60)
	svc.Publish(NSHardware, n, 0)
	u, err := a.MeanClusterUtil()
	if err != nil || u != 50 {
		t.Fatalf("mean util = %v, %v", u, err)
	}
}

func TestTAUProfilesThroughService(t *testing.T) {
	a, svc := analysisFixture(t)
	model := workload.DefaultOpenFOAM()
	profs := model.RankBreakdown(4, 200, nil)
	plugin := tau.NewPlugin(func(n *conduit.Node) error {
		return svc.Publish(NSPerformance, n, 0)
	})
	var tauProfs []tau.Profile
	for _, p := range profs {
		tauProfs = append(tauProfs, tau.Profile{
			TaskUID: "task.000000", Host: "cn0001", Rank: p.Rank, Seconds: p.Times,
		})
	}
	if err := plugin.Report(tauProfs); err != nil {
		t.Fatal(err)
	}
	back, err := a.TAUProfiles()
	if err != nil || len(back) != 4 {
		t.Fatalf("profiles = %d, %v", len(back), err)
	}
	// Fig. 5 property: Recv+Waitall dominant in every recovered profile.
	for _, p := range back {
		if (p.Seconds["MPI_Recv"]+p.Seconds["MPI_Waitall"])/p.Total() < 0.3 {
			t.Fatalf("rank %d lost its MPI dominance: %v", p.Rank, p.Seconds)
		}
	}
}

func TestAdvisorSuggestRanks(t *testing.T) {
	ad := NewAdvisor()
	// The Fig. 4 shape: big gains to 82 ranks, marginal at 164 → suggest 82.
	model := workload.DefaultOpenFOAM()
	times := map[int]float64{}
	for _, r := range []int{20, 41, 82, 164} {
		times[r] = model.MeanExecTime(r, workload.MinNodesFor(r, 42))
	}
	if got := ad.SuggestRanks(times); got != 82 {
		t.Fatalf("suggested ranks = %d want 82 (times %v)", got, times)
	}
	if ad.SuggestRanks(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
	// Perfect scaling suggests the largest config.
	perfect := map[int]float64{1: 100, 2: 50, 4: 25}
	if got := ad.SuggestRanks(perfect); got != 4 {
		t.Fatalf("perfect scaling suggestion = %d", got)
	}
	// Zero-time guard.
	if got := ad.SuggestRanks(map[int]float64{1: 10, 2: 0}); got != 1 {
		t.Fatalf("degenerate suggestion = %d", got)
	}
}

func TestAdvisorTrainTasks(t *testing.T) {
	ad := NewAdvisor()
	// Low CPU utilization + free GPUs → double the training tasks.
	if got := ad.SuggestTrainTasks(1, 20, 6); got != 2 {
		t.Fatalf("suggestion = %d want 2", got)
	}
	if got := ad.SuggestTrainTasks(2, 20, 6); got != 4 {
		t.Fatalf("suggestion = %d want 4", got)
	}
	// Capped by available GPUs.
	if got := ad.SuggestTrainTasks(4, 20, 2); got != 6 {
		t.Fatalf("gpu-capped suggestion = %d want 6", got)
	}
	// Busy CPUs or no GPUs → unchanged.
	if got := ad.SuggestTrainTasks(2, 80, 6); got != 2 {
		t.Fatalf("busy suggestion = %d", got)
	}
	if got := ad.SuggestTrainTasks(2, 20, 0); got != 2 {
		t.Fatalf("no-gpu suggestion = %d", got)
	}
	if got := ad.SuggestTrainTasks(0, 20, 6); got < 1 {
		t.Fatalf("degenerate current = %d", got)
	}
}

func TestAdvisorCoresPerTask(t *testing.T) {
	ad := NewAdvisor()
	if got := ad.SuggestCoresPerTask(7, 15); got != 3 {
		t.Fatalf("idle cores suggestion = %d want 3", got)
	}
	if got := ad.SuggestCoresPerTask(7, 80); got != 7 {
		t.Fatalf("busy cores suggestion = %d", got)
	}
	if got := ad.SuggestCoresPerTask(1, 5); got != 1 {
		t.Fatalf("floor = %d", got)
	}
}

func TestAnalysisIgnoresMalformedLeaves(t *testing.T) {
	a, svc := analysisFixture(t)
	n := conduit.NewNode()
	n.SetString("RP/summary/not-a-timestamp/done", "nope")
	n.SetString("RP/task.000001/not-a-ts", "launch_start")
	n.SetInt("RP/task.000001/5.0", 7) // int where event string expected
	n.SetFloat("PROC/cnY/bogus/CPU Util", 10)
	svc.Publish(NSWorkflow, n, 0)
	svc.Publish(NSHardware, n, 0)
	if s, err := a.WorkflowSeries(); err != nil || len(s) != 0 {
		t.Fatalf("series = %v, %v", s, err)
	}
	evs, err := a.TaskEvents("task.000001")
	if err != nil || len(evs) != 0 {
		t.Fatalf("events = %v", evs)
	}
	series, err := a.CPUUtilSeries("cnY")
	if err != nil || len(series) != 0 {
		t.Fatalf("util series = %v", series)
	}
}

func TestUtilImbalance(t *testing.T) {
	a, svc := analysisFixture(t)
	n := conduit.NewNode()
	// Host A averages 80, host B averages 20 → stddev 30.
	n.SetFloat("PROC/cnA/10.0/CPU Util", 70)
	n.SetFloat("PROC/cnA/20.0/CPU Util", 90)
	n.SetFloat("PROC/cnB/10.0/CPU Util", 10)
	n.SetFloat("PROC/cnB/20.0/CPU Util", 30)
	svc.Publish(NSHardware, n, 0)
	imb, err := a.UtilImbalance(0, 0)
	if err != nil || math.Abs(imb-30) > 1e-9 {
		t.Fatalf("imbalance = %v, %v", imb, err)
	}
	// Windowed: only the t=10 samples → means 70 and 10 → stddev 30.
	imb, err = a.UtilImbalance(5, 15)
	if err != nil || math.Abs(imb-30) > 1e-9 {
		t.Fatalf("windowed imbalance = %v, %v", imb, err)
	}
	if _, err := a.UtilImbalance(1000, 2000); err == nil {
		t.Fatal("empty window should error")
	}
}
