package core

import (
	"errors"
	"math"
	"testing"

	"github.com/hpcobs/gosoma/internal/des"
)

func TestAppReporterRoundTrip(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	rep, err := NewAppReporter(LocalPublisher{Service: svc}, eng, "task.000042")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		eng.RunUntil(float64(i+1) * 10)
		if err := rep.Report("atom_timesteps", float64(i)*1e6); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Reported() != 5 {
		t.Fatalf("reported = %d", rep.Reported())
	}
	a := Analysis{Q: LocalQuerier{Service: svc}}
	uids, err := a.FOMTasks()
	if err != nil || len(uids) != 1 || uids[0] != "task.000042" {
		t.Fatalf("fom tasks = %v, %v", uids, err)
	}
	series, err := a.FOMSeries("task.000042", "atom_timesteps")
	if err != nil || len(series) != 5 {
		t.Fatalf("series = %v, %v", series, err)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Time <= series[i-1].Time {
			t.Fatal("series not time ordered")
		}
	}
	// 1e6 units per 10 s = 1e5/s.
	rate, err := a.FOMRate("task.000042", "atom_timesteps")
	if err != nil || math.Abs(rate-1e5) > 1 {
		t.Fatalf("rate = %v, %v", rate, err)
	}
}

func TestAppReporterReportMany(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	rep, _ := NewAppReporter(LocalPublisher{Service: svc}, eng, "task.000001")
	if err := rep.ReportMany(map[string]float64{"loss": 0.5, "accuracy": 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := rep.ReportMany(nil); err != nil {
		t.Fatal("empty ReportMany should be a no-op")
	}
	if rep.Reported() != 1 {
		t.Fatalf("reported = %d", rep.Reported())
	}
	a := Analysis{Q: LocalQuerier{Service: svc}}
	for _, metric := range []string{"loss", "accuracy"} {
		s, err := a.FOMSeries("task.000001", metric)
		if err != nil || len(s) != 1 {
			t.Fatalf("%s series = %v, %v", metric, s, err)
		}
	}
}

func TestAppReporterValidation(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	if _, err := NewAppReporter(nil, eng, "t"); err == nil {
		t.Fatal("nil publisher accepted")
	}
	if _, err := NewAppReporter(LocalPublisher{Service: svc}, eng, ""); err == nil {
		t.Fatal("empty task uid accepted")
	}
	rep, _ := NewAppReporter(LocalPublisher{Service: svc}, eng, "t")
	if err := rep.Report("", 1); err == nil {
		t.Fatal("empty metric accepted")
	}
	if err := rep.ReportMany(map[string]float64{"": 1}); err == nil {
		t.Fatal("empty metric in batch accepted")
	}
}

func TestAppReporterPublishFailure(t *testing.T) {
	eng := des.NewEngine()
	rep, _ := NewAppReporter(failingPub{err: errors.New("down")}, eng, "t")
	if err := rep.Report("m", 1); err == nil {
		t.Fatal("publish failure swallowed")
	}
	if rep.Reported() != 0 {
		t.Fatal("failed publish counted")
	}
}

func TestFOMRateDegenerate(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	a := Analysis{Q: LocalQuerier{Service: svc}}
	if _, err := a.FOMRate("nobody", "m"); err == nil {
		t.Fatal("rate on missing series should error")
	}
	rep, _ := NewAppReporter(LocalPublisher{Service: svc}, eng, "t")
	rep.Report("m", 1) // single point, zero span
	if _, err := a.FOMRate("t", "m"); err == nil {
		t.Fatal("single-point rate should error")
	}
}
