package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// A spill-enabled client must absorb publishes across a service restart and
// redeliver every one of them once the service is back.
func TestSpillRidesOutServiceRestart(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableSpill(64)

	pub := func(path string, v float64) {
		n := conduit.NewNode()
		n.SetFloat(path, v)
		if err := client.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %s: %v", path, err)
		}
	}
	pub("before/outage", 1)

	svc.Close()
	// These publishes hit a dead service: the client degrades instead of
	// erroring, and buffers them for redelivery.
	pub("during/outage/a", 2)
	pub("during/outage/b", 3)
	if !client.Degraded() {
		t.Fatal("client not degraded while the service is down")
	}
	if st := client.Spill(); st.Buffered != 2 || st.Spilled != 2 {
		t.Fatalf("spill stats = %+v, want 2 buffered / 2 spilled", st)
	}

	svc2 := NewService(ServiceConfig{})
	if _, err := svc2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer svc2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := client.DrainSpill(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if client.Degraded() {
		t.Fatal("client still degraded after drain")
	}
	st := client.Spill()
	if st.Redelivered != 2 || st.Dropped != 0 {
		t.Fatalf("spill stats after drain = %+v, want 2 redelivered / 0 dropped", st)
	}
	// The buffered publishes made it into the restarted service's tree.
	tree, err := svc2.Query(NSWorkflow, "during/outage")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tree.Float("a"); !ok || v != 2 {
		t.Fatalf("redelivered leaf a = %v (%v)", v, ok)
	}
	if v, ok := tree.Float("b"); !ok || v != 3 {
		t.Fatalf("redelivered leaf b = %v (%v)", v, ok)
	}
}

// A full spill buffer evicts the oldest entry (newer monitoring data wins).
func TestSpillOverflowDropsOldest(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableSpill(2)
	svc.Close()

	for i := 0; i < 3; i++ {
		n := conduit.NewNode()
		n.SetInt("leaf", int64(i))
		if err := client.Publish(NSWorkflow, n); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	st := client.Spill()
	if st.Buffered != 2 || st.Spilled != 3 || st.Dropped != 1 {
		t.Fatalf("spill stats = %+v, want buffered=2 spilled=3 dropped=1", st)
	}
}

// soma.health must report service liveness and keep serving the client-side
// half when the service is gone.
func TestHealthReport(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableSpill(8)

	n := conduit.NewNode()
	n.SetFloat("x", 1)
	if err := client.Publish(NSWorkflow, n); err != nil {
		t.Fatal(err)
	}

	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q, want ok", h.Status)
	}
	if h.Publishes != 1 {
		t.Fatalf("publishes = %d, want 1", h.Publishes)
	}
	if h.UptimeSec < 0 {
		t.Fatalf("uptime = %v", h.UptimeSec)
	}
	if h.Breaker != "disabled" {
		t.Fatalf("breaker = %q, want disabled under the default policy", h.Breaker)
	}
	if !h.Spill.Enabled || h.Degraded {
		t.Fatalf("spill half wrong: %+v", h)
	}

	// A shut-down (but still listening) service reports "stopped".
	if err := client.Shutdown(); err != nil {
		t.Fatal(err)
	}
	h, err = client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "stopped" {
		t.Fatalf("status = %q, want stopped", h.Status)
	}

	// A dead service still yields the local half, marked unreachable.
	svc.Close()
	h, err = client.Health()
	if err == nil {
		t.Fatal("health against a closed service reported no error")
	}
	if h.Status != "unreachable" || h.Err == "" {
		t.Fatalf("report = %+v, want unreachable with an error", h)
	}
	if h.Breaker == "" || !h.Spill.Enabled {
		t.Fatalf("local half missing from unreachable report: %+v", h)
	}

	var sb strings.Builder
	RenderHealth(&sb, h)
	if !strings.Contains(sb.String(), "unreachable") {
		t.Fatalf("rendered health missing status: %q", sb.String())
	}
}
