package core

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/procfs"
)

// Publisher is the outbound half of the SOMA client API that collectors
// need. *Client implements it (RPC path); LocalPublisher implements it for
// in-process wiring. Published trees are handed over: the service retains
// them by reference (history ring, merge snapshots), so callers must build
// a fresh tree per publish and never mutate one after publishing — the
// collectors in this file do exactly that.
type Publisher interface {
	Publish(ns Namespace, n *conduit.Node) error
}

// LocalPublisher publishes straight into a service, bypassing RPC — the
// "local function call" flavour of the client stub.
type LocalPublisher struct{ Service *Service }

// Publish ingests directly.
func (lp LocalPublisher) Publish(ns Namespace, n *conduit.Node) error {
	return lp.Service.Publish(ns, n, 0)
}

// DeltaQuerier is the inbound, change-aware half of the client API that
// repeat-poll consumers (DeltaPoller, somatop, somactl watch) use: a query
// that also reports whether the namespace moved since the previous call for
// the same (ns, path). *Client implements it over soma.query.delta;
// LocalDeltaQuerier implements it for in-process wiring. Returned trees are
// shared, read-only snapshots.
type DeltaQuerier interface {
	QueryDelta(ns Namespace, path string) (tree *conduit.Node, changed bool, err error)
}

// LocalDeltaQuerier answers delta queries straight from a service's
// snapshots, with the same changed/unchanged semantics as the RPC path but
// no encoding at all.
type LocalDeltaQuerier struct {
	Service *Service

	mu   sync.Mutex
	memo map[string][2]uint64 // (epoch, gen) last seen per ns\x00path
}

// QueryDelta reports changed=true on the first call for a (ns, path) and
// whenever the namespace's snapshot stamp moved since the previous call.
func (lq *LocalDeltaQuerier) QueryDelta(ns Namespace, path string) (*conduit.Node, bool, error) {
	if lq.Service.Stopped() {
		return nil, false, ErrServiceStopped
	}
	in, err := lq.Service.instanceFor(ns)
	if err != nil {
		return nil, false, err
	}
	sn := in.currentSnapshot()
	stamp := [2]uint64{sn.epoch, sn.gen}
	key := string(ns) + "\x00" + path
	lq.mu.Lock()
	prev, seen := lq.memo[key]
	if lq.memo == nil {
		lq.memo = map[string][2]uint64{}
	}
	lq.memo[key] = stamp
	lq.mu.Unlock()
	sub, ok := sn.tree.Get(path)
	if !ok {
		sub = conduit.NewNode()
	}
	return sub, !seen || prev != stamp, nil
}

// ---------------------------------------------------------------------------
// RP monitor client: one per workflow (paper Fig. 2, square 3). It
// periodically reads the profile stream RP generates, summarizes workflow
// state, and publishes to the workflow namespace.

// RPMonitorConfig configures an RPMonitor.
type RPMonitorConfig struct {
	Runtime  des.Runtime
	Profiler *pilot.Profiler
	Pub      Publisher
	// IntervalSec is the monitoring frequency (60 s in most paper runs).
	IntervalSec float64
}

// RPMonitor is the workflow-namespace collector daemon.
type RPMonitor struct {
	cfg    RPMonitorConfig
	mu     sync.Mutex
	cursor int
	// current state per entity, for summary counts
	state map[string]pilot.State
	// stateEntry holds when each entity entered its current state, and
	// durations accumulates per-state dwell times — the monitor
	// "calculates the time spent in each state" (paper §3.1).
	stateEntry map[string]float64
	durations  map[string]map[pilot.State]float64
	ticks      int64
	errs       int64
	stopFn     func()
}

// NewRPMonitor builds the daemon; call Start.
func NewRPMonitor(cfg RPMonitorConfig) (*RPMonitor, error) {
	if cfg.Runtime == nil || cfg.Profiler == nil || cfg.Pub == nil {
		return nil, fmt.Errorf("soma: RPMonitorConfig requires Runtime, Profiler and Pub")
	}
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 60
	}
	return &RPMonitor{
		cfg:        cfg,
		state:      map[string]pilot.State{},
		stateEntry: map[string]float64{},
		durations:  map[string]map[pilot.State]float64{},
	}, nil
}

// Start begins periodic collection; the returned stop function halts it.
// One final collection runs immediately on stop so shutdown does not lose
// the tail of the workflow.
func (m *RPMonitor) Start() (stop func()) {
	m.stopFn = des.EveryRT(m.cfg.Runtime, m.cfg.IntervalSec, func() bool {
		m.Collect()
		return true
	})
	return func() {
		m.stopFn()
		m.Collect()
	}
}

// Ticks returns how many collections ran; Errs how many failed to publish.
func (m *RPMonitor) Ticks() (ticks, errs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks, m.errs
}

// Interval returns the monitor's publish cadence in seconds. Collectors are
// stream sources: each tick's publish is fanned out to live subscribers, so
// the cadence bounds how stale a subscriber's view can be.
func (m *RPMonitor) Interval() float64 { return m.cfg.IntervalSec }

// Collect performs one gather-summarize-publish cycle. It is exported so
// simulated experiments and tests can force a cycle deterministically.
func (m *RPMonitor) Collect() {
	m.mu.Lock()
	events, cursor := m.cfg.Profiler.Since(m.cursor)
	m.cursor = cursor
	now := m.cfg.Runtime.Now()

	tree := conduit.NewNode()
	// uniquePath disambiguates entries that share a timestamp (several state
	// transitions can be recorded in the same instant) so nothing is lost in
	// the merged tree.
	uniquePath := func(base string) string {
		if !tree.Has(base) {
			return base
		}
		for k := 1; ; k++ {
			p := fmt.Sprintf("%s#%d", base, k)
			if !tree.Has(p) {
				return p
			}
		}
	}
	touched := map[string]bool{}
	for _, ev := range events {
		base := fmt.Sprintf("RP/%s", ev.UID)
		ts := fmt.Sprintf("%.7f", ev.Time)
		if ev.Name == "state" {
			// Account the dwell time in the state being left.
			if prev, ok := m.state[ev.UID]; ok {
				d := m.durations[ev.UID]
				if d == nil {
					d = map[pilot.State]float64{}
					m.durations[ev.UID] = d
				}
				d[prev] += ev.Time - m.stateEntry[ev.UID]
				touched[ev.UID] = true
			}
			m.state[ev.UID] = ev.State
			m.stateEntry[ev.UID] = ev.Time
			tree.SetString(uniquePath(base+"/states/"+ts), string(ev.State))
		} else {
			// Listing 1 layout: RP/task.000000/<timestamp>: "<event>"
			tree.SetString(uniquePath(base+"/"+ts), ev.Name)
		}
	}
	// Publish cumulative per-state durations for every entity that
	// transitioned this tick (merge semantics overwrite older values).
	for uid := range touched {
		for st, d := range m.durations[uid] {
			tree.SetFloat(fmt.Sprintf("RP/%s/state_durations/%s", uid, st), d)
		}
	}

	// Workflow summary: counts of pending/running/completed tasks — "the
	// total number of pending tasks, completed tasks, and so on".
	var pending, running, done, failed, canceled int
	for uid, st := range m.state {
		if len(uid) < 5 || uid[:5] != "task." {
			continue
		}
		switch st {
		case pilot.StateDone:
			done++
		case pilot.StateFailed:
			failed++
		case pilot.StateCanceled:
			canceled++
		case pilot.StateExecuting, pilot.StateScheduled, pilot.StateStagingOutput:
			running++
		default:
			pending++
		}
	}
	sum := fmt.Sprintf("RP/summary/%.7f", now)
	tree.SetInt(sum+"/pending", int64(pending))
	tree.SetInt(sum+"/running", int64(running))
	tree.SetInt(sum+"/done", int64(done))
	tree.SetInt(sum+"/failed", int64(failed))
	tree.SetInt(sum+"/canceled", int64(canceled))
	m.ticks++
	pub := m.cfg.Pub
	m.mu.Unlock()

	if err := pub.Publish(NSWorkflow, tree); err != nil {
		m.mu.Lock()
		m.errs++
		m.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Hardware monitor client: one per compute node (paper Fig. 2, squares 4),
// running on a reserved core, publishing /proc data to the hardware
// namespace.

// HWMonitorConfig configures a HWMonitor.
type HWMonitorConfig struct {
	Runtime des.Runtime
	// Source supplies samples: a procfs.Sampler over a real or synthetic
	// source.
	Source interface {
		Sample() (procfs.Sample, error)
		Hostname() string
	}
	Pub Publisher
	// IntervalSec is the sampling period (30 s in the OpenFOAM runs, 60 s
	// in the DDMD runs).
	IntervalSec float64
}

// HWMonitor is the hardware-namespace collector daemon.
type HWMonitor struct {
	cfg   HWMonitorConfig
	mu    sync.Mutex
	ticks int64
	errs  int64
}

// NewHWMonitor builds the daemon; call Start.
func NewHWMonitor(cfg HWMonitorConfig) (*HWMonitor, error) {
	if cfg.Runtime == nil || cfg.Source == nil || cfg.Pub == nil {
		return nil, fmt.Errorf("soma: HWMonitorConfig requires Runtime, Source and Pub")
	}
	if cfg.IntervalSec <= 0 {
		cfg.IntervalSec = 60
	}
	return &HWMonitor{cfg: cfg}, nil
}

// Start begins periodic sampling; the returned stop function halts it.
func (m *HWMonitor) Start() (stop func()) {
	return des.EveryRT(m.cfg.Runtime, m.cfg.IntervalSec, func() bool {
		m.Collect()
		return true
	})
}

// Ticks returns how many samples ran; Errs how many failed.
func (m *HWMonitor) Ticks() (ticks, errs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks, m.errs
}

// Interval returns the sampling cadence in seconds (see RPMonitor.Interval).
func (m *HWMonitor) Interval() float64 { return m.cfg.IntervalSec }

// Collect performs one sample-and-publish cycle.
func (m *HWMonitor) Collect() {
	sample, err := m.cfg.Source.Sample()
	if err == nil {
		err = m.cfg.Pub.Publish(NSHardware, sample.ToConduit())
	}
	m.mu.Lock()
	m.ticks++
	if err != nil {
		m.errs++
	}
	m.mu.Unlock()
}
