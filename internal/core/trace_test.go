package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// keepAllTraces points the Default registry at a fresh trace store that
// keeps every finished trace, so cross-process assertions are deterministic;
// the returned func restores the default-bounded store.
func keepAllTraces() func() {
	telemetry.Default().Configure(telemetry.Options{TraceStore: &telemetry.TraceStoreOptions{
		HeadSampleEvery: 1, TailMinSamples: 1 << 30,
	}})
	return func() {
		telemetry.Default().Configure(telemetry.Options{TraceStore: &telemetry.TraceStoreOptions{}})
	}
}

// TestTracePipelineCrossProcess is the end-to-end regression for the trace
// pipeline: publishes traced through somabench-load-style batching (client
// coalescer → wire → batch stripe append) must assemble into ONE connected
// trace — client-registry and server-registry spans under the same trace id —
// retrievable via soma.trace.list/get and rendered by the waterfall.
func TestTracePipelineCrossProcess(t *testing.T) {
	defer keepAllTraces()()

	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("inproc://trace-regression")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A long age bound keeps all publishes in one flush, so the run produces
	// exactly one batch trace with a known coalesced-entry count.
	c.EnableBatch(BatchConfig{MaxAge: time.Minute})

	const publishes = 5
	for i := 0; i < publishes; i++ {
		n := conduit.NewNode()
		n.SetFloat("LOAD/cn0001/load", float64(i))
		if err := c.Publish(NSHardware, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	ts := telemetry.Default().Traces()
	var batchTrace uint64
	for _, sum := range ts.List() {
		if sum.Root == "soma.client.publish.batch" {
			batchTrace = sum.TraceID
			break
		}
	}
	if batchTrace == 0 {
		t.Fatalf("no kept trace rooted at the client batch publish; kept: %+v", ts.List())
	}

	// Fetch the assembled trace back through the RPC plane, like somactl.
	tr, err := c.Trace(batchTrace)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != "soma.client.publish.batch" {
		t.Fatalf("root = %q", tr.Root)
	}
	var ingest *telemetry.SpanSnapshot
	for i := range tr.Spans {
		if tr.Spans[i].Name == "core.stripe.append.batch" {
			ingest = &tr.Spans[i]
		}
	}
	if ingest == nil {
		t.Fatalf("trace is not connected across client and server: no stripe-append span in %+v", tr.Spans)
	}
	if ingest.TraceID != batchTrace {
		t.Fatalf("ingest span trace = %x, want %x", ingest.TraceID, batchTrace)
	}
	if ingest.Parent == 0 {
		t.Fatal("server-side span lost its client-side parent")
	}
	if ingest.Count != publishes {
		t.Fatalf("ingest span count = %d, want %d coalesced publishes", ingest.Count, publishes)
	}

	// The list RPC sees it too, and the waterfall renders every span.
	sums, err := c.Traces(10, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		if s.TraceID == batchTrace {
			found = true
		}
	}
	if !found {
		t.Fatalf("soma.trace.list does not include %x", batchTrace)
	}
	var sb strings.Builder
	RenderTraceWaterfall(&sb, tr, 0)
	if !strings.Contains(sb.String(), "core.stripe.append.batch") || !strings.Contains(sb.String(), "x5") {
		t.Fatalf("waterfall missing the ingest row:\n%s", sb.String())
	}
}

func TestTraceGetNotFound(t *testing.T) {
	defer keepAllTraces()()
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("inproc://trace-notfound")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Trace(0xdeadbeef); !errors.Is(err, ErrTraceNotFound) {
		t.Fatalf("err = %v, want ErrTraceNotFound", err)
	}
}

func TestTraceCodecRoundTrip(t *testing.T) {
	base := time.Unix(0, 1_000_000_000)
	tr := telemetry.Trace{
		TraceID: 0xab12, Root: "op", Start: base, Dur: 4 * time.Millisecond,
		Err: true, Reason: telemetry.KeepError, DroppedSpans: 3,
		Spans: []telemetry.SpanSnapshot{
			{TraceID: 0xab12, SpanID: 1, Name: "op", Start: base, Dur: 4 * time.Millisecond, Err: true},
			{TraceID: 0xab12, SpanID: 2, Parent: 1, Name: "child", Start: base.Add(time.Millisecond), Dur: time.Millisecond, Count: 42},
		},
	}
	dec, ok := decodeTrace(mustReencode(t, encodeTrace(tr)))
	if !ok {
		t.Fatal("decodeTrace reported not found")
	}
	if dec.TraceID != tr.TraceID || dec.Root != tr.Root || dec.Dur != tr.Dur ||
		!dec.Err || dec.Reason != tr.Reason || dec.DroppedSpans != 3 {
		t.Fatalf("trace header mismatch: %+v", dec)
	}
	if len(dec.Spans) != 2 {
		t.Fatalf("spans = %d", len(dec.Spans))
	}
	if dec.Spans[1].Count != 42 || dec.Spans[1].Parent != 1 || !dec.Spans[0].Err {
		t.Fatalf("span fields lost: %+v", dec.Spans)
	}

	sums := []telemetry.TraceSummary{
		{TraceID: 0xab12, Root: "op", Start: base, Dur: time.Millisecond, Spans: 2, Err: true, Reason: telemetry.KeepError},
	}
	got := decodeTraceSummaries(mustReencode(t, encodeTraceSummaries(sums)))
	if len(got) != 1 || got[0] != sums[0] {
		t.Fatalf("summary round trip: %+v", got)
	}
}

// mustReencode round-trips a node through its wire encoding, the way the RPC
// plane does.
func mustReencode(t *testing.T, n *conduit.Node) *conduit.Node {
	t.Helper()
	out, err := conduit.DecodeBinary(n.EncodeBinary())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRenderTraceWaterfallGolden(t *testing.T) {
	base := time.Unix(0, 1_000_000_000)
	tr := telemetry.Trace{
		TraceID: 0xab, Root: "soma.client.publish.batch",
		Start: base, Dur: 4 * time.Millisecond, Reason: telemetry.KeepTail,
		Spans: []telemetry.SpanSnapshot{
			{TraceID: 0xab, SpanID: 1, Name: "soma.client.publish.batch", Start: base, Dur: 4 * time.Millisecond},
			{TraceID: 0xab, SpanID: 2, Parent: 1, Name: "mercury.client.call", Start: base.Add(time.Millisecond), Dur: 2 * time.Millisecond},
			{TraceID: 0xab, SpanID: 3, Parent: 2, Name: "core.stripe.append.batch", Start: base.Add(2 * time.Millisecond), Dur: time.Millisecond, Count: 128},
		},
	}
	var sb strings.Builder
	RenderTraceWaterfall(&sb, tr, 24)
	want := `trace 00000000000000ab  root=soma.client.publish.batch  dur=4ms  spans=3  kept=tail
  soma.client.publish.batch             4ms  [########################]
    mercury.client.call                 2ms  [      ############      ]
      core.stripe.append.batch          1ms  [            ######      ] x128
`
	if got := sb.String(); got != want {
		t.Errorf("waterfall mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderTraceWaterfallError(t *testing.T) {
	base := time.Unix(0, 1_000_000_000)
	tr := telemetry.Trace{
		TraceID: 0xcd, Root: "soma.client.publish", Start: base, Dur: time.Millisecond,
		Err: true, Reason: telemetry.KeepError, DroppedSpans: 2,
		Spans: []telemetry.SpanSnapshot{
			{TraceID: 0xcd, SpanID: 1, Name: "soma.client.publish", Start: base, Dur: time.Millisecond, Err: true},
		},
	}
	var sb strings.Builder
	RenderTraceWaterfall(&sb, tr, 24)
	got := sb.String()
	if !strings.Contains(got, "kept=error  ERR") {
		t.Errorf("error trace not flagged in header:\n%s", got)
	}
	if !strings.Contains(got, "(2 more spans dropped by the per-trace cap)") {
		t.Errorf("dropped-span note missing:\n%s", got)
	}
	if !strings.Contains(got, "] ERR") {
		t.Errorf("failed span row not flagged:\n%s", got)
	}
}

func TestRenderTraceListEmpty(t *testing.T) {
	var sb strings.Builder
	RenderTraceList(&sb, nil)
	if got := sb.String(); got != "traces:    (none kept)\n" {
		t.Errorf("empty list = %q", got)
	}
}

func TestProfileRPC(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("inproc://profile-rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Snapshot profiles return immediately with a gzipped pprof protobuf.
	p, err := c.Profile("goroutine", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) < 2 || p.Data[0] != 0x1f || p.Data[1] != 0x8b {
		t.Fatalf("profile bytes are not gzip-framed pprof: % x...", p.Data[:min(8, len(p.Data))])
	}
	if p.Kind != "goroutine" {
		t.Fatalf("kind = %q", p.Kind)
	}

	// A short CPU capture samples for the requested window.
	p, err = c.Profile("cpu", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) < 2 || p.Data[0] != 0x1f || p.Data[1] != 0x8b {
		t.Fatal("cpu profile bytes are not gzip-framed pprof")
	}
	if p.Duration < 40*time.Millisecond {
		t.Fatalf("cpu capture window = %v, want ~50ms", p.Duration)
	}

	if _, err := c.Profile("bogus", 0); err == nil {
		t.Fatal("bogus profile kind accepted")
	}
}

func TestProfileBusyGate(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("inproc://profile-busy")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	svc.profileBusy.Store(true)
	if _, err := c.Profile("goroutine", 0); err == nil || !strings.Contains(err.Error(), "already in progress") {
		t.Fatalf("concurrent capture err = %v, want busy rejection", err)
	}
	svc.profileBusy.Store(false)
	if _, err := c.Profile("goroutine", 0); err != nil {
		t.Fatalf("capture after gate release failed: %v", err)
	}
}

// TestProfileNotRetried pins the satellite fix: soma.profile must never ride
// in an idempotent set, so CallPolicy retries cannot double-start a capture.
func TestProfileNotRetried(t *testing.T) {
	for _, name := range IdempotentRPCs() {
		if name == RPCProfile {
			t.Fatal("soma.profile listed as idempotent")
		}
	}
	// The read-only surface, by contrast, is present.
	found := map[string]bool{}
	for _, name := range IdempotentRPCs() {
		found[name] = true
	}
	for _, want := range []string{RPCTraceList, RPCTraceGet, RPCTelemetry, RPCQuery} {
		if !found[want] {
			t.Fatalf("%s missing from the idempotent read surface", want)
		}
	}
}

// BenchmarkTraceTailSampler is the sampler hot path in isolation: start and
// end a root span per op against a registry with a default-bounded trace
// store, so the cost of trace assembly + the cached-threshold tail decision
// shows up as ns/op (scripts/bench_baseline.json gates its growth).
func BenchmarkTraceTailSampler(b *testing.B) {
	reg := telemetry.NewRegistry()
	reg.Configure(telemetry.Options{TraceStore: &telemetry.TraceStoreOptions{}})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_, sp := reg.StartSpan(context.Background(), "bench.sampled.op")
			sp.End()
		}
	})
}
