package core

import (
	"strings"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// fakeQuerier serves canned trees keyed by "<namespace>|<path>"; unknown
// paths return an empty tree, the way a live service answers a query for a
// path nothing has published under.
type fakeQuerier map[string]*conduit.Node

func (f fakeQuerier) Query(ns Namespace, path string) (*conduit.Node, error) {
	if n, ok := f[string(ns)+"|"+path]; ok {
		return n, nil
	}
	return conduit.NewNode(), nil
}

func renderFixture() fakeQuerier {
	summary := conduit.NewNode()
	summary.SetInt("10.0/pending", 4)
	summary.SetInt("10.0/running", 2)
	summary.SetInt("10.0/done", 1)
	summary.SetInt("20.0/pending", 0)
	summary.SetInt("20.0/running", 2)
	summary.SetInt("20.0/done", 5)
	summary.SetInt("20.0/failed", 1)

	rp := conduit.NewNode()
	rp.Fetch("summary")
	rp.Fetch("task.000001")

	durations := conduit.NewNode()
	durations.SetFloat(string(pilot.StateAgentScheduling), 3.0)

	proc := conduit.NewNode()
	proc.Fetch("cn01")
	proc.Fetch("cn02")
	cn01 := conduit.NewNode()
	cn01.SetFloat("10.0/CPU Util", 50)
	cn02 := conduit.NewNode()
	cn02.SetFloat("10.0/CPU Util", 100)

	return fakeQuerier{
		string(NSWorkflow) + "|RP/summary":                     summary,
		string(NSWorkflow) + "|RP":                             rp,
		string(NSWorkflow) + "|RP/task.000001/state_durations": durations,
		string(NSHardware) + "|PROC":                           proc,
		string(NSHardware) + "|PROC/cn01":                      cn01,
		string(NSHardware) + "|PROC/cn02":                      cn02,
	}
}

func TestRenderSummaryGolden(t *testing.T) {
	a := Analysis{Q: renderFixture()}
	stats := map[Namespace]InstanceStats{
		NSHardware: {Namespace: NSHardware, Ranks: 4, Stripes: 2, Publishes: 128, Leaves: 1024, BytesIn: 4096},
	}
	var sb strings.Builder
	RenderSummary(&sb, a, stats)
	want := `workflow   pending=0 running=2 done=5 failed=1 canceled=0 (2 snapshots)
throughput 0.400 tasks/s
queue wait mean=3.0s max=3.0s (n=1)

hardware   2 node(s):
  cn01       [|||||||||||||||               ]  50.0%
  cn02       [||||||||||||||||||||||||||||||] 100.0%

service instances:
  hardware     ranks=4   stripes=2  publishes=128      leaves=1024      bytes_in=4096
`
	if got := sb.String(); got != want {
		t.Errorf("RenderSummary mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderSummaryNoData(t *testing.T) {
	var sb strings.Builder
	RenderSummary(&sb, Analysis{Q: fakeQuerier{}}, nil)
	if got := sb.String(); got != "workflow   (no data)\n" {
		t.Errorf("empty render = %q", got)
	}
}

func TestRenderTelemetryGolden(t *testing.T) {
	snap := &telemetry.Snapshot{
		Counters: map[string]int64{"mercury.calls_served": 42},
		Gauges:   map[string]float64{"zmq.queue.sched.depth": 3},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"mercury.server.latency.soma.publish": {
				Count: 7, Max: 30 * time.Microsecond,
				P50: 8 * time.Microsecond, P95: 25 * time.Microsecond, P99: 29 * time.Microsecond,
			},
		},
	}
	var sb strings.Builder
	RenderTelemetry(&sb, snap)
	want := `latency:
  mercury.server.latency.soma.publish      n=7        p50=8µs        p95=25µs       p99=29µs       max=30µs
gauges:
  zmq.queue.sched.depth                    3
counters:
  mercury.calls_served                     42
`
	if got := sb.String(); got != want {
		t.Errorf("RenderTelemetry mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderSpansLimit(t *testing.T) {
	spans := []telemetry.SpanSnapshot{
		{TraceID: 1, SpanID: 2, Name: "old", Dur: time.Millisecond},
		{TraceID: 3, SpanID: 4, Name: "mid", Dur: time.Millisecond},
		{TraceID: 5, SpanID: 6, Parent: 4, Name: "new", Dur: time.Microsecond},
	}
	var sb strings.Builder
	RenderSpans(&sb, spans, 2)
	got := sb.String()
	if strings.Contains(got, "old") {
		t.Error("limit did not drop the oldest span")
	}
	if !strings.Contains(got, "mid") || !strings.Contains(got, "new") {
		t.Errorf("newest spans missing:\n%s", got)
	}
	if !strings.Contains(got, "parent=0000000000000004") {
		t.Errorf("parent id not rendered:\n%s", got)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	// A monotone ramp spans the rune range, lowest to highest.
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp = %q", got)
	}
	// A flat series renders at the lowest level.
	if got := Sparkline([]float64{5, 5, 5}, 0); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	// Width keeps the newest values.
	if got := Sparkline([]float64{9, 9, 0, 7}, 2); got != "▁█" {
		t.Errorf("windowed = %q", got)
	}
}

func TestRenderAlertsGolden(t *testing.T) {
	var sb strings.Builder
	RenderAlerts(&sb, nil, nil)
	if sb.String() != "alerts:    (no rules)\n" {
		t.Errorf("empty alerts = %q", sb.String())
	}

	sb.Reset()
	rules := []AlertRule{{
		Name: "cpu-hot", NS: NSHardware, Pattern: "PROC/*/CPU Util",
		Op: ">", Threshold: 90, WindowSec: 10, Severity: "critical",
	}}
	states := []AlertState{
		{Rule: "cpu-hot", NS: NSHardware, Key: "PROC/cn01/CPU Util", Severity: "critical", Firing: true, Value: 97.5, Since: 12.25},
		{Rule: "cpu-hot", NS: NSHardware, Key: "PROC/cn02/CPU Util", Severity: "critical", Firing: false, Value: 40, Since: 1},
	}
	RenderAlerts(&sb, rules, states)
	want := `alerts:
  rule cpu-hot          hardware PROC/*/CPU Util > 90 window=10s severity=critical
  FIRING cpu-hot          PROC/cn01/CPU Util               value=97.500 since=12.250
  ok     cpu-hot          PROC/cn02/CPU Util               value=40.000 since=1.000
`
	if got := sb.String(); got != want {
		t.Errorf("RenderAlerts mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRenderSeriesSparklines(t *testing.T) {
	var sb strings.Builder
	RenderSeriesSparklines(&sb, "series:", nil)
	if sb.String() != "" {
		t.Errorf("empty series rendered %q", sb.String())
	}
	series := []Series{
		{Key: "PROC/cn01/CPU Util", Level: Level1s, Bucket: []SeriesBucket{
			{Start: 0, Mean: 10, Count: 4}, {Start: 1, Mean: 90, Count: 4},
		}},
		{Key: "no-buckets", Level: Level1s},
	}
	RenderSeriesSparklines(&sb, "series:", series)
	got := sb.String()
	if !strings.HasPrefix(got, "series:\n") {
		t.Errorf("missing title:\n%s", got)
	}
	if !strings.Contains(got, "PROC/cn01/CPU Util") || !strings.Contains(got, "▁█") {
		t.Errorf("sparkline row missing:\n%s", got)
	}
	if strings.Contains(got, "no-buckets") {
		t.Errorf("bucketless series rendered:\n%s", got)
	}
	if lines := strings.Count(got, "\n"); lines != 2 {
		t.Errorf("rendered %d lines:\n%s", lines, got)
	}
}
