package core

import (
	"path/filepath"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
)

func publishSeq(t *testing.T, svc *Service, eng *des.Engine, ns Namespace, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		eng.RunUntil(eng.Now() + 1)
		tree := conduit.NewNode()
		tree.SetInt("seq", int64(i))
		if err := svc.Publish(ns, tree, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWatcherPollExactlyOnce(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	w, err := NewWatcher(svc, NSWorkflow, eng)
	if err != nil {
		t.Fatal(err)
	}
	publishSeq(t, svc, eng, NSWorkflow, 3)
	first, err := w.Poll()
	if err != nil || len(first) != 3 {
		t.Fatalf("first poll = %d, %v", len(first), err)
	}
	if v, _ := first[0].Int("seq"); v != 0 {
		t.Fatal("records out of order")
	}
	again, err := w.Poll()
	if err != nil || len(again) != 0 {
		t.Fatalf("second poll should be empty, got %d", len(again))
	}
	publishSeq(t, svc, eng, NSWorkflow, 2)
	more, _ := w.Poll()
	if len(more) != 2 {
		t.Fatalf("incremental poll = %d", len(more))
	}
	if w.Consumed() != 5 {
		t.Fatalf("consumed = %d", w.Consumed())
	}
}

func TestWatcherIsolatedPerNamespace(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	w, _ := NewWatcher(svc, NSHardware, eng)
	publishSeq(t, svc, eng, NSWorkflow, 4)
	recs, _ := w.Poll()
	if len(recs) != 0 {
		t.Fatal("hardware watcher saw workflow records")
	}
}

func TestWatcherRunPeriodic(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	w, _ := NewWatcher(svc, NSWorkflow, eng)
	var seen []int64
	stop, err := w.Run(10, func(n *conduit.Node) {
		v, _ := n.Int("seq")
		seen = append(seen, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(10, func(*conduit.Node) {}); err == nil {
		t.Fatal("double Run accepted")
	}
	publishSeq(t, svc, eng, NSWorkflow, 3)
	eng.RunUntil(50)
	stop()
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("seen = %v", seen)
	}
	// After stop, publishing more must not call fn (engine drains quietly).
	publishSeq(t, svc, eng, NSWorkflow, 2)
	eng.RunUntil(100)
	if len(seen) != 3 {
		t.Fatalf("callback ran after stop: %v", seen)
	}
	// Restart works.
	stop2, err := w.Run(10, func(*conduit.Node) {})
	if err != nil {
		t.Fatal(err)
	}
	stop2()
}

func TestWatcherValidation(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	if _, err := NewWatcher(nil, NSWorkflow, eng); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := NewWatcher(svc, "bogus", eng); err == nil {
		t.Fatal("bogus namespace accepted")
	}
	w, _ := NewWatcher(svc, NSWorkflow, eng)
	if _, err := w.Run(0, func(*conduit.Node) {}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := w.Run(1, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestSnapshotRoundTripThroughFile(t *testing.T) {
	eng := des.NewEngine()
	svc := NewService(ServiceConfig{Clock: eng})
	defer svc.Close()
	wf := conduit.NewNode()
	wf.SetString("RP/task.000000/1.5000000", "launch_start")
	svc.Publish(NSWorkflow, wf, 100)
	hw := conduit.NewNode()
	hw.SetFloat("PROC/cn0001/2.0/CPU Util", 55)
	svc.Publish(NSHardware, hw, 50)

	snap, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "soma-snapshot.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offline analysis through the same API.
	a := Analysis{Q: back}
	evs, err := a.TaskEvents("task.000000")
	if err != nil || len(evs) != 1 || evs[0].Name != "launch_start" {
		t.Fatalf("offline events = %v, %v", evs, err)
	}
	series, err := a.CPUUtilSeries("cn0001")
	if err != nil || len(series) != 1 || series[0].Util != 55 {
		t.Fatalf("offline util = %v, %v", series, err)
	}
	// Stats survive.
	var wfStats *InstanceStats
	for i := range back.Stats {
		if back.Stats[i].Namespace == NSWorkflow {
			wfStats = &back.Stats[i]
		}
	}
	if wfStats == nil || wfStats.Publishes != 1 || wfStats.BytesIn != 100 {
		t.Fatalf("offline stats = %+v", wfStats)
	}
	// Unknown namespace errors offline too.
	if _, err := back.Query("bogus", ""); err == nil {
		t.Fatal("bogus namespace accepted offline")
	}
	// Missing path yields empty tree.
	empty, err := back.Query(NSPerformance, "nothing/here")
	if err != nil || empty.NumLeaves() != 0 {
		t.Fatalf("missing path offline = %v, %v", empty, err)
	}
}

func TestSnapshotWorksOnStoppedService(t *testing.T) {
	svc := NewService(ServiceConfig{})
	n := conduit.NewNode()
	n.SetInt("x", 1)
	svc.Publish(NSWorkflow, n, 0)
	svc.Close()
	snap, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Namespaces[NSWorkflow].Int("x"); v != 1 {
		t.Fatal("post-mortem snapshot lost data")
	}
}

func TestSnapshotRejectsWrongVersion(t *testing.T) {
	var sn Snapshot
	if err := sn.UnmarshalJSON([]byte(`{"version":99,"namespaces":{},"stats":{}}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if err := sn.UnmarshalJSON([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadSnapshotMissingFile(t *testing.T) {
	if _, err := ReadSnapshot("/no/such/file.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
