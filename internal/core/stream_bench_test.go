package core

import (
	"fmt"
	"testing"
)

// Streaming benchmarks: the rollup query path somatop leans on and the
// publish-time fan-out cost subscribers add. Both are guarded by
// scripts/benchdiff.sh against the references in scripts/bench_baseline.json.

// benchSeriesService returns a service whose hardware namespace holds the
// ingest benchmark's series population (8 hosts × 7 numeric metrics).
func benchSeriesService(b *testing.B) *Service {
	b.Helper()
	svc := NewService(ServiceConfig{})
	lp := LocalPublisher{Service: svc}
	for h := 0; h < 8; h++ {
		host := fmt.Sprintf("cn%04d", h)
		for s := int64(0); s < 64; s++ {
			if err := lp.Publish(NSHardware, benchTree(host, s)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return svc
}

// BenchmarkSeriesQuery measures one 1s-level rollup query against a
// populated store — the per-row cost of somatop's sparkline panel.
func BenchmarkSeriesQuery(b *testing.B) {
	svc := benchSeriesService(b)
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se, err := svc.QuerySeries(NSHardware, "PROC/cn0003/CPU Util", Level1s, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(se.Bucket) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkSubscribeFanout measures the publish path with one live local
// subscriber — stripe append + rollup ingest + bus fan-out (encode and
// enqueue). The delta against BenchmarkPublishIngest is the price of a
// watcher.
func BenchmarkSubscribeFanout(b *testing.B) {
	svc := NewService(ServiceConfig{})
	defer svc.Close()
	lp := LocalPublisher{Service: svc}

	ch, cancel, err := svc.SubscribeLocal(NSHardware)
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range ch {
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lp.Publish(NSHardware, benchTree("cn0001", int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cancel()
	<-drained
}
