package core

import (
	"fmt"
	"io"
	"strings"

	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Text rendering for the operator tools. cmd/somatop and cmd/somactl share
// these panels; they live here (not in the commands) so the layout is
// testable against a fake Querier and a hand-built telemetry snapshot.

// maxHostRows bounds the per-host utilization listing so the panel stays
// readable on large allocations.
const maxHostRows = 12

// RenderSummary writes the workflow / hardware / service-instance panels
// somatop refreshes: latest workflow state counts, task throughput, queue
// wait, per-host CPU utilization bars, and per-instance service counters.
// Analysis errors degrade to omitted sections; stats may be nil.
func RenderSummary(w io.Writer, a Analysis, stats map[Namespace]InstanceStats) {
	if series, err := a.WorkflowSeries(); err == nil && len(series) > 0 {
		last := series[len(series)-1]
		fmt.Fprintf(w, "workflow   pending=%d running=%d done=%d failed=%d canceled=%d (%d snapshots)\n",
			last.Pending, last.Running, last.Done, last.Failed, last.Canceled, len(series))
		if tp, err := a.Throughput(); err == nil && tp > 0 {
			fmt.Fprintf(w, "throughput %.3f tasks/s\n", tp)
		}
		if qw, err := a.QueueWaitStats(); err == nil && qw.N > 0 {
			fmt.Fprintf(w, "queue wait mean=%.1fs max=%.1fs (n=%d)\n", qw.Mean, qw.Max, qw.N)
		}
	} else {
		fmt.Fprintln(w, "workflow   (no data)")
	}

	if hosts, err := a.Hosts(); err == nil && len(hosts) > 0 {
		fmt.Fprintf(w, "\nhardware   %d node(s):\n", len(hosts))
		shown := hosts
		if len(shown) > maxHostRows {
			shown = shown[:maxHostRows]
		}
		for _, h := range shown {
			if series, err := a.CPUUtilSeries(h); err == nil && len(series) > 0 {
				last := series[len(series)-1]
				bar := int(last.Util / 100 * 30)
				fmt.Fprintf(w, "  %-10s [%-30s] %5.1f%%\n",
					h, strings.Repeat("|", bar), last.Util)
			}
		}
		if len(hosts) > len(shown) {
			fmt.Fprintf(w, "  ... and %d more\n", len(hosts)-len(shown))
		}
	}

	if len(stats) > 0 {
		fmt.Fprintln(w, "\nservice instances:")
		for _, ns := range Namespaces {
			if st, ok := stats[ns]; ok {
				fmt.Fprintf(w, "  %-12s ranks=%-3d stripes=%-2d publishes=%-8d leaves=%-9d bytes_in=%d\n",
					ns, st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn)
			}
		}
		if st, ok := stats["shared"]; ok {
			fmt.Fprintf(w, "  %-12s ranks=%-3d stripes=%-2d publishes=%-8d leaves=%-9d bytes_in=%d\n",
				"shared", st.Ranks, st.Stripes, st.Publishes, st.Leaves, st.BytesIn)
		}
	}
}

// RenderTelemetry writes the service's self-telemetry panel: latency
// histograms (p50/p95/p99/max), gauges, and counters, each sorted by name.
func RenderTelemetry(w io.Writer, snap *telemetry.Snapshot) {
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(w, "latency:")
		for _, name := range telemetry.SortedNames(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Fprintf(w, "  %-40s n=%-8d p50=%-10s p95=%-10s p99=%-10s max=%s\n",
				name, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range telemetry.SortedNames(snap.Gauges) {
			fmt.Fprintf(w, "  %-40s %g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range telemetry.SortedNames(snap.Counters) {
			fmt.Fprintf(w, "  %-40s %d\n", name, snap.Counters[name])
		}
	}
}

// RenderAlerts writes the threshold-alert panel: the installed rules, then
// one line per (rule, series) standing with firing rows first-class visible.
func RenderAlerts(w io.Writer, rules []AlertRule, states []AlertState) {
	if len(rules) == 0 {
		fmt.Fprintln(w, "alerts:    (no rules)")
		return
	}
	fmt.Fprintln(w, "alerts:")
	for _, r := range rules {
		fmt.Fprintf(w, "  rule %-16s %s %s %s %g window=%gs severity=%s\n",
			r.Name, r.NS, r.Pattern, r.Op, r.Threshold, r.WindowSec, r.Severity)
	}
	for _, st := range states {
		label := "ok"
		if st.Firing {
			label = "FIRING"
		}
		fmt.Fprintf(w, "  %-6s %-16s %-32s value=%.3f since=%.3f\n",
			label, st.Rule, st.Key, st.Value, st.Since)
	}
}

// sparkRunes is the 8-level bar strip used for series sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode bar strip scaled to their min/max
// range, keeping the newest width values (width <= 0 keeps all). A flat
// series renders at the lowest level.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width > 0 && len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// RenderSeriesSparklines writes one sparkline row per series from its 1s
// bucket means, with the latest value and the bucket count.
func RenderSeriesSparklines(w io.Writer, title string, series []Series) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "%s\n", title)
	for _, se := range series {
		if len(se.Bucket) == 0 {
			continue
		}
		means := make([]float64, len(se.Bucket))
		for i, b := range se.Bucket {
			means[i] = b.Mean
		}
		fmt.Fprintf(w, "  %-32s %s %10.2f (%d pts)\n",
			se.Key, Sparkline(means, 40), means[len(means)-1], len(se.Bucket))
	}
}

// RenderTraceList writes one line per kept trace summary: id, root span
// name, duration, span count, keep reason, and an ERR flag for error traces.
// The somatop traces panel and `somactl trace` (without an id) share it.
func RenderTraceList(w io.Writer, sums []telemetry.TraceSummary) {
	if len(sums) == 0 {
		fmt.Fprintln(w, "traces:    (none kept)")
		return
	}
	fmt.Fprintln(w, "kept traces:")
	for _, s := range sums {
		flag := ""
		if s.Err {
			flag = "  ERR"
		}
		fmt.Fprintf(w, "  %016x  %-32s %12s %4d spans  %-6s%s\n",
			s.TraceID, s.Root, s.Dur, s.Spans, s.Reason, flag)
	}
}

// waterfallWidth is the default timeline width (characters) of the trace
// waterfall.
const waterfallWidth = 48

// spanDepth computes a span's nesting depth by walking its parent chain.
// Spans whose parent left the trace (remote parents, capped traces) sit at
// depth 0; the walk is bounded so a corrupt parent cycle cannot hang it.
func spanDepth(byID map[uint64]telemetry.SpanSnapshot, sp telemetry.SpanSnapshot) int {
	depth := 0
	for sp.Parent != 0 && depth < 16 {
		p, ok := byID[sp.Parent]
		if !ok {
			break
		}
		depth++
		sp = p
	}
	return depth
}

// RenderTraceWaterfall writes a cross-process trace as a waterfall: one row
// per span, indented by parent depth, with a bar showing where the span sat
// inside the trace window. For a batched publish the rows read top to
// bottom as client publish → coalescer flush → wire → batch stripe append,
// with the server-side rows carrying the coalesced-entry count (×N).
// width <= 0 selects the default timeline width.
func RenderTraceWaterfall(w io.Writer, tr telemetry.Trace, width int) {
	if width <= 0 {
		width = waterfallWidth
	}
	fmt.Fprintf(w, "trace %016x  root=%s  dur=%s  spans=%d  kept=%s",
		tr.TraceID, tr.Root, tr.Dur, len(tr.Spans), tr.Reason)
	if tr.Err {
		fmt.Fprint(w, "  ERR")
	}
	fmt.Fprintln(w)
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(w, "  (%d more spans dropped by the per-trace cap)\n", tr.DroppedSpans)
	}
	if len(tr.Spans) == 0 {
		return
	}

	// The timeline window spans the earliest start to the latest end; spans
	// from different processes land here on their own clocks, so the window
	// is computed, not assumed to equal the root span.
	min, max := tr.Spans[0].Start, tr.Spans[0].Start.Add(tr.Spans[0].Dur)
	for _, sp := range tr.Spans[1:] {
		if sp.Start.Before(min) {
			min = sp.Start
		}
		if end := sp.Start.Add(sp.Dur); end.After(max) {
			max = end
		}
	}
	window := max.Sub(min)
	if window <= 0 {
		window = 1
	}

	byID := make(map[uint64]telemetry.SpanSnapshot, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.SpanID] = sp
	}
	nameCol := 0
	for _, sp := range tr.Spans {
		if n := 2*spanDepth(byID, sp) + len(sp.Name); n > nameCol {
			nameCol = n
		}
	}
	if nameCol > 48 {
		nameCol = 48
	}

	for _, sp := range tr.Spans {
		off := int(int64(width) * int64(sp.Start.Sub(min)) / int64(window))
		bar := int(int64(width) * int64(sp.Dur) / int64(window))
		if bar < 1 {
			bar = 1
		}
		if off > width-1 {
			off = width - 1
		}
		if off+bar > width {
			bar = width - off
		}
		lane := strings.Repeat(" ", off) + strings.Repeat("#", bar) + strings.Repeat(" ", width-off-bar)
		label := strings.Repeat("  ", spanDepth(byID, sp)) + sp.Name
		fmt.Fprintf(w, "  %-*s %12s  [%s]", nameCol, label, sp.Dur, lane)
		if sp.Count > 0 {
			fmt.Fprintf(w, " x%d", sp.Count)
		}
		if sp.Err {
			fmt.Fprint(w, " ERR")
		}
		fmt.Fprintln(w)
	}
}

// RenderSpans writes the newest limit spans (oldest of those first), one per
// line with trace/span/parent ids in hex. limit <= 0 renders every span.
func RenderSpans(w io.Writer, spans []telemetry.SpanSnapshot, limit int) {
	if len(spans) == 0 {
		return
	}
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	fmt.Fprintln(w, "recent spans:")
	for _, sp := range spans {
		parent := strings.Repeat("-", 16)
		if sp.Parent != 0 {
			parent = fmt.Sprintf("%016x", sp.Parent)
		}
		fmt.Fprintf(w, "  trace=%016x span=%016x parent=%s %-28s %s\n",
			sp.TraceID, sp.SpanID, parent, sp.Name, sp.Dur)
	}
}
