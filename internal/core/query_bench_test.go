package core

import (
	"fmt"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// Query-path benchmarks: the read side the high fan-in deployments stress
// (every monitor UI tick and analysis probe is a query). BenchmarkQueryHot
// is the headline number for the encoded-snapshot cache — scripts/
// benchdiff.sh gates it at 0 allocs/op and at a >=5x speedup over
// BenchmarkQueryEncodeNoCache, the pre-cache path shape, measured live in
// the same process so the ratio is host-independent.

// benchQueryService builds a service with a realistically sized hardware
// tree: hosts × 16 samples × 8 metrics.
func benchQueryService(b *testing.B, hosts int) *Service {
	b.Helper()
	svc := NewService(ServiceConfig{})
	lp := LocalPublisher{Service: svc}
	for h := 0; h < hosts; h++ {
		for s := 0; s < 16; s++ {
			if err := lp.Publish(NSHardware, benchTree(fmt.Sprintf("cn%04d", h), int64(s))); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Prime the snapshot and the encoded-frame cache.
	if _, err := svc.QueryEncoded(NSHardware, "PROC"); err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkQueryHot measures a repeat query against an unchanged namespace:
// the encoded frame is served from the snapshot's cache — two atomic loads
// and an RLock'd map probe, zero tree walk, zero allocation.
func BenchmarkQueryHot(b *testing.B) {
	svc := benchQueryService(b, 16)
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := svc.QueryEncoded(NSHardware, "PROC")
		if err != nil {
			b.Fatal(err)
		}
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkQueryEncodeNoCache reproduces the pre-cache query path: walk the
// snapshot to the subtree and encode it per request. benchdiff.sh divides
// this by BenchmarkQueryHot for the >=5x speedup gate.
func BenchmarkQueryEncodeNoCache(b *testing.B) {
	svc := benchQueryService(b, 16)
	defer svc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := svc.Query(NSHardware, "PROC")
		if err != nil {
			b.Fatal(err)
		}
		resp := conduit.NewNode()
		resp.Attach("data", sub)
		if frame := resp.EncodeBinary(); len(frame) == 0 {
			b.Fatal("empty frame")
		}
	}
}

// BenchmarkQueryDelta measures the steady-state delta poll: the client's
// stamp matches, so the service answers with the cached tiny unchanged
// frame.
func BenchmarkQueryDelta(b *testing.B) {
	svc := benchQueryService(b, 16)
	defer svc.Close()
	full, err := svc.QueryEncoded(NSHardware, "PROC")
	if err != nil {
		b.Fatal(err)
	}
	env, err := conduit.DecodeBinary(full)
	if err != nil {
		b.Fatal(err)
	}
	epoch, _ := env.Int("epoch")
	gen, _ := env.Int("gen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := svc.QueryDeltaEncoded(NSHardware, "PROC", uint64(epoch), uint64(gen))
		if err != nil {
			b.Fatal(err)
		}
		if len(frame) >= len(full) {
			b.Fatal("delta frame not smaller than full frame")
		}
	}
}

// BenchmarkSnapshotRebuild measures the cold path the cache cannot help: a
// large pending batch across many dirty stripes folded into the snapshot.
// The batch exceeds the parallel-merge thresholds, so this exercises the
// bounded worker-pool fold.
func BenchmarkSnapshotRebuild(b *testing.B) {
	const hosts = 64
	svc := NewService(ServiceConfig{RanksPerNamespace: 8})
	defer svc.Close()
	in := svc.instances[NSHardware]
	trees := make([]*conduit.Node, hosts*8)
	for i := range trees {
		trees[i] = benchTree(fmt.Sprintf("cn%04d", i%hosts), int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trees {
			in.publish(float64(i), tr, 0)
		}
		if sn := in.currentSnapshot(); sn.tree.NumLeaves() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
