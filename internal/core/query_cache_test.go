package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
)

// sameBytes reports whether two frames are the identical backing array —
// the zero-allocation cache-hit property, stronger than equal content.
func sameBytes(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

func publishLeaf(t *testing.T, svc *Service, ns Namespace, path string, v float64) {
	t.Helper()
	n := conduit.NewNode()
	n.SetFloat(path, v)
	if err := svc.Publish(ns, n, 0); err != nil {
		t.Fatal(err)
	}
}

// TestQueryEncodedCache is the hit/miss/invalidation table for the
// encoded-snapshot cache behind soma.query and soma.select.
func TestQueryEncodedCache(t *testing.T) {
	steps := []struct {
		name string
		// mutate changes the namespace between the two frames (nil = repeat
		// query against unchanged state).
		mutate   func(svc *Service)
		wantSame bool
	}{
		{"repeat query hits", nil, true},
		{"publish invalidates", func(svc *Service) {
			publishLeaf(t, svc, NSHardware, "PROC/cn0001/util", 99)
		}, false},
		{"reset invalidates", func(svc *Service) {
			if err := svc.ResetNamespace(NSHardware); err != nil {
				t.Fatal(err)
			}
		}, false},
		{"other namespace does not invalidate", func(svc *Service) {
			publishLeaf(t, svc, NSWorkflow, "RP/x", 1)
		}, true},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			svc, _ := newTestService(t, ServiceConfig{})
			publishLeaf(t, svc, NSHardware, "PROC/cn0001/util", 42)
			f1, err := svc.QueryEncoded(NSHardware, "PROC")
			if err != nil {
				t.Fatal(err)
			}
			if tc.mutate != nil {
				tc.mutate(svc)
			}
			f2, err := svc.QueryEncoded(NSHardware, "PROC")
			if err != nil {
				t.Fatal(err)
			}
			if got := sameBytes(f1, f2); got != tc.wantSame {
				t.Fatalf("sameBytes = %v, want %v", got, tc.wantSame)
			}
		})
	}
}

// TestQueryEncodedFrameShape checks the wire envelope: {epoch, gen, data}
// with a nonzero epoch and the queried subtree under data, and that distinct
// paths get distinct cached frames.
func TestQueryEncodedFrameShape(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{})
	publishLeaf(t, svc, NSHardware, "PROC/cn0001/util", 42)
	frame, err := svc.QueryEncoded(NSHardware, "PROC/cn0001")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := conduit.DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if epoch, ok := resp.Int("epoch"); !ok || epoch == 0 {
		t.Fatalf("epoch = %d, %v; want nonzero", epoch, ok)
	}
	if _, ok := resp.Int("gen"); !ok {
		t.Fatal("gen missing")
	}
	data, ok := resp.Get("data")
	if !ok {
		t.Fatal("data missing")
	}
	if v, _ := data.Float("util"); v != 42 {
		t.Fatalf("data/util = %g", v)
	}
	other, _ := svc.QueryEncoded(NSHardware, "")
	if sameBytes(frame, other) {
		t.Fatal("distinct paths shared a cached frame")
	}
}

// TestStatsCacheRefreshes guards against the stats frame cache serving a
// frame that predates a publish: the stamp key must move with the instance.
func TestStatsCacheRefreshes(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	publishLeaf(t, svc, NSWorkflow, "RP/x", 1)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st[NSWorkflow].Publishes != 1 {
		t.Fatalf("publishes = %d, want 1", st[NSWorkflow].Publishes)
	}
	// Served from cache the second time (same stamps) — content identical.
	st2, _ := c.Stats()
	if st2[NSWorkflow].Publishes != 1 {
		t.Fatalf("cached publishes = %d", st2[NSWorkflow].Publishes)
	}
	publishLeaf(t, svc, NSWorkflow, "RP/y", 2)
	st3, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st3[NSWorkflow].Publishes != 2 {
		t.Fatalf("post-publish publishes = %d, want 2", st3[NSWorkflow].Publishes)
	}
}

// TestQueryDeltaUnchanged drives the delta protocol end to end over RPC:
// first poll full, repeat poll unchanged (memoized tree reused), next
// publish full again — and the unchanged frame is ≥10× smaller than the
// full frame it stands in for.
func TestQueryDeltaUnchanged(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A realistically sized tree: 64 hosts × 2 metrics.
	big := conduit.NewNode()
	for i := 0; i < 64; i++ {
		big.SetFloat(fmt.Sprintf("PROC/cn%04d/CPU Util", i), float64(i))
		big.SetFloat(fmt.Sprintf("PROC/cn%04d/Mem Used", i), float64(i*2))
	}
	if err := svc.Publish(NSHardware, big, 0); err != nil {
		t.Fatal(err)
	}

	tr1, changed, err := c.QueryDelta(NSHardware, "PROC")
	if err != nil || !changed {
		t.Fatalf("first poll: changed=%v err=%v, want full response", changed, err)
	}
	tr2, changed, err := c.QueryDelta(NSHardware, "PROC")
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("repeat poll reported changed")
	}
	if tr1 != tr2 {
		t.Fatal("unchanged poll did not reuse the memoized tree")
	}
	ds := c.DeltaStats()
	if ds.Unchanged != 1 || ds.BytesSaved <= 0 {
		t.Fatalf("delta stats = %+v", ds)
	}

	publishLeaf(t, svc, NSHardware, "PROC/cn0000/CPU Util", 77)
	tr3, changed, err := c.QueryDelta(NSHardware, "PROC")
	if err != nil || !changed {
		t.Fatalf("post-publish poll: changed=%v err=%v", changed, err)
	}
	if v, _ := tr3.Float("cn0000/CPU Util"); v != 77 {
		t.Fatalf("post-publish value = %g", v)
	}

	// Wire-size ratio: the unchanged frame must be at least 10× smaller than
	// the full frame (the ISSUE's bytes-on-wire acceptance bound).
	full, err := svc.QueryEncoded(NSHardware, "PROC")
	if err != nil {
		t.Fatal(err)
	}
	env, _ := conduit.DecodeBinary(full)
	epoch, _ := env.Int("epoch")
	gen, _ := env.Int("gen")
	unch, err := svc.QueryDeltaEncoded(NSHardware, "PROC", uint64(epoch), uint64(gen))
	if err != nil {
		t.Fatal(err)
	}
	if u, _ := conduit.DecodeBinary(unch); u != nil {
		if flag, _ := u.Bool("unchanged"); !flag {
			t.Fatal("matching stamp did not answer unchanged")
		}
	}
	if len(full) < 10*len(unch) {
		t.Fatalf("bytes reduction %d/%d < 10x", len(full), len(unch))
	}
}

// TestQueryDeltaZeroStampNeverMatches: a client with no memo presents
// (0, 0); the service must send the full tree even when nothing changed.
func TestQueryDeltaZeroStampNeverMatches(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{})
	publishLeaf(t, svc, NSWorkflow, "RP/x", 1)
	frame, err := svc.QueryDeltaEncoded(NSWorkflow, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := conduit.DecodeBinary(frame)
	if flag, _ := resp.Bool("unchanged"); flag {
		t.Fatal("zero stamp answered unchanged")
	}
	if _, ok := resp.Get("data"); !ok {
		t.Fatal("zero stamp response missing data")
	}
}

// TestQueryDeltaReconnect restarts the service under the same TCP address:
// the new process draws a fresh epoch, so the client's memo from the old
// lineage must resync with a full response even though the new instance can
// reach the same generation number — never report unchanged across a
// restart.
func TestQueryDeltaReconnect(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Queries are idempotent: let the endpoint retry through the redial so
	// the first poll after the restart lands instead of surfacing EOF.
	c, err := ConnectPolicy(addr, nil, &mercury.CallPolicy{
		MaxRetries: 3,
		Idempotent: func(string) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	publishLeaf(t, svc, NSWorkflow, "RP/phase", 1)
	if _, changed, err := c.QueryDelta(NSWorkflow, ""); err != nil || !changed {
		t.Fatalf("prime poll: changed=%v err=%v", changed, err)
	}
	if _, changed, _ := c.QueryDelta(NSWorkflow, ""); changed {
		t.Fatal("repeat poll reported changed")
	}
	svc.Close()

	// Same address, same publish count: without the reset-epoch the restarted
	// service would reach the same generation and falsely answer unchanged.
	svc2 := NewService(ServiceConfig{})
	if _, err := svc2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer svc2.Close()
	publishLeaf(t, svc2, NSWorkflow, "RP/phase", 2)
	tree, changed, err := c.QueryDelta(NSWorkflow, "")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("poll after restart reported unchanged — stale memo served")
	}
	if v, _ := tree.Float("RP/phase"); v != 2 {
		t.Fatalf("post-restart tree = %g, want the new service's data", v)
	}
}

// TestQueryDeltaFallbackOldServer points the client at an engine that only
// serves the legacy soma.query RPC: QueryDelta must degrade to plain queries
// (changed always true) after one ErrUnknownRPC probe, not fail.
func TestQueryDeltaFallbackOldServer(t *testing.T) {
	eng := mercury.NewEngine()
	legacy := conduit.NewNode()
	legacy.SetFloat("x", 7)
	eng.Register(RPCQuery, func(_ context.Context, payload []byte) ([]byte, error) {
		resp := conduit.NewNode()
		resp.Attach("data", legacy)
		return resp.EncodeBinary(), nil
	})
	addr, err := eng.Listen(fmt.Sprintf("inproc://legacy-%s", t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		tree, changed, err := c.QueryDelta(NSWorkflow, "")
		if err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
		if !changed {
			t.Fatalf("poll %d: legacy fallback reported unchanged", i)
		}
		if v, _ := tree.Float("x"); v != 7 {
			t.Fatalf("poll %d: tree = %g", i, v)
		}
	}
	if !c.noDelta.Load() {
		t.Fatal("fallback did not latch")
	}
}

// TestQueryCacheResetRace hammers publish + encoded query + reset
// concurrently; under -race this is the regression test for the mid-flight
// reset satellite (stamps are written under rebuildMu, frames hang off
// immutable snapshots). The invariant checked after the storm: a final
// publish is visible through the cached path.
func TestQueryCacheResetRace(t *testing.T) {
	svc, _ := newTestService(t, ServiceConfig{RanksPerNamespace: 4})
	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			publishLeaf(t, svc, NSHardware, "PROC/cn0001/util", float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			if _, err := svc.QueryEncoded(NSHardware, "PROC"); err != nil {
				return
			}
			if _, err := svc.QueryDeltaEncoded(NSHardware, "PROC", 0, 0); err != nil {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := svc.ResetNamespace(NSHardware); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		if _, err := svc.QueryEncoded(NSHardware, ""); err != nil {
			t.Fatal(err)
		}
	}
	close(stopCh)
	wg.Wait()
	publishLeaf(t, svc, NSHardware, "PROC/final", 123)
	frame, err := svc.QueryEncoded(NSHardware, "PROC")
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := conduit.DecodeBinary(frame)
	data, _ := resp.Get("data")
	if v, _ := data.Float("final"); v != 123 {
		t.Fatalf("final publish not visible through the cache: %g", v)
	}
}

// TestQueryDeltaStreamSoak is the concurrent publish+query+reset soak run
// repeatedly under -race by make verify-stream: a delta-polling client must
// never observe a tree older than the last state it already saw for the
// same lineage (values only move forward between resets).
func TestQueryDeltaStreamSoak(t *testing.T) {
	svc, addr := newTestService(t, ServiceConfig{RanksPerNamespace: 4})
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			publishLeaf(t, svc, NSWorkflow, "RP/counter", float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := svc.ResetNamespace(NSWorkflow); err != nil {
				return
			}
		}
	}()
	// The monotonic check is per observed lineage: a reset may legally move
	// the value backwards, but then the tree must come from a full response
	// (changed=true) — an "unchanged" answer repeating the memo can never go
	// backwards.
	var last float64
	for i := 0; i < 1000; i++ {
		tree, changed, err := c.QueryDelta(NSWorkflow, "")
		if err != nil {
			t.Fatal(err)
		}
		v, _ := tree.Float("RP/counter")
		if !changed && v != last {
			t.Fatalf("unchanged poll moved the tree: %g -> %g", last, v)
		}
		last = v
	}
	close(done)
	wg.Wait()
}

// TestFoldRecordsParallelEquivalence checks that the chunked parallel fold
// produces the same merged tree as the sequential fold, including
// last-writer-wins on colliding leaf paths.
func TestFoldRecordsParallelEquivalence(t *testing.T) {
	var pend []record
	seq := uint64(0)
	// 400 records across 40 keys: each key written 10 times with increasing
	// values, so the fold order decides the surviving value.
	for round := 0; round < 10; round++ {
		for k := 0; k < 40; k++ {
			seq++
			n := conduit.NewNode()
			n.SetFloat(fmt.Sprintf("PROC/cn%04d/util", k), float64(round*1000+k))
			n.SetInt(fmt.Sprintf("PROC/cn%04d/round", k), int64(round))
			pend = append(pend, record{seq: seq, node: n})
		}
	}
	// dirty=1 forces the sequential path; dirty=8 the parallel one.
	sequential := foldRecords(pend, 1)
	parallel := foldRecords(pend, mergeParallelStripes+4)
	if got, want := parallel.Format(), sequential.Format(); got != want {
		t.Fatalf("parallel fold diverged from sequential fold:\n--- parallel\n%s\n--- sequential\n%s", got, want)
	}
	// Last writer (round 9) won.
	if v, _ := parallel.Float("PROC/cn0003/util"); v != 9003 {
		t.Fatalf("last-writer-wins violated: %g", v)
	}
}
