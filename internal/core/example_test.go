package core_test

import (
	"fmt"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
)

// A complete publish→query round trip against a SOMA service: the
// zero-to-observability path.
func ExampleClient() {
	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 1})
	addr, _ := svc.Listen("inproc://example-client")
	defer svc.Close()

	client, _ := core.Connect(addr, nil)
	defer client.Close()

	sample := conduit.NewNode()
	sample.SetFloat("PROC/cn0001/42.0/CPU Util", 87.5)
	_ = client.Publish(core.NSHardware, sample)

	back, _ := client.Query(core.NSHardware, "PROC/cn0001/42.0")
	util, _ := back.Float("CPU Util")
	fmt.Printf("cn0001 utilization: %.1f%%\n", util)
	// Output: cn0001 utilization: 87.5%
}

// The application-namespace instrumentation API: a task self-reports its
// scientific rate of progress.
func ExampleAppReporter() {
	eng := des.NewEngine()
	svc := core.NewService(core.ServiceConfig{Clock: eng})
	defer svc.Close()

	reporter, _ := core.NewAppReporter(core.LocalPublisher{Service: svc}, eng, "task.000042")
	for step := 0; step < 3; step++ {
		eng.RunUntil(float64(step+1) * 10)
		_ = reporter.Report("atom_timesteps", float64(step)*1e6)
	}

	analysis := core.Analysis{Q: core.LocalQuerier{Service: svc}}
	rate, _ := analysis.FOMRate("task.000042", "atom_timesteps")
	fmt.Printf("%.0f atom-timesteps/s\n", rate)
	// Output: 100000 atom-timesteps/s
}

// The advisor turns SOMA observations into configuration suggestions.
func ExampleAdvisor() {
	advisor := core.NewAdvisor()
	// Fig. 4-shaped strong-scaling means (ranks → seconds).
	times := map[int]float64{20: 408, 41: 227, 82: 155, 164: 139}
	fmt.Println("suggested ranks:", advisor.SuggestRanks(times))
	// GPU-bound phase: low CPU utilization and idle GPUs → fan training out.
	fmt.Println("suggested training tasks:", advisor.SuggestTrainTasks(1, 2.0, 6))
	// Output:
	// suggested ranks: 82
	// suggested training tasks: 2
}
