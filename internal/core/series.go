package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Windowed rollup engine: per-namespace time-series buckets populated at
// publish time, off the stripe append. Every numeric leaf of a published
// tree becomes one sample of a series; consecutive samples of the same
// series are downsampled into 1 s and 10 s min/max/mean/count buckets held
// in fixed-size rings, so somatop can render sparklines (and the alert
// evaluator can judge windows) without ever re-merging publish history.
//
// Series identity: the paper's layouts embed the sample timestamp in the
// leaf path (PROC/<host>/<ts>/CPU Util, RP/summary/<ts>/running), which
// would make every publish a brand-new path. The rollup folds timestamp
// segments out: any path segment that parses as a float is treated as the
// sample time and removed from the series key (when it is a plausible
// timestamp: non-negative, at most maxSeriesTime), so
//
//	PROC/cn01/123.500000/CPU Util  →  key "PROC/cn01/CPU Util", t=123.5
//
// and successive samples land in the same series. Leaves without a
// timestamp segment are stamped with the publish arrival time.

// Rollup ring geometry. Retention = capacity × bucket width: ~8.5 min of 1 s
// buckets, ~85 min of 10 s buckets, plus the newest rawCap raw points.
const (
	rawCap = 512
	b1Cap  = 512
	b10Cap = 512

	// defaultMaxSeries bounds distinct series per namespace instance; leaves
	// beyond the cap are skipped and counted (core.series.dropped).
	defaultMaxSeries = 8192

	// seriesShards spreads series of one instance across locks so concurrent
	// publishers (stripes) rarely contend.
	seriesShards = 16

	// maxSeriesTime bounds sample timestamps accepted into the rollup rings.
	// Values outside [0, maxSeriesTime] cannot be real sample times (client
	// clocks are epoch- or run-relative seconds) and would overflow the
	// int64 bucket arithmetic; paths carrying them are stamped with the
	// arrival time instead.
	maxSeriesTime = 1e15
)

var (
	telSeriesPoints  = telemetry.Default().Counter("core.series.points")
	telSeriesDropped = telemetry.Default().Counter("core.series.dropped")
)

// SeriesLevel selects a rollup resolution.
type SeriesLevel string

// The three levels of the raw → 1s → 10s downsampling cascade.
const (
	LevelRaw SeriesLevel = "raw"
	Level1s  SeriesLevel = "1s"
	Level10s SeriesLevel = "10s"
)

func (l SeriesLevel) valid() bool {
	return l == LevelRaw || l == Level1s || l == Level10s
}

func (l SeriesLevel) width() float64 {
	if l == Level10s {
		return 10
	}
	return 1
}

// SeriesPoint is one raw sample.
type SeriesPoint struct {
	Time  float64
	Value float64
}

// SeriesBucket is one downsampled window.
type SeriesBucket struct {
	Start float64 // window start (inclusive)
	Min   float64
	Max   float64
	Mean  float64
	Count int64
}

type rawRing struct {
	pts  [rawCap]SeriesPoint
	head int // next write slot
	n    int
}

func (r *rawRing) push(p SeriesPoint) {
	r.pts[r.head] = p
	r.head = (r.head + 1) % rawCap
	if r.n < rawCap {
		r.n++
	}
}

// bucket is one rollup window; start < 0 marks an empty slot.
type bucket struct {
	start    int64
	min, max float64
	sum      float64
	count    int64
}

type bucketRing struct {
	width int64
	slots []bucket
}

func newBucketRing(width int64, cap_ int) bucketRing {
	slots := make([]bucket, cap_)
	for i := range slots {
		slots[i].start = -1
	}
	return bucketRing{width: width, slots: slots}
}

// add folds one sample into its window. Slots are addressed by
// (start/width) mod cap, with the stored start disambiguating generations:
// a newer window evicts the slot, an older (late) sample is dropped.
func (br *bucketRing) add(t, v float64) {
	if !(t >= 0 && t <= maxSeriesTime) { // also rejects NaN
		return
	}
	start := int64(math.Floor(t/float64(br.width))) * br.width
	n := int64(len(br.slots))
	slot := &br.slots[int(((start/br.width)%n+n)%n)]
	switch {
	case slot.start == start:
		if v < slot.min {
			slot.min = v
		}
		if v > slot.max {
			slot.max = v
		}
		slot.sum += v
		slot.count++
	case slot.start < start:
		*slot = bucket{start: start, min: v, max: v, sum: v, count: 1}
	default:
		// Late sample whose window was already evicted by the ring: drop.
	}
}

// collect returns the non-empty buckets with Start >= after, oldest first.
func (br *bucketRing) collect(after float64) []SeriesBucket {
	out := make([]SeriesBucket, 0, 64)
	for i := range br.slots {
		b := &br.slots[i]
		if b.start < 0 || float64(b.start) < after || b.count == 0 {
			continue
		}
		out = append(out, SeriesBucket{
			Start: float64(b.start), Min: b.min, Max: b.max,
			Mean: b.sum / float64(b.count), Count: b.count,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// series is one metric's rollup state. Guarded by its shard's lock.
type series struct {
	raw rawRing
	b1  bucketRing
	b10 bucketRing
}

func newSeries() *series {
	return &series{b1: newBucketRing(1, b1Cap), b10: newBucketRing(10, b10Cap)}
}

type seriesShard struct {
	mu sync.Mutex
	m  map[string]*series
}

// seriesStore holds every series of one namespace instance.
type seriesStore struct {
	maxSeries int
	count     int // total series across shards; guarded by countMu
	countMu   sync.Mutex
	shards    [seriesShards]seriesShard
}

func newSeriesStore(maxSeries int) *seriesStore {
	if maxSeries <= 0 {
		maxSeries = defaultMaxSeries
	}
	st := &seriesStore{maxSeries: maxSeries}
	for i := range st.shards {
		st.shards[i].m = map[string]*series{}
	}
	return st
}

// fnv1a hashes the series key onto a shard.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func fnv1aBytes(s []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// observe folds one sample into its series, creating the series on first
// sight (up to the cap). key may alias a transient buffer: it is only
// copied when a new series is created.
func (st *seriesStore) observe(key []byte, t, v float64) {
	sh := &st.shards[fnv1aBytes(key)%seriesShards]
	sh.mu.Lock()
	se, ok := sh.m[string(key)] // no alloc: map lookup special case
	if !ok {
		st.countMu.Lock()
		if st.count >= st.maxSeries {
			st.countMu.Unlock()
			sh.mu.Unlock()
			telSeriesDropped.Inc()
			return
		}
		st.count++
		st.countMu.Unlock()
		se = newSeries()
		sh.m[string(key)] = se
	}
	se.raw.push(SeriesPoint{Time: t, Value: v})
	se.b1.add(t, v)
	se.b10.add(t, v)
	sh.mu.Unlock()
	telSeriesPoints.Inc()
}

// splitSeriesPath derives (key, sampleTime) from one leaf path: the last
// fully numeric segment is the sample timestamp and is folded out of the
// key; fallback stamps the sample with the publish arrival time.
func splitSeriesPath(path string, arrival float64) (string, float64) {
	key, t, _ := splitSeriesPathBytes([]byte(path), arrival, nil)
	return string(key), t
}

// splitSeriesPathBytes is the allocation-free core of splitSeriesPath for
// the ingest hot path: key aliases either path or scratch (grown and
// returned for reuse), so it is transient like the walk buffer it comes
// from.
func splitSeriesPathBytes(path []byte, arrival float64, scratch []byte) (key []byte, t float64, _ []byte) {
	t = arrival
	found := -1 // byte offset of the timestamp segment
	end := len(path)
	// Scan segments right to left so the innermost timestamp wins. The
	// leading-byte check keeps ParseFloat (whose failure allocates an
	// error) off the hot path for ordinary metric-name segments.
	for end > 0 {
		begin := bytes.LastIndexByte(path[:end], '/') + 1
		seg := path[begin:end]
		if len(seg) > 0 && (seg[0] == '.' || (seg[0] >= '0' && seg[0] <= '9')) {
			// Only plausible timestamps fold out: a numeric segment that is
			// negative or absurdly large ("-5", "1e30") stays in the key, so
			// hostile paths cannot smuggle ring-breaking values into t.
			if v, err := strconv.ParseFloat(string(seg), 64); err == nil && v >= 0 && v <= maxSeriesTime {
				t = v
				found = begin
				break
			}
		}
		end = begin - 1
	}
	if found < 0 {
		return path, t, scratch
	}
	segEnd := end
	switch {
	case found == 0:
		if segEnd < len(path) {
			return path[segEnd+1:], t, scratch
		}
		return nil, t, scratch
	case segEnd >= len(path):
		return path[:found-1], t, scratch
	default:
		scratch = append(scratch[:0], path[:found-1]...)
		scratch = append(scratch, path[segEnd:]...)
		return scratch, t, scratch
	}
}

// ingest walks the published tree's numeric leaves into the store and
// returns the series keys that were updated (for alert evaluation); keys is
// nil when the caller passes collect=false. The walk, the key derivation
// and the store lookup all reuse buffers — the steady-state publish path
// allocates nothing here.
func (st *seriesStore) ingest(arrival float64, n *conduit.Node, collect bool) (keys []string, maxT float64) {
	maxT = arrival
	var scratch []byte
	n.WalkBytes(func(path []byte, leaf *conduit.Node) bool {
		var v float64
		switch leaf.Kind() {
		case conduit.KindFloat:
			v, _ = leaf.Float("")
		case conduit.KindInt:
			iv, _ := leaf.Int("")
			v = float64(iv)
		default:
			return true
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		var key []byte
		var t float64
		key, t, scratch = splitSeriesPathBytes(path, arrival, scratch)
		if len(key) == 0 {
			return true
		}
		st.observe(key, t, v)
		if t > maxT {
			maxT = t
		}
		if collect {
			keys = append(keys, string(key))
		}
		return true
	})
	return keys, maxT
}

// query returns one series' data at the requested level. Raw level fills
// Points; bucket levels fill Buckets.
func (st *seriesStore) query(key string, level SeriesLevel, after float64) (pts []SeriesPoint, buckets []SeriesBucket, ok bool) {
	sh := &st.shards[fnv1a(key)%seriesShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	se, found := sh.m[key]
	if !found {
		return nil, nil, false
	}
	switch level {
	case LevelRaw:
		pts = make([]SeriesPoint, 0, se.raw.n)
		for i := 0; i < se.raw.n; i++ {
			p := se.raw.pts[(se.raw.head-se.raw.n+i+rawCap)%rawCap]
			if p.Time >= after {
				pts = append(pts, p)
			}
		}
		return pts, nil, true
	case Level10s:
		return nil, se.b10.collect(after), true
	default:
		return nil, se.b1.collect(after), true
	}
}

// window aggregates the 1 s buckets of [from, to] into one min/max/mean —
// the alert evaluator's view of a rule window.
func (st *seriesStore) window(key string, from, to float64) (SeriesBucket, bool) {
	_, buckets, ok := st.query(key, Level1s, from)
	if !ok || len(buckets) == 0 {
		return SeriesBucket{}, false
	}
	agg := SeriesBucket{Start: from, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, b := range buckets {
		if b.Start > to {
			continue
		}
		if b.Min < agg.Min {
			agg.Min = b.Min
		}
		if b.Max > agg.Max {
			agg.Max = b.Max
		}
		sum += b.Mean * float64(b.Count)
		agg.Count += b.Count
	}
	if agg.Count == 0 {
		return SeriesBucket{}, false
	}
	agg.Mean = sum / float64(agg.Count)
	return agg, true
}

// keysMatching returns the sorted series keys matching a '/'-separated glob
// ('*' = one segment, '**' = any tail); "" or "**" matches everything.
func (st *seriesStore) keysMatching(pattern string) []string {
	var out []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if pattern == "" || matchSeriesKey(pattern, k) {
				out = append(out, k)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// reset discards every series (phase boundaries, mirroring ResetNamespace).
func (st *seriesStore) reset() {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n := len(sh.m)
		sh.m = map[string]*series{}
		sh.mu.Unlock()
		st.countMu.Lock()
		st.count -= n
		st.countMu.Unlock()
	}
}

// matchSeriesKey implements the same glob semantics as conduit's Select
// over an already-flattened key: '*' matches exactly one segment, '**'
// matches any (possibly empty) tail.
func matchSeriesKey(pattern, key string) bool {
	return matchSegs(strings.Split(pattern, "/"), strings.Split(key, "/"))
}

func matchSegs(pat, segs []string) bool {
	for len(pat) > 0 {
		p := pat[0]
		if p == "**" {
			if len(pat) == 1 {
				return true
			}
			for i := 0; i <= len(segs); i++ {
				if matchSegs(pat[1:], segs[i:]) {
					return true
				}
			}
			return false
		}
		if len(segs) == 0 {
			return false
		}
		if p != "*" && p != segs[0] {
			return false
		}
		pat, segs = pat[1:], segs[1:]
	}
	return len(segs) == 0
}

// ---------------------------------------------------------------------------
// Service surface.

// Series is one rollup query result as the client sees it.
type Series struct {
	Key    string
	Level  SeriesLevel
	Points []SeriesPoint  // raw level
	Bucket []SeriesBucket // 1s / 10s levels
}

// ErrNoSeries reports a query for a series key that has no data.
var ErrNoSeries = fmt.Errorf("soma: no such series")

func (s *Service) seriesStoreFor(ns Namespace) (*seriesStore, error) {
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	if in.rollup == nil {
		return nil, fmt.Errorf("soma: rollups disabled")
	}
	return in.rollup, nil
}

// QuerySeries returns the rollup data for one series key of a namespace at
// the requested level, with Start/Time >= after.
func (s *Service) QuerySeries(ns Namespace, key string, level SeriesLevel, after float64) (Series, error) {
	if !level.valid() {
		return Series{}, fmt.Errorf("soma: unknown series level %q", level)
	}
	st, err := s.seriesStoreFor(ns)
	if err != nil {
		return Series{}, err
	}
	pts, buckets, ok := st.query(key, level, after)
	if !ok {
		return Series{}, fmt.Errorf("%w: %s/%s", ErrNoSeries, ns, key)
	}
	return Series{Key: key, Level: level, Points: pts, Bucket: buckets}, nil
}

// SeriesKeys lists the series keys of a namespace matching a glob pattern
// ("" = all), sorted.
func (s *Service) SeriesKeys(ns Namespace, pattern string) ([]string, error) {
	st, err := s.seriesStoreFor(ns)
	if err != nil {
		return nil, err
	}
	return st.keysMatching(pattern), nil
}

// ---------------------------------------------------------------------------
// RPC surface.
//
//	series req : {ns, key, level, after}        → resp: {key, level, times[], min[], max[], mean[], count[]}
//	             {ns, pattern}                  → resp: {keys[...]}

// handleSeries answers over a pooled encode buffer (ownedFrame): series
// responses carry per-request bucket arrays, so they are rebuilt every call
// but no longer allocate a fresh wire buffer each time.
func (s *Service) handleSeries(_ context.Context, payload []byte) (mercury.Response, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return mercury.Response{}, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return mercury.Response{}, err
	}
	if s.Stopped() {
		return mercury.Response{}, ErrServiceStopped
	}
	resp := conduit.NewNode()
	if key, ok := req.StringVal("key"); ok {
		level := Level1s
		if lv, ok := req.StringVal("level"); ok && lv != "" {
			level = SeriesLevel(lv)
		}
		after, _ := req.Float("after")
		se, err := s.QuerySeries(ns, key, level, after)
		if err != nil {
			return mercury.Response{}, err
		}
		resp.SetString("key", se.Key)
		resp.SetString("level", string(se.Level))
		if level == LevelRaw {
			times := make([]float64, len(se.Points))
			vals := make([]float64, len(se.Points))
			for i, p := range se.Points {
				times[i], vals[i] = p.Time, p.Value
			}
			resp.SetFloatArray("times", times)
			resp.SetFloatArray("values", vals)
			return ownedFrame(resp)
		}
		times := make([]float64, len(se.Bucket))
		mins := make([]float64, len(se.Bucket))
		maxs := make([]float64, len(se.Bucket))
		means := make([]float64, len(se.Bucket))
		counts := make([]int64, len(se.Bucket))
		for i, b := range se.Bucket {
			times[i], mins[i], maxs[i], means[i], counts[i] = b.Start, b.Min, b.Max, b.Mean, b.Count
		}
		resp.SetFloatArray("times", times)
		resp.SetFloatArray("min", mins)
		resp.SetFloatArray("max", maxs)
		resp.SetFloatArray("mean", means)
		resp.SetIntArray("count", counts)
		return ownedFrame(resp)
	}
	pattern, _ := req.StringVal("pattern")
	keys, err := s.SeriesKeys(ns, pattern)
	if err != nil {
		return mercury.Response{}, err
	}
	var keyBuf [32]byte
	for i, k := range keys {
		resp.SetString(string(appendMatchKey(keyBuf[:0], i)), k)
	}
	return ownedFrame(resp)
}

// ---------------------------------------------------------------------------
// Client surface.

// Series fetches one series' rollup data via soma.series: raw points, or
// 1s/10s min/max/mean/count buckets, with Time/Start >= after.
func (c *Client) Series(ns Namespace, key string, level SeriesLevel, after float64) (Series, error) {
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.SetString("key", key)
	req.SetString("level", string(level))
	req.SetFloat("after", after)
	out, err := c.ep.Call(context.Background(), RPCSeries, req.EncodeBinary())
	if err != nil {
		return Series{}, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return Series{}, err
	}
	se := Series{}
	se.Key, _ = resp.StringVal("key")
	if lv, ok := resp.StringVal("level"); ok {
		se.Level = SeriesLevel(lv)
	}
	times, _ := resp.FloatArray("times")
	if se.Level == LevelRaw {
		values, _ := resp.FloatArray("values")
		for i := range times {
			if i < len(values) {
				se.Points = append(se.Points, SeriesPoint{Time: times[i], Value: values[i]})
			}
		}
		return se, nil
	}
	mins, _ := resp.FloatArray("min")
	maxs, _ := resp.FloatArray("max")
	means, _ := resp.FloatArray("mean")
	counts, _ := resp.IntArray("count")
	for i := range times {
		if i >= len(mins) || i >= len(maxs) || i >= len(means) || i >= len(counts) {
			break
		}
		se.Bucket = append(se.Bucket, SeriesBucket{
			Start: times[i], Min: mins[i], Max: maxs[i], Mean: means[i], Count: counts[i],
		})
	}
	return se, nil
}

// SeriesKeys lists a namespace's rollup series keys matching a glob pattern
// ("" = all), sorted.
func (c *Client) SeriesKeys(ns Namespace, pattern string) ([]string, error) {
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.SetString("pattern", pattern)
	out, err := c.ep.Call(context.Background(), RPCSeries, req.EncodeBinary())
	if err != nil {
		return nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, err
	}
	matches, ok := resp.Get("matches")
	if !ok {
		return nil, nil
	}
	var keys []string
	for _, name := range matches.ChildNames() {
		if k, ok := matches.StringVal(name); ok {
			keys = append(keys, k)
		}
	}
	return keys, nil
}
