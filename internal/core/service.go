package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/mercury"
)

// ServiceConfig configures a SOMA service task.
type ServiceConfig struct {
	// RanksPerNamespace is the number of service processes assigned to each
	// namespace instance — the "SOMA Ranks Per Namespace" row of the
	// paper's Tables 1 and 2. It scales each instance's modeled capacity;
	// the Go implementation itself is concurrent regardless.
	RanksPerNamespace int
	// Shared collapses all namespaces into a single instance with one lock
	// (the ablation baseline for the per-namespace instance split).
	Shared bool
	// MaxRecords bounds each instance's publish history ring; 0 means the
	// default (65536).
	MaxRecords int
	// Clock stamps arrivals; defaults to a real clock.
	Clock des.Clock
}

func (c *ServiceConfig) defaults() {
	if c.RanksPerNamespace < 1 {
		c.RanksPerNamespace = 1
	}
	if c.MaxRecords == 0 {
		c.MaxRecords = 65536
	}
	if c.Clock == nil {
		c.Clock = des.NewRealClock()
	}
}

// InstanceStats summarizes one namespace instance's activity.
type InstanceStats struct {
	Namespace Namespace
	Ranks     int
	Publishes int64
	Leaves    int64 // leaves currently in the merged tree
	BytesIn   int64
	LastTime  float64
}

// instance is the storage and aggregation unit for one namespace.
type instance struct {
	ns    Namespace
	ranks int

	mu      sync.RWMutex
	merged  *conduit.Node
	history []record // ring buffer of raw publishes
	head    int
	count   int
	pubs    int64
	bytesIn int64
	last    float64
}

type record struct {
	time float64
	node *conduit.Node
}

func newInstance(ns Namespace, ranks, maxRecords int) *instance {
	return &instance{
		ns:      ns,
		ranks:   ranks,
		merged:  conduit.NewNode(),
		history: make([]record, maxRecords),
	}
}

func (in *instance) publish(now float64, n *conduit.Node, rawBytes int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.merged.Merge(n)
	in.history[in.head] = record{time: now, node: n}
	in.head = (in.head + 1) % len(in.history)
	if in.count < len(in.history) {
		in.count++
	}
	in.pubs++
	in.bytesIn += int64(rawBytes)
	in.last = now
}

func (in *instance) query(path string) *conduit.Node {
	in.mu.RLock()
	defer in.mu.RUnlock()
	sub, ok := in.merged.Get(path)
	if !ok {
		return conduit.NewNode()
	}
	return sub.Clone()
}

func (in *instance) stats() InstanceStats {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return InstanceStats{
		Namespace: in.ns,
		Ranks:     in.ranks,
		Publishes: in.pubs,
		Leaves:    int64(in.merged.NumLeaves()),
		BytesIn:   in.bytesIn,
		LastTime:  in.last,
	}
}

// historySince returns raw publishes with time > after, oldest first.
func (in *instance) historySince(after float64) []*conduit.Node {
	in.mu.RLock()
	defer in.mu.RUnlock()
	var out []*conduit.Node
	for i := 0; i < in.count; i++ {
		idx := (in.head - in.count + i + len(in.history)) % len(in.history)
		if in.history[idx].time > after {
			out = append(out, in.history[idx].node)
		}
	}
	return out
}

// Service is the SOMA service task: N service processes split across one
// instance per namespace, fronted by RPC handlers on a mercury engine.
type Service struct {
	cfg       ServiceConfig
	engine    *mercury.Engine
	instances map[Namespace]*instance

	mu      sync.Mutex
	addrs   []string
	stopped bool
}

// RPC handler names the service registers.
const (
	RPCPublish  = "soma.publish"
	RPCQuery    = "soma.query"
	RPCStats    = "soma.stats"
	RPCShutdown = "soma.shutdown"
	RPCReset    = "soma.reset"
	RPCSelect   = "soma.select"
)

// ErrServiceStopped is returned for requests after shutdown.
var ErrServiceStopped = errors.New("soma: service stopped")

// NewService builds a service with one instance per namespace (or one
// shared instance when cfg.Shared).
func NewService(cfg ServiceConfig) *Service {
	cfg.defaults()
	s := &Service{
		cfg:       cfg,
		engine:    mercury.NewEngine(),
		instances: map[Namespace]*instance{},
	}
	if cfg.Shared {
		shared := newInstance("shared", cfg.RanksPerNamespace*len(Namespaces), cfg.MaxRecords)
		for _, ns := range Namespaces {
			s.instances[ns] = shared
		}
	} else {
		for _, ns := range Namespaces {
			s.instances[ns] = newInstance(ns, cfg.RanksPerNamespace, cfg.MaxRecords)
		}
	}
	s.engine.Register(RPCPublish, s.handlePublish)
	s.engine.Register(RPCQuery, s.handleQuery)
	s.engine.Register(RPCStats, s.handleStats)
	s.engine.Register(RPCShutdown, s.handleShutdown)
	s.engine.Register(RPCReset, s.handleReset)
	s.engine.Register(RPCSelect, s.handleSelect)
	return s
}

// Listen exposes the service at addr ("inproc://..." or "tcp://...") and
// returns the concrete address clients connect to — the RPC address the
// service makes "publicly known within the workflow".
func (s *Service) Listen(addr string) (string, error) {
	concrete, err := s.engine.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addrs = append(s.addrs, concrete)
	s.mu.Unlock()
	return concrete, nil
}

// Addrs returns every address the service listens on.
func (s *Service) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs...)
}

// Engine exposes the underlying RPC engine (stats, tests).
func (s *Service) Engine() *mercury.Engine { return s.engine }

// Close shuts the service down.
func (s *Service) Close() error {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	return s.engine.Close()
}

// Stopped reports whether shutdown was requested.
func (s *Service) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

func (s *Service) instanceFor(ns Namespace) (*instance, error) {
	in, ok := s.instances[ns]
	if !ok {
		return nil, &ErrUnknownNamespace{NS: ns}
	}
	return in, nil
}

// Publish ingests a tree into a namespace directly (the local call path of
// the client stub; also what the in-proc simulated experiments use after
// RPC framing). rawBytes is the wire size for accounting (0 for local).
func (s *Service) Publish(ns Namespace, n *conduit.Node, rawBytes int) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return err
	}
	in.publish(s.cfg.Clock.Now(), n, rawBytes)
	return nil
}

// Query returns a deep copy of the merged subtree at path within ns.
func (s *Service) Query(ns Namespace, path string) (*conduit.Node, error) {
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	return in.query(path), nil
}

// History returns the raw publishes into ns newer than the given service
// timestamp, oldest first.
func (s *Service) History(ns Namespace, after float64) ([]*conduit.Node, error) {
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	return in.historySince(after), nil
}

// Select returns the leaf paths in ns matching a '/'-separated glob
// pattern ('*' = one segment, '**' = any tail), with the numeric values
// where leaves are numeric. Analyses use it to slice a namespace without
// pulling whole subtrees: Select(NSHardware, "PROC/*/*/CPU Util").
func (s *Service) Select(ns Namespace, pattern string) (paths []string, values map[string]float64, err error) {
	if s.Stopped() {
		return nil, nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, nil, err
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	paths = in.merged.Select(pattern)
	values = map[string]float64{}
	for _, p := range paths {
		if v, ok := in.merged.Float(p); ok {
			values[p] = v
		}
	}
	return paths, values, nil
}

// ResetNamespace discards a namespace's merged tree and publish history,
// keeping the counters. Long-running deployments call this at phase
// boundaries (after a snapshot) to bound the merged tree's growth.
func (s *Service) ResetNamespace(ns Namespace) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.merged = conduit.NewNode()
	for i := range in.history {
		in.history[i] = record{}
	}
	in.head, in.count = 0, 0
	return nil
}

// Stats returns per-instance statistics in namespace order. With a shared
// instance, the same aggregate appears once under namespace "shared".
func (s *Service) Stats() []InstanceStats {
	if s.cfg.Shared {
		return []InstanceStats{s.instances[NSWorkflow].stats()}
	}
	out := make([]InstanceStats, 0, len(Namespaces))
	for _, ns := range Namespaces {
		out = append(out, s.instances[ns].stats())
	}
	return out
}

// ---------------------------------------------------------------------------
// RPC surface. Requests and responses are themselves Conduit trees on the
// wire (the service eats its own data model):
//
//	publish req : {ns: string, data: <tree>}
//	query   req : {ns: string, path: string}  → resp: {data: <tree>}
//	stats   req : {}                          → resp: {<ns>/{publishes,leaves,...}}
//	shutdown    : {}                          → resp: {}

func envelopeNS(req *conduit.Node) (Namespace, error) {
	nsStr, ok := req.StringVal("ns")
	if !ok {
		return "", fmt.Errorf("soma: request missing ns field")
	}
	ns := Namespace(nsStr)
	if !ns.Valid() {
		return "", &ErrUnknownNamespace{NS: ns}
	}
	return ns, nil
}

func (s *Service) handlePublish(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	data, ok := req.Get("data")
	if !ok {
		return nil, fmt.Errorf("soma: publish missing data")
	}
	if err := s.Publish(ns, data, len(payload)); err != nil {
		return nil, err
	}
	return conduit.NewNode().EncodeBinary(), nil
}

func (s *Service) handleQuery(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	path, _ := req.StringVal("path")
	sub, err := s.Query(ns, path)
	if err != nil {
		return nil, err
	}
	resp := conduit.NewNode()
	resp.Fetch("data").Merge(sub)
	return resp.EncodeBinary(), nil
}

func (s *Service) handleStats(_ context.Context, _ []byte) ([]byte, error) {
	resp := conduit.NewNode()
	for _, st := range s.Stats() {
		base := string(st.Namespace)
		resp.SetInt(base+"/ranks", int64(st.Ranks))
		resp.SetInt(base+"/publishes", st.Publishes)
		resp.SetInt(base+"/leaves", st.Leaves)
		resp.SetInt(base+"/bytes_in", st.BytesIn)
		resp.SetFloat(base+"/last_time", st.LastTime)
	}
	return resp.EncodeBinary(), nil
}

func (s *Service) handleShutdown(_ context.Context, _ []byte) ([]byte, error) {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	return conduit.NewNode().EncodeBinary(), nil
}

func (s *Service) handleSelect(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	pattern, _ := req.StringVal("pattern")
	paths, values, err := s.Select(ns, pattern)
	if err != nil {
		return nil, err
	}
	resp := conduit.NewNode()
	for i, p := range paths {
		base := fmt.Sprintf("matches/%06d", i)
		resp.SetString(base+"/path", p)
		if v, ok := values[p]; ok {
			resp.SetFloat(base+"/value", v)
		}
	}
	return resp.EncodeBinary(), nil
}

func (s *Service) handleReset(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	if err := s.ResetNamespace(ns); err != nil {
		return nil, err
	}
	return conduit.NewNode().EncodeBinary(), nil
}
