package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
	"github.com/hpcobs/gosoma/internal/zmq"
)

// Service-side telemetry: ingest and rebuild latency histograms, shared by
// all service instances in the process (one somad serves one registry).
var (
	telPubLatency     = telemetry.Default().Histogram("core.publish.latency")
	telQueryLatency   = telemetry.Default().Histogram("core.query.latency")
	telRebuildLatency = telemetry.Default().Histogram("core.snapshot.rebuild.latency")
	telPublishes      = telemetry.Default().Counter("core.publishes")
	// Batch ingest accounting: one frame / one latency observation per batch,
	// while telPublishes still counts every leaf publish inside it.
	telBatchLatency = telemetry.Default().Histogram("core.publish.batch.latency")
	telBatchFrames  = telemetry.Default().Counter("core.publish.batch.frames")

	// Query fast-path accounting: encoded-frame cache hits/misses across
	// query, select and stats serving, delta polls answered "unchanged", and
	// the wire bytes those tiny answers saved against the full frame.
	telQueryCacheHits   = telemetry.Default().Counter("core.query.cache_hits")
	telQueryCacheMisses = telemetry.Default().Counter("core.query.cache_misses")
	telDeltaUnchanged   = telemetry.Default().Counter("core.query.delta_unchanged")
	telDeltaBytesSaved  = telemetry.Default().Counter("core.query.delta_bytes_saved")
)

// ServiceConfig configures a SOMA service task.
type ServiceConfig struct {
	// RanksPerNamespace is the number of service processes assigned to each
	// namespace instance — the "SOMA Ranks Per Namespace" row of the
	// paper's Tables 1 and 2. Each instance is sharded into that many lock
	// stripes (capped at GOMAXPROCS), so more ranks means more concurrent
	// publish capacity, exactly the knob the Scaling experiments turn.
	RanksPerNamespace int
	// Shared collapses all namespaces into a single instance (the ablation
	// baseline for the per-namespace instance split): all four namespaces
	// then contend for one instance's stripes instead of each owning its
	// own set.
	Shared bool
	// MaxRecords bounds each instance's publish history ring, split evenly
	// across its stripes; 0 means the default (65536).
	MaxRecords int
	// Clock stamps arrivals; defaults to a real clock.
	Clock des.Clock
	// SubscriberHighWater bounds each update-bus subscriber's buffered
	// message count before the service starts dropping for that subscriber;
	// 0 means zmq.DefaultHighWater.
	SubscriberHighWater int
	// DisableRollups turns off the windowed series rollups (and with them
	// soma.series and threshold-alert evaluation).
	DisableRollups bool
	// RollupMaxSeries caps distinct rollup series per namespace instance;
	// 0 means the default (8192).
	RollupMaxSeries int
	// EngineOptions is passed through to the service's mercury engine —
	// chaos tests use it to install a fault-injection transport
	// (mercury.WithInjector).
	EngineOptions []mercury.Option
}

func (c *ServiceConfig) defaults() {
	if c.RanksPerNamespace < 1 {
		c.RanksPerNamespace = 1
	}
	if c.MaxRecords == 0 {
		c.MaxRecords = 65536
	}
	if c.Clock == nil {
		c.Clock = des.NewRealClock()
	}
}

// stripeCount maps configured ranks onto lock stripes: one stripe per rank,
// capped at GOMAXPROCS (more stripes than runnable threads only adds
// footprint, not parallelism).
func stripeCount(ranks int) int {
	n := ranks
	if maxp := runtime.GOMAXPROCS(0); n > maxp {
		n = maxp
	}
	if n < 1 {
		n = 1
	}
	return n
}

// InstanceStats summarizes one namespace instance's activity.
type InstanceStats struct {
	Namespace Namespace
	Ranks     int
	Stripes   int
	Publishes int64
	Leaves    int64 // leaves currently in the merged snapshot
	BytesIn   int64
	LastTime  float64
}

// record is one raw publish as stored in a stripe's history ring. seq gives
// the global arrival order within the instance (ring entries from different
// stripes are re-interleaved by seq when history is read). Exactly one of
// node and enc is set: the raw batch ingest path stores the entry's
// validated wire bytes (subslices of one shared frame copy) instead of a
// materialized tree, deferring decode to the fold or a history read —
// thousands of pending single-leaf publishes then cost the garbage
// collector a handful of flat byte buffers instead of a map-and-string
// forest.
type record struct {
	time float64
	seq  uint64
	node *conduit.Node
	enc  []byte
}

// tree returns the record's publish tree, decoding lazily on the raw path.
// enc was ValidateBinary'd at ingest, so decode failure is impossible; a
// zero record decodes to nil.
func (r *record) tree() *conduit.Node {
	if r.node != nil || r.enc == nil {
		return r.node
	}
	n, err := conduit.DecodeBinary(r.enc)
	if err != nil {
		return conduit.NewNode() // unreachable: enc is pre-validated
	}
	return n
}

// stripe is one lock-striped shard of an instance: a publish appends here in
// O(1) and never touches the merged tree.
type stripe struct {
	mu      sync.Mutex
	pending []record // publishes not yet folded into the snapshot
	history []record // ring buffer of raw publishes
	head    int
	count   int
	pubs    int64
	bytesIn int64
	last    float64
}

// snapshot is an immutable, generation-stamped merged view of everything
// published into an instance. Readers share it without copying; it is
// replaced wholesale (copy-on-read) when stale.
//
// The (epoch, gen) pair is the snapshot's identity stamp on the wire: gen
// counts state changes within one instance lifetime, epoch is drawn at
// random when the instance is built and redrawn on every reset. A client
// that presents a matching stamp provably holds this exact state — equal
// stamps cannot span a reset (the epoch changed) or a service restart (a
// fresh process draws a fresh epoch), which is what makes the delta-query
// "unchanged" answer safe.
type snapshot struct {
	epoch uint64
	gen   uint64
	tree  *conduit.Node

	// enc caches encoded RPC response frames built against this snapshot's
	// tree, keyed by request shape (query path / select pattern / the delta
	// "unchanged" frame). The cache lives and dies with the snapshot, so
	// invalidation is the generation bump that replaces the snapshot — no
	// separate bookkeeping. Entries are immutable once stored: handlers hand
	// them to the transport by reference.
	encMu sync.RWMutex
	enc   map[frameKey][]byte
}

// frameKey names one cached response frame: kind 'q' (query, key = path),
// 's' (select, key = pattern) or 'u' (the delta "unchanged" frame).
type frameKey struct {
	kind byte
	key  string
}

// Frame-cache bounds: a snapshot caches at most maxCachedFrames distinct
// frames (beyond that, extra request shapes are rebuilt per call), and
// frames larger than maxCachedFrameBytes are never cached — snapshots churn
// with every publish burst, and pinning megabyte frames per generation
// would trade the allocation win for memory pressure.
const (
	maxCachedFrames     = 512
	maxCachedFrameBytes = 1 << 20
)

// cached returns the frame stored under k, or nil.
func (s *snapshot) cached(k frameKey) []byte {
	s.encMu.RLock()
	f := s.enc[k]
	s.encMu.RUnlock()
	return f
}

// store caches frame under k and returns the canonical copy: when a racing
// builder already stored one, the first frame wins so all callers serve the
// same bytes.
func (s *snapshot) store(k frameKey, frame []byte) []byte {
	if len(frame) > maxCachedFrameBytes {
		return frame
	}
	s.encMu.Lock()
	defer s.encMu.Unlock()
	if prior := s.enc[k]; prior != nil {
		return prior
	}
	if s.enc == nil {
		s.enc = make(map[frameKey][]byte, 8)
	}
	if len(s.enc) < maxCachedFrames {
		s.enc[k] = frame
	}
	return frame
}

// newEpoch draws a reset-epoch: uniformly random, truncated to 63 bits so
// it survives the wire's signed varint, and never zero — a client that has
// no memo yet presents (0, 0), which must never match.
func newEpoch() uint64 {
	return rand.Uint64()>>1 | 1
}

// instance is the storage and aggregation unit for one namespace. Publishes
// fan out across stripes; Query/Select/Stats read through a lazily rebuilt
// merge snapshot.
type instance struct {
	ns      Namespace
	ranks   int
	stripes []*stripe

	// rr round-robins publishes across stripes; seq stamps global arrival
	// order; gen counts state changes (publishes and resets) and is bumped
	// only after the change is visible in a stripe, so a snapshot stamped
	// with gen G contains every change counted by G.
	rr  atomic.Uint64
	seq atomic.Uint64
	gen atomic.Uint64
	// epoch is the reset-epoch half of the snapshot stamp; it is only
	// written under rebuildMu (resets), so a rebuild holding that lock reads
	// a value consistent with the gen it stamps.
	epoch atomic.Uint64

	snap atomic.Pointer[snapshot]
	// rebuildMu serializes snapshot rebuilds and resets; publishes never
	// take it.
	rebuildMu sync.Mutex
	// foldScratch is the previous rebuild's drained-record buffer, recycled
	// (under rebuildMu) so steady-state rebuilds stop allocating fold
	// batches; see currentSnapshot.
	foldScratch []record

	// rollup holds the instance's windowed time-series buckets (see
	// series.go); nil when rollups are disabled.
	rollup *seriesStore
}

func newInstance(ns Namespace, ranks, maxRecords, stripes int) *instance {
	in := &instance{ns: ns, ranks: ranks, stripes: make([]*stripe, stripes)}
	per := maxRecords / stripes
	if per < 1 {
		per = 1
	}
	for i := range in.stripes {
		in.stripes[i] = &stripe{history: make([]record, per)}
	}
	in.epoch.Store(newEpoch())
	in.snap.Store(&snapshot{epoch: in.epoch.Load(), tree: conduit.NewNode()})
	return in
}

// publishBatch appends a run of same-namespace publishes under a SINGLE
// stripe-lock acquisition — the server half of wire batching. Sequence
// numbers are taken inside the lock so the run occupies a contiguous seq
// range and later merges preserve the batch's internal order; the
// generation bumps once, after every record is visible, so a snapshot
// stamped with the new gen contains the whole run.
func (in *instance) publishBatch(now float64, entries []conduit.BatchEntry, rawBytes int) {
	if len(entries) == 0 {
		return
	}
	st := in.stripes[int(in.rr.Add(1))%len(in.stripes)]
	st.mu.Lock()
	for k := range entries {
		rec := record{time: now, seq: in.seq.Add(1), node: entries[k].Tree}
		st.pending = append(st.pending, rec)
		st.history[st.head] = rec
		st.head = (st.head + 1) % len(st.history)
		if st.count < len(st.history) {
			st.count++
		}
	}
	st.pubs += int64(len(entries))
	st.bytesIn += int64(rawBytes)
	st.last = now
	st.mu.Unlock()
	in.gen.Add(uint64(len(entries)))
}

// publishBatchRaw is publishBatch for pre-validated wire entries: records
// carry the encoded bytes (subslices of one retained frame copy) and no
// tree is built at all — the fold and history reads decode lazily. This is
// the 1M-publishes/sec ingest shape: per entry it costs two ring stores and
// a seq bump under one stripe lock held once for the whole run.
func (in *instance) publishBatchRaw(now float64, encs [][]byte, rawBytes int) {
	if len(encs) == 0 {
		return
	}
	st := in.stripes[int(in.rr.Add(1))%len(in.stripes)]
	st.mu.Lock()
	for _, enc := range encs {
		rec := record{time: now, seq: in.seq.Add(1), enc: enc}
		st.pending = append(st.pending, rec)
		st.history[st.head] = rec
		st.head = (st.head + 1) % len(st.history)
		if st.count < len(st.history) {
			st.count++
		}
	}
	st.pubs += int64(len(encs))
	st.bytesIn += int64(rawBytes)
	st.last = now
	st.mu.Unlock()
	in.gen.Add(uint64(len(encs)))
}

// publish is the O(1) ingest hot path: pick a stripe, append to its pending
// batch and history ring under the stripe's lock, bump the generation. No
// tree is merged here; merging is deferred to the next snapshot rebuild.
func (in *instance) publish(now float64, n *conduit.Node, rawBytes int) {
	seq := in.seq.Add(1)
	st := in.stripes[int(in.rr.Add(1))%len(in.stripes)]
	st.mu.Lock()
	st.pending = append(st.pending, record{time: now, seq: seq, node: n})
	st.history[st.head] = record{time: now, seq: seq, node: n}
	st.head = (st.head + 1) % len(st.history)
	if st.count < len(st.history) {
		st.count++
	}
	st.pubs++
	st.bytesIn += int64(rawBytes)
	st.last = now
	st.mu.Unlock()
	in.gen.Add(1)
}

// snapshotTree returns the instance's merged tree; see currentSnapshot.
func (in *instance) snapshotTree() *conduit.Node {
	return in.currentSnapshot().tree
}

// currentSnapshot returns the instance's up-to-date snapshot, rebuilding it
// copy-on-read only when publishes (or a reset) have landed since the
// cached generation. The returned snapshot is immutable and shared:
// repeated queries against an unchanged instance cost two atomic loads, and
// its (epoch, gen) stamp is consistent — both are read under rebuildMu, the
// lock resets hold while changing them.
func (in *instance) currentSnapshot() *snapshot {
	s := in.snap.Load()
	if s.gen == in.gen.Load() {
		return s
	}
	in.rebuildMu.Lock()
	defer in.rebuildMu.Unlock()
	// Capture the generation before draining: every change counted by g is
	// already appended to a stripe, so the rebuilt tree contains it.
	// Changes landing during the drain may also be folded in; they only
	// cause one spurious (empty) rebuild later.
	g := in.gen.Load()
	s = in.snap.Load()
	if s.gen == g {
		return s
	}
	rebuildStart := time.Now()
	defer telRebuildLatency.ObserveSince(rebuildStart)
	// At sustained batch-ingest rates a rebuild drains hundreds of
	// thousands of records, so the drain avoids per-record work wherever it
	// can: the first dirty stripe's pending slice is stolen wholesale (a
	// swap, no copy — with one hot stripe, the single-core and single-
	// publisher shapes, that is the entire drain), later stripes append-
	// copy, and the drained buffer is recycled through foldScratch for the
	// next rebuild. Vacated slices keep their capacity unless a spike grew
	// them past pendingKeepCap. Stale records past a recycled slice's
	// length pin their batch frames until overwritten — a window bounded by
	// one rebuild interval, far cheaper than memclr'ing tens of megabytes
	// of drained records on every rebuild.
	scratch := in.foldScratch[:0]
	in.foldScratch = nil
	pend := scratch
	dirty := 0
	for _, st := range in.stripes {
		st.mu.Lock()
		if len(st.pending) == 0 {
			st.mu.Unlock()
			continue
		}
		dirty++
		if dirty == 1 {
			pend, st.pending = st.pending, scratch
		} else {
			pend = append(pend, st.pending...)
			if cap(st.pending) > pendingKeepCap {
				st.pending = nil
			} else {
				st.pending = st.pending[:0]
			}
		}
		st.mu.Unlock()
	}
	if dirty > 1 {
		// Merge in global arrival order so last-writer-wins semantics on
		// colliding leaf paths match the pre-sharded single-lock behaviour.
		// One stripe's records are already seq-ordered — appended under the
		// stripe lock with a monotonic stamp — so a single-stripe drain
		// skips the sort.
		sort.Slice(pend, func(i, j int) bool { return pend[i].seq < pend[j].seq })
	}
	// Fold the batch into one small delta first, then graft it onto the
	// snapshot with a single copy-on-write pass: the snapshot's wide
	// fan-out nodes are copied once per rebuild, not once per publish.
	batch := foldRecords(pend, dirty)
	tree := conduit.MergeCOW(s.tree, batch)
	next := &snapshot{epoch: in.epoch.Load(), gen: g, tree: tree}
	in.snap.Store(next)
	if cap(pend) <= pendingKeepCap {
		in.foldScratch = pend[:0]
	}
	return next
}

// pendingKeepCap bounds the record capacity a stripe's pending slice (and
// the rebuild's drain buffer) may retain between rebuilds: large enough
// that a full second of million-publish/sec ingest between query folds
// recycles without reallocating (past the cap every rebuild regrows the
// slice from zero — repeated doubling, large-alloc zeroing, and copy were
// a fifth of the profile), small enough (records are 56 bytes, so the cap
// is ~120MB) that an idle instance isn't sitting on an unbounded spike's
// memory forever.
const pendingKeepCap = 1 << 21

// Parallel-merge thresholds: a rebuild folds its drained batch with a
// bounded worker pool only when more than mergeParallelStripes stripes
// contributed (fewer means publish concurrency was low and the batch is
// probably small) AND the batch holds at least mergeParallelMinRecords
// records (goroutine startup costs more than folding a few dozen trees).
const (
	mergeParallelStripes    = 4
	mergeParallelMinRecords = 256
	mergeMaxWorkers         = 8
)

// foldRecords merges the seq-sorted drained batch into one delta tree.
// Small batches fold sequentially. Large ones are split into contiguous
// seq-ranges, folded into per-worker partial trees concurrently, and the
// partials are combined in seq order — later ranges override earlier ones,
// preserving last-writer-wins on colliding leaf paths exactly like the
// sequential fold (chunked folding can differ from a strictly record-by-
// record merge only where a path flips between leaf and object across the
// batch, the same caveat batch folding itself already carries).
//
// The accumulator is a plain mutable tree fed by Merge (which copies record
// subtrees, never aliases them), not a MergeCOW overlay chain: the batch
// tree is private until it is grafted onto the snapshot, so per-record CoW
// bookkeeping is pure overhead — and at high-rate single-leaf ingest the
// overlay chains it builds made folding a drained batch quadratic.
func foldRecords(pend []record, dirty int) *conduit.Node {
	if dirty <= mergeParallelStripes || len(pend) < mergeParallelMinRecords {
		if len(pend) == 0 {
			return nil
		}
		batch := conduit.NewNode()
		var mc conduit.MergeCache
		for _, r := range pend {
			foldRecord(batch, &r, &mc)
		}
		return batch
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > mergeMaxWorkers {
		workers = mergeMaxWorkers
	}
	if workers > dirty {
		workers = dirty
	}
	chunk := (len(pend) + workers - 1) / workers
	partials := make([]*conduit.Node, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pend) {
			hi = len(pend)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, recs []record) {
			defer wg.Done()
			part := conduit.NewNode()
			var mc conduit.MergeCache
			for _, r := range recs {
				foldRecord(part, &r, &mc)
			}
			partials[w] = part
		}(w, pend[lo:hi])
	}
	wg.Wait()
	var batch *conduit.Node
	for _, part := range partials {
		if batch == nil {
			batch = part // partials are private; the first seeds the accumulator
			continue
		}
		batch.Merge(part)
	}
	return batch
}

// foldRecord merges one pending record into the private fold accumulator:
// decoded records through Merge, raw records straight from their wire bytes
// with no intermediate tree. The merge cache memoizes shared ancestor paths
// across consecutive raw records; a Merge mutates the accumulator behind
// the cache's back, so it resets the memo.
func foldRecord(batch *conduit.Node, r *record, mc *conduit.MergeCache) {
	if r.enc != nil {
		// enc was validated at ingest; an error here is unreachable.
		_ = conduit.MergeBinaryIntoCached(batch, r.enc, mc)
		return
	}
	mc.Reset()
	batch.Merge(r.node)
}

// query returns the merged subtree at path. The result is part of the
// immutable snapshot — shared, not cloned; callers must not modify it.
func (in *instance) query(path string) *conduit.Node {
	sub, ok := in.snapshotTree().Get(path)
	if !ok {
		return conduit.NewNode()
	}
	return sub
}

// queryFrame returns the wire-ready soma.query response frame for path:
// {epoch, gen, data: <subtree>}. A repeat query against an unchanged
// instance is the hot path — two atomic loads, one RLock'd map probe, zero
// tree walk, zero allocation.
func (in *instance) queryFrame(path string) []byte {
	return in.queryFrameAt(in.currentSnapshot(), path)
}

func (in *instance) queryFrameAt(s *snapshot, path string) []byte {
	k := frameKey{kind: 'q', key: path}
	if f := s.cached(k); f != nil {
		telQueryCacheHits.Inc()
		return f
	}
	telQueryCacheMisses.Inc()
	sub, ok := s.tree.Get(path)
	if !ok {
		sub = conduit.NewNode()
	}
	resp := conduit.NewNode()
	resp.SetInt("epoch", int64(s.epoch))
	resp.SetInt("gen", int64(s.gen))
	// Attach the immutable snapshot subtree instead of deep-merging it into
	// the envelope: encoding only reads the tree.
	resp.Attach("data", sub)
	return s.store(k, resp.EncodeBinaryStable())
}

// selectFrame returns the wire-ready soma.select response frame for
// pattern, cached against the snapshot exactly like queryFrame.
func (in *instance) selectFrame(pattern string) []byte {
	s := in.currentSnapshot()
	k := frameKey{kind: 's', key: pattern}
	if f := s.cached(k); f != nil {
		telQueryCacheHits.Inc()
		return f
	}
	telQueryCacheMisses.Inc()
	paths := s.tree.Select(pattern)
	resp := conduit.NewNode()
	var keyBuf [32]byte
	for i, p := range paths {
		base := string(appendMatchKey(keyBuf[:0], i))
		resp.SetString(base+"/path", p)
		if v, ok := s.tree.Float(p); ok {
			resp.SetFloat(base+"/value", v)
		}
	}
	return s.store(k, resp.EncodeBinaryStable())
}

// unchangedFrame returns the tiny {epoch, gen, unchanged: true} frame the
// delta query answers with when the client's stamp matches; built once per
// snapshot.
func (s *snapshot) unchangedFrame() []byte {
	k := frameKey{kind: 'u'}
	if f := s.cached(k); f != nil {
		return f
	}
	resp := conduit.NewNode()
	resp.SetInt("epoch", int64(s.epoch))
	resp.SetInt("gen", int64(s.gen))
	resp.SetBool("unchanged", true)
	return s.store(k, resp.EncodeBinaryStable())
}

func (in *instance) stats() InstanceStats {
	out := InstanceStats{
		Namespace: in.ns,
		Ranks:     in.ranks,
		Stripes:   len(in.stripes),
		Leaves:    int64(in.snapshotTree().NumLeaves()),
	}
	for _, st := range in.stripes {
		st.mu.Lock()
		out.Publishes += st.pubs
		out.BytesIn += st.bytesIn
		if st.last > out.LastTime {
			out.LastTime = st.last
		}
		st.mu.Unlock()
	}
	return out
}

// historySince returns raw publishes with time > after in arrival order,
// re-interleaving the per-stripe rings by sequence number.
func (in *instance) historySince(after float64) ([]*conduit.Node, []float64) {
	var recs []record
	for _, st := range in.stripes {
		st.mu.Lock()
		for i := 0; i < st.count; i++ {
			idx := (st.head - st.count + i + len(st.history)) % len(st.history)
			if st.history[idx].time > after {
				recs = append(recs, st.history[idx])
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	nodes := make([]*conduit.Node, len(recs))
	times := make([]float64, len(recs))
	for i, r := range recs {
		nodes[i] = r.tree()
		times[i] = r.time
	}
	return nodes, times
}

// reset discards merged state, pending batches and history, keeping the
// publish counters.
func (in *instance) reset() {
	in.rebuildMu.Lock()
	// Capture the generation before clearing: a publish overlapping the
	// reset bumps gen past g, so the next read rebuilds and picks it up
	// instead of leaving it stranded in a pending batch.
	g := in.gen.Add(1)
	// Redraw the reset-epoch so stamps handed out before the reset can
	// never match stamps after it — a delta poll or a client's generation
	// memo from the old lineage always gets a full response, even if the
	// gen counter were to collide. Written under rebuildMu so concurrent
	// rebuilds stamp a consistent (epoch, gen) pair.
	in.epoch.Store(newEpoch())
	for _, st := range in.stripes {
		st.mu.Lock()
		st.pending = nil
		for i := range st.history {
			st.history[i] = record{}
		}
		st.head, st.count = 0, 0
		st.mu.Unlock()
	}
	in.snap.Store(&snapshot{epoch: in.epoch.Load(), gen: g, tree: conduit.NewNode()})
	in.rebuildMu.Unlock()
	if in.rollup != nil {
		in.rollup.reset()
	}
}

// Service is the SOMA service task: N service processes split across one
// instance per namespace, fronted by RPC handlers on a mercury engine.
type Service struct {
	cfg       ServiceConfig
	engine    *mercury.Engine
	instances map[Namespace]*instance

	// bus fans publishes and alert transitions out to subscribers; it is
	// served remotely through the engine under UpdatesBusName.
	bus    *zmq.PubSub
	alerts *alertEngine

	// started stamps service construction for soma.health's uptime.
	started time.Time

	// statsFrame caches the encoded soma.stats response, keyed by the
	// (epoch, gen) stamps of every instance at build time; any publish or
	// reset changes a stamp and the next request rebuilds. See handleStats.
	statsFrame atomic.Pointer[statsCache]

	// profileBusy serializes soma.profile captures: runtime/pprof allows a
	// single active CPU profile per process, and even snapshot profiles are
	// expensive enough that concurrent captures would be their own overhead
	// problem. See handleProfile.
	profileBusy atomic.Bool

	// cl is non-nil once JoinCluster turned this service into a sharded
	// cluster member: publishes are placed by consistent hash (one-hop
	// forward to the owner), reads scatter to every live member. See
	// cluster.go.
	cl atomic.Pointer[svcCluster]

	mu      sync.Mutex
	addrs   []string
	stopped bool
}

// statsCache pairs an encoded soma.stats frame with the instance stamps it
// was built against. Stale entries never match current stamps, so races
// between capture and encode self-heal on the next request.
type statsCache struct {
	stamps []uint64 // (epoch, gen) per instance, in Stats() order
	frame  []byte
}

// RPC handler names the service registers.
const (
	RPCPublish = "soma.publish"
	// RPCPublishBatch carries many (namespace, tree) publishes in one
	// conduit batch frame (see conduit.DecodeBatch); the service applies
	// them in wire order with one stripe-lock acquisition and one
	// rollup/alert pass per consecutive same-namespace run.
	RPCPublishBatch = "soma.publish.batch"
	RPCQuery        = "soma.query"
	RPCStats        = "soma.stats"
	RPCShutdown     = "soma.shutdown"
	RPCReset        = "soma.reset"
	RPCSelect       = "soma.select"
	RPCTelemetry    = "soma.telemetry"
	// RPCQueryDelta is the generation-aware query: the request carries the
	// client's last-seen (epoch, gen) stamp and the service answers with a
	// tiny {epoch, gen, unchanged: true} frame when the stamp still matches,
	// or the full {epoch, gen, data} frame otherwise.
	RPCQueryDelta = "soma.query.delta"

	RPCSeries      = "soma.series"
	RPCAlertSet    = "soma.alert.set"
	RPCAlertList   = "soma.alert.list"
	RPCAlertRemove = "soma.alert.rm"
)

// ErrServiceStopped is returned for requests after shutdown.
var ErrServiceStopped = errors.New("soma: service stopped")

// NewService builds a service with one instance per namespace (or one
// shared instance when cfg.Shared). Per-namespace mode gets
// 4×stripeCount(ranks) publish locks in total; shared mode gets
// stripeCount(ranks) locks contended by all four namespaces — the ablation
// gap of the paper's Tables 1–2, expressed as a stripe-count difference.
func NewService(cfg ServiceConfig) *Service {
	cfg.defaults()
	s := &Service{
		cfg:       cfg,
		engine:    mercury.NewEngine(cfg.EngineOptions...),
		instances: map[Namespace]*instance{},
		started:   time.Now(),
	}
	stripes := stripeCount(cfg.RanksPerNamespace)
	if cfg.Shared {
		shared := newInstance("shared", cfg.RanksPerNamespace*len(Namespaces), cfg.MaxRecords, stripes)
		for _, ns := range Namespaces {
			s.instances[ns] = shared
		}
	} else {
		for _, ns := range Namespaces {
			s.instances[ns] = newInstance(ns, cfg.RanksPerNamespace, cfg.MaxRecords, stripes)
		}
	}
	if !cfg.DisableRollups {
		if cfg.Shared {
			s.instances[NSWorkflow].rollup = newSeriesStore(cfg.RollupMaxSeries)
		} else {
			for _, ns := range Namespaces {
				s.instances[ns].rollup = newSeriesStore(cfg.RollupMaxSeries)
			}
		}
	}
	hw := cfg.SubscriberHighWater
	if hw <= 0 {
		hw = zmq.DefaultHighWater
	}
	s.bus = zmq.NewPubSubHW(hw)
	s.alerts = newAlertEngine(s.publishAlertStream)
	zmq.NewServer(s.engine).AttachBus(UpdatesBusName, s.bus)
	s.engine.Register(RPCPublish, s.handlePublish)
	s.engine.Register(RPCPublishBatch, s.handlePublishBatch)
	s.engine.Register(RPCQuery, s.handleQuery)
	s.engine.Register(RPCQueryDelta, s.handleQueryDelta)
	s.engine.Register(RPCStats, s.handleStats)
	s.engine.Register(RPCShutdown, s.handleShutdown)
	s.engine.Register(RPCReset, s.handleReset)
	s.engine.Register(RPCSelect, s.handleSelect)
	s.engine.RegisterOwned(RPCTelemetry, s.handleTelemetry)
	s.engine.Register(RPCHealth, s.handleHealth)
	s.engine.RegisterOwned(RPCSeries, s.handleSeriesDispatch)
	s.engine.Register(RPCAlertSet, s.handleAlertSet)
	s.engine.Register(RPCAlertList, s.handleAlertListDispatch)
	s.engine.Register(RPCAlertRemove, s.handleAlertRemove)
	// Cluster surface. Registered unconditionally: the ".local" variants and
	// soma.ring let a routing client talk to a solo (unclustered) service the
	// same way it talks to a fleet; ping/handoff reject until JoinCluster.
	s.engine.Register(RPCPeerPing, s.handlePeerPing)
	s.engine.Register(RPCRing, s.handleRing)
	s.engine.Register(RPCHandoff, s.handleHandoff)
	s.engine.Register(RPCPublishLocal, s.handlePublishLocal)
	s.engine.Register(RPCQueryLocal, s.handleQueryLocal)
	s.engine.Register(RPCQueryDeltaLocal, s.handleQueryDeltaLocal)
	s.engine.RegisterOwned(RPCSeriesLocal, s.handleSeries)
	s.engine.Register(RPCAlertListLocal, s.handleAlertList)
	s.engine.RegisterOwned(RPCTraceList, s.handleTraceList)
	s.engine.RegisterOwned(RPCTraceGet, s.handleTraceGet)
	// Blocking: a CPU capture occupies the handler for its whole sampling
	// window. Never mark soma.profile idempotent — see IdempotentRPCs.
	s.engine.RegisterBlocking(RPCProfile, s.handleProfile)
	return s
}

// Listen exposes the service at addr ("inproc://..." or "tcp://...") and
// returns the concrete address clients connect to — the RPC address the
// service makes "publicly known within the workflow".
func (s *Service) Listen(addr string) (string, error) {
	concrete, err := s.engine.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addrs = append(s.addrs, concrete)
	s.mu.Unlock()
	return concrete, nil
}

// Addrs returns every address the service listens on.
func (s *Service) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs...)
}

// Engine exposes the underlying RPC engine (stats, tests).
func (s *Service) Engine() *mercury.Engine { return s.engine }

// Close shuts the service down: the engine close wakes any long-polling
// subscribers, then the update bus closes their channels.
func (s *Service) Close() error {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	if cl := s.cl.Load(); cl != nil {
		cl.shutdown()
	}
	err := s.engine.Close()
	if s.bus != nil {
		s.bus.Close()
	}
	return err
}

// Stopped reports whether shutdown was requested.
func (s *Service) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

func (s *Service) instanceFor(ns Namespace) (*instance, error) {
	in, ok := s.instances[ns]
	if !ok {
		return nil, &ErrUnknownNamespace{NS: ns}
	}
	return in, nil
}

// Publish ingests a tree into a namespace directly (the local call path of
// the client stub; also what the in-proc simulated experiments use after
// RPC framing). rawBytes is the wire size for accounting (0 for local).
// The tree is retained by reference: callers hand it over and must not
// mutate it afterwards.
func (s *Service) Publish(ns Namespace, n *conduit.Node, rawBytes int) error {
	return s.PublishCtx(context.Background(), ns, n, rawBytes)
}

// PublishCtx is Publish with trace propagation: when ctx carries an active
// trace (an RPC publish whose client sent trace ids, or a caller that
// started a span), the stripe append is recorded as a child span, so one
// publish can be followed client → wire → stripe append. Untraced callers
// pay one context lookup and a histogram observation.
func (s *Service) PublishCtx(ctx context.Context, ns Namespace, n *conduit.Node, rawBytes int) error {
	if cl := s.cl.Load(); cl != nil {
		if done, err := cl.forwardPublish(ctx, ns, n); done {
			return err
		}
		// Not forwarded: this instance owns the key, or the owner is
		// unreachable — ingest locally, scattered reads still find it.
	}
	return s.publishLocalCtx(ctx, ns, n, rawBytes)
}

// publishLocalCtx ingests into this instance's own stores unconditionally —
// the under-the-ring half of PublishCtx, and the ingest path for forwarded
// publishes and handoff frames (which must never re-forward).
func (s *Service) publishLocalCtx(ctx context.Context, ns Namespace, n *conduit.Node, rawBytes int) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return err
	}
	// The span shares the histogram's two clock reads, so tracing adds no
	// extra time.Now on this hot path (see make telemetry-overhead).
	now := s.cfg.Clock.Now()
	start := time.Now()
	sp := telemetry.LeafSpanAt(ctx, "core.stripe.append", start)
	tid := sp.Context().TraceID // before EndAt: the span is pooled after it
	in.publish(now, n, rawBytes)
	end := time.Now()
	// ObserveTrace stamps the latency bucket with this trace id, so a p99
	// exemplar in soma.telemetry links straight to a kept trace.
	telPubLatency.ObserveTrace(end.Sub(start), tid)
	telPublishes.Inc()
	sp.EndAt(end)
	// Stream side of the ingest: fold the publish into the rollup buckets,
	// re-judge any alert rules its series touch, and fan it out to live
	// subscribers. Each stage short-circuits to an atomic check when unused.
	if in.rollup != nil {
		keys, maxT := in.rollup.ingest(now, n, s.alerts.active())
		if len(keys) > 0 {
			s.alerts.evaluate(ns, in.rollup, keys, maxT)
		}
	}
	s.fanOut(now, ns, n)
	return nil
}

// PublishBatch ingests a decoded batch of publishes in wire order; see
// PublishBatchCtx.
func (s *Service) PublishBatch(entries []conduit.BatchEntry, rawBytes int) error {
	return s.PublishBatchCtx(context.Background(), entries, rawBytes)
}

// PublishBatchCtx applies one wire batch. Entries land in wire order, but
// the per-publish work is amortized per consecutive same-namespace run: one
// stripe-lock acquisition, one generation bump, and one rollup/alert pass
// per run instead of per leaf. Every entry's namespace is validated before
// any is applied, so a batch is ingested atomically or rejected whole —
// a half-applied batch would leave the client's Published() accounting
// unreconcilable. Trees are retained by reference, exactly like Publish.
func (s *Service) PublishBatchCtx(ctx context.Context, entries []conduit.BatchEntry, rawBytes int) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	if len(entries) == 0 {
		return nil
	}
	for i := range entries {
		ns := Namespace(entries[i].NS)
		if _, ok := s.instances[ns]; !ok {
			return &ErrUnknownNamespace{NS: ns}
		}
	}
	now := s.cfg.Clock.Now()
	start := time.Now()
	sp := telemetry.LeafSpanAt(ctx, "core.stripe.append.batch", start)
	sp.SetCount(int64(len(entries))) // waterfall shows how many publishes this append covered
	tid := sp.Context().TraceID
	// Wire size is split evenly across entries for per-instance accounting;
	// the remainder is charged to the first run.
	perEntry := rawBytes / len(entries)
	extra := rawBytes - perEntry*len(entries)
	for i := 0; i < len(entries); {
		j := i + 1
		for j < len(entries) && entries[j].NS == entries[i].NS {
			j++
		}
		run := entries[i:j]
		ns := Namespace(run[0].NS)
		in := s.instances[ns]
		in.publishBatch(now, run, perEntry*len(run)+extra)
		extra = 0
		// Stream side, once per run: fold every tree into the rollup
		// buckets, then re-judge alert rules over the union of touched
		// series keys in a single evaluation pass.
		if in.rollup != nil {
			var keys []string
			var maxT float64
			collect := s.alerts.active()
			for _, e := range run {
				ks, mt := in.rollup.ingest(now, e.Tree, collect)
				keys = append(keys, ks...)
				if mt > maxT {
					maxT = mt
				}
			}
			if len(keys) > 0 {
				s.alerts.evaluate(ns, in.rollup, keys, maxT)
			}
		}
		if s.bus != nil && s.bus.Subscribers() > 0 {
			for _, e := range run {
				s.fanOut(now, ns, e.Tree)
			}
		}
		i = j
	}
	end := time.Now()
	telBatchLatency.ObserveTrace(end.Sub(start), tid)
	telBatchFrames.Inc()
	telPublishes.Add(int64(len(entries)))
	sp.EndAt(end)
	return nil
}

// Query returns the merged subtree at path within ns. The result is a
// shared, immutable snapshot — callers must not modify it. Repeated queries
// between publishes return the same tree with no copying.
func (s *Service) Query(ns Namespace, path string) (*conduit.Node, error) {
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	sub := in.query(path)
	telQueryLatency.ObserveSince(start)
	return sub, nil
}

// QueryEncoded returns the wire-ready soma.query response frame for path
// within ns: {epoch, gen, data: <subtree>}, pre-encoded and cached against
// the namespace's current snapshot. Repeat queries against an unchanged
// namespace return the same byte slice with zero tree walk and zero
// allocation. Callers (and the transport) must treat the frame as immutable.
func (s *Service) QueryEncoded(ns Namespace, path string) ([]byte, error) {
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	f := in.queryFrame(path)
	telQueryLatency.ObserveSince(start)
	return f, nil
}

// QueryDeltaEncoded answers a generation-aware query: when the caller's
// (epoch, gen) stamp matches the namespace's current snapshot it returns the
// tiny {epoch, gen, unchanged: true} frame; otherwise the full query frame.
// A zero epoch (no memo yet) never matches.
func (s *Service) QueryDeltaEncoded(ns Namespace, path string, epoch, gen uint64) ([]byte, error) {
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	defer telQueryLatency.ObserveSince(start)
	sn := in.currentSnapshot()
	if epoch != 0 && epoch == sn.epoch && gen == sn.gen {
		f := sn.unchangedFrame()
		telDeltaUnchanged.Inc()
		// Account the wire bytes this tiny answer saved against the full
		// frame, when the full frame is already cached (it is, for any
		// steady-state poller that received it last tick).
		if full := sn.cached(frameKey{kind: 'q', key: path}); full != nil {
			if saved := len(full) - len(f); saved > 0 {
				telDeltaBytesSaved.Add(int64(saved))
			}
		}
		return f, nil
	}
	return in.queryFrameAt(sn, path), nil
}

// History returns the raw publishes into ns newer than the given service
// timestamp, oldest first.
func (s *Service) History(ns Namespace, after float64) ([]*conduit.Node, error) {
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	nodes, _ := in.historySince(after)
	return nodes, nil
}

// Select returns the leaf paths in ns matching a '/'-separated glob
// pattern ('*' = one segment, '**' = any tail), with the numeric values
// where leaves are numeric. Analyses use it to slice a namespace without
// pulling whole subtrees: Select(NSHardware, "PROC/*/*/CPU Util").
func (s *Service) Select(ns Namespace, pattern string) (paths []string, values map[string]float64, err error) {
	if s.Stopped() {
		return nil, nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, nil, err
	}
	tree := in.snapshotTree()
	paths = tree.Select(pattern)
	values = map[string]float64{}
	for _, p := range paths {
		if v, ok := tree.Float(p); ok {
			values[p] = v
		}
	}
	return paths, values, nil
}

// ResetNamespace discards a namespace's merged tree and publish history,
// keeping the counters. Long-running deployments call this at phase
// boundaries (after a snapshot) to bound the merged tree's growth.
func (s *Service) ResetNamespace(ns Namespace) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return err
	}
	in.reset()
	// The rollup series behind alert standings are gone too; drop them so
	// firing alerts do not outlive the data that justified them. A shared
	// instance holds every namespace's series, so the reset reaches all.
	if s.cfg.Shared {
		for _, other := range Namespaces {
			s.alerts.resetNamespace(other)
		}
	} else {
		s.alerts.resetNamespace(ns)
	}
	return nil
}

// Stats returns per-instance statistics in namespace order. With a shared
// instance, the same aggregate appears once under namespace "shared".
func (s *Service) Stats() []InstanceStats {
	if s.cfg.Shared {
		return []InstanceStats{s.instances[NSWorkflow].stats()}
	}
	out := make([]InstanceStats, 0, len(Namespaces))
	for _, ns := range Namespaces {
		out = append(out, s.instances[ns].stats())
	}
	return out
}

// ---------------------------------------------------------------------------
// RPC surface. Requests and responses are themselves Conduit trees on the
// wire (the service eats its own data model):
//
//	publish req : {ns: string, data: <tree>}
//	query   req : {ns: string, path: string}  → resp: {data: <tree>}
//	stats   req : {}                          → resp: {<ns>/{publishes,leaves,...}}
//	shutdown    : {}                          → resp: {}

// okFrame is the constant empty-tree response frame shared by ack-only
// handlers; responses are never mutated by callers.
var okFrame = conduit.NewNode().EncodeBinary()

func envelopeNS(req *conduit.Node) (Namespace, error) {
	nsStr, ok := req.StringVal("ns")
	if !ok {
		return "", fmt.Errorf("soma: request missing ns field")
	}
	ns := Namespace(nsStr)
	if !ns.Valid() {
		return "", &ErrUnknownNamespace{NS: ns}
	}
	return ns, nil
}

func (s *Service) handlePublish(ctx context.Context, payload []byte) ([]byte, error) {
	// The handler span joins the client's trace (mercury rebuilt the trace
	// context from the frame header); the stripe append below becomes its
	// child.
	ctx, sp := telemetry.ChildSpan(ctx, "soma.publish.handler")
	defer sp.End()
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	data, ok := req.Get("data")
	if !ok {
		return nil, fmt.Errorf("soma: publish missing data")
	}
	if err := s.PublishCtx(ctx, ns, data, len(payload)); err != nil {
		return nil, err
	}
	return okFrame, nil
}

// handlePublishBatch serves soma.publish.batch: the payload is a conduit
// batch frame (no {ns, data} envelope per entry — the namespace rides in
// the batch entry itself). When nothing downstream needs materialized trees
// it takes the raw path — validate, retain bytes, decode lazily at fold
// time — which is what carries the harness past 10^6 publishes/sec.
func (s *Service) handlePublishBatch(ctx context.Context, payload []byte) ([]byte, error) {
	ctx, sp := telemetry.ChildSpan(ctx, "soma.publish.batch.handler")
	defer sp.End()
	if !s.treesNeeded() {
		if err := s.publishBatchFrame(ctx, payload); err != nil {
			return nil, err
		}
		return okFrame, nil
	}
	entries, err := conduit.DecodeBatch(payload)
	if err != nil {
		return nil, err
	}
	if err := s.PublishBatchCtx(ctx, entries, len(payload)); err != nil {
		return nil, err
	}
	return okFrame, nil
}

// treesNeeded reports whether batch ingest must materialize publish trees
// inline: rollups fold every tree into series buckets and live subscribers
// receive them, so either forces the decoded path. With rollups disabled
// and no subscribers, ingest can retain validated wire bytes instead.
func (s *Service) treesNeeded() bool {
	if !s.cfg.DisableRollups {
		return true
	}
	return s.bus != nil && s.bus.Subscribers() > 0
}

// publishBatchFrame is the decode-free batch ingest: every entry's framing,
// namespace, and tree structure is verified up front (the batch is applied
// atomically or rejected whole, like PublishBatchCtx), then one private
// copy of the frame is retained and per-namespace runs of entry subslices
// are appended as raw records. No publish tree is built here; the next
// snapshot rebuild folds the bytes straight into its accumulator and
// history reads decode on demand.
func (s *Service) publishBatchFrame(ctx context.Context, frame []byte) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	count := 0
	if err := conduit.ForEachBatchEntry(frame, func(ns, enc []byte) error {
		if _, ok := s.instances[Namespace(ns)]; !ok {
			return &ErrUnknownNamespace{NS: Namespace(ns)}
		}
		if err := conduit.ValidateBinary(enc); err != nil {
			return err
		}
		count++
		return nil
	}); err != nil {
		return err
	}
	if count == 0 {
		return nil
	}
	now := s.cfg.Clock.Now()
	start := time.Now()
	sp := telemetry.LeafSpanAt(ctx, "core.stripe.append.batch", start)
	sp.SetCount(int64(count))
	tid := sp.Context().TraceID
	// Records outlive the engine's pooled request buffer: retain one
	// private copy of the frame and subslice every entry out of it.
	buf := append([]byte(nil), frame...)
	perEntry := len(frame) / count
	extra := len(frame) - perEntry*count
	var (
		runNS []byte
		runIn *instance
	)
	encs := make([][]byte, 0, count)
	emit := func() {
		if runIn == nil || len(encs) == 0 {
			return
		}
		// publishBatchRaw copies the slice's elements into records before
		// returning, so encs can be reused for the next run.
		runIn.publishBatchRaw(now, encs, perEntry*len(encs)+extra)
		extra = 0
		encs = encs[:0]
	}
	// Framing was verified by the scan above; this pass cannot fail.
	_ = conduit.ForEachBatchEntry(buf, func(ns, enc []byte) error {
		if runIn == nil || !bytes.Equal(ns, runNS) {
			emit()
			runNS = ns
			runIn = s.instances[Namespace(ns)]
		}
		encs = append(encs, enc)
		return nil
	})
	emit()
	end := time.Now()
	telBatchLatency.ObserveTrace(end.Sub(start), tid)
	telBatchFrames.Inc()
	telPublishes.Add(int64(count))
	sp.EndAt(end)
	return nil
}

// handleQuery serves soma.query. On a clustered instance with live peers it
// scatters to the whole fleet and merges, so a caller sees the union of all
// shards no matter which instance it asked; otherwise (solo, or all peers
// dead) it answers from local state alone.
func (s *Service) handleQuery(ctx context.Context, payload []byte) ([]byte, error) {
	if cl := s.cl.Load(); cl != nil && cl.active() {
		req, err := conduit.DecodeBinary(payload)
		if err != nil {
			return nil, err
		}
		ns, err := envelopeNS(req)
		if err != nil {
			return nil, err
		}
		path, _ := req.StringVal("path")
		return cl.scatterQuery(ctx, ns, path)
	}
	return s.handleQueryLocal(ctx, payload)
}

// handleQueryLocal answers soma.query.local — this instance's shard only.
// Scatter-gather fans out to it, so a scattered read can never recurse.
func (s *Service) handleQueryLocal(ctx context.Context, payload []byte) ([]byte, error) {
	sp := telemetry.LeafSpan(ctx, "soma.query.handler")
	defer sp.End()
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	path, _ := req.StringVal("path")
	// Serve the cached encoded frame: {epoch, gen, data}. Clients predating
	// the delta protocol only read "data" and ignore the stamp fields.
	return s.QueryEncoded(ns, path)
}

// handleQueryDelta serves soma.query.delta: the request carries the client's
// last-seen stamp as {ns, path, epoch: i64, gen: i64}; see QueryDeltaEncoded.
// A clustered instance with live peers answers with the full scattered union
// instead — a cross-shard merge has no single (epoch, gen) identity, and the
// zero stamp it carries keeps plain clients from latching a delta memo onto
// it. Shard-aware clients use soma.query.delta.local per member instead.
func (s *Service) handleQueryDelta(ctx context.Context, payload []byte) ([]byte, error) {
	if cl := s.cl.Load(); cl != nil && cl.active() {
		req, err := conduit.DecodeBinary(payload)
		if err != nil {
			return nil, err
		}
		ns, err := envelopeNS(req)
		if err != nil {
			return nil, err
		}
		path, _ := req.StringVal("path")
		return cl.scatterQuery(ctx, ns, path)
	}
	return s.handleQueryDeltaLocal(ctx, payload)
}

func (s *Service) handleQueryDeltaLocal(ctx context.Context, payload []byte) ([]byte, error) {
	sp := telemetry.LeafSpan(ctx, "soma.query.delta.handler")
	defer sp.End()
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	path, _ := req.StringVal("path")
	epoch, _ := req.Int("epoch")
	gen, _ := req.Int("gen")
	return s.QueryDeltaEncoded(ns, path, uint64(epoch), uint64(gen))
}

// statsStamps captures every instance's current (epoch, gen) stamp in
// Stats() order — the statsFrame cache key.
func (s *Service) statsStamps() []uint64 {
	if s.cfg.Shared {
		sn := s.instances[NSWorkflow].currentSnapshot()
		return []uint64{sn.epoch, sn.gen}
	}
	out := make([]uint64, 0, 2*len(Namespaces))
	for _, ns := range Namespaces {
		sn := s.instances[ns].currentSnapshot()
		out = append(out, sn.epoch, sn.gen)
	}
	return out
}

func stampsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Service) handleStats(ctx context.Context, _ []byte) ([]byte, error) {
	sp := telemetry.LeafSpan(ctx, "soma.stats.handler")
	defer sp.End()
	stamps := s.statsStamps()
	if c := s.statsFrame.Load(); c != nil && stampsEqual(c.stamps, stamps) {
		telQueryCacheHits.Inc()
		return c.frame, nil
	}
	telQueryCacheMisses.Inc()
	resp := conduit.NewNode()
	for _, st := range s.Stats() {
		base := string(st.Namespace)
		resp.SetInt(base+"/ranks", int64(st.Ranks))
		resp.SetInt(base+"/stripes", int64(st.Stripes))
		resp.SetInt(base+"/publishes", st.Publishes)
		resp.SetInt(base+"/leaves", st.Leaves)
		resp.SetInt(base+"/bytes_in", st.BytesIn)
		resp.SetFloat(base+"/last_time", st.LastTime)
	}
	// A publish between statsStamps() and here makes this frame carry data
	// newer than its stamp; that only causes one extra rebuild next request,
	// never a stale hit (the stamp it would need to match is already gone).
	frame := resp.EncodeBinaryStable()
	s.statsFrame.Store(&statsCache{stamps: stamps, frame: frame})
	return frame, nil
}

func (s *Service) handleShutdown(_ context.Context, _ []byte) ([]byte, error) {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	return okFrame, nil
}

// appendMatchKey builds "matches/NNNNNN" without fmt: the select response
// envelope is on the analysis hot path.
func appendMatchKey(dst []byte, i int) []byte {
	dst = append(dst, "matches/"...)
	var tmp [20]byte
	num := strconv.AppendInt(tmp[:0], int64(i), 10)
	for pad := 6 - len(num); pad > 0; pad-- {
		dst = append(dst, '0')
	}
	return append(dst, num...)
}

func (s *Service) handleSelect(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	pattern, _ := req.StringVal("pattern")
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	in, err := s.instanceFor(ns)
	if err != nil {
		return nil, err
	}
	// Serve the cached encoded match list for this (snapshot, pattern).
	return in.selectFrame(pattern), nil
}

// ownedFrame encodes resp into a pooled buffer and wraps it as an owned
// mercury response; the transport calls Release once the frame is written,
// recycling the buffer instead of allocating one per request.
func ownedFrame(resp *conduit.Node) (mercury.Response, error) {
	bp := conduit.GetEncodeBuffer()
	*bp = resp.AppendBinary(*bp)
	return mercury.Response{
		Payload: *bp,
		Release: func() { conduit.PutEncodeBuffer(bp) },
	}, nil
}

// handleTelemetry serves the process's full telemetry registry snapshot,
// conduit-encoded — the RPC somatop's telemetry panel and `somactl
// telemetry` consume. The snapshot changes on every scrape (latency
// histograms move), so instead of caching it encodes into a pooled buffer
// released after the transport writes the frame.
func (s *Service) handleTelemetry(_ context.Context, _ []byte) (mercury.Response, error) {
	return ownedFrame(EncodeTelemetry(telemetry.Default().Snapshot()))
}

func (s *Service) handleReset(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	if err := s.ResetNamespace(ns); err != nil {
		return nil, err
	}
	return okFrame, nil
}
