package core

import (
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

func TestTelemetryEncodeDecodeRoundTrip(t *testing.T) {
	snap := &telemetry.Snapshot{
		Counters: map[string]int64{"mercury.calls_served": 12},
		Gauges:   map[string]float64{"zmq.queue.sched.depth": 3},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"mercury.server.latency.soma.publish": {
				Count: 7, Sum: 70 * time.Microsecond, Max: 30 * time.Microsecond,
				P50: 8 * time.Microsecond, P95: 25 * time.Microsecond, P99: 29 * time.Microsecond,
			},
		},
		Spans: []telemetry.SpanSnapshot{
			{TraceID: 0xdeadbeef, SpanID: 0x1234, Name: "soma.client.publish",
				Start: time.Unix(0, 1700000000_000000000), Dur: 42 * time.Microsecond},
			{TraceID: 0xdeadbeef, SpanID: 0x5678, Parent: 0x1234, Name: "core.stripe.append",
				Start: time.Unix(0, 1700000000_000001000), Dur: 3 * time.Microsecond},
		},
	}
	got := DecodeTelemetry(EncodeTelemetry(snap))
	if got.Counters["mercury.calls_served"] != 12 {
		t.Errorf("counter lost: %+v", got.Counters)
	}
	if got.Gauges["zmq.queue.sched.depth"] != 3 {
		t.Errorf("gauge lost: %+v", got.Gauges)
	}
	h := got.Histograms["mercury.server.latency.soma.publish"]
	if h.Count != 7 || h.P95 != 25*time.Microsecond || h.Max != 30*time.Microsecond {
		t.Errorf("histogram mangled: %+v", h)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
	child := got.Spans[1]
	if child.TraceID != 0xdeadbeef || child.Parent != 0x1234 || child.Name != "core.stripe.append" {
		t.Errorf("child span mangled: %+v", child)
	}
	if child.Dur != 3*time.Microsecond || child.Start.UnixNano() != 1700000000_000001000 {
		t.Errorf("child span timing mangled: %+v", child)
	}
}

// TestTelemetryRPC drives a publish through the client stub and asserts the
// soma.telemetry RPC reports the per-handler latency histograms and a
// client → handler → stripe-append span chain.
func TestTelemetryRPC(t *testing.T) {
	svc := NewService(ServiceConfig{})
	addr, err := svc.Listen("inproc://telemetry-rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n := conduit.NewNode()
	n.SetFloat("PROC/cn01/1.0/CPU Util", 55)
	if err := c.Publish(NSHardware, n); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	h, ok := snap.Histograms["mercury.server.latency."+RPCPublish]
	if !ok || h.Count == 0 {
		t.Errorf("no server-side publish latency recorded: %+v", snap.Histograms)
	}
	if _, ok := snap.Histograms["core.publish.latency"]; !ok {
		t.Errorf("no core publish latency histogram: %v", telemetry.SortedNames(snap.Histograms))
	}
	// The publish trace must appear as a parent/child chain in the span
	// ring: soma.client.publish → soma.publish.handler → core.stripe.append.
	byName := map[string]telemetry.SpanSnapshot{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	root, okRoot := byName["soma.client.publish"]
	handler, okHandler := byName["soma.publish.handler"]
	append_, okAppend := byName["core.stripe.append"]
	if !okRoot || !okHandler || !okAppend {
		t.Fatalf("span chain incomplete; have %v", telemetry.SortedNames(byName))
	}
	if handler.TraceID != root.TraceID || append_.TraceID != root.TraceID {
		t.Error("spans do not share the publish trace id")
	}
	if handler.Parent != root.SpanID {
		t.Error("handler span is not a child of the client span")
	}
	if append_.Parent != handler.SpanID {
		t.Error("stripe append span is not a child of the handler span")
	}
}
