package core

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// Snapshot is a point-in-time export of a service's merged state — the
// bridge from SOMA's online model to the traditional post-mortem analysis
// the paper contrasts it with. A snapshot can be written to disk and later
// analyzed offline through the same Analysis API.
type Snapshot struct {
	// Namespaces maps each namespace to its merged tree.
	Namespaces map[Namespace]*conduit.Node
	// Stats carries the per-instance counters at export time.
	Stats []InstanceStats
}

// Snapshot exports the service's current merged state. The returned trees
// are immutable merge snapshots shared with the service — read them, don't
// modify them. Snapshot works on a stopped service too — that is the
// post-mortem path.
func (s *Service) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{Namespaces: map[Namespace]*conduit.Node{}}
	for _, ns := range Namespaces {
		in, err := s.instanceFor(ns)
		if err != nil {
			return nil, err
		}
		snap.Namespaces[ns] = in.query("")
	}
	snap.Stats = s.Stats()
	return snap, nil
}

// snapshotJSON is the on-disk format: JSON for tooling friendliness (the
// binary codec stays the RPC transport format).
type snapshotJSON struct {
	Version    int                          `json:"version"`
	Namespaces map[string]json.RawMessage   `json:"namespaces"`
	Stats      map[string]instanceStatsJSON `json:"stats"`
}

type instanceStatsJSON struct {
	Ranks     int     `json:"ranks"`
	Publishes int64   `json:"publishes"`
	Leaves    int64   `json:"leaves"`
	BytesIn   int64   `json:"bytes_in"`
	LastTime  float64 `json:"last_time"`
}

const snapshotVersion = 1

// MarshalJSON encodes the snapshot.
func (sn *Snapshot) MarshalJSON() ([]byte, error) {
	out := snapshotJSON{
		Version:    snapshotVersion,
		Namespaces: map[string]json.RawMessage{},
		Stats:      map[string]instanceStatsJSON{},
	}
	for ns, tree := range sn.Namespaces {
		raw, err := json.Marshal(tree)
		if err != nil {
			return nil, err
		}
		out.Namespaces[string(ns)] = raw
	}
	for _, st := range sn.Stats {
		out.Stats[string(st.Namespace)] = instanceStatsJSON{
			Ranks: st.Ranks, Publishes: st.Publishes, Leaves: st.Leaves,
			BytesIn: st.BytesIn, LastTime: st.LastTime,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a snapshot.
func (sn *Snapshot) UnmarshalJSON(data []byte) error {
	var in snapshotJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != snapshotVersion {
		return fmt.Errorf("soma: unsupported snapshot version %d", in.Version)
	}
	sn.Namespaces = map[Namespace]*conduit.Node{}
	for nsName, raw := range in.Namespaces {
		var tree conduit.Node
		if err := json.Unmarshal(raw, &tree); err != nil {
			return fmt.Errorf("soma: namespace %s: %w", nsName, err)
		}
		sn.Namespaces[Namespace(nsName)] = &tree
	}
	sn.Stats = nil
	for nsName, st := range in.Stats {
		sn.Stats = append(sn.Stats, InstanceStats{
			Namespace: Namespace(nsName), Ranks: st.Ranks, Publishes: st.Publishes,
			Leaves: st.Leaves, BytesIn: st.BytesIn, LastTime: st.LastTime,
		})
	}
	return nil
}

// WriteFile exports the snapshot to path as JSON.
func (sn *Snapshot) WriteFile(path string) error {
	data, err := json.Marshal(sn)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadSnapshot loads a snapshot written by WriteFile.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sn Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return nil, err
	}
	return &sn, nil
}

// Query implements Querier over the snapshot, so the whole Analysis API
// works offline: Analysis{Q: snapshot}.
func (sn *Snapshot) Query(ns Namespace, path string) (*conduit.Node, error) {
	tree, ok := sn.Namespaces[ns]
	if !ok {
		return nil, &ErrUnknownNamespace{NS: ns}
	}
	sub, found := tree.Get(path)
	if !found {
		return conduit.NewNode(), nil
	}
	return sub.Clone(), nil
}
