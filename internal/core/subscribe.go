package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
	"github.com/hpcobs/gosoma/internal/zmq"
)

// Live namespace subscriptions: every publish is fanned out over the
// service's update bus (a zmq.PubSub served remotely through the engine, see
// zmq/remotepubsub.go), so clients receive incremental updates pushed to
// them instead of polling Query. Topics are "ns/<namespace>/" for publishes
// and "alerts/<namespace>/" for threshold-alert transitions (the trailing
// delimiter keeps the bus's prefix match segment-exact, so no namespace can
// shadow another whose name it prefixes); the reserved NSAlerts
// pseudo-namespace subscribes to the latter.
//
// Backpressure: fan-out is fire-and-forget with per-subscriber high-water
// buffers — a slow subscriber drops (counted, reported on every receive via
// Update.Dropped) rather than stalling ingest. When nobody subscribes, the
// publish path pays one atomic load and skips payload construction.

// UpdatesBusName is the served bus carrying publish updates and alert
// transitions.
const UpdatesBusName = "soma.updates"

// telPushLatency tracks bus fan-out cost per publish (encode + enqueue to
// every subscriber), observed only when subscribers exist.
var telPushLatency = telemetry.Default().Histogram("core.stream.push.latency")

// topicPrefix maps a subscription target onto a bus topic prefix: "" = all
// namespaces, NSAlerts = the alert stream, otherwise one namespace.
func topicPrefix(ns Namespace) (string, error) {
	switch {
	case ns == "":
		return "ns/", nil
	case ns == NSAlerts:
		return "alerts/", nil
	case ns.Valid():
		return "ns/" + string(ns) + "/", nil
	}
	return "", &ErrUnknownNamespace{NS: ns}
}

// updateWire is the bus payload: the published tree conduit-encoded (JSON
// base64 over the remote path) plus its namespace and service timestamp.
type updateWire struct {
	NS   string  `json:"ns"`
	T    float64 `json:"t"`
	Data []byte  `json:"data"`
}

// fanOut pushes one publish onto the update bus. Called on the ingest path
// after the stripe append; returns immediately when nobody subscribes.
func (s *Service) fanOut(now float64, ns Namespace, n *conduit.Node) {
	if s.bus == nil || s.bus.Subscribers() == 0 {
		return
	}
	start := time.Now()
	s.bus.Publish("ns/"+string(ns)+"/", updateWire{NS: string(ns), T: now, Data: n.EncodeBinary()})
	telPushLatency.ObserveSince(start)
}

// publishAlertStream pushes one alert transition onto the reserved alerts
// stream (the alertEngine's notify hook).
func (s *Service) publishAlertStream(ns Namespace, tree *conduit.Node) {
	if s.bus == nil || s.bus.Subscribers() == 0 {
		return
	}
	t, _ := tree.Float("time")
	s.bus.Publish("alerts/"+string(ns)+"/", updateWire{NS: string(ns), T: t, Data: tree.EncodeBinary()})
}

// SubscribeLocal registers an in-process subscription on the update bus (ns
// semantics as Client.Subscribe: "" = every namespace, NSAlerts = alert
// transitions). Decode received messages with DecodeUpdate.
func (s *Service) SubscribeLocal(ns Namespace) (<-chan zmq.Message, func(), error) {
	prefix, err := topicPrefix(ns)
	if err != nil {
		return nil, nil, err
	}
	ch, cancel := s.bus.Subscribe(prefix)
	return ch, cancel, nil
}

// Update is one pushed increment: a publish into a subscribed namespace, or
// (Alert true) a threshold-alert transition.
type Update struct {
	NS    Namespace
	Time  float64
	Alert bool
	Tree  *conduit.Node
	// Dropped is the cumulative count of updates this subscription lost to
	// the server-side high-water mark (slow-consumer accounting).
	Dropped int64
}

// DecodeUpdate unpacks a bus message (local subscription or remote receive)
// into an Update. Dropped is left for the caller (it is per-subscription,
// not per-message).
func DecodeUpdate(m zmq.Message) (Update, error) {
	var w updateWire
	switch p := m.Payload.(type) {
	case updateWire:
		w = p
	case json.RawMessage:
		if err := json.Unmarshal(p, &w); err != nil {
			return Update{}, err
		}
	case []byte:
		if err := json.Unmarshal(p, &w); err != nil {
			return Update{}, err
		}
	default:
		return Update{}, fmt.Errorf("soma: unexpected update payload type %T", m.Payload)
	}
	tree, err := conduit.DecodeBinary(w.Data)
	if err != nil {
		return Update{}, fmt.Errorf("soma: decode update: %w", err)
	}
	return Update{
		NS:    Namespace(w.NS),
		Time:  w.T,
		Alert: strings.HasPrefix(m.Topic, "alerts/"),
		Tree:  tree,
	}, nil
}

// ---------------------------------------------------------------------------
// Client surface.

// Subscription is a live client-side subscription. Consume pushed updates
// from C; the channel closes when the subscription ends (Close, or the
// parent context given to Subscribe is cancelled).
type Subscription struct {
	// C delivers pushed updates in arrival order.
	C <-chan Update

	cancel  func()
	done    chan struct{}
	dropped atomic.Int64
}

// Dropped reports the cumulative server-side high-water drops across the
// subscription's lifetime (surviving reconnects).
func (sub *Subscription) Dropped() int64 { return sub.dropped.Load() }

// Close ends the subscription and waits for C to close.
func (sub *Subscription) Close() {
	sub.cancel()
	<-sub.done
}

// Subscribe registers a live subscription: ns "" follows every namespace,
// NSAlerts follows threshold-alert transitions, otherwise one namespace.
// A non-empty pattern keeps only updates whose tree has at least one leaf
// path matching the glob ('*' one segment, '**' any tail).
//
// Delivery is push: the service fans publishes out as they arrive and the
// subscription long-polls the stream (no Query polling). If the connection
// drops, the subscription redials the service address and resubscribes with
// exponential backoff until the context is cancelled; updates published
// while disconnected are lost (and not counted in Dropped — only the
// server's high-water drops are).
func (c *Client) Subscribe(ctx context.Context, ns Namespace, pattern string) (*Subscription, error) {
	prefix, err := topicPrefix(ns)
	if err != nil {
		return nil, err
	}
	// First subscribe over the client's own endpoint, synchronously, so a
	// service without a served update bus fails fast.
	rs, err := zmq.SubscribeRemote(c.ep, UpdatesBusName, prefix)
	if err != nil {
		return nil, fmt.Errorf("soma: subscribe %s: %w", ns, err)
	}
	ctx, cancel := context.WithCancel(ctx)
	ch := make(chan Update, 64)
	sub := &Subscription{C: ch, cancel: cancel, done: make(chan struct{})}
	go c.subscribeLoop(ctx, sub, ch, rs, prefix, pattern)
	return sub, nil
}

// subscribeLoop is the receive pump: long-poll batches, decode, filter,
// deliver; on transport failure, redial + resubscribe with backoff.
func (c *Client) subscribeLoop(ctx context.Context, sub *Subscription, ch chan<- Update, rs *zmq.RemoteSub, prefix, pattern string) {
	defer close(sub.done)
	defer close(ch)
	var ownEP *mercury.Endpoint // reconnect endpoint; nil while on c.ep
	defer func() {
		if rs != nil {
			rs.Unsubscribe() // best effort; the connection may be gone
		}
		if ownEP != nil {
			ownEP.Close()
		}
	}()
	// droppedBase carries drop counts across reconnects: each server-side
	// lease counts from zero.
	var droppedBase, droppedLease int64
	for {
		if ctx.Err() != nil {
			return
		}
		msgs, dropped, err := rs.Recv(ctx, 64, 30*time.Second)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Connection lost or bus closed: redial and resubscribe on the
			// shared backoff policy (exponential with full jitter, so a
			// fleet of subscribers does not redial a healing service in
			// lockstep).
			droppedBase += droppedLease
			droppedLease = 0
			rs = nil
			bo := mercury.Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}
			for attempt := 0; rs == nil; attempt++ {
				if ownEP != nil {
					ownEP.Close()
					ownEP = nil
				}
				if ep, derr := c.redial(); derr == nil {
					if nrs, serr := zmq.SubscribeRemote(ep, UpdatesBusName, prefix); serr == nil {
						ownEP, rs = ep, nrs
						break
					}
					ep.Close()
				}
				if bo.Sleep(ctx, attempt) != nil {
					return
				}
			}
			continue
		}
		droppedLease = dropped
		sub.dropped.Store(droppedBase + droppedLease)
		for _, m := range msgs {
			u, derr := DecodeUpdate(m)
			if derr != nil {
				continue
			}
			if pattern != "" && pattern != "**" && len(u.Tree.Select(pattern)) == 0 {
				continue
			}
			u.Dropped = sub.Dropped()
			select {
			case ch <- u:
			case <-ctx.Done():
				return
			}
		}
	}
}

// redial re-resolves the service address the client was connected with
// (through the same engine and call policy, when supplied).
func (c *Client) redial() (*mercury.Endpoint, error) {
	if c.addr == "" {
		return nil, fmt.Errorf("soma: client has no redial address")
	}
	if c.engine != nil {
		return c.engine.LookupPolicy(c.addr, c.policy)
	}
	return mercury.LookupPolicy(c.addr, c.policy)
}

// Watch subscribes and invokes fn for every pushed update until the context
// is cancelled, the subscription ends, or fn returns an error (which Watch
// returns).
func (c *Client) Watch(ctx context.Context, ns Namespace, pattern string, fn func(Update) error) error {
	sub, err := c.Subscribe(ctx, ns, pattern)
	if err != nil {
		return err
	}
	defer sub.Close()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case u, ok := <-sub.C:
			if !ok {
				return nil
			}
			if err := fn(u); err != nil {
				return err
			}
		}
	}
}
