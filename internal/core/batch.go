package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Client-side publish coalescing: many logical publishes packed into one
// soma.publish.batch wire frame. A coalescer encodes each publish into the
// pending batch frame inline (no per-entry deferred work) and a flusher
// goroutine ships the frame when it reaches the byte budget, the leaf
// count, or the age bound — whichever trips first. One round-trip then
// acknowledges hundreds of publishes, which is what lets a single TCP
// connection carry tens of thousands of logical publishers.
//
// Ordering: entries leave in append order. flush swaps the pending buffer
// under sendMu, so appends never wait on the wire, while batch N+1 cannot
// overtake batch N. When entries spill (transient failure), subsequent
// batches route into the spill buffer behind them until redelivery drains
// it, preserving per-client publish order end to end.

var (
	telBatchFlushes = telemetry.Default().Counter("core.client.batch.flushes")
	telBatchLeaves  = telemetry.Default().Counter("core.client.batch.leaves")
	// telBatchAck measures enqueue→acknowledgement for the OLDEST entry of
	// each flushed batch: queue dwell plus wire round-trip.
	telBatchAck = telemetry.Default().Histogram("core.client.publish.ack.latency")
	// Flush-cause breakdown: which threshold shipped each batch. A byte/leaf
	// dominated mix means the coalescer is running at capacity; an
	// age-dominated mix means sparse publishers are paying MaxAge of latency
	// for little amortization.
	telBatchFlushBytes  = telemetry.Default().Counter("core.client.batch.flush.bytes")
	telBatchFlushLeaves = telemetry.Default().Counter("core.client.batch.flush.leaves")
	telBatchFlushAge    = telemetry.Default().Counter("core.client.batch.flush.age")
	// telBatchBackpressure counts appends that hit the overfill bound and had
	// to flush inline and retry — publishers outrunning the wire.
	telBatchBackpressure = telemetry.Default().Counter("core.client.batch.backpressure")
)

// Flush causes, attributed per shipped batch (see flushFor).
const (
	flushCauseNone = iota
	flushCauseBytes
	flushCauseLeaves
	flushCauseAge
)

// BatchConfig tunes a client's publish coalescer; zero values select the
// defaults noted on each field.
type BatchConfig struct {
	// MaxBytes flushes the pending batch when its encoded frame reaches
	// this size (default 64 KiB — large enough to amortize the round-trip,
	// small enough to stay pooled by the transport).
	MaxBytes int
	// MaxLeaves flushes after this many coalesced publishes (default 512).
	MaxLeaves int
	// MaxAge bounds how long an entry may sit unflushed (default 1ms); the
	// tail-latency knob for sparse publishers.
	MaxAge time.Duration
	// TargetLatency switches the age bound from fixed to adaptive: the
	// coalescer tracks the tail of observed batch ack latency
	// (enqueue→acknowledgement of each batch's oldest entry) and steers the
	// effective age bound to keep that tail near this target — shrinking it
	// when acks run hot, stretching it (for more amortization per round
	// trip) when there is headroom. The bound stays clamped to
	// [100µs, 5ms] regardless of target. Zero keeps the fixed MaxAge.
	TargetLatency time.Duration
}

func (cfg *BatchConfig) defaults() {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 10
	}
	if cfg.MaxLeaves <= 0 {
		cfg.MaxLeaves = 512
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = time.Millisecond
	}
}

// batchOverfill bounds how far past the flush thresholds the pending buffer
// may grow while a flush is in flight before appends start failing —
// the coalescer's equivalent of "async publish queue full".
const batchOverfill = 4

// Adaptive age clamp (see BatchConfig.TargetLatency): the bound never drops
// below flushing-per-publish territory and never holds a sparse publisher's
// entry for more than 5ms.
const (
	minAdaptiveAge = 100 * time.Microsecond
	maxAdaptiveAge = 5 * time.Millisecond
)

// batchRef remembers one coalesced publish alongside its encoded bytes, so
// a failed flush can fall back to per-entry delivery or the spill buffer.
// Exactly one of node (Publish) and enc (PublishEncoded) is set.
type batchRef struct {
	ns   Namespace
	node *conduit.Node
	enc  []byte
}

// tree materializes the publish as a node — the cold-path shape the
// per-entry fallback and the spill buffer work in.
func (r *batchRef) tree() *conduit.Node {
	if r.node != nil {
		return r.node
	}
	n, err := conduit.DecodeBinary(r.enc)
	if err != nil {
		// Unreachable: enc was validated before it entered the coalescer.
		return conduit.NewNode()
	}
	return n
}

type coalescer struct {
	c   *Client
	cfg BatchConfig

	mu      sync.Mutex
	buf     []byte // pending batch frame (header + encoded entries)
	refs    []batchRef
	firstAt time.Time // append time of the oldest pending entry
	pendErr error     // first flush failure since the last Flush
	cause   int       // which threshold filled the pending batch (flushCause*)
	closed  bool

	// sendMu serializes flushes: the buffer swap and the wire send happen
	// under it, so batches depart in swap order while appends (under mu
	// only) never block on the network.
	sendMu    sync.Mutex
	spareBuf  []byte // previous batch's buffer, recycled for the next swap
	spareRefs []batchRef

	kick     chan struct{}
	ageTimer *time.Timer
	stop     chan struct{}
	done     chan struct{}

	// Adaptive age state (TargetLatency mode). ageNs is the effective age
	// bound read by append when arming the timer; ackTailNs is a peak-biased
	// EWMA of observed batch ack latency — it chases high samples quickly
	// (alpha ½ up) and forgets them slowly (alpha 1/16 down), tracking the
	// tail rather than the mean, which is what the latency target is about.
	// Both written only under sendMu (flushFor), read lock-free by append.
	ageNs     atomic.Int64
	ackTailNs float64
}

// EnableBatch switches the client's publishes into coalescing mode: they
// are packed into soma.publish.batch frames flushed by size, count or age
// (see BatchConfig). Composes with EnableAsync (the worker feeds the
// coalescer) and EnableSpill (a failed batch spills entry-by-entry and
// redelivers in batches). Against a server predating the batch RPC the
// client falls back to per-entry publishes after the first flush.
func (c *Client) EnableBatch(cfg BatchConfig) {
	cfg.defaults()
	co := &coalescer{
		c:        c,
		cfg:      cfg,
		buf:      conduit.AppendBatchHeader(nil),
		kick:     make(chan struct{}, 1),
		ageTimer: time.NewTimer(cfg.MaxAge),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.TargetLatency > 0 {
		start := cfg.MaxAge
		if start < minAdaptiveAge {
			start = minAdaptiveAge
		}
		if start > maxAdaptiveAge {
			start = maxAdaptiveAge
		}
		co.ageNs.Store(int64(start))
	}
	if !c.coal.CompareAndSwap(nil, co) {
		return // already enabled
	}
	go co.run()
}

// ageBound is the effective flush-age bound: the adaptive value in
// TargetLatency mode, the fixed MaxAge otherwise.
func (co *coalescer) ageBound() time.Duration {
	if v := co.ageNs.Load(); v > 0 {
		return time.Duration(v)
	}
	return co.cfg.MaxAge
}

// adaptAge folds one batch's observed ack latency (enqueue→ack of its
// oldest entry) into the tail estimate and steers the age bound so the tail
// sits near TargetLatency: acks over target shrink the bound (ship sooner,
// carry less queue dwell), acks under target stretch it (amortize more per
// round trip). The steer is multiplicative but bounded to [½, 2]× per flush
// so a single outlier cannot slam the bound across its whole clamp range.
// Called under sendMu.
func (co *coalescer) adaptAge(ack time.Duration) {
	s := float64(ack)
	if s > co.ackTailNs {
		co.ackTailNs += (s - co.ackTailNs) / 2
	} else {
		co.ackTailNs += (s - co.ackTailNs) / 16
	}
	if co.ackTailNs <= 0 {
		return
	}
	cur := float64(co.ageNs.Load())
	next := cur * float64(co.cfg.TargetLatency) / co.ackTailNs
	if next > cur*2 {
		next = cur * 2
	}
	if next < cur/2 {
		next = cur / 2
	}
	if next < float64(minAdaptiveAge) {
		next = float64(minAdaptiveAge)
	}
	if next > float64(maxAdaptiveAge) {
		next = float64(maxAdaptiveAge)
	}
	co.ageNs.Store(int64(next))
}

// append encodes one publish into the pending batch. Exactly one of n and
// enc is set (enc is a pre-encoded tree frame, copied verbatim). When the
// buffer has outgrown the overfill bound it applies backpressure: the
// caller helps flush inline (serialized behind the flusher on sendMu) and
// retries, so a publisher outrunning the wire slows to the wire's pace
// instead of erroring — the synchronous-publish contract.
func (co *coalescer) append(ns Namespace, n *conduit.Node, enc []byte) error {
retry:
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		ref := batchRef{ns: ns, node: n, enc: enc}
		return co.c.publishDirect(ns, ref.tree())
	}
	if len(co.refs) >= co.cfg.MaxLeaves*batchOverfill || len(co.buf) >= co.cfg.MaxBytes*batchOverfill {
		co.mu.Unlock()
		telBatchBackpressure.Inc()
		co.flush()
		goto retry
	}
	if len(co.refs) == 0 {
		co.firstAt = time.Now()
		co.ageTimer.Reset(co.ageBound())
	}
	if n != nil {
		co.buf = conduit.AppendBatchEntry(co.buf, string(ns), n)
	} else {
		co.buf = conduit.AppendBatchEntryEncoded(co.buf, string(ns), enc)
	}
	co.refs = append(co.refs, batchRef{ns: ns, node: n, enc: enc})
	full := len(co.refs) >= co.cfg.MaxLeaves || len(co.buf) >= co.cfg.MaxBytes
	if full && co.cause == flushCauseNone {
		if len(co.refs) >= co.cfg.MaxLeaves {
			co.cause = flushCauseLeaves
		} else {
			co.cause = flushCauseBytes
		}
	}
	co.mu.Unlock()
	if full {
		select {
		case co.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// run is the flusher goroutine: size/count kicks and the age timer both
// land here; stop triggers a final drain.
func (co *coalescer) run() {
	defer close(co.done)
	for {
		select {
		case <-co.stop:
			co.flush()
			return
		case <-co.kick:
			co.flush()
		case <-co.ageTimer.C:
			co.flushFor(flushCauseAge)
		}
	}
}

// flush ships the pending batch, if any. Safe to call from any goroutine;
// sendMu keeps concurrent flushes ordered.
func (co *coalescer) flush() { co.flushFor(flushCauseNone) }

// flushFor is flush with the caller's trigger attribution. A byte/leaf cause
// recorded at append time wins over the caller's reason (the thresholds are
// what actually filled the batch); reason covers the age-timer path.
func (co *coalescer) flushFor(reason int) {
	co.sendMu.Lock()
	defer co.sendMu.Unlock()
	co.mu.Lock()
	if len(co.refs) == 0 {
		co.mu.Unlock()
		return
	}
	buf, refs, firstAt := co.buf, co.refs, co.firstAt
	cause := co.cause
	co.cause = flushCauseNone
	co.buf = conduit.AppendBatchHeader(co.spareBuf[:0])
	co.refs = co.spareRefs[:0]
	co.mu.Unlock()
	if cause == flushCauseNone {
		cause = reason
	}

	err := co.c.sendBatch(buf, refs)

	// The transport is done with buf once sendBatch returns (Call and
	// Notify copy into their own frame); recycle it for the next swap.
	co.spareBuf = buf[:0]
	co.spareRefs = refs[:0]
	if err != nil {
		co.mu.Lock()
		if co.pendErr == nil {
			co.pendErr = err
		}
		co.mu.Unlock()
		co.c.reportAsyncError(err)
		return
	}
	telBatchFlushes.Inc()
	telBatchLeaves.Add(int64(len(refs)))
	ack := time.Since(firstAt)
	telBatchAck.Observe(ack)
	if co.cfg.TargetLatency > 0 {
		co.adaptAge(ack)
	}
	switch cause {
	case flushCauseBytes:
		telBatchFlushBytes.Inc()
	case flushCauseLeaves:
		telBatchFlushLeaves.Inc()
	case flushCauseAge:
		telBatchFlushAge.Inc()
	}
}

// flushNow drains the pending batch synchronously and returns the first
// flush failure since the last call (Client.Flush's batch half).
func (co *coalescer) flushNow() error {
	co.flush()
	co.mu.Lock()
	err := co.pendErr
	co.pendErr = nil
	co.mu.Unlock()
	return err
}

// shutdown stops accepting entries, flushes what is pending and reclaims
// the flusher goroutine.
func (co *coalescer) shutdown() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	co.mu.Unlock()
	close(co.stop)
	<-co.done
	co.ageTimer.Stop()
}

// sendBatch delivers one encoded batch frame covering refs, degrading
// exactly like the single-publish path: entries route behind a non-empty
// spill buffer, transient transport failures spill entry-by-entry, and an
// old server without the batch RPC latches the per-entry fallback.
// Successful delivery counts every leaf in Published at acknowledgement.
func (c *Client) sendBatch(frame []byte, refs []batchRef) error {
	if sp := c.spill.Load(); sp != nil && sp.pending() > 0 {
		if spillRefs(sp, refs) {
			return nil
		}
	}
	if c.noBatch.Load() {
		return c.sendBatchFallback(refs)
	}
	err := c.sendBatchWire(frame, len(refs))
	if err == nil {
		return nil
	}
	if errors.Is(err, mercury.ErrUnknownRPC) {
		// Older server: replay this batch entry-by-entry; future publishes
		// bypass the coalescer entirely (see publishSync).
		return c.sendBatchFallback(refs)
	}
	if sp := c.spill.Load(); sp != nil && mercury.IsTransient(err) {
		if spillRefs(sp, refs) {
			return nil
		}
	}
	return err
}

// sendBatchWire performs the raw batch RPC with no degradation handling;
// on success every covered leaf is counted at acknowledgement. Spill
// redelivery uses it directly so a failed redelivery never re-spills.
func (c *Client) sendBatchWire(frame []byte, leaves int) error {
	ctx, sp := telemetry.StartSpan(context.Background(), "soma.client.publish.batch")
	var err error
	if c.fireAndForget.Load() {
		err = c.ep.Notify(ctx, RPCPublishBatch, frame)
	} else {
		_, err = c.ep.Call(ctx, RPCPublishBatch, frame)
	}
	if err != nil {
		sp.Fail()
	}
	sp.End()
	if err == nil {
		c.published.Add(int64(leaves))
		return nil
	}
	if errors.Is(err, mercury.ErrUnknownRPC) {
		c.noBatch.Store(true)
	}
	return err
}

// sendBatchFallback replays a batch's entries through the per-entry wire
// path, in order, returning the first failure (later entries still get
// their delivery attempt, mirroring the async worker's semantics).
func (c *Client) sendBatchFallback(refs []batchRef) error {
	var first error
	for _, r := range refs {
		if err := c.publishDirect(r.ns, r.tree()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// spillRefs buffers a batch's entries into the spill buffer in order.
// Reports false when the spill rejected an entry (shut down) — entries
// already buffered stay buffered, the caller surfaces the original error.
func spillRefs(sp *spillState, refs []batchRef) bool {
	for _, r := range refs {
		if !sp.add(r.ns, r.tree()) {
			return false
		}
	}
	return true
}
